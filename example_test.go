package webdep_test

import (
	"fmt"

	webdep "github.com/webdep/webdep"
)

// The centralization score on raw provider counts.
func ExampleCentralizationScore() {
	// 10 websites: 5 on one provider, 5 spread across five others.
	counts := []float64{5, 1, 1, 1, 1, 1}
	fmt.Printf("%.2f\n", webdep.CentralizationScore(counts))
	// Output: 0.20
}

// Building a distribution site by site and interpreting the result.
func ExampleDistribution() {
	d := webdep.NewDistribution()
	for i := 0; i < 6; i++ {
		d.Observe("Cloudflare")
	}
	d.Observe("LocalHost-A")
	d.Observe("LocalHost-B")
	d.Observe("LocalHost-C")
	d.Observe("LocalHost-D")
	fmt.Printf("S = %.2f (%s)\n", d.Score(), webdep.Interpret(d.Score()))
	fmt.Printf("top provider: %.0f%%\n", d.TopNShare(1)*100)
	// Output:
	// S = 0.30 (highly concentrated)
	// top provider: 60%
}

// Endemicity separates regional from global providers.
func ExampleUsageCurve() {
	global := webdep.NewUsageCurve([]float64{40, 35, 33, 30, 28, 25})
	regional := webdep.NewUsageCurve([]float64{22, 3, 0, 0, 0, 0})
	fmt.Printf("global   E_R = %.2f\n", global.EndemicityRatio())
	fmt.Printf("regional E_R = %.2f\n", regional.EndemicityRatio())
	// Output:
	// global   E_R = 0.20
	// regional E_R = 0.81
}

// The published per-country scores ship with the library.
func ExampleCountryByCode() {
	th, _ := webdep.CountryByCode("TH")
	fmt.Printf("%s: hosting S = %.4f (rank %d of 150)\n",
		th.Name, th.PaperScore[webdep.Hosting], th.PaperRank[webdep.Hosting])
	// Output: Thailand: hosting S = 0.3548 (rank 1 of 150)
}
