package webdep

import (
	"math"
	"testing"
)

func TestFacadeDistribution(t *testing.T) {
	d := NewDistribution()
	for i := 0; i < 9; i++ {
		d.Observe("big")
	}
	d.Observe("small")
	if got := d.Score(); math.Abs(got-(0.81+0.01-0.1)) > 1e-12 {
		t.Errorf("Score = %v", got)
	}
	if Interpret(d.Score()) != HighlyConcentrated {
		t.Error("interpretation wrong")
	}
	if got := CentralizationScore([]float64{9, 1}); got != d.Score() {
		t.Errorf("CentralizationScore = %v", got)
	}
}

func TestFacadeCountries(t *testing.T) {
	all := Countries()
	if len(all) != 150 {
		t.Fatalf("Countries = %d", len(all))
	}
	th, ok := CountryByCode("TH")
	if !ok || th.PaperScore[Hosting] != 0.3548 {
		t.Errorf("TH = %+v", th)
	}
	if Hosting.String() != "hosting" || TLD.String() != "tld" {
		t.Error("layer constants wrong")
	}
}

func TestFacadeUsageAndPairwise(t *testing.T) {
	u := NewUsageCurve([]float64{50, 10, 0, 0})
	if u.EndemicityRatio() <= 0.5 {
		t.Errorf("E_R = %v", u.EndemicityRatio())
	}
	a := FromCounts(map[string]float64{"x": 10, "y": 10})
	b := FromCounts(map[string]float64{"z": 20})
	d, err := PairwiseEMD(a, b)
	if err != nil || d <= 0 {
		t.Errorf("PairwiseEMD = %v, %v", d, err)
	}
	if MaxScore(100) != 0.99 {
		t.Error("MaxScore wrong")
	}
	rho, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || rho != 1 {
		t.Errorf("Pearson = %v, %v", rho, err)
	}
	if CorrelationStrength(0.95) != "strong" {
		t.Error("strength wrong")
	}
	cd := NewCrossDependence()
	cd.Observe("RU")
	if cd.Share("RU") != 1 {
		t.Error("cross dependence wrong")
	}
	var ins Insularity
	ins.Observe("US", "US")
	if ins.Fraction() != 1 {
		t.Error("insularity wrong")
	}
}
