package dnsserver

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"github.com/webdep/webdep/internal/dnswire"
)

const sampleZoneFile = `; toolkit test zone
$ORIGIN example.test.
$TTL 300
@       3600 IN SOA ns1.example.test. admin.example.test. 1 7200 900 1209600 300
@            IN NS  ns1.example.test.
www          IN A   192.0.2.10
v6      60   IN AAAA 2001:db8::10
alias        IN CNAME www
txt          IN TXT "hello world"
ns1          IN A   198.51.100.53
`

func TestParseZone(t *testing.T) {
	z, err := ParseZone(strings.NewReader(sampleZoneFile), "")
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin != "example.test" {
		t.Fatalf("origin = %q", z.Origin)
	}
	if rs, ok := z.Lookup("www.example.test", dnswire.TypeA); !ok || len(rs) != 1 ||
		rs[0].Addr != netip.MustParseAddr("192.0.2.10") || rs[0].TTL != 300 {
		t.Errorf("www = %+v %v", rs, ok)
	}
	if rs, ok := z.Lookup("v6.example.test", dnswire.TypeAAAA); !ok || rs[0].TTL != 60 {
		t.Errorf("v6 = %+v %v", rs, ok)
	}
	// Relative CNAME target resolves against the origin and chases.
	if rs, ok := z.Lookup("alias.example.test", dnswire.TypeA); !ok || len(rs) != 2 {
		t.Errorf("alias = %+v %v", rs, ok)
	}
	if rs, ok := z.Lookup("txt.example.test", dnswire.TypeTXT); !ok || rs[0].Text != "hello world" {
		t.Errorf("txt = %+v %v", rs, ok)
	}
	soa := z.SOA()
	if soa == nil || soa.SOA.Serial != 1 || soa.SOA.MName != "ns1.example.test" || soa.TTL != 3600 {
		t.Errorf("soa = %+v", soa)
	}
}

func TestParseZoneDefaultOrigin(t *testing.T) {
	z, err := ParseZone(strings.NewReader("www IN A 192.0.2.1\n"), "fallback.test")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := z.Lookup("www.fallback.test", dnswire.TypeA); !ok {
		t.Error("record not under default origin")
	}
}

func TestParseZoneErrors(t *testing.T) {
	cases := []string{
		"www IN A 192.0.2.1",                            // no origin at all (defaultOrigin empty)
		"$ORIGIN x.test.\nwww IN A not-an-ip",           // bad A
		"$ORIGIN x.test.\nwww IN AAAA 1.2.3.4",          // v4 in AAAA
		"$ORIGIN x.test.\nwww IN TXT unquoted",          // unquoted TXT
		"$ORIGIN x.test.\nwww IN SOA a. b. 1 2 3",       // short SOA
		"$ORIGIN x.test.\nwww IN MX 10 mail.x.test",     // unsupported type
		"$ORIGIN x.test.\n@ IN SOA a. b. ( 1 2 3 4 5 )", // parens
		"$TTL abc\n$ORIGIN x.test.",                     // bad TTL
		"$INCLUDE other.zone",                           // include
		"$ORIGIN x.test.\nwww IN",                       // short line
	}
	for _, in := range cases {
		if _, err := ParseZone(strings.NewReader(in), ""); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestZoneRoundTrip(t *testing.T) {
	z, err := ParseZone(strings.NewReader(sampleZoneFile), "")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteZone(&buf, z); err != nil {
		t.Fatal(err)
	}
	z2, err := ParseZone(bytes.NewReader(buf.Bytes()), "")
	if err != nil {
		t.Fatalf("reparsing dump: %v\n%s", err, buf.String())
	}
	if z2.Origin != z.Origin || z2.Size() != z.Size() {
		t.Fatalf("round trip lost records: %d vs %d", z2.Size(), z.Size())
	}
	for _, probe := range []struct {
		name string
		typ  uint16
	}{
		{"www.example.test", dnswire.TypeA},
		{"v6.example.test", dnswire.TypeAAAA},
		{"txt.example.test", dnswire.TypeTXT},
		{"example.test", dnswire.TypeNS},
		{"example.test", dnswire.TypeSOA},
	} {
		a, okA := z.Lookup(probe.name, probe.typ)
		b, okB := z2.Lookup(probe.name, probe.typ)
		if okA != okB || len(a) != len(b) {
			t.Errorf("%s %s: %v/%d vs %v/%d", probe.name, dnswire.TypeName(probe.typ), okA, len(a), okB, len(b))
		}
	}
	// Dump is deterministic.
	var buf2 bytes.Buffer
	if err := WriteZone(&buf2, z); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("WriteZone not deterministic")
	}
}

func TestParsedZoneServes(t *testing.T) {
	z, err := ParseZone(strings.NewReader(sampleZoneFile), "")
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, z)
	resp := udpQuery(t, addr, "www.example.test", dnswire.TypeA)
	if len(resp.Answers) != 1 || resp.Answers[0].Addr != netip.MustParseAddr("192.0.2.10") {
		t.Errorf("served answer = %+v", resp.Answers)
	}
}
