package dnsserver

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"github.com/webdep/webdep/internal/dnswire"
)

// This file implements a pragmatic subset of the RFC 1035 master file
// format, enough to load and dump the toolkit's zones:
//
//	$ORIGIN example.test.
//	$TTL 300
//	@       3600 IN SOA ns1.example.test. admin.example.test. 1 7200 900 1209600 300
//	@            IN NS  ns1.example.test.
//	www          IN A   192.0.2.10
//	alias        IN CNAME www
//	txt          IN TXT "hello world"
//
// Supported: $ORIGIN and $TTL directives, @ for the origin, relative and
// absolute names, optional TTL, class IN, record types A, AAAA, NS, CNAME,
// TXT (single quoted string), and SOA (single line). Unsupported master
// file features (parenthesized continuations, $INCLUDE, \ escapes) are
// rejected with line-numbered errors.

// ParseZone reads a master file into a Zone. The origin may be supplied by
// a $ORIGIN directive or by the defaultOrigin argument ("" means the file
// must declare one).
func ParseZone(r io.Reader, defaultOrigin string) (*Zone, error) {
	origin := canonical(defaultOrigin)
	var zone *Zone
	defaultTTL := uint32(300)

	ensureZone := func() error {
		if zone != nil {
			return nil
		}
		if origin == "" {
			return fmt.Errorf("dnsserver: no $ORIGIN declared and no default origin given")
		}
		zone = NewZone(origin)
		return nil
	}

	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimRight(line, " \t")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.ContainsAny(line, "()") {
			return nil, fmt.Errorf("dnsserver: line %d: parenthesized records are not supported", lineNo)
		}
		fields := strings.Fields(line)

		switch strings.ToUpper(fields[0]) {
		case "$ORIGIN":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dnsserver: line %d: $ORIGIN wants one argument", lineNo)
			}
			if zone != nil {
				return nil, fmt.Errorf("dnsserver: line %d: $ORIGIN after records is not supported", lineNo)
			}
			origin = canonical(fields[1])
			continue
		case "$TTL":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dnsserver: line %d: $TTL wants one argument", lineNo)
			}
			ttl, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dnsserver: line %d: bad TTL %q", lineNo, fields[1])
			}
			defaultTTL = uint32(ttl)
			continue
		case "$INCLUDE":
			return nil, fmt.Errorf("dnsserver: line %d: $INCLUDE is not supported", lineNo)
		}

		if err := ensureZone(); err != nil {
			return nil, fmt.Errorf("dnsserver: line %d: %w", lineNo, err)
		}
		rec, err := parseRecordLine(fields, origin, defaultTTL)
		if err != nil {
			return nil, fmt.Errorf("dnsserver: line %d: %w", lineNo, err)
		}
		if err := zone.Add(rec); err != nil {
			return nil, fmt.Errorf("dnsserver: line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if zone == nil {
		if err := ensureZone(); err != nil {
			return nil, err
		}
	}
	return zone, nil
}

func parseRecordLine(fields []string, origin string, defaultTTL uint32) (dnswire.Record, error) {
	var rec dnswire.Record
	if len(fields) < 3 {
		return rec, fmt.Errorf("too few fields")
	}
	rec.Name = absoluteName(fields[0], origin)
	rest := fields[1:]

	// Optional TTL, optional class IN, then type.
	rec.TTL = defaultTTL
	if ttl, err := strconv.ParseUint(rest[0], 10, 32); err == nil {
		rec.TTL = uint32(ttl)
		rest = rest[1:]
	}
	if len(rest) > 0 && strings.EqualFold(rest[0], "IN") {
		rest = rest[1:]
	}
	if len(rest) < 2 {
		return rec, fmt.Errorf("missing type or rdata")
	}
	rec.Class = dnswire.ClassIN
	typ := strings.ToUpper(rest[0])
	rdata := rest[1:]

	switch typ {
	case "A":
		addr, err := netip.ParseAddr(rdata[0])
		if err != nil || !addr.Is4() {
			return rec, fmt.Errorf("bad A rdata %q", rdata[0])
		}
		rec.Type = dnswire.TypeA
		rec.Addr = addr
	case "AAAA":
		addr, err := netip.ParseAddr(rdata[0])
		if err != nil || !addr.Is6() || addr.Is4In6() {
			return rec, fmt.Errorf("bad AAAA rdata %q", rdata[0])
		}
		rec.Type = dnswire.TypeAAAA
		rec.Addr = addr
	case "NS":
		rec.Type = dnswire.TypeNS
		rec.Target = absoluteName(rdata[0], origin)
	case "CNAME":
		rec.Type = dnswire.TypeCNAME
		rec.Target = absoluteName(rdata[0], origin)
	case "TXT":
		text := strings.Join(rdata, " ")
		if !strings.HasPrefix(text, `"`) || !strings.HasSuffix(text, `"`) || len(text) < 2 {
			return rec, fmt.Errorf("TXT rdata must be one quoted string")
		}
		rec.Type = dnswire.TypeTXT
		rec.Text = text[1 : len(text)-1]
	case "SOA":
		if len(rdata) != 7 {
			return rec, fmt.Errorf("SOA wants mname rname serial refresh retry expire minimum")
		}
		soa := &dnswire.SOAData{
			MName: absoluteName(rdata[0], origin),
			RName: absoluteName(rdata[1], origin),
		}
		for i, dst := range []*uint32{&soa.Serial, &soa.Refresh, &soa.Retry, &soa.Expire, &soa.Minimum} {
			v, err := strconv.ParseUint(rdata[2+i], 10, 32)
			if err != nil {
				return rec, fmt.Errorf("bad SOA field %q", rdata[2+i])
			}
			*dst = uint32(v)
		}
		rec.Type = dnswire.TypeSOA
		rec.SOA = soa
	default:
		return rec, fmt.Errorf("unsupported record type %q", typ)
	}
	return rec, nil
}

// absoluteName resolves a master-file name against the origin: "@" is the
// origin, names ending in "." are absolute, everything else is relative.
func absoluteName(name, origin string) string {
	if name == "@" {
		return origin
	}
	if strings.HasSuffix(name, ".") {
		return canonical(name)
	}
	if origin == "" {
		return canonical(name)
	}
	return canonical(name) + "." + origin
}

// WriteZone dumps a zone in the master file subset ParseZone accepts,
// deterministically ordered (SOA first, then by name and type).
func WriteZone(w io.Writer, z *Zone) error {
	z.mu.RLock()
	defer z.mu.RUnlock()

	if _, err := fmt.Fprintf(w, "$ORIGIN %s.\n", z.Origin); err != nil {
		return err
	}
	type flat struct {
		rec dnswire.Record
	}
	var recs []flat
	for _, rs := range z.records {
		for _, r := range rs {
			recs = append(recs, flat{r})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i].rec, recs[j].rec
		// SOA leads.
		if (a.Type == dnswire.TypeSOA) != (b.Type == dnswire.TypeSOA) {
			return a.Type == dnswire.TypeSOA
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return rdataString(a) < rdataString(b)
	})
	for _, f := range recs {
		r := f.rec
		if _, err := fmt.Fprintf(w, "%s. %d IN %s %s\n",
			r.Name, r.TTL, dnswire.TypeName(r.Type), rdataString(r)); err != nil {
			return err
		}
	}
	return nil
}

func rdataString(r dnswire.Record) string {
	switch r.Type {
	case dnswire.TypeA, dnswire.TypeAAAA:
		return r.Addr.String()
	case dnswire.TypeNS, dnswire.TypeCNAME:
		return r.Target + "."
	case dnswire.TypeTXT:
		return `"` + r.Text + `"`
	case dnswire.TypeSOA:
		if r.SOA == nil {
			return ""
		}
		return fmt.Sprintf("%s. %s. %d %d %d %d %d",
			r.SOA.MName, r.SOA.RName, r.SOA.Serial, r.SOA.Refresh,
			r.SOA.Retry, r.SOA.Expire, r.SOA.Minimum)
	default:
		return ""
	}
}
