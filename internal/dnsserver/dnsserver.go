// Package dnsserver is an in-process authoritative DNS server speaking the
// dnswire format over real UDP and TCP sockets. The synthetic world's zones
// are loaded into one or more servers, and the resolver crawls them exactly
// as the paper's ZDNS deployment crawled the public DNS.
package dnsserver

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/webdep/webdep/internal/dnswire"
)

// maxUDPPayload is the classic RFC 1035 UDP limit; longer responses set TC
// and expect the client to retry over TCP.
const maxUDPPayload = 512

// Zone holds the authoritative records for a DNS subtree.
type Zone struct {
	// Origin is the zone apex, e.g. "example.com".
	Origin string

	mu      sync.RWMutex
	records map[recordKey][]dnswire.Record
	soa     *dnswire.Record
}

type recordKey struct {
	name string
	typ  uint16
}

// NewZone creates an empty zone rooted at origin.
func NewZone(origin string) *Zone {
	return &Zone{
		Origin:  canonical(origin),
		records: make(map[recordKey][]dnswire.Record),
	}
}

func canonical(name string) string {
	return strings.ToLower(strings.TrimSuffix(strings.TrimSpace(name), "."))
}

// Add inserts a record into the zone. The record name must fall inside the
// zone. SOA records additionally become the zone's negative-answer SOA.
func (z *Zone) Add(r dnswire.Record) error {
	r.Name = canonical(r.Name)
	if r.Class == 0 {
		r.Class = dnswire.ClassIN
	}
	if r.Name != z.Origin && !strings.HasSuffix(r.Name, "."+z.Origin) {
		return fmt.Errorf("dnsserver: %q outside zone %q", r.Name, z.Origin)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	k := recordKey{r.Name, r.Type}
	z.records[k] = append(z.records[k], r)
	if r.Type == dnswire.TypeSOA {
		soa := r
		z.soa = &soa
	}
	return nil
}

// Lookup returns the records of the given name and type, following CNAMEs
// within the zone (chain included in the result, CNAME first).
func (z *Zone) Lookup(name string, qtype uint16) (answers []dnswire.Record, found bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	name = canonical(name)
	for depth := 0; depth < 8; depth++ {
		if rs, ok := z.records[recordKey{name, qtype}]; ok {
			answers = append(answers, rs...)
			return answers, true
		}
		if qtype != dnswire.TypeCNAME {
			if cn, ok := z.records[recordKey{name, dnswire.TypeCNAME}]; ok && len(cn) > 0 {
				answers = append(answers, cn[0])
				name = canonical(cn[0].Target)
				continue
			}
		}
		break
	}
	// Name exists with other types? Then NOERROR/NODATA rather than
	// NXDOMAIN.
	for k := range z.records {
		if k.name == name {
			return answers, true
		}
	}
	return answers, false
}

// DelegationFor returns the NS record set of the closest zone cut strictly
// below the apex that covers the name, or nil when the name is not under a
// delegation. A parent zone answers queries under such cuts with a
// referral instead of authoritative data.
func (z *Zone) DelegationFor(name string) []dnswire.Record {
	z.mu.RLock()
	defer z.mu.RUnlock()
	name = canonical(name)
	// Walk from the most specific suffix toward the apex, stopping before
	// the apex itself (apex NS records are authority, not delegation).
	for cut := name; cut != z.Origin && cut != ""; {
		if rs, ok := z.records[recordKey{cut, dnswire.TypeNS}]; ok {
			// The cut's own A/AAAA glue living in this zone does not make
			// the data authoritative; the NS set is the referral.
			return rs
		}
		dot := strings.IndexByte(cut, '.')
		if dot < 0 {
			break
		}
		cut = cut[dot+1:]
	}
	return nil
}

// SOA returns the zone's SOA record, or nil.
func (z *Zone) SOA() *dnswire.Record {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.soa
}

// Size returns the number of record sets in the zone.
func (z *Zone) Size() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.records)
}

// Server is an authoritative DNS server over a set of zones.
type Server struct {
	mu    sync.RWMutex
	zones map[string]*Zone

	udp      *net.UDPConn
	tcp      net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}
	logger   *log.Logger
	closeOne sync.Once

	// Stats, updated atomically under mu for simplicity.
	statsMu sync.Mutex
	queries uint64
}

// NewServer creates a server with no zones. Pass a nil logger to discard
// logs.
func NewServer(logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{
		zones:  make(map[string]*Zone),
		closed: make(chan struct{}),
		logger: logger,
	}
}

// AddZone attaches a zone; longest-suffix matching selects the zone for
// each query.
func (s *Server) AddZone(z *Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin] = z
}

// zoneFor finds the most specific zone containing the name.
func (s *Server) zoneFor(name string) *Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	name = canonical(name)
	var best *Zone
	bestLen := -1
	for origin, z := range s.zones {
		if (name == origin || strings.HasSuffix(name, "."+origin)) && len(origin) > bestLen {
			best, bestLen = z, len(origin)
		}
	}
	return best
}

// Start binds UDP and TCP listeners on addr (e.g. "127.0.0.1:0") and begins
// serving. It returns the bound address, which carries the chosen port.
func (s *Server) Start(addr string) (net.Addr, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	// DNS needs UDP and TCP on the same port. With an ephemeral request
	// (port 0) the kernel picks the UDP port without regard to TCP, so the
	// matching TCP bind can collide with an unrelated listener; retry the
	// pair acquisition rather than failing on a roll of the dice.
	attempts := 1
	if udpAddr.Port == 0 {
		attempts = 10
	}
	for try := 0; ; try++ {
		s.udp, err = net.ListenUDP("udp", udpAddr)
		if err != nil {
			return nil, fmt.Errorf("dnsserver: %w", err)
		}
		// Bind TCP to the same port UDP got.
		s.tcp, err = net.Listen("tcp", s.udp.LocalAddr().String())
		if err == nil {
			break
		}
		s.udp.Close()
		if try+1 >= attempts {
			return nil, fmt.Errorf("dnsserver: %w", err)
		}
	}
	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return s.udp.LocalAddr(), nil
}

// Close stops the listeners and waits for in-flight handlers.
func (s *Server) Close() error {
	s.closeOne.Do(func() {
		close(s.closed)
		if s.udp != nil {
			s.udp.Close()
		}
		if s.tcp != nil {
			s.tcp.Close()
		}
	})
	s.wg.Wait()
	return nil
}

// Queries reports how many DNS queries the server has answered.
func (s *Server) Queries() uint64 {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.queries
}

func (s *Server) countQuery() {
	s.statsMu.Lock()
	s.queries++
	s.statsMu.Unlock()
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, peer, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logger.Printf("udp read: %v", err)
				continue
			}
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		s.wg.Add(1)
		go func(pkt []byte, peer *net.UDPAddr) {
			defer s.wg.Done()
			resp := s.handle(pkt, maxUDPPayload)
			if resp != nil {
				if _, err := s.udp.WriteToUDP(resp, peer); err != nil {
					s.logger.Printf("udp write: %v", err)
				}
			}
		}(pkt, peer)
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logger.Printf("tcp accept: %v", err)
				continue
			}
		}
		s.wg.Add(1)
		go func(conn net.Conn) {
			defer s.wg.Done()
			defer conn.Close()
			s.serveTCPConn(conn)
		}(conn)
	}
}

func (s *Server) serveTCPConn(conn net.Conn) {
	for {
		if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			return
		}
		var lenBuf [2]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		msgLen := int(lenBuf[0])<<8 | int(lenBuf[1])
		msg := make([]byte, msgLen)
		if _, err := io.ReadFull(conn, msg); err != nil {
			return
		}
		resp := s.handle(msg, 0) // no size limit on TCP
		if resp == nil {
			return
		}
		out := make([]byte, 2+len(resp))
		out[0] = byte(len(resp) >> 8)
		out[1] = byte(len(resp))
		copy(out[2:], resp)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

// handle produces a response packet for a raw query, or nil if the input is
// unparseable beyond repair.
func (s *Server) handle(pkt []byte, sizeLimit int) []byte {
	query, err := dnswire.Unpack(pkt)
	if err != nil || len(query.Questions) == 0 || query.Header.QR {
		return nil
	}
	s.countQuery()
	q := query.Questions[0]

	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID: query.Header.ID, QR: true, AA: true,
			RD: query.Header.RD, Opcode: query.Header.Opcode,
		},
		Questions: []dnswire.Question{q},
	}

	switch {
	case query.Header.Opcode != 0:
		resp.Header.RCode = dnswire.RCodeNotImp
	case q.Class != dnswire.ClassIN:
		resp.Header.RCode = dnswire.RCodeRefused
	default:
		zone := s.zoneFor(q.Name)
		if zone == nil {
			resp.Header.RCode = dnswire.RCodeRefused
			break
		}
		answers, found := zone.Lookup(q.Name, q.Type)
		resp.Answers = answers
		if !found {
			// No local data: refer the client down a zone cut when one
			// covers the name, NXDOMAIN otherwise. (Local data wins over
			// delegation here — the in-process harness co-hosts parent and
			// child data in one zone; see TestReferralBelowZoneCut.)
			if delegation := zone.DelegationFor(q.Name); len(delegation) > 0 {
				resp.Header.AA = false
				resp.Authorities = append(resp.Authorities, delegation...)
				resp.Additionals = append(resp.Additionals, s.glueFor(delegation)...)
				break
			}
			resp.Header.RCode = dnswire.RCodeNXDomain
		}
		if len(answers) == 0 && len(resp.Authorities) == 0 {
			if soa := zone.SOA(); soa != nil {
				resp.Authorities = append(resp.Authorities, *soa)
			}
		}
		// Glue: for NS answers, include the nameservers' addresses in the
		// additional section when this server is authoritative for them,
		// sparing well-behaved resolvers a follow-up query.
		if q.Type == dnswire.TypeNS {
			resp.Additionals = append(resp.Additionals, s.glueFor(answers)...)
		}
	}

	data, err := resp.Pack()
	if err != nil {
		s.logger.Printf("pack response: %v", err)
		servfail := &dnswire.Message{
			Header:    dnswire.Header{ID: query.Header.ID, QR: true, RCode: dnswire.RCodeServFail},
			Questions: []dnswire.Question{q},
		}
		data, err = servfail.Pack()
		if err != nil {
			return nil
		}
	}
	if sizeLimit > 0 && len(data) > sizeLimit {
		// Truncate: header + question only, TC set.
		tc := &dnswire.Message{
			Header:    resp.Header,
			Questions: resp.Questions,
		}
		tc.Header.TC = true
		data, err = tc.Pack()
		if err != nil {
			return nil
		}
	}
	return data
}

// glueFor collects A/AAAA records for the targets of the given NS records,
// where a local zone is authoritative for the target.
func (s *Server) glueFor(answers []dnswire.Record) []dnswire.Record {
	var glue []dnswire.Record
	seen := map[string]bool{}
	for _, r := range answers {
		if r.Type != dnswire.TypeNS || seen[r.Target] {
			continue
		}
		seen[r.Target] = true
		zone := s.zoneFor(r.Target)
		if zone == nil {
			continue
		}
		for _, typ := range []uint16{dnswire.TypeA, dnswire.TypeAAAA} {
			if rs, ok := zone.Lookup(r.Target, typ); ok {
				glue = append(glue, rs...)
			}
		}
	}
	return glue
}

// ErrServerClosed is retained for API symmetry with net/http-style servers.
var ErrServerClosed = errors.New("dnsserver: server closed")
