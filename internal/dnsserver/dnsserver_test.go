package dnsserver

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/dnswire"
)

func mustAdd(t *testing.T, z *Zone, r dnswire.Record) {
	t.Helper()
	if err := z.Add(r); err != nil {
		t.Fatal(err)
	}
}

func testZone(t *testing.T) *Zone {
	t.Helper()
	z := NewZone("example.test")
	mustAdd(t, z, dnswire.Record{Name: "example.test", Type: dnswire.TypeSOA, TTL: 3600, SOA: &dnswire.SOAData{
		MName: "ns1.example.test", RName: "admin.example.test", Serial: 1,
	}})
	mustAdd(t, z, dnswire.Record{Name: "www.example.test", Type: dnswire.TypeA, TTL: 60,
		Addr: netip.MustParseAddr("192.0.2.10")})
	mustAdd(t, z, dnswire.Record{Name: "example.test", Type: dnswire.TypeNS, TTL: 60,
		Target: "ns1.example.test"})
	mustAdd(t, z, dnswire.Record{Name: "alias.example.test", Type: dnswire.TypeCNAME, TTL: 60,
		Target: "www.example.test"})
	mustAdd(t, z, dnswire.Record{Name: "txt.example.test", Type: dnswire.TypeTXT, TTL: 60,
		Text: "hello"})
	return z
}

func TestZoneRejectsForeignNames(t *testing.T) {
	z := NewZone("example.test")
	err := z.Add(dnswire.Record{Name: "other.invalid", Type: dnswire.TypeA,
		Addr: netip.MustParseAddr("192.0.2.1")})
	if err == nil {
		t.Error("out-of-zone record accepted")
	}
}

func TestZoneLookupDirect(t *testing.T) {
	z := testZone(t)
	rs, found := z.Lookup("www.example.test", dnswire.TypeA)
	if !found || len(rs) != 1 || rs[0].Addr != netip.MustParseAddr("192.0.2.10") {
		t.Errorf("lookup = %+v %v", rs, found)
	}
	// Case-insensitive.
	if _, found := z.Lookup("WWW.EXAMPLE.TEST", dnswire.TypeA); !found {
		t.Error("case-sensitive lookup")
	}
}

func TestZoneLookupCNAMEChase(t *testing.T) {
	z := testZone(t)
	rs, found := z.Lookup("alias.example.test", dnswire.TypeA)
	if !found || len(rs) != 2 {
		t.Fatalf("lookup = %+v %v", rs, found)
	}
	if rs[0].Type != dnswire.TypeCNAME || rs[1].Type != dnswire.TypeA {
		t.Errorf("chain order wrong: %+v", rs)
	}
}

func TestZoneCNAMELoopBounded(t *testing.T) {
	z := NewZone("loop.test")
	mustAdd(t, z, dnswire.Record{Name: "a.loop.test", Type: dnswire.TypeCNAME, Target: "b.loop.test"})
	mustAdd(t, z, dnswire.Record{Name: "b.loop.test", Type: dnswire.TypeCNAME, Target: "a.loop.test"})
	done := make(chan struct{})
	go func() {
		z.Lookup("a.loop.test", dnswire.TypeA)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("CNAME loop not bounded")
	}
}

func TestZoneNodataVsNXDomain(t *testing.T) {
	z := testZone(t)
	// Name exists but not this type: NODATA (found=true, no answers).
	rs, found := z.Lookup("www.example.test", dnswire.TypeTXT)
	if !found || len(rs) != 0 {
		t.Errorf("NODATA: %+v %v", rs, found)
	}
	// Name does not exist: NXDOMAIN.
	if _, found := z.Lookup("missing.example.test", dnswire.TypeA); found {
		t.Error("missing name reported found")
	}
}

func startServer(t *testing.T, zones ...*Zone) (*Server, string) {
	t.Helper()
	s := NewServer(nil)
	for _, z := range zones {
		s.AddZone(z)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

func udpQuery(t *testing.T, addr string, name string, qtype uint16) *dnswire.Message {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q, err := dnswire.NewQuery(0x4242, name, qtype).Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(q); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerAnswersOverUDP(t *testing.T) {
	s, addr := startServer(t, testZone(t))
	resp := udpQuery(t, addr, "www.example.test", dnswire.TypeA)
	if !resp.Header.QR || !resp.Header.AA || resp.Header.RCode != dnswire.RCodeNoError {
		t.Errorf("header = %+v", resp.Header)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Addr != netip.MustParseAddr("192.0.2.10") {
		t.Errorf("answers = %+v", resp.Answers)
	}
	if s.Queries() == 0 {
		t.Error("query counter not incremented")
	}
}

func TestServerNXDomainCarriesSOA(t *testing.T) {
	_, addr := startServer(t, testZone(t))
	resp := udpQuery(t, addr, "nope.example.test", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %d", resp.Header.RCode)
	}
	if len(resp.Authorities) != 1 || resp.Authorities[0].Type != dnswire.TypeSOA {
		t.Errorf("authorities = %+v", resp.Authorities)
	}
}

func TestServerRefusesForeignZone(t *testing.T) {
	_, addr := startServer(t, testZone(t))
	resp := udpQuery(t, addr, "outside.invalid", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %d, want REFUSED", resp.Header.RCode)
	}
}

func TestServerRefusesNonINClass(t *testing.T) {
	_, addr := startServer(t, testZone(t))
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	m := dnswire.NewQuery(7, "www.example.test", dnswire.TypeA)
	m.Questions[0].Class = 3 // CHAOS
	q, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(q)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %d", resp.Header.RCode)
	}
}

func TestServerTruncatesLargeUDPAndServesTCP(t *testing.T) {
	z := NewZone("big.test")
	for i := 0; i < 60; i++ {
		mustAdd(t, z, dnswire.Record{
			Name: "many.big.test", Type: dnswire.TypeA, TTL: 1,
			Addr: netip.AddrFrom4([4]byte{10, 0, byte(i / 256), byte(i % 256)}),
		})
	}
	_, addr := startServer(t, z)

	resp := udpQuery(t, addr, "many.big.test", dnswire.TypeA)
	if !resp.Header.TC {
		t.Fatal("large response not truncated over UDP")
	}
	if len(resp.Answers) != 0 {
		t.Errorf("truncated response should carry no answers, has %d", len(resp.Answers))
	}

	// Same query over TCP gets the full answer set.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q, err := dnswire.NewQuery(9, "many.big.test", dnswire.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	framed := append([]byte{byte(len(q) >> 8), byte(len(q))}, q...)
	if _, err := conn.Write(framed); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	head := make([]byte, 2)
	if _, err := readFull(conn, head); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, int(head[0])<<8|int(head[1]))
	if _, err := readFull(conn, body); err != nil {
		t.Fatal(err)
	}
	tcpResp, err := dnswire.Unpack(body)
	if err != nil {
		t.Fatal(err)
	}
	if tcpResp.Header.TC || len(tcpResp.Answers) != 60 {
		t.Errorf("tcp answers = %d, TC = %v", len(tcpResp.Answers), tcpResp.Header.TC)
	}
}

func TestServerIgnoresGarbageAndResponses(t *testing.T) {
	s, addr := startServer(t, testZone(t))
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Garbage datagram.
	conn.Write([]byte{1, 2, 3})
	// A response packet (QR set) must not be answered.
	m := dnswire.NewQuery(5, "www.example.test", dnswire.TypeA)
	m.Header.QR = true
	pkt, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(pkt)
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 512)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered garbage or a response packet")
	}
	if s.Queries() != 0 {
		t.Error("garbage counted as query")
	}
}

func TestServerMostSpecificZoneWins(t *testing.T) {
	parent := NewZone("test")
	mustAdd(t, parent, dnswire.Record{Name: "www.sub.test", Type: dnswire.TypeA,
		Addr: netip.MustParseAddr("192.0.2.1")})
	child := NewZone("sub.test")
	mustAdd(t, child, dnswire.Record{Name: "www.sub.test", Type: dnswire.TypeA,
		Addr: netip.MustParseAddr("192.0.2.2")})
	_, addr := startServer(t, parent, child)
	resp := udpQuery(t, addr, "www.sub.test", dnswire.TypeA)
	if len(resp.Answers) != 1 || resp.Answers[0].Addr != netip.MustParseAddr("192.0.2.2") {
		t.Errorf("child zone not preferred: %+v", resp.Answers)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, _ := startServer(t, testZone(t))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestZoneSize(t *testing.T) {
	z := testZone(t)
	if z.Size() != 5 { // SOA, A, NS, CNAME, TXT record sets
		t.Errorf("Size = %d", z.Size())
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func TestCanonical(t *testing.T) {
	cases := map[string]string{
		"Example.COM.": "example.com",
		" a.b ":        "a.b",
		".":            "",
	}
	for in, want := range cases {
		if got := canonical(in); got != want {
			t.Errorf("canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestZoneApexSuffixBoundary(t *testing.T) {
	// "notexample.test" must not fall inside zone "example.test".
	z := NewZone("example.test")
	if err := z.Add(dnswire.Record{Name: "notexample.test", Type: dnswire.TypeA,
		Addr: netip.MustParseAddr("192.0.2.1")}); err == nil {
		t.Error("suffix boundary not enforced")
	}
}

func TestGlueRecordsInNSResponse(t *testing.T) {
	// Zone with NS whose target lives in a sibling zone on the same server.
	sites := NewZone("glue.test")
	mustAdd(t, sites, dnswire.Record{Name: "www.glue.test", Type: dnswire.TypeA,
		Addr: netip.MustParseAddr("192.0.2.1")})
	mustAdd(t, sites, dnswire.Record{Name: "www.glue.test", Type: dnswire.TypeNS,
		Target: "ns1.provider.nsinfra"})
	infra := NewZone("nsinfra")
	mustAdd(t, infra, dnswire.Record{Name: "ns1.provider.nsinfra", Type: dnswire.TypeA,
		Addr: netip.MustParseAddr("198.51.100.53")})
	_, addr := startServer(t, sites, infra)

	resp := udpQuery(t, addr, "www.glue.test", dnswire.TypeNS)
	if len(resp.Answers) != 1 || resp.Answers[0].Target != "ns1.provider.nsinfra" {
		t.Fatalf("answers = %+v", resp.Answers)
	}
	if len(resp.Additionals) != 1 {
		t.Fatalf("additionals = %+v", resp.Additionals)
	}
	glue := resp.Additionals[0]
	if glue.Name != "ns1.provider.nsinfra" || glue.Addr != netip.MustParseAddr("198.51.100.53") {
		t.Errorf("glue = %+v", glue)
	}
}

func TestNoGlueForForeignTargets(t *testing.T) {
	sites := NewZone("noglue.test")
	mustAdd(t, sites, dnswire.Record{Name: "www.noglue.test", Type: dnswire.TypeNS,
		Target: "ns1.elsewhere.invalid"})
	_, addr := startServer(t, sites)
	resp := udpQuery(t, addr, "www.noglue.test", dnswire.TypeNS)
	if len(resp.Additionals) != 0 {
		t.Errorf("unexpected glue: %+v", resp.Additionals)
	}
}
