// Package pfx2as maps IP prefixes to origin autonomous systems and ASNs to
// organizations — the substitute for CAIDA's Routeviews prefix-to-AS and
// AS-to-Organization datasets the paper uses to label hosting and DNS
// providers.
package pfx2as

import (
	"fmt"
	"net/netip"
	"sort"

	"github.com/webdep/webdep/internal/iptrie"
)

// Org is an autonomous-system organization: the entity the paper treats as
// "the provider".
type Org struct {
	Name    string
	Country string // H.Q. country (ISO alpha-2)
}

// Table joins the prefix→ASN route table with the ASN→organization
// registry. Construct with New, populate, then query concurrently.
type Table struct {
	routes *iptrie.Trie[int]
	orgs   map[int]Org
}

// New returns an empty table.
func New() *Table {
	return &Table{routes: iptrie.New[int](), orgs: make(map[int]Org)}
}

// AddRoute announces a prefix as originated by the ASN.
func (t *Table) AddRoute(prefix netip.Prefix, asn int) error {
	if asn <= 0 {
		return fmt.Errorf("pfx2as: invalid ASN %d", asn)
	}
	return t.routes.Insert(prefix, asn)
}

// AddRouteString announces a CIDR string as originated by the ASN.
func (t *Table) AddRouteString(cidr string, asn int) error {
	if asn <= 0 {
		return fmt.Errorf("pfx2as: invalid ASN %d", asn)
	}
	return t.routes.InsertString(cidr, asn)
}

// RegisterOrg associates an ASN with its organization. Multiple ASNs may
// map to one organization, as with real AS-to-Org data (e.g. an
// organization operating separate transit and hosting ASNs).
func (t *Table) RegisterOrg(asn int, org Org) error {
	if asn <= 0 {
		return fmt.Errorf("pfx2as: invalid ASN %d", asn)
	}
	if org.Name == "" {
		return fmt.Errorf("pfx2as: empty organization for AS%d", asn)
	}
	t.orgs[asn] = org
	return nil
}

// OriginASN returns the origin ASN for an address via longest-prefix match.
func (t *Table) OriginASN(addr netip.Addr) (int, bool) {
	return t.routes.Lookup(addr)
}

// Org returns the organization registered for an ASN.
func (t *Table) Org(asn int) (Org, bool) {
	o, ok := t.orgs[asn]
	return o, ok
}

// LookupOrg resolves an address all the way to its serving organization:
// longest-prefix match to ASN, then registry join. The boolean is false
// when either step fails (unrouted space or unregistered ASN).
func (t *Table) LookupOrg(addr netip.Addr) (Org, bool) {
	asn, ok := t.routes.Lookup(addr)
	if !ok {
		return Org{}, false
	}
	return t.Org(asn)
}

// LookupOrgString is LookupOrg over a string address.
func (t *Table) LookupOrgString(ip string) (Org, bool) {
	addr, err := netip.ParseAddr(ip)
	if err != nil {
		return Org{}, false
	}
	return t.LookupOrg(addr)
}

// Routes reports the number of announced prefixes.
func (t *Table) Routes() int { return t.routes.Len() }

// ASNs returns the registered ASNs in ascending order.
func (t *Table) ASNs() []int {
	out := make([]int, 0, len(t.orgs))
	for asn := range t.orgs {
		out = append(out, asn)
	}
	sort.Ints(out)
	return out
}
