package pfx2as

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadRoutes populates the route table from the CAIDA Routeviews
// prefix2as text format: "prefix-address<TAB>prefix-length<TAB>asn" (or
// whitespace-separated), e.g.
//
//	104.16.0.0	13	13335
//
// Multi-origin entries ("13335_4436" or "13335,4436") take the first ASN,
// as the paper's pipeline does. Comments with '#' and blank lines are
// ignored.
func (t *Table) LoadRoutes(r io.Reader) (int, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	n, line := 0, 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return n, fmt.Errorf("pfx2as: line %d: want addr length asn", line)
		}
		bits, err := strconv.Atoi(fields[1])
		if err != nil {
			return n, fmt.Errorf("pfx2as: line %d: bad prefix length %q", line, fields[1])
		}
		asnField := fields[2]
		if i := strings.IndexAny(asnField, "_,"); i >= 0 {
			asnField = asnField[:i]
		}
		asn, err := strconv.Atoi(asnField)
		if err != nil {
			return n, fmt.Errorf("pfx2as: line %d: bad asn %q", line, fields[2])
		}
		cidr := fmt.Sprintf("%s/%d", fields[0], bits)
		if err := t.AddRouteString(cidr, asn); err != nil {
			return n, fmt.Errorf("pfx2as: line %d: %w", line, err)
		}
		n++
	}
	return n, scanner.Err()
}

// LoadOrgs populates the ASN→organization registry from a pipe-separated
// text format echoing CAIDA's as2org: "asn|org name|country", e.g.
//
//	13335|Cloudflare|US
func (t *Table) LoadOrgs(r io.Reader) (int, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	n, line := 0, 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "|")
		if len(parts) != 3 {
			return n, fmt.Errorf("pfx2as: line %d: want asn|org|country", line)
		}
		asn, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return n, fmt.Errorf("pfx2as: line %d: bad asn %q", line, parts[0])
		}
		org := Org{
			Name:    strings.TrimSpace(parts[1]),
			Country: strings.ToUpper(strings.TrimSpace(parts[2])),
		}
		if err := t.RegisterOrg(asn, org); err != nil {
			return n, fmt.Errorf("pfx2as: line %d: %w", line, err)
		}
		n++
	}
	return n, scanner.Err()
}
