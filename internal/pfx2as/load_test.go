package pfx2as

import (
	"strings"
	"testing"
)

func TestLoadRoutesCAIDAFormat(t *testing.T) {
	feed := "# routeviews pfx2as\n" +
		"104.16.0.0\t13\t13335\n" +
		"52.0.0.0 8 16509\n" + // whitespace variant
		"198.51.100.0\t24\t64500_64501\n" + // multi-origin underscore
		"203.0.113.0\t24\t64502,64503\n" // multi-origin comma
	tbl := New()
	n, err := tbl.LoadRoutes(strings.NewReader(feed))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || tbl.Routes() != 4 {
		t.Fatalf("loaded %d routes", n)
	}
	if asn, ok := tbl.OriginASN(mustAddr(t, "104.17.2.3")); !ok || asn != 13335 {
		t.Errorf("origin = %d %v", asn, ok)
	}
	if asn, _ := tbl.OriginASN(mustAddr(t, "198.51.100.9")); asn != 64500 {
		t.Errorf("multi-origin underscore = %d", asn)
	}
	if asn, _ := tbl.OriginASN(mustAddr(t, "203.0.113.9")); asn != 64502 {
		t.Errorf("multi-origin comma = %d", asn)
	}
}

func TestLoadRoutesErrors(t *testing.T) {
	cases := []string{
		"104.16.0.0\t13",           // missing asn
		"104.16.0.0\tnope\t13335",  // bad length
		"104.16.0.0\t13\tnotanasn", // bad asn
		"garbage\t13\t13335",       // bad address
	}
	for _, feed := range cases {
		if _, err := New().LoadRoutes(strings.NewReader(feed)); err == nil {
			t.Errorf("feed %q accepted", feed)
		}
	}
}

func TestLoadOrgs(t *testing.T) {
	feed := `# as2org
13335|Cloudflare|US
16509 | Amazon | us
`
	tbl := New()
	n, err := tbl.LoadOrgs(strings.NewReader(feed))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d orgs", n)
	}
	org, ok := tbl.Org(16509)
	if !ok || org.Name != "Amazon" || org.Country != "US" {
		t.Errorf("org = %+v %v", org, ok)
	}
}

func TestLoadOrgsErrors(t *testing.T) {
	for _, feed := range []string{"13335|Cloudflare", "x|Cloudflare|US", "5||US"} {
		if _, err := New().LoadOrgs(strings.NewReader(feed)); err == nil {
			t.Errorf("feed %q accepted", feed)
		}
	}
}

func TestEndToEndLoadedTables(t *testing.T) {
	tbl := New()
	if _, err := tbl.LoadRoutes(strings.NewReader("104.16.0.0\t13\t13335")); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.LoadOrgs(strings.NewReader("13335|Cloudflare|US")); err != nil {
		t.Fatal(err)
	}
	org, ok := tbl.LookupOrgString("104.18.9.9")
	if !ok || org.Name != "Cloudflare" {
		t.Errorf("joined lookup = %+v %v", org, ok)
	}
}
