package pfx2as

import (
	"net/netip"
	"testing"
)

func TestLookupOrgJoin(t *testing.T) {
	tbl := New()
	if err := tbl.AddRouteString("104.16.0.0/13", 13335); err != nil {
		t.Fatal(err)
	}
	if err := tbl.RegisterOrg(13335, Org{Name: "Cloudflare", Country: "US"}); err != nil {
		t.Fatal(err)
	}
	org, ok := tbl.LookupOrgString("104.16.132.229")
	if !ok || org.Name != "Cloudflare" || org.Country != "US" {
		t.Errorf("LookupOrg = %+v %v", org, ok)
	}
}

func TestLongestPrefixSelectsOrigin(t *testing.T) {
	tbl := New()
	if err := tbl.AddRouteString("10.0.0.0/8", 100); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRouteString("10.5.0.0/16", 200); err != nil {
		t.Fatal(err)
	}
	if asn, _ := tbl.OriginASN(netip.MustParseAddr("10.5.1.1")); asn != 200 {
		t.Errorf("more-specific origin = %d", asn)
	}
	if asn, _ := tbl.OriginASN(netip.MustParseAddr("10.6.1.1")); asn != 100 {
		t.Errorf("covering origin = %d", asn)
	}
}

func TestUnroutedAndUnregistered(t *testing.T) {
	tbl := New()
	if err := tbl.AddRouteString("10.0.0.0/8", 100); err != nil {
		t.Fatal(err)
	}
	// Routed but unregistered ASN.
	if _, ok := tbl.LookupOrgString("10.1.1.1"); ok {
		t.Error("unregistered ASN produced an org")
	}
	// Unrouted space.
	if _, ok := tbl.LookupOrgString("11.1.1.1"); ok {
		t.Error("unrouted space produced an org")
	}
	// Garbage address.
	if _, ok := tbl.LookupOrgString("nope"); ok {
		t.Error("garbage address produced an org")
	}
}

func TestMultipleASNsOneOrg(t *testing.T) {
	tbl := New()
	for _, asn := range []int{16509, 14618} { // Amazon's real-world pattern
		if err := tbl.RegisterOrg(asn, Org{Name: "Amazon", Country: "US"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.AddRouteString("52.0.0.0/8", 16509); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRouteString("3.0.0.0/8", 14618); err != nil {
		t.Fatal(err)
	}
	a, _ := tbl.LookupOrgString("52.1.1.1")
	b, _ := tbl.LookupOrgString("3.1.1.1")
	if a.Name != "Amazon" || b.Name != "Amazon" {
		t.Errorf("orgs: %+v %+v", a, b)
	}
	asns := tbl.ASNs()
	if len(asns) != 2 || asns[0] != 14618 || asns[1] != 16509 {
		t.Errorf("ASNs = %v", asns)
	}
}

func TestValidation(t *testing.T) {
	tbl := New()
	if err := tbl.AddRouteString("10.0.0.0/8", 0); err == nil {
		t.Error("ASN 0 accepted")
	}
	if err := tbl.AddRoute(netip.MustParsePrefix("10.0.0.0/8"), -5); err == nil {
		t.Error("negative ASN accepted")
	}
	if err := tbl.RegisterOrg(0, Org{Name: "x"}); err == nil {
		t.Error("org for ASN 0 accepted")
	}
	if err := tbl.RegisterOrg(5, Org{}); err == nil {
		t.Error("empty org name accepted")
	}
	if err := tbl.AddRouteString("bad", 5); err == nil {
		t.Error("bad CIDR accepted")
	}
	if tbl.Routes() != 0 {
		t.Errorf("Routes = %d", tbl.Routes())
	}
}

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	return netip.MustParseAddr(s)
}
