package emd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSolveTrivialIdentity(t *testing.T) {
	// Moving a distribution onto itself with zero diagonal cost is free.
	supply := []float64{3, 2}
	demand := []float64{3, 2}
	cost := [][]float64{{0, 1}, {1, 0}}
	plan, err := Solve(supply, demand, cost)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(plan.Work, 0, 1e-9) {
		t.Errorf("Work = %v, want 0", plan.Work)
	}
	if !almostEqual(plan.TotalFlow, 5, 1e-9) {
		t.Errorf("TotalFlow = %v, want 5", plan.TotalFlow)
	}
}

func TestSolveKnownOptimum(t *testing.T) {
	// Classic 2x2 transportation instance with a unique optimum.
	// Supply (10, 20), demand (15, 15).
	// Costs: s0→d0:1 s0→d1:4; s1→d0:2 s1→d1:1.
	// Optimum: s0 sends 10 to d0 (10), s1 sends 5 to d0 (10) and 15 to d1
	// (15). Total 35.
	plan, err := Solve(
		[]float64{10, 20},
		[]float64{15, 15},
		[][]float64{{1, 4}, {2, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(plan.Work, 35, 1e-6) {
		t.Errorf("Work = %v, want 35", plan.Work)
	}
}

func TestSolveCrossShipment(t *testing.T) {
	// Instance where the greedy row-by-row assignment is suboptimal and the
	// solver must route around it.
	// Supply (5, 5), demand (5, 5).
	// Costs: s0→d0:10 s0→d1:1; s1→d0:1 s1→d1:10.
	// Optimum crosses: 5·1 + 5·1 = 10, not 5·10+5·10=100.
	plan, err := Solve(
		[]float64{5, 5},
		[]float64{5, 5},
		[][]float64{{10, 1}, {1, 10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(plan.Work, 10, 1e-6) {
		t.Errorf("Work = %v, want 10", plan.Work)
	}
}

func TestSolveRequiresBackwardArc(t *testing.T) {
	// 3x3 instance crafted so that a naive sequence of direct shipments is
	// improved by re-routing through backward residual arcs.
	supply := []float64{4, 4, 4}
	demand := []float64{4, 4, 4}
	cost := [][]float64{
		{1, 2, 9},
		{9, 1, 2},
		{2, 9, 1},
	}
	plan, err := Solve(supply, demand, cost)
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal assignment costs 4+4+4 = 12, clearly optimal here.
	if !almostEqual(plan.Work, 12, 1e-6) {
		t.Errorf("Work = %v, want 12", plan.Work)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve([]float64{1}, []float64{2}, [][]float64{{1}}); err != ErrUnbalanced {
		t.Errorf("want ErrUnbalanced, got %v", err)
	}
	if _, err := Solve([]float64{1}, []float64{1}, [][]float64{{1, 2}}); err != ErrDimensions {
		t.Errorf("want ErrDimensions (cols), got %v", err)
	}
	if _, err := Solve([]float64{1, 1}, []float64{2}, [][]float64{{1}}); err != ErrDimensions {
		t.Errorf("want ErrDimensions (rows), got %v", err)
	}
	if _, err := Solve([]float64{-1, 2}, []float64{1}, [][]float64{{1}, {1}}); err == nil {
		t.Error("negative supply accepted")
	}
	if _, err := Solve([]float64{1}, []float64{-1, 2}, [][]float64{{1, 1}}); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestSolveFlowConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		supply := make([]float64, n)
		demand := make([]float64, m)
		var total float64
		for i := range supply {
			supply[i] = float64(1 + rng.Intn(10))
			total += supply[i]
		}
		// Spread the same total across demand.
		rem := total
		for j := 0; j < m-1; j++ {
			d := rem * rng.Float64()
			demand[j] = d
			rem -= d
		}
		demand[m-1] = rem
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 10
			}
		}
		plan, err := Solve(supply, demand, cost)
		if err != nil {
			return false
		}
		// Conservation: per-source outflow == supply, per-sink inflow ==
		// demand.
		outflow := make([]float64, n)
		inflow := make([]float64, m)
		for _, fl := range plan.Flows {
			if fl.Amount < 0 {
				return false
			}
			outflow[fl.From] += fl.Amount
			inflow[fl.To] += fl.Amount
		}
		for i := range supply {
			if !almostEqual(outflow[i], supply[i], 1e-4) {
				return false
			}
		}
		for j := range demand {
			if !almostEqual(inflow[j], demand[j], 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolveNeverBeatenByRandomPlansProperty(t *testing.T) {
	// Optimality spot-check: no random feasible plan should cost less than
	// the solver's optimum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		supply := make([]float64, n)
		demand := make([]float64, n)
		for i := range supply {
			v := float64(1 + rng.Intn(9))
			supply[i] = v
			demand[i] = v
		}
		// Shuffle demand so the instance is nontrivial.
		rng.Shuffle(n, func(i, j int) { demand[i], demand[j] = demand[j], demand[i] })
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 5
			}
		}
		plan, err := Solve(supply, demand, cost)
		if err != nil {
			return false
		}
		// Random feasible plan via greedy matching in shuffled order.
		for trial := 0; trial < 5; trial++ {
			remS := append([]float64(nil), supply...)
			remD := append([]float64(nil), demand...)
			order := rng.Perm(n * n)
			var work float64
			for _, k := range order {
				i, j := k/n, k%n
				amt := math.Min(remS[i], remD[j])
				if amt > 0 {
					work += amt * cost[i][j]
					remS[i] -= amt
					remD[j] -= amt
				}
			}
			feasible := true
			for i := range remS {
				if remS[i] > 1e-9 {
					feasible = false
				}
			}
			if feasible && work < plan.Work-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCentralizationClosedFormMatchesSolver(t *testing.T) {
	// The heart of the paper's Appendix A: the closed form equals the exact
	// EMD against the fully decentralized reference.
	cases := [][]int{
		{1},
		{5},
		{1, 1, 1, 1},
		{4, 1},
		{3, 2, 1},
		{10, 5, 2, 1, 1, 1},
		{7, 7},
		{20, 1, 1, 1, 1, 1},
	}
	for _, counts := range cases {
		viaSolver, err := ReferenceEMD(counts)
		if err != nil {
			t.Fatalf("ReferenceEMD(%v): %v", counts, err)
		}
		closed := CentralizationInts(counts)
		if !almostEqual(viaSolver, closed, 1e-9) {
			t.Errorf("counts %v: solver EMD %v != closed form %v", counts, viaSolver, closed)
		}
	}
}

func TestCentralizationClosedFormMatchesSolverProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = 1 + rng.Intn(8)
		}
		viaSolver, err := ReferenceEMD(counts)
		if err != nil {
			return false
		}
		return almostEqual(viaSolver, CentralizationInts(counts), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCentralizationKnownValues(t *testing.T) {
	cases := []struct {
		counts []float64
		want   float64
	}{
		// Fully decentralized: C=4 sites on 4 providers → 4·(1/16) − 1/4 = 0.
		{[]float64{1, 1, 1, 1}, 0},
		// Monopoly of C=10: 1 − 1/10.
		{[]float64{10}, 0.9},
		// Two equal providers, C=10: 2·0.25 − 0.1 = 0.4.
		{[]float64{5, 5}, 0.4},
		// Empty.
		{nil, 0},
		{[]float64{0, 0}, 0},
	}
	for _, c := range cases {
		if got := Centralization(c.counts); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Centralization(%v) = %v, want %v", c.counts, got, c.want)
		}
	}
}

func TestCentralizationBoundsProperty(t *testing.T) {
	// 0 ≤ 𝒮 ≤ 1 − 1/C for every distribution, with the maximum only at
	// monopoly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		counts := make([]int, n)
		total := 0
		for i := range counts {
			counts[i] = rng.Intn(50)
			total += counts[i]
		}
		s := CentralizationInts(counts)
		if total == 0 {
			return s == 0
		}
		return s >= -1e-12 && s <= MaxCentralization(total)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCentralizationMergeIncreasesScoreProperty(t *testing.T) {
	// Consolidation axiom: merging two providers (holding C fixed) must not
	// decrease centralization. This is the "concentration" requirement from
	// the paper's Section 3.1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		counts := make([]float64, n)
		for i := range counts {
			counts[i] = float64(1 + rng.Intn(30))
		}
		before := Centralization(counts)
		i, j := rng.Intn(n), rng.Intn(n)
		for j == i {
			j = rng.Intn(n)
		}
		merged := append([]float64(nil), counts...)
		merged[i] += merged[j]
		merged[j] = 0
		after := Centralization(merged)
		return after >= before-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCentralizationScaleInvariantProperty(t *testing.T) {
	// 𝒮 depends on shares plus a 1/C offset; doubling every count keeps the
	// HHI term identical and only shrinks the 1/C correction, so scaling up
	// k× changes 𝒮 by exactly (1/C − 1/(kC)).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		counts := make([]float64, n)
		var c float64
		for i := range counts {
			counts[i] = float64(1 + rng.Intn(20))
			c += counts[i]
		}
		k := float64(2 + rng.Intn(5))
		scaled := make([]float64, n)
		for i := range counts {
			scaled[i] = counts[i] * k
		}
		diff := Centralization(scaled) - Centralization(counts)
		want := 1/c - 1/(k*c)
		return almostEqual(diff, want, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCentralizationOrderInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		counts := make([]float64, n)
		for i := range counts {
			counts[i] = float64(rng.Intn(40))
		}
		shuffled := append([]float64(nil), counts...)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return almostEqual(Centralization(counts), Centralization(shuffled), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReferenceEMDEdgeCases(t *testing.T) {
	if s, err := ReferenceEMD(nil); err != nil || s != 0 {
		t.Errorf("ReferenceEMD(nil) = %v, %v", s, err)
	}
	if s, err := ReferenceEMD([]int{0, 0}); err != nil || s != 0 {
		t.Errorf("ReferenceEMD(zeros) = %v, %v", s, err)
	}
	if _, err := ReferenceEMD([]int{-1, 2}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestMaxCentralization(t *testing.T) {
	if got := MaxCentralization(0); got != 0 {
		t.Errorf("MaxCentralization(0) = %v", got)
	}
	if got := MaxCentralization(10); !almostEqual(got, 0.9, 1e-12) {
		t.Errorf("MaxCentralization(10) = %v", got)
	}
	// Approaches 1 with larger C, as the paper notes.
	if got := MaxCentralization(100000); got <= 0.99 {
		t.Errorf("MaxCentralization(1e5) = %v, want > 0.99", got)
	}
}

func TestPlanDistanceZeroFlow(t *testing.T) {
	p := &Plan{}
	if p.Distance() != 0 {
		t.Error("zero-flow plan should have distance 0")
	}
}

func TestFigure2WorkedExample(t *testing.T) {
	// The paper's Figure 2 reports EMD ≈ 0.28 for Country A and ≈ 0.32 for
	// Country B, with B more centralized than A. The figure's exact pile
	// sizes are not printed; we reproduce the relationship with two
	// 25-website distributions whose closed forms land near the published
	// values, and confirm ordering is preserved.
	countryA := []int{7, 5, 4, 3, 2, 1, 1, 1, 1} // C=25, 𝒮≈0.130
	countryB := []int{10, 6, 3, 2, 1, 1, 1, 1}   // C=25, 𝒮≈0.202
	sa := CentralizationInts(countryA)
	sb := CentralizationInts(countryB)
	if sa >= sb {
		t.Errorf("Country A (%v) should be less centralized than B (%v)", sa, sb)
	}
	// Cross-check both against the exact solver.
	for _, counts := range [][]int{countryA, countryB} {
		got, err := ReferenceEMD(counts)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, CentralizationInts(counts), 1e-9) {
			t.Errorf("solver vs closed form mismatch for %v", counts)
		}
	}
}
