package emd

import (
	"math"
	"math/rand"
	"testing"
)

// Property-based checks over randomized inputs. The generator is seeded, so
// a failure reproduces deterministically; log the case, never just the seed.

const propertyTrials = 200

func newRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

// randomCounts draws a provider-count vector: 1..maxPiles piles with
// 0..maxCount websites each, at least one nonzero.
func randomCounts(rng *rand.Rand, maxPiles, maxCount int) []float64 {
	for {
		n := 1 + rng.Intn(maxPiles)
		counts := make([]float64, n)
		var total float64
		for i := range counts {
			counts[i] = float64(rng.Intn(maxCount + 1))
			total += counts[i]
		}
		if total > 0 {
			return counts
		}
	}
}

func TestCentralizationBounds(t *testing.T) {
	rng := newRand()
	for trial := 0; trial < propertyTrials; trial++ {
		counts := randomCounts(rng, 40, 50)
		var c float64
		for _, a := range counts {
			c += a
		}
		s := Centralization(counts)
		if s < 0 || s > 1 {
			t.Fatalf("trial %d: score %v outside [0,1] for %v", trial, s, counts)
		}
		if max := MaxCentralization(int(c)); s > max+1e-12 {
			t.Fatalf("trial %d: score %v exceeds max %v for %v", trial, s, max, counts)
		}
	}
}

func TestCentralizationPermutationInvariant(t *testing.T) {
	rng := newRand()
	for trial := 0; trial < propertyTrials; trial++ {
		counts := randomCounts(rng, 40, 50)
		want := Centralization(counts)
		shuffled := append([]float64(nil), counts...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := Centralization(shuffled)
		// Summation order changes, so allow float reassociation slack only.
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: score %v after shuffle, %v before (%v)", trial, got, want, counts)
		}
	}
}

// TestCentralizationConcentrationMonotonic: moving one website from a
// smaller pile onto a pile at least as large concentrates the distribution,
// so 𝒮 must strictly increase (total mass is unchanged).
func TestCentralizationConcentrationMonotonic(t *testing.T) {
	rng := newRand()
	for trial := 0; trial < propertyTrials; trial++ {
		counts := randomCounts(rng, 40, 50)
		// Pick a donor pile with mass and a receiver at least as large.
		donor, receiver := -1, -1
		for k := 0; k < 100; k++ {
			i, j := rng.Intn(len(counts)), rng.Intn(len(counts))
			if i != j && counts[j] > 0 && counts[i] >= counts[j] {
				receiver, donor = i, j
				break
			}
		}
		if donor == -1 {
			continue // e.g. single-pile vector; nothing to transfer
		}
		before := Centralization(counts)
		counts[receiver]++
		counts[donor]--
		after := Centralization(counts)
		if after <= before {
			t.Fatalf("trial %d: concentrating %v -> %v did not increase score (%v -> %v)",
				trial, donor, receiver, before, after)
		}
	}
}

// TestCentralizationDecentralizedIsZero: the fully decentralized
// distribution — every website its own provider — is the reference itself,
// so its distance from the reference is exactly zero.
func TestCentralizationDecentralizedIsZero(t *testing.T) {
	rng := newRand()
	for trial := 0; trial < propertyTrials; trial++ {
		c := 1 + rng.Intn(200)
		counts := make([]float64, c)
		for i := range counts {
			counts[i] = 1
		}
		if s := Centralization(counts); math.Abs(s) > 1e-15 {
			t.Fatalf("trial %d: decentralized distribution of %d sites scored %v, want 0", trial, c, s)
		}
	}
}

func TestCentralizationSingleProviderIsMax(t *testing.T) {
	rng := newRand()
	for trial := 0; trial < propertyTrials; trial++ {
		c := 1 + rng.Intn(500)
		got := Centralization([]float64{float64(c)})
		if want := MaxCentralization(c); math.Abs(got-want) > 1e-15 {
			t.Fatalf("trial %d: single provider of %d sites scored %v, want %v", trial, c, got, want)
		}
	}
}

// TestClosedFormMatchesSolverRandomized extends the equivalence claim
// (Appendix A) to random instances: the closed form and the exact
// transportation solver must agree on every randomly drawn distribution.
func TestClosedFormMatchesSolverRandomized(t *testing.T) {
	rng := newRand()
	for trial := 0; trial < 50; trial++ {
		fs := randomCounts(rng, 6, 8)
		counts := make([]int, len(fs))
		for i, f := range fs {
			counts[i] = int(f)
		}
		want := CentralizationInts(counts)
		got, err := ReferenceEMD(counts)
		if err != nil {
			t.Fatalf("trial %d: solver failed on %v: %v", trial, counts, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: solver %v, closed form %v for %v", trial, got, want, counts)
		}
	}
}
