package emd

import (
	"math/rand"
	"testing"
)

func BenchmarkCentralizationClosedForm(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]float64, 800) // a typical country's provider count
	for i := range counts {
		counts[i] = float64(1 + rng.Intn(500))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Centralization(counts)
	}
}

func BenchmarkSolveTransportation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 12
	supply := make([]float64, n)
	demand := make([]float64, n)
	for i := range supply {
		v := float64(1 + rng.Intn(20))
		supply[i] = v
		demand[(i+3)%n] = v
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 10
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(supply, demand, cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceEMD(b *testing.B) {
	counts := []int{40, 25, 12, 8, 5, 4, 3, 2, 1}
	for i := 0; i < b.N; i++ {
		if _, err := ReferenceEMD(counts); err != nil {
			b.Fatal(err)
		}
	}
}
