// Package emd implements the discrete Earth Mover's Distance (Wasserstein
// distance) used by the paper to formalize Internet centralization.
//
// Two implementations are provided:
//
//   - A general transportation-problem solver (Solve) over arbitrary supply,
//     demand, and ground-distance matrices, implemented as successive
//     shortest augmenting paths over the bipartite flow network. This is the
//     textbook formalization from the paper's Appendix A.
//
//   - The paper's closed-form instantiation (Centralization), where the
//     reference distribution is fully decentralized (every website has its
//     own provider) and the ground distance between observed pile a_i and a
//     reference pile is (a_i − 1)/C. Appendix A shows the optimum work then
//     collapses to 𝒮 = Σ (a_i/C)² − 1/C.
//
// The test suite uses the general solver to verify the closed form, which is
// the equivalence claim at the heart of the paper's Section 3.2.
package emd

import (
	"errors"
	"math"
)

// ErrUnbalanced is returned by Solve when total supply and total demand
// differ by more than a floating-point tolerance.
var ErrUnbalanced = errors.New("emd: total supply and demand differ")

// ErrDimensions is returned when the cost matrix does not match the supply
// and demand vector lengths.
var ErrDimensions = errors.New("emd: cost matrix dimensions mismatch")

const balanceTolerance = 1e-6

// Flow records how much mass the optimal transportation plan moves from
// supply pile From to demand pile To.
type Flow struct {
	From, To int
	Amount   float64
}

// Plan is the result of an exact EMD computation.
type Plan struct {
	// Work is the optimal total transportation cost Σ f_ij · d_ij.
	Work float64
	// TotalFlow is the total mass moved (equal to total supply).
	TotalFlow float64
	// Flows lists the nonzero flows of one optimal plan.
	Flows []Flow
}

// Distance returns the normalized EMD: Work / TotalFlow, the form the paper
// uses when ground distances lie in [0, 1]. It returns 0 when no mass moves.
func (p *Plan) Distance() float64 {
	if p.TotalFlow == 0 {
		return 0
	}
	return p.Work / p.TotalFlow
}

// Solve computes an exact optimal transportation plan moving the supply
// distribution onto the demand distribution under the ground-distance matrix
// cost, where cost[i][j] is the price of moving one unit from supply pile i
// to demand pile j. Supplies and demands must be nonnegative and balanced.
//
// The implementation is successive shortest augmenting paths with
// Bellman–Ford–style potentials, exact for nonnegative costs. Complexity is
// O(piles³) in the worst case, which is ample for the distribution sizes in
// this toolkit (the hot path uses the closed form instead).
func Solve(supply, demand []float64, cost [][]float64) (*Plan, error) {
	n, m := len(supply), len(demand)
	if len(cost) != n {
		return nil, ErrDimensions
	}
	for _, row := range cost {
		if len(row) != m {
			return nil, ErrDimensions
		}
	}
	var totalS, totalD float64
	for _, s := range supply {
		if s < 0 {
			return nil, errors.New("emd: negative supply")
		}
		totalS += s
	}
	for _, d := range demand {
		if d < 0 {
			return nil, errors.New("emd: negative demand")
		}
		totalD += d
	}
	scale := math.Max(totalS, 1)
	if math.Abs(totalS-totalD) > balanceTolerance*scale {
		return nil, ErrUnbalanced
	}

	remS := append([]float64(nil), supply...)
	remD := append([]float64(nil), demand...)
	flow := make([][]float64, n)
	for i := range flow {
		flow[i] = make([]float64, m)
	}

	active := func(xs []float64) []int {
		var idx []int
		for i, x := range xs {
			if x > balanceTolerance {
				idx = append(idx, i)
			}
		}
		return idx
	}

	for {
		srcs := active(remS)
		if len(srcs) == 0 {
			break
		}
		sinks := active(remD)
		if len(sinks) == 0 {
			break
		}

		// Shortest path from any active source to any active sink in the
		// residual network under true costs. Forward arc i→j costs
		// cost[i][j]; a backward arc j→i exists when flow[i][j] > 0 and
		// costs −cost[i][j]. Augmenting only along shortest paths keeps the
		// residual network free of negative cycles, so Bellman–Ford label
		// correction terminates and the final plan is optimal.
		const inf = math.MaxFloat64
		distS := make([]float64, n)
		distD := make([]float64, m)
		prevD := make([]int, m) // supply node feeding demand j on the path
		prevS := make([]int, n) // demand node feeding supply i (backward arc)
		for i := range distS {
			distS[i] = inf
			prevS[i] = -1
		}
		for j := range distD {
			distD[j] = inf
			prevD[j] = -1
		}
		for _, i := range srcs {
			distS[i] = 0
		}
		for changed := true; changed; {
			changed = false
			for i := 0; i < n; i++ {
				if distS[i] == inf {
					continue
				}
				for j := 0; j < m; j++ {
					if d := distS[i] + cost[i][j]; d < distD[j]-1e-12 {
						distD[j] = d
						prevD[j] = i
						changed = true
					}
				}
			}
			for j := 0; j < m; j++ {
				if distD[j] == inf {
					continue
				}
				for i := 0; i < n; i++ {
					if flow[i][j] <= balanceTolerance {
						continue
					}
					if d := distD[j] - cost[i][j]; d < distS[i]-1e-12 {
						distS[i] = d
						prevS[i] = j
						changed = true
					}
				}
			}
		}

		// Pick the reachable active sink with minimal distance.
		best := -1
		for _, j := range sinks {
			if distD[j] < inf && (best == -1 || distD[j] < distD[best]) {
				best = j
			}
		}
		if best == -1 {
			return nil, errors.New("emd: no augmenting path (internal)")
		}

		// Trace the path backward to find the bottleneck.
		type arc struct {
			i, j    int
			forward bool
		}
		var path []arc
		bottleneck := remD[best]
		j := best
		for {
			i := prevD[j]
			path = append(path, arc{i, j, true})
			if prevS[i] == -1 {
				bottleneck = math.Min(bottleneck, remS[i])
				break
			}
			jj := prevS[i]
			path = append(path, arc{i, jj, false})
			bottleneck = math.Min(bottleneck, flow[i][jj])
			j = jj
		}

		for _, a := range path {
			if a.forward {
				flow[a.i][a.j] += bottleneck
			} else {
				flow[a.i][a.j] -= bottleneck
			}
		}
		// The path's source endpoint is the supply node of its last arc.
		srcNode := path[len(path)-1].i
		remS[srcNode] -= bottleneck
		remD[best] -= bottleneck
	}

	plan := &Plan{TotalFlow: totalS}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if flow[i][j] > balanceTolerance {
				plan.Work += flow[i][j] * cost[i][j]
				plan.Flows = append(plan.Flows, Flow{From: i, To: j, Amount: flow[i][j]})
			}
		}
	}
	return plan, nil
}

// Centralization computes the paper's centralization score 𝒮 for an
// observed distribution of provider website counts:
//
//	𝒮 = Σ (a_i/C)² − 1/C,   C = Σ a_i
//
// which Appendix A derives as the exact EMD between the observed
// distribution and a fully decentralized reference (one provider per
// website) under the ground distance d_ij = (a_i − 1)/C. Counts must be
// nonnegative; zero-count providers contribute nothing. It returns 0 for an
// empty or all-zero distribution.
func Centralization(counts []float64) float64 {
	var c float64
	for _, a := range counts {
		if a > 0 {
			c += a
		}
	}
	if c == 0 {
		return 0
	}
	var sumSq float64
	for _, a := range counts {
		if a > 0 {
			share := a / c
			sumSq += share * share
		}
	}
	return sumSq - 1/c
}

// CentralizationSorted computes 𝒮 over a count vector that is already
// known to hold only positive counts (any order is accepted, but callers
// hold vectors sorted nonincreasing — the form the scoring index caches).
// It is the zero-allocation hot path behind Distribution.Score: two passes
// over the input, no copies, no sorting. The result is bit-identical to
// Centralization on the same slice, because both accumulate the total and
// the sum of squared shares in slice order.
func CentralizationSorted(counts []float64) float64 {
	var c float64
	for _, a := range counts {
		c += a
	}
	if c == 0 {
		return 0
	}
	var sumSq float64
	for _, a := range counts {
		share := a / c
		sumSq += share * share
	}
	return sumSq - 1/c
}

// CentralizationInts is Centralization over integer website counts, the
// natural form produced by the measurement pipeline.
func CentralizationInts(counts []int) float64 {
	fs := make([]float64, len(counts))
	for i, a := range counts {
		fs[i] = float64(a)
	}
	return Centralization(fs)
}

// ReferenceEMD computes 𝒮 through the general solver rather than the closed
// form: it builds the fully decentralized reference distribution (C piles of
// size 1) and the paper's ground distance d_ij = (a_i − 1)/C, then solves
// the transportation problem exactly and normalizes by total flow. It exists
// to validate the closed form and to support alternative references; counts
// must be positive integers and small enough that a C-pile reference is
// tractable.
func ReferenceEMD(counts []int) (float64, error) {
	var c int
	for _, a := range counts {
		if a < 0 {
			return 0, errors.New("emd: negative count")
		}
		c += a
	}
	if c == 0 {
		return 0, nil
	}
	var supply []float64
	var rows []int
	for i, a := range counts {
		if a > 0 {
			supply = append(supply, float64(a))
			rows = append(rows, i)
		}
	}
	demand := make([]float64, c)
	for j := range demand {
		demand[j] = 1
	}
	cost := make([][]float64, len(supply))
	for r, i := range rows {
		cost[r] = make([]float64, c)
		d := (float64(counts[i]) - 1) / float64(c)
		for j := range cost[r] {
			cost[r][j] = d
		}
	}
	plan, err := Solve(supply, demand, cost)
	if err != nil {
		return 0, err
	}
	return plan.Distance(), nil
}

// MaxCentralization returns the largest 𝒮 achievable with C total websites:
// 1 − 1/C, reached when a single provider hosts everything.
func MaxCentralization(c int) float64 {
	if c <= 0 {
		return 0
	}
	return 1 - 1/float64(c)
}
