package vantage

import (
	"errors"
	"math"
	"testing"
)

// TestCorrelateEdgeCases pins the undefined-correlation contract: inputs
// on which Pearson's ρ degenerates to NaN must return the typed sentinel,
// never a NaN that would poison downstream reports.
func TestCorrelateEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
	}{
		{"empty", nil, nil},
		{"single country", []float64{0.5}, []float64{0.4}},
		{"two countries", []float64{0.5, 0.6}, []float64{0.4, 0.7}},
		{"constant primary", []float64{0.5, 0.5, 0.5, 0.5}, []float64{0.1, 0.2, 0.3, 0.4}},
		{"constant probe", []float64{0.1, 0.2, 0.3, 0.4}, []float64{0.5, 0.5, 0.5, 0.5}},
		{"both constant", []float64{0.5, 0.5, 0.5}, []float64{0.2, 0.2, 0.2}},
	}
	for _, tc := range cases {
		rho, p, err := Correlate(tc.xs, tc.ys)
		if !errors.Is(err, ErrUndefinedCorrelation) {
			t.Errorf("%s: err = %v, want ErrUndefinedCorrelation", tc.name, err)
		}
		if rho != 0 || p != 0 {
			t.Errorf("%s: returned rho=%v p=%v alongside the error", tc.name, rho, p)
		}
	}

	if _, _, err := Correlate([]float64{1, 2, 3}, []float64{1, 2}); errors.Is(err, ErrUndefinedCorrelation) || err == nil {
		t.Errorf("mismatched lengths: err = %v, want a distinct length error", err)
	}
}

// TestCorrelateWellDefined: a clean input must produce a finite ρ and
// p-value with no error.
func TestCorrelateWellDefined(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	ys := []float64{0.12, 0.18, 0.33, 0.39, 0.52}
	rho, p, err := Correlate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rho) || math.IsNaN(p) {
		t.Fatalf("rho=%v p=%v: NaN leaked through the guards", rho, p)
	}
	if rho < 0.9 {
		t.Errorf("rho = %v for a near-linear input", rho)
	}
}
