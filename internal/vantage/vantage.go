// Package vantage reproduces the paper's vantage-point validation
// (Section 3.4): re-measure every country's toplist from geographically
// distributed probes (the RIPE Atlas substitute), recompute hosting
// centralization from the probe-observed addresses, and correlate against
// the primary vantage point's scores. The paper reports ρ = 0.96.
//
// The simulation models the two ways an in-country probe's view differs
// from a university vantage point: anycast CDNs map the probe to a
// different front-end POP (same organization, different address), and a
// small fraction of lookups fail or are remapped entirely (probe-local
// resolvers, split-horizon DNS, transient loss).
package vantage

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"

	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/stats"
	"github.com/webdep/webdep/internal/worldgen"
)

// ErrUndefinedCorrelation is returned when the probe-vs-primary score
// vectors cannot support a correlation at all: fewer than three countries
// (the p-value approximation divides by n-2) or a constant score vector
// (zero variance makes ρ 0/0). Callers distinguishing "validation failed"
// from "validation impossible on this input" match it with errors.Is.
var ErrUndefinedCorrelation = errors.New("correlation undefined")

// Options tunes the probe simulation.
type Options struct {
	// Seed drives probe randomness.
	Seed int64
	// FailureRate is the fraction of lookups that return nothing
	// (default 0.02).
	FailureRate float64
	// RemapRate is the fraction of anycast-hosted sites whose probe view
	// maps to a different global front-end organization (default 0.015).
	RemapRate float64
}

func (o Options) withDefaults() Options {
	if o.FailureRate == 0 {
		o.FailureRate = 0.05
	}
	if o.RemapRate == 0 {
		o.RemapRate = 0.08
	}
	return o
}

// Result compares the probe measurement against the primary one.
type Result struct {
	// PrimaryScores and ProbeScores are hosting centralization per country.
	PrimaryScores map[string]float64
	ProbeScores   map[string]float64
	// Rho is Pearson's correlation between the two score vectors.
	Rho float64
	// PValue is the approximate two-sided p-value for Rho.
	PValue float64
	// CountriesWithoutProbes lists countries measured through random
	// foreign probes (the paper had 14 such countries).
	CountriesWithoutProbes []string
}

// noProbeCountries mirrors the paper's note that 14 countries had no RIPE
// probes; their measurements route through random probes elsewhere, which
// raises their failure/remap rates.
var noProbeCountries = map[string]bool{
	"TM": true, "SY": true, "YE": true, "LY": true, "SD": true, "SO": true,
	"MV": true, "PG": true, "CU": true, "HT": true, "GA": true, "CD": true,
	"MW": true, "LA": true,
}

// Validate re-measures a world from distributed probes and correlates the
// per-country hosting scores with the primary measurement's.
func Validate(w *worldgen.World, primary *dataset.Corpus, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	probe := dataset.NewCorpus(primary.Epoch + "-probes")
	p := pipeline.FromWorld(w)

	var withoutProbes []string
	for _, cc := range w.Config.Countries {
		raw := w.Raw[cc]
		rng := rand.New(rand.NewSource(opts.Seed ^ int64(hash(cc))))
		// Probe quality varies by country: probe density, resolver
		// behavior, and CDN mapping all differ, so the effective noise is
		// heteroscedastic (this is what keeps ρ at 0.96 rather than 1.0).
		quality := 0.2 + 3.0*rng.Float64()
		failure := opts.FailureRate * quality
		remap := opts.RemapRate * quality
		if noProbeCountries[cc] {
			withoutProbes = append(withoutProbes, cc)
			failure *= 3
			remap *= 2
		}
		perturbed := make([]worldgen.RawSite, 0, len(raw))
		for _, site := range raw {
			s := site
			switch {
			case rng.Float64() < failure:
				// Lookup failed at the probe: the site drops out of the
				// distribution, exactly as an unresolved domain does.
				s.HostIP = netip.Addr{}
			case w.Anycast.Contains(s.HostIP) && rng.Float64() < remap:
				// The CDN mapped this probe to a different front-end
				// organization.
				s.HostIP = w.ProviderByName[randomAnycastProvider(w, rng)].Prefix.Addr().Next()
			}
			perturbed = append(perturbed, s)
		}
		probe.Add(p.EnrichCountry(cc, probe.Epoch, perturbed))
	}

	primaryScores := primary.Scores(countries.Hosting)
	probeScores := probe.Scores(countries.Hosting)
	var xs, ys []float64
	for _, cc := range w.Config.Countries {
		xs = append(xs, primaryScores[cc])
		ys = append(ys, probeScores[cc])
	}
	rho, pv, err := Correlate(xs, ys)
	if err != nil {
		return nil, err
	}
	return &Result{
		PrimaryScores:          primaryScores,
		ProbeScores:            probeScores,
		Rho:                    rho,
		PValue:                 pv,
		CountriesWithoutProbes: withoutProbes,
	}, nil
}

// Correlate computes Pearson's ρ and its approximate two-sided p-value for
// two equal-length score vectors, guarding every input on which the
// statistic degenerates to NaN: empty or single-country vectors, fewer
// than three points (no degrees of freedom for the p-value), and constant
// vectors (zero variance). All of those return an error wrapping
// ErrUndefinedCorrelation instead of quietly propagating NaN into reports.
func Correlate(xs, ys []float64) (rho, p float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("vantage: score vectors differ in length: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 3 {
		return 0, 0, fmt.Errorf("vantage: %w: %d countries, need at least 3", ErrUndefinedCorrelation, len(xs))
	}
	rho, perr := stats.Pearson(xs, ys)
	if perr != nil {
		if errors.Is(perr, stats.ErrInsufficientData) {
			return 0, 0, fmt.Errorf("vantage: %w: a score vector is constant across countries", ErrUndefinedCorrelation)
		}
		return 0, 0, perr
	}
	return rho, stats.PearsonPValue(rho, len(xs)), nil
}

func randomAnycastProvider(w *worldgen.World, rng *rand.Rand) string {
	anycast := []string{"Cloudflare", "Akamai", "Fastly", "Google"}
	return anycast[rng.Intn(len(anycast))]
}

func hash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
