package vantage

import (
	"testing"

	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/worldgen"
)

func TestValidateHighCorrelation(t *testing.T) {
	w, err := worldgen.Build(worldgen.Config{
		Seed:            11,
		SitesPerCountry: 1000,
		Countries: []string{
			"TH", "ID", "US", "CZ", "SK", "RU", "IR", "JP", "BR", "FR",
			"DE", "GB", "IN", "NG", "TM", "SY", "KR", "MX", "PL", "TR",
		},
		DomesticPerCountry: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	primary, err := pipeline.FromWorld(w).MeasureWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Validate(w, primary, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ρ = 0.96 with p ≪ 0.05.
	if res.Rho < 0.90 {
		t.Errorf("rho = %v, paper reports 0.96", res.Rho)
	}
	if res.Rho > 0.9999 {
		t.Errorf("rho = %v; probe view should differ at least slightly", res.Rho)
	}
	if res.PValue > 0.05 {
		t.Errorf("p = %v, want ≪ 0.05", res.PValue)
	}
	// TM and SY are in the no-probe list.
	found := map[string]bool{}
	for _, cc := range res.CountriesWithoutProbes {
		found[cc] = true
	}
	if !found["TM"] || !found["SY"] {
		t.Errorf("no-probe countries = %v", res.CountriesWithoutProbes)
	}
	if len(res.ProbeScores) != 20 || len(res.PrimaryScores) != 20 {
		t.Errorf("score maps sized %d/%d", len(res.ProbeScores), len(res.PrimaryScores))
	}
}

func TestValidateDeterministic(t *testing.T) {
	w, err := worldgen.Build(worldgen.Config{
		Seed:               11,
		SitesPerCountry:    400,
		Countries:          []string{"US", "TH", "CZ"},
		DomesticPerCountry: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	primary, err := pipeline.FromWorld(w).MeasureWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Validate(w, primary, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Validate(w, primary, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rho != b.Rho {
		t.Errorf("same seed, different rho: %v vs %v", a.Rho, b.Rho)
	}
}
