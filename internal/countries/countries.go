// Package countries embeds the paper's country reference (Appendix E: the
// 150 countries studied, with UN subregion and continent) and the published
// per-country centralization scores for all four infrastructure layers
// (Appendix F, Tables 5–8).
//
// The published scores serve two purposes in this toolkit: they calibrate
// the synthetic world generator (so the reproduced experiments share the
// paper's cross-country structure), and they are the paper-side values in
// every paper-vs-measured comparison recorded by the experiment harness.
package countries

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Layer identifies one of the four web-infrastructure layers the paper
// analyzes.
type Layer int

const (
	Hosting Layer = iota
	DNS
	CA
	TLD
	numLayers
)

// Layers lists every layer in presentation order.
var Layers = []Layer{Hosting, DNS, CA, TLD}

// String returns the layer's display name.
func (l Layer) String() string {
	switch l {
	case Hosting:
		return "hosting"
	case DNS:
		return "dns"
	case CA:
		return "ca"
	case TLD:
		return "tld"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// Country is one row of the paper's Appendix E reference plus the published
// centralization scores for each layer.
type Country struct {
	Code      string // ISO 3166-1 alpha-2
	Name      string
	Region    string // UN subregion, e.g. "South-eastern Asia"
	Continent string // AF, AS, EU, NA, OC, SA

	// PaperScore holds the published centralization score 𝒮 per layer
	// (Tables 5–8), indexed by Layer.
	PaperScore [4]float64
	// PaperRank holds the published 1-based centralization rank per layer
	// (rank 1 = most centralized), indexed by Layer.
	PaperRank [4]int
}

var (
	all    []Country
	byCode map[string]*Country
)

// All returns the 150 studied countries in ISO-code order. The returned
// slice is shared; callers must not modify it.
func All() []Country { return all }

// ByCode looks up a country by its ISO alpha-2 code. The second return is
// false when the code is not part of the study.
func ByCode(code string) (Country, bool) {
	c, ok := byCode[strings.ToUpper(code)]
	if !ok {
		return Country{}, false
	}
	return *c, true
}

// Codes returns all country codes in ISO-code order.
func Codes() []string {
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = c.Code
	}
	return out
}

// Regions returns the distinct UN subregions in alphabetical order.
func Regions() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range all {
		if !seen[c.Region] {
			seen[c.Region] = true
			out = append(out, c.Region)
		}
	}
	sort.Strings(out)
	return out
}

// InRegion returns the countries in a UN subregion, in ISO-code order.
func InRegion(region string) []Country {
	var out []Country
	for _, c := range all {
		if c.Region == region {
			out = append(out, c)
		}
	}
	return out
}

// InContinent returns the countries on a continent (two-letter code from
// Appendix E), in ISO-code order.
func InContinent(continent string) []Country {
	var out []Country
	for _, c := range all {
		if c.Continent == continent {
			out = append(out, c)
		}
	}
	return out
}

// PaperScores returns the published per-country scores for one layer as a
// code→score map.
func PaperScores(layer Layer) map[string]float64 {
	out := make(map[string]float64, len(all))
	for _, c := range all {
		out[c.Code] = c.PaperScore[layer]
	}
	return out
}

func init() {
	byCode = make(map[string]*Country)
	for _, line := range strings.Split(strings.TrimSpace(appendixE), "\n") {
		parts := strings.Split(line, "|")
		if len(parts) != 4 {
			panic(fmt.Sprintf("countries: malformed Appendix E row %q", line))
		}
		all = append(all, Country{
			Code:      parts[0],
			Name:      parts[1],
			Region:    parts[2],
			Continent: parts[3],
		})
	}
	if len(all) != 150 {
		panic(fmt.Sprintf("countries: expected 150 countries, embedded %d", len(all)))
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Code < all[j].Code })
	for i := range all {
		if _, dup := byCode[all[i].Code]; dup {
			panic("countries: duplicate code " + all[i].Code)
		}
		byCode[all[i].Code] = &all[i]
	}

	for layer, table := range map[Layer]string{
		Hosting: table5Hosting,
		DNS:     table6DNS,
		CA:      table7CA,
		TLD:     table8TLD,
	} {
		seen := 0
		for rank, line := range strings.Split(strings.TrimSpace(table), "\n") {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				panic(fmt.Sprintf("countries: malformed score row %q", line))
			}
			c, ok := byCode[fields[0]]
			if !ok {
				panic("countries: score for unknown country " + fields[0])
			}
			s, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				panic(err)
			}
			c.PaperScore[layer] = s
			c.PaperRank[layer] = rank + 1
			seen++
		}
		if seen != 150 {
			panic(fmt.Sprintf("countries: layer %v has %d scores", layer, seen))
		}
	}
}

// appendixE is the paper's Table 4: code|name|UN subregion|continent.
const appendixE = `
AE|United Arab Emirates|Western Asia|AS
AF|Afghanistan|Southern Asia|AS
AL|Albania|Southern Europe|EU
AM|Armenia|Western Asia|AS
AO|Angola|Middle Africa|AF
AR|Argentina|South America|SA
AT|Austria|Western Europe|EU
AU|Australia|Oceania|OC
AZ|Azerbaijan|Western Asia|AS
BA|Bosnia and Herzegovina|Southern Europe|EU
BD|Bangladesh|Southern Asia|AS
BE|Belgium|Western Europe|EU
BF|Burkina Faso|Western Africa|AF
BG|Bulgaria|Eastern Europe|EU
BH|Bahrain|Western Asia|AS
BJ|Benin|Western Africa|AF
BN|Brunei Darussalam|South-eastern Asia|AS
BO|Bolivia|South America|SA
BR|Brazil|South America|SA
BW|Botswana|Southern Africa|AF
BY|Belarus|Eastern Europe|EU
CA|Canada|Northern America|NA
CD|Congo|Middle Africa|AF
CH|Switzerland|Western Europe|EU
CI|Côte d'Ivoire|Western Africa|AF
CL|Chile|South America|SA
CM|Cameroon|Middle Africa|AF
CO|Colombia|South America|SA
CR|Costa Rica|Central America|NA
CU|Cuba|Caribbean|NA
CY|Cyprus|Western Asia|AS
CZ|Czechia|Eastern Europe|EU
DE|Germany|Western Europe|EU
DK|Denmark|Northern Europe|EU
DO|Dominican Republic|Caribbean|NA
DZ|Algeria|Northern Africa|AF
EC|Ecuador|South America|SA
EE|Estonia|Northern Europe|EU
EG|Egypt|Northern Africa|AF
ES|Spain|Southern Europe|EU
ET|Ethiopia|Eastern Africa|AF
FI|Finland|Northern Europe|EU
FR|France|Western Europe|EU
GA|Gabon|Middle Africa|AF
GB|United Kingdom|Northern Europe|EU
GE|Georgia|Western Asia|AS
GH|Ghana|Western Africa|AF
GP|Guadeloupe|Caribbean|NA
GR|Greece|Southern Europe|EU
GT|Guatemala|Central America|NA
HK|Hong Kong|Eastern Asia|AS
HN|Honduras|Central America|NA
HR|Croatia|Southern Europe|EU
HT|Haiti|Caribbean|NA
HU|Hungary|Eastern Europe|EU
ID|Indonesia|South-eastern Asia|AS
IE|Ireland|Northern Europe|EU
IL|Israel|Western Asia|AS
IN|India|Southern Asia|AS
IQ|Iraq|Western Asia|AS
IR|Iran|Southern Asia|AS
IS|Iceland|Northern Europe|EU
IT|Italy|Southern Europe|EU
JM|Jamaica|Caribbean|NA
JO|Jordan|Western Asia|AS
JP|Japan|Eastern Asia|AS
KE|Kenya|Eastern Africa|AF
KG|Kyrgyzstan|Central Asia|AS
KH|Cambodia|South-eastern Asia|AS
KR|Korea|Eastern Asia|AS
KW|Kuwait|Western Asia|AS
KZ|Kazakhstan|Central Asia|AS
LA|Laos|South-eastern Asia|AS
LB|Lebanon|Western Asia|AS
LK|Sri Lanka|Southern Asia|AS
LT|Lithuania|Northern Europe|EU
LU|Luxembourg|Western Europe|EU
LV|Latvia|Northern Europe|EU
LY|Libya|Northern Africa|AF
MA|Morocco|Northern Africa|AF
MD|Moldova|Eastern Europe|EU
ME|Montenegro|Southern Europe|EU
MG|Madagascar|Eastern Africa|AF
MK|North Macedonia|Southern Europe|EU
ML|Mali|Western Africa|AF
MM|Myanmar|South-eastern Asia|AS
MN|Mongolia|Eastern Asia|AS
MO|Macao|Eastern Asia|AS
MQ|Martinique|Caribbean|NA
MT|Malta|Southern Europe|EU
MU|Mauritius|Eastern Africa|AF
MV|Maldives|Southern Asia|AS
MW|Malawi|Eastern Africa|AF
MX|Mexico|Central America|NA
MY|Malaysia|South-eastern Asia|AS
MZ|Mozambique|Eastern Africa|AF
NA|Namibia|Southern Africa|AF
NG|Nigeria|Western Africa|AF
NI|Nicaragua|Central America|NA
NL|Netherlands|Western Europe|EU
NO|Norway|Northern Europe|EU
NP|Nepal|Southern Asia|AS
NZ|New Zealand|Oceania|OC
OM|Oman|Western Asia|AS
PA|Panama|Central America|NA
PE|Peru|South America|SA
PG|Papua New Guinea|Oceania|OC
PH|Philippines|South-eastern Asia|AS
PK|Pakistan|Southern Asia|AS
PL|Poland|Eastern Europe|EU
PR|Puerto Rico|Caribbean|NA
PS|Palestine|Western Asia|AS
PT|Portugal|Southern Europe|EU
PY|Paraguay|South America|SA
QA|Qatar|Western Asia|AS
RE|Réunion|Eastern Africa|AF
RO|Romania|Eastern Europe|EU
RS|Serbia|Southern Europe|EU
RU|Russia|Eastern Europe|EU
RW|Rwanda|Eastern Africa|AF
SA|Saudi Arabia|Western Asia|AS
SD|Sudan|Northern Africa|AF
SE|Sweden|Northern Europe|EU
SG|Singapore|South-eastern Asia|AS
SI|Slovenia|Southern Europe|EU
SK|Slovakia|Eastern Europe|EU
SN|Senegal|Western Africa|AF
SO|Somalia|Eastern Africa|AF
SV|El Salvador|Central America|NA
SY|Syria|Western Asia|AS
TG|Togo|Western Africa|AF
TH|Thailand|South-eastern Asia|AS
TJ|Tajikistan|Central Asia|AS
TM|Turkmenistan|Central Asia|AS
TN|Tunisia|Northern Africa|AF
TR|Turkey|Western Asia|AS
TT|Trinidad and Tobago|Caribbean|NA
TW|Taiwan|Eastern Asia|AS
TZ|Tanzania|Eastern Africa|AF
UA|Ukraine|Eastern Europe|EU
UG|Uganda|Eastern Africa|AF
US|United States|Northern America|NA
UY|Uruguay|South America|SA
UZ|Uzbekistan|Central Asia|AS
VE|Venezuela|South America|SA
VN|Viet Nam|South-eastern Asia|AS
YE|Yemen|Western Asia|AS
ZA|South Africa|Southern Africa|AF
ZM|Zambia|Eastern Africa|AF
ZW|Zimbabwe|Eastern Africa|AF
`

// table5Hosting is the paper's Table 5 (hosting-provider centralization) in
// rank order: country code and published 𝒮.
const table5Hosting = `
TH 0.3548
ID 0.3258
MM 0.2641
LA 0.2526
IQ 0.2490
LY 0.2462
SY 0.2379
PK 0.2300
KH 0.2299
OM 0.2287
SA 0.2282
PS 0.2254
KW 0.2228
YE 0.2219
LB 0.2219
JO 0.2198
SD 0.2188
NP 0.2167
QA 0.2161
EG 0.2155
BH 0.2151
MY 0.2143
DZ 0.2126
SG 0.2003
SO 0.1991
BN 0.1983
BD 0.1971
AE 0.1937
PH 0.1934
MA 0.1852
TN 0.1848
MV 0.1823
AL 0.1806
ET 0.1764
TT 0.1755
PG 0.1755
LK 0.1749
AZ 0.1743
MU 0.1737
BW 0.1727
JM 0.1702
VN 0.1694
ZM 0.1653
AO 0.1623
GH 0.1608
MW 0.1603
IN 0.1600
ZA 0.1549
HN 0.1545
NI 0.1537
NZ 0.1524
MZ 0.1519
DO 0.1511
NA 0.1508
AU 0.1504
PA 0.1495
NG 0.1493
VE 0.1488
PR 0.1478
GB 0.1463
MT 0.1462
CU 0.1459
BR 0.1446
ZW 0.1443
KE 0.1431
CY 0.1418
UG 0.1406
IE 0.1398
TZ 0.1395
TR 0.1394
SV 0.1374
MN 0.1360
HT 0.1359
PY 0.1359
US 0.1358
GT 0.1340
BO 0.1335
IL 0.1320
GR 0.1319
MG 0.1318
CM 0.1310
CA 0.1308
CR 0.1287
LT 0.1286
RW 0.1275
SN 0.1273
TG 0.1266
CI 0.1247
BJ 0.1244
GA 0.1232
UA 0.1228
CD 0.1219
PE 0.1218
CL 0.1213
MX 0.1203
ML 0.1193
MK 0.1192
EC 0.1192
BG 0.1188
HK 0.1180
RE 0.1140
BA 0.1121
AM 0.1103
GE 0.1086
LU 0.1080
FR 0.1069
UY 0.1066
PT 0.1065
NL 0.1062
CO 0.1044
JP 0.1036
IS 0.1025
ME 0.1020
SE 0.1018
BF 0.1018
GP 0.1011
DK 0.1010
MQ 0.1007
UZ 0.0978
EE 0.0970
DE 0.0947
NO 0.0937
HR 0.0931
AR 0.0928
ES 0.0918
TW 0.0914
RS 0.0905
AF 0.0904
PL 0.0887
BE 0.0880
MD 0.0876
LV 0.0873
RO 0.0869
KG 0.0868
IT 0.0859
TJ 0.0844
CH 0.0842
MO 0.0839
KR 0.0825
AT 0.0816
FI 0.0815
KZ 0.0790
BY 0.0766
SI 0.0645
HU 0.0604
CZ 0.0561
RU 0.0554
SK 0.0497
TM 0.0461
IR 0.0411
`

// table6DNS is the paper's Table 6 (DNS-infrastructure centralization).
const table6DNS = `
ID 0.3757
TH 0.3374
IQ 0.2730
SY 0.2653
LY 0.2548
MM 0.2469
SD 0.2439
NP 0.2430
YE 0.2346
PS 0.2340
OM 0.2340
BD 0.2317
EG 0.2291
JO 0.2281
LA 0.2281
SA 0.2241
KW 0.2217
DZ 0.2159
SO 0.2157
QA 0.2140
LB 0.2139
BH 0.2136
KH 0.2136
PK 0.2115
MN 0.2115
LK 0.1956
LT 0.1919
PH 0.1900
BN 0.1892
AL 0.1855
AE 0.1827
MV 0.1817
TT 0.1805
TN 0.1803
ET 0.1796
AZ 0.1772
VN 0.1769
IN 0.1755
MA 0.1750
PG 0.1732
JM 0.1712
MY 0.1700
ZM 0.1651
MU 0.1643
DO 0.1628
NI 0.1624
NG 0.1611
VE 0.1610
GH 0.1607
MW 0.1601
HN 0.1600
BW 0.1594
AO 0.1553
CU 0.1549
GT 0.1531
PY 0.1517
MZ 0.1499
BR 0.1472
SG 0.1466
KE 0.1461
PA 0.1457
SV 0.1456
UG 0.1451
TR 0.1444
CY 0.1393
BO 0.1359
HT 0.1354
TZ 0.1352
NA 0.1342
PE 0.1332
NZ 0.1327
MT 0.1321
ZW 0.1305
RW 0.1300
PR 0.1287
CR 0.1286
IL 0.1284
GR 0.1266
CM 0.1246
AU 0.1235
EC 0.1227
US 0.1221
CO 0.1214
MK 0.1212
SN 0.1189
UY 0.1179
TG 0.1173
AM 0.1168
BJ 0.1164
MG 0.1157
BG 0.1155
GE 0.1142
GA 0.1135
MX 0.1124
CD 0.1123
CI 0.1119
ZA 0.1113
CA 0.1099
JP 0.1097
CL 0.1072
GB 0.1072
ML 0.1052
AF 0.1047
EE 0.1001
ME 0.0966
AR 0.0953
UA 0.0953
UZ 0.0924
MD 0.0907
IE 0.0897
BA 0.0894
RE 0.0894
BF 0.0893
TJ 0.0868
KG 0.0862
BY 0.0841
ES 0.0836
PT 0.0819
KZ 0.0818
LV 0.0813
LU 0.0808
FR 0.0805
KR 0.0804
GP 0.0797
MQ 0.0793
NL 0.0793
DK 0.0792
TW 0.0775
HR 0.0774
HK 0.0760
PL 0.0760
RO 0.0704
RS 0.0703
IT 0.0676
IS 0.0660
DE 0.0656
NO 0.0644
MO 0.0625
BE 0.0624
IR 0.0620
CH 0.0611
SE 0.0556
RU 0.0556
AT 0.0543
SI 0.0485
TM 0.0460
FI 0.0459
SK 0.0429
HU 0.0404
CZ 0.0391
`

// table7CA is the paper's Table 7 (certificate-authority centralization).
const table7CA = `
SK 0.3304
CZ 0.3268
EE 0.2811
IR 0.2807
SI 0.2623
HU 0.2555
RU 0.2474
TM 0.2462
BY 0.2418
LT 0.2404
UA 0.2354
LV 0.2332
TJ 0.2331
MD 0.2329
GR 0.2323
KZ 0.2289
RS 0.2259
TH 0.2243
KG 0.2235
HR 0.2222
BG 0.2200
RO 0.2198
AT 0.2183
AU 0.2179
DK 0.2165
UZ 0.2154
RE 0.2153
IS 0.2137
BA 0.2123
MT 0.2116
LA 0.2113
MQ 0.2107
NZ 0.2106
CH 0.2101
SE 0.2097
GP 0.2096
US 0.2096
MU 0.2084
MM 0.2077
NO 0.2074
IQ 0.2054
MG 0.2051
IE 0.2043
PR 0.2041
MK 0.2039
FI 0.2038
ME 0.2035
ID 0.2035
BN 0.2032
MV 0.2030
AF 0.2030
TT 0.2022
LU 0.2020
AL 0.2012
GB 0.2012
DE 0.2005
LY 0.2004
GA 0.1996
MO 0.1995
TZ 0.1992
JM 0.1988
JO 0.1984
BW 0.1978
BJ 0.1976
SY 0.1975
CD 0.1974
NL 0.1973
SG 0.1971
SO 0.1967
LB 0.1966
TG 0.1963
AE 0.1962
IL 0.1958
SD 0.1956
NP 0.1956
ZA 0.1956
CA 0.1953
ZW 0.1953
KH 0.1952
PG 0.1949
HT 0.1945
TN 0.1943
MW 0.1943
BF 0.1937
PS 0.1937
AM 0.1936
CY 0.1932
KW 0.1930
DZ 0.1928
UG 0.1926
IT 0.1924
CI 0.1923
GH 0.1922
PT 0.1920
QA 0.1920
AO 0.1920
SN 0.1918
BH 0.1917
NA 0.1917
ML 0.1913
GE 0.1910
BE 0.1910
PK 0.1908
ZM 0.1907
ET 0.1903
YE 0.1902
PY 0.1901
CU 0.1900
CM 0.1899
LK 0.1897
OM 0.1895
FR 0.1891
MY 0.1889
DO 0.1887
SA 0.1887
PL 0.1884
MA 0.1879
MZ 0.1874
RW 0.1870
KE 0.1868
AZ 0.1863
EG 0.1859
NI 0.1853
HK 0.1852
AR 0.1850
GT 0.1848
HN 0.1845
PA 0.1833
BO 0.1828
ES 0.1816
UY 0.1810
BD 0.1804
CR 0.1798
SV 0.1795
VE 0.1786
BR 0.1779
NG 0.1779
MX 0.1750
EC 0.1745
MN 0.1738
PH 0.1738
CL 0.1683
IN 0.1683
PE 0.1657
TR 0.1639
KR 0.1631
CO 0.1618
VN 0.1599
JP 0.1499
TW 0.1308
`

// table8TLD is the paper's Table 8 (TLD centralization).
const table8TLD = `
US 0.5853
PR 0.5358
TT 0.4821
JM 0.4771
CZ 0.4656
HU 0.4450
PL 0.4265
TH 0.4108
GR 0.4044
CR 0.4022
CA 0.4008
BN 0.3979
PA 0.3951
MM 0.3945
LA 0.3903
BR 0.3856
EG 0.3846
HN 0.3837
RO 0.3811
MW 0.3797
TR 0.3776
SK 0.3731
SO 0.3729
NI 0.3723
NG 0.3713
SV 0.3701
JO 0.3701
IT 0.3700
KW 0.3699
JP 0.3693
DK 0.3692
BH 0.3668
PG 0.3666
ZM 0.3658
LB 0.3647
FI 0.3646
UG 0.3635
YE 0.3620
KR 0.3613
KH 0.3610
LY 0.3610
MV 0.3609
GH 0.3609
SD 0.3608
BW 0.3600
ML 0.3595
GT 0.3595
NA 0.3591
ET 0.3586
IQ 0.3579
GP 0.3552
MQ 0.3539
SY 0.3535
MT 0.3530
AU 0.3530
BF 0.3521
DO 0.3517
PH 0.3510
CL 0.3496
FR 0.3481
GB 0.3470
VE 0.3469
GA 0.3468
OM 0.3450
RW 0.3439
IR 0.3418
RU 0.3416
HT 0.3407
AR 0.3391
NZ 0.3369
CU 0.3367
CO 0.3364
ES 0.3355
QA 0.3339
MX 0.3326
SA 0.3325
PS 0.3311
CM 0.3302
KE 0.3293
TZ 0.3284
TG 0.3284
NL 0.3270
SE 0.3258
MG 0.3254
DZ 0.3252
IN 0.3250
AE 0.3245
ZW 0.3233
MO 0.3227
HK 0.3223
BD 0.3214
MU 0.3203
BJ 0.3200
LT 0.3186
SG 0.3174
SN 0.3166
EC 0.3144
ZA 0.3143
AF 0.3142
NP 0.3138
CI 0.3128
CD 0.3108
RE 0.3106
NO 0.3098
PE 0.3077
BO 0.3076
MA 0.3055
TW 0.3054
BG 0.3051
SI 0.3043
IE 0.3040
LK 0.3024
PK 0.3015
PT 0.3009
IL 0.2971
UY 0.2966
DE 0.2920
RS 0.2914
MY 0.2905
TN 0.2893
HR 0.2878
AL 0.2781
PY 0.2700
EE 0.2694
MN 0.2624
AO 0.2592
BE 0.2573
MK 0.2560
MZ 0.2524
VN 0.2506
CY 0.2486
UA 0.2470
LV 0.2421
IS 0.2367
CH 0.2356
BY 0.2289
ID 0.2272
BA 0.2228
ME 0.2192
TM 0.2128
AT 0.2123
AZ 0.2035
GE 0.1936
LU 0.1838
AM 0.1794
KZ 0.1629
UZ 0.1569
TJ 0.1526
MD 0.1475
KG 0.1468
`
