package countries

import (
	"math"
	"testing"

	"github.com/webdep/webdep/internal/stats"
)

func TestAllHas150Countries(t *testing.T) {
	if got := len(All()); got != 150 {
		t.Fatalf("len(All()) = %d, want 150", got)
	}
}

func TestAllSortedAndUnique(t *testing.T) {
	prev := ""
	for _, c := range All() {
		if c.Code <= prev {
			t.Fatalf("countries not strictly sorted at %q (prev %q)", c.Code, prev)
		}
		prev = c.Code
		if len(c.Code) != 2 {
			t.Errorf("bad code %q", c.Code)
		}
		if c.Name == "" || c.Region == "" {
			t.Errorf("%s: empty name or region", c.Code)
		}
		switch c.Continent {
		case "AF", "AS", "EU", "NA", "OC", "SA":
		default:
			t.Errorf("%s: unknown continent %q", c.Code, c.Continent)
		}
	}
}

func TestByCode(t *testing.T) {
	c, ok := ByCode("TH")
	if !ok {
		t.Fatal("TH missing")
	}
	if c.Name != "Thailand" || c.Region != "South-eastern Asia" || c.Continent != "AS" {
		t.Errorf("TH = %+v", c)
	}
	// Case-insensitive lookup.
	if _, ok := ByCode("th"); !ok {
		t.Error("lowercase lookup failed")
	}
	if _, ok := ByCode("XX"); ok {
		t.Error("XX should not exist")
	}
}

func TestEveryCountryHasScoresAndRanks(t *testing.T) {
	for _, c := range All() {
		for _, l := range Layers {
			if c.PaperScore[l] <= 0 || c.PaperScore[l] >= 1 {
				t.Errorf("%s %v: score %v out of range", c.Code, l, c.PaperScore[l])
			}
			if c.PaperRank[l] < 1 || c.PaperRank[l] > 150 {
				t.Errorf("%s %v: rank %d out of range", c.Code, l, c.PaperRank[l])
			}
		}
	}
}

func TestRanksArePermutations(t *testing.T) {
	for _, l := range Layers {
		seen := make(map[int]string, 150)
		for _, c := range All() {
			r := c.PaperRank[l]
			if other, dup := seen[r]; dup {
				t.Fatalf("layer %v: rank %d shared by %s and %s", l, r, other, c.Code)
			}
			seen[r] = c.Code
		}
	}
}

func TestRanksMatchScoreOrder(t *testing.T) {
	// Rank 1 must be the most centralized; scores must be nonincreasing in
	// rank for every layer.
	for _, l := range Layers {
		byRank := make([]float64, 151)
		for _, c := range All() {
			byRank[c.PaperRank[l]] = c.PaperScore[l]
		}
		for r := 2; r <= 150; r++ {
			if byRank[r] > byRank[r-1]+1e-9 {
				t.Errorf("layer %v: score increases from rank %d (%v) to %d (%v)",
					l, r-1, byRank[r-1], r, byRank[r])
			}
		}
	}
}

func TestPaperHeadlineFacts(t *testing.T) {
	// Spot-check values quoted in the paper's body text.
	cases := []struct {
		code  string
		layer Layer
		want  float64
	}{
		{"TH", Hosting, 0.3548}, // most centralized hosting
		{"IR", Hosting, 0.0411}, // least centralized hosting
		{"US", Hosting, 0.1358}, // median country
		{"ID", DNS, 0.3757},     // most centralized DNS
		{"CZ", DNS, 0.0391},     // least centralized DNS
		{"SK", CA, 0.3304},      // most centralized CA
		{"CZ", CA, 0.3268},
		{"TW", CA, 0.1308}, // least centralized CA
		{"JP", CA, 0.1499},
		{"US", TLD, 0.5853}, // most centralized TLD
		{"KG", TLD, 0.1468}, // least centralized TLD
		{"BG", Hosting, 0.1188},
		{"LT", Hosting, 0.1286},
		{"RU", Hosting, 0.0554},
		{"CZ", Hosting, 0.0561},
	}
	for _, cse := range cases {
		c, ok := ByCode(cse.code)
		if !ok {
			t.Fatalf("%s missing", cse.code)
		}
		if got := c.PaperScore[cse.layer]; math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("%s %v = %v, want %v", cse.code, cse.layer, got, cse.want)
		}
	}
}

func TestPaperAggregateFacts(t *testing.T) {
	// §5.1: global hosting mean 𝒮 ≈ 0.1429, var ≈ 0.003.
	var hosting []float64
	for _, c := range All() {
		hosting = append(hosting, c.PaperScore[Hosting])
	}
	if m := stats.Mean(hosting); math.Abs(m-0.1429) > 0.002 {
		t.Errorf("hosting mean = %v, paper reports ≈0.1429", m)
	}
	if v := stats.Variance(hosting); math.Abs(v-0.003) > 0.001 {
		t.Errorf("hosting variance = %v, paper reports ≈0.003", v)
	}

	// §6.2: DNS mean ≈ 0.1379.
	var dns []float64
	for _, c := range All() {
		dns = append(dns, c.PaperScore[DNS])
	}
	if m := stats.Mean(dns); math.Abs(m-0.1379) > 0.002 {
		t.Errorf("dns mean = %v, paper reports ≈0.1379", m)
	}

	// §7.1: CA mean ≈ 0.2007, var ≈ 0.0007.
	var ca []float64
	for _, c := range All() {
		ca = append(ca, c.PaperScore[CA])
	}
	if m := stats.Mean(ca); math.Abs(m-0.2007) > 0.002 {
		t.Errorf("ca mean = %v, paper reports ≈0.2007", m)
	}
	if v := stats.Variance(ca); math.Abs(v-0.0007) > 0.0005 {
		t.Errorf("ca variance = %v, paper reports ≈0.0007", v)
	}

	// §B: TLD mean ≈ 0.3262.
	var tld []float64
	for _, c := range All() {
		tld = append(tld, c.PaperScore[TLD])
	}
	if m := stats.Mean(tld); math.Abs(m-0.3262) > 0.002 {
		t.Errorf("tld mean = %v, paper reports ≈0.3262", m)
	}
}

func TestSubregionFacts(t *testing.T) {
	// §5.1: Southeast Asia most centralized (𝒮̄ ≈ 0.2403); Central Asia
	// least (≈ 0.0788); Europe ≈ 0.0994; Eastern Europe ≈ 0.0803.
	regionMean := func(region string) float64 {
		var xs []float64
		for _, c := range InRegion(region) {
			xs = append(xs, c.PaperScore[Hosting])
		}
		return stats.Mean(xs)
	}
	if m := regionMean("South-eastern Asia"); math.Abs(m-0.2403) > 0.005 {
		t.Errorf("SE Asia hosting mean = %v, paper ≈0.2403", m)
	}
	if m := regionMean("Central Asia"); math.Abs(m-0.0788) > 0.005 {
		t.Errorf("Central Asia hosting mean = %v, paper ≈0.0788", m)
	}
	if m := regionMean("Eastern Europe"); math.Abs(m-0.0803) > 0.01 {
		t.Errorf("Eastern Europe hosting mean = %v, paper ≈0.0803", m)
	}
	var eu []float64
	for _, c := range InContinent("EU") {
		eu = append(eu, c.PaperScore[Hosting])
	}
	if m := stats.Mean(eu); math.Abs(m-0.0994) > 0.005 {
		t.Errorf("Europe hosting mean = %v, paper ≈0.0994", m)
	}
}

func TestRegionsAndContinents(t *testing.T) {
	regions := Regions()
	if len(regions) < 15 {
		t.Fatalf("only %d regions: %v", len(regions), regions)
	}
	// Every country's region appears.
	seen := map[string]bool{}
	for _, r := range regions {
		seen[r] = true
	}
	for _, c := range All() {
		if !seen[c.Region] {
			t.Errorf("%s region %q missing from Regions()", c.Code, c.Region)
		}
	}
	se := InRegion("South-eastern Asia")
	codes := map[string]bool{}
	for _, c := range se {
		codes[c.Code] = true
	}
	for _, want := range []string{"TH", "ID", "MM", "LA", "SG", "PH", "MY", "KH", "VN", "BN"} {
		if !codes[want] {
			t.Errorf("South-eastern Asia missing %s", want)
		}
	}
	if len(InContinent("OC")) != 3 { // AU, NZ, PG
		t.Errorf("Oceania = %v", InContinent("OC"))
	}
}

func TestPaperScoresMap(t *testing.T) {
	m := PaperScores(Hosting)
	if len(m) != 150 {
		t.Fatalf("len = %d", len(m))
	}
	if m["TH"] != 0.3548 {
		t.Errorf("TH = %v", m["TH"])
	}
}

func TestCodesOrdered(t *testing.T) {
	codes := Codes()
	if len(codes) != 150 || codes[0] != "AE" || codes[149] != "ZW" {
		t.Errorf("Codes() boundary entries wrong: first %s last %s", codes[0], codes[len(codes)-1])
	}
}

func TestLayerString(t *testing.T) {
	if Hosting.String() != "hosting" || DNS.String() != "dns" || CA.String() != "ca" || TLD.String() != "tld" {
		t.Error("layer names wrong")
	}
	if Layer(99).String() != "Layer(99)" {
		t.Error("unknown layer formatting wrong")
	}
}
