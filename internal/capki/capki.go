// Package capki is the toolkit's synthetic WebPKI: certificate authorities
// that issue real ECDSA X.509 leaf certificates, plus a CCADB-like owner
// database mapping issuers to CA owners — the substitute for the paper's
// ZGrab2 + Common CA Database pipeline.
//
// Everything is real crypto from the standard library, so the TLS scanner
// (internal/tlsscan) performs genuine handshakes and parses genuine leaves;
// only the trust anchors are generated rather than publicly trusted.
package capki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"sync"
	"time"
)

// Authority is one certificate authority: a self-signed root that issues
// leaf certificates.
type Authority struct {
	// Name is the CA owner name as it would appear in CCADB (e.g.
	// "Let's Encrypt").
	Name string
	// Country is the owner's home country (ISO alpha-2).
	Country string

	cert *x509.Certificate
	key  *ecdsa.PrivateKey

	mu     sync.Mutex
	serial int64
}

// NewAuthority generates a root CA. Generation uses P-256, the cheapest
// curve the TLS stack accepts, because worlds instantiate dozens of CAs.
func NewAuthority(name, country string) (*Authority, error) {
	if name == "" {
		return nil, fmt.Errorf("capki: empty CA name")
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("capki: generating CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject: pkix.Name{
			CommonName:   name + " Root",
			Organization: []string{name},
			Country:      []string{country},
		},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("capki: self-signing root: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("capki: parsing root: %w", err)
	}
	return &Authority{Name: name, Country: country, cert: cert, key: key, serial: 1}, nil
}

// Certificate returns the CA's root certificate.
func (a *Authority) Certificate() *x509.Certificate { return a.cert }

// IssueLeaf creates a TLS server certificate for the domain (and
// 127.0.0.1/::1 so in-process servers pass SNI-less dials), signed by the
// authority.
func (a *Authority) IssueLeaf(domain string) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("capki: generating leaf key: %w", err)
	}
	a.mu.Lock()
	a.serial++
	serial := a.serial
	a.mu.Unlock()
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject:      pkix.Name{CommonName: domain},
		DNSNames:     []string{domain},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(90 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.cert, &key.PublicKey, a.key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("capki: issuing leaf for %s: %w", domain, err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("capki: parsing leaf: %w", err)
	}
	return tls.Certificate{
		Certificate: [][]byte{der, a.cert.Raw},
		PrivateKey:  key,
		Leaf:        leaf,
	}, nil
}

// Owner identifies who operates a CA, per the CCADB notion of CA ownership
// the paper uses (Ma et al.): multiple issuing organizations can roll up to
// one owner.
type Owner struct {
	Name    string
	Country string
}

// OwnerDB maps issuer organizations to CA owners — the CCADB substitute.
// The zero value is empty and usable.
type OwnerDB struct {
	mu     sync.RWMutex
	owners map[string]Owner
}

// NewOwnerDB returns an empty database.
func NewOwnerDB() *OwnerDB {
	return &OwnerDB{owners: make(map[string]Owner)}
}

// Register records that certificates issued under the given organization
// name belong to the owner.
func (db *OwnerDB) Register(issuerOrg string, owner Owner) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.owners == nil {
		db.owners = make(map[string]Owner)
	}
	db.owners[issuerOrg] = owner
}

// RegisterAuthority is a convenience that maps an Authority's issuing
// organization to itself as owner.
func (db *OwnerDB) RegisterAuthority(a *Authority) {
	db.Register(a.Name, Owner{Name: a.Name, Country: a.Country})
}

// OwnerOf resolves a parsed leaf certificate to its CA owner via the
// issuer's organization (falling back to the issuer CN when the
// organization is absent).
func (db *OwnerDB) OwnerOf(leaf *x509.Certificate) (Owner, bool) {
	if leaf == nil {
		return Owner{}, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, org := range leaf.Issuer.Organization {
		if o, ok := db.owners[org]; ok {
			return o, true
		}
	}
	if o, ok := db.owners[leaf.Issuer.CommonName]; ok {
		return o, true
	}
	return Owner{}, false
}

// Len reports the number of registered issuer organizations.
func (db *OwnerDB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.owners)
}
