package capki

import (
	"crypto/x509"
	"testing"
)

func TestNewAuthorityProducesCAroot(t *testing.T) {
	ca, err := NewAuthority("Let's Encrypt", "US")
	if err != nil {
		t.Fatal(err)
	}
	root := ca.Certificate()
	if !root.IsCA {
		t.Error("root is not a CA certificate")
	}
	if got := root.Subject.Organization; len(got) != 1 || got[0] != "Let's Encrypt" {
		t.Errorf("subject org = %v", got)
	}
	if got := root.Subject.Country; len(got) != 1 || got[0] != "US" {
		t.Errorf("subject country = %v", got)
	}
}

func TestNewAuthorityRejectsEmptyName(t *testing.T) {
	if _, err := NewAuthority("", "US"); err == nil {
		t.Error("empty name accepted")
	}
}

func TestIssueLeafVerifiesAgainstRoot(t *testing.T) {
	ca, err := NewAuthority("DigiCert", "US")
	if err != nil {
		t.Fatal(err)
	}
	leafCert, err := ca.IssueLeaf("www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	leaf := leafCert.Leaf
	if leaf.Subject.CommonName != "www.example.com" {
		t.Errorf("CN = %q", leaf.Subject.CommonName)
	}
	if len(leaf.DNSNames) != 1 || leaf.DNSNames[0] != "www.example.com" {
		t.Errorf("SANs = %v", leaf.DNSNames)
	}

	roots := x509.NewCertPool()
	roots.AddCert(ca.Certificate())
	if _, err := leaf.Verify(x509.VerifyOptions{Roots: roots, DNSName: "www.example.com"}); err != nil {
		t.Errorf("leaf does not verify against its root: %v", err)
	}
	// Wrong hostname must fail.
	if _, err := leaf.Verify(x509.VerifyOptions{Roots: roots, DNSName: "other.com"}); err == nil {
		t.Error("leaf verified for wrong hostname")
	}
}

func TestSerialsAreUnique(t *testing.T) {
	ca, err := NewAuthority("Sectigo", "US")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		cert, err := ca.IssueLeaf("x.example")
		if err != nil {
			t.Fatal(err)
		}
		s := cert.Leaf.SerialNumber.String()
		if seen[s] {
			t.Fatalf("duplicate serial %s", s)
		}
		seen[s] = true
	}
}

func TestOwnerDB(t *testing.T) {
	ca, err := NewAuthority("GlobalSign", "BE")
	if err != nil {
		t.Fatal(err)
	}
	db := NewOwnerDB()
	db.RegisterAuthority(ca)
	db.Register("GTS CA 1C3", Owner{Name: "Google", Country: "US"})

	leafCert, err := ca.IssueLeaf("site.be")
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := db.OwnerOf(leafCert.Leaf)
	if !ok || owner.Name != "GlobalSign" || owner.Country != "BE" {
		t.Errorf("owner = %+v %v", owner, ok)
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
	if _, ok := db.OwnerOf(nil); ok {
		t.Error("nil leaf resolved")
	}
}

func TestOwnerDBUnknownIssuer(t *testing.T) {
	other, err := NewAuthority("Unknown CA", "ZZ")
	if err != nil {
		t.Fatal(err)
	}
	leafCert, err := other.IssueLeaf("x.test")
	if err != nil {
		t.Fatal(err)
	}
	db := NewOwnerDB()
	if _, ok := db.OwnerOf(leafCert.Leaf); ok {
		t.Error("unknown issuer resolved")
	}
}

func TestOwnerDBZeroValue(t *testing.T) {
	var db OwnerDB
	db.Register("X", Owner{Name: "X Org", Country: "US"})
	if db.Len() != 1 {
		t.Error("zero-value OwnerDB unusable")
	}
}
