package core

import "sort"

// UsageCurve is a provider's usage profile across countries: the percentage
// of popular websites in each country that use the provider, arranged as a
// nonincreasing sequence (Section 3.3, after Ruth et al.). Percentages are
// expressed in [0, 100].
type UsageCurve struct {
	values []float64 // nonincreasing
}

// NewUsageCurve builds a usage curve from per-country usage percentages in
// any order; the curve sorts them nonincreasing. Negative values are
// clamped to 0. The input is copied.
func NewUsageCurve(percents []float64) UsageCurve {
	vs := make([]float64, len(percents))
	for i, p := range percents {
		if p < 0 {
			p = 0
		}
		vs[i] = p
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vs)))
	return UsageCurve{values: vs}
}

// Values returns the nonincreasing usage sequence (u1, u2, …, un). The
// returned slice is shared; callers must not modify it.
func (u UsageCurve) Values() []float64 { return u.values }

// Countries returns n, the number of countries on the curve.
func (u UsageCurve) Countries() int { return len(u.values) }

// Usage returns 𝑈 = Σ u_i, the area under the usage curve — the provider's
// total scale across the dataset's countries.
func (u UsageCurve) Usage() float64 {
	var sum float64
	for _, v := range u.values {
		sum += v
	}
	return sum
}

// Endemicity returns E = Σ (u1 − u_i), the area between the usage curve and
// the flat line at its maximum — the deviation from globally consistent
// usage. A perfectly flat curve (equal use everywhere) has endemicity 0.
func (u UsageCurve) Endemicity() float64 {
	if len(u.values) == 0 {
		return 0
	}
	u1 := u.values[0]
	var sum float64
	for _, v := range u.values {
		sum += u1 - v
	}
	return sum
}

// EndemicityRatio returns E_R = E / (U + E) ∈ [0, 1], the paper's
// size-normalized endemicity: small values indicate global reach, large
// values regional concentration. An all-zero curve has ratio 0.
func (u UsageCurve) EndemicityRatio() float64 {
	usage := u.Usage()
	end := u.Endemicity()
	if usage+end == 0 {
		return 0
	}
	return end / (usage + end)
}

// Peak returns u1, the provider's maximum usage in any country.
func (u UsageCurve) Peak() float64 {
	if len(u.values) == 0 {
		return 0
	}
	return u.values[0]
}

// Insularity is a country's self-sufficiency at one infrastructure layer:
// the fraction of its websites served by a provider based in the same
// country (Section 3.3).
type Insularity struct {
	Domestic float64 // websites served from the same country
	Total    float64 // all websites with a known provider country
}

// Fraction returns the insularity value in [0, 1], or 0 when no websites
// were observed.
func (i Insularity) Fraction() float64 {
	if i.Total == 0 {
		return 0
	}
	return i.Domestic / i.Total
}

// ObserveInsularity accumulates one website whose serving provider is based
// in providerCountry into the insularity tally for siteCountry.
func (i *Insularity) Observe(siteCountry, providerCountry string) {
	i.Total++
	if siteCountry != "" && siteCountry == providerCountry {
		i.Domestic++
	}
}

// CrossDependence tallies, for one country, the share of websites served by
// providers based in each foreign (or domestic) country. It backs the
// paper's Section 5.3 regional case studies (CIS→Russia, former French
// colonies→France, Slovakia→Czechia, …).
type CrossDependence struct {
	counts map[string]float64
	total  float64
}

// NewCrossDependence returns an empty tally.
func NewCrossDependence() *CrossDependence {
	return &CrossDependence{counts: make(map[string]float64)}
}

// Observe records one website served from providerCountry.
func (c *CrossDependence) Observe(providerCountry string) {
	c.counts[providerCountry]++
	c.total++
}

// Share returns the fraction of websites served from the given country.
func (c *CrossDependence) Share(country string) float64 {
	if c.total == 0 {
		return 0
	}
	return c.counts[country] / c.total
}

// Top returns the n countries serving the largest share, ordered by
// decreasing share (ties broken by country code).
func (c *CrossDependence) Top(n int) []ProviderShare {
	out := make([]ProviderShare, 0, len(c.counts))
	for cc, cnt := range c.counts {
		share := 0.0
		if c.total > 0 {
			share = cnt / c.total
		}
		out = append(out, ProviderShare{Provider: cc, Count: cnt, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Provider < out[j].Provider
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
