package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPairwiseEMDIdenticalShapes(t *testing.T) {
	a := FromCounts(map[string]float64{"cloudflare": 10, "amazon": 5, "ovh": 1})
	b := FromCounts(map[string]float64{"x": 20, "y": 10, "z": 2}) // same shape, 2× scale
	d, err := PairwiseEMD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0, 1e-9) {
		t.Errorf("identical shapes: d = %v, want 0", d)
	}
}

func TestPairwiseEMDDiscriminatesShapes(t *testing.T) {
	flat := NewDistribution()
	for i := 0; i < 10; i++ {
		flat.Add(string(rune('a'+i)), 10)
	}
	skewed := FromCounts(map[string]float64{"big": 91, "s1": 3, "s2": 3, "s3": 3})
	mild := FromCounts(map[string]float64{"a": 40, "b": 30, "c": 20, "d": 10})

	dSkew, err := PairwiseEMD(flat, skewed)
	if err != nil {
		t.Fatal(err)
	}
	dMild, err := PairwiseEMD(flat, mild)
	if err != nil {
		t.Fatal(err)
	}
	if dSkew <= dMild {
		t.Errorf("flat↔skewed (%v) should exceed flat↔mild (%v)", dSkew, dMild)
	}
}

func TestPairwiseEMDSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Distribution {
			d := NewDistribution()
			for i := 0; i < 1+rng.Intn(8); i++ {
				d.Add(string(rune('a'+i)), float64(1+rng.Intn(30)))
			}
			return d
		}
		a, b := mk(), mk()
		dab, err1 := PairwiseEMD(a, b)
		dba, err2 := PairwiseEMD(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(dab-dba) < 1e-9 && dab >= -1e-12 && dab < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPairwiseEMDSelfZeroProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDistribution()
		for i := 0; i < 1+rng.Intn(10); i++ {
			d.Add(string(rune('a'+i)), float64(1+rng.Intn(40)))
		}
		v, err := PairwiseEMD(d, d)
		return err == nil && math.Abs(v) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPairwiseEMDEmpty(t *testing.T) {
	if _, err := PairwiseEMD(NewDistribution(), FromCounts(map[string]float64{"a": 1})); err != ErrEmptyDistribution {
		t.Errorf("err = %v", err)
	}
}

func TestTrafficWeighting(t *testing.T) {
	// The §3.2 mass extension: weighting sites by traffic changes 𝒮 when
	// heavy sites concentrate on one provider.
	equal := NewDistribution()
	weighted := NewDistribution()
	// Ten sites on 'big', ten on small providers.
	for i := 0; i < 10; i++ {
		equal.Observe("big")
		equal.Observe(string(rune('a' + i)))
		weighted.Add("big", 100) // heavy traffic on the big provider's sites
		weighted.Add(string(rune('a'+i)), 1)
	}
	if weighted.Score() <= equal.Score() {
		t.Errorf("traffic weighting should raise 𝒮: %v vs %v", weighted.Score(), equal.Score())
	}
}

func TestRedundancyDistribution(t *testing.T) {
	var r RedundancyDistribution
	// Site 1 requires CDN + DNS + CA providers; duplicates collapse.
	r.ObserveSite("Cloudflare", "Cloudflare", "NSONE", "Let's Encrypt")
	r.ObserveSite("Akamai", "NSONE")
	r.ObserveSite() // no providers: not a site
	r.ObserveSite("", "")

	if r.Sites() != 2 {
		t.Errorf("Sites = %v", r.Sites())
	}
	if r.Total() != 5 { // 3 + 2 dependency edges
		t.Errorf("Total = %v", r.Total())
	}
	if r.Count("NSONE") != 2 {
		t.Errorf("NSONE = %v", r.Count("NSONE"))
	}
	if r.Score() <= 0 {
		t.Errorf("Score = %v", r.Score())
	}
}
