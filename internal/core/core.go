// Package core is the paper's metric suite: the centralization score 𝒮
// (Section 3.2), the regionalization measures usage, endemicity, endemicity
// ratio, and insularity (Section 3.3), and the descriptive measures prior
// work used (top-N share, HHI) kept for comparison.
//
// The package is deliberately self-contained — it consumes plain provider
// counts and usage vectors — so that downstream users can apply the metrics
// to any dependency data (hosting, DNS, CAs, TLDs, third-party trackers, …)
// without adopting the rest of the toolkit.
package core

import (
	"sort"

	"github.com/webdep/webdep/internal/emd"
)

// Distribution is an observed distribution of an Internet function over
// providers: how many websites depend on each provider. The zero value is
// an empty distribution ready to use.
//
// The derived views (Score, HHI, Ranked, Counts, RankCurve, TopNShare,
// ProvidersForCoverage) are memoized: the first call sorts the counts once
// and every later call reads the cached ordering until the next mutation
// (Add, Observe, Merge) discards it. A frozen distribution — one whose
// caches have been warmed via Freeze, or any distribution handed out by
// the dataset scoring index — is safe for concurrent readers as long as
// nobody mutates it; an unfrozen distribution must not have its first
// derived-view call race with another reader.
type Distribution struct {
	counts map[string]float64
	total  float64

	// Memoized derived state, valid only while frozen is true. sorted and
	// ranked are never modified in place once built; mutation replaces
	// them wholesale via unfreeze.
	frozen bool
	sorted []float64       // counts, nonincreasing
	ranked []ProviderShare // by (count desc, provider asc)
	score  float64
	hhi    float64
}

// NewDistribution returns an empty distribution.
func NewDistribution() *Distribution {
	return &Distribution{counts: make(map[string]float64)}
}

// FromCounts builds a distribution from a provider→count map. Nonpositive
// counts are ignored.
func FromCounts(counts map[string]float64) *Distribution {
	d := NewDistribution()
	for p, n := range counts {
		d.Add(p, n)
	}
	return d
}

// FromSorted builds a frozen distribution directly from provider/count
// vectors already ordered by (count descending, provider ascending) with
// strictly positive counts and distinct providers — the columnar form the
// dataset scoring index extracts. It skips the re-sort that Freeze would
// pay and returns with every derived view memoized, so the result is safe
// for concurrent readers immediately.
func FromSorted(providers []string, counts []float64) *Distribution {
	d := &Distribution{counts: make(map[string]float64, len(providers))}
	var total float64
	for _, n := range counts {
		total += n
	}
	d.total = total
	d.sorted = append([]float64(nil), counts...)
	d.ranked = make([]ProviderShare, len(providers))
	for i, p := range providers {
		n := counts[i]
		d.counts[p] = n
		share := 0.0
		if total > 0 {
			share = n / total
		}
		d.ranked[i] = ProviderShare{Provider: p, Count: n, Share: share}
	}
	d.score = emd.CentralizationSorted(d.sorted)
	d.hhi = hhiOf(d.sorted, total)
	d.frozen = true
	return d
}

// Add records that n additional websites depend on the provider.
// Nonpositive n is ignored.
func (d *Distribution) Add(provider string, n float64) {
	if n <= 0 {
		return
	}
	if d.counts == nil {
		d.counts = make(map[string]float64)
	}
	d.unfreeze()
	d.counts[provider] += n
	d.total += n
}

// unfreeze discards the memoized derived views before a mutation.
func (d *Distribution) unfreeze() {
	if d.frozen {
		d.frozen = false
		d.sorted = nil
		d.ranked = nil
	}
}

// Freeze warms every memoized derived view (sorted counts, provider
// ranking, score, HHI) and returns d. After Freeze, the read-only methods
// perform no writes, making the distribution safe for concurrent readers
// until the next mutation. Freezing an already-frozen distribution is a
// no-op.
func (d *Distribution) Freeze() *Distribution {
	d.freeze()
	return d
}

// freeze builds the memoized views if they are stale.
func (d *Distribution) freeze() {
	if d.frozen {
		return
	}
	d.ranked = make([]ProviderShare, 0, len(d.counts))
	for p, n := range d.counts {
		share := 0.0
		if d.total > 0 {
			share = n / d.total
		}
		d.ranked = append(d.ranked, ProviderShare{Provider: p, Count: n, Share: share})
	}
	sort.Slice(d.ranked, func(i, j int) bool {
		if d.ranked[i].Count != d.ranked[j].Count {
			return d.ranked[i].Count > d.ranked[j].Count
		}
		return d.ranked[i].Provider < d.ranked[j].Provider
	})
	d.sorted = make([]float64, len(d.ranked))
	for i := range d.ranked {
		d.sorted[i] = d.ranked[i].Count
	}
	d.score = emd.CentralizationSorted(d.sorted)
	d.hhi = hhiOf(d.sorted, d.total)
	d.frozen = true
}

// hhiOf computes Σ (a_i/C)² over a count vector; summation runs in slice
// order, so the memoized HHI is deterministic (the pre-memoization code
// summed in map-iteration order, which randomized the last ulp).
func hhiOf(counts []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	var sum float64
	for _, n := range counts {
		s := n / total
		sum += s * s
	}
	return sum
}

// Observe records a single website's dependence on the provider.
func (d *Distribution) Observe(provider string) { d.Add(provider, 1) }

// Merge adds every provider count of other into d. Site-count
// distributions hold integer-valued floats, so merging subtotals is exact
// and yields the same distribution in any merge order.
func (d *Distribution) Merge(other *Distribution) {
	for p, n := range other.counts {
		d.Add(p, n)
	}
}

// Total returns C, the total number of websites observed.
func (d *Distribution) Total() float64 { return d.total }

// NumProviders returns the number of distinct providers with nonzero count.
func (d *Distribution) NumProviders() int { return len(d.counts) }

// Count returns the number of websites using the provider.
func (d *Distribution) Count(provider string) float64 { return d.counts[provider] }

// Share returns the provider's market share a_i/C, or 0 for an empty
// distribution.
func (d *Distribution) Share(provider string) float64 {
	if d.total == 0 {
		return 0
	}
	return d.counts[provider] / d.total
}

// Counts returns the provider counts in nonincreasing order. The slice is
// a fresh copy the caller may keep or modify.
func (d *Distribution) Counts() []float64 {
	d.freeze()
	return append([]float64(nil), d.sorted...)
}

// ProviderShare pairs a provider with its market share.
type ProviderShare struct {
	Provider string
	Count    float64
	Share    float64
}

// Ranked returns all providers ordered by decreasing count (ties broken by
// name for determinism). The returned slice is the memoized ranking shared
// with later calls: callers must treat it as read-only.
func (d *Distribution) Ranked() []ProviderShare {
	d.freeze()
	return d.ranked
}

// Top returns the n largest providers (or fewer if the distribution is
// smaller). Like Ranked, the result aliases the memoized ranking and must
// be treated as read-only.
func (d *Distribution) Top(n int) []ProviderShare {
	ranked := d.Ranked()
	if n < len(ranked) {
		ranked = ranked[:n]
	}
	return ranked
}

// Score returns the paper's centralization score:
//
//	𝒮 = Σ (a_i/C)² − 1/C
//
// the Earth Mover's Distance from the observed distribution to the fully
// decentralized reference where every website has its own provider
// (Section 3.2, Appendix A). Empty distributions score 0.
func (d *Distribution) Score() float64 {
	d.freeze()
	return d.score
}

// HHI returns the Herfindahl–Hirschman Index Σ (a_i/C)², the antitrust
// concentration measure of which 𝒮 is an instantiation up to the 1/C
// correction.
func (d *Distribution) HHI() float64 {
	d.freeze()
	return d.hhi
}

// TopNShare returns the share of websites covered by the n largest
// providers — the first-cut heuristic prior work used, kept as a baseline.
// The paper's Figure 1 shows why it is insufficient: Azerbaijan and Hong
// Kong share a top-5 value of 0.59 while differing substantially in 𝒮.
func (d *Distribution) TopNShare(n int) float64 {
	var covered float64
	for _, ps := range d.Top(n) {
		covered += ps.Count
	}
	if d.total == 0 {
		return 0
	}
	return covered / d.total
}

// ProvidersForCoverage returns the minimum number of providers needed to
// cover the given fraction of websites (e.g. 0.90 reproduces the paper's
// "90% of websites are hosted by fewer than k providers" statistic). It
// returns 0 for an empty distribution.
func (d *Distribution) ProvidersForCoverage(fraction float64) int {
	if d.total == 0 || fraction <= 0 {
		return 0
	}
	need := fraction * d.total
	var covered float64
	for i, ps := range d.Ranked() {
		covered += ps.Count
		if covered >= need-1e-9 {
			return i + 1
		}
	}
	return d.NumProviders()
}

// RankCurve returns cumulative shares by provider rank: element k is the
// share of websites covered by the top k+1 providers. This is the curve
// behind the paper's Figure 1.
func (d *Distribution) RankCurve() []float64 {
	ranked := d.Ranked()
	out := make([]float64, len(ranked))
	var cum float64
	for i, ps := range ranked {
		cum += ps.Share
		out[i] = cum
	}
	return out
}

// Concentration labels borrowed from the U.S. DOJ HHI guidelines the paper
// cites for interpreting 𝒮: competitive (<0.10), moderately concentrated
// (0.10–0.18), highly concentrated (>0.18).
const (
	Competitive            = "competitive"
	ModeratelyConcentrated = "moderately concentrated"
	HighlyConcentrated     = "highly concentrated"
)

// Interpret maps a centralization score onto the DOJ interpretation bands.
func Interpret(score float64) string {
	switch {
	case score > 0.18:
		return HighlyConcentrated
	case score >= 0.10:
		return ModeratelyConcentrated
	default:
		return Competitive
	}
}

// MaxScore returns the largest 𝒮 achievable with c websites (monopoly):
// 1 − 1/c.
func MaxScore(c int) float64 { return emd.MaxCentralization(c) }
