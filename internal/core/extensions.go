package core

import (
	"errors"

	"github.com/webdep/webdep/internal/emd"
)

// This file implements the customization hooks the paper's Section 3.2
// sketches as future directions: comparing two observed distributions
// pairwise instead of against the decentralized reference, and weighting
// websites by mass (e.g. traffic) rather than equally.
//
// Equal-weight observation is Distribution.Observe; traffic weighting is
// already supported by Distribution.Add(provider, mass) — the metrics are
// defined over mass, so nothing else changes. PairwiseEMD supplies the
// redefined ground distance for country-to-country comparison.

// ErrEmptyDistribution is returned when a pairwise comparison receives a
// distribution with no mass.
var ErrEmptyDistribution = errors.New("core: empty distribution")

// PairwiseEMD compares two observed distributions directly, without the
// decentralized reference: both are normalized to unit mass over their
// provider ranks, and the ground distance between rank i of A and rank j
// of B is the vertical difference of their shares, |aᵢ/C_A − bⱼ/C_B|.
//
// The result is a symmetric distance in [0, 1): 0 when the two
// distributions have the same shape (identical share-by-rank curves,
// regardless of which providers realize them), larger as their shapes
// diverge. Note the deliberate provider-blindness — like 𝒮 itself, the
// comparison is about the structure of dependence, not the names
// (requirement 3 of Section 3.1).
func PairwiseEMD(a, b *Distribution) (float64, error) {
	if a.Total() == 0 || b.Total() == 0 {
		return 0, ErrEmptyDistribution
	}
	sharesA := normalizedShares(a)
	sharesB := normalizedShares(b)
	cost := make([][]float64, len(sharesA))
	for i := range cost {
		cost[i] = make([]float64, len(sharesB))
		for j := range cost[i] {
			d := sharesA[i] - sharesB[j]
			if d < 0 {
				d = -d
			}
			cost[i][j] = d
		}
	}
	plan, err := emd.Solve(sharesA, sharesB, cost)
	if err != nil {
		return 0, err
	}
	return plan.Distance(), nil
}

func normalizedShares(d *Distribution) []float64 {
	counts := d.Counts() // nonincreasing
	total := d.Total()
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = c / total
	}
	return out
}

// RedundancyDistribution is the Section 3.2 "provider redundancy"
// customization: aᵢ counts the websites that *require* provider i to
// function (every provider in a site's dependency set), rather than the
// single provider serving it. Feed each site's full dependency set here
// and use Score as usual; sites with many hard dependencies contribute
// mass to each.
type RedundancyDistribution struct {
	Distribution
	sites float64
}

// ObserveSite records one website that requires every listed provider.
// Duplicate providers within one site are counted once.
func (r *RedundancyDistribution) ObserveSite(providers ...string) {
	seen := make(map[string]bool, len(providers))
	for _, p := range providers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.Observe(p)
	}
	if len(seen) > 0 {
		r.sites++
	}
}

// Sites returns the number of websites observed (as opposed to Total,
// which counts site→provider dependency edges).
func (r *RedundancyDistribution) Sites() float64 { return r.sites }
