package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUsageCurveSortsInput(t *testing.T) {
	u := NewUsageCurve([]float64{5, 30, 10})
	vs := u.Values()
	if vs[0] != 30 || vs[1] != 10 || vs[2] != 5 {
		t.Fatalf("Values = %v", vs)
	}
	if u.Countries() != 3 || u.Peak() != 30 {
		t.Errorf("Countries/Peak wrong: %d %v", u.Countries(), u.Peak())
	}
}

func TestUsageCurveClampNegative(t *testing.T) {
	u := NewUsageCurve([]float64{-5, 10})
	if u.Values()[1] != 0 {
		t.Errorf("negative usage should clamp to 0: %v", u.Values())
	}
}

func TestUsageAndEndemicityKnownValues(t *testing.T) {
	// Flat curve: used equally everywhere → endemicity 0, ratio 0.
	flat := NewUsageCurve([]float64{20, 20, 20, 20})
	if got := flat.Usage(); got != 80 {
		t.Errorf("Usage = %v", got)
	}
	if got := flat.Endemicity(); got != 0 {
		t.Errorf("flat Endemicity = %v", got)
	}
	if got := flat.EndemicityRatio(); got != 0 {
		t.Errorf("flat ratio = %v", got)
	}

	// One-country provider: maximally endemic.
	endemic := NewUsageCurve([]float64{40, 0, 0, 0})
	if got := endemic.Usage(); got != 40 {
		t.Errorf("Usage = %v", got)
	}
	if got := endemic.Endemicity(); got != 120 { // 0 + 40 + 40 + 40
		t.Errorf("Endemicity = %v", got)
	}
	if got := endemic.EndemicityRatio(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("ratio = %v, want 0.75", got)
	}
}

func TestEndemicityRatioNormalizesScale(t *testing.T) {
	// The paper's motivation for the ratio: without it, endemicity depends
	// on the provider's maximum use. Two providers with identical *shape*
	// but different scale must share an endemicity ratio.
	small := NewUsageCurve([]float64{10, 5, 2, 1})
	big := NewUsageCurve([]float64{40, 20, 8, 4})
	if math.Abs(small.EndemicityRatio()-big.EndemicityRatio()) > 1e-12 {
		t.Errorf("ratio should be scale-invariant: %v vs %v",
			small.EndemicityRatio(), big.EndemicityRatio())
	}
	// Raw endemicity is NOT scale-invariant — the problem the ratio fixes.
	if small.Endemicity() == big.Endemicity() {
		t.Error("raw endemicity unexpectedly scale-invariant")
	}
}

func TestGlobalVsRegionalProviderOrdering(t *testing.T) {
	// Figure 4: a global provider (significant use in many countries) must
	// have higher usage and lower endemicity ratio than a regional provider
	// (high use in a handful of countries).
	global := make([]float64, 150)
	for i := range global {
		global[i] = 60 * math.Exp(-float64(i)/80) // slow decay, used broadly
	}
	regional := make([]float64, 150)
	for i := 0; i < 6; i++ {
		regional[i] = 20 - float64(i)*2.5 // Beget-like: strong in CIS only
	}
	g := NewUsageCurve(global)
	r := NewUsageCurve(regional)
	if g.Usage() <= r.Usage() {
		t.Errorf("global usage %v should exceed regional %v", g.Usage(), r.Usage())
	}
	if g.EndemicityRatio() >= r.EndemicityRatio() {
		t.Errorf("global E_R %v should be below regional %v",
			g.EndemicityRatio(), r.EndemicityRatio())
	}
}

func TestEndemicityRatioBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		r := NewUsageCurve(vals).EndemicityRatio()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyUsageCurve(t *testing.T) {
	u := NewUsageCurve(nil)
	if u.Usage() != 0 || u.Endemicity() != 0 || u.EndemicityRatio() != 0 || u.Peak() != 0 {
		t.Error("empty curve should be all zeros")
	}
}

func TestInsularity(t *testing.T) {
	var ins Insularity
	ins.Observe("US", "US")
	ins.Observe("US", "US")
	ins.Observe("US", "FR")
	ins.Observe("US", "DE")
	if got := ins.Fraction(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Fraction = %v, want 0.5", got)
	}
	var empty Insularity
	if empty.Fraction() != 0 {
		t.Error("empty insularity should be 0")
	}
	// Unknown provider country never counts as domestic.
	var unk Insularity
	unk.Observe("", "")
	if unk.Fraction() != 0 {
		t.Error("empty-country match must not count as domestic")
	}
}

func TestCrossDependence(t *testing.T) {
	cd := NewCrossDependence()
	for i := 0; i < 33; i++ {
		cd.Observe("RU")
	}
	for i := 0; i < 4; i++ {
		cd.Observe("TM")
	}
	for i := 0; i < 63; i++ {
		cd.Observe("US")
	}
	if got := cd.Share("RU"); math.Abs(got-0.33) > 1e-12 {
		t.Errorf("RU share = %v", got)
	}
	top := cd.Top(2)
	if len(top) != 2 || top[0].Provider != "US" || top[1].Provider != "RU" {
		t.Errorf("Top = %+v", top)
	}
	if cd.Share("XX") != 0 {
		t.Error("unknown country share should be 0")
	}
	if NewCrossDependence().Share("US") != 0 {
		t.Error("empty tally share should be 0")
	}
}
