package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDistributionZeroValueUsable(t *testing.T) {
	var d Distribution
	d.Observe("p1")
	d.Observe("p1")
	d.Observe("p2")
	if d.Total() != 3 || d.NumProviders() != 2 {
		t.Fatalf("total %v providers %d", d.Total(), d.NumProviders())
	}
	if d.Count("p1") != 2 || !almostEqual(d.Share("p1"), 2.0/3, 1e-12) {
		t.Errorf("p1 count/share wrong")
	}
}

func TestDistributionIgnoresNonpositive(t *testing.T) {
	d := NewDistribution()
	d.Add("p", 0)
	d.Add("p", -3)
	if d.Total() != 0 || d.NumProviders() != 0 {
		t.Errorf("nonpositive adds should be ignored: %v %d", d.Total(), d.NumProviders())
	}
}

func TestFromCounts(t *testing.T) {
	d := FromCounts(map[string]float64{"a": 5, "b": 3, "c": -1})
	if d.Total() != 8 || d.NumProviders() != 2 {
		t.Fatalf("FromCounts: total %v providers %d", d.Total(), d.NumProviders())
	}
}

func TestScoreKnownValues(t *testing.T) {
	// Monopoly of 10 sites: 1 − 1/10.
	d := FromCounts(map[string]float64{"mono": 10})
	if got := d.Score(); !almostEqual(got, 0.9, 1e-12) {
		t.Errorf("monopoly score = %v, want 0.9", got)
	}
	// Fully decentralized: 0.
	d = NewDistribution()
	for i := 0; i < 50; i++ {
		d.Add(string(rune('a'+i)), 1)
	}
	if got := d.Score(); !almostEqual(got, 0, 1e-12) {
		t.Errorf("decentralized score = %v, want 0", got)
	}
	// Empty: 0.
	if got := NewDistribution().Score(); got != 0 {
		t.Errorf("empty score = %v", got)
	}
}

func TestScoreEqualsHHIMinusCorrection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDistribution()
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			d.Add(string(rune('a'+i)), float64(1+rng.Intn(30)))
		}
		return almostEqual(d.Score(), d.HHI()-1/d.Total(), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopNShareAndRanked(t *testing.T) {
	d := FromCounts(map[string]float64{"big": 42, "mid": 5, "sm1": 2, "sm2": 1})
	if got := d.TopNShare(1); !almostEqual(got, 0.84, 1e-12) {
		t.Errorf("TopNShare(1) = %v", got)
	}
	if got := d.TopNShare(2); !almostEqual(got, 0.94, 1e-12) {
		t.Errorf("TopNShare(2) = %v", got)
	}
	if got := d.TopNShare(100); !almostEqual(got, 1, 1e-12) {
		t.Errorf("TopNShare(all) = %v", got)
	}
	ranked := d.Ranked()
	if ranked[0].Provider != "big" || ranked[1].Provider != "mid" {
		t.Errorf("Ranked order wrong: %+v", ranked)
	}
	// Ties break deterministically by name.
	tie := FromCounts(map[string]float64{"z": 1, "a": 1})
	r := tie.Ranked()
	if r[0].Provider != "a" {
		t.Errorf("tie-break should prefer name order: %+v", r)
	}
}

func TestTopTruncates(t *testing.T) {
	d := FromCounts(map[string]float64{"a": 3, "b": 2, "c": 1})
	if got := len(d.Top(2)); got != 2 {
		t.Errorf("Top(2) len = %d", got)
	}
	if got := len(d.Top(10)); got != 3 {
		t.Errorf("Top(10) len = %d", got)
	}
}

func TestProvidersForCoverage(t *testing.T) {
	// The paper: "90% of websites are hosted by fewer than 206 providers in
	// every country." Reproduce the mechanics on a small example.
	d := FromCounts(map[string]float64{"a": 60, "b": 25, "c": 10, "d": 5})
	if got := d.ProvidersForCoverage(0.60); got != 1 {
		t.Errorf("coverage 0.60 needs %d providers, want 1", got)
	}
	if got := d.ProvidersForCoverage(0.85); got != 2 {
		t.Errorf("coverage 0.85 needs %d, want 2", got)
	}
	if got := d.ProvidersForCoverage(0.951); got != 4 {
		t.Errorf("coverage 0.951 needs %d, want 4", got)
	}
	if got := d.ProvidersForCoverage(1.0); got != 4 {
		t.Errorf("coverage 1.0 needs %d, want 4", got)
	}
	if got := NewDistribution().ProvidersForCoverage(0.9); got != 0 {
		t.Errorf("empty coverage = %d", got)
	}
}

func TestRankCurveMonotone(t *testing.T) {
	d := FromCounts(map[string]float64{"a": 5, "b": 3, "c": 2})
	curve := d.RankCurve()
	if len(curve) != 3 {
		t.Fatalf("curve len %d", len(curve))
	}
	want := []float64{0.5, 0.8, 1.0}
	for i := range want {
		if !almostEqual(curve[i], want[i], 1e-12) {
			t.Fatalf("curve = %v, want %v", curve, want)
		}
	}
}

func TestFigure1TopNShortcoming(t *testing.T) {
	// The paper's motivating example: Azerbaijan and Hong Kong both have 59%
	// of sites run by their top five providers, but AZ's steeper drop-off
	// (42%, 5%, …) makes it more centralized than HK (33%, 12%, …).
	longTail := func(d *Distribution, mass float64) {
		// Spread the remaining mass over many small providers (1% each) so
		// the top-5 stays the intended set.
		for i := 0; mass > 0; i++ {
			n := math.Min(1, mass)
			d.Add("tail"+string(rune('a'+i)), n)
			mass -= n
		}
	}
	az := FromCounts(map[string]float64{"cf": 42, "p2": 5, "p3": 4.5, "p4": 4, "p5": 3.5})
	longTail(az, 41)
	hk := FromCounts(map[string]float64{"cf": 33, "p2": 12, "p3": 5, "p4": 4.5, "p5": 4.5})
	longTail(hk, 41)
	if !almostEqual(az.TopNShare(5), hk.TopNShare(5), 1e-9) {
		t.Fatalf("construction broken: top-5 %v vs %v", az.TopNShare(5), hk.TopNShare(5))
	}
	if az.Score() <= hk.Score() {
		t.Errorf("𝒮 should separate AZ (%v) above HK (%v) despite equal top-5", az.Score(), hk.Score())
	}
}

func TestScoreInvariantToProviderIdentity(t *testing.T) {
	// Requirement 3 of Section 3.1: the metric depends only on the shape of
	// the distribution, not the providers comprising it.
	a := FromCounts(map[string]float64{"cloudflare": 10, "amazon": 5, "ovh": 1})
	b := FromCounts(map[string]float64{"x": 10, "y": 5, "z": 1})
	if !almostEqual(a.Score(), b.Score(), 1e-12) {
		t.Errorf("identity should not matter: %v vs %v", a.Score(), b.Score())
	}
}

func TestInterpret(t *testing.T) {
	cases := []struct {
		s    float64
		want string
	}{
		{0.05, Competitive},
		{0.0999, Competitive},
		{0.10, ModeratelyConcentrated},
		{0.15, ModeratelyConcentrated},
		{0.18, ModeratelyConcentrated},
		{0.1801, HighlyConcentrated},
		{0.5, HighlyConcentrated},
	}
	for _, c := range cases {
		if got := Interpret(c.s); got != c.want {
			t.Errorf("Interpret(%v) = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestMaxScore(t *testing.T) {
	if got := MaxScore(10000); !almostEqual(got, 0.9999, 1e-9) {
		t.Errorf("MaxScore(10000) = %v", got)
	}
}

func TestCountsSortedDescending(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDistribution()
		for i := 0; i < 1+rng.Intn(15); i++ {
			d.Add(string(rune('a'+i)), float64(1+rng.Intn(40)))
		}
		counts := d.Counts()
		for i := 1; i < len(counts); i++ {
			if counts[i] > counts[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
