package pipeline

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/webdep/webdep/internal/depgraph"
	"github.com/webdep/webdep/internal/obs"
)

// The golden SPOF gate freezes the other half of the analysis surface:
// where golden_scores.json pins direct per-country centralization,
// golden_spof.json pins the provider dependency graph built on top of it
// — the top-10 transitive single points of failure and every country's
// transitive centralization per modeled layer. Regenerate with the same
// flag as the score golden:
//
//	go test ./internal/pipeline -run TestGoldenSPOF -update
//
// and review the diff of testdata/golden_spof.json before committing it.
const goldenSPOFPath = "testdata/golden_spof.json"

// goldenSPOF freezes one ranked SPOF row. Radius is an exact integer
// count of site-layer bindings; the fractions use the same
// shortest-representation float encoding as the score golden, so string
// equality is bit equality.
type goldenSPOF struct {
	Provider string `json:"provider"`
	Country  string `json:"country,omitempty"`
	Sym      uint32 `json:"sym"`
	Radius   int64  `json:"radius"`
	Share    string `json:"share"`
	Hosting  string `json:"hosting"`
	DNS      string `json:"dns"`
	CA       string `json:"ca"`
}

type goldenSPOFFile struct {
	Seed               int64                        `json:"seed"`
	SitesPerCountry    int                          `json:"sites_per_country"`
	DomesticPerCountry int                          `json:"domestic_per_country"`
	Countries          []string                     `json:"countries"`
	Nodes              int64                        `json:"nodes"`
	ProviderEdges      int64                        `json:"provider_edges"`
	SPOFs              []goldenSPOF                 `json:"spofs"`
	Transitive         map[string]map[string]string `json:"transitive"` // cc -> layer -> exact score
}

// spofFileFrom reduces a built graph to the frozen representation.
func spofFileFrom(g *depgraph.Graph) *goldenSPOFFile {
	st := g.Stats()
	out := &goldenSPOFFile{
		Seed:               goldenSeed,
		SitesPerCountry:    goldenSites,
		DomesticPerCountry: goldenDomestic,
		Countries:          goldenCountries,
		Nodes:              st.Nodes,
		ProviderEdges:      st.ProviderEdges,
		Transitive:         make(map[string]map[string]string),
	}
	for _, s := range g.TopSPOFs(10) {
		out.SPOFs = append(out.SPOFs, goldenSPOF{
			Provider: s.Provider,
			Country:  s.Country,
			Sym:      s.Sym,
			Radius:   s.Radius,
			Share:    formatScore(s.Share),
			Hosting:  formatScore(s.Hosting),
			DNS:      formatScore(s.DNS),
			CA:       formatScore(s.CA),
		})
	}
	for _, layer := range depgraph.Layers() {
		for cc, score := range g.TransitiveScores(layer) {
			if out.Transitive[cc] == nil {
				out.Transitive[cc] = make(map[string]string)
			}
			out.Transitive[cc][layer.String()] = formatScore(score)
		}
	}
	return out
}

// compareSPOFFiles asserts exact equality through the canonical JSON
// encoding — the golden file is byte-frozen, so this is the whole check.
func compareSPOFFiles(t *testing.T, got *goldenSPOFFile, label string) {
	t.Helper()
	buf, err := os.ReadFile(goldenSPOFPath)
	if err != nil {
		t.Fatalf("reading golden SPOF file (regenerate with -update): %v", err)
	}
	var want goldenSPOFFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing golden SPOF file: %v", err)
	}
	if want.Seed != got.Seed || want.SitesPerCountry != got.SitesPerCountry ||
		want.DomesticPerCountry != got.DomesticPerCountry {
		t.Fatalf("golden SPOF file frozen at seed=%d sites=%d domestic=%d: regenerate with -update",
			want.Seed, want.SitesPerCountry, want.DomesticPerCountry)
	}
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(&want)
	if string(gj) != string(wj) {
		if want.Nodes != got.Nodes || want.ProviderEdges != got.ProviderEdges {
			t.Errorf("%s: graph shape drift: %d nodes / %d edges, golden %d / %d",
				label, got.Nodes, got.ProviderEdges, want.Nodes, want.ProviderEdges)
		}
		for i := range want.SPOFs {
			if i >= len(got.SPOFs) || got.SPOFs[i] != want.SPOFs[i] {
				got_ := goldenSPOF{}
				if i < len(got.SPOFs) {
					got_ = got.SPOFs[i]
				}
				t.Errorf("%s: SPOF rank %d drift: got %+v, golden %+v", label, i+1, got_, want.SPOFs[i])
			}
		}
		for cc, layers := range want.Transitive {
			for layer, wantScore := range layers {
				if gotScore := got.Transitive[cc][layer]; gotScore != wantScore {
					t.Errorf("%s: transitive score drift: %s %s = %s, golden %s",
						label, cc, layer, gotScore, wantScore)
				}
			}
		}
		// Catch-all for drift the targeted messages above didn't cover
		// (new countries, trailing SPOFs, header changes).
		t.Errorf("%s: golden SPOF encoding differs (regenerate with -update only if intentional)", label)
	}
}

// TestGoldenSPOF is the regression gate for the dependency-graph engine:
// the fixed-seed world's SPOF ranking and transitive scores must match
// the frozen testdata/golden_spof.json exactly. A failure means graph
// extraction, edge inference, closure, or transitive scoring changed
// behavior; regenerate with -update only if that change is intentional.
func TestGoldenSPOF(t *testing.T) {
	got := spofFileFrom(depgraph.FromCorpus(goldenCorpus(t, 0)))

	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenSPOFPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenSPOFPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenSPOFPath)
		return
	}

	compareSPOFFiles(t, got, "in-memory build")
}

// TestGoldenSPOFThroughStore holds the store-streamed graph build to the
// SAME frozen fixture, never regenerated: the graph built by streaming
// shards from an on-disk store must be indistinguishable from the graph
// built from the materialized corpus.
func TestGoldenSPOFThroughStore(t *testing.T) {
	st := storeGolden(t, 0)
	g, err := depgraph.FromStore(st, &depgraph.Options{Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	compareSPOFFiles(t, spofFileFrom(g), "store-streamed build")
}

// TestGoldenSPOFSimulateAudit is the acceptance gate for the what-if
// engine: on the golden world, Simulate's closure-based impact must be
// byte-identical (through JSON) to AuditSimulate's brute-force
// removal-and-rescore for EVERY provider in the graph.
func TestGoldenSPOFSimulateAudit(t *testing.T) {
	corpus := goldenCorpus(t, 0)
	g := depgraph.FromCorpus(corpus)
	for _, provider := range g.Providers() {
		fast, err := g.Simulate(provider)
		if err != nil {
			t.Fatalf("Simulate(%s): %v", provider, err)
		}
		slow, err := g.AuditSimulate(corpus, provider)
		if err != nil {
			t.Fatalf("AuditSimulate(%s): %v", provider, err)
		}
		fj, _ := json.Marshal(fast)
		sj, _ := json.Marshal(slow)
		if string(fj) != string(sj) {
			t.Fatalf("Simulate(%s) diverges from brute force:\n fast: %s\n slow: %s", provider, fj, sj)
		}
	}
}
