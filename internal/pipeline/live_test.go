package pipeline

import (
	"context"
	"testing"

	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/liveworld"
	"github.com/webdep/webdep/internal/resolver"
	"github.com/webdep/webdep/internal/tlsscan"
	"github.com/webdep/webdep/internal/worldgen"
)

// TestLiveCrawlMatchesTruth is the toolkit's flagship integration test: a
// small world is served over real UDP/TCP DNS and TLS, crawled end-to-end,
// and the measured dataset must agree with the world's ground truth.
func TestLiveCrawlMatchesTruth(t *testing.T) {
	w, err := worldgen.Build(worldgen.Config{
		Seed:               99,
		SitesPerCountry:    60,
		Countries:          []string{"TH", "CZ"},
		DomesticPerCountry: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := liveworld.Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	live := &Live{
		Pipeline:       FromWorld(w),
		DNS:            resolver.NewClient(ep.DNSAddr),
		Scanner:        tlsscan.New(w.Owners),
		TLSAddr:        ep.TLSAddr,
		Workers:        8,
		DetectLanguage: true,
	}

	for _, cc := range []string{"TH", "CZ"} {
		truth := w.Truth.Get(cc)
		measured, err := live.CrawlCountry(context.Background(), cc, "2023-05", truth.Domains())
		if err != nil {
			t.Fatal(err)
		}
		if len(measured.Sites) != len(truth.Sites) {
			t.Fatalf("%s: crawled %d sites, want %d", cc, len(measured.Sites), len(truth.Sites))
		}
		for i := range truth.Sites {
			ts, ms := &truth.Sites[i], &measured.Sites[i]
			if ms.HostProvider != ts.HostProvider {
				t.Errorf("%s %s: host provider %q, truth %q", cc, ts.Domain, ms.HostProvider, ts.HostProvider)
			}
			if ms.HostIP != ts.HostIP {
				t.Errorf("%s %s: host IP %q, truth %q", cc, ts.Domain, ms.HostIP, ts.HostIP)
			}
			if ms.DNSProvider != ts.DNSProvider {
				t.Errorf("%s %s: dns provider %q, truth %q", cc, ts.Domain, ms.DNSProvider, ts.DNSProvider)
			}
			if ms.CAOwner != ts.CAOwner {
				t.Errorf("%s %s: CA owner %q, truth %q", cc, ts.Domain, ms.CAOwner, ts.CAOwner)
			}
			if ms.HostAnycast != ts.HostAnycast {
				t.Errorf("%s %s: anycast %v, truth %v", cc, ts.Domain, ms.HostAnycast, ts.HostAnycast)
			}
			if ms.TLD != ts.TLD {
				t.Errorf("%s %s: TLD %q, truth %q", cc, ts.Domain, ms.TLD, ts.TLD)
			}
		}

		// Scores computed from the live crawl must match the paper targets
		// as well as the fast path does (same distributions underneath).
		c, _ := countries.ByCode(cc)
		for _, layer := range []countries.Layer{countries.Hosting, countries.DNS, countries.CA} {
			got := measured.Distribution(layer).Score()
			want := c.PaperScore[layer]
			if diff := got - want; diff > 0.06 || diff < -0.06 {
				t.Errorf("%s %v: live score %v, paper %v", cc, layer, got, want)
			}
		}
	}
}

func TestLiveLanguageDetection(t *testing.T) {
	w, err := worldgen.Build(worldgen.Config{
		Seed:               3,
		SitesPerCountry:    30,
		Countries:          []string{"TH"},
		DomesticPerCountry: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := liveworld.Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	live := &Live{
		Pipeline:       FromWorld(w),
		DNS:            resolver.NewClient(ep.DNSAddr),
		Scanner:        tlsscan.New(w.Owners),
		TLSAddr:        ep.TLSAddr,
		DetectLanguage: true,
	}
	truth := w.Truth.Get("TH")
	measured, err := live.CrawlCountry(context.Background(), "TH", "2023-05", truth.Domains())
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for i := range truth.Sites {
		total++
		if measured.Sites[i].Language == truth.Sites[i].Language {
			agree++
		}
	}
	if float64(agree)/float64(total) < 0.9 {
		t.Errorf("live language detection agrees on %d/%d sites", agree, total)
	}
}

func TestLiveCrawlRequiresClients(t *testing.T) {
	live := &Live{Pipeline: &Pipeline{}}
	if _, err := live.CrawlCountry(context.Background(), "US", "x", []string{"a.com"}); err == nil {
		t.Error("crawl without clients accepted")
	}
}
