package pipeline

import (
	"testing"
	"time"

	"github.com/webdep/webdep/internal/faultinject"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/resilience"
	"github.com/webdep/webdep/internal/resolver"
	"github.com/webdep/webdep/internal/tlsscan"
)

// TestObsCountersMatchResilienceUnderFaults is the observability acceptance
// gate: a lossy live crawl records its retry and breaker activity through
// two independent channels — the resilience policy's own atomic accounting
// and the obs registry the crawl injects everywhere — and the two must
// agree EXACTLY, probe for probe. The fault injection makes the retry path
// hot (thousands of attempts, real retries) so agreement is not vacuous.
func TestObsCountersMatchResilienceUnderFaults(t *testing.T) {
	w, ep := faultWorld(t)

	// 30% loss on both probe paths, as in the convergence test.
	loss := faultinject.Plan{DropMod: 10, DropModUnder: 3}
	dnsProxy := proxyFor(t, ep.DNSAddr, loss, loss)
	tlsProxy := proxyFor(t, ep.TLSAddr, faultinject.Plan{}, loss)

	r := obs.NewRegistry()
	dns := resolver.NewClient(dnsProxy.Addr)
	dns.Timeout = 150 * time.Millisecond
	policy := &resilience.Policy{
		MaxAttempts: 12,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	}
	corpus := crawl(t, w, &Live{
		Pipeline:       FromWorld(w),
		DNS:            dns,
		Scanner:        tlsscan.New(w.Owners),
		TLSAddr:        tlsProxy.Addr,
		Workers:        4,
		DetectLanguage: true,
		Resilience:     policy,
		Obs:            r,
	})

	stats := policy.Stats()
	if stats.Retries == 0 || stats.TransientFailures == 0 {
		t.Fatalf("no retry pressure under 30%% loss (stats %+v); the cross-check would be vacuous", stats)
	}

	// Every resilience counter the crawl emitted must equal the policy's
	// own accounting.
	counters := map[string]int64{
		"resilience.attempts":           stats.Attempts,
		"resilience.retries":            stats.Retries,
		"resilience.successes":          stats.Successes,
		"resilience.permanent_failures": stats.PermanentFailures,
		"resilience.transient_failures": stats.TransientFailures,
		"resilience.budget_exhausted":   stats.BudgetExhausted,
		"resilience.circuit_rejections": stats.CircuitRejections,
	}
	for name, want := range counters {
		if got := r.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, policy's own accounting says %d", name, got, want)
		}
	}
	if got := r.Timing("resilience.attempt_ms").Snapshot().Count; got != stats.Attempts {
		t.Errorf("resilience.attempt_ms count = %d, want %d attempts", got, stats.Attempts)
	}

	// Breaker transition counters must equal the sum of every breaker's own
	// transition accounting (the policy had no breakers configured here, so
	// both sides must be zero — agreement still has to hold).
	var opened, halfOpened, closed int64
	if policy.Breakers != nil {
		for _, kind := range policy.Breakers.Kinds() {
			o, h, c := policy.Breakers.Breaker(kind).Transitions()
			opened, halfOpened, closed = opened+o, halfOpened+h, closed+c
		}
	}
	transitions := map[string]int64{
		"resilience.breaker.opened":      opened,
		"resilience.breaker.half_opened": halfOpened,
		"resilience.breaker.closed":      closed,
	}
	for name, want := range transitions {
		if got := r.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, breakers' own accounting says %d", name, got, want)
		}
	}

	// Every probe attempt the policy ran surfaced in exactly one per-probe
	// instrument: the resolver, scanner, and fetcher each count one probe
	// per policy attempt of their kind (circuit rejections run none).
	probes := r.Counter("probe.dns.attempts").Value() +
		r.Counter("probe.tls.scans").Value() +
		r.Counter("probe.http.fetches").Value()
	if probes != stats.Attempts {
		t.Errorf("per-probe attempt counters sum to %d, policy ran %d attempts", probes, stats.Attempts)
	}

	// The crawl-level outcome counters must equal the corpus's coverage
	// accounting field for field.
	var sites, ok, empty, lost [4]int64
	var totalSites int64
	for _, cc := range []string{"TH", "CZ"} {
		cov := corpus.CoverageOf(cc)
		if cov == nil {
			t.Fatalf("%s: no coverage recorded", cc)
		}
		totalSites += int64(cov.Sites)
		for i, f := range []struct{ OK, Empty, Lost int }{
			{cov.Host.OK, cov.Host.Empty, cov.Host.Lost},
			{cov.NS.OK, cov.NS.Empty, cov.NS.Lost},
			{cov.CA.OK, cov.CA.Empty, cov.CA.Lost},
			{cov.Language.OK, cov.Language.Empty, cov.Language.Lost},
		} {
			ok[i] += int64(f.OK)
			empty[i] += int64(f.Empty)
			lost[i] += int64(f.Lost)
		}
	}
	_ = sites
	for i, field := range []string{"host", "ns", "ca", "lang"} {
		if got := r.Counter("crawl." + field + ".ok").Value(); got != ok[i] {
			t.Errorf("crawl.%s.ok = %d, coverage accounting says %d", field, got, ok[i])
		}
		if got := r.Counter("crawl." + field + ".empty").Value(); got != empty[i] {
			t.Errorf("crawl.%s.empty = %d, coverage accounting says %d", field, got, empty[i])
		}
		if got := r.Counter("crawl." + field + ".lost").Value(); got != lost[i] {
			t.Errorf("crawl.%s.lost = %d, coverage accounting says %d", field, got, lost[i])
		}
	}
	if got := r.Counter("crawl.sites").Value(); got != totalSites {
		t.Errorf("crawl.sites = %d, coverage accounting says %d", got, totalSites)
	}
	if got := r.Timing("crawl.site_ms").Snapshot().Count; got != totalSites {
		t.Errorf("crawl.site_ms count = %d, want %d sites", got, totalSites)
	}
	if got := r.Timing("stage.crawl.ms").Snapshot().Count; got != 1 {
		t.Errorf("stage.crawl.ms count = %d, want 1", got)
	}

	// The faults really happened.
	if s := dnsProxy.Stats(); s.UDPDropped == 0 {
		t.Error("DNS proxy dropped nothing; the test exercised no faults")
	}
	if s := tlsProxy.Stats(); s.TCPDropped == 0 {
		t.Error("TLS proxy dropped nothing; the test exercised no faults")
	}
}

// TestObsBreakerCountersMatchUnderBlackhole exercises the breaker side of
// the cross-check: a blackholed DNS path with breakers configured must trip
// them, and the emitted transition counters must equal the breakers' own
// tallies exactly.
func TestObsBreakerCountersMatchUnderBlackhole(t *testing.T) {
	w, ep := faultWorld(t)
	dnsProxy := proxyFor(t, ep.DNSAddr,
		faultinject.Plan{Blackhole: true}, faultinject.Plan{Blackhole: true})

	r := obs.NewRegistry()
	dns := resolver.NewClient(dnsProxy.Addr)
	dns.Timeout = 50 * time.Millisecond
	policy := &resilience.Policy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		Breakers:    resilience.NewBreakerSet(3, 20*time.Millisecond),
	}
	crawl(t, w, &Live{
		Pipeline:   FromWorld(w),
		DNS:        dns,
		Scanner:    tlsscan.New(w.Owners),
		TLSAddr:    ep.TLSAddr,
		Workers:    4,
		Resilience: policy,
		Obs:        r,
	})

	stats := policy.Stats()
	var opened, halfOpened, closed int64
	for _, kind := range policy.Breakers.Kinds() {
		o, h, c := policy.Breakers.Breaker(kind).Transitions()
		opened, halfOpened, closed = opened+o, halfOpened+h, closed+c
	}
	if opened == 0 || stats.CircuitRejections == 0 {
		t.Fatalf("blackhole tripped no breaker (opened=%d, rejections=%d); the cross-check would be vacuous",
			opened, stats.CircuitRejections)
	}
	checks := map[string]int64{
		"resilience.breaker.opened":      opened,
		"resilience.breaker.half_opened": halfOpened,
		"resilience.breaker.closed":      closed,
		"resilience.circuit_rejections":  stats.CircuitRejections,
		"resilience.attempts":            stats.Attempts,
		"resilience.retries":             stats.Retries,
	}
	for name, want := range checks {
		if got := r.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, component accounting says %d", name, got, want)
		}
	}
}
