package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/liveworld"
	"github.com/webdep/webdep/internal/resolver"
	"github.com/webdep/webdep/internal/tlsscan"
	"github.com/webdep/webdep/internal/worldgen"
)

func serveLive(t *testing.T, ccs ...string) (*worldgen.World, *Live, func()) {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{
		Seed:               21,
		SitesPerCountry:    40,
		Countries:          ccs,
		DomesticPerCountry: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := liveworld.Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	live := &Live{
		Pipeline: FromWorld(w),
		DNS:      resolver.NewClient(ep.DNSAddr),
		Scanner:  tlsscan.New(w.Owners),
		TLSAddr:  ep.TLSAddr,
		Workers:  8,
	}
	return w, live, func() { ep.Close() }
}

// TestCrawlCorpusMatchesPerCountryCrawls checks the global worker budget
// produces exactly the same corpus as crawling each country on its own:
// sharing workers across countries must not perturb the measurement.
func TestCrawlCorpusMatchesPerCountryCrawls(t *testing.T) {
	ccs := []string{"TH", "CZ", "US"}
	w, live, done := serveLive(t, ccs...)
	defer done()

	var progressed []string
	corpus, err := live.CrawlCorpus(context.Background(), "2023-05", ccs,
		func(cc string) []string { return w.Truth.Get(cc).Domains() },
		func(cc string, sites int) { progressed = append(progressed, cc) })
	if err != nil {
		t.Fatal(err)
	}

	for _, cc := range ccs {
		perCountry, err := live.CrawlCountry(context.Background(), cc, "2023-05", w.Truth.Get(cc).Domains())
		if err != nil {
			t.Fatal(err)
		}
		got := corpus.Get(cc)
		if got == nil {
			t.Fatalf("%s missing from corpus", cc)
		}
		if len(got.Sites) != len(perCountry.Sites) {
			t.Fatalf("%s: corpus crawl %d sites, per-country crawl %d", cc, len(got.Sites), len(perCountry.Sites))
		}
		for i := range got.Sites {
			if got.Sites[i] != perCountry.Sites[i] {
				t.Errorf("%s site %d differs:\n corpus      %+v\n per-country %+v",
					cc, i, got.Sites[i], perCountry.Sites[i])
			}
		}
	}

	// The serialized progress callback must fire exactly once per country.
	if len(progressed) != len(ccs) {
		t.Fatalf("progress fired %d times for %d countries: %v", len(progressed), len(ccs), progressed)
	}
	seen := map[string]bool{}
	for _, cc := range progressed {
		if seen[cc] {
			t.Errorf("progress fired twice for %s", cc)
		}
		seen[cc] = true
	}
}

// TestCrawlCorpusCancellation aborts a corpus crawl up front and checks the
// pool surfaces the context error instead of a partial corpus.
func TestCrawlCorpusCancellation(t *testing.T) {
	w, live, done := serveLive(t, "TH")
	defer done()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	corpus, err := live.CrawlCorpus(ctx, "2023-05", []string{"TH"},
		func(cc string) []string { return w.Truth.Get(cc).Domains() }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if corpus != nil {
		t.Error("cancelled crawl returned a corpus")
	}
}

// TestCrawlCountryCancellation: the single-country entry point rides
// CrawlCorpus's context-aware path, so a cancelled context must stop it
// promptly with the context's error instead of crawling to completion.
func TestCrawlCountryCancellation(t *testing.T) {
	w, live, done := serveLive(t, "TH")
	defer done()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	list, err := live.CrawlCountry(ctx, "TH", "2023-05", w.Truth.Get("TH").Domains())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if list != nil {
		t.Error("cancelled crawl returned a country list")
	}
	// "Promptly": nowhere near the time a 40-site crawl would take.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled crawl took %v to stop", elapsed)
	}
}

// TestCrawlCorpusRequiresClients mirrors the per-country guard.
func TestCrawlCorpusRequiresClients(t *testing.T) {
	live := &Live{Pipeline: &Pipeline{}}
	if _, err := live.CrawlCorpus(context.Background(), "x", []string{"US"},
		func(string) []string { return []string{"a.com"} }, nil); err == nil {
		t.Error("corpus crawl without clients accepted")
	}
}
