package pipeline

import (
	"bufio"
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/langid"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/parallel"
	"github.com/webdep/webdep/internal/resilience"
	"github.com/webdep/webdep/internal/resolver"
	"github.com/webdep/webdep/internal/tldinfo"
	"github.com/webdep/webdep/internal/tlsscan"
)

// Live crawls a served world over real sockets: DNS resolution through the
// resolver client, TLS handshakes and page fetches against the world's
// HTTPS endpoint, then the same database joins as the fast pipeline.
type Live struct {
	// Pipeline supplies the enrichment databases.
	*Pipeline
	// DNS queries the world's authoritative server.
	DNS *resolver.Client
	// Scanner performs TLS handshakes and CA-owner labeling.
	Scanner *tlsscan.Scanner
	// TLSAddr is the world's HTTPS endpoint; sites are selected via SNI.
	TLSAddr string
	// Workers bounds crawl concurrency (default 8).
	Workers int
	// DetectLanguage additionally fetches each site's page and runs
	// language identification on the body.
	DetectLanguage bool

	// Resilience, when non-nil, governs retries, backoff, budgets, and
	// circuit breaking for the live probe paths: CrawlCorpus installs it
	// on the DNS client (unless that client carries its own policy, which
	// wins) and applies it around TLS scans (breaker kind "tls") and page
	// fetches (kind "http"). Nil means single-attempt probes apart from
	// the DNS client's own fixed retry loop.
	Resilience *resilience.Policy
	// MinCoverage is the per-country coverage threshold: countries whose
	// worst per-field coverage falls below it are flagged degraded in the
	// corpus (or abort the crawl under FailFast). Zero means 1.0 — any
	// residual probe loss degrades the country; negative disables the
	// check entirely.
	MinCoverage float64
	// FailFast aborts CrawlCorpus with an error at the first country
	// below MinCoverage instead of flagging it degraded and continuing.
	FailFast bool

	// Checkpoint, when non-nil, makes the crawl crash-safe: every
	// completed site is journaled, and a journal reopened with
	// checkpoint.Resume replays finished sites so only missing or lost
	// ones are re-probed. Replayed results merge into the corpus before
	// coverage accounting, so a resumed crawl converges to the exact
	// corpus of an uninterrupted run. The journal must carry this crawl's
	// epoch and country set; CrawlCorpus refuses a mismatched one. If the
	// journal's disk fails mid-crawl the journal disarms and the crawl
	// continues — check Checkpoint.Err afterwards.
	Checkpoint *checkpoint.Journal

	// Obs selects the metrics registry the crawl records to; nil means
	// obs.Default(). CrawlCorpus propagates it to the DNS client, TLS
	// scanner, and resilience policy (when their own registry is unset),
	// so one injected registry observes the whole live path.
	Obs *obs.Registry

	metricsOnce sync.Once
	metrics     *liveMetrics
}

// fieldCounters is one probe field's outcome accounting: ok/empty/lost
// mirror dataset.FieldCoverage, so obs totals and the corpus's coverage
// accounting must agree exactly (the observability tests enforce this).
type fieldCounters struct {
	ok, empty, lost *obs.Counter
}

func (f fieldCounters) observe(s dataset.FieldStatus) {
	switch s {
	case dataset.StatusOK:
		f.ok.Inc()
	case dataset.StatusEmpty:
		f.empty.Inc()
	case dataset.StatusLost:
		f.lost.Inc()
	}
}

// liveMetrics holds the crawl's hoisted instruments: per-field outcome
// counters feeding the same classification as dataset.Coverage, per-site
// crawl latency, and page-fetch latency (DNS and TLS latency live in the
// resolver and scanner).
type liveMetrics struct {
	host, ns, ca, lang fieldCounters
	siteMS             *obs.Histogram
	sites              *obs.Counter
	httpMS             *obs.Histogram
	fetches            *obs.Counter
	fetchErrors        *obs.Counter
}

func (l *Live) reg() *obs.Registry {
	if l.Obs != nil {
		return l.Obs
	}
	return obs.Default()
}

func (l *Live) m() *liveMetrics {
	l.metricsOnce.Do(func() {
		r := l.reg()
		field := func(name string) fieldCounters {
			return fieldCounters{
				ok:    r.Counter("crawl." + name + ".ok"),
				empty: r.Counter("crawl." + name + ".empty"),
				lost:  r.Counter("crawl." + name + ".lost"),
			}
		}
		l.metrics = &liveMetrics{
			host:        field("host"),
			ns:          field("ns"),
			ca:          field("ca"),
			lang:        field("lang"),
			siteMS:      r.Timing("crawl.site_ms"),
			sites:       r.Counter("crawl.sites"),
			httpMS:      r.Timing("probe.http.ms"),
			fetches:     r.Counter("probe.http.fetches"),
			fetchErrors: r.Counter("probe.http.errors"),
		}
	})
	return l.metrics
}

// minCoverage resolves the MinCoverage knob: 0 → 1.0, negative → disabled.
func (l *Live) minCoverage() float64 {
	switch {
	case l.MinCoverage == 0:
		return 1
	case l.MinCoverage < 0:
		return 0
	}
	return l.MinCoverage
}

// CrawlCountry measures one country's domains end-to-end over the same
// context-aware path as CrawlCorpus: cancelling ctx aborts the crawl
// promptly with the context's error. Per-domain failures leave the
// affected fields empty rather than failing the crawl.
func (l *Live) CrawlCountry(ctx context.Context, cc, epoch string, domains []string) (*dataset.CountryList, error) {
	corpus, err := l.CrawlCorpus(ctx, epoch, []string{cc},
		func(string) []string { return domains }, nil)
	if err != nil {
		return nil, err
	}
	return corpus.Get(cc), nil
}

// SiteJob is one (country, domain) unit of crawl work carrying the
// domain's global toplist rank, so a sharded crawl — probing an arbitrary
// slice of a country's list — records the exact ranks an unsharded crawl
// assigns. Rank is 1-based.
type SiteJob struct {
	Country string
	Domain  string
	Rank    int
}

// CrawlCorpus measures every listed country over one global worker budget:
// all (country, domain) crawl jobs share the same pool of l.Workers
// goroutines, so a large country cannot serialize the corpus behind it and
// small countries do not leave workers idle. Results are index-addressed
// per (country, rank), making the corpus identical to per-country
// sequential crawls; coverage accounting is folded serially after the pool
// drains, so it is deterministic too. The optional progress callback fires
// once per country as its last site completes; invocations are serialized,
// so callers may write to a shared stream without interleaving. Cancelling
// ctx aborts the crawl promptly with the context's error.
func (l *Live) CrawlCorpus(ctx context.Context, epoch string, ccs []string, domainsOf func(cc string) []string, progress func(cc string, sites int)) (*dataset.Corpus, error) {
	// Flatten the per-country domain lists into one job list so the worker
	// budget is truly global.
	domains := make([][]string, len(ccs))
	remaining := make([]int64, len(ccs))
	var jobs []SiteJob
	var ccOf, domOf []int
	for i, cc := range ccs {
		domains[i] = domainsOf(cc)
		remaining[i] = int64(len(domains[i]))
		for j, d := range domains[i] {
			jobs = append(jobs, SiteJob{Country: cc, Domain: d, Rank: j + 1})
			ccOf = append(ccOf, i)
			domOf = append(domOf, j)
		}
	}

	sites := make([][]dataset.Website, len(ccs))
	outcomes := make([][]dataset.SiteOutcome, len(ccs))
	for i := range ccs {
		sites[i] = make([]dataset.Website, len(domains[i]))
		outcomes[i] = make([]dataset.SiteOutcome, len(domains[i]))
	}

	var progressMu sync.Mutex
	flatSites, flatOutcomes, err := l.crawlJobs(ctx, epoch, ccs, jobs, func(k int) {
		i := ccOf[k]
		if progress != nil && atomic.AddInt64(&remaining[i], -1) == 0 {
			progressMu.Lock()
			progress(ccs[i], len(sites[i]))
			progressMu.Unlock()
		}
	})
	if err != nil {
		return nil, err
	}
	for k := range jobs {
		sites[ccOf[k]][domOf[k]] = flatSites[k]
		outcomes[ccOf[k]][domOf[k]] = flatOutcomes[k]
	}

	corpus := dataset.NewCorpus(epoch)
	// Record the worker count the crawl actually ran with, not the raw
	// (possibly zero) knob.
	corpus.Workers = l.workerCount()
	min := l.minCoverage()
	for i, cc := range ccs {
		corpus.Add(&dataset.CountryList{Country: cc, Epoch: epoch, Sites: sites[i]})
		cov := &dataset.Coverage{Country: cc}
		for _, o := range outcomes[i] {
			cov.Observe(o)
		}
		if frac := cov.Fraction(); frac < min {
			if l.FailFast {
				return nil, fmt.Errorf("pipeline: country %s coverage %.3f below minimum %.3f (%d probes lost)",
					cc, frac, min, cov.Lost())
			}
			cov.Degraded = true
		}
		corpus.SetCoverage(cov)
	}
	return corpus, nil
}

// CrawlJobs is the sharded entry point: it probes an explicit job list —
// one federated worker's slice of a larger crawl — under the same engine,
// checkpointing, and resilience wiring as CrawlCorpus, and returns the
// sites and outcomes indexed like jobs. The countries list is the WHOLE
// campaign's country set (it keys the checkpoint journal header), not just
// the countries the jobs touch; every job must fall inside it. Ranks are
// recorded exactly as given, so a merge over every worker's journals
// reassembles the same corpus an unsharded crawl produces.
func (l *Live) CrawlJobs(ctx context.Context, epoch string, countries []string, jobs []SiteJob) ([]dataset.Website, []dataset.SiteOutcome, error) {
	ccSet := make(map[string]bool, len(countries))
	for _, cc := range countries {
		ccSet[cc] = true
	}
	for _, job := range jobs {
		if !ccSet[job.Country] {
			return nil, nil, fmt.Errorf("pipeline: job for %s/%s outside the crawl's country set %v",
				job.Country, job.Domain, countries)
		}
		if job.Rank < 1 {
			return nil, nil, fmt.Errorf("pipeline: job for %s/%s has rank %d; ranks are 1-based",
				job.Country, job.Domain, job.Rank)
		}
	}
	return l.crawlJobs(ctx, epoch, countries, jobs, nil)
}

// workerCount resolves the Workers knob to the effective pool size.
func (l *Live) workerCount() int {
	if l.Workers > 0 {
		return l.Workers
	}
	return 8
}

// crawlJobs is the shared crawl engine: it validates the crawler, wires
// observability and resilience, and probes every job over the global
// worker pool, consulting and feeding the checkpoint journal. onDone (when
// non-nil) fires after job k's result lands, on the worker's goroutine.
func (l *Live) crawlJobs(ctx context.Context, epoch string, countries []string, jobs []SiteJob, onDone func(k int)) ([]dataset.Website, []dataset.SiteOutcome, error) {
	if l.DNS == nil || l.Scanner == nil {
		return nil, nil, fmt.Errorf("pipeline: live crawl needs DNS client and TLS scanner")
	}
	if l.Checkpoint != nil {
		// A journal from another campaign must never merge silently: the
		// epoch and country set have to match exactly.
		if err := l.Checkpoint.Matches(epoch, countries); err != nil {
			return nil, nil, err
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := l.workerCount()
	// Point every component at the crawl's registry before any probe runs,
	// so one injected registry observes the whole live path; components
	// carrying their own registry keep it.
	if l.Obs != nil {
		if l.DNS.Obs == nil {
			l.DNS.Obs = l.Obs
		}
		if l.Scanner.Obs == nil {
			l.Scanner.Obs = l.Obs
		}
		if l.Resilience != nil && l.Resilience.Obs == nil {
			l.Resilience.Obs = l.Obs
		}
	}
	if l.Resilience != nil && l.DNS.Policy == nil {
		l.DNS.Policy = l.Resilience
	}
	crawlSpan := obs.StartSpan(l.reg().Timing("stage.crawl.ms"))
	defer crawlSpan.End()

	sites := make([]dataset.Website, len(jobs))
	outcomes := make([]dataset.SiteOutcome, len(jobs))
	err := parallel.ForEachIndexed(ctx, workers, len(jobs), func(ctx context.Context, k int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		job := jobs[k]
		if l.Checkpoint != nil {
			// Resume path: a journaled site with no transient loss is not
			// re-probed — its stored result merges into the corpus (and
			// its outcome into the coverage accounting) exactly as if this
			// run had crawled it.
			if w, o, ok := l.Checkpoint.Reuse(job.Country, job.Domain); ok {
				sites[k], outcomes[k] = w, o
				if onDone != nil {
					onDone(k)
				}
				return nil
			}
		}
		sites[k], outcomes[k] = l.crawlOne(ctx, job.Country, job.Domain, job.Rank)
		if l.Checkpoint != nil {
			// Journal the completed site before it can be lost to a crash.
			// Append never fails the crawl: a dead checkpoint disk disarms
			// journaling and the campaign keeps its results.
			l.Checkpoint.Append(job.Country, sites[k], outcomes[k])
		}
		if onDone != nil {
			onDone(k)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return sites, outcomes, nil
}

// outcomeOf maps a probe error onto a coverage status: authoritative
// negatives are StatusEmpty (the absence was measured), everything else —
// exhausted transient retries and open circuits — is StatusLost.
func outcomeOf(err error, classify resilience.Classifier) dataset.FieldStatus {
	switch {
	case err == nil:
		return dataset.StatusOK
	case errors.Is(err, resilience.ErrCircuitOpen):
		return dataset.StatusLost
	case classify(err) == resilience.Permanent:
		return dataset.StatusEmpty
	}
	return dataset.StatusLost
}

// crawlOne measures one site and classifies every probe's outcome so the
// crawl can distinguish "the field is absent" from "the measurement was
// lost".
func (l *Live) crawlOne(ctx context.Context, cc, domain string, rank int) (dataset.Website, dataset.SiteOutcome) {
	m := l.m()
	sp := obs.StartSpan(m.siteMS)
	w, o := l.crawlSite(ctx, cc, domain, rank)
	sp.End()
	m.sites.Inc()
	m.host.observe(o.Host)
	m.ns.observe(o.NS)
	m.ca.observe(o.CA)
	m.lang.observe(o.Language)
	return w, o
}

// crawlSite performs the actual probes; crawlOne wraps it with the span
// and outcome accounting.
func (l *Live) crawlSite(ctx context.Context, cc, domain string, rank int) (dataset.Website, dataset.SiteOutcome) {
	w := dataset.Website{
		Domain:  domain,
		Country: cc,
		Rank:    rank,
		TLD:     tldinfo.Extract(domain),
	}
	var o dataset.SiteOutcome

	// Hosting: A lookup, then geo/AS/anycast joins on the first address.
	addrs, err := l.DNS.LookupAContext(ctx, domain)
	switch {
	case err != nil:
		o.Host = outcomeOf(err, resolver.Classify)
	case len(addrs) == 0:
		o.Host = dataset.StatusEmpty
	default:
		l.annotateHost(&w, addrs[0])
		o.Host = dataset.StatusOK
	}

	// DNS infrastructure: NS lookup, using volunteered glue when present
	// and falling back to an explicit A lookup for the nameserver host.
	nss, glue, err := l.DNS.LookupNSGluedContext(ctx, domain)
	switch {
	case err != nil:
		o.NS = outcomeOf(err, resolver.Classify)
	case len(nss) == 0:
		o.NS = dataset.StatusEmpty
	default:
		if addrs := glue[nss[0]]; len(addrs) > 0 {
			l.annotateNS(&w, addrs[0])
			o.NS = dataset.StatusOK
			break
		}
		nsAddrs, err := l.DNS.LookupAContext(ctx, nss[0])
		switch {
		case err != nil:
			o.NS = outcomeOf(err, resolver.Classify)
		case len(nsAddrs) == 0:
			o.NS = dataset.StatusEmpty
		default:
			l.annotateNS(&w, nsAddrs[0])
			o.NS = dataset.StatusOK
		}
	}

	// CA: real TLS handshake with SNI selecting the site.
	if res, err := l.scanTLS(ctx, domain); err == nil {
		w.CAOwner = res.CAOwner
		w.CAOwnerCountry = res.CAOwnerCountry
		o.CA = dataset.StatusOK
	} else {
		o.CA = outcomeOf(err, resilience.DefaultClassify)
	}

	if l.DetectLanguage {
		if body, err := l.fetchPage(ctx, domain); err == nil {
			w.Language = langid.Detect(body)
			o.Language = dataset.StatusOK
		} else {
			o.Language = outcomeOf(err, httpClassify)
		}
	}
	return w, o
}

// scanTLS performs the CA probe, under the resilience policy when one is
// configured (breaker kind "tls").
func (l *Live) scanTLS(ctx context.Context, domain string) (*tlsscan.Result, error) {
	if l.Resilience == nil {
		return l.Scanner.ScanContext(ctx, l.TLSAddr, domain)
	}
	var res *tlsscan.Result
	err := l.Resilience.Do(ctx, "tls", func(ctx context.Context) error {
		var err error
		res, err = l.Scanner.ScanContext(ctx, l.TLSAddr, domain)
		return err
	})
	return res, err
}

// fetchPage fetches the site's page body, under the resilience policy when
// one is configured (breaker kind "http"). Server-side 5xx responses are
// transient — the page may exist on retry — while other non-2xx statuses
// are authoritative negatives.
func (l *Live) fetchPage(ctx context.Context, domain string) (string, error) {
	if l.Resilience == nil {
		return l.fetchBodyObserved(ctx, domain)
	}
	var body string
	err := l.Resilience.DoClassified(ctx, "http", httpClassify, func(ctx context.Context) error {
		var err error
		body, err = l.fetchBodyObserved(ctx, domain)
		return err
	})
	return body, err
}

// fetchBodyObserved wraps fetchBody with the "probe.http.*" instruments;
// under a resilience policy it runs once per attempt, so the fetch counter
// matches the policy's attempt accounting for the "http" kind.
func (l *Live) fetchBodyObserved(ctx context.Context, domain string) (string, error) {
	m := l.m()
	m.fetches.Inc()
	sp := obs.StartSpan(m.httpMS)
	body, err := fetchBody(ctx, l.TLSAddr, domain)
	sp.End()
	if err != nil {
		m.fetchErrors.Inc()
	}
	return body, err
}

// HTTPStatusError reports a non-2xx status from a page fetch.
type HTTPStatusError struct{ Code int }

func (e *HTTPStatusError) Error() string {
	return fmt.Sprintf("pipeline: HTTP status %d", e.Code)
}

// httpClassify maps page-fetch errors onto resilience classes: 5xx is
// transient, any other HTTP status permanent, and everything else falls
// through to the default network classification.
func httpClassify(err error) resilience.Class {
	var se *HTTPStatusError
	if errors.As(err, &se) {
		if se.Code >= 500 {
			return resilience.Transient
		}
		return resilience.Permanent
	}
	return resilience.DefaultClassify(err)
}

// maxBodyBytes bounds how much of a response a page fetch will read; pages
// beyond the cap are truncated, which is ample for language detection.
const maxBodyBytes = 1 << 20

// fetchBody performs a minimal HTTPS GET against the endpoint with the
// domain as SNI and Host, returning the response body. Non-2xx responses
// are returned as *HTTPStatusError without reading the body — an error
// page must not masquerade as site content downstream (e.g. language
// detection). The read is bounded by maxBodyBytes and by ctx.
func fetchBody(ctx context.Context, addr, domain string) (string, error) {
	dialer := &tls.Dialer{
		NetDialer: &net.Dialer{Timeout: 3 * time.Second},
		Config: &tls.Config{
			ServerName:         domain,
			InsecureSkipVerify: true, // synthetic roots; CA labeling happens in the scanner
			MinVersion:         tls.VersionTLS12,
		},
	}
	nc, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return "", err
	}
	conn := nc.(*tls.Conn)
	defer conn.Close()
	dl := time.Now().Add(3 * time.Second)
	if d, ok := ctx.Deadline(); ok && d.Before(dl) {
		dl = d
	}
	if err := conn.SetDeadline(dl); err != nil {
		return "", err
	}
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", domain)
	reader := bufio.NewReader(io.LimitReader(conn, maxBodyBytes))
	status, err := reader.ReadString('\n')
	if err != nil {
		return "", err
	}
	code, err := parseStatus(status)
	if err != nil {
		return "", err
	}
	// Skip headers.
	for {
		line, err := reader.ReadString('\n')
		if err != nil {
			return "", err
		}
		if strings.TrimSpace(line) == "" {
			break
		}
	}
	if code < 200 || code >= 300 {
		return "", &HTTPStatusError{Code: code}
	}
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := reader.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return body.String(), nil
}

// parseStatus extracts the status code from an HTTP/1.x status line.
func parseStatus(line string) (int, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "HTTP/") {
		return 0, fmt.Errorf("pipeline: malformed status line %q", strings.TrimSpace(line))
	}
	code, err := strconv.Atoi(fields[1])
	if err != nil || code < 100 || code > 599 {
		return 0, fmt.Errorf("pipeline: malformed status code in %q", strings.TrimSpace(line))
	}
	return code, nil
}
