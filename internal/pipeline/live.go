package pipeline

import (
	"bufio"
	"crypto/tls"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/langid"
	"github.com/webdep/webdep/internal/resolver"
	"github.com/webdep/webdep/internal/tldinfo"
	"github.com/webdep/webdep/internal/tlsscan"
)

// Live crawls a served world over real sockets: DNS resolution through the
// resolver client, TLS handshakes and page fetches against the world's
// HTTPS endpoint, then the same database joins as the fast pipeline.
type Live struct {
	// Pipeline supplies the enrichment databases.
	*Pipeline
	// DNS queries the world's authoritative server.
	DNS *resolver.Client
	// Scanner performs TLS handshakes and CA-owner labeling.
	Scanner *tlsscan.Scanner
	// TLSAddr is the world's HTTPS endpoint; sites are selected via SNI.
	TLSAddr string
	// Workers bounds crawl concurrency (default 8).
	Workers int
	// DetectLanguage additionally fetches each site's page and runs
	// language identification on the body.
	DetectLanguage bool
}

// CrawlCountry measures one country's domains end-to-end. Per-domain
// failures leave the affected fields empty rather than failing the crawl.
func (l *Live) CrawlCountry(cc, epoch string, domains []string) (*dataset.CountryList, error) {
	if l.DNS == nil || l.Scanner == nil {
		return nil, fmt.Errorf("pipeline: live crawl needs DNS client and TLS scanner")
	}
	workers := l.Workers
	if workers <= 0 {
		workers = 8
	}
	sites := make([]dataset.Website, len(domains))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				sites[idx] = l.crawlOne(cc, domains[idx], idx+1)
			}
		}()
	}
	for i := range domains {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return &dataset.CountryList{Country: cc, Epoch: epoch, Sites: sites}, nil
}

func (l *Live) crawlOne(cc, domain string, rank int) dataset.Website {
	w := dataset.Website{
		Domain:  domain,
		Country: cc,
		Rank:    rank,
		TLD:     tldinfo.Extract(domain),
	}

	// Hosting: A lookup, then geo/AS/anycast joins on the first address.
	if addrs, err := l.DNS.LookupA(domain); err == nil && len(addrs) > 0 {
		l.annotateHost(&w, addrs[0])
	}

	// DNS infrastructure: NS lookup, using volunteered glue when present
	// and falling back to an explicit A lookup for the nameserver host.
	if nss, glue, err := l.DNS.LookupNSGlued(domain); err == nil && len(nss) > 0 {
		if addrs := glue[nss[0]]; len(addrs) > 0 {
			l.annotateNS(&w, addrs[0])
		} else if nsAddrs, err := l.DNS.LookupA(nss[0]); err == nil && len(nsAddrs) > 0 {
			l.annotateNS(&w, nsAddrs[0])
		}
	}

	// CA: real TLS handshake with SNI selecting the site.
	if res, err := l.Scanner.Scan(l.TLSAddr, domain); err == nil {
		w.CAOwner = res.CAOwner
		w.CAOwnerCountry = res.CAOwnerCountry
	}

	if l.DetectLanguage {
		if body, err := fetchBody(l.TLSAddr, domain); err == nil {
			w.Language = langid.Detect(body)
		}
	}
	return w
}

// fetchBody performs a minimal HTTPS GET against the endpoint with the
// domain as SNI and Host, returning the response body.
func fetchBody(addr, domain string) (string, error) {
	dialer := &net.Dialer{Timeout: 3 * time.Second}
	conn, err := tls.DialWithDialer(dialer, "tcp", addr, &tls.Config{
		ServerName:         domain,
		InsecureSkipVerify: true, // synthetic roots; CA labeling happens in the scanner
		MinVersion:         tls.VersionTLS12,
	})
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(3 * time.Second)); err != nil {
		return "", err
	}
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", domain)
	reader := bufio.NewReader(conn)
	// Skip status line and headers.
	if _, err := reader.ReadString('\n'); err != nil {
		return "", err
	}
	for {
		line, err := reader.ReadString('\n')
		if err != nil {
			return "", err
		}
		if strings.TrimSpace(line) == "" {
			break
		}
	}
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := reader.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return body.String(), nil
}
