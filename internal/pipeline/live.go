package pipeline

import (
	"bufio"
	"context"
	"crypto/tls"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/langid"
	"github.com/webdep/webdep/internal/parallel"
	"github.com/webdep/webdep/internal/resolver"
	"github.com/webdep/webdep/internal/tldinfo"
	"github.com/webdep/webdep/internal/tlsscan"
)

// Live crawls a served world over real sockets: DNS resolution through the
// resolver client, TLS handshakes and page fetches against the world's
// HTTPS endpoint, then the same database joins as the fast pipeline.
type Live struct {
	// Pipeline supplies the enrichment databases.
	*Pipeline
	// DNS queries the world's authoritative server.
	DNS *resolver.Client
	// Scanner performs TLS handshakes and CA-owner labeling.
	Scanner *tlsscan.Scanner
	// TLSAddr is the world's HTTPS endpoint; sites are selected via SNI.
	TLSAddr string
	// Workers bounds crawl concurrency (default 8).
	Workers int
	// DetectLanguage additionally fetches each site's page and runs
	// language identification on the body.
	DetectLanguage bool
}

// CrawlCountry measures one country's domains end-to-end. Per-domain
// failures leave the affected fields empty rather than failing the crawl.
func (l *Live) CrawlCountry(cc, epoch string, domains []string) (*dataset.CountryList, error) {
	corpus, err := l.CrawlCorpus(context.Background(), epoch, []string{cc},
		func(string) []string { return domains }, nil)
	if err != nil {
		return nil, err
	}
	return corpus.Get(cc), nil
}

// CrawlCorpus measures every listed country over one global worker budget:
// all (country, domain) crawl jobs share the same pool of l.Workers
// goroutines, so a large country cannot serialize the corpus behind it and
// small countries do not leave workers idle. Results are index-addressed
// per (country, rank), making the corpus identical to per-country
// sequential crawls. The optional progress callback fires once per country
// as its last site completes; invocations are serialized, so callers may
// write to a shared stream without interleaving. Cancelling ctx aborts the
// crawl promptly with the context's error.
func (l *Live) CrawlCorpus(ctx context.Context, epoch string, ccs []string, domainsOf func(cc string) []string, progress func(cc string, sites int)) (*dataset.Corpus, error) {
	if l.DNS == nil || l.Scanner == nil {
		return nil, fmt.Errorf("pipeline: live crawl needs DNS client and TLS scanner")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := l.Workers
	if workers <= 0 {
		workers = 8
	}

	// Flatten the per-country domain lists into one job list so the worker
	// budget is truly global.
	domains := make([][]string, len(ccs))
	sites := make([][]dataset.Website, len(ccs))
	remaining := make([]int64, len(ccs))
	var ccOf, domOf []int
	for i, cc := range ccs {
		domains[i] = domainsOf(cc)
		sites[i] = make([]dataset.Website, len(domains[i]))
		remaining[i] = int64(len(domains[i]))
		for j := range domains[i] {
			ccOf = append(ccOf, i)
			domOf = append(domOf, j)
		}
	}

	var progressMu sync.Mutex
	err := parallel.ForEachIndexed(ctx, workers, len(ccOf), func(ctx context.Context, k int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		i, j := ccOf[k], domOf[k]
		sites[i][j] = l.crawlOne(ccs[i], domains[i][j], j+1)
		if progress != nil && atomic.AddInt64(&remaining[i], -1) == 0 {
			progressMu.Lock()
			progress(ccs[i], len(sites[i]))
			progressMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	corpus := dataset.NewCorpus(epoch)
	corpus.Workers = l.Workers
	for i, cc := range ccs {
		corpus.Add(&dataset.CountryList{Country: cc, Epoch: epoch, Sites: sites[i]})
	}
	return corpus, nil
}

func (l *Live) crawlOne(cc, domain string, rank int) dataset.Website {
	w := dataset.Website{
		Domain:  domain,
		Country: cc,
		Rank:    rank,
		TLD:     tldinfo.Extract(domain),
	}

	// Hosting: A lookup, then geo/AS/anycast joins on the first address.
	if addrs, err := l.DNS.LookupA(domain); err == nil && len(addrs) > 0 {
		l.annotateHost(&w, addrs[0])
	}

	// DNS infrastructure: NS lookup, using volunteered glue when present
	// and falling back to an explicit A lookup for the nameserver host.
	if nss, glue, err := l.DNS.LookupNSGlued(domain); err == nil && len(nss) > 0 {
		if addrs := glue[nss[0]]; len(addrs) > 0 {
			l.annotateNS(&w, addrs[0])
		} else if nsAddrs, err := l.DNS.LookupA(nss[0]); err == nil && len(nsAddrs) > 0 {
			l.annotateNS(&w, nsAddrs[0])
		}
	}

	// CA: real TLS handshake with SNI selecting the site.
	if res, err := l.Scanner.Scan(l.TLSAddr, domain); err == nil {
		w.CAOwner = res.CAOwner
		w.CAOwnerCountry = res.CAOwnerCountry
	}

	if l.DetectLanguage {
		if body, err := fetchBody(l.TLSAddr, domain); err == nil {
			w.Language = langid.Detect(body)
		}
	}
	return w
}

// fetchBody performs a minimal HTTPS GET against the endpoint with the
// domain as SNI and Host, returning the response body.
func fetchBody(addr, domain string) (string, error) {
	dialer := &net.Dialer{Timeout: 3 * time.Second}
	conn, err := tls.DialWithDialer(dialer, "tcp", addr, &tls.Config{
		ServerName:         domain,
		InsecureSkipVerify: true, // synthetic roots; CA labeling happens in the scanner
		MinVersion:         tls.VersionTLS12,
	})
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(3 * time.Second)); err != nil {
		return "", err
	}
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", domain)
	reader := bufio.NewReader(conn)
	// Skip status line and headers.
	if _, err := reader.ReadString('\n'); err != nil {
		return "", err
	}
	for {
		line, err := reader.ReadString('\n')
		if err != nil {
			return "", err
		}
		if strings.TrimSpace(line) == "" {
			break
		}
	}
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := reader.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return body.String(), nil
}
