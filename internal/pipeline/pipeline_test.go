package pipeline

import (
	"math"
	"testing"

	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/worldgen"
)

func buildWorld(t *testing.T, ccs ...string) *worldgen.World {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{
		Seed:               7,
		SitesPerCountry:    1200,
		Countries:          ccs,
		DomesticPerCountry: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMeasureWorldRecoversTruth(t *testing.T) {
	w := buildWorld(t, "TH", "IR", "US")
	measured, err := FromWorld(w).MeasureWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	// With zero geolocation error the measured corpus must equal the
	// ground truth record-for-record.
	for _, cc := range []string{"TH", "IR", "US"} {
		truth := w.Truth.Get(cc)
		got := measured.Get(cc)
		if len(got.Sites) != len(truth.Sites) {
			t.Fatalf("%s: %d sites measured, %d in truth", cc, len(got.Sites), len(truth.Sites))
		}
		for i := range truth.Sites {
			if truth.Sites[i] != got.Sites[i] {
				t.Fatalf("%s site %d:\n truth    %+v\n measured %+v", cc, i, truth.Sites[i], got.Sites[i])
			}
		}
	}
}

func TestMeasuredScoresMatchPaper(t *testing.T) {
	w := buildWorld(t, "TH", "IR", "US", "CZ")
	measured, err := FromWorld(w).MeasureWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, layer := range countries.Layers {
		for cc, got := range measured.Scores(layer) {
			c, _ := countries.ByCode(cc)
			if want := c.PaperScore[layer]; math.Abs(got-want) > 0.012 {
				t.Errorf("%s %v: measured %v, paper %v", cc, layer, got, want)
			}
		}
	}
}

func TestGeoErrorAffectsContinentsNotProviders(t *testing.T) {
	w, err := worldgen.Build(worldgen.Config{
		Seed:               7,
		SitesPerCountry:    1200,
		Countries:          []string{"US"},
		DomesticPerCountry: 30,
		GeoErrorRate:       0.106,
	})
	if err != nil {
		t.Fatal(err)
	}
	measured, err := FromWorld(w).MeasureWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	truth := w.Truth.Get("US")
	got := measured.Get("US")
	providerMismatch, continentMismatch := 0, 0
	for i := range truth.Sites {
		if truth.Sites[i].HostProvider != got.Sites[i].HostProvider {
			providerMismatch++
		}
		if truth.Sites[i].HostIPContinent != got.Sites[i].HostIPContinent {
			continentMismatch++
		}
	}
	// Provider attribution flows through pfx2as, which has no error model.
	if providerMismatch != 0 {
		t.Errorf("%d provider mismatches under geo error", providerMismatch)
	}
	// Continent labels should show roughly the configured error rate.
	// (Truth is generated without the error model; mislabels only disagree
	// when the decoy continent differs from the true one.)
	rate := float64(continentMismatch) / float64(len(truth.Sites))
	if rate < 0.02 || rate > 0.15 {
		t.Errorf("continent mismatch rate %v, expected near the 10.6%% error model", rate)
	}
}

func TestMeasureWorldMissingCountry(t *testing.T) {
	w := buildWorld(t, "US")
	p := FromWorld(w)
	// Corrupt the world: drop the raw sites.
	delete(w.Raw, "US")
	if _, err := p.MeasureWorld(w); err == nil {
		t.Error("missing raw sites accepted")
	}
}

func TestEnrichHandlesUnattributableSites(t *testing.T) {
	w := buildWorld(t, "US")
	p := FromWorld(w)
	raw := []worldgen.RawSite{
		{Domain: "ghost.example.com", Rank: 1}, // zero IPs, no issuer
	}
	list := p.EnrichCountry("US", "2023-05", raw)
	s := list.Sites[0]
	if s.HostProvider != "" || s.DNSProvider != "" || s.CAOwner != "" {
		t.Errorf("unattributable site gained providers: %+v", s)
	}
	if s.TLD != "com" {
		t.Errorf("TLD = %q", s.TLD)
	}
}
