package pipeline

import (
	"context"
	"fmt"

	"github.com/webdep/webdep/internal/corpusstore"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/parallel"
	"github.com/webdep/webdep/internal/worldgen"
)

// MeasureWorldToStore measures a world straight into an on-disk corpus
// store: each country's raw sites are generated (for shell worlds) or read
// from the world, enriched, and appended to that country's shard, so at
// most one country per worker is ever resident — the path that lets a
// million-site world be measured and scored inside a fixed memory budget.
// The rows written are identical to MeasureWorld's corpus for the same
// world. The caller still owns st and must Close it to finalize the
// manifest.
func (p *Pipeline) MeasureWorldToStore(w *worldgen.World, st *corpusstore.Writer) error {
	if st.Epoch() != w.Config.Epoch {
		return fmt.Errorf("pipeline: store epoch %q does not match world epoch %q", st.Epoch(), w.Config.Epoch)
	}
	reg := p.reg()
	measureSpan := obs.StartSpan(reg.Timing("stage.measure.ms"))
	enrichMS := reg.Timing("pipeline.enrich_country.ms")
	enriched := reg.Counter("pipeline.countries_enriched")

	ccs := w.Config.Countries
	err := parallel.ForEachIndexed(context.Background(), p.Workers, len(ccs),
		func(_ context.Context, i int) error {
			cc := ccs[i]
			raw, ok := w.Raw[cc]
			if !ok {
				// Shell world: generate the country on demand and let it go
				// once its shard is written.
				var err error
				if raw, _, err = w.GenerateCountry(cc); err != nil {
					return err
				}
			}
			if len(raw) == 0 {
				return fmt.Errorf("pipeline: world has no raw sites for %s", cc)
			}
			sp := obs.StartSpan(enrichMS)
			list := p.EnrichCountry(cc, w.Config.Epoch, raw)
			sp.End()
			enriched.Inc()
			return st.AppendList(list)
		})
	measureSpan.End()
	return err
}
