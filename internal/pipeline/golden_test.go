package pipeline

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/webdep/webdep/internal/classify"
	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/worldgen"
)

// update rewrites the golden file from a fresh measurement:
//
//	go test ./internal/pipeline -run TestGoldenCorpus -update
//
// Only do this after an INTENTIONAL change to world generation, the
// enrichment pipeline, scoring, or classification — the golden file exists
// so unintentional drift in any of those fails loudly. Review the diff of
// testdata/golden_scores.json before committing it.
var update = flag.Bool("update", false, "rewrite testdata/golden_scores.json from a fresh measurement")

// The frozen configuration. Changing any of these constants invalidates the
// golden file (the test cross-checks them against the file's header).
const (
	goldenSeed     = 7
	goldenSites    = 600
	goldenDomestic = 30
)

// goldenCountries spans regions, profiles, and paper-score extremes so the
// frozen scores exercise the whole scoring range.
var goldenCountries = []string{"AU", "BR", "CZ", "DE", "IN", "IR", "JP", "TH", "US", "ZA"}

const goldenPath = "testdata/golden_scores.json"

// goldenFile freezes everything the paper's headline results flow through:
// per-country centralization scores per layer and the provider-class
// assignment of every provider per layer.
type goldenFile struct {
	Seed               int64                        `json:"seed"`
	SitesPerCountry    int                          `json:"sites_per_country"`
	DomesticPerCountry int                          `json:"domestic_per_country"`
	Countries          []string                     `json:"countries"`
	Scores             map[string]map[string]string `json:"scores"`  // cc -> layer -> exact score
	Classes            map[string]map[string]string `json:"classes"` // layer -> provider -> class
}

// goldenCorpus measures the frozen golden world in memory — the shared
// fixture for both the score and the SPOF golden gates.
func goldenCorpus(t *testing.T, workers int) *dataset.Corpus {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{
		Seed:               goldenSeed,
		SitesPerCountry:    goldenSites,
		DomesticPerCountry: goldenDomestic,
		Countries:          goldenCountries,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := FromWorld(w)
	p.Workers = workers
	corpus, err := p.MeasureWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

// measureGolden runs the frozen world through the full pipeline and
// serializes scores with strconv-exact float formatting ('g', -1), so any
// drift — even in the last ulp — changes the JSON.
func measureGolden(t *testing.T, workers int) *goldenFile {
	t.Helper()
	corpus := goldenCorpus(t, workers)
	g := &goldenFile{
		Seed:               goldenSeed,
		SitesPerCountry:    goldenSites,
		DomesticPerCountry: goldenDomestic,
		Countries:          goldenCountries,
		Scores:             make(map[string]map[string]string),
		Classes:            make(map[string]map[string]string),
	}
	for _, layer := range countries.Layers {
		for cc, score := range corpus.Scores(layer) {
			if g.Scores[cc] == nil {
				g.Scores[cc] = make(map[string]string)
			}
			g.Scores[cc][layer.String()] = formatScore(score)
		}
		res, err := classify.Layer(corpus, layer, classify.DefaultOptions())
		if err != nil {
			t.Fatalf("classify %v: %v", layer, err)
		}
		byProvider := make(map[string]string, len(res.Features))
		for _, f := range res.Features {
			byProvider[f.Provider] = string(f.Class)
		}
		g.Classes[layer.String()] = byProvider
	}
	return g
}

// formatScore renders a score exactly: Go's shortest-representation float
// formatting round-trips float64, so string equality is bit equality.
func formatScore(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestGoldenCorpus is the regression gate for the measurement pipeline: the
// fixed-seed world's per-country scores and provider classes must match the
// frozen testdata/golden_scores.json exactly. A failure means world
// generation, enrichment, scoring, or classification changed behavior; if
// the change is intentional, regenerate with -update (see the flag's doc).
func TestGoldenCorpus(t *testing.T) {
	got := measureGolden(t, 0)

	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}

	if want.Seed != got.Seed || want.SitesPerCountry != got.SitesPerCountry ||
		want.DomesticPerCountry != got.DomesticPerCountry {
		t.Fatalf("golden file frozen at seed=%d sites=%d domestic=%d, test runs seed=%d sites=%d domestic=%d: regenerate with -update",
			want.Seed, want.SitesPerCountry, want.DomesticPerCountry,
			got.Seed, got.SitesPerCountry, got.DomesticPerCountry)
	}

	for cc, layers := range want.Scores {
		for layer, wantScore := range layers {
			if gotScore := got.Scores[cc][layer]; gotScore != wantScore {
				t.Errorf("score drift: %s %s = %s, golden %s", cc, layer, gotScore, wantScore)
			}
		}
	}
	for cc, layers := range got.Scores {
		for layer := range layers {
			if _, ok := want.Scores[cc][layer]; !ok {
				t.Errorf("score for %s %s not in golden file (regenerate with -update)", cc, layer)
			}
		}
	}

	for layer, wantClasses := range want.Classes {
		gotClasses := got.Classes[layer]
		for provider, wantClass := range wantClasses {
			if gotClass, ok := gotClasses[provider]; !ok {
				t.Errorf("class drift: %s provider %q vanished (golden %s)", layer, provider, wantClass)
			} else if gotClass != wantClass {
				t.Errorf("class drift: %s provider %q = %s, golden %s", layer, provider, gotClass, wantClass)
			}
		}
		for provider := range gotClasses {
			if _, ok := wantClasses[provider]; !ok {
				t.Errorf("class drift: %s provider %q is new (regenerate with -update)", layer, provider)
			}
		}
	}
}

// TestGoldenCorpusDeterministic guards the premise of the golden file: two
// independent measurements of the frozen world — at different worker counts
// — must agree exactly, or golden comparisons would flake.
func TestGoldenCorpusDeterministic(t *testing.T) {
	a := measureGolden(t, 1)
	b := measureGolden(t, 4)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("two measurements of the frozen world disagree")
	}
}
