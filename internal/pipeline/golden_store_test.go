package pipeline

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"github.com/webdep/webdep/internal/classify"
	"github.com/webdep/webdep/internal/corpusstore"
	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/worldgen"
)

// storeGolden measures the frozen golden world straight into an on-disk
// corpus store — the streaming path, never materializing the corpus — and
// returns the opened store.
func storeGolden(t *testing.T, workers int) *corpusstore.Store {
	t.Helper()
	w, err := worldgen.BuildShell(worldgen.Config{
		Seed:               goldenSeed,
		SitesPerCountry:    goldenSites,
		DomesticPerCountry: goldenDomestic,
		Countries:          goldenCountries,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := &corpusstore.Options{Obs: obs.NewRegistry(), Workers: workers}
	sw, err := corpusstore.Create(dir, w.Config.Epoch, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := FromWorld(w)
	p.Workers = workers
	if err := p.MeasureWorldToStore(w, sw); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := corpusstore.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGoldenCorpusThroughStore is the golden gate for the store path: the
// frozen world, measured and scored entirely through the on-disk store —
// shell world, streamed ingestion, streamed scoring — must reproduce
// testdata/golden_scores.json exactly, byte for byte, with the golden file
// NOT regenerated. Any divergence means the store round trip is lossy or
// the streamed tallies drift from the in-memory scoring index.
func TestGoldenCorpusThroughStore(t *testing.T) {
	st := storeGolden(t, 0)
	ss, err := st.Score()
	if err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	var want goldenFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}

	if got := st.TotalSites(); got != int64(goldenSites*len(goldenCountries)) {
		t.Fatalf("store holds %d sites, golden world has %d", got, goldenSites*len(goldenCountries))
	}
	for _, layer := range countries.Layers {
		for cc, wantScore := range wantLayerScores(&want, layer) {
			got := formatScore(ss.DistributionOf(cc, layer).Score())
			if got != wantScore {
				t.Errorf("store score drift: %s %v = %s, golden %s", cc, layer, got, wantScore)
			}
		}
	}
	if got, wantN := len(ss.Countries()), len(goldenCountries); got != wantN {
		t.Fatalf("scored %d countries, want %d", got, wantN)
	}

	// Classification runs on a materialized corpus: Load must hand classify
	// the exact rows, reproducing the frozen provider classes.
	corpus, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, layer := range countries.Layers {
		res, err := classify.Layer(corpus, layer, classify.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]string, len(res.Features))
		for _, f := range res.Features {
			got[f.Provider] = string(f.Class)
		}
		if !reflect.DeepEqual(got, want.Classes[layer.String()]) {
			t.Errorf("provider classes through store drift from golden for %v", layer)
		}
	}
}

// wantLayerScores flattens the golden file's cc->layer->score map for one
// layer.
func wantLayerScores(g *goldenFile, layer countries.Layer) map[string]string {
	out := make(map[string]string, len(g.Scores))
	for cc, layers := range g.Scores {
		if s, ok := layers[layer.String()]; ok {
			out[cc] = s
		}
	}
	return out
}

// TestMeasureWorldToStoreMatchesMeasureWorld pins row-level equivalence of
// the two measurement paths: streaming into a store and materializing in
// memory must produce identical corpora, whichever the operator picks.
func TestMeasureWorldToStoreMatchesMeasureWorld(t *testing.T) {
	w, err := worldgen.Build(worldgen.Config{
		Seed:               11,
		SitesPerCountry:    200,
		DomesticPerCountry: 20,
		Countries:          []string{"DE", "JP", "US"},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := FromWorld(w)
	inMemory, err := p.MeasureWorld(w)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := &corpusstore.Options{Obs: obs.NewRegistry()}
	sw, err := corpusstore.Create(dir, w.Config.Epoch, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2 := FromWorld(w)
	if err := p2.MeasureWorldToStore(w, sw); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := corpusstore.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if stored.Epoch != inMemory.Epoch {
		t.Fatalf("epochs differ: %q vs %q", stored.Epoch, inMemory.Epoch)
	}
	if !reflect.DeepEqual(stored.Lists, inMemory.Lists) {
		t.Fatal("stored corpus rows differ from MeasureWorld's")
	}
}
