package pipeline

import (
	"strings"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/worldgen"
)

// measureWithWorkers measures the same world at a given worker count.
func measureWithWorkers(t *testing.T, w *worldgen.World, workers int) *dataset.Corpus {
	t.Helper()
	p := FromWorld(w)
	p.Workers = workers
	corpus, err := p.MeasureWorld(w)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return corpus
}

// TestMeasureWorldDeterministicAcrossWorkers is the parallel engine's core
// guarantee: the measured corpus at workers=1 (sequential) and workers=8
// must agree record-for-record, and every downstream scoring path must
// agree value-for-value.
func TestMeasureWorldDeterministicAcrossWorkers(t *testing.T) {
	w := buildWorld(t, "TH", "IR", "US", "CZ", "AZ", "HK", "RU", "SK")
	seq := measureWithWorkers(t, w, 1)
	par := measureWithWorkers(t, w, 8)

	if len(seq.Lists) != len(par.Lists) {
		t.Fatalf("corpora differ in country count: %d vs %d", len(seq.Lists), len(par.Lists))
	}
	for _, cc := range seq.Countries() {
		a, b := seq.Get(cc), par.Get(cc)
		if b == nil {
			t.Fatalf("%s missing from parallel corpus", cc)
		}
		if len(a.Sites) != len(b.Sites) {
			t.Fatalf("%s: %d sites sequential, %d parallel", cc, len(a.Sites), len(b.Sites))
		}
		for i := range a.Sites {
			if a.Sites[i] != b.Sites[i] {
				t.Fatalf("%s site %d differs:\n seq %+v\n par %+v", cc, i, a.Sites[i], b.Sites[i])
			}
		}
	}

	// Scores and the other corpus-wide computations must be bit-identical
	// too, at every worker count of the scoring pool itself.
	for _, layer := range countries.Layers {
		seqScores := seq.Scores(layer)
		parScores := par.Scores(layer)
		for cc, v := range seqScores {
			if parScores[cc] != v {
				t.Errorf("%v score for %s: %v sequential, %v parallel", layer, cc, v, parScores[cc])
			}
		}
		seqIns := seq.Insularities(layer)
		for cc, v := range par.Insularities(layer) {
			if seqIns[cc] != v {
				t.Errorf("%v insularity for %s differs across worker counts", layer, cc)
			}
		}
		if a, b := seq.GlobalDistribution(layer).Score(), par.GlobalDistribution(layer).Score(); a != b {
			t.Errorf("%v global score: %v sequential, %v parallel", layer, a, b)
		}
	}
}

// TestMeasureWorldFailingCountryAbortsPromptly drops one country's raw
// sites out of a world and checks the parallel measurement reports that
// country's error quickly instead of finishing (or hanging on) the rest.
func TestMeasureWorldFailingCountryAbortsPromptly(t *testing.T) {
	w := buildWorld(t, "TH", "IR", "US", "CZ", "AZ", "HK", "RU", "SK")
	delete(w.Raw, "AZ")
	p := FromWorld(w)
	p.Workers = 8

	start := time.Now()
	_, err := p.MeasureWorld(w)
	if err == nil {
		t.Fatal("measurement of a world with a missing country succeeded")
	}
	if !strings.Contains(err.Error(), "AZ") {
		t.Errorf("error does not name the failing country: %v", err)
	}
	// "Promptly" here just means the pool did not wedge: the whole world
	// measures in well under a minute, so treat that as the hang budget.
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Errorf("abort took %v", elapsed)
	}
}

// TestMeasureWorldWorkerSweep cross-checks a few more worker counts against
// the sequential corpus on a smaller world, guarding the index-addressing
// against off-by-one rotations that only show at odd pool sizes.
func TestMeasureWorldWorkerSweep(t *testing.T) {
	w := buildWorld(t, "TH", "US", "CZ")
	seq := measureWithWorkers(t, w, 1)
	for _, workers := range []int{2, 3, 5, 16} {
		par := measureWithWorkers(t, w, workers)
		for _, cc := range seq.Countries() {
			a, b := seq.Get(cc), par.Get(cc)
			for i := range a.Sites {
				if a.Sites[i] != b.Sites[i] {
					t.Fatalf("workers=%d: %s site %d differs", workers, cc, i)
				}
			}
		}
	}
}
