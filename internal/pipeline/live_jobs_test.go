package pipeline

import (
	"context"
	"strings"
	"testing"

	"github.com/webdep/webdep/internal/liveworld"
	"github.com/webdep/webdep/internal/resolver"
	"github.com/webdep/webdep/internal/tlsscan"
	"github.com/webdep/webdep/internal/worldgen"
)

// jobsWorld serves a small two-country world for the sharded entry-point
// tests.
func jobsWorld(t *testing.T) (*worldgen.World, *liveworld.Endpoints, *Live) {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{
		Seed:               41,
		SitesPerCountry:    8,
		Countries:          []string{"TH", "CZ"},
		DomesticPerCountry: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := liveworld.Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	live := &Live{
		Pipeline:       FromWorld(w),
		DNS:            resolver.NewClient(ep.DNSAddr),
		Scanner:        tlsscan.New(w.Owners),
		TLSAddr:        ep.TLSAddr,
		Workers:        4,
		DetectLanguage: true,
	}
	return w, ep, live
}

// TestCrawlJobsPreservesGlobalRanks probes an interior slice of one
// country's toplist — exactly what a federated shard worker does — and
// requires the measured sites to be byte-identical to the same slice of a
// whole-corpus crawl. Rank is the sensitive field: the engine must record
// the job's global rank, not the job's position within the shard.
func TestCrawlJobsPreservesGlobalRanks(t *testing.T) {
	w, _, live := jobsWorld(t)
	ccs := []string{"TH", "CZ"}
	full, err := live.CrawlCorpus(context.Background(), "2023-05", ccs,
		func(cc string) []string { return w.Truth.Get(cc).Domains() }, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The slice starts at rank 4: a shard whose local index 0 is global
	// rank 4 exposes any rank-from-position bug immediately.
	domains := w.Truth.Get("TH").Domains()
	var jobs []SiteJob
	for j := 3; j < 6; j++ {
		jobs = append(jobs, SiteJob{Country: "TH", Domain: domains[j], Rank: j + 1})
	}
	sites, outcomes, err := live.CrawlJobs(context.Background(), "2023-05", ccs, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != len(jobs) || len(outcomes) != len(jobs) {
		t.Fatalf("got %d sites / %d outcomes for %d jobs", len(sites), len(outcomes), len(jobs))
	}
	fullTH := full.Get("TH").Sites
	for k, job := range jobs {
		if sites[k].Rank != job.Rank {
			t.Errorf("%s: shard crawl recorded rank %d, want global rank %d", job.Domain, sites[k].Rank, job.Rank)
		}
		if sites[k] != fullTH[job.Rank-1] {
			t.Errorf("%s: shard crawl diverged from whole-corpus crawl:\n shard: %+v\n  full: %+v",
				job.Domain, sites[k], fullTH[job.Rank-1])
		}
		if outcomes[k].Lost() {
			t.Errorf("%s: fault-free shard crawl lost fields: %+v", job.Domain, outcomes[k])
		}
	}
}

// TestCrawlJobsCoverCorpus crawls the complete job list through the
// sharded entry point and checks it reproduces every site CrawlCorpus
// measures, country by country.
func TestCrawlJobsCoverCorpus(t *testing.T) {
	w, _, live := jobsWorld(t)
	ccs := []string{"TH", "CZ"}
	full, err := live.CrawlCorpus(context.Background(), "2023-05", ccs,
		func(cc string) []string { return w.Truth.Get(cc).Domains() }, nil)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []SiteJob
	for _, cc := range ccs {
		for j, d := range w.Truth.Get(cc).Domains() {
			jobs = append(jobs, SiteJob{Country: cc, Domain: d, Rank: j + 1})
		}
	}
	sites, _, err := live.CrawlJobs(context.Background(), "2023-05", ccs, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for k, job := range jobs {
		want := full.Get(job.Country).Sites[job.Rank-1]
		if sites[k] != want {
			t.Errorf("%s/%s: job crawl %+v, corpus crawl %+v", job.Country, job.Domain, sites[k], want)
		}
	}
}

// TestCrawlJobsValidatesJobs rejects jobs outside the campaign's country
// set and jobs with impossible ranks before any probe runs.
func TestCrawlJobsValidatesJobs(t *testing.T) {
	_, _, live := jobsWorld(t)
	ccs := []string{"TH", "CZ"}
	cases := []struct {
		name string
		job  SiteJob
		want string
	}{
		{"foreign country", SiteJob{Country: "US", Domain: "a.us", Rank: 1}, "country set"},
		{"zero rank", SiteJob{Country: "TH", Domain: "a.th", Rank: 0}, "1-based"},
		{"negative rank", SiteJob{Country: "TH", Domain: "a.th", Rank: -2}, "1-based"},
	}
	for _, tc := range cases {
		_, _, err := live.CrawlJobs(context.Background(), "2023-05", ccs, []SiteJob{tc.job})
		if err == nil {
			t.Errorf("%s: job %+v accepted", tc.name, tc.job)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
