// Package pipeline turns crawler-visible raw observations into the
// enriched per-country datasets the analyses consume, mirroring the
// paper's measurement flow: resolve → geolocate (NetAcuity substitute) →
// prefix-to-AS organization (CAIDA substitute) → anycast annotation
// (bgp.tools substitute) → certificate CA-owner labeling (CCADB
// substitute).
//
// Two modes are provided. Enrich (fast mode) consumes pre-resolved raw
// sites and exercises every database join. The Live type additionally
// performs the resolution itself over real sockets — DNS lookups against
// authoritative servers and TLS handshakes against an HTTPS endpoint — for
// worlds served by the liveworld harness.
package pipeline

import (
	"context"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"net/netip"

	"github.com/webdep/webdep/internal/anycast"
	"github.com/webdep/webdep/internal/capki"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/geoip"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/parallel"
	"github.com/webdep/webdep/internal/pfx2as"
	"github.com/webdep/webdep/internal/tldinfo"
	"github.com/webdep/webdep/internal/worldgen"
)

// Pipeline enriches raw observations through the infrastructure databases.
// The databases are read-only at lookup time (the geolocation error model
// is a deterministic hash of the address), so one Pipeline may enrich many
// countries concurrently.
type Pipeline struct {
	GeoDB   *geoip.DB
	ASTable *pfx2as.Table
	Anycast *anycast.Set
	Owners  *capki.OwnerDB

	// Workers bounds how many countries MeasureWorld enriches at once;
	// 0 means one worker per CPU. The measured corpus is identical for
	// every worker count.
	Workers int

	// Obs selects the metrics registry the pipeline's stage timings record
	// to; nil means obs.Default(). Metrics are pure side channels — the
	// measured corpus is byte-identical with or without them.
	Obs *obs.Registry
}

func (p *Pipeline) reg() *obs.Registry {
	if p.Obs != nil {
		return p.Obs
	}
	return obs.Default()
}

// FromWorld builds a pipeline over a synthetic world's databases.
func FromWorld(w *worldgen.World) *Pipeline {
	return &Pipeline{
		GeoDB:   w.GeoDB,
		ASTable: w.ASTable,
		Anycast: w.Anycast,
		Owners:  w.Owners,
	}
}

// EnrichCountry annotates one country's raw sites into a CountryList.
// Sites whose host IP cannot be attributed keep empty provider fields,
// matching how failed measurements surface in the paper's data.
func (p *Pipeline) EnrichCountry(cc, epoch string, raw []worldgen.RawSite) *dataset.CountryList {
	list := &dataset.CountryList{Country: cc, Epoch: epoch}
	for _, site := range raw {
		w := dataset.Website{
			Domain:   site.Domain,
			Country:  cc,
			Rank:     site.Rank,
			TLD:      tldinfo.Extract(site.Domain),
			Language: site.Language,
		}
		p.annotateHost(&w, site.HostIP)
		p.annotateNS(&w, site.NSIP)
		p.annotateCA(&w, site.IssuerOrg)
		list.Sites = append(list.Sites, w)
	}
	return list
}

func (p *Pipeline) annotateHost(w *dataset.Website, ip netip.Addr) {
	if !ip.IsValid() {
		return
	}
	w.HostIP = ip.String()
	if org, ok := p.ASTable.LookupOrg(ip); ok {
		w.HostProvider = org.Name
		w.HostProviderCountry = org.Country
	}
	if loc, ok := p.GeoDB.Lookup(ip); ok {
		w.HostIPContinent = loc.Continent
	}
	w.HostAnycast = p.Anycast.Contains(ip)
}

func (p *Pipeline) annotateNS(w *dataset.Website, ip netip.Addr) {
	if !ip.IsValid() {
		return
	}
	w.NSIP = ip.String()
	if org, ok := p.ASTable.LookupOrg(ip); ok {
		w.DNSProvider = org.Name
		w.DNSProviderCountry = org.Country
	}
	if loc, ok := p.GeoDB.Lookup(ip); ok {
		w.NSIPContinent = loc.Continent
	}
	w.NSAnycast = p.Anycast.Contains(ip)
}

func (p *Pipeline) annotateCA(w *dataset.Website, issuerOrg string) {
	if issuerOrg == "" {
		return
	}
	// The CCADB join: issuing organization → CA owner.
	if owner, ok := p.Owners.OwnerOf(leafStub(issuerOrg)); ok {
		w.CAOwner = owner.Name
		w.CAOwnerCountry = owner.Country
	}
}

// leafStub wraps an issuer organization in a minimal certificate so the
// owner database's issuer-matching logic applies uniformly in fast mode
// (live mode hands it the real parsed leaf).
func leafStub(issuerOrg string) *x509.Certificate {
	return &x509.Certificate{Issuer: pkix.Name{Organization: []string{issuerOrg}}}
}

// MeasureWorld enriches every country of a world, producing the measured
// corpus the analyses run on. Countries are enriched concurrently on a
// pool of p.Workers goroutines; the result is index-addressed per country
// and assembled in the world's country order, so the corpus is identical
// to a sequential measurement. A country with no raw sites fails the whole
// measurement, cancelling the in-flight enrichment of the others.
func (p *Pipeline) MeasureWorld(w *worldgen.World) (*dataset.Corpus, error) {
	reg := p.reg()
	measureSpan := obs.StartSpan(reg.Timing("stage.measure.ms"))
	enrichMS := reg.Timing("pipeline.enrich_country.ms")
	enriched := reg.Counter("pipeline.countries_enriched")

	ccs := w.Config.Countries
	lists, err := parallel.Map(context.Background(), p.Workers, len(ccs),
		func(_ context.Context, i int) (*dataset.CountryList, error) {
			raw, ok := w.Raw[ccs[i]]
			if !ok {
				return nil, fmt.Errorf("pipeline: world has no raw sites for %s", ccs[i])
			}
			sp := obs.StartSpan(enrichMS)
			list := p.EnrichCountry(ccs[i], w.Config.Epoch, raw)
			sp.End()
			enriched.Inc()
			return list, nil
		})
	if err != nil {
		return nil, err
	}
	corpus := dataset.NewCorpus(w.Config.Epoch)
	corpus.Workers = p.Workers
	for _, list := range lists {
		corpus.Add(list)
	}
	validateSpan := obs.StartSpan(reg.Timing("stage.validate.ms"))
	err = corpus.Validate()
	validateSpan.End()
	measureSpan.End()
	if err != nil {
		return nil, err
	}
	return corpus, nil
}
