package pipeline

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/faultinject"
	"github.com/webdep/webdep/internal/liveworld"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/resilience"
	"github.com/webdep/webdep/internal/resolver"
	"github.com/webdep/webdep/internal/tlsscan"
	"github.com/webdep/webdep/internal/worldgen"
)

// The crash-convergence suite extends PR 2's live-path invariant across
// process crashes: a checkpointed crawl killed at ANY journal offset —
// whole-record boundaries and mid-record torn writes alike — and then
// resumed must produce the exact corpus of a fault-free uninterrupted
// run, even with 30% transient loss injected on every probe path.

const crashEpoch = "2023-05"

var crashCCs = []string{"TH", "CZ", "US"}

const crashSitesPerCountry = 5

// crashWorld serves a three-country world for the crash suite: ≥3
// countries so resume interleaves replayed and live sites across country
// boundaries, small enough that a sweep of kill points stays fast.
func crashWorld(t *testing.T) (*worldgen.World, *liveworld.Endpoints) {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{
		Seed:               7,
		SitesPerCountry:    crashSitesPerCountry,
		Countries:          crashCCs,
		DomesticPerCountry: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := liveworld.Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	return w, ep
}

// lossyLive builds a Live crawler pointed at (possibly proxied) endpoints
// with the same retry posture as the PR 2 convergence tests: enough
// attempts that residual failure under 30% loss is negligible.
func lossyLive(w *worldgen.World, dnsAddr, tlsAddr string, reg *obs.Registry) *Live {
	dns := resolver.NewClient(dnsAddr)
	dns.Timeout = 100 * time.Millisecond
	return &Live{
		Pipeline:       FromWorld(w),
		DNS:            dns,
		Scanner:        tlsscan.New(w.Owners),
		TLSAddr:        tlsAddr,
		Workers:        8,
		DetectLanguage: true,
		Resilience: &resilience.Policy{
			MaxAttempts: 12,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
		},
		Obs: reg,
	}
}

func crawlAll(t *testing.T, w *worldgen.World, live *Live) *dataset.Corpus {
	t.Helper()
	corpus, err := live.CrawlCorpus(context.Background(), crashEpoch, crashCCs,
		func(cc string) []string { return w.Truth.Get(cc).Domains() }, nil)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

// crashRun runs a checkpointed lossy crawl that "crashes" at the given
// kill point: after killWrites complete journal writes plus extraBytes of
// the next record, the journal's disk goes dead and the crawl context is
// cancelled, exactly as if the process had been killed — the journal file
// retains only the bytes written before the kill, torn mid-record when
// extraBytes lands inside a frame.
func crashRun(t *testing.T, w *worldgen.World, dnsAddr, tlsAddr, path string, killWrites int, extraBytes int64) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := &checkpoint.Options{
		Obs: obs.NewRegistry(),
		WrapWriter: func(ws checkpoint.WriteSyncer) checkpoint.WriteSyncer {
			return faultinject.NewKillWriter(ws, killWrites, extraBytes, cancel)
		},
		OnDisarm: func(error) { cancel() },
	}
	j, err := checkpoint.Create(path, crashEpoch, crashCCs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	live := lossyLive(w, dnsAddr, tlsAddr, obs.NewRegistry())
	live.Checkpoint = j
	_, err = live.CrawlCorpus(ctx, crashEpoch, crashCCs,
		func(cc string) []string { return w.Truth.Get(cc).Domains() }, nil)
	// A kill late in the final record can land after the last site
	// completed, in which case the crawl finishes; otherwise it must have
	// died on the cancelled context.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("crash run failed with a non-crash error: %v", err)
	}
}

// resumeRun reopens the torn journal and crawls to completion under the
// same injected loss, returning the corpus and the journal's accounting.
func resumeRun(t *testing.T, w *worldgen.World, dnsAddr, tlsAddr, path string, reg *obs.Registry) (*dataset.Corpus, checkpoint.Stats) {
	t.Helper()
	j, err := checkpoint.Resume(path, crashEpoch, crashCCs, &checkpoint.Options{Obs: reg})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer j.Close()
	live := lossyLive(w, dnsAddr, tlsAddr, reg)
	live.Checkpoint = j
	corpus := crawlAll(t, w, live)
	if err := j.Err(); err != nil {
		t.Fatalf("journal disarmed during resume: %v", err)
	}
	return corpus, j.Stats()
}

// assertConverged fails unless got is the exact fault-free corpus: every
// site byte-identical, full coverage, no degraded countries, identical
// scores on every layer.
func assertConverged(t *testing.T, label string, want, got *dataset.Corpus) {
	t.Helper()
	for _, cc := range crashCCs {
		b, g := want.Get(cc), got.Get(cc)
		if g == nil {
			t.Fatalf("%s: %s missing from corpus", label, cc)
		}
		if len(b.Sites) != len(g.Sites) {
			t.Fatalf("%s: %s has %d sites, want %d", label, cc, len(g.Sites), len(b.Sites))
		}
		for i := range b.Sites {
			if g.Sites[i] != b.Sites[i] {
				t.Fatalf("%s: %s site %d differs:\n fault-free %+v\n resumed    %+v",
					label, cc, i, b.Sites[i], g.Sites[i])
			}
		}
		cov := got.CoverageOf(cc)
		if cov == nil {
			t.Fatalf("%s: %s has no coverage accounting", label, cc)
		}
		if cov.Fraction() != 1 || cov.Degraded {
			t.Fatalf("%s: %s coverage %.3f degraded=%v, want full", label, cc, cov.Fraction(), cov.Degraded)
		}
	}
	for _, layer := range []countries.Layer{countries.Hosting, countries.DNS, countries.CA, countries.TLD} {
		ws, gs := want.Scores(layer), got.Scores(layer)
		for cc, v := range ws {
			if gs[cc] != v {
				t.Fatalf("%s: %v score for %s = %v, fault-free run says %v", label, layer, cc, gs[cc], v)
			}
		}
	}
}

// TestCrashResumeConvergesAtEveryKillPoint is the acceptance sweep: under
// 30% injected transient loss on the DNS and TLS/HTTP paths, crash a
// three-country checkpointed crawl at every journal write boundary AND
// three bytes into every record (a torn mid-record write), resume it, and
// require exact convergence to the fault-free corpus each time.
func TestCrashResumeConvergesAtEveryKillPoint(t *testing.T) {
	w, ep := crashWorld(t)

	baseline := crawlAll(t, w, &Live{
		Pipeline:       FromWorld(w),
		DNS:            resolver.NewClient(ep.DNSAddr),
		Scanner:        tlsscan.New(w.Owners),
		TLSAddr:        ep.TLSAddr,
		Workers:        8,
		DetectLanguage: true,
	})

	loss := faultinject.Plan{DropMod: 10, DropModUnder: 3}
	dnsProxy := proxyFor(t, ep.DNSAddr, loss, loss)
	tlsProxy := proxyFor(t, ep.TLSAddr, faultinject.Plan{}, loss)

	// Journal writes for a full run: magic + header + one per site.
	totalWrites := 2 + len(crashCCs)*crashSitesPerCountry
	stride := 1
	if testing.Short() {
		stride = 4
	}
	dir := t.TempDir()
	for kill := 0; kill < totalWrites; kill += stride {
		for _, extra := range []int64{0, 3} {
			path := filepath.Join(dir, "sweep.journal")
			crashRun(t, w, dnsProxy.Addr, tlsProxy.Addr, path, kill, extra)
			corpus, _ := resumeRun(t, w, dnsProxy.Addr, tlsProxy.Addr, path, obs.NewRegistry())
			label := "kill=" + itoa(kill) + "+" + itoa(int(extra)) + "b"
			assertConverged(t, label, baseline, corpus)
		}
	}
	if s := dnsProxy.Stats(); s.UDPDropped == 0 {
		t.Error("DNS proxy dropped nothing; the sweep exercised no transient loss")
	}
	if s := tlsProxy.Stats(); s.TCPDropped == 0 {
		t.Error("TLS proxy dropped nothing; the sweep exercised no transient loss")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCrashResumeFixedKillPoint is the CI smoke variant: one mid-record
// kill point, full convergence check, plus the accounting cross-checks —
// the obs counters the resume emitted must agree exactly with the
// journal's own stats and with the crawl-level instruments.
func TestCrashResumeFixedKillPoint(t *testing.T) {
	w, ep := crashWorld(t)

	baseline := crawlAll(t, w, &Live{
		Pipeline:       FromWorld(w),
		DNS:            resolver.NewClient(ep.DNSAddr),
		Scanner:        tlsscan.New(w.Owners),
		TLSAddr:        ep.TLSAddr,
		Workers:        8,
		DetectLanguage: true,
	})

	loss := faultinject.Plan{DropMod: 10, DropModUnder: 3}
	dnsProxy := proxyFor(t, ep.DNSAddr, loss, loss)
	tlsProxy := proxyFor(t, ep.TLSAddr, faultinject.Plan{}, loss)

	// Kill three bytes into the eighth journal write: six complete site
	// records survive, the seventh tears mid-record.
	path := filepath.Join(t.TempDir(), "fixed.journal")
	crashRun(t, w, dnsProxy.Addr, tlsProxy.Addr, path, 8, 3)

	reg := obs.NewRegistry()
	corpus, st := resumeRun(t, w, dnsProxy.Addr, tlsProxy.Addr, path, reg)
	assertConverged(t, "fixed kill point", baseline, corpus)

	total := int64(len(crashCCs) * crashSitesPerCountry)
	if st.Truncations != 1 {
		t.Errorf("truncations = %d, want exactly the one torn record", st.Truncations)
	}
	if st.SitesSkipped != 6 {
		t.Errorf("sites skipped = %d, want the 6 whole records before the tear", st.SitesSkipped)
	}
	if st.SitesSkipped+st.SitesReprobed != total {
		t.Errorf("skipped %d + reprobed %d != %d sites", st.SitesSkipped, st.SitesReprobed, total)
	}
	if st.RecordsWritten != st.SitesReprobed {
		t.Errorf("records written %d != sites re-probed %d on a healthy journal", st.RecordsWritten, st.SitesReprobed)
	}

	// Cross-check the obs channel against the journal's own accounting
	// and the crawl instruments: only re-probed sites ran live probes.
	checks := map[string]int64{
		"checkpoint.records_written":  st.RecordsWritten,
		"checkpoint.records_replayed": st.RecordsReplayed,
		"checkpoint.sites_skipped":    st.SitesSkipped,
		"checkpoint.sites_reprobed":   st.SitesReprobed,
		"checkpoint.truncations":      st.Truncations,
		"checkpoint.write_errors":     st.WriteErrors,
		"checkpoint.compactions":      st.Compactions,
		"crawl.sites":                 st.SitesReprobed,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, journal accounting says %d", name, got, want)
		}
	}
	if got := reg.Timing("checkpoint.fsync_ms").Snapshot().Count; got != st.Fsyncs {
		t.Errorf("fsync_ms count = %d, journal says %d fsyncs", got, st.Fsyncs)
	}
	if got := reg.Timing("crawl.site_ms").Snapshot().Count; got != st.SitesReprobed {
		t.Errorf("crawl.site_ms count = %d, want %d re-probed sites", got, st.SitesReprobed)
	}
}

// TestResumeMergeEdgeCases covers the resume boundaries: a journal from
// another epoch or country subset must refuse (at resume time AND at
// crawl time), a complete journal re-probes nothing, and an empty journal
// crawls everything.
func TestResumeMergeEdgeCases(t *testing.T) {
	w, ep := crashWorld(t)
	baseline := crawlAll(t, w, &Live{
		Pipeline:       FromWorld(w),
		DNS:            resolver.NewClient(ep.DNSAddr),
		Scanner:        tlsscan.New(w.Owners),
		TLSAddr:        ep.TLSAddr,
		Workers:        8,
		DetectLanguage: true,
	})
	dir := t.TempDir()
	total := int64(len(crashCCs) * crashSitesPerCountry)

	t.Run("foreign epoch refuses", func(t *testing.T) {
		path := filepath.Join(dir, "epoch.journal")
		j, err := checkpoint.Create(path, "2099-01", crashCCs, nil)
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		if _, err := checkpoint.Resume(path, crashEpoch, crashCCs, nil); err == nil {
			t.Error("resume accepted a journal from a different epoch")
		}
		// Crawl-time guard: a mis-wired journal must stop CrawlCorpus too.
		j2, err := checkpoint.Resume(path, "2099-01", crashCCs, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer j2.Close()
		live := lossyLive(w, ep.DNSAddr, ep.TLSAddr, obs.NewRegistry())
		live.Checkpoint = j2
		if _, err := live.CrawlCorpus(context.Background(), crashEpoch, crashCCs,
			func(cc string) []string { return w.Truth.Get(cc).Domains() }, nil); err == nil {
			t.Error("CrawlCorpus crawled a 2023-05 epoch against a 2099-01 journal")
		}
	})

	t.Run("foreign country subset refuses", func(t *testing.T) {
		path := filepath.Join(dir, "subset.journal")
		j, err := checkpoint.Create(path, crashEpoch, []string{"TH"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		if _, err := checkpoint.Resume(path, crashEpoch, crashCCs, nil); err == nil {
			t.Error("resume accepted a journal for a different country subset")
		}
		j2, err := checkpoint.Resume(path, crashEpoch, []string{"TH"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer j2.Close()
		live := lossyLive(w, ep.DNSAddr, ep.TLSAddr, obs.NewRegistry())
		live.Checkpoint = j2
		if _, err := live.CrawlCorpus(context.Background(), crashEpoch, crashCCs,
			func(cc string) []string { return w.Truth.Get(cc).Domains() }, nil); err == nil {
			t.Error("CrawlCorpus merged a single-country journal into a three-country crawl")
		}
	})

	t.Run("complete journal reprobes nothing", func(t *testing.T) {
		path := filepath.Join(dir, "complete.journal")
		j, err := checkpoint.Create(path, crashEpoch, crashCCs, nil)
		if err != nil {
			t.Fatal(err)
		}
		live := lossyLive(w, ep.DNSAddr, ep.TLSAddr, obs.NewRegistry())
		live.Checkpoint = j
		crawlAll(t, w, live)
		j.Close()

		reg := obs.NewRegistry()
		corpus, st := resumeRun(t, w, ep.DNSAddr, ep.TLSAddr, path, reg)
		assertConverged(t, "complete journal", baseline, corpus)
		if st.SitesReprobed != 0 || st.RecordsWritten != 0 {
			t.Errorf("complete journal re-probed %d sites, wrote %d records; want zero",
				st.SitesReprobed, st.RecordsWritten)
		}
		if st.SitesSkipped != total {
			t.Errorf("skipped %d sites, want all %d", st.SitesSkipped, total)
		}
		// No live probe ran at all.
		if got := reg.Counter("crawl.sites").Value(); got != 0 {
			t.Errorf("crawl.sites = %d on a fully replayed crawl, want 0", got)
		}
	})

	t.Run("empty journal crawls everything", func(t *testing.T) {
		path := filepath.Join(dir, "empty.journal")
		j, err := checkpoint.Create(path, crashEpoch, crashCCs, nil)
		if err != nil {
			t.Fatal(err)
		}
		j.Close() // header only: a crawl that died before its first site

		corpus, st := resumeRun(t, w, ep.DNSAddr, ep.TLSAddr, path, obs.NewRegistry())
		assertConverged(t, "empty journal", baseline, corpus)
		if st.SitesSkipped != 0 || st.RecordsReplayed != 0 {
			t.Errorf("empty journal skipped %d sites from %d records; want zero",
				st.SitesSkipped, st.RecordsReplayed)
		}
		if st.SitesReprobed != total || st.RecordsWritten != total {
			t.Errorf("re-probed %d / wrote %d, want all %d sites", st.SitesReprobed, st.RecordsWritten, total)
		}
	})

	t.Run("lost outcomes are reprobed and won back", func(t *testing.T) {
		// A first run without retries against a blackholed DNS path loses
		// every DNS-derived field; resuming with retries against the
		// healthy endpoint must re-probe exactly those sites and converge.
		blackhole := proxyFor(t, ep.DNSAddr,
			faultinject.Plan{Blackhole: true}, faultinject.Plan{Blackhole: true})
		path := filepath.Join(dir, "lost.journal")
		j, err := checkpoint.Create(path, crashEpoch, crashCCs, nil)
		if err != nil {
			t.Fatal(err)
		}
		dns := resolver.NewClient(blackhole.Addr)
		dns.Timeout = 50 * time.Millisecond
		dns.Retries = 0
		degraded := &Live{
			Pipeline:       FromWorld(w),
			DNS:            dns,
			Scanner:        tlsscan.New(w.Owners),
			TLSAddr:        ep.TLSAddr,
			Workers:        8,
			DetectLanguage: true,
			MinCoverage:    -1, // accept the degraded pass; resume will win it back
			Checkpoint:     j,
		}
		crawlAll(t, w, degraded)
		j.Close()

		corpus, st := resumeRun(t, w, ep.DNSAddr, ep.TLSAddr, path, obs.NewRegistry())
		assertConverged(t, "lost outcomes", baseline, corpus)
		if st.SitesReprobed != total {
			t.Errorf("re-probed %d sites, want all %d (every site lost its DNS fields)", st.SitesReprobed, total)
		}
		if st.SitesSkipped != 0 {
			t.Errorf("skipped %d sites whose records carried loss", st.SitesSkipped)
		}
	})
}
