package pipeline

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/faultinject"
	"github.com/webdep/webdep/internal/liveworld"
	"github.com/webdep/webdep/internal/resilience"
	"github.com/webdep/webdep/internal/resolver"
	"github.com/webdep/webdep/internal/tlsscan"
	"github.com/webdep/webdep/internal/worldgen"
)

// faultWorld builds and serves a small two-country world for the fault
// tests: big enough for meaningful distributions, small enough that lossy
// crawls with retries stay fast.
func faultWorld(t *testing.T) (*worldgen.World, *liveworld.Endpoints) {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{
		Seed:               7,
		SitesPerCountry:    12,
		Countries:          []string{"TH", "CZ"},
		DomesticPerCountry: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := liveworld.Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	return w, ep
}

func proxyFor(t *testing.T, upstream string, udpPlan, tcpPlan faultinject.Plan) *faultinject.Proxy {
	t.Helper()
	p, err := faultinject.New(upstream, udpPlan, tcpPlan)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func crawl(t *testing.T, w *worldgen.World, live *Live) *dataset.Corpus {
	t.Helper()
	ccs := []string{"TH", "CZ"}
	corpus, err := live.CrawlCorpus(context.Background(), "2023-05", ccs,
		func(cc string) []string { return w.Truth.Get(cc).Domains() }, nil)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

// TestCrawlConvergesUnderTransientLoss is the tentpole end-to-end check:
// with 30% of DNS datagrams and 30% of TLS/HTTP connections injected as
// transient loss, a crawl under the resilience policy must converge to the
// exact corpus a fault-free crawl produces — full coverage, no degraded
// countries, identical sites, identical scores.
func TestCrawlConvergesUnderTransientLoss(t *testing.T) {
	w, ep := faultWorld(t)

	baseline := crawl(t, w, &Live{
		Pipeline:       FromWorld(w),
		DNS:            resolver.NewClient(ep.DNSAddr),
		Scanner:        tlsscan.New(w.Owners),
		TLSAddr:        ep.TLSAddr,
		Workers:        8,
		DetectLanguage: true,
	})

	// 30% loss on every probe path: DNS datagrams (and any truncation
	// fallback) through one proxy, TLS handshakes and page fetches through
	// another.
	loss := faultinject.Plan{DropMod: 10, DropModUnder: 3}
	dnsProxy := proxyFor(t, ep.DNSAddr, loss, loss)
	tlsProxy := proxyFor(t, ep.TLSAddr, faultinject.Plan{}, loss)

	dns := resolver.NewClient(dnsProxy.Addr)
	dns.Timeout = 150 * time.Millisecond
	faulty := crawl(t, w, &Live{
		Pipeline:       FromWorld(w),
		DNS:            dns,
		Scanner:        tlsscan.New(w.Owners),
		TLSAddr:        tlsProxy.Addr,
		Workers:        4,
		DetectLanguage: true,
		Resilience: &resilience.Policy{
			// Drop decisions are pseudo-random under concurrency; 12
			// attempts at 30% loss make residual failure probability
			// negligible (~5e-7 per probe).
			MaxAttempts: 12,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
		},
	})

	for _, cc := range []string{"TH", "CZ"} {
		cov := faulty.CoverageOf(cc)
		if cov == nil {
			t.Fatalf("%s: no coverage recorded", cc)
		}
		if cov.Fraction() != 1 {
			t.Errorf("%s: coverage %.3f under transient loss with retries, want 1.0 (%+v)", cc, cov.Fraction(), *cov)
		}
		if cov.Degraded {
			t.Errorf("%s flagged degraded despite full coverage", cc)
		}
		if cov.Sites != 12 {
			t.Errorf("%s: coverage over %d sites, want 12", cc, cov.Sites)
		}

		base, got := baseline.Get(cc), faulty.Get(cc)
		for i := range base.Sites {
			if got.Sites[i] != base.Sites[i] {
				t.Errorf("%s site %d differs under faults:\n fault-free %+v\n faulty     %+v",
					cc, i, base.Sites[i], got.Sites[i])
			}
		}
	}

	// Scores derived from the two corpora must agree exactly.
	for _, layer := range []countries.Layer{countries.Hosting, countries.DNS, countries.CA} {
		want, got := baseline.Scores(layer), faulty.Scores(layer)
		for cc, v := range want {
			if got[cc] != v {
				t.Errorf("%v score for %s: %v under faults, %v fault-free", layer, cc, got[cc], v)
			}
		}
	}

	// The faults really happened: the proxies must have dropped traffic.
	if s := dnsProxy.Stats(); s.UDPDropped == 0 {
		t.Error("DNS proxy dropped nothing; the test exercised no faults")
	}
	if s := tlsProxy.Stats(); s.TCPDropped == 0 {
		t.Error("TLS proxy dropped nothing; the test exercised no faults")
	}
}

// TestCrawlDegradesUnderPermanentLoss blackholes the DNS path with retries
// disabled: the crawl must complete, record every DNS-layer probe as lost,
// and flag both countries degraded — not silently hand back empty fields.
func TestCrawlDegradesUnderPermanentLoss(t *testing.T) {
	w, ep := faultWorld(t)
	dnsProxy := proxyFor(t, ep.DNSAddr,
		faultinject.Plan{Blackhole: true}, faultinject.Plan{Blackhole: true})

	dns := resolver.NewClient(dnsProxy.Addr)
	dns.Timeout = 100 * time.Millisecond
	dns.Retries = 0
	corpus := crawl(t, w, &Live{
		Pipeline: FromWorld(w),
		DNS:      dns,
		Scanner:  tlsscan.New(w.Owners),
		TLSAddr:  ep.TLSAddr,
		Workers:  8,
	})

	degraded := corpus.DegradedCountries()
	if len(degraded) != 2 || degraded[0] != "CZ" || degraded[1] != "TH" {
		t.Fatalf("DegradedCountries = %v, want [CZ TH]", degraded)
	}
	for _, cc := range degraded {
		cov := corpus.CoverageOf(cc)
		if !cov.Degraded {
			t.Errorf("%s coverage not flagged degraded", cc)
		}
		if cov.Host.Lost != 12 || cov.NS.Lost != 12 {
			t.Errorf("%s: Host.Lost=%d NS.Lost=%d, want 12 each", cc, cov.Host.Lost, cov.NS.Lost)
		}
		// The TLS path is unaffected: CA coverage stays complete, which is
		// exactly why per-field accounting matters.
		if cov.CA.Lost != 0 || cov.CA.OK != 12 {
			t.Errorf("%s: CA coverage %+v, want 12 OK", cc, cov.CA)
		}
		if cov.Fraction() != 0 {
			t.Errorf("%s: Fraction = %v, want 0 (worst field fully lost)", cc, cov.Fraction())
		}
		for _, s := range corpus.Get(cc).Sites {
			if s.HostProvider != "" || s.DNSProvider != "" {
				t.Fatalf("%s %s: DNS-derived fields populated through a blackhole", cc, s.Domain)
			}
			if s.CAOwner == "" {
				t.Errorf("%s %s: CA owner lost although TLS path was healthy", cc, s.Domain)
			}
		}
	}
}

// TestCrawlMinCoverageThreshold drops a bounded number of datagrams with
// retries disabled: under the default threshold the countries are
// degraded, while a permissive threshold accepts the same partial loss.
func TestCrawlMinCoverageThreshold(t *testing.T) {
	w, ep := faultWorld(t)

	build := func(minCoverage float64) *dataset.Corpus {
		proxy := proxyFor(t, ep.DNSAddr, faultinject.Plan{DropFirst: 4}, faultinject.Plan{})
		dns := resolver.NewClient(proxy.Addr)
		dns.Timeout = 100 * time.Millisecond
		dns.Retries = 0
		return crawl(t, w, &Live{
			Pipeline:    FromWorld(w),
			DNS:         dns,
			Scanner:     tlsscan.New(w.Owners),
			TLSAddr:     ep.TLSAddr,
			Workers:     2,
			MinCoverage: minCoverage,
		})
	}

	strict := build(0) // default: 1.0
	var lost, degraded int
	for _, cc := range []string{"TH", "CZ"} {
		cov := strict.CoverageOf(cc)
		lost += cov.Lost()
		if cov.Degraded {
			degraded++
		}
	}
	// Exactly the four dropped datagrams surface as lost probes, wherever
	// the scheduler happened to land them.
	if lost != 4 {
		t.Errorf("total lost probes = %d, want 4 (one per dropped datagram)", lost)
	}
	if degraded == 0 {
		t.Error("no country degraded under the default 1.0 threshold")
	}

	lax := build(0.5)
	if d := lax.DegradedCountries(); len(d) != 0 {
		t.Errorf("DegradedCountries = %v with MinCoverage 0.5, want none", d)
	}
}

// TestCrawlFailFast aborts the crawl at the first under-covered country
// instead of producing a degraded corpus.
func TestCrawlFailFast(t *testing.T) {
	w, ep := faultWorld(t)
	proxy := proxyFor(t, ep.DNSAddr,
		faultinject.Plan{Blackhole: true}, faultinject.Plan{Blackhole: true})

	dns := resolver.NewClient(proxy.Addr)
	dns.Timeout = 100 * time.Millisecond
	dns.Retries = 0
	live := &Live{
		Pipeline: FromWorld(w),
		DNS:      dns,
		Scanner:  tlsscan.New(w.Owners),
		TLSAddr:  ep.TLSAddr,
		Workers:  8,
		FailFast: true,
	}
	corpus, err := live.CrawlCorpus(context.Background(), "2023-05", []string{"TH", "CZ"},
		func(cc string) []string { return w.Truth.Get(cc).Domains() }, nil)
	if err == nil {
		t.Fatal("fail-fast crawl through a blackhole succeeded")
	}
	if corpus != nil {
		t.Error("fail-fast returned a corpus alongside the error")
	}
	if !strings.Contains(err.Error(), "coverage") {
		t.Errorf("error %q does not mention coverage", err)
	}
}

// TestCrawlRecordsEffectiveWorkers: a zero Workers knob means the default
// pool size, and the corpus must record what actually ran, not the raw 0.
func TestCrawlRecordsEffectiveWorkers(t *testing.T) {
	w, ep := faultWorld(t)
	live := &Live{
		Pipeline: FromWorld(w),
		DNS:      resolver.NewClient(ep.DNSAddr),
		Scanner:  tlsscan.New(w.Owners),
		TLSAddr:  ep.TLSAddr,
		// Workers deliberately left zero.
	}
	corpus, err := live.CrawlCorpus(context.Background(), "2023-05", []string{"TH"},
		func(cc string) []string { return w.Truth.Get(cc).Domains()[:3] }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Workers != 8 {
		t.Errorf("corpus.Workers = %d, want the effective default 8", corpus.Workers)
	}
}
