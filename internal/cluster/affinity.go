// Package cluster implements affinity propagation (Frey & Dueck, 2007), the
// clustering algorithm the paper applies to providers' min-max-scaled
// (usage, endemicity-ratio) features to derive provider classes
// (Section 5.2).
//
// Affinity propagation exchanges two kinds of messages between data points
// until a set of exemplars emerges: responsibilities r(i,k), how suited
// point k is to serve as exemplar for i, and availabilities a(i,k), how
// appropriate it would be for i to choose k. Unlike k-means it does not
// require the number of clusters up front — the per-point preference
// (self-similarity) controls cluster granularity, which is why the paper
// obtains 305 clusters that are then manually grouped into 8 classes.
package cluster

import (
	"errors"
	"math"
)

// Options configures affinity propagation. The zero value is not useful;
// start from DefaultOptions.
type Options struct {
	// Damping in [0.5, 1) blends each new message with the previous one to
	// avoid oscillation.
	Damping float64
	// MaxIterations bounds the message-passing rounds.
	MaxIterations int
	// ConvergenceIterations is how many consecutive rounds the exemplar set
	// must remain unchanged before the run is declared converged.
	ConvergenceIterations int
	// Preference is the self-similarity s(k,k) assigned to every point.
	// More negative values yield fewer clusters. When NaN, the median of
	// the input similarities is used (the standard default).
	Preference float64
}

// DefaultOptions mirrors the common scikit-learn defaults.
func DefaultOptions() Options {
	return Options{
		Damping:               0.7,
		MaxIterations:         300,
		ConvergenceIterations: 20,
		Preference:            math.NaN(),
	}
}

// Result describes a completed clustering run.
type Result struct {
	// Exemplars lists the indices of the cluster exemplars.
	Exemplars []int
	// Assignment maps each point index to its position in Exemplars.
	Assignment []int
	// Converged reports whether the exemplar set stabilized before
	// MaxIterations.
	Converged bool
	// Iterations is the number of message-passing rounds performed.
	Iterations int
}

// NumClusters returns the number of clusters found.
func (r *Result) NumClusters() int { return len(r.Exemplars) }

// Members returns the point indices assigned to cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assignment {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// ErrEmptyInput is returned when no points are supplied.
var ErrEmptyInput = errors.New("cluster: no points")

// NegSquaredEuclidean builds the standard similarity matrix for affinity
// propagation: s(i,j) = −‖x_i − x_j‖².
func NegSquaredEuclidean(points [][]float64) [][]float64 {
	n := len(points)
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			var d2 float64
			for k := range points[i] {
				d := points[i][k] - points[j][k]
				d2 += d * d
			}
			s[i][j] = -d2
		}
	}
	return s
}

// AffinityPropagation clusters points given a full similarity matrix
// (higher = more similar). The matrix is modified in place (the diagonal is
// overwritten with the preference).
func AffinityPropagation(sim [][]float64, opts Options) (*Result, error) {
	n := len(sim)
	if n == 0 {
		return nil, ErrEmptyInput
	}
	for _, row := range sim {
		if len(row) != n {
			return nil, errors.New("cluster: similarity matrix not square")
		}
	}
	if n == 1 {
		return &Result{Exemplars: []int{0}, Assignment: []int{0}, Converged: true}, nil
	}
	if opts.Damping < 0.5 || opts.Damping >= 1 {
		return nil, errors.New("cluster: damping must be in [0.5, 1)")
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 300
	}
	if opts.ConvergenceIterations <= 0 {
		opts.ConvergenceIterations = 20
	}

	// Degenerate input: if every pair is equally similar (e.g. identical
	// points), message passing has no gradient to work with; any partition
	// is equally good, so return the single natural cluster.
	if lo, hi := offDiagonalRange(sim); hi-lo < 1e-15 {
		assign := make([]int, n)
		return &Result{Exemplars: []int{0}, Assignment: assign, Converged: true}, nil
	}

	pref := opts.Preference
	if math.IsNaN(pref) {
		pref = medianOffDiagonal(sim)
	}
	for i := 0; i < n; i++ {
		sim[i][i] = pref
	}
	// Tiny deterministic jitter breaks exact ties that otherwise cause
	// oscillation (mirrors the noise scikit-learn injects).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sim[i][j] += 1e-12 * float64((i*2654435761+j*40503)%1000)
		}
	}

	resp := newMatrix(n)
	avail := newMatrix(n)
	lam := opts.Damping

	var prevExemplars []int
	stable := 0
	result := &Result{}

	for iter := 1; iter <= opts.MaxIterations; iter++ {
		result.Iterations = iter

		// Responsibilities: r(i,k) ← s(i,k) − max_{k'≠k}[a(i,k') + s(i,k')].
		for i := 0; i < n; i++ {
			max1, max2 := math.Inf(-1), math.Inf(-1)
			arg1 := -1
			for k := 0; k < n; k++ {
				v := avail[i][k] + sim[i][k]
				if v > max1 {
					max2 = max1
					max1, arg1 = v, k
				} else if v > max2 {
					max2 = v
				}
			}
			for k := 0; k < n; k++ {
				sub := max1
				if k == arg1 {
					sub = max2
				}
				resp[i][k] = lam*resp[i][k] + (1-lam)*(sim[i][k]-sub)
			}
		}

		// Availabilities:
		// a(i,k) ← min(0, r(k,k) + Σ_{i'∉{i,k}} max(0, r(i',k))) for i≠k;
		// a(k,k) ← Σ_{i'≠k} max(0, r(i',k)).
		for k := 0; k < n; k++ {
			var sumPos float64
			for i := 0; i < n; i++ {
				if i != k && resp[i][k] > 0 {
					sumPos += resp[i][k]
				}
			}
			for i := 0; i < n; i++ {
				var newA float64
				if i == k {
					newA = sumPos
				} else {
					v := resp[k][k] + sumPos
					if resp[i][k] > 0 {
						v -= resp[i][k]
					}
					if v > 0 {
						v = 0
					}
					newA = v
				}
				avail[i][k] = lam*avail[i][k] + (1-lam)*newA
			}
		}

		exemplars := currentExemplars(resp, avail)
		if equalInts(exemplars, prevExemplars) {
			stable++
			if stable >= opts.ConvergenceIterations && len(exemplars) > 0 {
				result.Converged = true
				break
			}
		} else {
			stable = 0
			prevExemplars = exemplars
		}
	}

	exemplars := currentExemplars(resp, avail)
	if len(exemplars) == 0 {
		// Degenerate run (e.g. extremely negative preference): fall back to
		// a single cluster around the point with the greatest summed
		// similarity.
		best, bestSum := 0, math.Inf(-1)
		for k := 0; k < n; k++ {
			var sum float64
			for i := 0; i < n; i++ {
				sum += sim[i][k]
			}
			if sum > bestSum {
				best, bestSum = k, sum
			}
		}
		exemplars = []int{best}
	}

	// Assign every point to the most similar exemplar; exemplars assign to
	// themselves.
	exIndex := make(map[int]int, len(exemplars))
	for c, e := range exemplars {
		exIndex[e] = c
	}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		if c, ok := exIndex[i]; ok {
			assign[i] = c
			continue
		}
		best, bestSim := 0, math.Inf(-1)
		for c, e := range exemplars {
			if sim[i][e] > bestSim {
				best, bestSim = c, sim[i][e]
			}
		}
		assign[i] = best
	}

	result.Exemplars = exemplars
	result.Assignment = assign
	return result, nil
}

// Points is a convenience wrapper: cluster feature vectors directly using
// the negative squared Euclidean similarity.
func Points(points [][]float64, opts Options) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrEmptyInput
	}
	return AffinityPropagation(NegSquaredEuclidean(points), opts)
}

func currentExemplars(resp, avail [][]float64) []int {
	var out []int
	for k := range resp {
		if resp[k][k]+avail[k][k] > 0 {
			out = append(out, k)
		}
	}
	return out
}

func newMatrix(n int) [][]float64 {
	backing := make([]float64, n*n)
	m := make([][]float64, n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	return m
}

func offDiagonalRange(sim [][]float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := range sim {
		for j := range sim[i] {
			if i == j {
				continue
			}
			if sim[i][j] < lo {
				lo = sim[i][j]
			}
			if sim[i][j] > hi {
				hi = sim[i][j]
			}
		}
	}
	return lo, hi
}

func medianOffDiagonal(sim [][]float64) float64 {
	n := len(sim)
	vals := make([]float64, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				vals = append(vals, sim[i][j])
			}
		}
	}
	if len(vals) == 0 {
		return 0
	}
	// Quickselect would be faster; n is modest so sort-free selection via
	// partial copy is unnecessary.
	return medianOf(vals)
}

func medianOf(vals []float64) float64 {
	// In-place selection of the lower median.
	k := (len(vals) - 1) / 2
	lo, hi := 0, len(vals)-1
	for lo < hi {
		pivot := vals[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for vals[i] < pivot {
				i++
			}
			for vals[j] > pivot {
				j--
			}
			if i <= j {
				vals[i], vals[j] = vals[j], vals[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return vals[k]
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
