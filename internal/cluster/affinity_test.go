package cluster

import (
	"math"
	"math/rand"
	"testing"
)

func TestTwoObviousClusters(t *testing.T) {
	// Two tight blobs far apart must yield exactly two clusters with the
	// right membership.
	var points [][]float64
	for i := 0; i < 10; i++ {
		points = append(points, []float64{0 + 0.01*float64(i), 0})
	}
	for i := 0; i < 10; i++ {
		points = append(points, []float64{10 + 0.01*float64(i), 10})
	}
	res, err := Points(points, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 2 {
		t.Fatalf("NumClusters = %d, want 2 (exemplars %v)", res.NumClusters(), res.Exemplars)
	}
	// All of the first blob shares a cluster; likewise the second; and they
	// differ.
	first := res.Assignment[0]
	for i := 1; i < 10; i++ {
		if res.Assignment[i] != first {
			t.Fatalf("blob 1 split: %v", res.Assignment)
		}
	}
	second := res.Assignment[10]
	for i := 11; i < 20; i++ {
		if res.Assignment[i] != second {
			t.Fatalf("blob 2 split: %v", res.Assignment)
		}
	}
	if first == second {
		t.Fatal("blobs merged")
	}
	if !res.Converged {
		t.Error("expected convergence on a trivial instance")
	}
}

func TestThreeClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	centers := [][]float64{{0, 0}, {8, 0}, {4, 7}}
	var points [][]float64
	for _, c := range centers {
		for i := 0; i < 15; i++ {
			points = append(points, []float64{
				c[0] + rng.NormFloat64()*0.3,
				c[1] + rng.NormFloat64()*0.3,
			})
		}
	}
	res, err := Points(points, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 3 {
		t.Fatalf("NumClusters = %d, want 3", res.NumClusters())
	}
	// Every blob must be internally consistent.
	for b := 0; b < 3; b++ {
		want := res.Assignment[b*15]
		for i := 1; i < 15; i++ {
			if res.Assignment[b*15+i] != want {
				t.Fatalf("blob %d split: %v", b, res.Assignment)
			}
		}
	}
}

func TestPreferenceControlsGranularity(t *testing.T) {
	// More negative preference → fewer clusters. Points along a line.
	var points [][]float64
	for i := 0; i < 30; i++ {
		points = append(points, []float64{float64(i), 0})
	}
	loose := DefaultOptions()
	loose.Preference = -1 // near-zero penalty: many exemplars
	resLoose, err := Points(points, loose)
	if err != nil {
		t.Fatal(err)
	}
	tight := DefaultOptions()
	tight.Preference = -5000 // heavy penalty: few exemplars
	resTight, err := Points(points, tight)
	if err != nil {
		t.Fatal(err)
	}
	if resLoose.NumClusters() <= resTight.NumClusters() {
		t.Errorf("granularity not controlled by preference: loose %d vs tight %d",
			resLoose.NumClusters(), resTight.NumClusters())
	}
}

func TestSinglePoint(t *testing.T) {
	res, err := Points([][]float64{{1, 2}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 1 || res.Assignment[0] != 0 {
		t.Fatalf("single point: %+v", res)
	}
}

func TestEmptyInput(t *testing.T) {
	if _, err := Points(nil, DefaultOptions()); err != ErrEmptyInput {
		t.Errorf("want ErrEmptyInput, got %v", err)
	}
}

func TestBadOptions(t *testing.T) {
	pts := [][]float64{{0}, {1}}
	opts := DefaultOptions()
	opts.Damping = 0.3
	if _, err := Points(pts, opts); err == nil {
		t.Error("damping below 0.5 accepted")
	}
	opts.Damping = 1.0
	if _, err := Points(pts, opts); err == nil {
		t.Error("damping of 1.0 accepted")
	}
}

func TestNonSquareMatrixRejected(t *testing.T) {
	sim := [][]float64{{0, -1}, {0}}
	if _, err := AffinityPropagation(sim, DefaultOptions()); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestIdenticalPointsSingleCluster(t *testing.T) {
	points := make([][]float64, 8)
	for i := range points {
		points[i] = []float64{3, 3}
	}
	res, err := Points(points, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 1 {
		t.Errorf("identical points formed %d clusters", res.NumClusters())
	}
}

func TestMembers(t *testing.T) {
	res := &Result{
		Exemplars:  []int{0, 3},
		Assignment: []int{0, 0, 1, 1, 0},
	}
	m0 := res.Members(0)
	if len(m0) != 3 || m0[0] != 0 || m0[1] != 1 || m0[2] != 4 {
		t.Errorf("Members(0) = %v", m0)
	}
	if len(res.Members(1)) != 2 {
		t.Errorf("Members(1) = %v", res.Members(1))
	}
}

func TestNegSquaredEuclidean(t *testing.T) {
	s := NegSquaredEuclidean([][]float64{{0, 0}, {3, 4}})
	if s[0][0] != 0 || s[1][1] != 0 {
		t.Error("self-similarity should start at 0")
	}
	if math.Abs(s[0][1]-(-25)) > 1e-12 || math.Abs(s[1][0]-(-25)) > 1e-12 {
		t.Errorf("similarity = %v, want -25", s[0][1])
	}
}

func TestExemplarsAreOwnClusterMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var points [][]float64
	for i := 0; i < 40; i++ {
		points = append(points, []float64{rng.Float64() * 10, rng.Float64() * 10})
	}
	res, err := Points(points, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for c, e := range res.Exemplars {
		if res.Assignment[e] != c {
			t.Errorf("exemplar %d not assigned to its own cluster %d", e, c)
		}
	}
	// Every assignment must reference a valid cluster.
	for i, a := range res.Assignment {
		if a < 0 || a >= res.NumClusters() {
			t.Errorf("point %d has invalid assignment %d", i, a)
		}
	}
}
