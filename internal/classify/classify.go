// Package classify reproduces the paper's provider classification
// (Section 5.2): compute each provider's usage 𝑈 and endemicity ratio E_R,
// min-max scale the two features, cluster with affinity propagation, and
// label the clusters with the paper's eight classes (XL-GP, L-GP,
// L-GP (R), M-GP, S-GP, L-RP, S-RP, XS-RP).
//
// The paper's authors examined 305 clusters manually; this package replaces
// the manual step with deterministic rules over cluster centroids, so the
// classification is reproducible and testable.
package classify

import (
	"sort"

	"github.com/webdep/webdep/internal/cluster"
	"github.com/webdep/webdep/internal/core"
	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
)

// Class is one of the paper's provider classes.
type Class string

// The eight classes of Table 1 (hosting), Table 2 (DNS), and the five-class
// subset of Table 3 (CAs).
const (
	XLGlobal       Class = "XL-GP"
	LGlobal        Class = "L-GP"
	LGlobalRegion  Class = "L-GP (R)"
	MGlobal        Class = "M-GP"
	SGlobal        Class = "S-GP"
	LRegional      Class = "L-RP"
	SRegional      Class = "S-RP"
	XSRegional     Class = "XS-RP"
	Unclassifiable Class = "unclassified"
)

// Order lists the classes in the paper's presentation order.
var Order = []Class{XLGlobal, LGlobal, LGlobalRegion, MGlobal, SGlobal, LRegional, SRegional, XSRegional}

// IsRegional reports whether a class is on the regional side of the
// taxonomy (the hatched bars of the paper's Figure 7).
func (c Class) IsRegional() bool {
	switch c {
	case LRegional, SRegional, XSRegional:
		return true
	default:
		return false
	}
}

// ProviderFeatures carries the regionalization features of one provider.
type ProviderFeatures struct {
	Provider        string
	Usage           float64 // 𝑈: area under the usage curve
	EndemicityRatio float64 // E_R ∈ [0,1]
	Peak            float64 // u1: max usage in any country
	Class           Class
	Cluster         int // affinity-propagation cluster id
}

// Result is a completed classification of one layer's providers.
type Result struct {
	Features []ProviderFeatures
	byName   map[string]*ProviderFeatures
	// Clusters is the number of affinity-propagation clusters found among
	// the clustered (non-tail) providers.
	Clusters int
}

// ClassOf returns a provider's class (Unclassifiable if absent).
func (r *Result) ClassOf(provider string) Class {
	if f, ok := r.byName[provider]; ok {
		return f.Class
	}
	return Unclassifiable
}

// Counts tallies providers per class.
func (r *Result) Counts() map[Class]int {
	out := make(map[Class]int)
	for i := range r.Features {
		out[r.Features[i].Class]++
	}
	return out
}

// Options tunes classification.
type Options struct {
	// MaxClustered bounds how many providers (by usage) go through
	// affinity propagation; the long tail below the cut is classified
	// directly as XS-RP. Affinity propagation is O(n²) per iteration, and
	// a paper-scale world has >10⁴ providers, nearly all of which are
	// unambiguous extra-small regionals. Default 600.
	MaxClustered int
	// Cluster options.
	Cluster cluster.Options
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	opts := cluster.DefaultOptions()
	opts.Damping = 0.8
	return Options{MaxClustered: 600, Cluster: opts}
}

// Layer classifies the providers of one layer of a measured corpus.
func Layer(corpus *dataset.Corpus, layer countries.Layer, opts Options) (*Result, error) {
	curves := corpus.UsageCurves(layer)
	features := make([]ProviderFeatures, 0, len(curves))
	for provider, curve := range curves {
		features = append(features, ProviderFeatures{
			Provider:        provider,
			Usage:           curve.Usage(),
			EndemicityRatio: curve.EndemicityRatio(),
			Peak:            curve.Peak(),
		})
	}
	sort.Slice(features, func(i, j int) bool {
		if features[i].Usage != features[j].Usage {
			return features[i].Usage > features[j].Usage
		}
		return features[i].Provider < features[j].Provider
	})
	return classifyFeatures(features, len(corpus.Lists), opts)
}

func classifyFeatures(features []ProviderFeatures, numCountries int, opts Options) (*Result, error) {
	if opts.MaxClustered <= 0 {
		opts.MaxClustered = 600
	}
	n := len(features)
	clustered := n
	if clustered > opts.MaxClustered {
		clustered = opts.MaxClustered
	}

	res := &Result{Features: features, byName: make(map[string]*ProviderFeatures, n)}

	if clustered > 0 {
		// Min-max scale the two features over the clustered head, as the
		// paper does before affinity propagation.
		us := make([]float64, clustered)
		es := make([]float64, clustered)
		for i := 0; i < clustered; i++ {
			us[i] = features[i].Usage
			es[i] = features[i].EndemicityRatio
		}
		usScaled := minMax(us)
		esScaled := minMax(es)
		points := make([][]float64, clustered)
		for i := range points {
			points[i] = []float64{usScaled[i], esScaled[i]}
		}
		cres, err := cluster.Points(points, opts.Cluster)
		if err != nil {
			return nil, err
		}
		res.Clusters = cres.NumClusters()
		for i := 0; i < clustered; i++ {
			features[i].Cluster = cres.Assignment[i]
		}
		// Label each cluster from its centroid; all members share the
		// label, mirroring the paper's per-cluster manual grouping.
		type centroid struct {
			usage, er float64
			count     int
		}
		cents := make([]centroid, cres.NumClusters())
		for i := 0; i < clustered; i++ {
			c := &cents[features[i].Cluster]
			c.usage += features[i].Usage
			c.er += features[i].EndemicityRatio
			c.count++
		}
		// Identify the XL cluster(s): the top-2 providers by usage form
		// the XL-GP class when they dwarf the rest (Cloudflare and
		// Amazon in the paper).
		// Usage thresholds are defined for the paper's 150-country corpus;
		// scale them to the corpus at hand so subsets classify the same.
		scale := float64(numCountries) / 150
		if scale <= 0 {
			scale = 1
		}
		for i := 0; i < clustered; i++ {
			f := &features[i]
			c := cents[f.Cluster]
			f.Class = labelCentroid(c.usage/float64(c.count)/scale, c.er/float64(c.count))
		}
		// The two largest global providers are XL by definition.
		xl := 0
		for i := 0; i < clustered && xl < 2; i++ {
			if !features[i].Class.IsRegional() {
				features[i].Class = XLGlobal
				xl++
			}
		}
	}
	for i := clustered; i < n; i++ {
		features[i].Class = XSRegional
	}
	for i := range features {
		res.byName[features[i].Provider] = &features[i]
	}
	return res, nil
}

// labelCentroid maps a cluster centroid in (usage, endemicity-ratio) space
// to a class. Usage thresholds are in summed percentage points across 150
// countries (a provider at 10% in every country has usage 1500).
func labelCentroid(usage, er float64) Class {
	global := er < 0.80
	switch {
	case global && er >= 0.50 && usage >= 60:
		// Globally present but with clear regional strongholds: the OVH
		// and Hetzner pattern.
		return LGlobalRegion
	case global && usage >= 150:
		return LGlobal
	case global && usage >= 25:
		return MGlobal
	case global:
		return SGlobal
	case usage >= 5:
		return LRegional
	case usage >= 1.5:
		return SRegional
	default:
		return XSRegional
	}
}

func minMax(xs []float64) []float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	out := make([]float64, len(xs))
	if hi == lo {
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}

// CountryBreakdown computes, for one country, the share of sites served by
// each provider class — one bar of the paper's Figure 7/14/15. It rebuilds
// the list's distribution per call; when the list belongs to a corpus,
// CountryBreakdownIndexed reads the corpus's cached scoring index instead.
func CountryBreakdown(list *dataset.CountryList, layer countries.Layer, res *Result) map[Class]float64 {
	return breakdownOf(list.Distribution(layer), res)
}

// CountryBreakdownIndexed is CountryBreakdown over a corpus's scoring
// index: no per-call corpus scan, just reads of the frozen per-country
// distribution. It returns an empty breakdown for countries not in the
// corpus.
func CountryBreakdownIndexed(corpus *dataset.Corpus, cc string, layer countries.Layer, res *Result) map[Class]float64 {
	dist := corpus.DistributionOf(cc, layer)
	if dist == nil {
		return make(map[Class]float64)
	}
	return breakdownOf(dist, res)
}

func breakdownOf(dist *core.Distribution, res *Result) map[Class]float64 {
	out := make(map[Class]float64)
	total := dist.Total()
	if total == 0 {
		return out
	}
	for _, ps := range dist.Ranked() {
		out[res.ClassOf(ps.Provider)] += ps.Count / total
	}
	return out
}

// ClassShares computes each country's total share on a set of providers
// (used for the correlation experiments: XL-GP share vs 𝒮, etc.), reading
// the corpus's scoring index.
func ClassShares(corpus *dataset.Corpus, layer countries.Layer, res *Result, classes ...Class) map[string]float64 {
	want := make(map[Class]bool, len(classes))
	for _, c := range classes {
		want[c] = true
	}
	out := make(map[string]float64, len(corpus.Lists))
	for _, cc := range corpus.Countries() {
		dist := corpus.DistributionOf(cc, layer)
		total := dist.Total()
		if total == 0 {
			out[cc] = 0
			continue
		}
		var share float64
		for _, ps := range dist.Ranked() {
			if want[res.ClassOf(ps.Provider)] {
				share += ps.Count / total
			}
		}
		out[cc] = share
	}
	return out
}
