package classify

import (
	"testing"

	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/worldgen"
)

// europeanWorld builds a world with enough European and non-European
// countries for the regional/global split to be meaningful.
func europeanWorld(t *testing.T) *worldgen.World {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{
		Seed:            5,
		SitesPerCountry: 800,
		Countries: []string{
			"TH", "ID", "US", "CZ", "SK", "RU", "BG", "LT", "FR", "DE",
			"IR", "JP", "BR", "NG", "IN", "GB", "PL", "TR", "MX", "AU",
		},
		DomesticPerCountry: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestHostingClassificationStructure(t *testing.T) {
	w := europeanWorld(t)
	res, err := Layer(w.Truth, countries.Hosting, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Cloudflare and Amazon are the XL globals.
	if got := res.ClassOf("Cloudflare"); got != XLGlobal {
		t.Errorf("Cloudflare = %v", got)
	}
	if got := res.ClassOf("Amazon"); got != XLGlobal {
		t.Errorf("Amazon = %v", got)
	}
	// Google and Akamai are large globals.
	for _, p := range []string{"Google", "Akamai"} {
		if got := res.ClassOf(p); got != LGlobal {
			t.Errorf("%s = %v, want L-GP", p, got)
		}
	}
	// Named regional case-study providers classify regional.
	for _, p := range []string{"Beget LLC", "SuperHosting.BG", "WEDOS"} {
		if got := res.ClassOf(p); !got.IsRegional() {
			t.Errorf("%s = %v, want regional", p, got)
		}
	}
	// Cluster count is substantial (the paper found 305 on full data).
	if res.Clusters < 10 {
		t.Errorf("only %d clusters", res.Clusters)
	}
	// Unknown providers are unclassified.
	if got := res.ClassOf("no-such-provider"); got != Unclassifiable {
		t.Errorf("unknown = %v", got)
	}
}

func TestOVHHetznerAreGlobalRegional(t *testing.T) {
	w := europeanWorld(t)
	res, err := Layer(w.Truth, countries.Hosting, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"OVH", "Hetzner"} {
		got := res.ClassOf(p)
		if got != LGlobalRegion && got != LGlobal {
			t.Errorf("%s = %v, want L-GP (R) (or at least L-GP)", p, got)
		}
	}
}

func TestDNSManagedProvidersAreLargeGlobal(t *testing.T) {
	w := europeanWorld(t)
	res, err := Layer(w.Truth, countries.DNS, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"NSONE", "Neustar UltraDNS"} {
		got := res.ClassOf(p)
		if got != LGlobal && got != XLGlobal && got != MGlobal {
			t.Errorf("%s = %v, want a global class", p, got)
		}
	}
}

func TestCAClassification(t *testing.T) {
	w := europeanWorld(t)
	res, err := Layer(w.Truth, countries.CA, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The seven dominant CAs all land in global classes.
	for _, ca := range []string{"Let's Encrypt", "DigiCert", "Sectigo", "Google", "Amazon", "GlobalSign", "GoDaddy"} {
		if got := res.ClassOf(ca); got.IsRegional() {
			t.Errorf("%s = %v, want global", ca, got)
		}
	}
	// Asseco is the flagship regional CA.
	if got := res.ClassOf("Asseco"); !got.IsRegional() {
		t.Errorf("Asseco = %v, want regional", got)
	}
}

func TestCountsCoverAllProviders(t *testing.T) {
	w := europeanWorld(t)
	res, err := Layer(w.Truth, countries.Hosting, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Counts()
	var sum int
	for _, n := range counts {
		sum += n
	}
	if sum != len(res.Features) {
		t.Errorf("class counts sum %d, features %d", sum, len(res.Features))
	}
	// The regional tail dominates numerically, as in the paper (12,309
	// regionals of ~12,400 providers).
	regionals := counts[LRegional] + counts[SRegional] + counts[XSRegional]
	if regionals < len(res.Features)/2 {
		t.Errorf("regional count %d of %d; tail should dominate", regionals, len(res.Features))
	}
}

func TestCountryBreakdownSumsToOne(t *testing.T) {
	w := europeanWorld(t)
	res, err := Layer(w.Truth, countries.Hosting, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for cc, list := range w.Truth.Lists {
		breakdown := CountryBreakdown(list, countries.Hosting, res)
		var sum float64
		for _, share := range breakdown {
			sum += share
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s breakdown sums to %v", cc, sum)
		}
	}
}

func TestThailandVsIranBreakdown(t *testing.T) {
	// Thailand leans on XL globals; Iran on regionals (Figure 7's extremes).
	w := europeanWorld(t)
	res, err := Layer(w.Truth, countries.Hosting, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	th := CountryBreakdown(w.Truth.Get("TH"), countries.Hosting, res)
	ir := CountryBreakdown(w.Truth.Get("IR"), countries.Hosting, res)
	if th[XLGlobal] <= ir[XLGlobal] {
		t.Errorf("TH XL share %v should exceed IR %v", th[XLGlobal], ir[XLGlobal])
	}
	regional := func(b map[Class]float64) float64 {
		return b[LRegional] + b[SRegional] + b[XSRegional]
	}
	if regional(ir) <= regional(th) {
		t.Errorf("IR regional share %v should exceed TH %v", regional(ir), regional(th))
	}
}

func TestClassShares(t *testing.T) {
	w := europeanWorld(t)
	res, err := Layer(w.Truth, countries.Hosting, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	shares := ClassShares(w.Truth, countries.Hosting, res, XLGlobal)
	if len(shares) != len(w.Truth.Lists) {
		t.Fatalf("shares for %d countries", len(shares))
	}
	for cc, s := range shares {
		if s < 0 || s > 1 {
			t.Errorf("%s XL share %v out of range", cc, s)
		}
	}
	// XL share must be large in Thailand.
	if shares["TH"] < 0.45 {
		t.Errorf("TH XL share = %v", shares["TH"])
	}
}

func TestEmptyCountryBreakdown(t *testing.T) {
	res := &Result{byName: map[string]*ProviderFeatures{}}
	empty := &dataset.CountryList{Country: "US"}
	if got := CountryBreakdown(empty, countries.Hosting, res); len(got) != 0 {
		t.Errorf("empty breakdown = %v", got)
	}
}

func TestIsRegional(t *testing.T) {
	if XLGlobal.IsRegional() || LGlobal.IsRegional() || MGlobal.IsRegional() {
		t.Error("global classes flagged regional")
	}
	if !LRegional.IsRegional() || !XSRegional.IsRegional() {
		t.Error("regional classes not flagged")
	}
}
