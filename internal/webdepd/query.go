package webdepd

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"github.com/webdep/webdep/internal/countries"
)

// QueryError is a typed request rejection: a 4xx (hostile or malformed
// input) or 5xx (the corpus could not answer) with a message that names
// the offending parameter. It is what every parse and render failure
// surfaces as, so the daemon never panics on untrusted input and never
// caches an error body (see cache.go).
type QueryError struct {
	Status int
	Msg    string
}

func (e *QueryError) Error() string { return e.Msg }

func badRequest(format string, args ...any) *QueryError {
	return &QueryError{Status: http.StatusBadRequest, Msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) *QueryError {
	return &QueryError{Status: http.StatusNotFound, Msg: fmt.Sprintf(format, args...)}
}

// Endpoint names, used as cache-key prefixes and per-endpoint metric names.
const (
	epScores    = "scores"
	epRankCurve = "rankcurve"
	epCoverage  = "coverage"
	epClasses   = "classes"
	epSPOF      = "spof"
	epWhatIf    = "whatif"
	epEpoch     = "epoch"
)

// endpoints lists every query endpoint, for metric registration.
var endpoints = []string{epScores, epRankCurve, epCoverage, epClasses, epSPOF, epWhatIf, epEpoch}

// defaultSPOFN is how many SPOFs /api/spof returns when n is absent.
const defaultSPOFN = 10

// maxSPOFN bounds the spof ranking length so the cache key space stays
// finite under hostile n values.
const maxSPOFN = 500

// maxProviderLen bounds the what-if provider name; real AS organization
// and CCADB owner names are far shorter.
const maxProviderLen = 200

// Query is one parsed score-query request. The zero Layer with AllLayers
// set means "every layer"; Country, Provider, and N are populated only for
// the endpoints that use them.
type Query struct {
	Endpoint  string
	Layer     countries.Layer
	AllLayers bool
	Country   string
	Provider  string
	N         int
}

// Key returns the canonical cache key for the query: two requests that
// must serve the same bytes map to the same key regardless of parameter
// order or URL escaping.
func (q Query) Key() string {
	switch q.Endpoint {
	case epScores:
		if q.AllLayers {
			return "scores|all"
		}
		return "scores|" + q.Layer.String() + "|" + q.Country
	case epRankCurve:
		return "rankcurve|" + q.Layer.String() + "|" + q.Country
	case epSPOF:
		return "spof|" + strconv.Itoa(q.N)
	case epWhatIf:
		return "whatif|" + q.Provider
	case epClasses:
		return "classes|" + q.Layer.String()
	default: // coverage, epoch: no parameters
		return q.Endpoint
	}
}

// ParseQuery validates an /api request's path and raw query string into a
// Query. Every rejection is a typed 4xx QueryError; hostile input — junk
// layers, malformed escapes, oversized provider names, unknown parameters
// — can never panic or produce an unbounded cache key (FuzzQueryParse is
// the gate). rawQuery is parsed by hand instead of url.ParseQuery so the
// cache-hit path does not allocate a values map per request.
func ParseQuery(path, rawQuery string) (Query, *QueryError) {
	name, ok := strings.CutPrefix(path, "/api/")
	if !ok || name == "" || strings.ContainsRune(name, '/') {
		return Query{}, notFound("unknown endpoint %q", path)
	}

	var q Query
	var layer, country, provider, n string
	for raw := rawQuery; raw != ""; {
		var pair string
		pair, raw, _ = strings.Cut(raw, "&")
		if pair == "" {
			continue
		}
		k, v, _ := strings.Cut(pair, "=")
		v, err := unescape(v)
		if err != nil {
			return Query{}, badRequest("parameter %s: undecodable value", k)
		}
		var dst *string
		switch k {
		case "layer":
			dst = &layer
		case "country":
			dst = &country
		case "provider":
			dst = &provider
		case "n":
			dst = &n
		default:
			return Query{}, badRequest("unknown parameter %q", k)
		}
		if *dst != "" {
			return Query{}, badRequest("parameter %s repeated", k)
		}
		if v == "" {
			return Query{}, badRequest("parameter %s is empty", k)
		}
		*dst = v
	}

	// reject refuses parameters an endpoint does not take, so a typo'd
	// request fails loudly instead of silently hitting a broader key.
	reject := func(param, val string) *QueryError {
		if val != "" {
			return badRequest("endpoint %s takes no %s parameter", name, param)
		}
		return nil
	}

	switch name {
	case epScores:
		if err := reject("provider", provider); err != nil {
			return Query{}, err
		}
		if err := reject("n", n); err != nil {
			return Query{}, err
		}
		q.Endpoint = epScores
		if layer == "" {
			if country != "" {
				return Query{}, badRequest("country requires a layer parameter")
			}
			q.AllLayers = true
			return q, nil
		}
		var qerr *QueryError
		if q.Layer, qerr = parseLayer(layer); qerr != nil {
			return Query{}, qerr
		}
		if country != "" {
			if q.Country, qerr = parseCountry(country); qerr != nil {
				return Query{}, qerr
			}
		}
		return q, nil

	case epRankCurve:
		if err := reject("provider", provider); err != nil {
			return Query{}, err
		}
		if err := reject("n", n); err != nil {
			return Query{}, err
		}
		q.Endpoint = epRankCurve
		var qerr *QueryError
		if q.Layer, qerr = parseLayer(layer); qerr != nil {
			return Query{}, qerr
		}
		if q.Country, qerr = parseCountry(country); qerr != nil {
			return Query{}, qerr
		}
		return q, nil

	case epClasses:
		if err := reject("provider", provider); err != nil {
			return Query{}, err
		}
		if err := reject("n", n); err != nil {
			return Query{}, err
		}
		if err := reject("country", country); err != nil {
			return Query{}, err
		}
		q.Endpoint = epClasses
		var qerr *QueryError
		if q.Layer, qerr = parseLayer(layer); qerr != nil {
			return Query{}, qerr
		}
		return q, nil

	case epSPOF:
		if err := reject("provider", provider); err != nil {
			return Query{}, err
		}
		if err := reject("layer", layer); err != nil {
			return Query{}, err
		}
		if err := reject("country", country); err != nil {
			return Query{}, err
		}
		q.Endpoint = epSPOF
		q.N = defaultSPOFN
		if n != "" {
			v, err := strconv.Atoi(n)
			if err != nil || v < 1 || v > maxSPOFN {
				return Query{}, badRequest("n must be an integer in [1, %d]", maxSPOFN)
			}
			q.N = v
		}
		return q, nil

	case "what-if", epWhatIf:
		if err := reject("layer", layer); err != nil {
			return Query{}, err
		}
		if err := reject("country", country); err != nil {
			return Query{}, err
		}
		if err := reject("n", n); err != nil {
			return Query{}, err
		}
		q.Endpoint = epWhatIf
		var qerr *QueryError
		if q.Provider, qerr = parseProvider(provider); qerr != nil {
			return Query{}, qerr
		}
		return q, nil

	case epCoverage, epEpoch:
		if rawQuery != "" {
			return Query{}, badRequest("endpoint %s takes no parameters", name)
		}
		q.Endpoint = name
		return q, nil

	default:
		return Query{}, notFound("unknown endpoint %q", path)
	}
}

// parseLayer maps a layer name to its Layer, case-insensitively.
func parseLayer(s string) (countries.Layer, *QueryError) {
	for _, l := range countries.Layers {
		if strings.EqualFold(s, l.String()) {
			return l, nil
		}
	}
	return 0, badRequest("unknown layer %q (want hosting, dns, ca, or tld)", clip(s))
}

// parseCountry validates a two-ASCII-letter country code, folding to the
// corpus's uppercase convention. Whether the country exists in the served
// corpus is the render step's call (a 404); this only bounds the syntax.
func parseCountry(s string) (string, *QueryError) {
	if len(s) != 2 || !isLetter(s[0]) || !isLetter(s[1]) {
		return "", badRequest("country must be a two-letter code, got %q", clip(s))
	}
	return strings.ToUpper(s), nil
}

// parseProvider bounds a what-if provider name: non-empty, printable,
// length-capped. Existence is checked at render time against the graph.
func parseProvider(s string) (string, *QueryError) {
	if s == "" {
		return "", badRequest("what-if requires a provider parameter")
	}
	if len(s) > maxProviderLen {
		return "", badRequest("provider name longer than %d bytes", maxProviderLen)
	}
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] == 0x7f {
			return "", badRequest("provider name contains control bytes")
		}
	}
	return s, nil
}

func isLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// clip bounds hostile strings before they are echoed into an error body.
func clip(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}

// unescape decodes %XX and '+' query escapes, skipping the allocation when
// the value carries none — the overwhelmingly common case on the hit path.
func unescape(v string) (string, error) {
	if !strings.ContainsAny(v, "%+") {
		return v, nil
	}
	return url.QueryUnescape(v)
}
