// Package webdepd is the score-query daemon: an HTTP server answering
// per-country dependence questions — centralization scores, rank curves,
// coverage, provider-class shares, SPOF rankings, what-if simulations —
// over a loaded corpus, at a throughput far beyond re-scoring per request.
//
// The perf core is a pre-serialized response cache. Every endpoint's JSON
// body is a pure function of the corpus, so it is rendered to bytes once
// per (corpus generation, query shape) and served verbatim after that: a
// cache hit does zero scoring, zero graph traversal, and zero JSON
// encoding. Cold keys are built under singleflight coalescing — K
// concurrent requests for the same cold key trigger exactly one render.
// The cache is keyed off the corpus's scoring-index snapshot (the same
// invalidation contract Corpus.Derived uses), so a mutated corpus can
// never serve stale bytes.
//
// Epoch hot-swap: when the daemon is started over a store-generation root
// (corpusstore.LatestGeneration's layout), POST /reload — or SIGHUP via
// the CLI — loads the newest complete generation, builds a fresh
// generation value, and swaps one atomic pointer. In-flight requests
// finish on the snapshot they loaded; new requests see the new corpus;
// the old generation's corpus, index, and cache are dropped whole and
// garbage-collected. There is no torn state: a response is always
// entirely from one generation.
package webdepd

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/webdep/webdep/internal/corpusstore"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// Config configures a Daemon. Exactly one corpus source is required:
// Corpus serves a fixed in-memory corpus (reloads refused), StoreRoot
// serves the newest complete store generation under the root and enables
// hot reloads.
type Config struct {
	// Corpus is an in-memory corpus to serve as the single generation.
	Corpus *dataset.Corpus

	// StoreRoot is a generation root (or bare store directory); the
	// daemon serves its latest complete generation and reloads from it.
	StoreRoot string

	// Workers bounds load/scoring concurrency; 0 means GOMAXPROCS.
	Workers int

	// Obs receives the daemon's metrics; nil means a private registry.
	Obs *obs.Registry
}

// generation is one immutable serving epoch: a corpus, its response
// cache, and the scoring-index snapshot the cache is valid for. The
// daemon swaps whole generations atomically and never mutates one.
type generation struct {
	corpus *dataset.Corpus
	id     int64  // swap counter: 0 for the initial load, +1 per reload
	label  string // store generation name, or "memory" for Config.Corpus
	cache  *respCache
	snap   any // corpus.SnapshotKey() captured when the generation was built
}

// newGeneration wraps a loaded corpus for serving. Capturing SnapshotKey
// here forces the scoring index to build once, eagerly, so the first
// request pays only its own render.
func newGeneration(c *dataset.Corpus, label string, id int64) *generation {
	return &generation{corpus: c, label: label, id: id, cache: newRespCache(), snap: c.SnapshotKey()}
}

// metrics holds the daemon's SLO surfaces, pre-resolved so the hit path
// never does a registry lookup.
type metrics struct {
	requests  *obs.Counter // webdepd.requests — every /api request
	hits      *obs.Counter // webdepd.hits — served from cached bytes
	misses    *obs.Counter // webdepd.misses — this request rendered the body
	coalesced *obs.Counter // webdepd.coalesced — waited on another request's render
	errors4xx *obs.Counter // webdepd.errors_4xx — rejected queries
	errors5xx *obs.Counter // webdepd.errors_5xx — render failures
	reloads   *obs.Counter // webdepd.reloads — successful generation swaps
	reloadErr *obs.Counter // webdepd.reload_errors — refused or failed reloads
	inflight  *obs.Gauge   // webdepd.inflight — /api requests being served now
	reloadMS  *obs.Histogram
	endpoint  map[string]*obs.Histogram // webdepd.<endpoint>.ms latency
}

func newMetrics(r *obs.Registry) *metrics {
	m := &metrics{
		requests:  r.Counter("webdepd.requests"),
		hits:      r.Counter("webdepd.hits"),
		misses:    r.Counter("webdepd.misses"),
		coalesced: r.Counter("webdepd.coalesced"),
		errors4xx: r.Counter("webdepd.errors_4xx"),
		errors5xx: r.Counter("webdepd.errors_5xx"),
		reloads:   r.Counter("webdepd.reloads"),
		reloadErr: r.Counter("webdepd.reload_errors"),
		inflight:  r.Gauge("webdepd.inflight"),
		reloadMS:  r.Timing("webdepd.reload.ms"),
		endpoint:  make(map[string]*obs.Histogram, len(endpoints)),
	}
	for _, ep := range endpoints {
		m.endpoint[ep] = r.Timing("webdepd." + ep + ".ms")
	}
	return m
}

// Daemon is a running score-query server. Start it with Start, stop it
// with Close, swap its corpus with Reload (or POST /reload).
type Daemon struct {
	// Addr is the address actually listening — useful with port 0.
	Addr string

	cfg      Config
	gen      atomic.Pointer[generation]
	reloadMu sync.Mutex // serializes Reload; requests never take it
	m        *metrics
	mux      *http.ServeMux
	srv      *http.Server
	ln       net.Listener
}

// Handler exposes the daemon's full HTTP handler for in-process drivers
// — the loadtest harness's socketless mode and embedding tests.
func (d *Daemon) Handler() http.Handler { return d.mux }

// Start loads the configured corpus source, binds addr, and serves. The
// returned daemon is already answering queries.
func Start(addr string, cfg Config) (*Daemon, error) {
	if (cfg.Corpus == nil) == (cfg.StoreRoot == "") {
		return nil, fmt.Errorf("webdepd: exactly one of Corpus or StoreRoot must be set")
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	d := &Daemon{cfg: cfg, m: newMetrics(reg)}

	var gen *generation
	if cfg.Corpus != nil {
		if cfg.Workers > 0 {
			cfg.Corpus.Workers = cfg.Workers
		}
		gen = newGeneration(cfg.Corpus, "memory", 0)
	} else {
		var err error
		if gen, err = d.loadGeneration(0); err != nil {
			return nil, err
		}
	}
	d.gen.Store(gen)

	d.mux = http.NewServeMux()
	d.mux.HandleFunc("/api/", d.handleAPI)
	d.mux.HandleFunc("/healthz", handleHealthz)
	d.mux.HandleFunc("/reload", d.handleReload)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("webdepd: listen: %w", err)
	}
	d.ln = ln
	d.Addr = ln.Addr().String()
	d.srv = &http.Server{Handler: d.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// closeGrace bounds how long Close waits for in-flight responses.
const closeGrace = 2 * time.Second

// Close stops the daemon gracefully: the listener closes immediately,
// in-flight requests get a short grace to finish, stragglers are severed.
func (d *Daemon) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		return d.srv.Close()
	}
	return nil
}

// Generation reports the serving generation's label and swap id.
func (d *Daemon) Generation() (label string, swap int64) {
	g := d.gen.Load()
	return g.label, g.id
}

// Reload loads the newest complete store generation and atomically swaps
// it in. In-flight requests finish on the old generation; the old corpus
// and its cache are released whole. Refused when the daemon serves a
// fixed in-memory corpus.
func (d *Daemon) Reload() (label string, err error) {
	d.reloadMu.Lock()
	defer d.reloadMu.Unlock()
	if d.cfg.StoreRoot == "" {
		d.m.reloadErr.Inc()
		return "", fmt.Errorf("webdepd: daemon serves a fixed in-memory corpus; reload needs a store root")
	}
	sp := obs.StartSpan(d.m.reloadMS)
	gen, err := d.loadGeneration(d.gen.Load().id + 1)
	if err != nil {
		d.m.reloadErr.Inc()
		return "", err
	}
	d.gen.Store(gen)
	sp.End()
	d.m.reloads.Inc()
	return gen.label, nil
}

// loadGeneration resolves and loads the newest complete generation under
// the store root.
func (d *Daemon) loadGeneration(id int64) (*generation, error) {
	dir, label, err := corpusstore.LatestGeneration(d.cfg.StoreRoot)
	if err != nil {
		return nil, err
	}
	st, err := corpusstore.Open(dir, &corpusstore.Options{Workers: d.cfg.Workers})
	if err != nil {
		return nil, err
	}
	corpus, err := st.Load()
	if err != nil {
		return nil, err
	}
	if d.cfg.Workers > 0 {
		corpus.Workers = d.cfg.Workers
	}
	return newGeneration(corpus, label, id), nil
}

// respond serves q from the generation's cache. The snapshot check is one
// atomic pointer comparison: while the corpus is unmutated (always, in
// production — generations are immutable) the pre-keyed cache answers.
// If a test mutates the served corpus in place, the stale-keyed cache is
// bypassed and responses re-key through Corpus.Derived on the corpus's
// *current* snapshot, so mutation can delay but never corrupt an answer.
func (d *Daemon) respond(g *generation, q Query) ([]byte, *QueryError, cacheOutcome) {
	if g.corpus.SnapshotKey() == g.snap {
		return g.cache.get(g, q)
	}
	c := g.corpus.Derived("webdepd.responses", func() any { return newRespCache() }).(*respCache)
	return c.get(g, q)
}

// handleAPI is the query hot path. On a cache hit it does: one counter
// increment, a gauge add/sub, query parse (allocation-free for clean
// input), one key build, one sync.Map load, and a verbatim byte write —
// no scoring, no JSON encoding, no locks. BenchmarkCachedHit pins the
// allocation count.
func (d *Daemon) handleAPI(w http.ResponseWriter, r *http.Request) {
	d.m.requests.Inc()
	if r.Method != http.MethodGet {
		d.m.errors4xx.Inc()
		writeError(w, &QueryError{Status: http.StatusMethodNotAllowed, Msg: "score queries are GET-only"})
		return
	}
	d.m.inflight.Add(1)
	defer d.m.inflight.Add(-1)

	q, qerr := ParseQuery(r.URL.Path, r.URL.RawQuery)
	if qerr != nil {
		d.m.errors4xx.Inc()
		writeError(w, qerr)
		return
	}
	sp := obs.StartSpan(d.m.endpoint[q.Endpoint])
	body, qerr, outcome := d.respond(d.gen.Load(), q)
	sp.End()
	switch outcome {
	case outcomeHit:
		d.m.hits.Inc()
	case outcomeMiss:
		d.m.misses.Inc()
	case outcomeCoalesced:
		d.m.coalesced.Inc()
	}
	if qerr != nil {
		if qerr.Status >= 500 {
			d.m.errors5xx.Inc()
		} else {
			d.m.errors4xx.Inc()
		}
		writeError(w, qerr)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	w.Write(body)
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// handleReload answers POST /reload by swapping to the newest store
// generation. GET is refused (reload is a mutation); a failed reload
// keeps serving the old generation and reports the failure.
func (d *Daemon) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &QueryError{Status: http.StatusMethodNotAllowed, Msg: "reload is POST-only"})
		return
	}
	label, err := d.Reload()
	if err != nil {
		writeError(w, &QueryError{Status: http.StatusConflict, Msg: err.Error()})
		return
	}
	g := d.gen.Load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"generation": label,
		"epoch":      g.corpus.Epoch,
		"swap":       g.id,
	})
}

// writeError emits the uniform JSON error body for a typed rejection.
func writeError(w http.ResponseWriter, qerr *QueryError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(qerr.Status)
	json.NewEncoder(w).Encode(ErrorResponse{Status: qerr.Status, Error: qerr.Msg})
}
