package webdepd

import (
	"sync"
)

// respCache memoizes rendered response bodies for one corpus generation.
// Keys are canonical Query.Key() strings, so the key space is bounded by
// construction: layers × countries for scores/rankcurve, a clamped n for
// spof, and only *valid* providers for what-if (failed renders are never
// cached, so hostile provider names cannot fill the map).
//
// Concurrency contract (the coalescing test pins this): for a cold key
// under K concurrent requests, exactly one goroutine builds — the others
// block on the entry's ready channel and reuse its bytes. Build errors
// propagate to every waiter and the entry is deleted, so a transient
// failure is retried by the next request instead of being served forever.
type respCache struct {
	mu      sync.Mutex // guards entry creation only; lookups are lock-free
	entries sync.Map   // Query.Key() → *cacheEntry
}

type cacheEntry struct {
	ready chan struct{} // closed once body/err are set
	body  []byte
	err   *QueryError
}

// cacheOutcome classifies one get() for the daemon's counters.
type cacheOutcome uint8

const (
	outcomeHit cacheOutcome = iota
	outcomeMiss
	outcomeCoalesced
)

// testHookBuild, when set, runs inside the building goroutine after the
// entry is published but before render is called. Tests use it to hold the
// build open while concurrent requests pile onto the entry.
var testHookBuild func(key string)

func newRespCache() *respCache {
	return &respCache{}
}

// get returns the cached body for q, rendering it against g at most once
// per key no matter how many requests race on a cold cache.
func (c *respCache) get(g *generation, q Query) ([]byte, *QueryError, cacheOutcome) {
	key := q.Key()
	if v, ok := c.entries.Load(key); ok {
		return c.wait(v.(*cacheEntry), outcomeHit)
	}

	c.mu.Lock()
	if v, ok := c.entries.Load(key); ok {
		// Lost the creation race: someone else is (or finished) building.
		c.mu.Unlock()
		return c.wait(v.(*cacheEntry), outcomeCoalesced)
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries.Store(key, e)
	c.mu.Unlock()

	if testHookBuild != nil {
		testHookBuild(key)
	}
	e.body, e.err = g.render(q)
	if e.err != nil {
		// Publish the error to the waiters already parked on this entry,
		// then drop it so the error is never served from cache.
		c.entries.Delete(key)
	}
	close(e.ready)
	return e.body, e.err, outcomeMiss
}

// wait blocks until the entry's build completes. A closed ready channel is
// the common case and returns without scheduling; hit is downgraded to
// coalesced when the caller actually had to park.
func (c *respCache) wait(e *cacheEntry, outcome cacheOutcome) ([]byte, *QueryError, cacheOutcome) {
	select {
	case <-e.ready:
		return e.body, e.err, outcome
	default:
	}
	if outcome == outcomeHit {
		outcome = outcomeCoalesced
	}
	<-e.ready
	return e.body, e.err, outcome
}
