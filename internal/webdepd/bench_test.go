package webdepd

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchDaemon serves a mid-sized world for the hot-path benchmarks.
func benchDaemon(b *testing.B) *Daemon {
	b.Helper()
	corpus := worldCorpus(b, 42, 400, []string{"US", "DE", "JP", "IN", "BR", "FR"})
	return startDaemon(b, Config{Corpus: corpus})
}

// BenchmarkCachedHit is the alloc-regression pin for the cache-hit path:
// the full handler — parse, key, lookup, write — against a warmed cache,
// with the network and ResponseWriter stripped out. Throughput here is
// the daemon's per-core ceiling; ReportAllocs is the regression gate.
func BenchmarkCachedHit(b *testing.B) {
	d := benchDaemon(b)
	req := httptest.NewRequest(http.MethodGet, "http://x/api/scores?layer=hosting&country=DE", nil)
	w := &nullWriter{h: make(http.Header)}
	d.handleAPI(w, req) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.handleAPI(w, req)
	}
}

// BenchmarkCachedHitParallel drives the same hit path from all cores —
// the contention picture: one sync.Map load and a handful of atomics per
// request, no locks.
func BenchmarkCachedHitParallel(b *testing.B) {
	d := benchDaemon(b)
	warm := httptest.NewRequest(http.MethodGet, "http://x/api/scores?layer=hosting", nil)
	d.handleAPI(&nullWriter{h: make(http.Header)}, warm)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := httptest.NewRequest(http.MethodGet, "http://x/api/scores?layer=hosting", nil)
		w := &nullWriter{h: make(http.Header)}
		for pb.Next() {
			d.handleAPI(w, req)
		}
	})
}

// BenchmarkColdRender prices what a cache miss pays: a full score +
// insularity render and JSON encode of one layer. The hit/miss ratio of
// these two benchmarks is the cache's entire value proposition.
func BenchmarkColdRender(b *testing.B) {
	corpus := worldCorpus(b, 42, 400, []string{"US", "DE", "JP", "IN", "BR", "FR"})
	g := newGeneration(corpus, "memory", 0)
	q, qerr := ParseQuery("/api/scores", "layer=hosting")
	if qerr != nil {
		b.Fatal(qerr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, qerr := g.render(q); qerr != nil {
			b.Fatal(qerr)
		}
	}
}
