package webdepd_test

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"

	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/webdepd"
	"github.com/webdep/webdep/internal/worldgen"
)

// Example starts an in-process score-query daemon over a measured
// synthetic world and asks it where Germany ranks on hosting
// centralization — the query path a dashboard or notebook would use.
func Example() {
	w, err := worldgen.Build(worldgen.Config{Seed: 1, SitesPerCountry: 200, Countries: []string{"US", "DE", "JP"}})
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := pipeline.FromWorld(w).MeasureWorld(w)
	if err != nil {
		log.Fatal(err)
	}

	d, err := webdepd.Start("127.0.0.1:0", webdepd.Config{Corpus: corpus})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	resp, err := http.Get("http://" + d.Addr + "/api/scores?layer=hosting&country=DE")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	var score webdepd.CountryScoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&score); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %s: %s %s ranks %d of %d\n",
		score.Epoch, score.Country, score.Layer, score.Rank, score.Of)
	// Output:
	// epoch 2023-05: DE hosting ranks 3 of 3
}
