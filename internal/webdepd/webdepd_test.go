package webdepd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/corpusstore"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/worldgen"
)

// worldCorpus measures a small synthetic world through the real pipeline,
// so the daemon's tests serve the same kind of corpus production does.
func worldCorpus(t testing.TB, seed int64, sites int, ccs []string) *dataset.Corpus {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{Seed: seed, SitesPerCountry: sites, Countries: ccs})
	if err != nil {
		t.Fatalf("worldgen.Build: %v", err)
	}
	corpus, err := pipeline.FromWorld(w).MeasureWorld(w)
	if err != nil {
		t.Fatalf("MeasureWorld: %v", err)
	}
	return corpus
}

// startDaemon starts a daemon on a loopback port and closes it with the
// test.
func startDaemon(t testing.TB, cfg Config) *Daemon {
	t.Helper()
	d, err := Start("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// get fetches one daemon URL, returning status and body.
func get(t testing.TB, d *Daemon, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + d.Addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, body
}

var testCCs = []string{"US", "DE", "JP", "IN"}

// crossCheckQueries enumerates one query of every endpoint shape.
func crossCheckQueries() []string {
	qs := []string{
		"/api/scores",
		"/api/coverage",
		"/api/epoch",
		"/api/spof",
		"/api/spof?n=3",
		"/api/what-if?provider=Cloudflare",
	}
	for _, layer := range []string{"hosting", "dns", "ca", "tld"} {
		qs = append(qs,
			"/api/scores?layer="+layer,
			"/api/scores?layer="+layer+"&country=DE",
			"/api/rankcurve?layer="+layer+"&country=US",
			"/api/classes?layer="+layer,
		)
	}
	return qs
}

// TestEndpointsCrossCheck pins the daemon's correctness contract: every
// endpoint's HTTP bytes must be identical to rendering the same query
// against an independently measured corpus — the cache can never change
// what is served, only how fast.
func TestEndpointsCrossCheck(t *testing.T) {
	corpus := worldCorpus(t, 7, 150, testCCs)
	d := startDaemon(t, Config{Corpus: corpus})

	// An independent measurement of the same world, rendered directly
	// with no daemon and no cache in the loop.
	independent := newGeneration(worldCorpus(t, 7, 150, testCCs), "memory", 0)

	for _, path := range crossCheckQueries() {
		u := strings.TrimPrefix(path, "/api/")
		q, qerr := ParseQuery("/api/"+strings.Split(u, "?")[0], urlQuery(path))
		if qerr != nil {
			t.Fatalf("%s: parse: %v", path, qerr)
		}
		want, qerr := independent.render(q)
		if qerr != nil {
			t.Fatalf("%s: direct render: %v", path, qerr)
		}
		// Twice: once cold (miss), once hot (hit) — same bytes both times.
		for pass := 0; pass < 2; pass++ {
			status, body := get(t, d, path)
			if status != http.StatusOK {
				t.Fatalf("%s pass %d: status %d: %s", path, pass, status, body)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("%s pass %d: served bytes differ from direct render\n got: %.200s\nwant: %.200s", path, pass, body, want)
			}
			if !json.Valid(body) {
				t.Errorf("%s: response is not valid JSON", path)
			}
		}
	}
	if hits := d.m.hits.Value(); hits == 0 {
		t.Error("second passes never hit the cache")
	}
}

// urlQuery splits the raw query off a request path.
func urlQuery(path string) string {
	if _, q, ok := strings.Cut(path, "?"); ok {
		return q
	}
	return ""
}

// TestErrorResponses pins the typed-rejection surface: hostile or wrong
// requests get a JSON error with the right status, and error bodies are
// never cached (a transient failure is retried, and a junk provider
// cannot fill the cache).
func TestErrorResponses(t *testing.T) {
	corpus := worldCorpus(t, 3, 80, []string{"US", "DE"})
	d := startDaemon(t, Config{Corpus: corpus})

	cases := []struct {
		path string
		want int
	}{
		{"/api/scores?layer=hosting&country=ZZ", http.StatusNotFound},  // unknown country
		{"/api/rankcurve?layer=dns&country=FR", http.StatusNotFound},   // not in corpus
		{"/api/what-if?provider=NoSuchProvider", http.StatusNotFound},  // unknown provider
		{"/api/nope", http.StatusNotFound},                             // unknown endpoint
		{"/api/scores?layer=blockchain", http.StatusBadRequest},        // junk layer
		{"/api/scores?layer=hosting&layer=dns", http.StatusBadRequest}, // repeated param
		{"/api/spof?n=0", http.StatusBadRequest},                       // out-of-range n
		{"/api/spof?n=9999999", http.StatusBadRequest},
		{"/api/epoch?layer=hosting", http.StatusBadRequest}, // param on a bare endpoint
		{"/api/scores?country=US", http.StatusBadRequest},   // country without layer
	}
	for _, tc := range cases {
		for pass := 0; pass < 2; pass++ { // twice: errors must not be cached into success
			status, body := get(t, d, tc.path)
			if status != tc.want {
				t.Errorf("%s: status %d, want %d (%s)", tc.path, status, tc.want, body)
				continue
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Status != tc.want || er.Error == "" {
				t.Errorf("%s: malformed error body %s", tc.path, body)
			}
		}
	}
	// Error renders must leave no cache entry behind.
	entries := 0
	d.gen.Load().cache.entries.Range(func(_, _ any) bool { entries++; return true })
	if entries != 0 {
		t.Errorf("error responses left %d cache entries", entries)
	}

	if status, _ := get(t, d, "/healthz"); status != http.StatusOK {
		t.Errorf("healthz: %d", status)
	}
	resp, err := http.Post("http://"+d.Addr+"/api/scores", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/scores: %d, want 405", resp.StatusCode)
	}
}

// TestCoalescing pins the singleflight contract: K concurrent requests
// for one cold key trigger exactly one render; the rest wait for it and
// are counted as coalesced.
func TestCoalescing(t *testing.T) {
	const K = 16
	corpus := worldCorpus(t, 5, 100, []string{"US", "DE"})
	d := startDaemon(t, Config{Corpus: corpus})

	var builds atomic.Int64
	release := make(chan struct{})
	testHookBuild = func(string) {
		builds.Add(1)
		<-release
	}
	defer func() { testHookBuild = nil }()

	var wg sync.WaitGroup
	bodies := make([][]byte, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := get(t, d, "/api/scores?layer=hosting")
			if status != http.StatusOK {
				t.Errorf("goroutine %d: status %d", i, status)
			}
			bodies[i] = body
		}(i)
	}
	// Release the single build only once every request is in flight, so
	// all K demonstrably raced on the cold key.
	for d.m.inflight.Value() < K {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("%d renders for one cold key, want exactly 1", n)
	}
	if m := d.m.misses.Value(); m != 1 {
		t.Errorf("misses = %d, want 1", m)
	}
	if c := d.m.coalesced.Value(); c != K-1 {
		t.Errorf("coalesced = %d, want %d", c, K-1)
	}
	for i := 1; i < K; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("goroutine %d got different bytes", i)
		}
	}
}

// TestReloadHotSwap drives the epoch swap end to end over a store
// generation root: the daemon starts on gen-0001, a new generation lands,
// POST /reload swaps it in, and both the epoch report and the scores
// change to the new corpus — while an in-memory daemon refuses reloads.
func TestReloadHotSwap(t *testing.T) {
	root := t.TempDir()
	corpusA := worldCorpus(t, 11, 120, testCCs)
	if err := corpusstore.Save(root+"/gen-0001", corpusA, &corpusstore.Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	d := startDaemon(t, Config{StoreRoot: root, Workers: 2})

	if label, swap := d.Generation(); label != "gen-0001" || swap != 0 {
		t.Fatalf("initial generation (%s, %d)", label, swap)
	}
	_, before := get(t, d, "/api/scores?layer=hosting")

	// A new epoch lands (different world), plus decoys reload must skip:
	// an in-flight atomic write and a manifest-less directory.
	corpusB := worldCorpus(t, 12, 120, testCCs)
	corpusB.Epoch = "2023-06"
	if err := corpusstore.Save(root+"/gen-0002", corpusB, &corpusstore.Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := corpusstore.Save(root+"/gen-0009.tmp", corpusB, &corpusstore.Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post("http://"+d.Addr+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var swapped struct {
		Generation string `json:"generation"`
		Epoch      string `json:"epoch"`
		Swap       int64  `json:"swap"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&swapped); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || swapped.Generation != "gen-0002" || swapped.Epoch != "2023-06" || swapped.Swap != 1 {
		t.Fatalf("reload answered %d %+v", resp.StatusCode, swapped)
	}

	status, after := get(t, d, "/api/scores?layer=hosting")
	if status != http.StatusOK {
		t.Fatalf("post-swap scores: %d", status)
	}
	if bytes.Equal(before, after) {
		t.Error("scores unchanged across an epoch swap of a different world")
	}
	var ls LayerScoresResponse
	if err := json.Unmarshal(after, &ls); err != nil || ls.Epoch != "2023-06" {
		t.Fatalf("post-swap scores carry epoch %q: %v", ls.Epoch, err)
	}
	if d.m.reloads.Value() != 1 {
		t.Errorf("reloads counter = %d", d.m.reloads.Value())
	}

	// GET /reload is a refused mutation; in-memory daemons refuse POST too.
	if resp, err := http.Get("http://" + d.Addr + "/reload"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /reload: %d", resp.StatusCode)
		}
	}
	mem := startDaemon(t, Config{Corpus: corpusA})
	if resp, err := http.Post("http://"+mem.Addr+"/reload", "", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("in-memory reload: %d, want 409", resp.StatusCode)
		}
	}
	if _, err := Start("127.0.0.1:0", Config{}); err == nil {
		t.Error("Start accepted a config with no corpus source")
	}
	if _, err := Start("127.0.0.1:0", Config{Corpus: corpusA, StoreRoot: root}); err == nil {
		t.Error("Start accepted two corpus sources")
	}
}

// TestReloadRaceHammer hammers queries against concurrent reloads under
// the race detector: every response must be byte-identical to one of the
// two generations' direct renders — never a blend, never torn.
func TestReloadRaceHammer(t *testing.T) {
	root := t.TempDir()
	corpusA := worldCorpus(t, 21, 80, []string{"US", "DE", "JP"})
	corpusB := worldCorpus(t, 22, 80, []string{"US", "DE", "JP"})
	corpusB.Epoch = "2023-06"
	if err := corpusstore.Save(root+"/gen-0001", corpusA, &corpusstore.Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	d := startDaemon(t, Config{StoreRoot: root, Workers: 2})

	paths := []string{
		"/api/scores?layer=hosting",
		"/api/scores?layer=dns&country=DE",
		"/api/rankcurve?layer=hosting&country=US",
		"/api/spof?n=5",
		"/api/classes?layer=ca",
	}
	// Direct renders from both worlds; a served body must match one side
	// entirely.
	allowed := make(map[string][2][]byte, len(paths))
	genA := newGeneration(worldCorpus(t, 21, 80, []string{"US", "DE", "JP"}), "gen-0001", 0)
	corpusB2 := worldCorpus(t, 22, 80, []string{"US", "DE", "JP"})
	corpusB2.Epoch = "2023-06"
	genB := newGeneration(corpusB2, "gen-0002", 1)
	for _, p := range paths {
		q, qerr := ParseQuery("/api/"+strings.Split(strings.TrimPrefix(p, "/api/"), "?")[0], urlQuery(p))
		if qerr != nil {
			t.Fatal(qerr)
		}
		wa, qerr := genA.render(q)
		if qerr != nil {
			t.Fatal(qerr)
		}
		wb, qerr := genB.render(q)
		if qerr != nil {
			t.Fatal(qerr)
		}
		allowed[p] = [2][]byte{wa, wb}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := paths[(w+i)%len(paths)]
				resp, err := client.Get("http://" + d.Addr + p)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("reader %s: %d %v", p, resp.StatusCode, err)
					return
				}
				if ab := allowed[p]; !bytes.Equal(body, ab[0]) && !bytes.Equal(body, ab[1]) {
					t.Errorf("reader %s: body matches neither generation", p)
					return
				}
			}
		}(w)
	}

	// Land generation B mid-hammer, then swap repeatedly while reads fly.
	if err := corpusstore.Save(root+"/gen-0002", corpusB, &corpusstore.Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Reload(); err != nil {
			t.Errorf("reload %d: %v", i, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if label, _ := d.Generation(); label != "gen-0002" {
		t.Errorf("final generation %s", label)
	}
}

// TestMutatedCorpusFallsBack pins the snapshot-keying: if the served
// corpus is mutated in place (outside the daemon's own swap discipline),
// the stale-keyed cache is bypassed and responses reflect the new data.
func TestMutatedCorpusFallsBack(t *testing.T) {
	corpus := worldCorpus(t, 9, 60, []string{"US", "DE"})
	d := startDaemon(t, Config{Corpus: corpus})

	_, before := get(t, d, "/api/scores?layer=hosting")
	var ls LayerScoresResponse
	if err := json.Unmarshal(before, &ls); err != nil {
		t.Fatal(err)
	}
	if _, ok := ls.Scores["JP"]; ok {
		t.Fatal("JP in corpus before mutation")
	}

	// Mutate the served corpus: a new country list lands in place.
	jp := worldCorpus(t, 9, 60, []string{"JP"})
	corpus.Add(jp.Lists["JP"])

	status, after := get(t, d, "/api/scores?layer=hosting")
	if status != http.StatusOK {
		t.Fatalf("post-mutation: %d", status)
	}
	if err := json.Unmarshal(after, &ls); err != nil {
		t.Fatal(err)
	}
	if _, ok := ls.Scores["JP"]; !ok {
		t.Error("mutated corpus still serving pre-mutation bytes")
	}
}

// nullWriter is an http.ResponseWriter that discards everything —
// allocation accounting must measure the daemon, not a recorder.
type nullWriter struct{ h http.Header }

func (w *nullWriter) Header() http.Header         { return w.h }
func (w *nullWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullWriter) WriteHeader(int)             {}

// TestHitPathAllocs is the alloc-regression gate on the cache-hit path:
// parse, key, lookup, and write must stay within a handful of allocations
// per request, or the throughput claim quietly rots.
func TestHitPathAllocs(t *testing.T) {
	corpus := worldCorpus(t, 13, 60, []string{"US", "DE"})
	d := startDaemon(t, Config{Corpus: corpus})

	req := httptest.NewRequest(http.MethodGet, "http://x/api/scores?layer=hosting&country=US", nil)
	w := &nullWriter{h: make(http.Header)}
	d.handleAPI(w, req) // warm the key

	avg := testing.AllocsPerRun(2000, func() { d.handleAPI(w, req) })
	if avg > 8 {
		t.Errorf("cache-hit path allocates %.1f objects/request, want <= 8", avg)
	}
}

// TestMetricsSurface checks the daemon wires its SLO surfaces into the
// shared registry: request counters, per-endpoint latency histograms, and
// the hit/miss split all move when traffic flows.
func TestMetricsSurface(t *testing.T) {
	reg := obs.NewRegistry()
	corpus := worldCorpus(t, 17, 60, []string{"US", "DE"})
	d := startDaemon(t, Config{Corpus: corpus, Obs: reg})

	get(t, d, "/api/scores?layer=hosting")
	get(t, d, "/api/scores?layer=hosting")
	get(t, d, "/api/scores?layer=blockchain")

	if got := reg.Counter("webdepd.requests").Value(); got != 3 {
		t.Errorf("requests = %d", got)
	}
	if m, h := reg.Counter("webdepd.misses").Value(), reg.Counter("webdepd.hits").Value(); m != 1 || h != 1 {
		t.Errorf("misses/hits = %d/%d, want 1/1", m, h)
	}
	if got := reg.Counter("webdepd.errors_4xx").Value(); got != 1 {
		t.Errorf("errors_4xx = %d", got)
	}
	if hs := reg.Timing("webdepd.scores.ms").Snapshot(); hs.Count != 2 {
		t.Errorf("scores latency histogram count = %d, want 2", hs.Count)
	}
	if d.m.inflight.Value() != 0 {
		t.Errorf("inflight gauge did not return to zero: %d", d.m.inflight.Value())
	}
}
