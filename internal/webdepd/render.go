package webdepd

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/webdep/webdep/internal/analysis"
	"github.com/webdep/webdep/internal/classify"
	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/depgraph"
)

// This file computes each endpoint's JSON body directly from the corpus —
// the "slow path" the response cache runs exactly once per (generation,
// query shape). Every render reads the scoring index (or the Derived
// dependency graph), so the work a cache miss pays is the same work the
// analysis/report packages do; the cross-check test serves each endpoint
// over HTTP and re-renders from an independently measured corpus, and the
// bytes must match.
//
// Determinism: bodies are produced by encoding/json over structs and
// maps. Go marshals map keys in sorted order, and every float in the
// corpus is a deterministic pure function of the rows (the golden-corpus
// invariant), so one corpus renders one byte sequence.

// LayerScores is one layer's per-country metrics inside an all-layers
// scores response.
type LayerScores struct {
	Scores     map[string]float64 `json:"scores"`
	Insularity map[string]float64 `json:"insularity"`
}

// AllScoresResponse answers /api/scores with no layer parameter.
type AllScoresResponse struct {
	Epoch  string                 `json:"epoch"`
	Layers map[string]LayerScores `json:"layers"`
}

// LayerScoresResponse answers /api/scores?layer=L.
type LayerScoresResponse struct {
	Epoch      string             `json:"epoch"`
	Layer      string             `json:"layer"`
	Scores     map[string]float64 `json:"scores"`
	Insularity map[string]float64 `json:"insularity"`
}

// CountryScoreResponse answers /api/scores?layer=L&country=CC. Rank is the
// country's position in the layer's descending score order (1 = most
// centralized), matching the paper's tables.
type CountryScoreResponse struct {
	Epoch      string  `json:"epoch"`
	Layer      string  `json:"layer"`
	Country    string  `json:"country"`
	Score      float64 `json:"score"`
	Insularity float64 `json:"insularity"`
	Rank       int     `json:"rank"`
	Of         int     `json:"of"` // how many countries were ranked
}

// RankCurveResponse answers /api/rankcurve: element k of Curve is the
// cumulative share of the country's measured sites on the top k+1
// providers of the layer (the paper's Figure 1).
type RankCurveResponse struct {
	Epoch   string    `json:"epoch"`
	Layer   string    `json:"layer"`
	Country string    `json:"country"`
	Curve   []float64 `json:"curve"`
}

// CoverageResponse answers /api/coverage with the live crawl's
// measurement-loss accounting; Countries is empty (never null) for corpora
// measured without probe loss accounting.
type CoverageResponse struct {
	Epoch     string                       `json:"epoch"`
	Countries map[string]*dataset.Coverage `json:"countries"`
	Degraded  []string                     `json:"degraded"`
}

// ClassesResponse answers /api/classes: the layer's provider-class census
// and each country's share of measured sites per class.
type ClassesResponse struct {
	Epoch  string                                `json:"epoch"`
	Layer  string                                `json:"layer"`
	Counts map[classify.Class]int                `json:"counts"`
	Shares map[string]map[classify.Class]float64 `json:"shares"`
}

// SPOFResponse answers /api/spof with the top-N single points of failure
// by transitive blast radius.
type SPOFResponse struct {
	Epoch string          `json:"epoch"`
	Top   []depgraph.SPOF `json:"top"`
}

// WhatIfResponse answers /api/what-if: the blast radius of one provider
// failing, per country and layer.
type WhatIfResponse struct {
	Epoch  string           `json:"epoch"`
	Impact *depgraph.Impact `json:"impact"`
}

// EpochResponse answers /api/epoch: which corpus generation is serving.
type EpochResponse struct {
	Epoch      string `json:"epoch"`
	Generation string `json:"generation"`
	Swap       int64  `json:"swap"`
	Countries  int    `json:"countries"`
	Sites      int    `json:"sites"`
}

// ErrorResponse is the body of every 4xx/5xx answer.
type ErrorResponse struct {
	Status int    `json:"status"`
	Error  string `json:"error"`
}

// render computes the response body for a parsed query against this
// generation's corpus. Errors are typed QueryErrors (unknown country or
// provider → 404; classification failure → 500) and are never cached.
func (g *generation) render(q Query) ([]byte, *QueryError) {
	switch q.Endpoint {
	case epScores:
		switch {
		case q.AllLayers:
			return g.renderAllScores()
		case q.Country != "":
			return g.renderCountryScore(q.Layer, q.Country)
		default:
			return g.renderLayerScores(q.Layer)
		}
	case epRankCurve:
		return g.renderRankCurve(q.Layer, q.Country)
	case epCoverage:
		return g.renderCoverage()
	case epClasses:
		return g.renderClasses(q.Layer)
	case epSPOF:
		return g.renderSPOF(q.N)
	case epWhatIf:
		return g.renderWhatIf(q.Provider)
	case epEpoch:
		return g.renderEpoch()
	default:
		return nil, notFound("unknown endpoint %q", q.Endpoint)
	}
}

// marshal encodes a response body. Marshal failures are a programming
// error (every response type is JSON-encodable), surfaced as a 500 rather
// than a panic so one bad render cannot take the daemon down.
func marshal(v any) ([]byte, *QueryError) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, &QueryError{Status: http.StatusInternalServerError,
			Msg: fmt.Sprintf("encoding response: %v", err)}
	}
	return append(b, '\n'), nil
}

func (g *generation) renderAllScores() ([]byte, *QueryError) {
	resp := AllScoresResponse{Epoch: g.corpus.Epoch, Layers: make(map[string]LayerScores, len(countries.Layers))}
	for _, layer := range countries.Layers {
		resp.Layers[layer.String()] = LayerScores{
			Scores:     g.corpus.Scores(layer),
			Insularity: analysis.Insularities(g.corpus, layer),
		}
	}
	return marshal(resp)
}

func (g *generation) renderLayerScores(layer countries.Layer) ([]byte, *QueryError) {
	return marshal(LayerScoresResponse{
		Epoch:      g.corpus.Epoch,
		Layer:      layer.String(),
		Scores:     g.corpus.Scores(layer),
		Insularity: analysis.Insularities(g.corpus, layer),
	})
}

func (g *generation) renderCountryScore(layer countries.Layer, cc string) ([]byte, *QueryError) {
	if g.corpus.Get(cc) == nil {
		return nil, notFound("country %s is not in the served corpus", cc)
	}
	sorted := analysis.SortedScores(g.corpus, layer)
	rank := 0
	for i := range sorted {
		if sorted[i].Code == cc {
			rank = i + 1
			break
		}
	}
	return marshal(CountryScoreResponse{
		Epoch:      g.corpus.Epoch,
		Layer:      layer.String(),
		Country:    cc,
		Score:      g.corpus.Scores(layer)[cc],
		Insularity: analysis.Insularities(g.corpus, layer)[cc],
		Rank:       rank,
		Of:         len(sorted),
	})
}

func (g *generation) renderRankCurve(layer countries.Layer, cc string) ([]byte, *QueryError) {
	dist := g.corpus.DistributionOf(cc, layer)
	if dist == nil {
		return nil, notFound("country %s is not in the served corpus", cc)
	}
	curve := dist.RankCurve()
	if curve == nil {
		curve = []float64{}
	}
	return marshal(RankCurveResponse{
		Epoch:   g.corpus.Epoch,
		Layer:   layer.String(),
		Country: cc,
		Curve:   curve,
	})
}

func (g *generation) renderCoverage() ([]byte, *QueryError) {
	resp := CoverageResponse{
		Epoch:     g.corpus.Epoch,
		Countries: g.corpus.CoverageByCountry,
		Degraded:  g.corpus.DegradedCountries(),
	}
	if resp.Countries == nil {
		resp.Countries = map[string]*dataset.Coverage{}
	}
	if resp.Degraded == nil {
		resp.Degraded = []string{}
	}
	return marshal(resp)
}

func (g *generation) renderClasses(layer countries.Layer) ([]byte, *QueryError) {
	res, err := classify.Layer(g.corpus, layer, classify.DefaultOptions())
	if err != nil {
		return nil, &QueryError{Status: http.StatusInternalServerError,
			Msg: fmt.Sprintf("classifying %s providers: %v", layer, err)}
	}
	resp := ClassesResponse{
		Epoch:  g.corpus.Epoch,
		Layer:  layer.String(),
		Counts: res.Counts(),
		Shares: make(map[string]map[classify.Class]float64, len(g.corpus.Lists)),
	}
	for _, cc := range g.corpus.Countries() {
		resp.Shares[cc] = classify.CountryBreakdownIndexed(g.corpus, cc, layer, res)
	}
	return marshal(resp)
}

// graph returns the generation's provider dependency graph, built once per
// scoring-index snapshot through Corpus.Derived (shared with the CLI's
// -spof/-what-if path).
func (g *generation) graph() *depgraph.Graph {
	return depgraph.FromCorpus(g.corpus)
}

func (g *generation) renderSPOF(n int) ([]byte, *QueryError) {
	top := g.graph().TopSPOFs(n)
	if top == nil {
		top = []depgraph.SPOF{}
	}
	return marshal(SPOFResponse{Epoch: g.corpus.Epoch, Top: top})
}

func (g *generation) renderWhatIf(provider string) ([]byte, *QueryError) {
	imp, err := g.graph().Simulate(provider)
	if err != nil {
		return nil, notFound("%v", err)
	}
	return marshal(WhatIfResponse{Epoch: g.corpus.Epoch, Impact: imp})
}

func (g *generation) renderEpoch() ([]byte, *QueryError) {
	return marshal(EpochResponse{
		Epoch:      g.corpus.Epoch,
		Generation: g.label,
		Swap:       g.id,
		Countries:  len(g.corpus.Lists),
		Sites:      g.corpus.TotalSites(),
	})
}
