package webdepd

import (
	"strings"
	"testing"
)

// FuzzQueryParse is the hostile-input gate for the daemon's front door:
// for any path and query string, ParseQuery must never panic, every
// rejection must be a well-formed 4xx, and every accepted query must
// satisfy the invariants the cache keys and renderers rely on.
func FuzzQueryParse(f *testing.F) {
	f.Add("/api/scores", "")
	f.Add("/api/scores", "layer=hosting&country=us")
	f.Add("/api/rankcurve", "layer=dns&country=DE")
	f.Add("/api/spof", "n=10")
	f.Add("/api/what-if", "provider=Cloudflare")
	f.Add("/api/classes", "layer=tld")
	f.Add("/api/coverage", "")
	f.Add("/api/epoch", "")
	f.Add("/api/scores", "layer=%68osting")
	f.Add("/api/what-if", "provider=%ZZ")
	f.Add("/api/../etc/passwd", "")
	f.Add("/api/scores", "layer=hosting&layer=dns")
	f.Add("/api/spof", "n=-1&n=2")
	f.Add("/api/what-if", "provider="+strings.Repeat("A", 300))
	f.Add("", "")

	f.Fuzz(func(t *testing.T, path, rawQuery string) {
		q, qerr := ParseQuery(path, rawQuery)
		if qerr != nil {
			if qerr.Status < 400 || qerr.Status > 499 {
				t.Fatalf("ParseQuery(%q, %q): non-4xx rejection %d", path, rawQuery, qerr.Status)
			}
			if qerr.Msg == "" {
				t.Fatalf("ParseQuery(%q, %q): empty rejection message", path, rawQuery)
			}
			return
		}
		// Accepted queries must be canonical: a known endpoint, a bounded
		// key, and parameters inside the ranges the renderers assume.
		known := false
		for _, ep := range endpoints {
			if q.Endpoint == ep {
				known = true
			}
		}
		if !known {
			t.Fatalf("accepted unknown endpoint %q", q.Endpoint)
		}
		if q.Country != "" {
			if len(q.Country) != 2 || q.Country != strings.ToUpper(q.Country) {
				t.Fatalf("accepted non-canonical country %q", q.Country)
			}
		}
		if q.Endpoint == epSPOF && (q.N < 1 || q.N > maxSPOFN) {
			t.Fatalf("accepted out-of-range n %d", q.N)
		}
		if len(q.Provider) > maxProviderLen {
			t.Fatalf("accepted oversized provider (%d bytes)", len(q.Provider))
		}
		if key := q.Key(); key == "" || len(key) > maxProviderLen+20 {
			t.Fatalf("cache key %q out of bounds", key)
		}
	})
}
