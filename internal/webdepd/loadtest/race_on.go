//go:build race

package loadtest

// raceEnabled reports whether the race detector is compiled in. The
// capacity-floor gate is a perf assertion; under the detector's ~10x
// instrumentation slowdown its number means nothing, so the floor is
// not enforced (the traffic still flows and errors still fail).
const raceEnabled = true
