package loadtest

import (
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/webdepd"
	"github.com/webdep/webdep/internal/worldgen"
)

// startDaemon serves a measured synthetic world for the harness to hit.
func startDaemon(t *testing.T) *webdepd.Daemon {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{Seed: 77, SitesPerCountry: 300, Countries: []string{"US", "DE", "JP", "IN"}})
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pipeline.FromWorld(w).MeasureWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	d, err := webdepd.Start("127.0.0.1:0", webdepd.Config{Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// envInt reads an integer knob with a default, so CI can tune the gate
// without a code change.
func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// TestLoadSmoke drives the cached query path with concurrent keep-alive
// connections. The quick mode (always on) only proves the harness and
// daemon agree on the wire: real traffic flows, zero errors. With
// WEBDEP_LOAD_SMOKE=1 — the CI load-smoke job — it saturates the daemon
// and enforces the perf gate: a throughput floor (WEBDEP_LOAD_FLOOR_RPS,
// default 20000 req/s — deliberately far below the ~1M+ req/s a quiet
// machine reaches, so only a real regression trips it) and a p99 bound
// (WEBDEP_LOAD_P99_MS, default 25ms).
func TestLoadSmoke(t *testing.T) {
	d := startDaemon(t)

	cfg := Config{
		Addr:     d.Addr,
		Path:     "/api/scores?layer=hosting",
		Conns:    4,
		Duration: 300 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
	}
	gate := os.Getenv("WEBDEP_LOAD_SMOKE") == "1"
	if gate {
		cfg.Conns = max(4, runtime.GOMAXPROCS(0))
		cfg.Duration = 3 * time.Second
		cfg.Warmup = 500 * time.Millisecond
	}

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load: %s", res)

	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors against an idle loopback daemon", res.Errors)
	}
	if !gate {
		return
	}
	if floor := float64(envInt("WEBDEP_LOAD_FLOOR_RPS", 20000)); res.Throughput < floor {
		t.Errorf("throughput %.0f req/s below the floor %.0f req/s", res.Throughput, floor)
	}
	if bound := float64(envInt("WEBDEP_LOAD_P99_MS", 25)); res.P99 > bound {
		t.Errorf("p99 %.3fms above the bound %.0fms", res.P99, bound)
	}
}

// TestLoadCapacityFloor is the ≥100K req/s gate, enforced on every run:
// the in-process mode drives the daemon's full handler — parse, cache
// hit, metrics, body write — without kernel socket I/O, so the measured
// number is the daemon's serving capacity rather than the test machine's
// loopback stack. A warmed single core sustains >1M req/s on this path
// (BenchmarkCachedHit prices one request at ~0.5µs), so the 100K floor
// (WEBDEP_LOAD_CAPACITY_FLOOR_RPS) only trips on an order-of-magnitude
// regression — exactly the kind a cache bypass or alloc leak causes.
func TestLoadCapacityFloor(t *testing.T) {
	d := startDaemon(t)
	res, err := Run(Config{
		Handler:  d.Handler(),
		Path:     "/api/scores?layer=hosting",
		Conns:    max(2, runtime.GOMAXPROCS(0)),
		Duration: 500 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("capacity: %s", res)
	if res.Errors != 0 {
		t.Fatalf("%d errors from the in-process handler", res.Errors)
	}
	if raceEnabled {
		t.Skip("race detector compiled in: traffic and errors checked, throughput floor not meaningful")
	}
	if floor := float64(envInt("WEBDEP_LOAD_CAPACITY_FLOOR_RPS", 100000)); res.Throughput < floor {
		t.Errorf("handler capacity %.0f req/s below the floor %.0f req/s", res.Throughput, floor)
	}
}

// TestRunRejectsMisconfig pins the only fatal error surface.
func TestRunRejectsMisconfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
