// Package loadtest is a self-contained saturating load harness for the
// webdepd query daemon. It opens N raw keep-alive TCP connections, each
// driven by its own goroutine issuing back-to-back GETs of a cached
// endpoint, and reports throughput plus latency quantiles. Using raw
// sockets instead of net/http's client removes the client as the
// bottleneck: the harness writes a pre-built request and scans the
// response with a minimal HTTP/1.1 parser, so nearly all measured cost is
// the daemon's.
//
// The CI load-smoke job runs this against an in-process daemon and
// enforces a throughput floor and a p99 bound — the perf claim as a
// regression gate rather than a README number.
package loadtest

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"github.com/webdep/webdep/internal/obs"
)

// Config drives one load run.
type Config struct {
	// Addr is the daemon's host:port. Ignored when Handler is set.
	Addr string
	// Handler, when set, drives requests in process through the HTTP
	// handler instead of the wire: the full request path — parse, cache
	// lookup, metrics, body write — without kernel socket I/O. This is
	// how the throughput-capacity gate stays meaningful on a one-core CI
	// runner, where the wire mode spends most of the core in the kernel
	// and the harness itself.
	Handler http.Handler
	// Path is the request target, e.g. "/api/scores?layer=hosting".
	Path string
	// Conns is how many concurrent keep-alive connections to drive.
	Conns int
	// Duration is the measured window.
	Duration time.Duration
	// Warmup runs before measurement starts, so cold-cache renders and
	// connection setup never pollute the quantiles.
	Warmup time.Duration
}

// Result is one load run's aggregate.
type Result struct {
	Requests           int64         // completed 200s inside the window
	Errors             int64         // non-200s, short reads, connection failures
	Elapsed            time.Duration // actual measured window
	Throughput         float64       // Requests / Elapsed, in req/s
	P50, P90, P99, Max float64       // request latency quantile estimates, ms
}

func (r Result) String() string {
	return fmt.Sprintf("%d requests in %v = %.0f req/s (p50 %.3fms p90 %.3fms p99 %.3fms max %.3fms, %d errors)",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput, r.P50, r.P90, r.P99, r.Max, r.Errors)
}

// worker owns one connection and its private tallies — nothing shared,
// nothing atomic, so the harness itself scales linearly with Conns.
type worker struct {
	requests int64
	errors   int64
	lat      *obs.Histogram
}

// Run drives the daemon at cfg.Addr until the duration elapses and
// returns the aggregate. It only errors on misconfiguration; request
// failures are counted, not fatal, so a saturated accept queue shows up
// as numbers rather than a dead run.
func Run(cfg Config) (Result, error) {
	if (cfg.Addr == "" && cfg.Handler == nil) || cfg.Path == "" {
		return Result{}, fmt.Errorf("loadtest: Path and one of Addr or Handler are required")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}

	req := []byte("GET " + cfg.Path + " HTTP/1.1\r\nHost: " + cfg.Addr + "\r\nConnection: keep-alive\r\n\r\n")
	var hurl *url.URL
	if cfg.Handler != nil {
		u, err := url.ParseRequestURI(cfg.Path)
		if err != nil {
			return Result{}, fmt.Errorf("loadtest: bad path: %w", err)
		}
		hurl = u
	}

	drive := func(w *worker, d time.Duration) {
		if cfg.Handler != nil {
			w.driveInproc(cfg.Handler, hurl, d)
		} else {
			w.drive(cfg.Addr, req, d)
		}
	}

	// Warmup outside the measured window: one connection exercising the
	// path (rendering any cold cache key) before the fleet starts.
	if cfg.Warmup > 0 {
		drive(&worker{lat: newLatencyHistogram()}, cfg.Warmup)
	}

	workers := make([]*worker, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range workers {
		w := &worker{lat: newLatencyHistogram()}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			drive(w, cfg.Duration)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{Elapsed: elapsed}
	merged := newLatencyHistogram()
	for _, w := range workers {
		res.Requests += w.requests
		res.Errors += w.errors
		mergeHistogram(merged, w.lat)
	}
	res.Throughput = float64(res.Requests) / elapsed.Seconds()
	snap := merged.Snapshot()
	res.P50 = snap.Quantile(0.50)
	res.P90 = snap.Quantile(0.90)
	res.P99 = snap.Quantile(0.99)
	res.Max = snap.Max
	return res, nil
}

// newLatencyHistogram builds a per-worker millisecond histogram on the
// toolkit's duration buckets — private to the worker, merged after the
// run, so observation is a few array writes with no sharing.
func newLatencyHistogram() *obs.Histogram {
	return obs.NewRegistry().Timing("loadtest.request.ms")
}

// mergeHistogram folds src's buckets into dst via snapshot replay.
func mergeHistogram(dst, src *obs.Histogram) {
	snap := src.Snapshot()
	for i, n := range snap.Counts {
		if n == 0 {
			continue
		}
		// Re-observe a value inside the bucket: its upper bound (or the
		// histogram max for +Inf). Quantile estimates stay bucket-accurate.
		v := snap.Max
		if i < len(snap.Bounds) {
			v = snap.Bounds[i]
		}
		for ; n > 0; n-- {
			dst.Observe(v)
		}
	}
}

// drive issues back-to-back requests on one keep-alive connection until
// the deadline. A broken connection is re-dialed; persistent failure
// burns into the error count at a bounded rate rather than spinning.
func (w *worker) drive(addr string, req []byte, d time.Duration) {
	deadline := time.Now().Add(d)
	var conn net.Conn
	var br *bufio.Reader
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for time.Now().Before(deadline) {
		if conn == nil {
			c, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				w.errors++
				time.Sleep(5 * time.Millisecond)
				continue
			}
			conn = c
			br = bufio.NewReaderSize(conn, 16<<10)
		}
		t0 := time.Now()
		if _, err := conn.Write(req); err != nil {
			w.errors++
			conn.Close()
			conn = nil
			continue
		}
		ok, err := readResponse(br)
		if err != nil {
			w.errors++
			conn.Close()
			conn = nil
			continue
		}
		if !ok {
			w.errors++
			continue
		}
		w.requests++
		w.lat.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	}
}

// nullWriter is the in-process mode's ResponseWriter: body bytes are
// counted as delivered and dropped, the status is kept for the error
// tally. Each worker owns one, so there is no sharing to serialize on.
type nullWriter struct {
	h      http.Header
	status int
}

func (w *nullWriter) Header() http.Header         { return w.h }
func (w *nullWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullWriter) WriteHeader(status int)      { w.status = status }

// driveInproc issues back-to-back requests straight into the handler.
// The request is built per worker: http.ServeMux records its route match
// in the request itself, so sharing one across goroutines is a data race.
func (w *worker) driveInproc(h http.Handler, u *url.URL, d time.Duration) {
	wu := *u
	req := &http.Request{Method: http.MethodGet, URL: &wu}
	rw := &nullWriter{h: make(http.Header)}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		rw.status = 0
		t0 := time.Now()
		h.ServeHTTP(rw, req)
		if rw.status != 0 && rw.status != http.StatusOK {
			w.errors++
			continue
		}
		w.requests++
		w.lat.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	}
}

// readResponse scans one HTTP/1.1 response off the wire: status line,
// headers for Content-Length, then a body discard. Returns whether the
// status was 200. Only the framing webdepd emits is supported — this is
// a harness, not a client.
func readResponse(br *bufio.Reader) (ok bool, err error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return false, err
	}
	// "HTTP/1.1 200 OK\r\n" — status code is bytes 9..12.
	if len(line) < 12 {
		return false, fmt.Errorf("short status line %q", line)
	}
	status := string(line[9:12])

	contentLength := -1
	for {
		line, err = br.ReadSlice('\n')
		if err != nil {
			return false, err
		}
		if len(bytes.TrimRight(line, "\r\n")) == 0 {
			break
		}
		if v, found := cutHeader(line, "Content-Length:"); found {
			contentLength, err = strconv.Atoi(v)
			if err != nil {
				return false, fmt.Errorf("bad Content-Length %q", v)
			}
		}
	}
	if contentLength < 0 {
		return false, fmt.Errorf("response without Content-Length")
	}
	if _, err := br.Discard(contentLength); err != nil {
		return false, err
	}
	return status == "200", nil
}

// cutHeader matches a header line case-insensitively on its name and
// returns the trimmed value.
func cutHeader(line []byte, name string) (string, bool) {
	if len(line) < len(name) {
		return "", false
	}
	for i := 0; i < len(name); i++ {
		c := line[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		n := name[i]
		if 'A' <= n && n <= 'Z' {
			n += 'a' - 'A'
		}
		if c != n {
			return "", false
		}
	}
	return string(bytes.TrimSpace(line[len(name):])), true
}
