//go:build !race

package loadtest

const raceEnabled = false
