package divergence

import (
	"math"
	"math/rand"
	"testing"
)

// Property-based checks over randomized distributions, seeded so failures
// reproduce deterministically.

const propertyTrials = 200

func newRand() *rand.Rand { return rand.New(rand.NewSource(97)) }

type metric struct {
	name string
	fn   func(p, q []float64) (float64, error)
	hi   float64 // upper bound of the metric's range
}

func metrics() []metric {
	return []metric{
		{"KL", KL, math.Inf(1)},
		{"JensenShannon", JensenShannon, math.Ln2},
		{"Hellinger", Hellinger, 1},
		{"TotalVariation", TotalVariation, 1},
	}
}

func TestDivergenceBounds(t *testing.T) {
	rng := newRand()
	for trial := 0; trial < propertyTrials; trial++ {
		n := 2 + rng.Intn(30)
		p, q := randomDist(rng, n), randomDist(rng, n)
		for _, m := range metrics() {
			d, err := m.fn(p, q)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, m.name, err)
			}
			if d < 0 || d > m.hi+1e-12 {
				t.Fatalf("trial %d: %s = %v outside [0, %v]", trial, m.name, d, m.hi)
			}
		}
	}
}

func TestDivergenceSelfIsZero(t *testing.T) {
	rng := newRand()
	for trial := 0; trial < propertyTrials; trial++ {
		p := randomDist(rng, 2+rng.Intn(30))
		for _, m := range metrics() {
			d, err := m.fn(p, p)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, m.name, err)
			}
			// Hellinger's sqrt(1−bc) amplifies bc's last-ulp error to ~1e-8,
			// so the zero tolerance is looser than elsewhere.
			if math.Abs(d) > 1e-7 {
				t.Fatalf("trial %d: %s(p, p) = %v, want 0", trial, m.name, d)
			}
		}
	}
}

func TestDivergenceSymmetric(t *testing.T) {
	rng := newRand()
	for trial := 0; trial < propertyTrials; trial++ {
		n := 2 + rng.Intn(30)
		p, q := randomDist(rng, n), randomDist(rng, n)
		// KL is famously asymmetric; the symmetric three must not be.
		for _, m := range metrics()[1:] {
			ab, err1 := m.fn(p, q)
			ba, err2 := m.fn(q, p)
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d: %s: %v / %v", trial, m.name, err1, err2)
			}
			if math.Abs(ab-ba) > 1e-12 {
				t.Fatalf("trial %d: %s(p,q)=%v but %s(q,p)=%v", trial, m.name, ab, m.name, ba)
			}
		}
	}
}

func TestDivergencePermutationInvariant(t *testing.T) {
	rng := newRand()
	for trial := 0; trial < propertyTrials; trial++ {
		n := 2 + rng.Intn(30)
		p, q := randomDist(rng, n), randomDist(rng, n)
		perm := rng.Perm(n)
		pp, qp := make([]float64, n), make([]float64, n)
		for i, k := range perm {
			pp[i], qp[i] = p[k], q[k]
		}
		for _, m := range metrics() {
			want, err1 := m.fn(p, q)
			got, err2 := m.fn(pp, qp)
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d: %s: %v / %v", trial, m.name, err1, err2)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d: %s changed under permutation: %v -> %v", trial, m.name, want, got)
			}
		}
	}
}

// TestDivergenceConcentrationMonotonic walks the mixture path
// p_t = (1−t)·uniform + t·δ₀ from the uniform distribution toward full
// concentration on one slot. Every f-divergence from uniform is convex in p
// and zero at t=0, hence non-decreasing along the path: on a shared support
// the divergences do order distributions by concentration (contrast with
// the disjoint-support saturation test below).
func TestDivergenceConcentrationMonotonic(t *testing.T) {
	rng := newRand()
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		u := uniform(n)
		for _, m := range metrics() {
			prev := -1.0
			for _, tt := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
				p := make([]float64, n)
				for i := range p {
					p[i] = (1 - tt) * u[i]
				}
				p[0] += tt
				d, err := m.fn(p, u)
				if err != nil {
					t.Fatalf("trial %d: %s at t=%v: %v", trial, m.name, tt, err)
				}
				if tt == 0 && math.Abs(d) > 1e-7 {
					t.Fatalf("trial %d: %s(uniform, uniform) = %v, want 0", trial, m.name, d)
				}
				if d < prev-1e-9 {
					t.Fatalf("trial %d: %s decreased along concentration path at t=%v: %v -> %v",
						trial, m.name, tt, prev, d)
				}
				prev = d
			}
		}
	}
}

// TestDivergenceSaturatesOnDisjointSupport reproduces the paper's Section
// 3.1 objection: against the DISJOINT decentralized reference, every
// divergence reports its saturation constant no matter how concentrated the
// observed distribution is — a mildly and a wildly centralized observation
// are indistinguishable.
func TestDivergenceSaturatesOnDisjointSupport(t *testing.T) {
	rng := newRand()
	for trial := 0; trial < 50; trial++ {
		// Observed: random concentration. Reference: one pile per website.
		nProviders := 1 + rng.Intn(10)
		observed := make([]float64, nProviders)
		var total float64
		for i := range observed {
			observed[i] = float64(1 + rng.Intn(20))
			total += observed[i]
		}
		reference := make([]float64, int(total))
		for i := range reference {
			reference[i] = 1
		}
		p, q := DisjointSupport(observed, reference)

		if d, err := KL(p, q); err != nil || !math.IsInf(d, 1) {
			t.Fatalf("trial %d: KL = %v (err %v), want +Inf", trial, d, err)
		}
		if d, err := JensenShannon(p, q); err != nil || math.Abs(d-math.Ln2) > 1e-9 {
			t.Fatalf("trial %d: JS = %v (err %v), want ln 2", trial, d, err)
		}
		if d, err := Hellinger(p, q); err != nil || math.Abs(d-1) > 1e-9 {
			t.Fatalf("trial %d: Hellinger = %v (err %v), want 1", trial, d, err)
		}
		if d, err := TotalVariation(p, q); err != nil || math.Abs(d-1) > 1e-9 {
			t.Fatalf("trial %d: TV = %v (err %v), want 1", trial, d, err)
		}
	}
}
