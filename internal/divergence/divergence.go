// Package divergence implements the f-divergence family the paper considers
// and rejects for measuring centralization: Kullback–Leibler divergence,
// Jensen–Shannon divergence, Hellinger distance, and total variation
// distance.
//
// Section 3.1 argues these are unsuitable because an f-divergence between
// two fully disjoint distributions is constant (saturated), so it cannot
// discriminate between a mildly and a wildly concentrated observed
// distribution when compared against the fully decentralized reference. The
// toolkit keeps them as baselines so the argument can be reproduced
// empirically (experiment X5 in DESIGN.md).
package divergence

import (
	"errors"
	"math"
)

// ErrLengthMismatch is returned when the two distributions have different
// support sizes.
var ErrLengthMismatch = errors.New("divergence: distributions differ in length")

// ErrNotDistribution is returned when an input does not sum to 1 (within
// tolerance) or has negative mass.
var ErrNotDistribution = errors.New("divergence: input is not a probability distribution")

const sumTolerance = 1e-6

func validate(p, q []float64) error {
	if len(p) != len(q) {
		return ErrLengthMismatch
	}
	for _, dist := range [][]float64{p, q} {
		var sum float64
		for _, v := range dist {
			if v < 0 {
				return ErrNotDistribution
			}
			sum += v
		}
		if math.Abs(sum-1) > sumTolerance {
			return ErrNotDistribution
		}
	}
	return nil
}

// Normalize converts nonnegative counts into a probability distribution. It
// returns nil for an empty or all-zero input.
func Normalize(counts []float64) []float64 {
	var sum float64
	for _, c := range counts {
		if c > 0 {
			sum += c
		}
	}
	if sum == 0 {
		return nil
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		if c > 0 {
			out[i] = c / sum
		}
	}
	return out
}

// KL returns the Kullback–Leibler divergence D(p‖q) in nats. It is +Inf
// when p has mass where q does not — precisely the failure mode that makes
// it unusable against a disjoint decentralized reference.
func KL(p, q []float64) (float64, error) {
	if err := validate(p, q); err != nil {
		return 0, err
	}
	var d float64
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1), nil
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	return d, nil
}

// JensenShannon returns the Jensen–Shannon divergence between p and q in
// nats. It is symmetric and bounded by ln 2, which it attains for any pair
// of fully disjoint distributions — the saturation the paper objects to.
func JensenShannon(p, q []float64) (float64, error) {
	if err := validate(p, q); err != nil {
		return 0, err
	}
	var d float64
	for i := range p {
		m := (p[i] + q[i]) / 2
		if p[i] > 0 {
			d += 0.5 * p[i] * math.Log(p[i]/m)
		}
		if q[i] > 0 {
			d += 0.5 * q[i] * math.Log(q[i]/m)
		}
	}
	return d, nil
}

// Hellinger returns the Hellinger distance H(p, q) ∈ [0, 1]. It equals 1
// exactly when p and q are disjoint.
func Hellinger(p, q []float64) (float64, error) {
	if err := validate(p, q); err != nil {
		return 0, err
	}
	var bc float64 // Bhattacharyya coefficient
	for i := range p {
		bc += math.Sqrt(p[i] * q[i])
	}
	if bc > 1 {
		bc = 1
	}
	return math.Sqrt(1 - bc), nil
}

// TotalVariation returns the total variation distance ½·Σ|p_i − q_i|
// ∈ [0, 1]. It equals 1 exactly when p and q are disjoint.
func TotalVariation(p, q []float64) (float64, error) {
	if err := validate(p, q); err != nil {
		return 0, err
	}
	var d float64
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d / 2, nil
}

// DisjointSupport embeds two count vectors on a shared support with no
// overlap: the observed counts occupy the first len(observed) slots and the
// reference counts the following len(reference) slots. This models the
// paper's comparison setting, where the observed provider distribution and
// the hypothetical one-provider-per-website reference share no providers.
func DisjointSupport(observed, reference []float64) (p, q []float64) {
	n := len(observed) + len(reference)
	p = make([]float64, n)
	q = make([]float64, n)
	copy(p, Normalize(observed))
	qn := Normalize(reference)
	copy(q[len(observed):], qn)
	return p, q
}
