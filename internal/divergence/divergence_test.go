package divergence

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/webdep/webdep/internal/emd"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func uniform(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}

func randomDist(rng *rand.Rand, n int) []float64 {
	counts := make([]float64, n)
	for i := range counts {
		counts[i] = rng.Float64() + 1e-6
	}
	return Normalize(counts)
}

func TestValidateErrors(t *testing.T) {
	if _, err := KL([]float64{1}, []float64{0.5, 0.5}); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
	if _, err := KL([]float64{0.7, 0.7}, []float64{0.5, 0.5}); err != ErrNotDistribution {
		t.Errorf("sum>1: want ErrNotDistribution, got %v", err)
	}
	if _, err := KL([]float64{-0.5, 1.5}, []float64{0.5, 0.5}); err != ErrNotDistribution {
		t.Errorf("negative mass: want ErrNotDistribution, got %v", err)
	}
}

func TestKLSelfIsZero(t *testing.T) {
	p := uniform(4)
	d, err := KL(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0, 1e-12) {
		t.Errorf("KL(p,p) = %v, want 0", d)
	}
}

func TestKLInfOnMissingSupport(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0, 0.5, 0.5}
	d, err := KL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Errorf("KL on disjoint support = %v, want +Inf", d)
	}
}

func TestKLKnownValue(t *testing.T) {
	p := []float64{0.75, 0.25}
	q := []float64{0.5, 0.5}
	d, err := KL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.75*math.Log(1.5) + 0.25*math.Log(0.5)
	if !almostEqual(d, want, 1e-12) {
		t.Errorf("KL = %v, want %v", d, want)
	}
}

func TestJensenShannonSymmetricBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		p := randomDist(rng, n)
		q := randomDist(rng, n)
		a, errA := JensenShannon(p, q)
		b, errB := JensenShannon(q, p)
		if errA != nil || errB != nil {
			return false
		}
		return almostEqual(a, b, 1e-12) && a >= -1e-12 && a <= math.Ln2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHellingerBounds(t *testing.T) {
	p := uniform(3)
	d, err := Hellinger(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0, 1e-9) {
		t.Errorf("Hellinger(p,p) = %v", d)
	}
	disjointP := []float64{1, 0}
	disjointQ := []float64{0, 1}
	d, err = Hellinger(disjointP, disjointQ)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 1, 1e-12) {
		t.Errorf("Hellinger disjoint = %v, want 1", d)
	}
}

func TestTotalVariationKnown(t *testing.T) {
	d, err := TotalVariation([]float64{0.8, 0.2}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0.3, 1e-12) {
		t.Errorf("TV = %v, want 0.3", d)
	}
}

func TestNormalize(t *testing.T) {
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) should be nil")
	}
	if Normalize([]float64{0, 0}) != nil {
		t.Error("Normalize(zeros) should be nil")
	}
	p := Normalize([]float64{2, 6})
	if !almostEqual(p[0], 0.25, 1e-12) || !almostEqual(p[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v", p)
	}
	// Negative entries are dropped rather than producing negative mass.
	p = Normalize([]float64{-3, 1})
	if p[0] != 0 || p[1] != 1 {
		t.Errorf("Normalize with negatives = %v", p)
	}
}

func TestDisjointSupportShape(t *testing.T) {
	p, q := DisjointSupport([]float64{3, 1}, []float64{1, 1, 1, 1})
	if len(p) != 6 || len(q) != 6 {
		t.Fatalf("support sizes: %d %d", len(p), len(q))
	}
	// p lives entirely in the first two slots, q in the last four.
	if p[0] != 0.75 || p[1] != 0.25 || p[2] != 0 {
		t.Errorf("p = %v", p)
	}
	if q[0] != 0 || q[2] != 0.25 || q[5] != 0.25 {
		t.Errorf("q = %v", q)
	}
}

// TestPaperSection31SaturationArgument reproduces the paper's core claim:
// every f-divergence is constant across fully disjoint comparisons, so it
// cannot rank observed distributions against the decentralized reference,
// while EMD (the centralization score) discriminates them cleanly.
func TestPaperSection31SaturationArgument(t *testing.T) {
	mild := []float64{3, 3, 2, 2}                        // fairly flat
	wild := []float64{9, 1}                              // heavily concentrated
	reference := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1} // C=10 decentralized

	type result struct{ mild, wild float64 }
	results := map[string]result{}

	for name, fn := range map[string]func(p, q []float64) (float64, error){
		"js":        JensenShannon,
		"hellinger": Hellinger,
		"tv":        TotalVariation,
	} {
		pm, qm := DisjointSupport(mild, reference)
		dm, err := fn(pm, qm)
		if err != nil {
			t.Fatalf("%s mild: %v", name, err)
		}
		pw, qw := DisjointSupport(wild, reference)
		dw, err := fn(pw, qw)
		if err != nil {
			t.Fatalf("%s wild: %v", name, err)
		}
		results[name] = result{dm, dw}
	}

	// Saturation: each f-divergence gives the same (maximal) value for both.
	if r := results["js"]; !almostEqual(r.mild, math.Ln2, 1e-9) || !almostEqual(r.wild, math.Ln2, 1e-9) {
		t.Errorf("JS should saturate at ln2 on disjoint supports: %+v", r)
	}
	if r := results["hellinger"]; !almostEqual(r.mild, 1, 1e-9) || !almostEqual(r.wild, 1, 1e-9) {
		t.Errorf("Hellinger should saturate at 1: %+v", r)
	}
	if r := results["tv"]; !almostEqual(r.mild, 1, 1e-9) || !almostEqual(r.wild, 1, 1e-9) {
		t.Errorf("TV should saturate at 1: %+v", r)
	}

	// KL is infinite for both — also useless.
	pm, qm := DisjointSupport(mild, reference)
	if d, _ := KL(pm, qm); !math.IsInf(d, 1) {
		t.Errorf("KL mild = %v, want +Inf", d)
	}

	// EMD, in contrast, discriminates: the wild distribution is farther
	// from decentralization than the mild one.
	sMild := emd.Centralization(mild)
	sWild := emd.Centralization(wild)
	if sMild >= sWild {
		t.Errorf("EMD failed to discriminate: mild %v >= wild %v", sMild, sWild)
	}
}
