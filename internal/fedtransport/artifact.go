// Package fedtransport moves a federated crawl across machine boundaries:
// shard assignments travel from the coordinator to remote vantage workers
// over HTTP, and each vantage's finished checkpoint journal travels back
// as an HMAC-signed artifact. The journals were already the wire protocol
// (shard-descriptor headers, CRC-framed records, typed refusal of foreign
// or corrupt files); this package adds the two things a real network
// demands on top: authenticity — a vantage cannot forge another's results,
// nor replay last generation's journal as this one's — and delivery
// tolerance, with every transport call retried, circuit-broken, and
// per-attempt-bounded through internal/resilience, and artifacts admitted
// to the merge directory whenever they arrive, even after the wave that
// requested them moved on.
//
// # Artifact format
//
//	"WDEPART1" (8 bytes)
//	u32le meta length | u32le CRC32(meta) | meta JSON
//	u64le journal length | journal bytes (a complete checkpoint journal)
//	32-byte HMAC-SHA256 trailer
//
// The MAC is keyed per vantage and covers every byte before it — the
// magic, the framed meta (worker, generation, epoch, disarm flag), and the
// embedded journal in full, shard-descriptor header and every CRC frame
// included. Verification therefore rejects any bit flip anywhere in the
// envelope or the journal before a single frame is parsed.
package fedtransport

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"github.com/webdep/webdep/internal/checkpoint"
)

// artifactMagic identifies a journal artifact; the trailing digit is the
// envelope format generation.
var artifactMagic = []byte("WDEPART1")

const (
	// macSize is the HMAC-SHA256 trailer length.
	macSize = sha256.Size
	// maxMetaBytes bounds the framed meta record; real metas are a few
	// hundred bytes.
	maxMetaBytes = 1 << 20
	// MaxArtifactBytes bounds a whole artifact (and therefore the journal a
	// coordinator will buffer to verify). Far above any real shard journal,
	// low enough that a hostile length prefix cannot balloon memory.
	MaxArtifactBytes = 1 << 30
)

// Meta is the artifact's signed envelope header: which vantage produced
// the journal, for which dispatch generation of which campaign, and
// whether the vantage's journal disarmed mid-crawl (in which case the
// artifact carries the durable prefix, and the worker must be treated as
// dead).
type Meta struct {
	Version   int      `json:"version"`
	Worker    string   `json:"worker"`
	Gen       int      `json:"gen"`
	Epoch     string   `json:"epoch"`
	Countries []string `json:"countries"`
	Disarmed  bool     `json:"disarmed,omitempty"`
}

// metaVersion is the envelope version this build writes and accepts.
const metaVersion = 1

// RefusalKind names why a coordinator refused an artifact. Each kind is
// dual-recorded as a fedtransport.refusals.<kind> counter by the Client.
type RefusalKind string

const (
	// RefusedForged: the HMAC trailer does not verify under the vantage's
	// key — a forgery, a bit flip, or a signature by the wrong key.
	RefusedForged RefusalKind = "forged"
	// RefusedTruncated: the artifact ends before its own structure says it
	// should — a cut-short transfer.
	RefusedTruncated RefusalKind = "truncated"
	// RefusedReplayed: the signature verifies but the signed meta names a
	// different worker or generation than this dispatch — a stale or
	// cross-worker replay of a genuine artifact.
	RefusedReplayed RefusalKind = "replayed"
	// RefusedForeign: the signed meta belongs to another campaign (epoch,
	// country set) or another envelope version.
	RefusedForeign RefusalKind = "foreign"
	// RefusedCorrupt: the structure is intact and, where checkable, the
	// signature verifies, yet the content does not parse — bad magic,
	// trailing garbage, an undecodable meta, or an embedded journal the
	// checkpoint scanner refuses. A signed-but-corrupt artifact means the
	// vantage itself shipped damage.
	RefusedCorrupt RefusalKind = "corrupt"
)

// RefusalError is the typed refusal of one artifact. Admission code must
// refuse with one of these — never silently skip — so a partial corpus can
// always be traced to named, counted refusals.
type RefusalError struct {
	Kind   RefusalKind
	Worker string // the worker the artifact was expected from
	Reason string
}

func (e *RefusalError) Error() string {
	return fmt.Sprintf("fedtransport: artifact from %q refused (%s): %s", e.Worker, e.Kind, e.Reason)
}

// Expect pins what a verified artifact must prove it is: signed with this
// key, produced by this worker for this generation of this campaign.
type Expect struct {
	Key       []byte
	Worker    string
	Gen       int
	Epoch     string
	Countries []string
}

// Artifact is a verified artifact: the decoded meta, the embedded journal
// bytes (ready for atomic admission to the merge directory), and what the
// checkpoint scanner found in them.
type Artifact struct {
	Meta    Meta
	Journal []byte
	Info    *checkpoint.JournalInfo
}

// frame wraps a payload in the u32le length + u32le CRC32 framing shared
// with the checkpoint journal format.
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// WriteArtifact streams a signed artifact: the journal is read exactly
// once and the HMAC is computed incrementally, so a vantage can ship a
// large journal without holding the envelope in memory. journalLen must be
// the journal's exact byte length; a mismatch aborts with an error rather
// than emitting an artifact whose structure lies about itself.
func WriteArtifact(w io.Writer, key []byte, meta Meta, journalLen int64, journal io.Reader) error {
	if len(key) == 0 {
		return fmt.Errorf("fedtransport: artifact signing needs a non-empty key")
	}
	if journalLen < 0 {
		return fmt.Errorf("fedtransport: negative journal length %d", journalLen)
	}
	meta.Version = metaVersion
	mb, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	mac := hmac.New(sha256.New, key)
	out := io.MultiWriter(w, mac)
	if _, err := out.Write(artifactMagic); err != nil {
		return err
	}
	if _, err := out.Write(frame(mb)); err != nil {
		return err
	}
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(journalLen))
	if _, err := out.Write(lenBuf[:]); err != nil {
		return err
	}
	n, err := io.Copy(out, journal)
	if err != nil {
		return err
	}
	if n != journalLen {
		return fmt.Errorf("fedtransport: journal is %d bytes, caller declared %d", n, journalLen)
	}
	_, err = w.Write(mac.Sum(nil))
	return err
}

// VerifyArtifact checks an artifact's structure, signature, and identity
// against what the coordinator dispatched, in that order: structural
// truncation is detected first (a cut-short transfer is transient and
// worth re-fetching), then the HMAC over every preceding byte (constant
// time; any mismatch is a forgery), then the signed identity (campaign,
// worker, generation), and finally the embedded journal through the
// checkpoint scanner — including that the journal's own shard descriptor
// agrees with the signed meta, so a vantage cannot sign one identity
// around a journal claiming another.
//
// Every failure is a *RefusalError naming its kind.
func VerifyArtifact(data []byte, exp Expect) (*Artifact, error) {
	refuse := func(kind RefusalKind, format string, args ...any) (*Artifact, error) {
		return nil, &RefusalError{Kind: kind, Worker: exp.Worker, Reason: fmt.Sprintf(format, args...)}
	}
	// Structure first: magic, framed meta, journal length, MAC trailer.
	if len(data) < len(artifactMagic) {
		if equalPrefix(data, artifactMagic) {
			return refuse(RefusedTruncated, "%d bytes is shorter than the artifact magic", len(data))
		}
		return refuse(RefusedCorrupt, "not a journal artifact (bad magic)")
	}
	if !equalPrefix(data[:len(artifactMagic)], artifactMagic) {
		return refuse(RefusedCorrupt, "not a journal artifact (bad magic)")
	}
	off := len(artifactMagic)
	if len(data)-off < 8 {
		return refuse(RefusedTruncated, "artifact ends inside the meta frame header")
	}
	metaLen := int(binary.LittleEndian.Uint32(data[off:]))
	metaSum := binary.LittleEndian.Uint32(data[off+4:])
	if metaLen > maxMetaBytes {
		return refuse(RefusedCorrupt, "meta length %d exceeds maximum %d", metaLen, maxMetaBytes)
	}
	metaStart := off + 8
	metaEnd := metaStart + metaLen
	if len(data) < metaEnd+8 {
		return refuse(RefusedTruncated, "artifact ends inside the meta record")
	}
	journalLen64 := binary.LittleEndian.Uint64(data[metaEnd:])
	if journalLen64 > MaxArtifactBytes {
		return refuse(RefusedCorrupt, "journal length %d exceeds maximum %d", journalLen64, int64(MaxArtifactBytes))
	}
	journalStart := metaEnd + 8
	journalEnd := journalStart + int(journalLen64)
	total := journalEnd + macSize

	// The MAC trailer is checked against the last 32 bytes before anything
	// signed is trusted; hmac.Equal compares in constant time. When the MAC
	// fails, the structural lengths distinguish a cut-short transfer (worth
	// re-fetching) from genuine tampering (authoritative, never retried);
	// when the structural lengths themselves were flipped in flight, the
	// artifact simply looks truncated or garbled — refused either way.
	macOK := len(data) >= macSize && func() bool {
		mac := hmac.New(sha256.New, exp.Key)
		mac.Write(data[:len(data)-macSize])
		return hmac.Equal(mac.Sum(nil), data[len(data)-macSize:])
	}()
	switch {
	case !macOK && len(data) < total:
		return refuse(RefusedTruncated, "artifact is %d bytes, its structure says %d", len(data), total)
	case !macOK && len(data) > total:
		return refuse(RefusedCorrupt, "%d trailing bytes after the signature", len(data)-total)
	case !macOK:
		return refuse(RefusedForged, "HMAC-SHA256 signature does not verify under this vantage's key")
	case len(data) != total:
		// A genuine signature around a structure that misdescribes itself:
		// the vantage signed garbage.
		return refuse(RefusedCorrupt, "artifact is %d bytes but its signed structure says %d", len(data), total)
	}

	// The signature is genuine; now the signed content must make sense and
	// match this dispatch.
	metaPayload := data[metaStart:metaEnd]
	if crc32.ChecksumIEEE(metaPayload) != metaSum {
		return refuse(RefusedCorrupt, "signed meta record fails its checksum")
	}
	var meta Meta
	if err := json.Unmarshal(metaPayload, &meta); err != nil {
		return refuse(RefusedCorrupt, "undecodable signed meta: %v", err)
	}
	if meta.Version != metaVersion {
		return refuse(RefusedForeign, "artifact version %d, this build reads version %d", meta.Version, metaVersion)
	}
	if meta.Epoch != exp.Epoch {
		return refuse(RefusedForeign, "artifact epoch %q, campaign epoch %q", meta.Epoch, exp.Epoch)
	}
	if !sortedEqual(meta.Countries, exp.Countries) {
		return refuse(RefusedForeign, "artifact countries %v, campaign countries %v", meta.Countries, exp.Countries)
	}
	if meta.Worker != exp.Worker || meta.Gen != exp.Gen {
		return refuse(RefusedReplayed, "artifact signed for worker %q gen %d, this dispatch is worker %q gen %d",
			meta.Worker, meta.Gen, exp.Worker, exp.Gen)
	}

	journal := data[journalStart:journalEnd]
	info, err := checkpoint.InspectBytes(journal, "artifact:"+exp.Worker)
	if err != nil {
		var ce *checkpoint.CorruptError
		if errors.As(err, &ce) {
			return refuse(RefusedCorrupt, "embedded journal: %s at offset %d", ce.Reason, ce.Offset)
		}
		return refuse(RefusedCorrupt, "embedded journal: %v", err)
	}
	if info.Epoch == "" && info.Shard == nil {
		// No header survived. Only a disarmed vantage — killed before its
		// header made it to disk — legitimately ships a headerless journal.
		if !meta.Disarmed {
			return refuse(RefusedCorrupt, "embedded journal carries no header and the vantage did not report a disarm")
		}
	} else {
		if info.Epoch != meta.Epoch || !sortedEqual(info.Countries, meta.Countries) {
			return refuse(RefusedCorrupt, "embedded journal header (epoch %q, %v) contradicts the signed meta (epoch %q, %v)",
				info.Epoch, info.Countries, meta.Epoch, meta.Countries)
		}
		if info.Shard == nil {
			return refuse(RefusedCorrupt, "embedded journal is not a shard journal")
		}
		if info.Shard.Worker != meta.Worker || info.Shard.Gen != meta.Gen {
			return refuse(RefusedReplayed, "embedded journal descriptor %s contradicts the signed meta (worker %q gen %d)",
				info.Shard, meta.Worker, meta.Gen)
		}
	}
	return &Artifact{Meta: meta, Journal: journal, Info: info}, nil
}

func equalPrefix(a, b []byte) bool {
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
