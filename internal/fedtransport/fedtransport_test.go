package fedtransport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/faultinject"
	"github.com/webdep/webdep/internal/fedcrawl"
	"github.com/webdep/webdep/internal/liveworld"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/resilience"
	"github.com/webdep/webdep/internal/resolver"
	"github.com/webdep/webdep/internal/tlsscan"
	"github.com/webdep/webdep/internal/worldgen"
)

// The transport suite extends PR 7's federation invariant across a real
// HTTP wire: shard assignments and signed journal artifacts travel through
// a fault-injecting proxy (drops, resets, 5xx bursts, truncated bodies,
// latency), vantage workers are killed at exact journal offsets, and the
// asynchronous-arrival merge must still be byte-identical to the unsharded
// fault-free corpus.

var ftCCs = []string{"CZ", "TH"}

const ftSites = 5

func ftWorld(t *testing.T) (*worldgen.World, *liveworld.Endpoints) {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{
		Seed:               7,
		SitesPerCountry:    ftSites,
		Countries:          ftCCs,
		DomesticPerCountry: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := liveworld.Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	return w, ep
}

func ftFactory(w *worldgen.World, ep *liveworld.Endpoints) func() *pipeline.Live {
	return func() *pipeline.Live {
		dns := resolver.NewClient(ep.DNSAddr)
		dns.Timeout = 200 * time.Millisecond
		return &pipeline.Live{
			Pipeline:       pipeline.FromWorld(w),
			DNS:            dns,
			Scanner:        tlsscan.New(w.Owners),
			TLSAddr:        ep.TLSAddr,
			Workers:        4,
			DetectLanguage: true,
		}
	}
}

func ftBaseline(t *testing.T, w *worldgen.World, ep *liveworld.Endpoints) *dataset.Corpus {
	t.Helper()
	live := ftFactory(w, ep)()
	live.Workers = 8
	corpus, err := live.CrawlCorpus(context.Background(), artEpoch, ftCCs,
		func(cc string) []string { return w.Truth.Get(cc).Domains() }, nil)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

func ftAssertConverged(t *testing.T, label string, want, got *dataset.Corpus) {
	t.Helper()
	for _, cc := range ftCCs {
		b, g := want.Get(cc), got.Get(cc)
		if g == nil {
			t.Fatalf("%s: %s missing from merged corpus", label, cc)
		}
		if len(b.Sites) != len(g.Sites) {
			t.Fatalf("%s: %s has %d sites, want %d", label, cc, len(g.Sites), len(b.Sites))
		}
		for i := range b.Sites {
			if g.Sites[i] != b.Sites[i] {
				t.Fatalf("%s: %s site %d differs:\n fault-free %+v\n merged     %+v",
					label, cc, i, b.Sites[i], g.Sites[i])
			}
		}
		cov := got.CoverageOf(cc)
		if cov == nil || cov.Fraction() != 1 || cov.Degraded {
			t.Fatalf("%s: %s coverage %+v, want full", label, cc, cov)
		}
	}
	for _, layer := range countries.Layers {
		ws, gs := want.Scores(layer), got.Scores(layer)
		for cc, v := range ws {
			if gs[cc] != v {
				t.Fatalf("%s: %v score for %s = %v, fault-free run says %v", label, layer, cc, gs[cc], v)
			}
		}
	}
}

// ftFederation is one fully wired remote federation: per-worker vantage
// servers, each behind its own fault proxy, and a transport client feeding
// a coordinator.
type ftFederation struct {
	dir     string
	keys    map[string][]byte
	proxies map[string]*faultinject.HTTPProxy
	client  *Client
	cfg     fedcrawl.Config
	reg     *obs.Registry
}

// ftPolicy is the client posture every transport test shares: enough
// attempts to ride out mod-pattern faults, tight backoff, per-vantage
// breakers generous enough that transient wire damage alone never retires
// a worker.
func ftPolicy(reg *obs.Registry) *resilience.Policy {
	return &resilience.Policy{
		MaxAttempts:    10,
		BaseDelay:      time.Millisecond,
		MaxDelay:       10 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
		Breakers:       resilience.NewBreakerSet(25, 10*time.Millisecond),
		Obs:            reg,
	}
}

func ftFederate(t *testing.T, w *worldgen.World, ep *liveworld.Endpoints, workers []string,
	plan faultinject.HTTPPlan, wrap func(worker string, gen int, ws checkpoint.WriteSyncer) checkpoint.WriteSyncer) *ftFederation {
	t.Helper()
	f := &ftFederation{
		dir:     t.TempDir(),
		keys:    map[string][]byte{},
		proxies: map[string]*faultinject.HTTPProxy{},
		reg:     obs.NewRegistry(),
	}
	urls := map[string]string{}
	for _, worker := range workers {
		key := []byte("key-" + worker)
		f.keys[worker] = key
		v, err := ServeVantage("127.0.0.1:0", VantageConfig{
			Key:         key,
			NewLive:     ftFactory(w, ep),
			Obs:         obs.NewRegistry(),
			WrapJournal: wrap,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { v.Close() })
		p, err := faultinject.NewHTTP(v.Addr, plan)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		f.proxies[worker] = p
		urls[worker] = "http://" + p.Addr
	}
	client, err := NewClient(ClientConfig{
		Workers:   workers,
		URL:       urls,
		Key:       f.keys,
		Dir:       f.dir,
		Epoch:     artEpoch,
		Countries: ftCCs,
		Policy:    ftPolicy(f.reg),
		Obs:       f.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	f.client = client
	f.cfg = fedcrawl.Config{
		Epoch:     artEpoch,
		Countries: ftCCs,
		DomainsOf: func(cc string) []string { return w.Truth.Get(cc).Domains() },
		Workers:   len(workers),
		Dir:       f.dir,
		Dispatch:  client.Dispatcher(),
		Obs:       f.reg,
	}
	return f
}

func (f *ftFederation) run(t *testing.T, label string) *fedcrawl.Result {
	t.Helper()
	c, err := fedcrawl.New(f.cfg)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return res
}

// TestTransportFederationCleanWire is the fault-free end-to-end: three
// remote vantages, HTTP dispatch, signed artifacts, byte-identical merge,
// and zero refusals.
func TestTransportFederationCleanWire(t *testing.T) {
	w, ep := ftWorld(t)
	want := ftBaseline(t, w, ep)
	f := ftFederate(t, w, ep, []string{"w0", "w1", "w2"}, faultinject.HTTPPlan{}, nil)
	res := f.run(t, "clean")
	ftAssertConverged(t, "clean", want, res.Corpus)

	st := f.client.Stats()
	if st.Dispatches == 0 || st.Admitted == 0 {
		t.Errorf("stats = %+v: the clean run must dispatch and admit", st)
	}
	if st.Refusals != (RefusalStats{}) || st.WorkerDeaths != 0 {
		t.Errorf("stats = %+v: a clean wire refused artifacts or killed workers", st)
	}
	for _, p := range f.proxies {
		if s := p.Stats(); s.Forwarded == 0 || s.Dropped+s.Reset+s.Fail5xx+s.Truncated != 0 {
			t.Errorf("proxy stats = %+v, want clean forwards only", s)
		}
	}
}

// TestTransportKillPointSweep is the acceptance sweep: every HTTP fault
// pattern — clean, drops, latency, truncated bodies, connection resets,
// 5xx bursts — crossed with vantage w1 killed at every journal write
// boundary of its first generation (and three bytes into every record),
// and every single variant must merge to the exact corpus of the unsharded
// fault-free run.
func TestTransportKillPointSweep(t *testing.T) {
	w, ep := ftWorld(t)
	want := ftBaseline(t, w, ep)

	patterns := []struct {
		name string
		plan faultinject.HTTPPlan
	}{
		{"clean", faultinject.HTTPPlan{}},
		{"drop", faultinject.HTTPPlan{DropMod: 3, DropModUnder: 1}},
		{"latency", faultinject.HTTPPlan{Latency: 15 * time.Millisecond}},
		{"truncate", faultinject.HTTPPlan{TruncateMod: 2, TruncateModUnder: 1, TruncateBytes: 40}},
		{"reset", faultinject.HTTPPlan{ResetMod: 3, ResetModUnder: 1}},
		{"5xx", faultinject.HTTPPlan{Fail5xxMod: 2, Fail5xxModUnder: 1}},
	}

	// w1's first-generation journal: magic + header + one write per
	// assigned site (two countries × one middle shard of 2 sites each).
	// Sweeping one past the end covers the "kill never fires" edge.
	totalWrites := 2 + 2*len(ftCCs)
	stride := 1
	if testing.Short() {
		stride = 3
	}
	for _, pat := range patterns {
		for kill := 0; kill <= totalWrites; kill += stride {
			for _, extra := range []int64{0, 3} {
				label := fmt.Sprintf("%s/kill=%d+%db", pat.name, kill, extra)
				wrap := func(worker string, gen int, ws checkpoint.WriteSyncer) checkpoint.WriteSyncer {
					if worker == "w1" && gen == 1 {
						return faultinject.NewKillWriter(ws, kill, extra, nil)
					}
					return ws
				}
				f := ftFederate(t, w, ep, []string{"w0", "w1", "w2"}, pat.plan, wrap)
				res := f.run(t, label)
				ftAssertConverged(t, label, want, res.Corpus)
				if n := res.Merge.MergeRefusalsForeign + res.Merge.MergeRefusalsCorrupt; n != 0 {
					t.Fatalf("%s: final merge refused %d journals of its own federation", label, n)
				}
			}
		}
	}
}

// TestTransportFixedFaultSmoke is the CI smoke variant (fixed seed, one
// run): drops, truncated bodies, and connection resets on every vantage's
// wire at once, w1 killed three bytes into its fifth journal write — full
// convergence plus exact dual-recording of the client's accounting in the
// fedtransport.* obs counters.
func TestTransportFixedFaultSmoke(t *testing.T) {
	w, ep := ftWorld(t)
	want := ftBaseline(t, w, ep)

	// Per-vantage exchange schedule: seq 0 dropped, seq 1 forwarded, seq 2
	// truncated, seq 3 reset, seq 4 truncated, seq 5 forwarded, ...
	plan := faultinject.HTTPPlan{
		DropFirst: 1,
		ResetMod:  3, ResetModUnder: 1,
		TruncateMod: 2, TruncateModUnder: 1, TruncateBytes: 64,
	}
	wrap := func(worker string, gen int, ws checkpoint.WriteSyncer) checkpoint.WriteSyncer {
		if worker == "w1" && gen == 1 {
			return faultinject.NewKillWriter(ws, 4, 3, nil)
		}
		return ws
	}
	f := ftFederate(t, w, ep, []string{"w0", "w1", "w2"}, plan, wrap)
	res := f.run(t, "fixed-fault")
	ftAssertConverged(t, "fixed-fault", want, res.Corpus)

	if res.Stats.WorkerDeaths == 0 {
		t.Error("the killed vantage was never declared dead")
	}
	var truncated, dropped int
	for _, p := range f.proxies {
		s := p.Stats()
		truncated += s.Truncated
		dropped += s.Dropped + s.Reset
	}
	if truncated == 0 || dropped == 0 {
		t.Errorf("proxies truncated %d and dropped/reset %d exchanges; the smoke must exercise both", truncated, dropped)
	}

	// Dual-recording: the obs channel must agree exactly with the client's
	// own atomic accounting.
	st := f.client.Stats()
	checks := map[string]int64{
		"fedtransport.dispatches":         st.Dispatches,
		"fedtransport.admitted":           st.Admitted,
		"fedtransport.detached_arrivals":  st.DetachedArrivals,
		"fedtransport.worker_deaths":      st.WorkerDeaths,
		"fedtransport.refusals.forged":    st.Refusals.Forged,
		"fedtransport.refusals.truncated": st.Refusals.Truncated,
		"fedtransport.refusals.replayed":  st.Refusals.Replayed,
		"fedtransport.refusals.foreign":   st.Refusals.Foreign,
		"fedtransport.refusals.corrupt":   st.Refusals.Corrupt,
	}
	for name, wantN := range checks {
		if got := f.reg.Counter(name).Value(); got != wantN {
			t.Errorf("%s = %d, client accounting says %d", name, got, wantN)
		}
	}
	if st.Refusals.Truncated == 0 {
		t.Errorf("stats = %+v: truncated bodies must surface as counted truncation refusals", st)
	}
	if st.Admitted == 0 || st.Dispatches == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// hostileVantage answers every assignment with a plausible artifact signed
// by the WRONG key — a vantage (or a man in the middle) trying to feed the
// coordinator results it cannot vouch for.
func hostileVantage(t *testing.T, journal []byte, meta Meta) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if err := WriteArtifact(rw, []byte("not-the-shared-key"), meta,
			int64(len(journal)), bytes.NewReader(journal)); err != nil {
			t.Logf("hostile vantage write: %v", err)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestTransportRefusesHostileVantage: one vantage forges, the survivors
// converge; every vantage forges, the federation fails loudly with an
// empty merge directory — never a silently partial corpus.
func TestTransportRefusesHostileVantage(t *testing.T) {
	w, ep := ftWorld(t)
	want := ftBaseline(t, w, ep)
	journal := testJournal(t, "w1", 1, 2)

	f := ftFederate(t, w, ep, []string{"w0", "w1", "w2"}, faultinject.HTTPPlan{}, nil)
	hostile := hostileVantage(t, journal, Meta{Worker: "w1", Gen: 1, Epoch: artEpoch, Countries: ftCCs})
	f.cfg.Dispatch = nil // rebuild below with the hostile URL spliced in
	urls := map[string]string{}
	for worker, p := range f.proxies {
		urls[worker] = "http://" + p.Addr
	}
	urls["w1"] = hostile.URL
	client, err := NewClient(ClientConfig{
		Workers:   []string{"w0", "w1", "w2"},
		URL:       urls,
		Key:       f.keys,
		Dir:       f.dir,
		Epoch:     artEpoch,
		Countries: ftCCs,
		Policy:    ftPolicy(f.reg),
		Obs:       f.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	f.cfg.Dispatch = client.Dispatcher()
	res := f.run(t, "one-hostile")
	ftAssertConverged(t, "one-hostile", want, res.Corpus)
	st := client.Stats()
	if st.Refusals.Forged == 0 {
		t.Errorf("stats = %+v: the forged artifact was never refused as forged", st)
	}
	if st.WorkerDeaths == 0 || res.Stats.WorkerDeaths == 0 {
		t.Error("the hostile vantage was never retired")
	}
	if got := f.reg.Counter("fedtransport.refusals.forged").Value(); got != st.Refusals.Forged {
		t.Errorf("obs forged = %d, client accounting says %d", got, st.Refusals.Forged)
	}

	// Every vantage hostile: the federation must fail, not merge garbage.
	dir := t.TempDir()
	reg := obs.NewRegistry()
	allURLs := map[string]string{}
	keys := map[string][]byte{}
	for _, worker := range []string{"w0", "w1"} {
		h := hostileVantage(t, journal, Meta{Worker: worker, Gen: 1, Epoch: artEpoch, Countries: ftCCs})
		allURLs[worker] = h.URL
		keys[worker] = []byte("key-" + worker)
	}
	badClient, err := NewClient(ClientConfig{
		Workers: []string{"w0", "w1"}, URL: allURLs, Key: keys,
		Dir: dir, Epoch: artEpoch, Countries: ftCCs,
		Policy: ftPolicy(reg), Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(badClient.Close)
	c, err := fedcrawl.New(fedcrawl.Config{
		Epoch: artEpoch, Countries: ftCCs,
		DomainsOf: func(cc string) []string { return w.Truth.Get(cc).Domains() },
		Workers:   2, Dir: dir, Dispatch: badClient.Dispatcher(), Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("an all-hostile federation produced a corpus")
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.journal")); len(files) != 0 {
		t.Errorf("forged artifacts were admitted: %v", files)
	}
}

// TestTransportDetachedArrival pins the asynchronous-arrival contract: a
// dispatch whose wave is cancelled returns the context error immediately,
// but the delivery detaches and the signed artifact is verified and
// admitted whenever it lands — the coordinator's next durable-state scan
// finds the journal without ever having been told about it.
func TestTransportDetachedArrival(t *testing.T) {
	w, ep := ftWorld(t)
	f := ftFederate(t, w, ep, []string{"w0"}, faultinject.HTTPPlan{Latency: 150 * time.Millisecond}, nil)

	jobs := []pipeline.SiteJob{}
	for i, d := range w.Truth.Get("TH").Domains() {
		jobs = append(jobs, pipeline.SiteJob{Country: "TH", Domain: d, Rank: i + 1})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := f.client.dispatch(ctx, "w0", 1, jobs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled dispatch returned %v, want the wave context's error", err)
	}
	if st := f.client.Stats(); st.DetachedArrivals != 1 {
		t.Fatalf("stats = %+v, want one detached arrival", st)
	}

	// The detached delivery must still land the journal, atomically and
	// verified.
	path := filepath.Join(f.dir, "w0-g1.journal")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detached artifact never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := checkpoint.InspectBytes(data, path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard == nil || info.Shard.Worker != "w0" || info.Shard.Gen != 1 {
		t.Errorf("admitted journal header = %+v", info)
	}
	if st := f.client.Stats(); st.Admitted != 1 {
		t.Errorf("stats = %+v, want the detached artifact admitted", st)
	}
}

// TestTransportAssignmentAuthentication: a vantage only works for the
// holder of its key — unsigned or missigned assignments are refused with
// 403 and counted, and a client with the wrong key loses that worker but
// not the federation.
func TestTransportAssignmentAuthentication(t *testing.T) {
	w, ep := ftWorld(t)
	reg := obs.NewRegistry()
	v, err := ServeVantage("127.0.0.1:0", VantageConfig{
		Key:     []byte("right-key"),
		NewLive: ftFactory(w, ep),
		Obs:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })

	resp, err := http.Post("http://"+v.Addr+"/crawl", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unsigned assignment answered %d, want 403", resp.StatusCode)
	}
	if got := reg.Counter("fedtransport.vantage.bad_signatures").Value(); got != 1 {
		t.Errorf("bad_signatures = %d, want 1", got)
	}

	// A client that signs with the wrong key: the vantage's 403 is
	// authoritative, the worker is declared dead after one attempt.
	dir := t.TempDir()
	creg := obs.NewRegistry()
	client, err := NewClient(ClientConfig{
		Workers: []string{"w0"},
		URL:     map[string]string{"w0": "http://" + v.Addr},
		Key:     map[string][]byte{"w0": []byte("wrong-key")},
		Dir:     dir, Epoch: artEpoch, Countries: ftCCs,
		Policy: ftPolicy(creg), Obs: creg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	err = client.dispatch(context.Background(), "w0", 1, nil)
	if !errors.Is(err, fedcrawl.ErrWorkerDead) {
		t.Fatalf("missigned dispatch returned %v, want a worker death", err)
	}
	if p := client.Policy().Stats(); p.Attempts != 1 {
		t.Errorf("policy attempts = %d; a 403 is permanent and must not be retried", p.Attempts)
	}
}

func TestClientConfigValidation(t *testing.T) {
	base := func() ClientConfig {
		return ClientConfig{
			Workers:   []string{"w0"},
			URL:       map[string]string{"w0": "http://127.0.0.1:1"},
			Key:       map[string][]byte{"w0": []byte("k")},
			Dir:       "/tmp/x",
			Epoch:     artEpoch,
			Countries: ftCCs,
		}
	}
	cases := []struct {
		name   string
		mutate func(*ClientConfig)
	}{
		{"no workers", func(c *ClientConfig) { c.Workers = nil }},
		{"no dir", func(c *ClientConfig) { c.Dir = "" }},
		{"no epoch", func(c *ClientConfig) { c.Epoch = "" }},
		{"missing url", func(c *ClientConfig) { c.URL = nil }},
		{"missing key", func(c *ClientConfig) { c.Key = nil }},
		{"duplicate worker", func(c *ClientConfig) { c.Workers = []string{"w0", "w0"} }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		if _, err := NewClient(cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
	cfg := base()
	client, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.dispatch(context.Background(), "w9", 1, nil); err == nil ||
		errors.Is(err, fedcrawl.ErrWorkerDead) {
		t.Errorf("unknown worker returned %v, want a plain configuration error", err)
	}
}
