package fedtransport

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/pipeline"
)

// sigHeader carries the hex HMAC-SHA256 of the request body, keyed with
// the vantage's key, on shard-assignment requests. A vantage refuses any
// assignment whose signature does not verify — only its coordinator can
// put it to work.
const sigHeader = "X-Webdep-Signature"

// maxAssignmentBytes bounds a shard-assignment request body.
const maxAssignmentBytes = 1 << 26

// Assignment is the coordinator's signed dispatch to one vantage: crawl
// these jobs for this campaign, journal them under this shard identity,
// ship the journal back signed.
type Assignment struct {
	Worker    string             `json:"worker"`
	Index     int                `json:"index"`
	Total     int                `json:"total"`
	Gen       int                `json:"gen"`
	Epoch     string             `json:"epoch"`
	Countries []string           `json:"countries"`
	Jobs      []pipeline.SiteJob `json:"jobs"`
}

// signBody is the shared assignment-signing primitive: hex HMAC-SHA256
// over the exact request body bytes.
func signBody(key, body []byte) string {
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	return hex.EncodeToString(mac.Sum(nil))
}

// VantageConfig wires one remote vantage worker.
type VantageConfig struct {
	// Key signs every artifact this vantage ships and authenticates the
	// assignments it accepts. Required.
	Key []byte
	// NewLive builds the vantage's crawl pipeline, exactly as fedcrawl's
	// in-process workers do. The vantage owns the returned Live and sets
	// its Checkpoint. Required.
	NewLive func() *pipeline.Live
	// Dir is the scratch directory for in-progress shard journals. Empty
	// means a private temp directory, removed on Close.
	Dir string
	// Obs selects the metrics registry (nil means obs.Default()).
	Obs *obs.Registry
	// WrapJournal, when non-nil, wraps each shard journal's WriteSyncer —
	// the same fault-injection seam fedcrawl's in-process workers expose,
	// so tests can kill a REMOTE vantage at an exact journal offset.
	WrapJournal func(worker string, gen int, ws checkpoint.WriteSyncer) checkpoint.WriteSyncer
}

func (cfg *VantageConfig) reg() *obs.Registry {
	if cfg.Obs != nil {
		return cfg.Obs
	}
	return obs.Default()
}

// VantageServer is a running vantage worker: an HTTP endpoint that accepts
// signed shard assignments, crawls them through its own checkpointed
// pipeline, and answers each with a signed journal artifact. A journal
// disarm mid-crawl does not fail the exchange: the vantage ships whatever
// prefix is durable, with the disarm declared in the signed meta, so the
// coordinator can admit the partial work AND retire the worker.
type VantageServer struct {
	// Addr is the server's "host:port".
	Addr string

	cfg     VantageConfig
	srv     *http.Server
	ln      net.Listener
	done    chan struct{}
	seq     atomic.Int64
	tempDir string

	assignments   *obs.Counter
	badSignatures *obs.Counter
	artifacts     *obs.Counter
	disarms       *obs.Counter
}

// ServeVantage starts a vantage worker on addr ("host:port", with ":0"
// picking a free port).
func ServeVantage(addr string, cfg VantageConfig) (*VantageServer, error) {
	if len(cfg.Key) == 0 {
		return nil, fmt.Errorf("fedtransport: vantage needs a signing key")
	}
	if cfg.NewLive == nil {
		return nil, fmt.Errorf("fedtransport: vantage needs a Live factory")
	}
	v := &VantageServer{cfg: cfg, done: make(chan struct{})}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "webdep-vantage-*")
		if err != nil {
			return nil, fmt.Errorf("fedtransport: vantage scratch dir: %w", err)
		}
		v.cfg.Dir = dir
		v.tempDir = dir
	}
	reg := cfg.reg()
	v.assignments = reg.Counter("fedtransport.vantage.assignments")
	v.badSignatures = reg.Counter("fedtransport.vantage.bad_signatures")
	v.artifacts = reg.Counter("fedtransport.vantage.artifacts")
	v.disarms = reg.Counter("fedtransport.vantage.disarms")

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fedtransport: vantage listener: %w", err)
	}
	v.ln = ln
	v.Addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /crawl", v.handleCrawl)
	v.srv = &http.Server{Handler: mux}
	go func() {
		defer close(v.done)
		_ = v.srv.Serve(ln)
	}()
	return v, nil
}

// Close stops the vantage, severing in-flight exchanges (which cancels
// their crawls through the request context), and removes its private
// scratch directory if it created one.
func (v *VantageServer) Close() error {
	err := v.srv.Close()
	<-v.done
	if v.tempDir != "" {
		os.RemoveAll(v.tempDir)
	}
	return err
}

func (v *VantageServer) handleCrawl(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxAssignmentBytes))
	if err != nil {
		http.Error(w, "fedtransport: reading assignment: "+err.Error(), http.StatusBadRequest)
		return
	}
	sig, err := hex.DecodeString(r.Header.Get(sigHeader))
	mac := hmac.New(sha256.New, v.cfg.Key)
	mac.Write(body)
	if err != nil || !hmac.Equal(mac.Sum(nil), sig) {
		v.badSignatures.Inc()
		http.Error(w, "fedtransport: assignment signature does not verify", http.StatusForbidden)
		return
	}
	var a Assignment
	if err := json.Unmarshal(body, &a); err != nil {
		http.Error(w, "fedtransport: undecodable assignment: "+err.Error(), http.StatusBadRequest)
		return
	}
	if a.Worker == "" || a.Epoch == "" || a.Gen < 1 || a.Total < 1 {
		http.Error(w, "fedtransport: assignment is missing its shard identity", http.StatusBadRequest)
		return
	}
	v.assignments.Inc()

	path, meta, err := v.crawl(r.Context(), a)
	if path != "" {
		defer os.Remove(path)
	}
	if err != nil {
		if r.Context().Err() != nil {
			// The coordinator hung up; there is nobody to answer.
			return
		}
		http.Error(w, "fedtransport: crawl failed: "+err.Error(), http.StatusInternalServerError)
		return
	}

	f, err := os.Open(path)
	if err != nil {
		http.Error(w, "fedtransport: reading journal: "+err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		http.Error(w, "fedtransport: reading journal: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(artifactSize(meta, st.Size())))
	if err := WriteArtifact(w, v.cfg.Key, meta, st.Size(), f); err != nil {
		// Headers are out; all we can do is cut the connection short, which
		// the coordinator refuses as a truncated artifact and retries.
		return
	}
	v.artifacts.Inc()
	if meta.Disarmed {
		v.disarms.Inc()
	}
}

// artifactSize is the exact envelope size WriteArtifact will emit, so the
// response can carry an honest Content-Length and a cut-short transfer is
// detectable at the receiving end.
func artifactSize(meta Meta, journalLen int64) int64 {
	meta.Version = metaVersion
	mb, _ := json.Marshal(meta)
	return int64(len(artifactMagic)) + 8 + int64(len(mb)) + 8 + journalLen + macSize
}

// crawl runs one assignment through a fresh shard journal in the scratch
// directory and returns the journal path plus the signed meta describing
// it. It mirrors fedcrawl's in-process worker exactly: a journal disarm
// cancels the crawl and is reported — not an error, because the durable
// prefix is still worth shipping — while any other crawl failure is.
func (v *VantageServer) crawl(ctx context.Context, a Assignment) (string, Meta, error) {
	meta := Meta{Worker: a.Worker, Gen: a.Gen, Epoch: a.Epoch, Countries: a.Countries}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	opts := &checkpoint.Options{
		Obs:      v.cfg.reg(),
		OnDisarm: func(error) { cancel() },
	}
	if v.cfg.WrapJournal != nil {
		opts.WrapWriter = func(ws checkpoint.WriteSyncer) checkpoint.WriteSyncer {
			return v.cfg.WrapJournal(a.Worker, a.Gen, ws)
		}
	}
	// Scratch names carry a per-request sequence so a retried dispatch of
	// the same (worker, gen) never collides with a crawl still draining.
	path := filepath.Join(v.cfg.Dir, fmt.Sprintf("%s-g%d-r%d.journal", a.Worker, a.Gen, v.seq.Add(1)))
	sh := &checkpoint.ShardInfo{Worker: a.Worker, Index: a.Index, Total: a.Total, Gen: a.Gen}
	j, err := checkpoint.CreateShard(path, a.Epoch, a.Countries, sh, opts)
	if err != nil {
		return "", meta, err
	}
	live := v.cfg.NewLive()
	if live.Obs == nil {
		live.Obs = v.cfg.reg()
	}
	live.Checkpoint = j
	_, _, crawlErr := live.CrawlJobs(cctx, a.Epoch, a.Countries, a.Jobs)
	disarmed := j.Err() != nil
	closeErr := j.Close()
	if disarmed {
		// The journal died under the crawl. Whatever prefix reached disk is
		// durable and signed; the disarm flag tells the coordinator this
		// worker is done for good.
		meta.Disarmed = true
		return path, meta, nil
	}
	if crawlErr != nil {
		if errors.Is(crawlErr, context.Canceled) || errors.Is(crawlErr, context.DeadlineExceeded) {
			return path, meta, ctx.Err()
		}
		return path, meta, crawlErr
	}
	if closeErr != nil {
		return path, meta, closeErr
	}
	return path, meta, nil
}
