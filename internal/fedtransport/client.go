package fedtransport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/fedcrawl"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/resilience"
)

// ClientConfig wires the coordinator's side of the transport: where each
// vantage worker listens, which key signs its traffic, and where admitted
// journals land.
type ClientConfig struct {
	// Workers lists the vantage worker names in shard-index order; the
	// position of a name is its ShardInfo index and len(Workers) its Total.
	Workers []string
	// URL maps each worker to its vantage base URL ("http://host:port").
	URL map[string]string
	// Key maps each worker to the HMAC key shared with its vantage.
	Key map[string][]byte
	// Dir is the coordinator's journal directory: verified artifacts are
	// admitted here atomically as <worker>-g<gen>.journal, exactly where
	// fedcrawl's scan-and-merge loop reads.
	Dir string
	// Epoch and Countries pin the campaign; artifacts signed for any other
	// campaign are refused as foreign.
	Epoch     string
	Countries []string
	// Policy governs retry, backoff, per-attempt timeouts, and per-vantage
	// circuit breakers for every transport call. nil gets a modest default
	// with breakers; production callers should tune it like any other
	// resilience policy.
	Policy *resilience.Policy
	// Obs selects the metrics registry (nil means obs.Default()).
	Obs *obs.Registry
}

// clientMetrics is the obs mirror of the client's atomic Stats; every
// event is recorded in both, so tests can cross-check the emitted counters
// against ground truth.
type clientMetrics struct {
	dispatches, admitted, detached, deaths           *obs.Counter
	forged, truncated, replayed, foreign, corruptRef *obs.Counter
}

// RefusalStats counts refused artifacts by kind.
type RefusalStats struct {
	Forged, Truncated, Replayed, Foreign, Corrupt int64
}

// Stats is a point-in-time copy of the client's own atomic accounting.
type Stats struct {
	// Dispatches counts assignments handed to the transport.
	Dispatches int64
	// Admitted counts artifacts verified and atomically admitted to Dir.
	Admitted int64
	// DetachedArrivals counts dispatches whose wave moved on (straggler
	// deadline, caller cancellation) while delivery kept running; their
	// artifacts are still admitted whenever they land.
	DetachedArrivals int64
	// WorkerDeaths counts dispatches that ended in ErrWorkerDead.
	WorkerDeaths int64
	// Refusals counts refused artifacts by kind. A refused artifact may be
	// re-fetched (truncation is transient), so refusals and admissions for
	// one dispatch are not exclusive.
	Refusals RefusalStats
}

type clientCounters struct {
	dispatches, admitted, detached, deaths        atomic.Int64
	forged, truncated, replayed, foreign, corrupt atomic.Int64
}

// statusError is a non-200 vantage answer; 5xx classify transient (the
// proxy tier melting down), 4xx permanent (the vantage refused us).
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("fedtransport: vantage answered %d: %s", e.code, e.body)
}

// admitFailure marks a local admission failure — the artifact verified but
// could not be written to Dir. That is coordinator-side disk trouble, not
// the worker's fault, so it fails the federation loudly instead of
// forfeiting the shard.
type admitFailure struct{ err error }

func (e *admitFailure) Error() string { return "fedtransport: admitting artifact: " + e.err.Error() }
func (e *admitFailure) Unwrap() error { return e.err }

// Client dispatches shard assignments to remote vantages and admits their
// signed journal artifacts. Its Dispatcher plugs straight into
// fedcrawl.Config.Dispatch; all delivery runs through the resilience
// policy, and a delivery whose wave is cancelled detaches rather than
// aborts — the artifact is verified and admitted whenever it arrives,
// and the coordinator's next durable-state scan simply finds more keys
// complete than it dispatched.
type Client struct {
	cfg    ClientConfig
	index  map[string]int
	policy *resilience.Policy
	http   *http.Client
	m      clientMetrics
	stats  clientCounters

	lifeCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// NewClient validates the wiring and builds a transport client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fedtransport: client needs at least one worker")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fedtransport: client needs a journal directory")
	}
	if cfg.Epoch == "" {
		return nil, fmt.Errorf("fedtransport: client needs an epoch")
	}
	index := make(map[string]int, len(cfg.Workers))
	for i, w := range cfg.Workers {
		if _, dup := index[w]; dup {
			return nil, fmt.Errorf("fedtransport: duplicate worker %q", w)
		}
		if cfg.URL[w] == "" {
			return nil, fmt.Errorf("fedtransport: worker %q has no vantage URL", w)
		}
		if len(cfg.Key[w]) == 0 {
			return nil, fmt.Errorf("fedtransport: worker %q has no signing key", w)
		}
		index[w] = i
	}
	pol := cfg.Policy
	if pol == nil {
		pol = &resilience.Policy{
			MaxAttempts:    4,
			BaseDelay:      50 * time.Millisecond,
			MaxDelay:       2 * time.Second,
			AttemptTimeout: 30 * time.Second,
			Breakers:       resilience.NewBreakerSet(4, 5*time.Second),
			Obs:            cfg.Obs,
		}
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	c := &Client{
		cfg:    cfg,
		index:  index,
		policy: pol,
		http:   &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		m: clientMetrics{
			dispatches: reg.Counter("fedtransport.dispatches"),
			admitted:   reg.Counter("fedtransport.admitted"),
			detached:   reg.Counter("fedtransport.detached_arrivals"),
			deaths:     reg.Counter("fedtransport.worker_deaths"),
			forged:     reg.Counter("fedtransport.refusals.forged"),
			truncated:  reg.Counter("fedtransport.refusals.truncated"),
			replayed:   reg.Counter("fedtransport.refusals.replayed"),
			foreign:    reg.Counter("fedtransport.refusals.foreign"),
			corruptRef: reg.Counter("fedtransport.refusals.corrupt"),
		},
	}
	c.lifeCtx, c.cancel = context.WithCancel(context.Background())
	return c, nil
}

// Stats snapshots the client's atomic accounting.
func (c *Client) Stats() Stats {
	return Stats{
		Dispatches:       c.stats.dispatches.Load(),
		Admitted:         c.stats.admitted.Load(),
		DetachedArrivals: c.stats.detached.Load(),
		WorkerDeaths:     c.stats.deaths.Load(),
		Refusals: RefusalStats{
			Forged:    c.stats.forged.Load(),
			Truncated: c.stats.truncated.Load(),
			Replayed:  c.stats.replayed.Load(),
			Foreign:   c.stats.foreign.Load(),
			Corrupt:   c.stats.corrupt.Load(),
		},
	}
}

// Policy exposes the client's resilience policy for accounting checks.
func (c *Client) Policy() *resilience.Policy { return c.policy }

// Dispatcher returns the fedcrawl.Config.Dispatch hook.
func (c *Client) Dispatcher() func(ctx context.Context, worker string, gen int, jobs []pipeline.SiteJob) error {
	return c.dispatch
}

// Close cancels detached deliveries and waits for every delivery goroutine
// to drain. After Close the client dispatches nothing.
func (c *Client) Close() {
	c.cancel()
	c.wg.Wait()
	c.http.CloseIdleConnections()
}

// dispatch hands one wave assignment to the wire. Delivery runs on the
// client's own lifetime context: if the wave's context is cancelled first
// (straggler deadline, caller cancellation), dispatch returns the wave's
// context error — which the coordinator treats as an interrupted wave —
// while the delivery DETACHES and keeps going, admitting the artifact
// whenever it completes. The coordinator re-reads durable state between
// waves, so late-landing journals are picked up, never lost and never
// double-counted.
func (c *Client) dispatch(ctx context.Context, worker string, gen int, jobs []pipeline.SiteJob) error {
	if _, ok := c.index[worker]; !ok {
		return fmt.Errorf("fedtransport: dispatch for unknown worker %q", worker)
	}
	c.stats.dispatches.Add(1)
	c.m.dispatches.Inc()
	res := make(chan error, 1)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		res <- c.deliver(c.lifeCtx, worker, gen, jobs)
	}()
	select {
	case err := <-res:
		return err
	case <-ctx.Done():
		c.stats.detached.Add(1)
		c.m.detached.Inc()
		return ctx.Err()
	}
}

// deliver runs the full assignment → artifact → admission exchange under
// the resilience policy and maps the outcome onto fedcrawl's Dispatch
// contract: nil (journal admitted, worker fine), an error wrapping
// fedcrawl.ErrWorkerDead (worker is done — retries exhausted, circuit
// open, a permanent refusal, or a signed disarm), a context error
// (cancelled), or a bare error for coordinator-side failures that must
// fail the federation rather than forfeit a shard.
func (c *Client) deliver(ctx context.Context, worker string, gen int, jobs []pipeline.SiteJob) error {
	body, err := json.Marshal(Assignment{
		Worker:    worker,
		Index:     c.index[worker],
		Total:     len(c.cfg.Workers),
		Gen:       gen,
		Epoch:     c.cfg.Epoch,
		Countries: c.cfg.Countries,
		Jobs:      jobs,
	})
	if err != nil {
		return err
	}
	sig := signBody(c.cfg.Key[worker], body)

	var disarmed bool
	err = c.policy.DoClassified(ctx, "vantage:"+worker, classifyTransport, func(actx context.Context) error {
		art, err := c.fetch(actx, worker, gen, body, sig)
		if err != nil {
			c.countRefusal(err)
			return err
		}
		if err := c.admit(worker, gen, art); err != nil {
			return &admitFailure{err: err}
		}
		disarmed = art.Meta.Disarmed
		c.stats.admitted.Add(1)
		c.m.admitted.Inc()
		return nil
	})

	switch {
	case err == nil && !disarmed:
		return nil
	case err == nil && disarmed:
		return c.workerDeath(worker, fmt.Errorf("vantage disarmed mid-crawl; its durable prefix is admitted"))
	case ctx.Err() != nil:
		return ctx.Err()
	}
	var af *admitFailure
	if errors.As(err, &af) {
		return err
	}
	return c.workerDeath(worker, err)
}

func (c *Client) workerDeath(worker string, cause error) error {
	c.stats.deaths.Add(1)
	c.m.deaths.Inc()
	return fmt.Errorf("fedtransport: worker %s: %v: %w", worker, cause, fedcrawl.ErrWorkerDead)
}

// fetch runs one HTTP exchange: POST the signed assignment, read the
// artifact within the attempt's deadline, verify it against exactly this
// dispatch.
func (c *Client) fetch(ctx context.Context, worker string, gen int, body []byte, sig string) (*Artifact, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.cfg.URL[worker]+"/crawl", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(sigHeader, sig)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxArtifactBytes+1))
	if resp.StatusCode != http.StatusOK {
		msg := string(data)
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return nil, &statusError{code: resp.StatusCode, body: msg}
	}
	// A cut-short body — the proxy's truncation, a reset mid-stream, a
	// fired attempt deadline — still hands whatever arrived to the
	// verifier: an incomplete artifact refuses as truncated, typed and
	// counted, and classifies transient exactly like the wire error
	// itself. (If the full artifact made it despite a trailing error, the
	// verification below simply succeeds.)
	_ = err
	return VerifyArtifact(data, Expect{
		Key:       c.cfg.Key[worker],
		Worker:    worker,
		Gen:       gen,
		Epoch:     c.cfg.Epoch,
		Countries: c.cfg.Countries,
	})
}

// admit writes a verified artifact's journal into the merge directory
// under the exact name fedcrawl's durable-state scan expects, via the same
// atomic temp-write-fsync-rename every other journal goes through: the
// merge directory never holds a half-admitted artifact.
func (c *Client) admit(worker string, gen int, art *Artifact) error {
	path := filepath.Join(c.cfg.Dir, fmt.Sprintf("%s-g%d.journal", worker, gen))
	return checkpoint.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(art.Journal)
		return err
	})
}

// countRefusal dual-records a refusal under fedtransport.refusals.<kind>.
func (c *Client) countRefusal(err error) {
	var re *RefusalError
	if !errors.As(err, &re) {
		return
	}
	switch re.Kind {
	case RefusedForged:
		c.stats.forged.Add(1)
		c.m.forged.Inc()
	case RefusedTruncated:
		c.stats.truncated.Add(1)
		c.m.truncated.Inc()
	case RefusedReplayed:
		c.stats.replayed.Add(1)
		c.m.replayed.Inc()
	case RefusedForeign:
		c.stats.foreign.Add(1)
		c.m.foreign.Inc()
	case RefusedCorrupt:
		c.stats.corrupt.Add(1)
		c.m.corruptRef.Inc()
	}
}

// classifyTransport maps one delivery attempt's error onto retry classes.
// Wire damage — truncated artifacts, short reads, resets, timeouts, a 5xx
// proxy tier — is transient: the vantage may well be fine behind it. A
// forged, replayed, or foreign artifact is authoritative evidence about
// the peer and never retried, as is a signed-but-corrupt one (the vantage
// itself signed damage) and any 4xx refusal of our assignment.
func classifyTransport(err error) resilience.Class {
	if err == nil {
		return resilience.Success
	}
	var re *RefusalError
	if errors.As(err, &re) {
		if re.Kind == RefusedTruncated {
			return resilience.Transient
		}
		return resilience.Permanent
	}
	var se *statusError
	if errors.As(err, &se) {
		if se.code >= 500 {
			return resilience.Transient
		}
		return resilience.Permanent
	}
	var af *admitFailure
	if errors.As(err, &af) {
		return resilience.Permanent
	}
	return resilience.DefaultClassify(err)
}
