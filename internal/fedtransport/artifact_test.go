package fedtransport

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

const (
	artEpoch = "2023-05"
)

var (
	artCCs = []string{"CZ", "TH"}
	artKey = []byte("test-vantage-key")
)

// testJournal builds a real shard journal through the production writer
// and returns its bytes.
func testJournal(t *testing.T, worker string, gen, sites int) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), fmt.Sprintf("%s-g%d.journal", worker, gen))
	sh := &checkpoint.ShardInfo{Worker: worker, Index: 0, Total: 2, Gen: gen}
	j, err := checkpoint.CreateShard(path, artEpoch, artCCs, sh, &checkpoint.Options{Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sites; i++ {
		j.Append("TH", dataset.Website{Domain: fmt.Sprintf("d%d.th", i), Country: "TH", Rank: i + 1},
			dataset.SiteOutcome{Host: dataset.StatusOK, NS: dataset.StatusOK, CA: dataset.StatusOK, Language: dataset.StatusOK})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// signedArtifact signs a journal through the production writer.
func signedArtifact(t *testing.T, key []byte, meta Meta, journal []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, key, meta, int64(len(journal)), bytes.NewReader(journal)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// rawArtifact hand-assembles an envelope around arbitrary meta JSON, with
// a genuine HMAC — for forging contents WriteArtifact refuses to produce.
func rawArtifact(key, metaJSON, journal []byte) []byte {
	var buf bytes.Buffer
	buf.Write(artifactMagic)
	buf.Write(frame(metaJSON))
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(journal)))
	buf.Write(lenBuf[:])
	buf.Write(journal)
	mac := hmac.New(sha256.New, key)
	mac.Write(buf.Bytes())
	return mac.Sum(buf.Bytes())
}

func wantRefusal(t *testing.T, err error, kind RefusalKind) {
	t.Helper()
	var re *RefusalError
	if !errors.As(err, &re) {
		t.Fatalf("got %T (%v), want *RefusalError", err, err)
	}
	if re.Kind != kind {
		t.Fatalf("refused as %q (%v), want %q", re.Kind, re, kind)
	}
}

func artExpect(worker string, gen int) Expect {
	return Expect{Key: artKey, Worker: worker, Gen: gen, Epoch: artEpoch, Countries: artCCs}
}

func TestArtifactRoundTrip(t *testing.T) {
	journal := testJournal(t, "w0", 1, 3)
	data := signedArtifact(t, artKey, Meta{Worker: "w0", Gen: 1, Epoch: artEpoch, Countries: artCCs}, journal)
	art, err := VerifyArtifact(data, artExpect("w0", 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art.Journal, journal) {
		t.Error("verified journal bytes differ from the signed input")
	}
	if art.Meta.Worker != "w0" || art.Meta.Gen != 1 || art.Meta.Disarmed {
		t.Errorf("meta = %+v", art.Meta)
	}
	if art.Info == nil || art.Info.Sites != 3 || art.Info.Shard == nil || art.Info.Shard.Worker != "w0" {
		t.Errorf("info = %+v, want the journal's 3 sites and shard descriptor", art.Info)
	}
}

// TestArtifactRefusesForgery pins that any unauthenticated tampering —
// wrong key, or a bit flip anywhere under the signature — refuses as
// forged, before any of the tampered content is parsed.
func TestArtifactRefusesForgery(t *testing.T) {
	journal := testJournal(t, "w0", 1, 2)
	meta := Meta{Worker: "w0", Gen: 1, Epoch: artEpoch, Countries: artCCs}
	data := signedArtifact(t, artKey, meta, journal)

	_, err := VerifyArtifact(signedArtifact(t, []byte("the-wrong-key"), meta, journal), artExpect("w0", 1))
	wantRefusal(t, err, RefusedForged)

	// Flip one bit in every signed payload region: the meta JSON, the
	// journal body, and the MAC trailer itself. (A flip in a structural
	// length field instead garbles the envelope's geometry and refuses as
	// truncated or corrupt — still refused, just attributed differently.)
	for _, off := range []int{len(artifactMagic) + 8 + 2, len(artifactMagic) + 8 + 20, len(data) - macSize - 10, len(data) - 1} {
		tampered := append([]byte(nil), data...)
		tampered[off] ^= 0x01
		if _, err := VerifyArtifact(tampered, artExpect("w0", 1)); err == nil {
			t.Fatalf("bit flip at offset %d verified", off)
		} else {
			wantRefusal(t, err, RefusedForged)
		}
	}

	// A flipped magic byte is not even an artifact.
	tampered := append([]byte(nil), data...)
	tampered[0] ^= 0x01
	_, err = VerifyArtifact(tampered, artExpect("w0", 1))
	wantRefusal(t, err, RefusedCorrupt)
}

// TestArtifactTruncationSweep cuts a valid artifact at EVERY byte offset:
// each cut must refuse as truncated — never verify, never panic, never
// misreport as another kind.
func TestArtifactTruncationSweep(t *testing.T) {
	journal := testJournal(t, "w0", 1, 2)
	data := signedArtifact(t, artKey, Meta{Worker: "w0", Gen: 1, Epoch: artEpoch, Countries: artCCs}, journal)
	for cut := 0; cut < len(data); cut++ {
		if _, err := VerifyArtifact(data[:cut], artExpect("w0", 1)); err == nil {
			t.Fatalf("cut at %d of %d verified", cut, len(data))
		} else {
			wantRefusal(t, err, RefusedTruncated)
		}
	}
	_, err := VerifyArtifact(append(append([]byte(nil), data...), 0xAB), artExpect("w0", 1))
	wantRefusal(t, err, RefusedCorrupt)
}

// TestArtifactRefusesReplay pins the stale-generation and cross-worker
// replay defenses: a genuine artifact presented against the wrong dispatch
// refuses as replayed.
func TestArtifactRefusesReplay(t *testing.T) {
	journal := testJournal(t, "w0", 1, 2)
	data := signedArtifact(t, artKey, Meta{Worker: "w0", Gen: 1, Epoch: artEpoch, Countries: artCCs}, journal)

	// Yesterday's generation replayed as today's.
	_, err := VerifyArtifact(data, artExpect("w0", 2))
	wantRefusal(t, err, RefusedReplayed)
	// One worker's artifact replayed as another's.
	_, err = VerifyArtifact(data, artExpect("w1", 1))
	wantRefusal(t, err, RefusedReplayed)

	// A vantage signing one identity around a journal claiming another: the
	// signed meta matches the dispatch, the embedded shard descriptor does
	// not.
	lied := signedArtifact(t, artKey, Meta{Worker: "w1", Gen: 1, Epoch: artEpoch, Countries: artCCs}, journal)
	_, err = VerifyArtifact(lied, artExpect("w1", 1))
	wantRefusal(t, err, RefusedReplayed)
}

func TestArtifactRefusesForeign(t *testing.T) {
	journal := testJournal(t, "w0", 1, 1)
	data := signedArtifact(t, artKey, Meta{Worker: "w0", Gen: 1, Epoch: artEpoch, Countries: artCCs}, journal)

	exp := artExpect("w0", 1)
	exp.Epoch = "2024-01"
	_, err := VerifyArtifact(data, exp)
	wantRefusal(t, err, RefusedForeign)

	exp = artExpect("w0", 1)
	exp.Countries = []string{"CZ", "US"}
	_, err = VerifyArtifact(data, exp)
	wantRefusal(t, err, RefusedForeign)

	// An envelope version this build does not read.
	raw := rawArtifact(artKey, []byte(`{"version":99,"worker":"w0","gen":1,"epoch":"2023-05","countries":["CZ","TH"]}`), journal)
	_, err = VerifyArtifact(raw, artExpect("w0", 1))
	wantRefusal(t, err, RefusedForeign)
}

// TestArtifactRefusesSignedCorruption pins the RefusedCorrupt kind: the
// signature verifies, so the damage is the vantage's own — a corrupt
// embedded journal, undecodable meta, or a headerless journal with no
// disarm to excuse it.
func TestArtifactRefusesSignedCorruption(t *testing.T) {
	journal := testJournal(t, "w0", 1, 3)

	// The vantage signed a journal with a damaged interior.
	bad := append([]byte(nil), journal...)
	bad[len(bad)/2] ^= 0xFF
	data := signedArtifact(t, artKey, Meta{Worker: "w0", Gen: 1, Epoch: artEpoch, Countries: artCCs}, bad)
	_, err := VerifyArtifact(data, artExpect("w0", 1))
	wantRefusal(t, err, RefusedCorrupt)

	// Signed meta that does not decode.
	raw := rawArtifact(artKey, []byte("{not json"), journal)
	_, err = VerifyArtifact(raw, artExpect("w0", 1))
	wantRefusal(t, err, RefusedCorrupt)

	// A headerless journal without a declared disarm is damage...
	headerless := journal[:4]
	data = signedArtifact(t, artKey, Meta{Worker: "w0", Gen: 1, Epoch: artEpoch, Countries: artCCs}, headerless)
	_, err = VerifyArtifact(data, artExpect("w0", 1))
	wantRefusal(t, err, RefusedCorrupt)

	// ...but WITH the disarm flag it is a legitimately dead worker's last
	// durable bytes, and must verify.
	data = signedArtifact(t, artKey, Meta{Worker: "w0", Gen: 1, Epoch: artEpoch, Countries: artCCs, Disarmed: true}, headerless)
	art, err := VerifyArtifact(data, artExpect("w0", 1))
	if err != nil {
		t.Fatalf("disarmed headerless artifact refused: %v", err)
	}
	if !art.Meta.Disarmed || art.Info.Sites != 0 {
		t.Errorf("art = meta %+v info %+v", art.Meta, art.Info)
	}
}

// TestArtifactDisarmedPartialJournal: a disarmed vantage ships the durable
// prefix of a real journal — header intact, tail torn — and it verifies
// with the truncation visible in the info.
func TestArtifactDisarmedPartialJournal(t *testing.T) {
	journal := testJournal(t, "w0", 1, 3)
	torn := journal[:len(journal)-5]
	data := signedArtifact(t, artKey, Meta{Worker: "w0", Gen: 1, Epoch: artEpoch, Countries: artCCs, Disarmed: true}, torn)
	art, err := VerifyArtifact(data, artExpect("w0", 1))
	if err != nil {
		t.Fatal(err)
	}
	if !art.Info.Truncated || art.Info.Sites != 2 {
		t.Errorf("info = %+v, want 2 surviving sites and a torn tail", art.Info)
	}
}

func TestWriteArtifactRefusesLengthLie(t *testing.T) {
	journal := testJournal(t, "w0", 1, 1)
	var buf bytes.Buffer
	err := WriteArtifact(&buf, artKey, Meta{Worker: "w0", Gen: 1, Epoch: artEpoch},
		int64(len(journal)+7), bytes.NewReader(journal))
	if err == nil {
		t.Fatal("a journal shorter than its declared length was signed")
	}
	if err := WriteArtifact(&buf, nil, Meta{}, 0, bytes.NewReader(nil)); err == nil {
		t.Fatal("an empty signing key was accepted")
	}
}
