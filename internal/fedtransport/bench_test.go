package fedtransport

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"testing"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/faultinject"
	"github.com/webdep/webdep/internal/liveworld"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/worldgen"
)

// benchJournal builds one shard journal with n site records, in memory.
func benchJournal(b *testing.B, n int) []byte {
	b.Helper()
	dir := b.TempDir()
	path := dir + "/w0-g1.journal"
	sh := &checkpoint.ShardInfo{Worker: "w0", Index: 0, Total: 2, Gen: 1}
	j, err := checkpoint.CreateShard(path, artEpoch, artCCs, sh, &checkpoint.Options{Obs: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		j.Append("TH", dataset.Website{Domain: fmt.Sprintf("bench-%d.th", i), Country: "TH", Rank: i + 1},
			dataset.SiteOutcome{Host: dataset.StatusOK, NS: dataset.StatusOK, CA: dataset.StatusOK, Language: dataset.StatusOK})
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkArtifactSign measures signing a 1000-record shard journal into
// an artifact envelope.
func BenchmarkArtifactSign(b *testing.B) {
	journal := benchJournal(b, 1000)
	meta := Meta{Worker: "w0", Gen: 1, Epoch: artEpoch, Countries: artCCs}
	b.SetBytes(int64(len(journal)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteArtifact(io.Discard, artKey, meta, int64(len(journal)), bytes.NewReader(journal)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArtifactVerify measures full verification — signature, framing,
// and the embedded journal scan — of a 1000-record artifact.
func BenchmarkArtifactVerify(b *testing.B) {
	journal := benchJournal(b, 1000)
	var buf bytes.Buffer
	meta := Meta{Worker: "w0", Gen: 1, Epoch: artEpoch, Countries: artCCs}
	if err := WriteArtifact(&buf, artKey, meta, int64(len(journal)), bytes.NewReader(journal)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	exp := artExpectB()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VerifyArtifact(data, exp); err != nil {
			b.Fatal(err)
		}
	}
}

func artExpectB() Expect {
	return Expect{Key: artKey, Worker: "w0", Gen: 1, Epoch: artEpoch, Countries: artCCs}
}

// BenchmarkDispatchLoopback measures one full transport round trip —
// signed assignment out, crawl of an empty shard, signed artifact back,
// verification, atomic admission — against a loopback vantage behind a
// clean proxy.
func BenchmarkDispatchLoopback(b *testing.B) {
	w, err := worldgen.Build(worldgen.Config{Seed: 7, SitesPerCountry: 1, Countries: []string{"CZ", "TH"}})
	if err != nil {
		b.Fatal(err)
	}
	ep, err := liveworld.Serve(w)
	if err != nil {
		b.Fatal(err)
	}
	defer ep.Close()
	key := []byte("bench-key")
	v, err := ServeVantage("127.0.0.1:0", VantageConfig{
		Key:     key,
		NewLive: ftFactory(w, ep),
		Obs:     obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer v.Close()
	p, err := faultinject.NewHTTP(v.Addr, faultinject.HTTPPlan{})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	reg := obs.NewRegistry()
	client, err := NewClient(ClientConfig{
		Workers:   []string{"w0"},
		URL:       map[string]string{"w0": "http://" + p.Addr},
		Key:       map[string][]byte{"w0": key},
		Dir:       b.TempDir(),
		Epoch:     artEpoch,
		Countries: artCCs,
		Obs:       reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	dispatch := client.Dispatcher()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dispatch(ctx, "w0", i+1, nil); err != nil {
			b.Fatal(err)
		}
	}
}
