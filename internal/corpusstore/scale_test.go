// The million-site scale gate lives in an external test package so it can
// drive the real production stack — worldgen shell, pipeline enrichment,
// store ingestion — the way cmd/webdep does (the internal test package
// cannot import pipeline, which imports corpusstore).
package corpusstore_test

import (
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/corpusstore"
	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/depgraph"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/worldgen"
)

const (
	scaleSitesPerCountry = 6700 // × 150 countries = 1,005,000 sites
	scaleDefaultBudgetMB = 400
)

// heapWatermark samples HeapAlloc until stopped, recording the peak. The
// scale gate's budget is a watermark, not an average: one phase that
// materializes the corpus blows it even if the steady state is small.
type heapWatermark struct {
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

func watchHeap() *heapWatermark {
	hw := &heapWatermark{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(hw.done)
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			hw.sample()
			select {
			case <-hw.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return hw
}

func (hw *heapWatermark) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		old := hw.peak.Load()
		if ms.HeapAlloc <= old || hw.peak.CompareAndSwap(old, ms.HeapAlloc) {
			return
		}
	}
}

func (hw *heapWatermark) peakMB() float64 {
	close(hw.stop)
	<-hw.done
	return float64(hw.peak.Load()) / (1 << 20)
}

// TestScaleMillionSiteStore is the CI memory-budget scale gate: a
// million-site world (every country the paper models, 6700 sites each) is
// generated, enriched, and ingested into a store country by country, then
// scored AND condensed into the provider dependency graph by streaming the
// shards — all without the corpus ever being resident. The test fails if
// the heap watermark exceeds the budget
// (WEBDEP_SCALE_BUDGET_MB, default 400) or if streamed scores diverge from
// a row-scan recomputation on sampled countries.
//
// Gated behind WEBDEP_SCALE_SMOKE=1: it runs minutes, not seconds.
func TestScaleMillionSiteStore(t *testing.T) {
	if os.Getenv("WEBDEP_SCALE_SMOKE") == "" {
		t.Skip("set WEBDEP_SCALE_SMOKE=1 to run the million-site scale gate")
	}
	budgetMB := float64(scaleDefaultBudgetMB)
	if s := os.Getenv("WEBDEP_SCALE_BUDGET_MB"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("WEBDEP_SCALE_BUDGET_MB=%q: %v", s, err)
		}
		budgetMB = v
	}

	ccs := countries.Codes()
	w, err := worldgen.BuildShell(worldgen.Config{
		Seed:               1,
		SitesPerCountry:    scaleSitesPerCountry,
		DomesticPerCountry: 40,
		Countries:          ccs,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSites := int64(len(ccs)) * scaleSitesPerCountry
	if wantSites < 1_000_000 {
		t.Fatalf("world holds %d sites; the scale gate requires at least a million", wantSites)
	}

	hw := watchHeap()
	dir := t.TempDir()
	opts := &corpusstore.Options{Obs: obs.NewRegistry()}

	start := time.Now()
	sw, err := corpusstore.Create(dir, w.Config.Epoch, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.FromWorld(w)
	if err := p.MeasureWorldToStore(w, sw); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	ingestDone := time.Now()

	st, err := corpusstore.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.TotalSites(); got != wantSites {
		t.Fatalf("store holds %d sites, world generated %d", got, wantSites)
	}
	ss, err := st.Score()
	if err != nil {
		t.Fatal(err)
	}
	scoreDone := time.Now()

	// Build the provider dependency graph by streaming the same shards:
	// graph construction must fit the streaming budget too — the graph is
	// O(providers), not O(sites), so a million-site store condenses to a
	// few hundred nodes.
	g, err := depgraph.FromStore(st, &depgraph.Options{Obs: opts.Obs})
	if err != nil {
		t.Fatal(err)
	}
	gst := g.Stats()
	if gst.RowsScanned != wantSites {
		t.Fatalf("graph scanned %d rows, store holds %d", gst.RowsScanned, wantSites)
	}
	if gst.Nodes == 0 || gst.ProviderEdges == 0 {
		t.Fatalf("million-site graph is degenerate: %d nodes, %d provider edges", gst.Nodes, gst.ProviderEdges)
	}
	spofs := g.TopSPOFs(1)
	if len(spofs) == 0 || spofs[0].Radius == 0 {
		t.Fatal("million-site graph has no ranked SPOF")
	}
	if _, err := g.Simulate(spofs[0].Provider); err != nil {
		t.Fatal(err)
	}
	graphDone := time.Now()

	// Row-scan cross-check on a sampled subset: re-score each sampled
	// country from its materialized rows and demand exact equality with the
	// streamed tallies.
	sampled := []string{ccs[0], ccs[len(ccs)/4], ccs[len(ccs)/2], ccs[3*len(ccs)/4], ccs[len(ccs)-1]}
	for _, cc := range sampled {
		list, err := st.ReadList(cc)
		if err != nil {
			t.Fatal(err)
		}
		if got := int64(len(list.Sites)); got != scaleSitesPerCountry {
			t.Fatalf("%s: %d rows, want %d", cc, got, scaleSitesPerCountry)
		}
		one := dataset.NewCorpus(st.Epoch())
		one.Add(list)
		rescored := one.ScoreSet()
		for _, layer := range countries.Layers {
			want := rescored.DistributionOf(cc, layer).Score()
			got := ss.DistributionOf(cc, layer).Score()
			if got != want {
				t.Errorf("%s %v: streamed score %v, row-scan score %v", cc, layer, got, want)
			}
		}
		// Release the materialized rows before sampling the next country.
		list.Sites = nil
	}

	peakMB := hw.peakMB()
	t.Logf("scale gate: %d sites, %d countries; ingest %.1fs, score %.1fs, graph %.1fs (%d nodes, %d edges, worst SPOF %q); heap watermark %.1f MB (budget %.0f MB)",
		wantSites, len(ccs), ingestDone.Sub(start).Seconds(), scoreDone.Sub(ingestDone).Seconds(),
		graphDone.Sub(scoreDone).Seconds(), gst.Nodes, gst.ProviderEdges, spofs[0].Provider, peakMB, budgetMB)
	if peakMB > budgetMB {
		t.Fatalf("heap watermark %.1f MB exceeds the %.0f MB scale budget: the streaming path is materializing state it must not hold",
			peakMB, budgetMB)
	}
}
