package corpusstore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

func journalOpts() *checkpoint.Options {
	return &checkpoint.Options{Obs: obs.NewRegistry()}
}

// writeTestJournal journals the corpus country by country and returns the
// journal path plus the per-country appended rows (in append order — the
// order ingestion must preserve).
func writeTestJournal(t *testing.T, c *dataset.Corpus) (string, map[string][]dataset.Website) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "crawl.journal")
	ccs := c.Countries()
	j, err := checkpoint.Create(path, c.Epoch, ccs, journalOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string][]dataset.Website)
	for _, cc := range ccs {
		for _, site := range c.Get(cc).Sites {
			j.Append(cc, site, dataset.SiteOutcome{})
			rows[cc] = append(rows[cc], site)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path, rows
}

func TestIngestJournalRoundTrip(t *testing.T) {
	c := testCorpus(21, []string{"DE", "JP", "US"}, 30)
	path, rows := writeTestJournal(t, c)

	dir := filepath.Join(t.TempDir(), "store")
	info, err := IngestJournal(dir, path, testOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != c.Epoch || info.Truncated || info.Sites != 90 {
		t.Fatalf("journal info = %+v", info)
	}

	st, err := Open(dir, testOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != c.Epoch {
		t.Fatalf("store epoch %q, journal epoch %q", st.Epoch(), c.Epoch)
	}
	for cc, want := range rows {
		list, err := st.ReadList(cc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(list.Sites, want) {
			t.Fatalf("country %s: ingested rows differ from journaled rows", cc)
		}
	}
}

// TestIngestTornJournal tears the final record off a journal — the residue
// ingestion must tolerate, exactly as Resume does — and checks the store
// holds every durable record.
func TestIngestTornJournal(t *testing.T) {
	c := testCorpus(22, []string{"US"}, 25)
	path, rows := writeTestJournal(t, c)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, whole[:len(whole)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "store")
	info, err := IngestJournal(dir, path, testOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated || info.Sites != 24 {
		t.Fatalf("journal info = %+v, want truncated with 24 sites", info)
	}
	st, err := Open(dir, testOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	list, err := st.ReadList("US")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(list.Sites, rows["US"][:24]) {
		t.Fatal("ingested rows differ from the journal's durable prefix")
	}
}

// TestIngestDuplicateRefused pins the un-compacted-journal refusal: a
// journal where a resume superseded an earlier record cannot be converted
// by a record-ordered stream.
func TestIngestDuplicateRefused(t *testing.T) {
	c := testCorpus(23, []string{"US"}, 10)
	path := filepath.Join(t.TempDir(), "crawl.journal")
	j, err := checkpoint.Create(path, c.Epoch, []string{"US"}, journalOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range c.Get("US").Sites {
		j.Append("US", site, dataset.SiteOutcome{})
	}
	dup := c.Get("US").Sites[3]
	dup.HostProvider = "someone-else"
	j.Append("US", dup, dataset.SiteOutcome{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "store")
	_, err = IngestJournal(dir, path, testOpts(0))
	if err == nil || !strings.Contains(err.Error(), "Compact") {
		t.Fatalf("duplicate record not refused: %v", err)
	}
	// The aborted ingest must not leave a store behind.
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); !os.IsNotExist(err) {
		t.Fatalf("aborted ingest left a manifest: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "US.shard")); !os.IsNotExist(err) {
		t.Fatal("aborted ingest left a shard")
	}
}

func TestIngestHeaderlessJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crawl.journal")
	if err := os.WriteFile(path, []byte("WDEPC"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := IngestJournal(filepath.Join(t.TempDir(), "store"), path, testOpts(0))
	if err == nil || !strings.Contains(err.Error(), "no durable header") {
		t.Fatalf("headerless journal not refused: %v", err)
	}
}
