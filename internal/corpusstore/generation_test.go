package corpusstore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// saveGen writes a small complete store under root/name.
func saveGen(t *testing.T, root, name string) {
	t.Helper()
	c := testCorpus(3, []string{"TH"}, 20)
	if err := Save(filepath.Join(root, name), c, &Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestLatestGenerationPicksGreatestName(t *testing.T) {
	root := t.TempDir()
	for _, name := range []string{"gen-0001", "gen-0003", "gen-0002"} {
		saveGen(t, root, name)
	}
	// Noise the discovery must ignore: an in-flight atomic write, a
	// directory with no manifest yet, and a stray file.
	saveGen(t, root, "gen-9999.tmp")
	if err := os.MkdirAll(filepath.Join(root, "gen-5000"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "zz-not-a-dir"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	gens, err := Generations(root)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"gen-0001", "gen-0002", "gen-0003"}; !reflect.DeepEqual(gens, want) {
		t.Fatalf("Generations = %v, want %v", gens, want)
	}

	dir, label, err := LatestGeneration(root)
	if err != nil {
		t.Fatal(err)
	}
	if label != "gen-0003" || dir != filepath.Join(root, "gen-0003") {
		t.Fatalf("LatestGeneration = (%s, %s)", dir, label)
	}
	// The winner must actually open as a store.
	st, err := Open(dir, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != "2023-05" {
		t.Fatalf("epoch %s", st.Epoch())
	}
}

func TestLatestGenerationAcceptsBareStore(t *testing.T) {
	root := t.TempDir()
	c := testCorpus(4, []string{"US"}, 15)
	if err := Save(root, c, &Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	dir, label, err := LatestGeneration(root)
	if err != nil {
		t.Fatal(err)
	}
	if dir != root || label != "." {
		t.Fatalf("bare store resolved to (%s, %s)", dir, label)
	}
}

func TestLatestGenerationRefusesEmptyRoot(t *testing.T) {
	if _, _, err := LatestGeneration(t.TempDir()); err == nil {
		t.Fatal("empty root accepted")
	}
	if _, _, err := LatestGeneration(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing root accepted")
	}
	// A root whose only subdirectory is an incomplete ingest (no manifest)
	// must also refuse: serving half a corpus is worse than erroring.
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "gen-0001"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LatestGeneration(root); err == nil {
		t.Fatal("manifest-less generation accepted")
	}
}
