package corpusstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Generation discovery: a long-running daemon (internal/webdepd) serves
// score queries over "the newest complete corpus" and is told to reload
// when a new epoch lands. The layout contract is deliberately dumb so any
// ingestion job can satisfy it: a generation root is a directory whose
// immediate subdirectories are complete stores (each holding a
// corpus.manifest), and the generation with the lexicographically greatest
// name is current. Producers who want ordering pick sortable names
// (zero-padded sequence numbers, RFC 3339 timestamps, epoch labels) and
// write each store with Save/Create, whose manifest-last atomic protocol
// guarantees a directory either has a manifest (complete) or is still
// being written — a half-ingested generation is never "latest".
//
// For convenience a root that is itself a store (contains corpus.manifest
// directly) counts as its own single generation, so `-from-store dir` and
// `-reload-store dir` accept the same layout for the one-generation case.

// Generations lists the store generations under root in ascending name
// order. Entries that are not directories, whose names end in ".tmp"
// (in-flight atomic writes), or that do not contain a manifest yet are
// skipped — an ingest in progress is invisible until its manifest lands.
func Generations(root string) ([]string, error) {
	if _, err := os.Stat(filepath.Join(root, ManifestName)); err == nil {
		// The root is itself a complete store: one unnamed generation.
		return []string{"."}, nil
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("corpusstore: reading generation root: %w", err)
	}
	var gens []string
	for _, e := range entries {
		if !e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		if _, err := os.Stat(filepath.Join(root, e.Name(), ManifestName)); err != nil {
			continue
		}
		gens = append(gens, e.Name())
	}
	sort.Strings(gens)
	return gens, nil
}

// LatestGeneration resolves the store directory a daemon should serve:
// the generation under root with the greatest name, or root itself when it
// is a single store. The label names the generation ("." for a bare
// store) and is what the daemon reports on /api/epoch and after a reload.
func LatestGeneration(root string) (dir, label string, err error) {
	gens, err := Generations(root)
	if err != nil {
		return "", "", err
	}
	if len(gens) == 0 {
		return "", "", fmt.Errorf("corpusstore: %s holds no complete store generation (no %s anywhere)", root, ManifestName)
	}
	label = gens[len(gens)-1]
	if label == "." {
		return root, label, nil
	}
	return filepath.Join(root, label), label, nil
}
