package corpusstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/webdep/webdep/internal/dataset"
)

// FuzzShardDecode drives the shard section decoder over arbitrary bytes.
// The decoder must never panic, never report success on anything but a
// well-formed shard, and classify every failure as a *CorruptError — the
// same guarantee operators get for bit rot on real shards.
func FuzzShardDecode(f *testing.F) {
	// Seed with a genuine shard so the fuzzer starts from valid structure.
	dir := f.TempDir()
	c := testCorpus(3, []string{"US"}, 25)
	if err := Save(dir, c, testOpts(6)); err != nil {
		f.Fatal(err)
	}
	shard, err := os.ReadFile(filepath.Join(dir, "US.shard"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(shard)
	f.Add([]byte("WDEPSHD1"))
	f.Add(shard[:len(shard)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		var n int64
		rows, consumed, err := decodeShard(bytes.NewReader(data), "fuzz", nil, func(w *dataset.Website) error {
			if w.Domain == "" {
				t.Fatal("decoder delivered a row with empty domain")
			}
			n++
			return nil
		})
		if err == nil {
			if rows != n {
				t.Fatalf("decoder reported %d rows, delivered %d", rows, n)
			}
			if consumed != int64(len(data)) {
				t.Fatalf("decoder accepted %d of %d bytes without error", consumed, len(data))
			}
			return
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("decode failure is not a *CorruptError: %v", err)
		}
	})
}
