package corpusstore

import (
	"testing"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// benchCorpus is sized so per-op cost dominates setup: 8 countries of 5000
// rows is ~40k sites, large enough that block framing, interning, and CRC
// work are the measured quantities.
func benchCorpus(b *testing.B) *dataset.Corpus {
	b.Helper()
	return testCorpus(99, []string{"AU", "BR", "DE", "IN", "JP", "TH", "US", "ZA"}, 5000)
}

func benchOpts() *Options {
	return &Options{Obs: obs.NewRegistry()}
}

// BenchmarkStoreSave measures full-corpus persistence: framing, interning,
// CRC, fsync, and rename across all shards plus the manifest.
func BenchmarkStoreSave(b *testing.B) {
	c := benchCorpus(b)
	dirs := make([]string, b.N)
	for i := range dirs {
		dirs[i] = b.TempDir()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Save(dirs[i], c, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(c.TotalSites()))
}

// BenchmarkShardStream measures the decode path alone: one country's shard
// streamed row by row, no materialization.
func BenchmarkShardStream(b *testing.B) {
	c := benchCorpus(b)
	dir := b.TempDir()
	if err := Save(dir, c, benchOpts()); err != nil {
		b.Fatal(err)
	}
	st, err := Open(dir, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rows int64
		if err := st.StreamShard("US", func(*dataset.Website) error { rows++; return nil }); err != nil {
			b.Fatal(err)
		}
		if rows != 5000 {
			b.Fatalf("streamed %d rows", rows)
		}
	}
	b.SetBytes(5000)
}

// BenchmarkStoreScore measures streamed scoring of a stored corpus — the
// fixed-memory path the scale gate runs at a million sites.
func BenchmarkStoreScore(b *testing.B) {
	c := benchCorpus(b)
	dir := b.TempDir()
	if err := Save(dir, c, benchOpts()); err != nil {
		b.Fatal(err)
	}
	st, err := Open(dir, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Score(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(c.TotalSites()))
}

// BenchmarkInMemoryScore is BenchmarkStoreScore's resident baseline: the
// same corpus scored through the in-memory index, cache defeated per
// iteration, quantifying what streaming from disk costs.
func BenchmarkInMemoryScore(b *testing.B) {
	c := benchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.InvalidateScoringIndex()
		if got := len(c.ScoreSet().Countries()); got != 8 {
			b.Fatalf("scored %d countries", got)
		}
	}
	b.SetBytes(int64(c.TotalSites()))
}
