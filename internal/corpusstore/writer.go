package corpusstore

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/parallel"
)

// Writer streams one corpus into a store directory: shards are written
// country by country (concurrently if the caller wants — each ShardWriter
// is independent), buffering at most one block of rows per open shard, and
// the manifest is written last, atomically, by Close. A store is readable
// only once Close succeeds; a crash mid-ingestion leaves temp files and no
// manifest, never a half-store that Open would trust.
type Writer struct {
	dir       string
	epoch     string
	blockRows int
	m         *storeMetrics

	mu       sync.Mutex
	open     map[string]*ShardWriter
	done     map[string]manifestShard
	coverage map[string]*dataset.Coverage
	closed   bool
}

// Create starts a fresh store at dir (created if absent). It refuses to
// overwrite an existing store: a directory that already has a manifest must
// be removed by the operator first, mirroring the checkpoint journal's
// refusal to clobber.
func Create(dir, epoch string, opts *Options) (*Writer, error) {
	if epoch == "" {
		return nil, fmt.Errorf("corpusstore: store needs a non-empty epoch")
	}
	opts = opts.orDefault()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		return nil, fmt.Errorf("corpusstore: %s already holds a store; remove it first", dir)
	}
	blockRows := opts.BlockRows
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	if blockRows > maxBlockRows {
		blockRows = maxBlockRows
	}
	return &Writer{
		dir:       dir,
		epoch:     epoch,
		blockRows: blockRows,
		m:         newStoreMetrics(opts.Obs),
		open:      map[string]*ShardWriter{},
		done:      map[string]manifestShard{},
		coverage:  map[string]*dataset.Coverage{},
	}, nil
}

// Epoch returns the epoch the store is being written for.
func (w *Writer) Epoch() string { return w.epoch }

// Shard opens the writer for one country's shard. Each country may be
// opened once; distinct shards may be written concurrently, but a single
// ShardWriter is not safe for concurrent Append calls.
func (w *Writer) Shard(country string) (*ShardWriter, error) {
	name, err := shardFileName(country)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("corpusstore: writer already closed")
	}
	if _, ok := w.open[country]; ok {
		return nil, fmt.Errorf("corpusstore: shard %s is already open", country)
	}
	if _, ok := w.done[country]; ok {
		return nil, fmt.Errorf("corpusstore: shard %s was already written", country)
	}
	sw, err := newShardWriter(w, country, filepath.Join(w.dir, name), name)
	if err != nil {
		return nil, err
	}
	w.open[country] = sw
	return sw, nil
}

// Append routes one row to its country's shard, opening the shard on first
// use. It is the convenience entry for interleaved single-goroutine
// ingestion (e.g. replaying a checkpoint journal, whose records mix
// countries); it is not safe for concurrent use — parallel ingestion
// should give each goroutine its own Shard.
func (w *Writer) Append(site *dataset.Website) error {
	w.mu.Lock()
	sw := w.open[site.Country]
	w.mu.Unlock()
	if sw == nil {
		var err error
		if sw, err = w.Shard(site.Country); err != nil {
			return err
		}
	}
	return sw.Append(site)
}

// AppendList writes one country's list as a complete shard.
func (w *Writer) AppendList(list *dataset.CountryList) error {
	sw, err := w.Shard(list.Country)
	if err != nil {
		return err
	}
	for i := range list.Sites {
		if err := sw.Append(&list.Sites[i]); err != nil {
			sw.abort()
			return err
		}
	}
	return sw.Close()
}

// SetCoverage records one country's crawl coverage in the manifest.
func (w *Writer) SetCoverage(cov *dataset.Coverage) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.coverage[cov.Country] = cov
}

// finish registers a closed shard's manifest entry.
func (w *Writer) finish(country string, ms manifestShard) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.open, country)
	w.done[country] = ms
}

// Close finalizes any still-open shards and writes the manifest atomically.
// Only after Close returns nil is the directory a store.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("corpusstore: writer already closed")
	}
	stillOpen := make([]*ShardWriter, 0, len(w.open))
	for _, sw := range w.open {
		stillOpen = append(stillOpen, sw)
	}
	w.mu.Unlock()
	sort.Slice(stillOpen, func(i, j int) bool { return stillOpen[i].country < stillOpen[j].country })
	for _, sw := range stillOpen {
		if err := sw.Close(); err != nil {
			return err
		}
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	man := manifest{Version: Version, Epoch: w.epoch}
	for _, cc := range sortedKeys(w.done) {
		man.Shards = append(man.Shards, w.done[cc])
	}
	if len(w.coverage) > 0 {
		man.Coverage = w.coverage
	}
	hdr, err := json.Marshal(man)
	if err != nil {
		return err
	}
	end, err := json.Marshal(manifestEnd{Shards: len(man.Shards)})
	if err != nil {
		return err
	}
	err = checkpoint.WriteFileAtomic(filepath.Join(w.dir, ManifestName), func(out io.Writer) error {
		if _, err := out.Write(manifestMagic); err != nil {
			return err
		}
		if _, err := out.Write(frame(append([]byte{secHeader}, hdr...))); err != nil {
			return err
		}
		_, err := out.Write(frame(append([]byte{secEnd}, end...)))
		return err
	})
	if err != nil {
		return err
	}
	w.m.manifestWrites.Inc()
	return nil
}

func sortedKeys(m map[string]manifestShard) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ShardWriter encodes one country's rows into a shard file. Rows are
// buffered one block at a time (BlockRows sites), so memory is bounded by
// the block size, not the country's toplist length. Not safe for
// concurrent use.
type ShardWriter struct {
	w       *Writer
	country string
	path    string // final path
	tmpPath string
	file    string // manifest file name
	f       *os.File
	bw      *bufio.Writer
	sp      obs.Span

	syms    map[string]uint32
	nsyms   uint32
	newSyms []string // symbols first seen in the pending block

	rows    []dataset.Website // pending block, copied values
	total   int64
	written int64 // bytes written through the framer
	scratch []byte
	err     error
	closed  bool
}

func newShardWriter(w *Writer, country, path, file string) (*ShardWriter, error) {
	f, err := os.OpenFile(path+".tmp", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	sw := &ShardWriter{
		w: w, country: country, path: path, tmpPath: path + ".tmp", file: file,
		f: f, bw: bufio.NewWriter(f),
		sp:   obs.StartSpan(w.m.shardWriteMS),
		syms: map[string]uint32{},
		rows: make([]dataset.Website, 0, w.blockRows),
	}
	if err := sw.writeRaw(shardMagic); err != nil {
		sw.abort()
		return nil, err
	}
	hdr, err := json.Marshal(shardHeader{Version: Version, Epoch: w.epoch, Country: country, BlockRows: w.blockRows})
	if err != nil {
		sw.abort()
		return nil, err
	}
	if err := sw.writeSection(secHeader, hdr); err != nil {
		sw.abort()
		return nil, err
	}
	return sw, nil
}

// Country returns the country this shard holds.
func (sw *ShardWriter) Country() string { return sw.country }

// Append buffers one row, flushing a full block to disk. The row must
// belong to the shard's country and carry a non-empty domain — the two
// structural invariants every reader of the format relies on.
func (sw *ShardWriter) Append(site *dataset.Website) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return fmt.Errorf("corpusstore: shard %s already closed", sw.country)
	}
	if site.Country != sw.country {
		return sw.fail(fmt.Errorf("corpusstore: row for %q appended to shard %s", site.Country, sw.country))
	}
	if site.Domain == "" {
		return sw.fail(fmt.Errorf("corpusstore: shard %s: row with empty domain", sw.country))
	}
	sw.rows = append(sw.rows, *site)
	if len(sw.rows) >= sw.w.blockRows {
		return sw.flushBlock()
	}
	return nil
}

// Close flushes the final partial block, writes the end marker, fsyncs,
// and atomically renames the temp file into place, registering the shard
// with the store's manifest.
func (sw *ShardWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return fmt.Errorf("corpusstore: shard %s already closed", sw.country)
	}
	if len(sw.rows) > 0 {
		if err := sw.flushBlock(); err != nil {
			return err
		}
	}
	end, err := json.Marshal(shardEnd{Rows: sw.total, Symbols: int64(sw.nsyms)})
	if err != nil {
		return sw.fail(err)
	}
	if err := sw.writeSection(secEnd, end); err != nil {
		return err
	}
	if err := sw.bw.Flush(); err != nil {
		return sw.fail(err)
	}
	if err := sw.f.Sync(); err != nil {
		return sw.fail(err)
	}
	if err := sw.f.Close(); err != nil {
		sw.f = nil
		return sw.fail(err)
	}
	sw.f = nil
	if err := os.Rename(sw.tmpPath, sw.path); err != nil {
		return sw.fail(err)
	}
	if d, err := os.Open(filepath.Dir(sw.path)); err == nil {
		d.Sync()
		d.Close()
	}
	sw.closed = true
	sw.sp.End()
	sw.w.m.shardsWritten.Inc()
	sw.w.m.rowsWritten.Add(sw.total)
	sw.w.m.bytesWritten.Add(sw.written)
	sw.w.finish(sw.country, manifestShard{
		Country: sw.country, File: sw.file, Rows: sw.total, Bytes: sw.written,
	})
	return nil
}

// fail latches the first error and removes the temp file; the shard is
// unusable afterwards and never reaches the manifest.
func (sw *ShardWriter) fail(err error) error {
	if sw.err == nil {
		sw.err = err
		sw.abort()
	}
	return sw.err
}

func (sw *ShardWriter) abort() {
	if sw.f != nil {
		sw.f.Close()
		sw.f = nil
	}
	os.Remove(sw.tmpPath)
	sw.w.finishAbort(sw.country)
}

// finishAbort drops an aborted shard from the open set without adding a
// manifest entry.
func (w *Writer) finishAbort(country string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.open, country)
}

func (sw *ShardWriter) writeRaw(b []byte) error {
	n, err := sw.bw.Write(b)
	sw.written += int64(n)
	if err != nil {
		return sw.fail(err)
	}
	return nil
}

func (sw *ShardWriter) writeSection(typ byte, payload []byte) error {
	if len(payload)+1 > maxSectionBytes {
		return sw.fail(fmt.Errorf("corpusstore: shard %s: section of %d bytes exceeds maximum %d",
			sw.country, len(payload)+1, maxSectionBytes))
	}
	return sw.writeRaw(frame(append([]byte{typ}, payload...)))
}

// intern returns the symbol for s, scheduling it for emission in the
// current block's new-symbol list on first use.
func (sw *ShardWriter) intern(s string) uint32 {
	if id, ok := sw.syms[s]; ok {
		return id
	}
	id := sw.nsyms
	sw.nsyms++
	sw.syms[s] = id
	sw.newSyms = append(sw.newSyms, s)
	return id
}

// flushBlock encodes the pending rows as one columnar 'B' section. Column
// order is fixed by the format: rank, domain, then the hosting, DNS, CA,
// TLD, and language columns in Website field order; symbols are interned
// in that same scan order, so equal inputs always produce equal bytes.
func (sw *ShardWriter) flushBlock() error {
	rows := sw.rows
	b := sw.scratch[:0]

	// Interning pass doubles as the column encoding pass; symbols are
	// assigned during column writes below, so the new-symbol list must be
	// emitted first — encode the columns into a second buffer, then splice.
	sw.newSyms = sw.newSyms[:0]
	var cols []byte
	if c := cap(sw.scratch); c > 0 {
		cols = make([]byte, 0, c)
	}
	cols = binary.AppendUvarint(cols, uint64(len(rows)))
	for i := range rows {
		cols = binary.AppendUvarint(cols, uint64(rows[i].Rank))
	}
	cols = appendStrColumn(cols, rows, func(w *dataset.Website) string { return w.Domain })
	cols = sw.appendSymColumn(cols, rows, func(w *dataset.Website) string { return w.HostProvider })
	cols = sw.appendSymColumn(cols, rows, func(w *dataset.Website) string { return w.HostProviderCountry })
	cols = appendStrColumn(cols, rows, func(w *dataset.Website) string { return w.HostIP })
	cols = sw.appendSymColumn(cols, rows, func(w *dataset.Website) string { return w.HostIPContinent })
	cols = appendBoolColumn(cols, rows, func(w *dataset.Website) bool { return w.HostAnycast })
	cols = sw.appendSymColumn(cols, rows, func(w *dataset.Website) string { return w.DNSProvider })
	cols = sw.appendSymColumn(cols, rows, func(w *dataset.Website) string { return w.DNSProviderCountry })
	cols = appendStrColumn(cols, rows, func(w *dataset.Website) string { return w.NSIP })
	cols = sw.appendSymColumn(cols, rows, func(w *dataset.Website) string { return w.NSIPContinent })
	cols = appendBoolColumn(cols, rows, func(w *dataset.Website) bool { return w.NSAnycast })
	cols = sw.appendSymColumn(cols, rows, func(w *dataset.Website) string { return w.CAOwner })
	cols = sw.appendSymColumn(cols, rows, func(w *dataset.Website) string { return w.CAOwnerCountry })
	cols = sw.appendSymColumn(cols, rows, func(w *dataset.Website) string { return w.TLD })
	cols = sw.appendSymColumn(cols, rows, func(w *dataset.Website) string { return w.Language })

	b = binary.AppendUvarint(b, uint64(len(sw.newSyms)))
	for _, s := range sw.newSyms {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	b = append(b, cols...)
	sw.scratch = b[:0]

	if err := sw.writeSection(secBlock, b); err != nil {
		return err
	}
	sw.total += int64(len(rows))
	sw.rows = sw.rows[:0]
	return nil
}

func (sw *ShardWriter) appendSymColumn(b []byte, rows []dataset.Website, get func(*dataset.Website) string) []byte {
	for i := range rows {
		b = binary.AppendUvarint(b, uint64(sw.intern(get(&rows[i]))))
	}
	return b
}

func appendStrColumn(b []byte, rows []dataset.Website, get func(*dataset.Website) string) []byte {
	for i := range rows {
		s := get(&rows[i])
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}

func appendBoolColumn(b []byte, rows []dataset.Website, get func(*dataset.Website) bool) []byte {
	n := (len(rows) + 7) / 8
	start := len(b)
	b = append(b, make([]byte, n)...)
	for i := range rows {
		if get(&rows[i]) {
			b[start+i/8] |= 1 << (i % 8)
		}
	}
	return b
}

// Save writes an in-memory corpus as a store at dir: one shard per country
// in the corpus's (sorted) country order, coverage carried into the
// manifest, countries written concurrently under the corpus's Workers
// bound. The store round-trips the corpus exactly: Load returns lists
// deep-equal to the originals and Score returns bit-identical scores.
func Save(dir string, c *dataset.Corpus, opts *Options) error {
	w, err := Create(dir, c.Epoch, opts)
	if err != nil {
		return err
	}
	ccs := c.Countries()
	err = parallel.ForEachIndexed(context.Background(), opts.orDefault().Workers, len(ccs),
		func(_ context.Context, i int) error {
			return w.AppendList(c.Get(ccs[i]))
		})
	if err != nil {
		return err
	}
	for _, cov := range c.CoverageByCountry {
		w.SetCoverage(cov)
	}
	return w.Close()
}
