package corpusstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// testCorpus hand-builds a deterministic corpus with the field variety the
// format must carry: repeated providers (interning), empty provider fields
// (failed measurements), anycast flags, and list lengths that do not divide
// the block size.
func testCorpus(seed int64, ccs []string, sitesPer int) *dataset.Corpus {
	rng := rand.New(rand.NewSource(seed))
	providers := []string{"Cloudflare", "Amazon", "Hetzner", "", "LocalHost-01", "LocalHost-02"}
	pcountry := map[string]string{
		"Cloudflare": "US", "Amazon": "US", "Hetzner": "DE",
		"LocalHost-01": "", "LocalHost-02": "",
	}
	cas := []string{"Let's Encrypt", "DigiCert", ""}
	caCC := map[string]string{"Let's Encrypt": "US", "DigiCert": "US"}
	continents := []string{"NA", "EU", "AS", ""}
	tlds := []string{"com", "net", "de", "jp"}
	langs := []string{"en", "de", "ja", ""}

	c := dataset.NewCorpus("2023-05")
	for _, cc := range ccs {
		list := &dataset.CountryList{Country: cc, Epoch: "2023-05"}
		for i := 0; i < sitesPer; i++ {
			host := providers[rng.Intn(len(providers))]
			dns := providers[rng.Intn(len(providers))]
			ca := cas[rng.Intn(len(cas))]
			site := dataset.Website{
				Domain:       fmt.Sprintf("site-%s-%04d.%s", cc, i, tlds[rng.Intn(len(tlds))]),
				Country:      cc,
				Rank:         i + 1,
				HostProvider: host, HostProviderCountry: pcountry[host],
				HostIP:          fmt.Sprintf("10.%d.%d.%d", rng.Intn(256), rng.Intn(256), rng.Intn(256)),
				HostIPContinent: continents[rng.Intn(len(continents))],
				HostAnycast:     rng.Intn(3) == 0,
				DNSProvider:     dns, DNSProviderCountry: pcountry[dns],
				NSIP:          fmt.Sprintf("10.%d.%d.%d", rng.Intn(256), rng.Intn(256), rng.Intn(256)),
				NSIPContinent: continents[rng.Intn(len(continents))],
				NSAnycast:     rng.Intn(4) == 0,
				CAOwner:       ca, CAOwnerCountry: caCC[ca],
				TLD:      tlds[rng.Intn(len(tlds))],
				Language: langs[rng.Intn(len(langs))],
			}
			if rng.Intn(10) == 0 {
				site.HostIP = "" // unreachable site: nothing measured at all
				site.HostProvider, site.HostProviderCountry = "", ""
				site.HostIPContinent, site.HostAnycast = "", false
			}
			list.Sites = append(list.Sites, site)
		}
		c.Add(list)
	}
	return c
}

func testOpts(blockRows int) *Options {
	return &Options{Obs: obs.NewRegistry(), BlockRows: blockRows}
}

func TestRoundTrip(t *testing.T) {
	for _, blockRows := range []int{0, 7, 1000} {
		t.Run(fmt.Sprintf("blockRows=%d", blockRows), func(t *testing.T) {
			dir := t.TempDir()
			c := testCorpus(1, []string{"US", "DE", "JP"}, 123)
			cov := &dataset.Coverage{Country: "US", Sites: 123, Degraded: true,
				Host: dataset.FieldCoverage{OK: 120, Lost: 3}}
			c.SetCoverage(cov)
			if err := Save(dir, c, testOpts(blockRows)); err != nil {
				t.Fatal(err)
			}

			st, err := Open(dir, testOpts(blockRows))
			if err != nil {
				t.Fatal(err)
			}
			if st.Epoch() != "2023-05" {
				t.Fatalf("epoch %q", st.Epoch())
			}
			if got, want := st.Countries(), c.Countries(); !reflect.DeepEqual(got, want) {
				t.Fatalf("countries %v, want %v", got, want)
			}
			if got := st.TotalSites(); got != int64(c.TotalSites()) {
				t.Fatalf("TotalSites %d, want %d", got, c.TotalSites())
			}
			for _, cc := range c.Countries() {
				list, err := st.ReadList(cc)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(list, c.Get(cc)) {
					t.Fatalf("%s: list does not round-trip", cc)
				}
			}
			if !reflect.DeepEqual(st.Coverage()["US"], cov) {
				t.Fatalf("coverage does not round-trip: %+v", st.Coverage()["US"])
			}

			loaded, err := st.Load()
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Epoch != c.Epoch || !reflect.DeepEqual(loaded.Lists, c.Lists) {
				t.Fatal("Load does not round-trip the corpus")
			}
			if !reflect.DeepEqual(loaded.CoverageByCountry, c.CoverageByCountry) {
				t.Fatal("Load does not round-trip coverage")
			}
		})
	}
}

// TestStreamedScoresMatchInMemory is the scoring-fidelity invariant: the
// store's streamed ScoreSet must be bit-identical to the in-memory corpus's
// scoring surface on every metric the analyses read.
func TestStreamedScoresMatchInMemory(t *testing.T) {
	dir := t.TempDir()
	c := testCorpus(2, []string{"US", "DE", "JP", "TH"}, 217)
	if err := Save(dir, c, testOpts(11)); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, testOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := st.Score()
	if err != nil {
		t.Fatal(err)
	}
	mem := c.ScoreSet()

	if !reflect.DeepEqual(streamed.Countries(), mem.Countries()) {
		t.Fatal("country sets differ")
	}
	for _, layer := range countries.Layers {
		if !reflect.DeepEqual(streamed.Scores(layer), mem.Scores(layer)) {
			t.Errorf("%v: scores differ", layer)
		}
		if !reflect.DeepEqual(streamed.Insularities(layer), mem.Insularities(layer)) {
			t.Errorf("%v: insularities differ", layer)
		}
		if g, w := streamed.GlobalDistribution(layer).Score(), mem.GlobalDistribution(layer).Score(); g != w {
			t.Errorf("%v: global score %v, want %v", layer, g, w)
		}
		if !reflect.DeepEqual(streamed.UsageMatrix(layer), mem.UsageMatrix(layer)) {
			t.Errorf("%v: usage matrices differ", layer)
		}
		if !reflect.DeepEqual(streamed.UsageCurves(layer), mem.UsageCurves(layer)) {
			t.Errorf("%v: usage curves differ", layer)
		}
		for _, cc := range mem.Countries() {
			if g, w := streamed.DistributionOf(cc, layer).Score(), mem.DistributionOf(cc, layer).Score(); g != w {
				t.Errorf("%v %s: distribution score %v, want %v", layer, cc, g, w)
			}
		}
	}
}

func TestStreamShardMatchesReadList(t *testing.T) {
	dir := t.TempDir()
	c := testCorpus(3, []string{"US"}, 50)
	if err := Save(dir, c, testOpts(8)); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []dataset.Website
	err = st.StreamShard("US", func(w *dataset.Website) error {
		streamed = append(streamed, *w) // the callback row is reused; copy
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	list, err := st.ReadList("US")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, list.Sites) {
		t.Fatal("StreamShard and ReadList disagree")
	}
	if st.Rows("US") != int64(len(streamed)) {
		t.Fatalf("Rows(US) = %d, streamed %d", st.Rows("US"), len(streamed))
	}
	if st.Rows("ZZ") != -1 {
		t.Fatal("Rows of an absent country should be -1")
	}
	if err := st.StreamShard("ZZ", func(*dataset.Website) error { return nil }); err == nil {
		t.Fatal("streaming an absent country should fail")
	}
}

// TestSaveDeterministic pins the byte-identical invariant: saving the same
// corpus twice produces identical shard and manifest files.
func TestSaveDeterministic(t *testing.T) {
	c := testCorpus(4, []string{"US", "DE"}, 64)
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := Save(dirA, c, testOpts(16)); err != nil {
		t.Fatal(err)
	}
	if err := Save(dirB, c, testOpts(16)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{ManifestName, "US.shard", "DE.shard"} {
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two saves of the same corpus differ", name)
		}
	}
}

// TestWriterInterleavedAppend exercises the journal-ingest path: rows of
// different countries arriving interleaved through Writer.Append.
func TestWriterInterleavedAppend(t *testing.T) {
	dir := t.TempDir()
	c := testCorpus(5, []string{"US", "DE"}, 30)
	w, err := Create(dir, c.Epoch, testOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	us, de := c.Get("US").Sites, c.Get("DE").Sites
	for i := 0; i < len(us); i++ {
		if err := w.Append(&us[i]); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(&de[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range []string{"US", "DE"} {
		list, err := st.ReadList(cc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(list.Sites, c.Get(cc).Sites) {
			t.Fatalf("%s: interleaved append does not round-trip", cc)
		}
	}
}

func TestWriterValidation(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, "2023-05", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Create(filepath.Join(dir, "inner\x00bad"), "2023-05", nil); err == nil {
		t.Error("expected invalid dir to fail eventually") // os-level error
	}
	sw, err := w.Shard("US")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Shard("US"); err == nil {
		t.Error("reopening an open shard should fail")
	}
	if _, err := w.Shard("../evil"); err == nil {
		t.Error("path-escaping country code should fail")
	}
	if err := sw.Append(&dataset.Website{Domain: "a.com", Country: "DE", Rank: 1}); err == nil {
		t.Error("wrong-country row should fail")
	}
	// The shard latched the error; it never reaches the manifest.
	if err := sw.Close(); err == nil {
		t.Error("closing a failed shard should return the latched error")
	}
	sw2, err := w.Shard("DE")
	if err != nil {
		t.Fatal(err)
	}
	if err := sw2.Append(&dataset.Website{Country: "DE", Rank: 1}); err == nil {
		t.Error("empty-domain row should fail")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, "2023-05", nil); err == nil {
		t.Error("Create over an existing store should refuse")
	}
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Countries()) != 0 {
		t.Fatalf("failed shards must not reach the manifest; got %v", st.Countries())
	}
}

func TestOpenMissingManifest(t *testing.T) {
	if _, err := Open(t.TempDir(), nil); err == nil {
		t.Fatal("opening a directory without a manifest should fail")
	}
}

func TestDuplicateTallyRejected(t *testing.T) {
	tallies := []*dataset.CountryTally{
		dataset.NewCountryTally("US"),
		dataset.NewCountryTally("US"),
	}
	if _, err := dataset.BuildScoreSet(tallies); err == nil {
		t.Fatal("duplicate country tallies should be rejected")
	}
}

// TestStoreMetrics spot-checks the store.* instruments fire on both paths.
func TestStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	c := testCorpus(6, []string{"US"}, 20)
	if err := Save(dir, c, &Options{Obs: reg}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("store.shards_written").Value(); got != 1 {
		t.Errorf("shards_written = %d", got)
	}
	if got := reg.Counter("store.rows_written").Value(); got != 20 {
		t.Errorf("rows_written = %d", got)
	}
	if got := reg.Counter("store.manifest_writes").Value(); got != 1 {
		t.Errorf("manifest_writes = %d", got)
	}
	st, err := Open(dir, &Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Score(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("store.shards_streamed").Value(); got != 1 {
		t.Errorf("shards_streamed = %d", got)
	}
	if got := reg.Counter("store.rows_streamed").Value(); got != 20 {
		t.Errorf("rows_streamed = %d", got)
	}
	if got := reg.Counter("store.bytes_streamed").Value(); got <= 0 {
		t.Errorf("bytes_streamed = %d", got)
	}
}
