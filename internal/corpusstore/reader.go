package corpusstore

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/parallel"
)

// Store is an opened on-disk corpus: the manifest is resident, the shards
// are not. Reading is streamed — StreamShard and Score hold at most one
// decoded block per concurrently-read shard — and a Store is safe for
// concurrent use (every method opens its own file handles).
type Store struct {
	dir     string
	man     manifest
	byCC    map[string]manifestShard
	workers int
	m       *storeMetrics
}

// Open reads and validates a store's manifest. It refuses manifests written
// by a different format version and reports any framing damage as a
// *CorruptError with the byte offset.
func Open(dir string, opts *Options) (*Store, error) {
	opts = opts.orDefault()
	s := &Store{dir: dir, workers: opts.Workers, m: newStoreMetrics(opts.Obs)}
	path := filepath.Join(dir, ManifestName)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpusstore: %s is not a store (no manifest): %w", dir, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if err := readMagic(br, path, manifestMagic); err != nil {
		return nil, s.noteCorrupt(err)
	}
	sr := newSectionReader(br, path, int64(len(manifestMagic)))

	typ, payload, off, err := sr.next()
	if err != nil {
		if err == io.EOF {
			err = &CorruptError{Path: path, Offset: off, Reason: "missing manifest header"}
		}
		return nil, s.noteCorrupt(err)
	}
	if typ != secHeader {
		return nil, s.noteCorrupt(&CorruptError{Path: path, Offset: off,
			Reason: fmt.Sprintf("expected header section, found %q", typ)})
	}
	if err := json.Unmarshal(payload, &s.man); err != nil {
		return nil, s.noteCorrupt(&CorruptError{Path: path, Offset: off, Reason: "undecodable manifest header"})
	}
	if s.man.Version != Version {
		return nil, fmt.Errorf("corpusstore: %s holds store version %d; this build reads version %d",
			dir, s.man.Version, Version)
	}
	if s.man.Epoch == "" {
		return nil, s.noteCorrupt(&CorruptError{Path: path, Offset: off, Reason: "manifest has empty epoch"})
	}
	s.byCC = make(map[string]manifestShard, len(s.man.Shards))
	for _, ms := range s.man.Shards {
		if _, dup := s.byCC[ms.Country]; dup {
			return nil, s.noteCorrupt(&CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("duplicate shard entry for country %s", ms.Country)})
		}
		want, err := shardFileName(ms.Country)
		if err != nil || ms.File != want {
			return nil, s.noteCorrupt(&CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("shard entry %s names file %q", ms.Country, ms.File)})
		}
		s.byCC[ms.Country] = ms
	}

	typ, payload, off, err = sr.next()
	if err != nil {
		if err == io.EOF {
			err = &CorruptError{Path: path, Offset: off, Reason: "missing manifest end marker"}
		}
		return nil, s.noteCorrupt(err)
	}
	var end manifestEnd
	if typ != secEnd || json.Unmarshal(payload, &end) != nil {
		return nil, s.noteCorrupt(&CorruptError{Path: path, Offset: off, Reason: "undecodable manifest end marker"})
	}
	if end.Shards != len(s.man.Shards) {
		return nil, s.noteCorrupt(&CorruptError{Path: path, Offset: off,
			Reason: fmt.Sprintf("end marker declares %d shards, manifest lists %d", end.Shards, len(s.man.Shards))})
	}
	if _, _, off, err = sr.next(); err != io.EOF {
		if err == nil {
			err = &CorruptError{Path: path, Offset: off, Reason: "data after manifest end marker"}
		}
		return nil, s.noteCorrupt(err)
	}
	return s, nil
}

// noteCorrupt counts corruption detections before handing the error back.
func (s *Store) noteCorrupt(err error) error {
	if _, ok := err.(*CorruptError); ok {
		s.m.corruptions.Inc()
	}
	return err
}

// Epoch returns the measurement epoch the store holds.
func (s *Store) Epoch() string { return s.man.Epoch }

// Countries returns the stored country codes in sorted order.
func (s *Store) Countries() []string {
	out := make([]string, 0, len(s.byCC))
	for cc := range s.byCC {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// Rows returns the row count the manifest records for a country, or -1 when
// the country is not in the store.
func (s *Store) Rows(cc string) int64 {
	ms, ok := s.byCC[cc]
	if !ok {
		return -1
	}
	return ms.Rows
}

// TotalSites returns the row count across all shards, from the manifest.
func (s *Store) TotalSites() int64 {
	var n int64
	for _, ms := range s.man.Shards {
		n += ms.Rows
	}
	return n
}

// Coverage returns the stored crawl-coverage accounting, or nil when the
// corpus was stored without one (synthetic worlds).
func (s *Store) Coverage() map[string]*dataset.Coverage { return s.man.Coverage }

// StreamShard decodes one country's shard row by row. The *dataset.Website
// passed to fn is reused across calls — fn must copy the value to retain
// it. The shard's header is cross-checked against the manifest (version,
// epoch, country), its end-marker totals against the rows actually decoded,
// and any mismatch, truncation, or checksum failure is a *CorruptError.
func (s *Store) StreamShard(cc string, fn func(*dataset.Website) error) error {
	ms, ok := s.byCC[cc]
	if !ok {
		return fmt.Errorf("corpusstore: store has no shard for country %s", cc)
	}
	sp := obs.StartSpan(s.m.shardStreamMS)
	path := filepath.Join(s.dir, ms.File)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	want := shardHeader{Version: Version, Epoch: s.man.Epoch, Country: cc}
	rows, bytes, err := decodeShard(bufio.NewReaderSize(f, 1<<16), path, &want, fn)
	if err != nil {
		return s.noteCorrupt(err)
	}
	if rows != ms.Rows {
		return s.noteCorrupt(&CorruptError{Path: path, Offset: bytes,
			Reason: fmt.Sprintf("shard holds %d rows, manifest records %d", rows, ms.Rows)})
	}
	sp.End()
	s.m.shardsStreamed.Inc()
	s.m.rowsStreamed.Add(rows)
	s.m.bytesStreamed.Add(bytes)
	return nil
}

// ReadList materializes one country's shard as a CountryList, rows in
// stored (rank) order.
func (s *Store) ReadList(cc string) (*dataset.CountryList, error) {
	list := &dataset.CountryList{Country: cc, Epoch: s.man.Epoch}
	if n := s.Rows(cc); n > 0 {
		list.Sites = make([]dataset.Website, 0, n)
	}
	err := s.StreamShard(cc, func(w *dataset.Website) error {
		list.Sites = append(list.Sites, *w)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return list, nil
}

// Load materializes the whole store as an in-memory Corpus (countries read
// concurrently), including the stored coverage accounting. For stores too
// large to materialize, use Score or StreamShard instead.
func (s *Store) Load() (*dataset.Corpus, error) {
	ccs := s.Countries()
	lists, err := parallel.Map(context.Background(), s.workers, len(ccs),
		func(_ context.Context, i int) (*dataset.CountryList, error) {
			return s.ReadList(ccs[i])
		})
	if err != nil {
		return nil, err
	}
	c := dataset.NewCorpus(s.man.Epoch)
	c.Workers = s.workers
	for _, l := range lists {
		c.Add(l)
	}
	for _, cov := range s.man.Coverage {
		c.SetCoverage(cov)
	}
	return c, nil
}

// Score streams every shard through the row-level scoring extraction and
// merges the per-country tallies into a ScoreSet — the same frozen surface
// an in-memory Corpus exposes, with bit-identical numbers, while holding
// only one decoded block per concurrent shard plus the tallies themselves.
func (s *Store) Score() (*dataset.ScoreSet, error) {
	sp := obs.StartSpan(s.m.scoreMS)
	ccs := s.Countries()
	tallies, err := parallel.Map(context.Background(), s.workers, len(ccs),
		func(_ context.Context, i int) (*dataset.CountryTally, error) {
			t := dataset.NewCountryTally(ccs[i])
			if err := s.StreamShard(ccs[i], func(w *dataset.Website) error {
				t.Observe(w)
				return nil
			}); err != nil {
				return nil, err
			}
			return t, nil
		})
	if err != nil {
		return nil, err
	}
	ss, err := dataset.BuildScoreSet(tallies)
	if err != nil {
		return nil, err
	}
	sp.End()
	return ss, nil
}

// decodeShard drives one shard stream: magic, header (validated against
// want when non-nil), row blocks through fn, end marker, clean EOF. It
// returns the decoded row count and the byte length consumed. Every
// deviation from the format is a *CorruptError carrying the offset of the
// failing section; the decoder never panics and never allocates more than
// a constant factor of the (already CRC-validated) section it is decoding,
// which is what makes it safe to point at arbitrary bytes (FuzzShardDecode).
func decodeShard(r io.Reader, path string, want *shardHeader, fn func(*dataset.Website) error) (rows, bytes int64, err error) {
	if err := readMagic(r, path, shardMagic); err != nil {
		return 0, 0, err
	}
	sr := newSectionReader(r, path, int64(len(shardMagic)))

	typ, payload, off, err := sr.next()
	if err != nil {
		if err == io.EOF {
			err = &CorruptError{Path: path, Offset: off, Reason: "missing shard header"}
		}
		return 0, sr.off, err
	}
	var hdr shardHeader
	if typ != secHeader || json.Unmarshal(payload, &hdr) != nil {
		return 0, sr.off, &CorruptError{Path: path, Offset: off, Reason: "undecodable shard header"}
	}
	if hdr.Version != Version {
		return 0, sr.off, &CorruptError{Path: path, Offset: off,
			Reason: fmt.Sprintf("shard version %d; this build reads version %d", hdr.Version, Version)}
	}
	if want != nil {
		if hdr.Epoch != want.Epoch {
			return 0, sr.off, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("shard holds epoch %q, store is epoch %q", hdr.Epoch, want.Epoch)}
		}
		if hdr.Country != want.Country {
			return 0, sr.off, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("shard holds country %q, expected %q", hdr.Country, want.Country)}
		}
	}

	dec := shardBlockDecoder{country: hdr.Country}
	for {
		typ, payload, off, err = sr.next()
		if err != nil {
			if err == io.EOF {
				err = &CorruptError{Path: path, Offset: off, Reason: "missing shard end marker"}
			}
			return rows, sr.off, err
		}
		if typ == secEnd {
			break
		}
		if typ != secBlock {
			return rows, sr.off, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("unexpected section type %q", typ)}
		}
		n, err := dec.block(payload, fn)
		if err != nil {
			if _, ok := err.(*CorruptError); !ok {
				err = &CorruptError{Path: path, Offset: off, Reason: err.Error()}
			}
			return rows, sr.off, err
		}
		rows += n
	}

	var end shardEnd
	if json.Unmarshal(payload, &end) != nil {
		return rows, sr.off, &CorruptError{Path: path, Offset: off, Reason: "undecodable shard end marker"}
	}
	if end.Rows != rows {
		return rows, sr.off, &CorruptError{Path: path, Offset: off,
			Reason: fmt.Sprintf("end marker declares %d rows, shard decoded %d", end.Rows, rows)}
	}
	if end.Symbols != int64(len(dec.syms)) {
		return rows, sr.off, &CorruptError{Path: path, Offset: off,
			Reason: fmt.Sprintf("end marker declares %d symbols, shard decoded %d", end.Symbols, len(dec.syms))}
	}
	if _, _, off, err = sr.next(); err != io.EOF {
		if err == nil {
			err = &CorruptError{Path: path, Offset: off, Reason: "data after shard end marker"}
		}
		return rows, sr.off, err
	}
	return rows, sr.off, nil
}

// shardBlockDecoder decodes 'B' sections, carrying the append-only symbol
// table and a reused row buffer across the shard's blocks. Memory is one
// decoded block plus the symbol table — never the shard.
type shardBlockDecoder struct {
	country string
	syms    []string
	rows    []dataset.Website
}

// block decodes one columnar block and hands each row to fn. Row structs
// are reused across blocks; fn must copy to retain. Errors that are not
// already *CorruptError are format violations the caller wraps with the
// block's offset.
func (d *shardBlockDecoder) block(payload []byte, fn func(*dataset.Website) error) (int64, error) {
	br := &byteReader{b: payload}

	nSyms, err := br.uvarint()
	if err != nil {
		return 0, err
	}
	// Each new symbol costs at least one payload byte (its length prefix),
	// so a count beyond the payload is garbage, not a big table.
	if nSyms > uint64(br.remaining()) {
		return 0, fmt.Errorf("block declares %d new symbols in a %d-byte payload", nSyms, len(payload))
	}
	for i := uint64(0); i < nSyms; i++ {
		s, err := br.str()
		if err != nil {
			return 0, err
		}
		d.syms = append(d.syms, s)
	}

	nRows, err := br.uvarint()
	if err != nil {
		return 0, err
	}
	if nRows == 0 {
		return 0, fmt.Errorf("block declares zero rows")
	}
	if nRows > maxBlockRows {
		return 0, fmt.Errorf("block declares %d rows, maximum is %d", nRows, maxBlockRows)
	}
	// The rank column spends at least one byte per row, bounding the row
	// buffer by the payload size before anything is allocated.
	if nRows > uint64(br.remaining()) {
		return 0, fmt.Errorf("block declares %d rows in a %d-byte payload", nRows, len(payload))
	}
	n := int(nRows)
	d.rows = d.rows[:0]
	for i := 0; i < n; i++ {
		rank, err := br.uvarint()
		if err != nil {
			return 0, err
		}
		d.rows = append(d.rows, dataset.Website{Country: d.country, Rank: int(rank)})
	}
	if err := d.strCol(br, func(w *dataset.Website, s string) { w.Domain = s }); err != nil {
		return 0, err
	}
	if err := d.symCol(br, func(w *dataset.Website, s string) { w.HostProvider = s }); err != nil {
		return 0, err
	}
	if err := d.symCol(br, func(w *dataset.Website, s string) { w.HostProviderCountry = s }); err != nil {
		return 0, err
	}
	if err := d.strCol(br, func(w *dataset.Website, s string) { w.HostIP = s }); err != nil {
		return 0, err
	}
	if err := d.symCol(br, func(w *dataset.Website, s string) { w.HostIPContinent = s }); err != nil {
		return 0, err
	}
	if err := d.boolCol(br, func(w *dataset.Website, v bool) { w.HostAnycast = v }); err != nil {
		return 0, err
	}
	if err := d.symCol(br, func(w *dataset.Website, s string) { w.DNSProvider = s }); err != nil {
		return 0, err
	}
	if err := d.symCol(br, func(w *dataset.Website, s string) { w.DNSProviderCountry = s }); err != nil {
		return 0, err
	}
	if err := d.strCol(br, func(w *dataset.Website, s string) { w.NSIP = s }); err != nil {
		return 0, err
	}
	if err := d.symCol(br, func(w *dataset.Website, s string) { w.NSIPContinent = s }); err != nil {
		return 0, err
	}
	if err := d.boolCol(br, func(w *dataset.Website, v bool) { w.NSAnycast = v }); err != nil {
		return 0, err
	}
	if err := d.symCol(br, func(w *dataset.Website, s string) { w.CAOwner = s }); err != nil {
		return 0, err
	}
	if err := d.symCol(br, func(w *dataset.Website, s string) { w.CAOwnerCountry = s }); err != nil {
		return 0, err
	}
	if err := d.symCol(br, func(w *dataset.Website, s string) { w.TLD = s }); err != nil {
		return 0, err
	}
	if err := d.symCol(br, func(w *dataset.Website, s string) { w.Language = s }); err != nil {
		return 0, err
	}
	if br.remaining() != 0 {
		return 0, fmt.Errorf("block has %d trailing bytes", br.remaining())
	}

	for i := range d.rows {
		if d.rows[i].Domain == "" {
			return 0, fmt.Errorf("block row %d has empty domain", i)
		}
		if err := fn(&d.rows[i]); err != nil {
			return 0, err
		}
	}
	return int64(n), nil
}

func (d *shardBlockDecoder) strCol(br *byteReader, set func(*dataset.Website, string)) error {
	for i := range d.rows {
		s, err := br.str()
		if err != nil {
			return err
		}
		set(&d.rows[i], s)
	}
	return nil
}

func (d *shardBlockDecoder) symCol(br *byteReader, set func(*dataset.Website, string)) error {
	for i := range d.rows {
		v, err := br.uvarint()
		if err != nil {
			return err
		}
		if v >= uint64(len(d.syms)) {
			return fmt.Errorf("symbol %d out of range (table holds %d)", v, len(d.syms))
		}
		set(&d.rows[i], d.syms[v])
	}
	return nil
}

func (d *shardBlockDecoder) boolCol(br *byteReader, set func(*dataset.Website, bool)) error {
	bits, err := br.take((len(d.rows) + 7) / 8)
	if err != nil {
		return err
	}
	for i := range d.rows {
		set(&d.rows[i], bits[i/8]&(1<<(i%8)) != 0)
	}
	return nil
}
