package corpusstore

import (
	"fmt"
	"hash/fnv"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/dataset"
)

// IngestJournal converts a checkpoint journal into a corpus store at dir,
// streaming record by record — neither the journal nor the corpus is ever
// resident. The store's epoch comes from the journal header; a journal
// with no durable header (empty, or torn inside the header) has recorded
// nothing and is an error. Rows whose outcome carries measurement loss are
// stored as-is, exactly as a resumed crawl's corpus includes them.
//
// A journal holding two records for one (country, domain) — the residue of
// an un-compacted resume, where the newest record supersedes the older —
// cannot be converted by a record-ordered stream, so ingestion refuses it
// and points the operator at Resume + Compact. Duplicate detection uses a
// 64-bit key hash: it never misses a real duplicate, and a false positive
// (~1e-8 at a million sites) costs only an unnecessary compaction.
func IngestJournal(dir, journalPath string, opts *Options) (*checkpoint.JournalInfo, error) {
	var w *Writer
	seen := make(map[uint64]struct{})
	abort := func() {
		if w != nil {
			for _, sw := range w.openShards() {
				sw.abort()
			}
		}
	}
	info, err := checkpoint.StreamSites(journalPath,
		func(info checkpoint.JournalInfo) error {
			var err error
			w, err = Create(dir, info.Epoch, opts)
			return err
		},
		func(country string, site dataset.Website, _ dataset.SiteOutcome) error {
			h := fnv.New64a()
			h.Write([]byte(country))
			h.Write([]byte{0})
			h.Write([]byte(site.Domain))
			k := h.Sum64()
			if _, dup := seen[k]; dup {
				return fmt.Errorf("corpusstore: journal %s holds more than one record for %s/%s; Resume and Compact it first",
					journalPath, country, site.Domain)
			}
			seen[k] = struct{}{}
			return w.Append(&site)
		})
	if err != nil {
		abort()
		return nil, err
	}
	if w == nil {
		return nil, fmt.Errorf("corpusstore: journal %s has no durable header; nothing to ingest", journalPath)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return info, nil
}

// openShards snapshots the writer's open shard writers, for abort paths.
func (w *Writer) openShards() []*ShardWriter {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*ShardWriter, 0, len(w.open))
	for _, sw := range w.open {
		out = append(out, sw)
	}
	return out
}
