// Package corpusstore persists a measured corpus as a sharded, binary
// columnar on-disk store, so worlds far beyond what fits in Go maps of
// Website rows — millions of sites — can be ingested, stored, and scored
// within a fixed memory budget. It is the scale substrate ROADMAP's epoch
// engine, webdepd, and federated crawling build on.
//
// # Layout
//
// A store is a directory: one shard file per country plus a manifest.
//
//	<dir>/corpus.manifest   magic "WDEPMAN1" + framed sections
//	<dir>/<CC>.shard        magic "WDEPSHD1" + framed sections
//
// Every file reuses the checkpoint journal's framing discipline (see
// internal/checkpoint): sections are length-prefixed and CRC32-checksummed,
//
//	u32le payload length | u32le CRC32(payload) | payload
//
// and the first payload byte is the section type — 'H' (versioned JSON
// header), 'B' (columnar row block, shards only), 'E' (JSON end marker
// carrying totals). Files are written temp → fsync → rename, so a store
// never contains a torn shard: unlike the journal's append-tolerant tail,
// ANY truncation or checksum failure here is hard corruption and is
// reported as a *CorruptError naming the byte offset.
//
// # Shard blocks
//
// Rows are encoded in blocks of BlockRows sites, columnar within each
// block: low-cardinality string columns (providers, countries, continents,
// TLDs, languages) are interned into an append-only per-shard symbol table
// (extending the uint32 interning of internal/dataset's scoring index to
// disk), ranks and symbols are uvarints, anycast flags are bitsets, and
// domains/IPs are raw length-prefixed strings. Each block carries the
// symbols first seen in it, so both writing and reading stream: the writer
// holds at most one block of rows, the reader at most one decoded block.
//
// # Streaming
//
// Ingestion (Writer) and scoring (Store.Score) never materialize a corpus:
// worldgen can emit shards country by country, a checkpoint journal can be
// converted record by record (IngestJournal), and scoring streams each
// shard through the same row-level extraction the in-memory scoring index
// uses, producing bit-identical scores (dataset.CountryTally /
// dataset.BuildScoreSet).
package corpusstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// Version is the store format version this package writes and accepts.
const Version = 1

// ManifestName is the manifest's file name inside a store directory.
const ManifestName = "corpus.manifest"

var (
	shardMagic    = []byte("WDEPSHD1")
	manifestMagic = []byte("WDEPMAN1")
)

// Section types: every framed payload starts with one of these bytes.
const (
	secHeader = 'H'
	secBlock  = 'B'
	secEnd    = 'E'
)

// maxSectionBytes bounds one framed section's payload: large enough for any
// legitimate block (the default 4096-row blocks encode to a few hundred
// KB), small enough that a garbage length prefix is rejected before any
// allocation.
const maxSectionBytes = 1 << 26

// DefaultBlockRows is the rows-per-block default; one block is the unit of
// writer buffering and reader decoding.
const DefaultBlockRows = 4096

// maxBlockRows caps the rows a single block may declare, bounding reader
// allocation against hostile input.
const maxBlockRows = 1 << 20

// CorruptError reports a store file that cannot be trusted: bad magic, a
// truncated or checksum-corrupt section, an undecodable header, or totals
// that do not match the end marker. Stores are written atomically, so —
// unlike a checkpoint journal's torn tail — corruption is never expected
// residue and is always a hard error with the byte offset of the damage.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("corpusstore: %s: corrupt at byte offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Options tunes a store writer or reader; nil (or the zero value) is
// production defaults.
type Options struct {
	// Obs selects the metrics registry for the store.* instruments; nil
	// means obs.Default().
	Obs *obs.Registry
	// BlockRows is the writer's rows-per-block; <= 0 means
	// DefaultBlockRows. Readers take the block size from the data.
	BlockRows int
	// Workers bounds per-country concurrency in Load and Score; 0 means
	// one worker per CPU.
	Workers int
}

func (o *Options) orDefault() *Options {
	if o == nil {
		return &Options{}
	}
	return o
}

// storeMetrics are the hoisted obs instruments for the store paths.
type storeMetrics struct {
	shardsWritten  *obs.Counter
	rowsWritten    *obs.Counter
	bytesWritten   *obs.Counter
	shardWriteMS   *obs.Histogram
	manifestWrites *obs.Counter
	shardsStreamed *obs.Counter
	rowsStreamed   *obs.Counter
	bytesStreamed  *obs.Counter
	shardStreamMS  *obs.Histogram
	scoreMS        *obs.Histogram
	corruptions    *obs.Counter
}

func newStoreMetrics(r *obs.Registry) *storeMetrics {
	if r == nil {
		r = obs.Default()
	}
	return &storeMetrics{
		shardsWritten:  r.Counter("store.shards_written"),
		rowsWritten:    r.Counter("store.rows_written"),
		bytesWritten:   r.Counter("store.bytes_written"),
		shardWriteMS:   r.Timing("store.shard_write_ms"),
		manifestWrites: r.Counter("store.manifest_writes"),
		shardsStreamed: r.Counter("store.shards_streamed"),
		rowsStreamed:   r.Counter("store.rows_streamed"),
		bytesStreamed:  r.Counter("store.bytes_streamed"),
		shardStreamMS:  r.Timing("store.shard_stream_ms"),
		scoreMS:        r.Timing("store.score_ms"),
		corruptions:    r.Counter("store.corruptions"),
	}
}

// shardHeader is a shard file's 'H' payload.
type shardHeader struct {
	Version   int    `json:"version"`
	Epoch     string `json:"epoch"`
	Country   string `json:"country"`
	BlockRows int    `json:"block_rows"`
}

// shardEnd is a shard file's 'E' payload: totals cross-checked on read.
type shardEnd struct {
	Rows    int64 `json:"rows"`
	Symbols int64 `json:"symbols"`
}

// manifestShard is one shard's entry in the manifest.
type manifestShard struct {
	Country string `json:"country"`
	File    string `json:"file"`
	Rows    int64  `json:"rows"`
	Bytes   int64  `json:"bytes"`
}

// manifest is the manifest file's 'H' payload: the store's table of
// contents, written last so a crashed ingestion never looks complete.
type manifest struct {
	Version int             `json:"version"`
	Epoch   string          `json:"epoch"`
	Shards  []manifestShard `json:"shards"`
	// Coverage carries the crawl's measurement-loss accounting when the
	// stored corpus came from a live crawl; nil otherwise.
	Coverage map[string]*dataset.Coverage `json:"coverage,omitempty"`
}

// manifestEnd is the manifest's 'E' payload.
type manifestEnd struct {
	Shards int `json:"shards"`
}

// frame wraps a payload in the length+CRC32 framing as one byte slice.
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// sectionReader iterates a store file's framed sections, tracking the byte
// offset for corruption reports. It reuses one payload buffer: a returned
// payload is valid only until the next call.
type sectionReader struct {
	r    io.Reader
	path string
	off  int64
	hdr  [8]byte
	buf  []byte
}

func newSectionReader(r io.Reader, path string, start int64) *sectionReader {
	return &sectionReader{r: r, path: path, off: start}
}

// next returns the next section's type, payload, and starting offset.
// io.EOF marks a clean end of file at a section boundary; every other
// irregularity is a *CorruptError.
func (sr *sectionReader) next() (typ byte, payload []byte, off int64, err error) {
	off = sr.off
	if _, err := io.ReadFull(sr.r, sr.hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, off, io.EOF
		}
		return 0, nil, off, &CorruptError{Path: sr.path, Offset: off, Reason: "truncated section frame"}
	}
	length := int64(binary.LittleEndian.Uint32(sr.hdr[:4]))
	sum := binary.LittleEndian.Uint32(sr.hdr[4:])
	if length > maxSectionBytes {
		return 0, nil, off, &CorruptError{Path: sr.path, Offset: off,
			Reason: fmt.Sprintf("section length %d exceeds maximum %d", length, maxSectionBytes)}
	}
	if int64(cap(sr.buf)) < length {
		sr.buf = make([]byte, length)
	}
	sr.buf = sr.buf[:length]
	if _, err := io.ReadFull(sr.r, sr.buf); err != nil {
		return 0, nil, off, &CorruptError{Path: sr.path, Offset: off, Reason: "truncated section payload"}
	}
	if crc32.ChecksumIEEE(sr.buf) != sum {
		return 0, nil, off, &CorruptError{Path: sr.path, Offset: off, Reason: "section checksum mismatch"}
	}
	if len(sr.buf) == 0 {
		return 0, nil, off, &CorruptError{Path: sr.path, Offset: off, Reason: "empty section"}
	}
	sr.off += 8 + length
	return sr.buf[0], sr.buf[1:], off, nil
}

// readMagic consumes and validates a file's 8-byte magic.
func readMagic(r io.Reader, path string, want []byte) error {
	var got [8]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return &CorruptError{Path: path, Offset: 0, Reason: "file shorter than magic"}
	}
	for i := range want {
		if got[i] != want[i] {
			return &CorruptError{Path: path, Offset: 0, Reason: "bad magic (not a corpus store file)"}
		}
	}
	return nil
}

// byteReader is a bounds-checked cursor over one section payload; every
// decode failure is reported by the caller as corruption.
type byteReader struct {
	b []byte
	i int
}

var errShortPayload = fmt.Errorf("corpusstore: payload exhausted")

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.i:])
	if n <= 0 {
		return 0, errShortPayload
	}
	r.i += n
	return v, nil
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || len(r.b)-r.i < n {
		return nil, errShortPayload
	}
	out := r.b[r.i : r.i+n]
	r.i += n
	return out, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)-r.i) {
		return "", errShortPayload
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *byteReader) remaining() int { return len(r.b) - r.i }

// shardFileName maps a country code to its shard file, refusing codes that
// could escape the store directory.
func shardFileName(cc string) (string, error) {
	if cc == "" {
		return "", fmt.Errorf("corpusstore: empty country code")
	}
	for i := 0; i < len(cc); i++ {
		c := cc[i]
		ok := c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_'
		if !ok {
			return "", fmt.Errorf("corpusstore: country code %q is not a valid shard name", cc)
		}
	}
	return cc + ".shard", nil
}
