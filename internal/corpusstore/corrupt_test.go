package corpusstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// writeTestStore saves a small corpus and returns its directory and the
// shard path for the single country.
func writeTestStore(t *testing.T) (dir, shardPath string) {
	t.Helper()
	dir = t.TempDir()
	c := testCorpus(10, []string{"US"}, 40)
	if err := Save(dir, c, testOpts(8)); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, "US.shard")
}

func streamAll(dir string) error {
	st, err := Open(dir, &Options{Obs: obs.NewRegistry()})
	if err != nil {
		return err
	}
	for _, cc := range st.Countries() {
		if err := st.StreamShard(cc, func(*dataset.Website) error { return nil }); err != nil {
			return err
		}
	}
	return nil
}

func wantCorrupt(t *testing.T, err error, offsetAtLeast int64, reasonFragment string) {
	t.Helper()
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Offset < offsetAtLeast {
		t.Errorf("corruption offset %d, want >= %d", ce.Offset, offsetAtLeast)
	}
	if reasonFragment != "" && !strings.Contains(ce.Reason, reasonFragment) {
		t.Errorf("reason %q does not mention %q", ce.Reason, reasonFragment)
	}
}

// TestTruncatedShard covers torn tails at every interesting boundary: a
// store shard is written atomically, so ANY truncation is hard corruption
// (unlike the checkpoint journal's tolerated torn tail).
func TestTruncatedShard(t *testing.T) {
	dir, shard := writeTestStore(t)
	whole, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(whole) - 1, len(whole) - 9, len(whole) / 2, 10, 4} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			if err := os.WriteFile(shard, whole[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			err := streamAll(dir)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("truncation at %d not detected: %v", cut, err)
			}
		})
	}
	if err := os.WriteFile(shard, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := streamAll(dir); err != nil {
		t.Fatalf("restored shard should stream clean: %v", err)
	}
}

// TestCorruptShardMidFile flips one byte in the middle of the shard and
// checks the checksum failure is reported with a byte offset inside the
// file, not just "corrupt".
func TestCorruptShardMidFile(t *testing.T) {
	dir, shard := writeTestStore(t)
	whole, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), whole...)
	mut[len(mut)/2] ^= 0xFF
	if err := os.WriteFile(shard, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	err = streamAll(dir)
	wantCorrupt(t, err, int64(len(shardMagic)), "")
	var ce *CorruptError
	errors.As(err, &ce)
	if ce.Offset >= int64(len(whole)) {
		t.Errorf("offset %d outside file of %d bytes", ce.Offset, len(whole))
	}
	if ce.Path != shard {
		t.Errorf("corruption names %q, want %q", ce.Path, shard)
	}
}

func TestCorruptTrailingGarbage(t *testing.T) {
	dir, shard := writeTestStore(t)
	f, err := os.OpenFile(shard, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("garbage after end marker")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	wantCorrupt(t, streamAll(dir), 0, "")
}

func TestBadMagic(t *testing.T) {
	dir, shard := writeTestStore(t)
	whole, _ := os.ReadFile(shard)
	copy(whole, "NOTASHRD")
	if err := os.WriteFile(shard, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	wantCorrupt(t, streamAll(dir), 0, "bad magic")
}

// rewriteShardHeader re-frames a shard with a mutated header, keeping CRCs
// valid so only the semantic check can reject it.
func rewriteShardHeader(t *testing.T, shard string, mutate func(*shardHeader)) {
	t.Helper()
	whole, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	hdrLen := binary.LittleEndian.Uint32(whole[8:12])
	payload := whole[16 : 16+hdrLen]
	if payload[0] != secHeader {
		t.Fatalf("expected header section, found %q", payload[0])
	}
	var hdr shardHeader
	if err := json.Unmarshal(payload[1:], &hdr); err != nil {
		t.Fatal(err)
	}
	mutate(&hdr)
	buf, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte(nil), whole[:8]...)
	out = append(out, frame(append([]byte{secHeader}, buf...))...)
	out = append(out, whole[16+hdrLen:]...)
	if err := os.WriteFile(shard, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestForeignShardRefused pins the refusal semantics: a shard from another
// format version, another epoch, or another country — CRC-clean, so only
// the header cross-check can catch it — must not stream.
func TestForeignShardRefused(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*shardHeader)
		reason string
	}{
		{"version", func(h *shardHeader) { h.Version = 2 }, "version 2"},
		{"epoch", func(h *shardHeader) { h.Epoch = "2031-01" }, "epoch"},
		{"country", func(h *shardHeader) { h.Country = "DE" }, "country"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, shard := writeTestStore(t)
			rewriteShardHeader(t, shard, tc.mutate)
			wantCorrupt(t, streamAll(dir), int64(len(shardMagic)), tc.reason)
		})
	}
}

func TestManifestVersionRefused(t *testing.T) {
	dir, _ := writeTestStore(t)
	path := filepath.Join(dir, ManifestName)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdrLen := binary.LittleEndian.Uint32(whole[8:12])
	var man manifest
	if err := json.Unmarshal(whole[17:16+hdrLen], &man); err != nil {
		t.Fatal(err)
	}
	man.Version = 2
	buf, _ := json.Marshal(man)
	out := append([]byte(nil), whole[:8]...)
	out = append(out, frame(append([]byte{secHeader}, buf...))...)
	out = append(out, whole[16+hdrLen:]...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, nil)
	if err == nil || !strings.Contains(err.Error(), "version 2") {
		t.Fatalf("foreign manifest version not refused: %v", err)
	}
}

// TestEndMarkerMismatch rewrites the shard's end marker with wrong totals;
// the decoded counts must win and flag the inconsistency.
func TestEndMarkerMismatch(t *testing.T) {
	dir, shard := writeTestStore(t)
	whole, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	// Walk to the last section ('E') and re-frame it with inflated totals.
	off := len(shardMagic)
	lastOff := -1
	for off < len(whole) {
		length := int(binary.LittleEndian.Uint32(whole[off:]))
		if whole[off+8] == secEnd {
			lastOff = off
		}
		off += 8 + length
	}
	if lastOff < 0 {
		t.Fatal("no end marker found")
	}
	buf, _ := json.Marshal(shardEnd{Rows: 9999, Symbols: 1})
	out := append([]byte(nil), whole[:lastOff]...)
	out = append(out, frame(append([]byte{secEnd}, buf...))...)
	if err := os.WriteFile(shard, out, 0o644); err != nil {
		t.Fatal(err)
	}
	wantCorrupt(t, streamAll(dir), int64(lastOff), "end marker declares")
}

// TestCorruptionCounted checks detection feeds the store.corruptions
// instrument.
func TestCorruptionCounted(t *testing.T) {
	dir, shard := writeTestStore(t)
	whole, _ := os.ReadFile(shard)
	if err := os.WriteFile(shard, whole[:len(whole)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st, err := Open(dir, &Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.StreamShard("US", func(*dataset.Website) error { return nil }); err == nil {
		t.Fatal("corrupt shard streamed clean")
	}
	if got := reg.Counter("store.corruptions").Value(); got != 1 {
		t.Errorf("store.corruptions = %d, want 1", got)
	}
}
