// Package parallel provides the bounded worker pools the corpus-wide
// measurement and analysis paths run on. The helpers are deliberately
// deterministic in their outputs: results are index-addressed, so callers
// get byte-identical answers regardless of the worker count or the order
// in which the pool happens to schedule jobs.
//
// Error handling follows the "first error wins, everyone else stands down"
// convention: the error attributed to the lowest job index is returned
// (making the reported error independent of scheduling), and the shared
// context is cancelled as soon as any job fails so in-flight and queued
// work stops promptly.
package parallel

import (
	"context"
	"runtime"
	"sync"

	"github.com/webdep/webdep/internal/obs"
)

// Pool metrics, recorded for every ForEachIndexed/Map call in the process:
// how many tasks ran (and failed), how deep the pending-job queue is, how
// many workers are busy right now (with high-watermark), and the per-task
// latency distribution. Instruments are hoisted once so the hot path pays
// one atomic op per update and no registry lookups.
var (
	poolTasks  = obs.Default().Counter("parallel.tasks")
	poolErrors = obs.Default().Counter("parallel.task_errors")
	poolQueue  = obs.Default().Gauge("parallel.queue_depth")
	poolBusy   = obs.Default().Gauge("parallel.busy_workers")
	poolTaskMS = obs.Default().Timing("parallel.task_ms")
)

// Workers normalizes a worker-count knob: n itself when positive, otherwise
// runtime.GOMAXPROCS(0). Every -workers flag and Workers struct field in
// the toolkit funnels through this so "0 means all cores" is uniform.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEachIndexed runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (clamped through Workers and to n). The context passed to fn
// is cancelled as soon as any invocation returns a non-nil error or the
// parent context is cancelled; queued jobs are then skipped. The returned
// error is the one from the lowest failing index, or the context's error
// when cancellation came from outside.
func ForEachIndexed(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		cancel()
	}

	// Jobs are fed in ascending index order and feeding stops at the first
	// cancellation, so every failing index lower than the failure that
	// triggered cancellation has already been dequeued and run — which is
	// what makes the lowest-index error guarantee hold under any schedule.
	// Dequeued jobs always run (workers don't re-check ctx), bounding
	// post-cancellation work at one job per worker.
	jobs := make(chan int)
	poolQueue.Add(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				poolQueue.Add(-1)
				poolBusy.Add(1)
				sp := obs.StartSpan(poolTaskMS)
				err := fn(ctx, i)
				sp.End()
				poolBusy.Add(-1)
				poolTasks.Inc()
				if err != nil {
					poolErrors.Inc()
					fail(i, err)
				}
			}
		}()
	}
	dispatched := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		select {
		case jobs <- i:
			dispatched++
		case <-ctx.Done():
			i = n // stop feeding; fall through to close and wait
		}
	}
	close(jobs)
	wg.Wait()
	// Jobs skipped by cancellation never reached a worker; release their
	// queue-depth slots so the gauge returns to its pre-call level.
	poolQueue.Add(int64(dispatched - n))

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map runs fn for every index in [0, n) under the same pool semantics as
// ForEachIndexed and returns the results in index order. On error the
// partial results are discarded and the lowest-index error is returned.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachIndexed(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
