package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := Workers(0), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers(0) = %d, want %d", got, want)
	}
	if got, want := Workers(-3), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers(-3) = %d, want %d", got, want)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachIndexedRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		counts := make([]int32, n)
		err := ForEachIndexed(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachIndexedZeroJobs(t *testing.T) {
	if err := ForEachIndexed(context.Background(), 4, 0, func(context.Context, int) error {
		t.Error("fn called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMapIsIndexAddressed(t *testing.T) {
	want := make([]string, 100)
	for i := range want {
		want[i] = fmt.Sprintf("r%d", i)
	}
	for _, workers := range []int{1, 8} {
		got, err := Map(context.Background(), workers, len(want), func(_ context.Context, i int) (string, error) {
			return fmt.Sprintf("r%d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

func TestFirstErrorIsLowestIndex(t *testing.T) {
	// Several indices fail; the reported error must be the lowest-index one
	// no matter which worker hit its failure first.
	for trial := 0; trial < 20; trial++ {
		err := ForEachIndexed(context.Background(), 8, 64, func(_ context.Context, i int) error {
			if i%10 == 3 { // 3, 13, 23, ...
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("trial %d: err = %v, want job 3 failed", trial, err)
		}
	}
}

func TestErrorCancelsRemainingJobs(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := ForEachIndexed(context.Background(), 2, 10_000, func(_ context.Context, i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The pool must stand down promptly: with 2 workers the failure at index
	// 0 should prevent the vast majority of the 10k jobs from running.
	if n := atomic.LoadInt32(&ran); n > 1000 {
		t.Errorf("%d jobs ran after the first error", n)
	}
}

func TestParentCancellationStopsPool(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	done := make(chan error, 1)
	go func() {
		done <- ForEachIndexed(ctx, 2, 1_000_000, func(ctx context.Context, i int) error {
			if atomic.AddInt32(&ran, 1) == 10 {
				cancel()
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pool did not stop after cancellation")
	}
}

func TestPreCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := ForEachIndexed(ctx, 4, 100, func(context.Context, int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&ran); n != 0 {
		t.Errorf("%d jobs ran under a pre-cancelled context", n)
	}
}

func TestMapDiscardsPartialResultsOnError(t *testing.T) {
	out, err := Map(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	if out != nil {
		t.Errorf("partial results returned: %v", out)
	}
}
