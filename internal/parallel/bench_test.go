package parallel

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

// The pool benchmarks measure dispatch overhead: tasks are near-empty, so
// ns/op is dominated by channel traffic, worker wakeups, and the obs
// instrumentation on the task path. CI uploads this package's results as
// the BENCH_parallel artifact; compare runs with benchstat.

const benchTasks = 256

func benchForEach(b *testing.B, workers int) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sum atomic.Int64
		if err := ForEachIndexed(ctx, workers, benchTasks, func(_ context.Context, k int) error {
			sum.Add(int64(k))
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForEachIndexed(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchForEach(b, workers)
		})
	}
}

func BenchmarkMap(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Map(ctx, 8, benchTasks, func(_ context.Context, k int) (int, error) {
			return k * k, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
