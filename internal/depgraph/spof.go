package depgraph

import (
	"sort"

	"github.com/webdep/webdep/internal/core"
	"github.com/webdep/webdep/internal/countries"
)

// SPOF ranks one provider by blast radius: the total number of measured
// site-layer bindings, corpus-wide, that are lost when it fails.
type SPOF struct {
	Provider string `json:"provider"`
	// Country is the provider's plurality observed home country, or ""
	// when the corpus never recorded one.
	Country string `json:"country"`
	// Sym is the provider's dense node id — part of the ranking's
	// deterministic tie-break, and stable for one graph build.
	Sym uint32 `json:"sym"`
	// Radius is the absolute blast radius in site-layer bindings.
	Radius int64 `json:"radius"`
	// Share is Radius over all measured bindings across modeled layers.
	Share float64 `json:"share"`
	// Hosting, DNS, and CA are the fractions of each layer's measured
	// bindings lost when this provider fails.
	Hosting float64 `json:"hosting"`
	DNS     float64 `json:"dns"`
	CA      float64 `json:"ca"`
}

// TopSPOFs returns the n providers with the largest blast radii,
// corpus-wide. Equal radii order deterministically by provider symbol,
// then name — never by map or goroutine scheduling order — so report
// output is stable across worker counts. n <= 0 or n beyond the node
// count returns every provider.
func (g *Graph) TopSPOFs(n int) []SPOF {
	nodes := len(g.names)
	// weight[l][p]: provider p's direct site bindings at layer l.
	var weight [numGraphLayers][]int64
	for l := range weight {
		weight[l] = make([]int64, nodes)
		for i := range g.cols[l] {
			col := &g.cols[l][i]
			for k, s := range col.syms {
				weight[l][s] += col.counts[k]
			}
		}
	}
	// radius[l][q]: bindings lost at layer l when q fails — every
	// provider p with q in its closure contributes its direct weight.
	var radius [numGraphLayers][]int64
	for l := range radius {
		radius[l] = make([]int64, nodes)
	}
	for p := 0; p < nodes; p++ {
		for _, q := range g.closure[p].members() {
			for l := 0; l < numGraphLayers; l++ {
				radius[l][q] += weight[l][p]
			}
		}
	}
	grand := g.layerTotal[0] + g.layerTotal[1] + g.layerTotal[2]
	out := make([]SPOF, nodes)
	for q := 0; q < nodes; q++ {
		r := radius[0][q] + radius[1][q] + radius[2][q]
		out[q] = SPOF{
			Provider: g.names[q],
			Country:  g.home[q],
			Sym:      uint32(q),
			Radius:   r,
			Share:    frac(r, grand),
			Hosting:  frac(radius[0][q], g.layerTotal[0]),
			DNS:      frac(radius[1][q], g.layerTotal[1]),
			CA:       frac(radius[2][q], g.layerTotal[2]),
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Radius != out[j].Radius {
			return out[i].Radius > out[j].Radius
		}
		if out[i].Sym != out[j].Sym {
			return out[i].Sym < out[j].Sym
		}
		return out[i].Provider < out[j].Provider
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

func frac(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// TransitiveDistribution returns a country's dependence distribution at
// a layer with transitivity folded in: every measured site counts toward
// each provider in its direct provider's closure, so a provider's mass
// is "sites that stop working at this layer if it fails". The result is
// a frozen core.Distribution, making transitive scores directly
// comparable to the direct scores — with an empty provider edge set the
// two are bit-identical. Layers the graph does not model (TLD) and
// unknown countries return nil.
func (g *Graph) TransitiveDistribution(cc string, layer countries.Layer) *core.Distribution {
	l := graphLayerIndex(layer)
	if l < 0 {
		return nil
	}
	i, ok := g.pos[cc]
	if !ok {
		return nil
	}
	col := &g.cols[l][i]
	counts := make(map[string]float64)
	for k, s := range col.syms {
		n := float64(col.counts[k])
		for _, q := range g.closure[s].members() {
			counts[g.names[q]] += n
		}
	}
	return core.FromCounts(counts).Freeze()
}

// TransitiveScores returns every country's transitive dependence score
// at a layer. Layers the graph does not model return nil.
func (g *Graph) TransitiveScores(layer countries.Layer) map[string]float64 {
	if graphLayerIndex(layer) < 0 {
		return nil
	}
	out := make(map[string]float64, len(g.countries))
	for _, cc := range g.countries {
		out[cc] = g.TransitiveDistribution(cc, layer).Score()
	}
	return out
}
