// Package depgraph models web infrastructure dependence as an explicit
// provider graph and answers the question the per-layer scores cannot:
// "provider X fails — what breaks, where?"
//
// The paper's dependence metrics treat hosting, DNS, and CA independently,
// but real dependence is transitive: a site depends on its host, the host
// on its DNS provider, that provider on its CA. depgraph builds the graph
// from data the pipeline already collects — no new probes:
//
//   - Nodes are providers observed in any of the hosting, DNS, or CA
//     columns of the corpus, interned to dense uint32 symbols in
//     deterministic (country, layer, rank) order, exactly like the
//     columnar scoring index. The TLD layer is excluded: a TLD is a
//     namespace, not an operator that can fail.
//   - Site edges are the per-(country, layer) provider count columns —
//     how many of a country's measured sites bind to each provider at
//     each layer.
//   - Provider→provider edges are inferred from each provider's own
//     measured infrastructure: across the sites a provider hosts, the
//     plurality DNS provider and plurality CA owner it is observed
//     behind become its dependencies (and the plurality CA owner for
//     the sites whose DNS it serves). Ties break by (count descending,
//     name ascending); a provider is never its own dependency.
//
// On top of the graph sit the transitive closure (computed once per
// build via SCC condensation, cycle-safe), the what-if engine
// (Simulate / AuditSimulate), ranked single-point-of-failure tables
// (TopSPOFs), and per-country transitive dependence distributions that
// reuse core.Distribution so transitive scores are directly comparable
// to the paper's direct scores. With no provider edges the transitive
// distribution IS the direct distribution, bit for bit.
//
// A Graph is immutable after construction and safe for concurrent use;
// only its stats counters mutate (atomically). FromCorpus caches the
// graph on the corpus's scoring-index snapshot, so Add/SetCoverage
// invalidate it exactly like the scores themselves.
package depgraph

import (
	"sync/atomic"

	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/obs"
)

// numGraphLayers counts the layers the graph models: hosting, DNS, CA.
const numGraphLayers = 3

// graphLayers maps the graph's dense layer indices (0..2) to the corpus
// layers. The values are the consecutive iota constants Hosting, DNS, CA,
// so graph layer l == countries.Layer(l) for every modeled layer.
var graphLayers = [numGraphLayers]countries.Layer{countries.Hosting, countries.DNS, countries.CA}

// graphLayerIndex returns the graph's dense index for a corpus layer, or
// -1 when the layer is not modeled (TLD).
func graphLayerIndex(layer countries.Layer) int {
	if int(layer) < numGraphLayers {
		return int(layer)
	}
	return -1
}

// siteCol is one (country, layer) column of site edges: interned provider
// symbols with their site counts, sorted (count descending, name
// ascending) — the Distribution.Ranked ordering.
type siteCol struct {
	syms   []uint32
	counts []int64 // nonincreasing, aligned with syms
	total  int64
}

// Graph is the immutable provider dependency graph built from one corpus
// (or store) snapshot. All fields are written once during construction
// and only read afterwards; Stats counters are atomic, so a Graph is safe
// for concurrent Simulate/TopSPOFs/TransitiveDistribution calls.
type Graph struct {
	countries []string // sorted country codes, aligned with cols
	pos       map[string]int

	names []string          // sym -> provider name
	ids   map[string]uint32 // provider name -> sym
	home  []string          // sym -> plurality observed provider country ("" unknown)

	edges   [][]uint32 // sym -> sorted, deduplicated direct dependencies
	closure []bitset   // sym -> reachable set including self (shared per SCC)

	cols       [numGraphLayers][]siteCol // per layer, aligned with countries
	layerTotal [numGraphLayers]int64     // corpus-wide measured bindings per layer

	stats Stats
	m     *metrics
}

// Stats is the graph's own atomic accounting, dual-recorded against the
// depgraph.* obs instruments so either surface can audit the other. The
// build fields are written once by the merge; Simulations advances on
// every Simulate call.
type Stats struct {
	RowsScanned   atomic.Int64
	Nodes         atomic.Int64
	SiteEdges     atomic.Int64
	ProviderEdges atomic.Int64
	ClosureSCCs   atomic.Int64
	Simulations   atomic.Int64
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	RowsScanned   int64
	Nodes         int64
	SiteEdges     int64
	ProviderEdges int64
	ClosureSCCs   int64
	Simulations   int64
}

// Stats returns a snapshot of the graph's accounting.
func (g *Graph) Stats() StatsSnapshot {
	return StatsSnapshot{
		RowsScanned:   g.stats.RowsScanned.Load(),
		Nodes:         g.stats.Nodes.Load(),
		SiteEdges:     g.stats.SiteEdges.Load(),
		ProviderEdges: g.stats.ProviderEdges.Load(),
		ClosureSCCs:   g.stats.ClosureSCCs.Load(),
		Simulations:   g.stats.Simulations.Load(),
	}
}

// metrics hoists the depgraph.* instruments out of the hot paths, one
// lookup per registry instead of per call.
type metrics struct {
	builds     *obs.Counter
	rows       *obs.Counter
	nodes      *obs.Counter
	siteEdges  *obs.Counter
	provEdges  *obs.Counter
	sccs       *obs.Counter
	sims       *obs.Counter
	buildMS    *obs.Histogram
	simulateMS *obs.Histogram
}

func newMetrics(r *obs.Registry) *metrics {
	if r == nil {
		r = obs.Default()
	}
	return &metrics{
		builds:     r.Counter("depgraph.builds"),
		rows:       r.Counter("depgraph.rows_scanned"),
		nodes:      r.Counter("depgraph.nodes"),
		siteEdges:  r.Counter("depgraph.site_edges"),
		provEdges:  r.Counter("depgraph.provider_edges"),
		sccs:       r.Counter("depgraph.closure_sccs"),
		sims:       r.Counter("depgraph.simulations"),
		buildMS:    r.Timing("depgraph.build_ms"),
		simulateMS: r.Timing("depgraph.simulate_ms"),
	}
}

// Options configures a graph build. The zero value (and nil) means the
// process-default obs registry and one worker per core.
type Options struct {
	// Workers bounds build parallelism; 0 means GOMAXPROCS.
	Workers int
	// Obs receives the depgraph.* instruments; nil means obs.Default().
	Obs *obs.Registry
}

func (o *Options) orDefault() *Options {
	if o == nil {
		return &Options{}
	}
	return o
}

// Layers returns the corpus layers the graph models, in dense-index
// order: Hosting, DNS, CA. TLD is a namespace, not an operator, and is
// intentionally absent.
func Layers() []countries.Layer { return graphLayers[:] }

// Nodes returns the number of providers in the graph.
func (g *Graph) Nodes() int { return len(g.names) }

// Providers returns every provider name in symbol order.
func (g *Graph) Providers() []string {
	return append([]string(nil), g.names...)
}

// Countries returns the graph's country codes in sorted order.
func (g *Graph) Countries() []string {
	return append([]string(nil), g.countries...)
}

// SymbolOf returns the dense node id for a provider name.
func (g *Graph) SymbolOf(name string) (uint32, bool) {
	s, ok := g.ids[name]
	return s, ok
}

// NameOf returns the provider name behind a symbol.
func (g *Graph) NameOf(sym uint32) string { return g.names[sym] }

// HomeOf returns the provider's plurality observed country, or "" when
// the corpus never recorded one.
func (g *Graph) HomeOf(sym uint32) string { return g.home[sym] }

// DependsOn returns a provider's direct dependencies in symbol order.
// Unknown providers return nil.
func (g *Graph) DependsOn(provider string) []string {
	s, ok := g.ids[provider]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.edges[s]))
	for _, q := range g.edges[s] {
		out = append(out, g.names[q])
	}
	return out
}

// TransitiveDeps returns every provider reachable from the given one
// (excluding itself) in symbol order. Unknown providers return nil.
func (g *Graph) TransitiveDeps(provider string) []string {
	s, ok := g.ids[provider]
	if !ok {
		return nil
	}
	var out []string
	for _, q := range g.closure[s].members() {
		if q != s {
			out = append(out, g.names[q])
		}
	}
	return out
}
