package depgraph

import (
	"path/filepath"
	"sync"
	"testing"

	"github.com/webdep/webdep/internal/corpusstore"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/worldgen"
)

// Benchmark world: 8 countries x 2000 sites, built once and shared —
// large enough that build cost is dominated by extraction and merge, not
// fixture setup.
var benchWorld struct {
	once   sync.Once
	corpus *dataset.Corpus
	err    error
}

func benchCorpus(b *testing.B) *dataset.Corpus {
	b.Helper()
	benchWorld.once.Do(func() {
		w, err := worldgen.Build(worldgen.Config{
			Seed:            42,
			SitesPerCountry: 2000,
			Countries:       []string{"AU", "BR", "DE", "IN", "IR", "JP", "TH", "US"},
		})
		if err != nil {
			benchWorld.err = err
			return
		}
		benchWorld.corpus, benchWorld.err = pipeline.FromWorld(w).MeasureWorld(w)
	})
	if benchWorld.err != nil {
		b.Fatal(benchWorld.err)
	}
	return benchWorld.corpus
}

func BenchmarkGraphBuild(b *testing.B) {
	corpus := benchCorpus(b)
	reg := obs.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := Build(corpus, &Options{Obs: reg})
		if g.Nodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkGraphFromStore(b *testing.B) {
	corpus := benchCorpus(b)
	dir := filepath.Join(b.TempDir(), "bench.store")
	if err := corpusstore.Save(dir, corpus, nil); err != nil {
		b.Fatal(err)
	}
	st, err := corpusstore.Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := FromStore(st, &Options{Obs: reg})
		if err != nil {
			b.Fatal(err)
		}
		if g.Nodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkSimulate(b *testing.B) {
	g := Build(benchCorpus(b), &Options{Obs: obs.NewRegistry()})
	// Simulate the worst SPOF: the widest dependents set, so the bench
	// covers the expensive path.
	worst := g.TopSPOFs(1)[0].Provider
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Simulate(worst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopSPOFs(b *testing.B) {
	g := Build(benchCorpus(b), &Options{Obs: obs.NewRegistry()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if spofs := g.TopSPOFs(10); len(spofs) == 0 {
			b.Fatal("no SPOFs")
		}
	}
}

func BenchmarkTransitiveScores(b *testing.B) {
	corpus := benchCorpus(b)
	g := Build(corpus, &Options{Obs: obs.NewRegistry()})
	layer := graphLayers[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if scores := g.TransitiveScores(layer); len(scores) == 0 {
			b.Fatal("no scores")
		}
	}
}
