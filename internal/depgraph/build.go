package depgraph

import (
	"context"
	"fmt"
	"sort"

	"github.com/webdep/webdep/internal/corpusstore"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/parallel"
)

// This file is the graph construction path: a one-pass parallel
// extraction into per-country tallies (the same shape as the columnar
// scoring index and the streamed CountryTally), followed by a
// deterministic single-threaded merge. Because a Tally is a pure fold
// over website rows, the same rows produce the same graph whether they
// came from in-memory lists, a streamed store shard, or any worker
// count — the permutation-invariance property tests pin this down.

// pairKind enumerates the observed provider co-occurrence kinds the
// edge inference draws from.
const (
	pairHostDNS = iota // site's host provider observed with its DNS provider
	pairHostCA         // site's host provider observed with its CA owner
	pairDNSCA          // site's DNS provider observed with its CA owner
	numPairKinds
)

// pair is an ordered provider co-occurrence key (or a provider/country
// key in the home tally).
type pair struct{ from, to string }

// Tally accumulates one country's graph evidence: per-layer provider
// site counts, provider co-occurrence counts, and provider-country
// observations. Observe is the row-level unit shared by the in-memory
// and store-streamed build paths; a Tally is not safe for concurrent use.
type Tally struct {
	country string
	rows    int64
	counts  [numGraphLayers]map[string]int64
	pairs   [numPairKinds]map[pair]int64
	homes   map[pair]int64 // {provider, observed country} -> observations
}

// NewTally returns an empty tally for one country.
func NewTally(country string) *Tally {
	t := &Tally{country: country, homes: make(map[pair]int64)}
	for l := range t.counts {
		t.counts[l] = make(map[string]int64)
	}
	for k := range t.pairs {
		t.pairs[k] = make(map[pair]int64)
	}
	return t
}

// Country returns the country code the tally accumulates for.
func (t *Tally) Country() string { return t.country }

// Observe folds one website row into the tally. Empty provider fields
// are skipped per layer — the same rule the scoring extraction applies —
// so a layer's measured total in the graph equals the scoring index's
// distribution mass for that (country, layer).
func (t *Tally) Observe(w *dataset.Website) {
	t.rows++
	host, dns, ca := w.HostProvider, w.DNSProvider, w.CAOwner
	if host != "" {
		t.counts[0][host]++
		if w.HostProviderCountry != "" {
			t.homes[pair{host, w.HostProviderCountry}]++
		}
	}
	if dns != "" {
		t.counts[1][dns]++
		if w.DNSProviderCountry != "" {
			t.homes[pair{dns, w.DNSProviderCountry}]++
		}
	}
	if ca != "" {
		t.counts[2][ca]++
		if w.CAOwnerCountry != "" {
			t.homes[pair{ca, w.CAOwnerCountry}]++
		}
	}
	if host != "" && dns != "" {
		t.pairs[pairHostDNS][pair{host, dns}]++
	}
	if host != "" && ca != "" {
		t.pairs[pairHostCA][pair{host, ca}]++
	}
	if dns != "" && ca != "" {
		t.pairs[pairDNSCA][pair{dns, ca}]++
	}
}

// FromCorpus returns the corpus's dependency graph, building it on first
// use and caching it on the corpus's scoring-index snapshot: Add,
// SetCoverage, and InvalidateScoringIndex drop the cached graph exactly
// when they drop the cached scores, so a mutated corpus never serves a
// stale graph.
func FromCorpus(c *dataset.Corpus) *Graph {
	return c.Derived("depgraph.graph", func() any {
		return Build(c, &Options{Workers: c.Workers})
	}).(*Graph)
}

// Build constructs the graph from an in-memory corpus in one parallel
// pass over the rows (one tally per country) plus a deterministic merge.
// Build does not consult or populate the corpus-level cache; use
// FromCorpus for the cached path.
func Build(c *dataset.Corpus, opts *Options) *Graph {
	opts = opts.orDefault()
	m := newMetrics(opts.Obs)
	sp := obs.StartSpan(m.buildMS)
	ccs := c.Countries()
	tallies, err := parallel.Map(context.Background(), opts.Workers, len(ccs),
		func(_ context.Context, i int) (*Tally, error) {
			t := NewTally(ccs[i])
			list := c.Lists[ccs[i]]
			for j := range list.Sites {
				t.Observe(&list.Sites[j])
			}
			return t, nil
		})
	if err != nil {
		// The extraction is infallible and the context is never cancelled;
		// mirror the scoring index's loud-failure stance rather than
		// returning a zero graph.
		panic(fmt.Sprintf("depgraph: corpus extraction failed: %v", err))
	}
	g, err := merge(tallies, m)
	if err != nil {
		// A corpus keys lists by country, so duplicate tallies are
		// impossible here.
		panic(fmt.Sprintf("depgraph: corpus merge failed: %v", err))
	}
	sp.End()
	return g
}

// FromStore constructs the graph by streaming every shard of an on-disk
// corpus store — the tallies and the graph itself are the only resident
// state, never the corpus. The result is bit-identical to Build over the
// materialized rows.
func FromStore(st *corpusstore.Store, opts *Options) (*Graph, error) {
	opts = opts.orDefault()
	m := newMetrics(opts.Obs)
	sp := obs.StartSpan(m.buildMS)
	ccs := st.Countries()
	tallies, err := parallel.Map(context.Background(), opts.Workers, len(ccs),
		func(_ context.Context, i int) (*Tally, error) {
			t := NewTally(ccs[i])
			if err := st.StreamShard(ccs[i], func(w *dataset.Website) error {
				t.Observe(w)
				return nil
			}); err != nil {
				return nil, err
			}
			return t, nil
		})
	if err != nil {
		return nil, err
	}
	g, err := merge(tallies, m)
	if err != nil {
		return nil, err
	}
	sp.End()
	return g, nil
}

// FromTallies merges independently accumulated per-country tallies into
// a graph — the entry point for callers that already stream rows
// themselves. Tallies may arrive in any order; countries must be unique.
func FromTallies(tallies []*Tally, opts *Options) (*Graph, error) {
	opts = opts.orDefault()
	m := newMetrics(opts.Obs)
	sp := obs.StartSpan(m.buildMS)
	g, err := merge(tallies, m)
	if err != nil {
		return nil, err
	}
	sp.End()
	return g, nil
}

// best tracks a plurality winner under the total order (count
// descending, name ascending), which has a unique maximum — so the
// winner is independent of map iteration order.
type best struct {
	name string
	n    int64
	ok   bool
}

func (b *best) offer(name string, n int64) {
	if !b.ok || n > b.n || (n == b.n && name < b.name) {
		b.name, b.n, b.ok = name, n, true
	}
}

// merge folds sorted per-country tallies into the immutable graph:
// symbols interned in (country, layer, rank) order, site-edge columns,
// plurality home countries, inferred provider edges, and the transitive
// closure. Everything downstream of the sort is single-threaded and
// deterministic.
func merge(tallies []*Tally, m *metrics) (*Graph, error) {
	ts := append([]*Tally(nil), tallies...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].country < ts[j].country })
	for i := 1; i < len(ts); i++ {
		if ts[i].country == ts[i-1].country {
			return nil, fmt.Errorf("depgraph: duplicate tally for country %q", ts[i].country)
		}
	}

	g := &Graph{
		countries: make([]string, len(ts)),
		pos:       make(map[string]int, len(ts)),
		ids:       make(map[string]uint32),
		m:         m,
	}
	for l := range g.cols {
		g.cols[l] = make([]siteCol, len(ts))
	}

	var rows, siteEdges int64
	for i, t := range ts {
		g.countries[i] = t.country
		g.pos[t.country] = i
		rows += t.rows
		for l := 0; l < numGraphLayers; l++ {
			col := buildSiteCol(t.counts[l], g)
			g.cols[l][i] = col
			g.layerTotal[l] += col.total
			siteEdges += int64(len(col.syms))
		}
	}

	// Merge the co-occurrence and home tallies corpus-wide. Integer sums
	// are order-independent, so map iteration order cannot leak into the
	// result.
	var pairSum [numPairKinds]map[pair]int64
	for k := range pairSum {
		pairSum[k] = make(map[pair]int64)
		for _, t := range ts {
			for pr, n := range t.pairs[k] {
				pairSum[k][pr] += n
			}
		}
	}
	homeSum := make(map[pair]int64)
	for _, t := range ts {
		for pr, n := range t.homes {
			homeSum[pr] += n
		}
	}

	// Plurality home country per node. Every provider in homeSum was
	// counted in some layer column, so the symbol lookup always hits.
	g.home = make([]string, len(g.names))
	homeBest := make([]best, len(g.names))
	for pr, n := range homeSum {
		homeBest[g.ids[pr.from]].offer(pr.to, n)
	}
	for s := range homeBest {
		if homeBest[s].ok {
			g.home[s] = homeBest[s].name
		}
	}

	// Infer provider→provider edges: for each co-occurrence kind, a
	// provider depends on the plurality partner observed across the sites
	// it serves. Self-pairs are excluded from the competition — a
	// provider is never its own dependency.
	adj := make([][]uint32, len(g.names))
	for k := range pairSum {
		edgeBest := make([]best, len(g.names))
		for pr, n := range pairSum[k] {
			if pr.from == pr.to {
				continue
			}
			edgeBest[g.ids[pr.from]].offer(pr.to, n)
		}
		for s := range edgeBest {
			if edgeBest[s].ok {
				adj[s] = append(adj[s], g.ids[edgeBest[s].name])
			}
		}
	}
	var provEdges int64
	g.edges = make([][]uint32, len(g.names))
	for s := range adj {
		g.edges[s] = dedupSorted(adj[s])
		provEdges += int64(len(g.edges[s]))
	}

	var sccs int
	g.closure, sccs = closureOf(g.edges)

	g.stats.RowsScanned.Store(rows)
	g.stats.Nodes.Store(int64(len(g.names)))
	g.stats.SiteEdges.Store(siteEdges)
	g.stats.ProviderEdges.Store(provEdges)
	g.stats.ClosureSCCs.Store(int64(sccs))
	m.builds.Inc()
	m.rows.Add(rows)
	m.nodes.Add(int64(len(g.names)))
	m.siteEdges.Add(siteEdges)
	m.provEdges.Add(provEdges)
	m.sccs.Add(int64(sccs))
	return g, nil
}

// buildSiteCol converts one (country, layer) tally into its columnar
// form — providers sorted (count descending, name ascending), interned
// in that order — growing the graph's symbol table as needed.
func buildSiteCol(counts map[string]int64, g *Graph) siteCol {
	names := make([]string, 0, len(counts))
	for p := range counts {
		names = append(names, p)
	}
	sort.Slice(names, func(i, j int) bool {
		ci, cj := counts[names[i]], counts[names[j]]
		if ci != cj {
			return ci > cj
		}
		return names[i] < names[j]
	})
	col := siteCol{
		syms:   make([]uint32, len(names)),
		counts: make([]int64, len(names)),
	}
	for i, p := range names {
		col.syms[i] = g.intern(p)
		n := counts[p]
		col.counts[i] = n
		col.total += n
	}
	return col
}

// intern returns the symbol for a provider name, assigning the next
// dense id on first use.
func (g *Graph) intern(name string) uint32 {
	if s, ok := g.ids[name]; ok {
		return s
	}
	s := uint32(len(g.names))
	g.ids[name] = s
	g.names = append(g.names, name)
	return s
}

// dedupSorted sorts a small symbol list and removes duplicates in place.
func dedupSorted(syms []uint32) []uint32 {
	if len(syms) < 2 {
		return syms
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	out := syms[:1]
	for _, s := range syms[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}
