package depgraph

import "math/bits"

// This file computes the transitive closure of the provider edge set.
// The graph may contain cycles (two providers observed behind each
// other), so the closure runs on the SCC condensation: Tarjan's
// algorithm emits components in reverse topological order, which means a
// component's successors are always finished first and its closure is
// its members united with its successors' already-computed closures —
// one pass, no fixpoint iteration, cycle-safe by construction. Nodes in
// the same component share one closure bitset.

// bitset is a fixed-width set of node symbols. All bitsets over one
// graph have the same word length, so orInto never reallocates.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i uint32)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) has(i uint32) bool { return b[i>>6]&(1<<(i&63)) != 0 }

// orInto unions o into b. Both must come from the same graph.
func (b bitset) orInto(o bitset) {
	for w := range o {
		b[w] |= o[w]
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) equal(o bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for w := range b {
		if b[w] != o[w] {
			return false
		}
	}
	return true
}

// members returns the set's symbols in ascending order.
func (b bitset) members() []uint32 {
	out := make([]uint32, 0, b.count())
	for wi, w := range b {
		for w != 0 {
			out = append(out, uint32(wi*64+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

// closureOf returns, for every node, the set of nodes reachable from it
// (including itself), plus the number of strongly connected components.
// Closing an already-closed edge set is a fixed point — the idempotence
// property test drives this function twice to prove it.
func closureOf(edges [][]uint32) ([]bitset, int) {
	n := len(edges)
	index := make([]int32, n) // Tarjan discovery index + 1; 0 = unvisited
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	var stack []uint32
	var compClosure []bitset
	var next int32

	var strong func(v uint32)
	strong = func(v uint32) {
		next++
		index[v], low[v] = next, next
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range edges[v] {
			if index[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] != index[v] {
			return
		}
		// v roots a component: pop its members, then union in the
		// closures of every successor component (all already complete).
		cl := newBitset(n)
		cid := int32(len(compClosure))
		var members []uint32
		for {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			onStack[w] = false
			comp[w] = cid
			cl.set(w)
			members = append(members, w)
			if w == v {
				break
			}
		}
		for _, u := range members {
			for _, w := range edges[u] {
				if comp[w] != cid {
					cl.orInto(compClosure[comp[w]])
				}
			}
		}
		compClosure = append(compClosure, cl)
	}

	for v := 0; v < n; v++ {
		if index[v] == 0 {
			strong(uint32(v))
		}
	}
	closure := make([]bitset, n)
	for v := range closure {
		closure[v] = compClosure[comp[v]]
	}
	return closure, len(compClosure)
}
