package depgraph

import (
	"testing"

	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// TestTopSPOFsTieBreak pins the deterministic ordering of equal blast
// radii: radius descending, then provider symbol ascending, then name.
// Symbols are interned in (sorted country, layer, count desc, name asc)
// order, so the cases below control both the radii and the symbol
// assignment precisely.
func TestTopSPOFsTieBreak(t *testing.T) {
	cases := []struct {
		name string
		rows map[string][]dataset.Website
		want []string // provider names in expected rank order
	}{
		{
			// Three hosts with identical weight in one country: symbols
			// follow name order (count ties intern name-asc), so the
			// ranking is alphabetical.
			name: "equal radii same country",
			rows: map[string][]dataset.Website{
				"US": {
					site("Beta", "US", "", "", "", ""),
					site("Alpha", "US", "", "", "", ""),
					site("Gamma", "US", "", "", "", ""),
				},
			},
			want: []string{"Alpha", "Beta", "Gamma"},
		},
		{
			// Equal radii across countries: Zeta is interned first (AA
			// sorts before BB), so symbol order — not name order — must
			// decide, putting Zeta ahead of Alpha.
			name: "symbol order beats name order",
			rows: map[string][]dataset.Website{
				"AA": {
					site("Zeta", "AA", "", "", "", ""),
					site("Zeta", "AA", "", "", "", ""),
				},
				"BB": {
					site("Alpha", "BB", "", "", "", ""),
					site("Alpha", "BB", "", "", "", ""),
				},
			},
			want: []string{"Zeta", "Alpha"},
		},
		{
			// Unequal radii still dominate: the smaller-symbol provider
			// with less weight ranks below.
			name: "radius dominates symbol",
			rows: map[string][]dataset.Website{
				"US": {
					site("Big", "US", "", "", "", ""),
					site("Big", "US", "", "", "", ""),
					site("Ant", "US", "", "", "", ""),
				},
			},
			want: []string{"Big", "Ant"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := handCorpus(t, tc.rows)
			for _, workers := range []int{1, 4} {
				g := Build(c, &Options{Workers: workers, Obs: obs.NewRegistry()})
				spofs := g.TopSPOFs(0)
				if len(spofs) != len(tc.want) {
					t.Fatalf("workers=%d: got %d SPOFs, want %d", workers, len(spofs), len(tc.want))
				}
				for i, want := range tc.want {
					if spofs[i].Provider != want {
						got := make([]string, len(spofs))
						for j := range spofs {
							got[j] = spofs[j].Provider
						}
						t.Fatalf("workers=%d: rank order %v, want %v", workers, got, tc.want)
					}
				}
			}
		})
	}
}

func TestTopSPOFsTruncationAndShare(t *testing.T) {
	c := handCorpus(t, map[string][]dataset.Website{
		"US": {
			site("HostA", "US", "DNSX", "US", "CAZ", "US"),
			site("HostA", "US", "DNSX", "US", "CAZ", "US"),
			site("HostB", "US", "DNSX", "US", "CAZ", "US"),
		},
	})
	g := Build(c, &Options{Obs: obs.NewRegistry()})
	all := g.TopSPOFs(0)
	if len(all) != 4 {
		t.Fatalf("got %d providers, want 4", len(all))
	}
	top := g.TopSPOFs(2)
	if len(top) != 2 {
		t.Fatalf("TopSPOFs(2) returned %d entries", len(top))
	}
	// CAZ underpins every binding: all 3 hosting + 3 DNS + 3 CA = 9 of 9.
	if top[0].Provider != "CAZ" || top[0].Radius != 9 || top[0].Share != 1 {
		t.Fatalf("worst SPOF = %+v, want CAZ radius 9 share 1", top[0])
	}
	if top[0].Hosting != 1 || top[0].DNS != 1 || top[0].CA != 1 {
		t.Fatalf("CAZ per-layer fractions = %+v, want all 1", top[0])
	}
	if top[0].Country != "US" {
		t.Fatalf("CAZ home = %q, want US", top[0].Country)
	}
}

func TestTransitiveScoresUnmodeledLayer(t *testing.T) {
	c := handCorpus(t, map[string][]dataset.Website{
		"US": {site("HostA", "US", "", "", "", "")},
	})
	g := Build(c, &Options{Obs: obs.NewRegistry()})
	if g.TransitiveScores(countries.TLD) != nil {
		t.Fatal("TLD layer should not be modeled by the graph")
	}
	if g.TransitiveDistribution("US", countries.TLD) != nil {
		t.Fatal("TLD distribution should be nil")
	}
	if g.TransitiveDistribution("ZZ", countries.Hosting) != nil {
		t.Fatal("unknown country distribution should be nil")
	}
}

func TestEmptyCorpus(t *testing.T) {
	c := dataset.NewCorpus("empty")
	g := Build(c, &Options{Obs: obs.NewRegistry()})
	if g.Nodes() != 0 {
		t.Fatalf("empty corpus produced %d nodes", g.Nodes())
	}
	if spofs := g.TopSPOFs(10); len(spofs) != 0 {
		t.Fatalf("empty corpus produced SPOFs: %v", spofs)
	}
}
