package depgraph

import (
	"encoding/json"
	"testing"

	"github.com/webdep/webdep/internal/obs"
)

// Property tests for the graph engine. These pin the invariants the
// what-if engine's correctness rests on: adding dependence can only grow
// blast radii (monotonicity), transitive closure is a fixed point
// (idempotence), and Simulate agrees byte-for-byte with the brute-force
// removal oracle on the corpus the graph was built from.

// cloneWithEdge returns a graph identical to g plus one extra provider
// edge from -> to, with the closure recomputed. Stats and metrics are
// deliberately fresh: the clone exists only to compare impact numbers.
func cloneWithEdge(g *Graph, from, to uint32) *Graph {
	g2 := &Graph{
		countries:  g.countries,
		pos:        g.pos,
		names:      g.names,
		ids:        g.ids,
		home:       g.home,
		cols:       g.cols,
		layerTotal: g.layerTotal,
		m:          newMetrics(obs.NewRegistry()),
	}
	g2.edges = make([][]uint32, len(g.edges))
	for i := range g.edges {
		g2.edges[i] = append([]uint32(nil), g.edges[i]...)
	}
	g2.edges[from] = dedupSorted(append(g2.edges[from], to))
	g2.closure, _ = closureOf(g2.edges)
	return g2
}

func TestBlastRadiusMonotonicity(t *testing.T) {
	corpus := worldCorpus(t, 17, 100, []string{"TH", "DE", "BR"})
	g := Build(corpus, &Options{Obs: obs.NewRegistry()})
	n := uint32(g.Nodes())
	if n < 8 {
		t.Fatalf("world too small for the property: %d nodes", n)
	}

	// A deterministic sample of (from, to) injections spread across the
	// symbol space, including pairs that are already closed (no-ops).
	var injections [][2]uint32
	for i := uint32(0); i < 12; i++ {
		from := (i * 7) % n
		to := (i*13 + 5) % n
		if from != to {
			injections = append(injections, [2]uint32{from, to})
		}
	}

	base := make([]*Impact, n)
	for p := uint32(0); p < n; p++ {
		imp, err := g.Simulate(g.NameOf(p))
		if err != nil {
			t.Fatalf("Simulate(%s): %v", g.NameOf(p), err)
		}
		base[p] = imp
	}

	for _, inj := range injections {
		g2 := cloneWithEdge(g, inj[0], inj[1])
		for p := uint32(0); p < n; p++ {
			imp, err := g2.Simulate(g2.NameOf(p))
			if err != nil {
				t.Fatalf("Simulate(%s): %v", g2.NameOf(p), err)
			}
			for ci := range imp.Countries {
				got, want := &imp.Countries[ci].Layers, &base[p].Countries[ci].Layers
				for l := 0; l < numGraphLayers; l++ {
					if got.at(l).Lost < want.at(l).Lost {
						t.Fatalf("edge %s->%s shrank %s's blast radius in %s layer %d: %d < %d",
							g.NameOf(inj[0]), g.NameOf(inj[1]), g.NameOf(p),
							imp.Countries[ci].Country, l, got.at(l).Lost, want.at(l).Lost)
					}
					if got.at(l).Measured != want.at(l).Measured {
						t.Fatalf("adding an edge changed the measured denominator")
					}
				}
			}
		}
	}
}

// closedEdges derives an explicit edge list from a closure: node p points
// at every member of its closure except itself. Re-closing that edge set
// must reproduce the closure exactly — transitive closure is idempotent.
func closedEdges(closure []bitset) [][]uint32 {
	edges := make([][]uint32, len(closure))
	for p := range closure {
		for _, q := range closure[p].members() {
			if q != uint32(p) {
				edges[p] = append(edges[p], q)
			}
		}
	}
	return edges
}

func TestClosureIdempotence(t *testing.T) {
	corpus := worldCorpus(t, 23, 80, []string{"US", "IR", "JP"})
	g := Build(corpus, &Options{Obs: obs.NewRegistry()})
	reclosed, _ := closureOf(closedEdges(g.closure))
	for p := range g.closure {
		if !reclosed[p].equal(g.closure[p]) {
			t.Fatalf("closure is not a fixed point at %s", g.NameOf(uint32(p)))
		}
	}

	// And on a hand-built cyclic graph: A->B->C->A plus a tail C->D.
	cyclic := [][]uint32{{1}, {2}, {0, 3}, nil}
	cl, sccs := closureOf(cyclic)
	if sccs != 2 {
		t.Fatalf("cycle condensation found %d SCCs, want 2", sccs)
	}
	for p := 0; p < 3; p++ {
		for q := uint32(0); q < 4; q++ {
			if !cl[p].has(q) {
				t.Fatalf("node %d closure missing %d", p, q)
			}
		}
	}
	if !cl[3].has(3) || cl[3].count() != 1 {
		t.Fatalf("sink node closure should be itself only")
	}
	re, _ := closureOf(closedEdges(cl))
	for p := range cl {
		if !re[p].equal(cl[p]) {
			t.Fatalf("cyclic closure not a fixed point at %d", p)
		}
	}
}

func TestSimulateMatchesBruteForce(t *testing.T) {
	corpus := worldCorpus(t, 7, 150, []string{"AU", "IN", "ZA", "CZ"})
	g := FromCorpus(corpus)
	for p := uint32(0); p < uint32(g.Nodes()); p++ {
		name := g.NameOf(p)
		fast, err := g.Simulate(name)
		if err != nil {
			t.Fatalf("Simulate(%s): %v", name, err)
		}
		slow, err := g.AuditSimulate(corpus, name)
		if err != nil {
			t.Fatalf("AuditSimulate(%s): %v", name, err)
		}
		fj, err := json.Marshal(fast)
		if err != nil {
			t.Fatal(err)
		}
		sj, err := json.Marshal(slow)
		if err != nil {
			t.Fatal(err)
		}
		if string(fj) != string(sj) {
			t.Fatalf("Simulate(%s) diverges from brute force:\n fast: %s\n slow: %s", name, fj, sj)
		}
	}
}
