package depgraph

import (
	"bytes"
	"testing"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// FuzzGraphBuild feeds arbitrary corpora — hostile provider names, empty
// countries, self-referential providers, duplicate rows — through the
// tally/merge path and checks the structural invariants that the rest of
// the engine assumes: no panics, no dangling symbol references, exact
// row/edge accounting, closure soundness, and agreement with the
// corpus-backed Build path.
//
// Input format: newline-separated rows of up to five '|'-separated
// fields: country|host|dns|ca|hostCountry. Missing fields are empty.

type fuzzRow struct {
	country, host, dns, ca, hostCC string
}

func parseFuzzRows(data []byte) []fuzzRow {
	const maxRows = 512
	var rows []fuzzRow
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(rows) == maxRows {
			break
		}
		fields := bytes.SplitN(line, []byte("|"), 5)
		var r fuzzRow
		get := func(i int) string {
			if i < len(fields) {
				return string(fields[i])
			}
			return ""
		}
		r.country, r.host, r.dns, r.ca, r.hostCC = get(0), get(1), get(2), get(3), get(4)
		rows = append(rows, r)
	}
	return rows
}

func FuzzGraphBuild(f *testing.F) {
	f.Add([]byte("US|HostA|DNSX|CAZ|US\nUS|HostA|DNSY|CAZ|US\nDE|HostB|DNSX|CAZ|"))
	f.Add([]byte("|Self|Self|Self|\n|Self|Self|Self|"))                     // empty country, self-referential
	f.Add([]byte("US|a\x00b|\xff\xfe|{\"inj\":1}|ZZ"))                      // hostile names
	f.Add([]byte("AA|P|P|P|AA\nBB|P|Q|P|BB\nAA|Q|P|Q|CC"))                  // cycles across countries
	f.Add([]byte("\n\n\n"))                                                 // blank rows only
	f.Add([]byte("US|H||\nUS||D|\nUS|||C"))                                 // single-layer rows
	f.Add(bytes.Repeat([]byte("US|H|D|C|US\n"), 40))                        // heavy duplication
	f.Add([]byte("C1|h|d|c|X\nC1|h|d|c|Y\nC1|h|d|c|Y\nC2|h|d2|c2|Z|extra")) // home plurality + extra field

	f.Fuzz(func(t *testing.T, data []byte) {
		rows := parseFuzzRows(data)

		tallies := map[string]*Tally{}
		var order []*Tally
		lists := map[string]*dataset.CountryList{}
		for _, r := range rows {
			tl, ok := tallies[r.country]
			if !ok {
				tl = NewTally(r.country)
				tallies[r.country] = tl
				order = append(order, tl)
				lists[r.country] = &dataset.CountryList{Country: r.country, Epoch: "fuzz"}
			}
			w := dataset.Website{
				Domain:              "fuzz.test",
				Country:             r.country,
				HostProvider:        r.host,
				HostProviderCountry: r.hostCC,
				DNSProvider:         r.dns,
				CAOwner:             r.ca,
			}
			tl.Observe(&w)
			lists[r.country].Sites = append(lists[r.country].Sites, w)
		}

		g, err := FromTallies(order, &Options{Obs: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("FromTallies: %v", err)
		}

		n := uint32(g.Nodes())

		// Symbol table is a bijection.
		seen := map[string]bool{}
		for s := uint32(0); s < n; s++ {
			name := g.NameOf(s)
			if seen[name] {
				t.Fatalf("duplicate node name %q", name)
			}
			seen[name] = true
			if got, ok := g.SymbolOf(name); !ok || got != s {
				t.Fatalf("SymbolOf(NameOf(%d)) = %d,%v", s, got, ok)
			}
		}

		// No dangling symbols anywhere; columns sorted count-descending;
		// per-(country,layer) counts conserved against an independent
		// recount.
		var siteEdges, colTotal [numGraphLayers]int64
		for ci, cc := range g.countries {
			for l := 0; l < numGraphLayers; l++ {
				col := g.cols[l][ci]
				var sum int64
				for k, s := range col.syms {
					if s >= n {
						t.Fatalf("%s layer %d: dangling sym %d (n=%d)", cc, l, s, n)
					}
					if col.counts[k] <= 0 {
						t.Fatalf("%s layer %d: non-positive count", cc, l)
					}
					if k > 0 && col.counts[k] > col.counts[k-1] {
						t.Fatalf("%s layer %d: counts not sorted descending", cc, l)
					}
					sum += col.counts[k]
				}
				if sum != col.total {
					t.Fatalf("%s layer %d: column total %d != sum %d", cc, l, col.total, sum)
				}
				recount := map[string]int64{}
				for _, r := range rows {
					if r.country != cc {
						continue
					}
					p := [numGraphLayers]string{r.host, r.dns, r.ca}[l]
					if p != "" {
						recount[p]++
					}
				}
				if len(recount) != len(col.syms) {
					t.Fatalf("%s layer %d: %d providers in column, recount says %d",
						cc, l, len(col.syms), len(recount))
				}
				for k, s := range col.syms {
					if recount[g.NameOf(s)] != col.counts[k] {
						t.Fatalf("%s layer %d: count drift for %q", cc, l, g.NameOf(s))
					}
				}
				siteEdges[l] += int64(len(col.syms))
				colTotal[l] += sum
			}
		}

		// Edge lists: endpoints in range, strictly ascending (sorted,
		// deduped), never self-referential.
		var provEdges int64
		for p := uint32(0); p < n; p++ {
			deps := g.edges[p]
			for i, q := range deps {
				if q >= n {
					t.Fatalf("edge %d->%d dangling (n=%d)", p, q, n)
				}
				if q == p {
					t.Fatalf("self-edge on %q", g.NameOf(p))
				}
				if i > 0 && deps[i-1] >= q {
					t.Fatalf("edges of %d not strictly ascending: %v", p, deps)
				}
			}
			provEdges += int64(len(deps))
		}

		// Closure soundness: contains self and every direct edge, and is
		// a fixed point under re-closing.
		for p := uint32(0); p < n; p++ {
			if !g.closure[p].has(p) {
				t.Fatalf("closure of %d missing itself", p)
			}
			for _, q := range g.edges[p] {
				if !g.closure[p].has(q) {
					t.Fatalf("closure of %d missing direct edge %d", p, q)
				}
			}
		}
		reclosed, _ := closureOf(g.edges)
		for p := range g.closure {
			if !reclosed[p].equal(g.closure[p]) {
				t.Fatalf("closure not reproducible at node %d", p)
			}
		}

		// Stats accounting is exact.
		st := g.Stats()
		if st.RowsScanned != int64(len(rows)) {
			t.Fatalf("RowsScanned = %d, want %d", st.RowsScanned, len(rows))
		}
		if st.Nodes != int64(n) {
			t.Fatalf("Nodes = %d, want %d", st.Nodes, n)
		}
		if st.SiteEdges != siteEdges[0]+siteEdges[1]+siteEdges[2] {
			t.Fatalf("SiteEdges = %d, want %d", st.SiteEdges, siteEdges[0]+siteEdges[1]+siteEdges[2])
		}
		if st.ProviderEdges != provEdges {
			t.Fatalf("ProviderEdges = %d, want %d", st.ProviderEdges, provEdges)
		}
		for l := 0; l < numGraphLayers; l++ {
			if g.layerTotal[l] != colTotal[l] {
				t.Fatalf("layerTotal[%d] = %d, want %d", l, g.layerTotal[l], colTotal[l])
			}
		}

		// The corpus-backed build path must agree with the tally path.
		corpus := dataset.NewCorpus("fuzz")
		for _, list := range lists {
			corpus.Add(list)
		}
		g2 := Build(corpus, &Options{Obs: obs.NewRegistry()})
		equalGraphs(t, g2, g)

		// Simulate stays sane on whatever the graph contains: lost never
		// exceeds measured, and the audit oracle agrees.
		for p := uint32(0); p < n && p < 4; p++ {
			imp, err := g.Simulate(g.NameOf(p))
			if err != nil {
				t.Fatalf("Simulate: %v", err)
			}
			for l := 0; l < numGraphLayers; l++ {
				li := imp.Total.at(l)
				if li.Lost < 0 || li.Lost > li.Measured {
					t.Fatalf("impact out of range: %+v", li)
				}
			}
		}
	})
}
