package depgraph

import (
	"fmt"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// LayerImpact is one layer's blast-radius accounting for one scope:
// how many site-layer bindings were measured, and how many are lost
// when the simulated provider fails. Counts are exact integers so two
// computations of the same failure compare byte-identically under JSON.
type LayerImpact struct {
	Measured int64 `json:"measured"`
	Lost     int64 `json:"lost"`
}

// Fraction returns Lost/Measured, or 0 when nothing was measured.
func (li LayerImpact) Fraction() float64 {
	if li.Measured == 0 {
		return 0
	}
	return float64(li.Lost) / float64(li.Measured)
}

// LayerImpacts holds one LayerImpact per modeled layer.
type LayerImpacts struct {
	Hosting LayerImpact `json:"hosting"`
	DNS     LayerImpact `json:"dns"`
	CA      LayerImpact `json:"ca"`
}

// at returns the addressable entry for a graph layer index.
func (li *LayerImpacts) at(l int) *LayerImpact {
	switch l {
	case 0:
		return &li.Hosting
	case 1:
		return &li.DNS
	default:
		return &li.CA
	}
}

// CountryImpact is one country's share of a simulated failure.
type CountryImpact struct {
	Country string       `json:"country"`
	Layers  LayerImpacts `json:"layers"`
}

// Impact is the full result of one what-if simulation: per-country
// losses in sorted country order plus the corpus-wide totals.
type Impact struct {
	Provider  string          `json:"provider"`
	Countries []CountryImpact `json:"countries"`
	Total     LayerImpacts    `json:"total"`
}

// Simulate answers "provider fails — what breaks, where?": for every
// country and layer, the number of measured site-layer bindings whose
// provider transitively depends on the failed one (including the failed
// provider itself). It reads only the graph's immutable columns and
// closure, so concurrent simulations are safe.
func (g *Graph) Simulate(provider string) (*Impact, error) {
	x, ok := g.ids[provider]
	if !ok {
		return nil, fmt.Errorf("depgraph: unknown provider %q", provider)
	}
	sp := obs.StartSpan(g.m.simulateMS)
	// dependents = every provider whose transitive closure contains x.
	dependents := newBitset(len(g.names))
	for p := range g.names {
		if g.closure[p].has(x) {
			dependents.set(uint32(p))
		}
	}
	imp := &Impact{Provider: provider, Countries: make([]CountryImpact, len(g.countries))}
	for i, cc := range g.countries {
		ci := &imp.Countries[i]
		ci.Country = cc
		for l := 0; l < numGraphLayers; l++ {
			col := &g.cols[l][i]
			li := ci.Layers.at(l)
			li.Measured = col.total
			for k, s := range col.syms {
				if dependents.has(s) {
					li.Lost += col.counts[k]
				}
			}
			tl := imp.Total.at(l)
			tl.Measured += li.Measured
			tl.Lost += li.Lost
		}
	}
	sp.End()
	g.stats.Simulations.Add(1)
	g.m.sims.Inc()
	return imp, nil
}

// AuditSimulate recomputes a failure's impact by brute force: a full
// row scan of the corpus, counting each site-layer binding as lost iff
// its provider's closure contains the failed provider. Given the corpus
// the graph was built from, the result must be byte-identical to
// Simulate — the equivalence property tests and the golden SPOF suite
// hold the two paths to exactly that. Rows naming providers absent from
// the graph (a corpus mutated since the build) count as measured but
// never lost.
func (g *Graph) AuditSimulate(c *dataset.Corpus, provider string) (*Impact, error) {
	x, ok := g.ids[provider]
	if !ok {
		return nil, fmt.Errorf("depgraph: unknown provider %q", provider)
	}
	imp := &Impact{Provider: provider}
	for _, cc := range c.Countries() {
		list := c.Lists[cc]
		ci := CountryImpact{Country: cc}
		for j := range list.Sites {
			g.auditRow(&list.Sites[j], x, &ci.Layers)
		}
		for l := 0; l < numGraphLayers; l++ {
			tl := imp.Total.at(l)
			tl.Measured += ci.Layers.at(l).Measured
			tl.Lost += ci.Layers.at(l).Lost
		}
		imp.Countries = append(imp.Countries, ci)
	}
	return imp, nil
}

// auditRow folds one website row into a brute-force impact tally.
func (g *Graph) auditRow(w *dataset.Website, x uint32, li *LayerImpacts) {
	for l, layer := range graphLayers {
		p, _ := w.ProviderOf(layer)
		if p == "" {
			continue
		}
		e := li.at(l)
		e.Measured++
		if s, ok := g.ids[p]; ok && g.closure[s].has(x) {
			e.Lost++
		}
	}
}
