package depgraph

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"github.com/webdep/webdep/internal/corpusstore"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/worldgen"
)

// site builds one website row from the graph-relevant fields.
func site(host, hostCC, dns, dnsCC, ca, caCC string) dataset.Website {
	return dataset.Website{
		Domain:              "example.test",
		HostProvider:        host,
		HostProviderCountry: hostCC,
		DNSProvider:         dns,
		DNSProviderCountry:  dnsCC,
		CAOwner:             ca,
		CAOwnerCountry:      caCC,
	}
}

// handCorpus builds an in-memory corpus from explicit rows per country.
func handCorpus(t *testing.T, rows map[string][]dataset.Website) *dataset.Corpus {
	t.Helper()
	c := dataset.NewCorpus("test-epoch")
	for cc, sites := range rows {
		list := &dataset.CountryList{Country: cc, Epoch: "test-epoch"}
		for i := range sites {
			w := sites[i]
			w.Country = cc
			w.Rank = i + 1
			list.Sites = append(list.Sites, w)
		}
		c.Add(list)
	}
	return c
}

// worldCorpus measures a small synthetic world through the pipeline —
// a realistic corpus for the property tests.
func worldCorpus(t *testing.T, seed int64, sites int, ccs []string) *dataset.Corpus {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{Seed: seed, SitesPerCountry: sites, Countries: ccs})
	if err != nil {
		t.Fatalf("worldgen.Build: %v", err)
	}
	corpus, err := pipeline.FromWorld(w).MeasureWorld(w)
	if err != nil {
		t.Fatalf("MeasureWorld: %v", err)
	}
	return corpus
}

// equalGraphs asserts two graphs are structurally identical: same
// countries, symbol table, homes, site-edge columns, provider edges, and
// closure sets.
func equalGraphs(t *testing.T, got, want *Graph) {
	t.Helper()
	if len(got.names) != len(want.names) {
		t.Fatalf("node count %d != %d", len(got.names), len(want.names))
	}
	for s := range want.names {
		if got.names[s] != want.names[s] {
			t.Fatalf("sym %d: name %q != %q", s, got.names[s], want.names[s])
		}
		if got.home[s] != want.home[s] {
			t.Fatalf("sym %d (%s): home %q != %q", s, want.names[s], got.home[s], want.home[s])
		}
		if len(got.edges[s]) != len(want.edges[s]) {
			t.Fatalf("sym %d (%s): edges %v != %v", s, want.names[s], got.edges[s], want.edges[s])
		}
		for i := range want.edges[s] {
			if got.edges[s][i] != want.edges[s][i] {
				t.Fatalf("sym %d (%s): edges %v != %v", s, want.names[s], got.edges[s], want.edges[s])
			}
		}
		if !got.closure[s].equal(want.closure[s]) {
			t.Fatalf("sym %d (%s): closure differs", s, want.names[s])
		}
	}
	if len(got.countries) != len(want.countries) {
		t.Fatalf("country count %d != %d", len(got.countries), len(want.countries))
	}
	for i, cc := range want.countries {
		if got.countries[i] != cc {
			t.Fatalf("country %d: %q != %q", i, got.countries[i], cc)
		}
		for l := 0; l < numGraphLayers; l++ {
			g, w := got.cols[l][i], want.cols[l][i]
			if g.total != w.total || len(g.syms) != len(w.syms) {
				t.Fatalf("%s layer %d: column shape differs", cc, l)
			}
			for k := range w.syms {
				if g.syms[k] != w.syms[k] || g.counts[k] != w.counts[k] {
					t.Fatalf("%s layer %d entry %d: (%d,%d) != (%d,%d)",
						cc, l, k, g.syms[k], g.counts[k], w.syms[k], w.counts[k])
				}
			}
		}
	}
	for l := 0; l < numGraphLayers; l++ {
		if got.layerTotal[l] != want.layerTotal[l] {
			t.Fatalf("layer %d total %d != %d", l, got.layerTotal[l], want.layerTotal[l])
		}
	}
}

// tallyCorpus extracts per-country tallies from a corpus serially, in
// the given country order — the raw material for FromTallies tests.
func tallyCorpus(c *dataset.Corpus, order []string) []*Tally {
	out := make([]*Tally, 0, len(order))
	for _, cc := range order {
		tl := NewTally(cc)
		list := c.Lists[cc]
		for i := range list.Sites {
			tl.Observe(&list.Sites[i])
		}
		out = append(out, tl)
	}
	return out
}

func TestGraphEdgeInference(t *testing.T) {
	// HostA's sites use DNSX twice and DNSY once -> plurality edge
	// HostA -> DNSX. CA is CAZ on every site -> HostA -> CAZ and
	// DNSX/DNSY -> CAZ. SelfHost serves its own DNS -> no self-edge.
	c := handCorpus(t, map[string][]dataset.Website{
		"US": {
			site("HostA", "US", "DNSX", "US", "CAZ", "US"),
			site("HostA", "US", "DNSX", "US", "CAZ", "US"),
			site("HostA", "US", "DNSY", "US", "CAZ", "US"),
			site("SelfHost", "DE", "SelfHost", "DE", "CAZ", "US"),
		},
	})
	g := Build(c, &Options{Obs: obs.NewRegistry()})

	wantDeps := map[string][]string{
		"HostA":    {"DNSX", "CAZ"},
		"DNSX":     {"CAZ"},
		"DNSY":     {"CAZ"},
		"CAZ":      nil,
		"SelfHost": {"CAZ"},
	}
	for p, want := range wantDeps {
		got := g.DependsOn(p)
		if len(got) != len(want) {
			t.Fatalf("DependsOn(%s) = %v, want %v", p, got, want)
		}
		seen := map[string]bool{}
		for _, d := range got {
			seen[d] = true
		}
		for _, d := range want {
			if !seen[d] {
				t.Fatalf("DependsOn(%s) = %v, want %v", p, got, want)
			}
		}
	}
	if s, _ := g.SymbolOf("SelfHost"); g.HomeOf(s) != "DE" {
		t.Fatalf("SelfHost home = %q, want DE", g.HomeOf(s))
	}
	st := g.Stats()
	if st.RowsScanned != 4 || st.Nodes != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEdgePluralityTieBreak(t *testing.T) {
	// HostA observed equally behind DNSB and DNSA: the tie must break to
	// the lexicographically smaller name, regardless of map order.
	c := handCorpus(t, map[string][]dataset.Website{
		"US": {
			site("HostA", "US", "DNSB", "US", "", ""),
			site("HostA", "US", "DNSA", "US", "", ""),
		},
	})
	g := Build(c, &Options{Obs: obs.NewRegistry()})
	if got := g.DependsOn("HostA"); len(got) != 1 || got[0] != "DNSA" {
		t.Fatalf("DependsOn(HostA) = %v, want [DNSA]", got)
	}
}

func TestFromCorpusCachesOnIndexSnapshot(t *testing.T) {
	c := handCorpus(t, map[string][]dataset.Website{
		"US": {site("HostA", "US", "DNSX", "US", "CAZ", "US")},
	})
	g1 := FromCorpus(c)
	if g2 := FromCorpus(c); g2 != g1 {
		t.Fatal("FromCorpus rebuilt the graph without a corpus mutation")
	}
	// Mutating the corpus must drop the cached graph with the scoring
	// index.
	c.Add(&dataset.CountryList{Country: "DE", Epoch: "test-epoch",
		Sites: []dataset.Website{site("HostB", "DE", "DNSX", "US", "CAZ", "US")}})
	g3 := FromCorpus(c)
	if g3 == g1 {
		t.Fatal("FromCorpus served a stale graph after Corpus.Add")
	}
	if len(g3.Countries()) != 2 {
		t.Fatalf("rebuilt graph has countries %v", g3.Countries())
	}
}

func TestWorkerCountAndTallyOrderInvariance(t *testing.T) {
	corpus := worldCorpus(t, 11, 120, []string{"TH", "US", "DE", "IR", "JP"})
	want := Build(corpus, &Options{Workers: 1, Obs: obs.NewRegistry()})
	for _, workers := range []int{2, 3, 7} {
		got := Build(corpus, &Options{Workers: workers, Obs: obs.NewRegistry()})
		equalGraphs(t, got, want)
	}
	// Tallies handed over in reverse (and shuffled) country order must
	// merge to the identical graph.
	ccs := corpus.Countries()
	rev := make([]string, len(ccs))
	for i, cc := range ccs {
		rev[len(ccs)-1-i] = cc
	}
	for _, order := range [][]string{rev, {ccs[2], ccs[0], ccs[4], ccs[1], ccs[3]}} {
		got, err := FromTallies(tallyCorpus(corpus, order), &Options{Obs: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("FromTallies: %v", err)
		}
		equalGraphs(t, got, want)
	}
}

func TestFromTalliesRejectsDuplicateCountry(t *testing.T) {
	if _, err := FromTallies([]*Tally{NewTally("US"), NewTally("US")}, &Options{Obs: obs.NewRegistry()}); err == nil {
		t.Fatal("duplicate country tallies were accepted")
	}
}

func TestFromStoreMatchesCorpusBuild(t *testing.T) {
	corpus := worldCorpus(t, 5, 90, []string{"BR", "CZ", "ZA"})
	dir := filepath.Join(t.TempDir(), "corpus.store")
	if err := corpusstore.Save(dir, corpus, nil); err != nil {
		t.Fatalf("Save: %v", err)
	}
	st, err := corpusstore.Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fromStore, err := FromStore(st, &Options{Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("FromStore: %v", err)
	}
	equalGraphs(t, fromStore, Build(corpus, &Options{Obs: obs.NewRegistry()}))
}

func TestSimulateUnknownProvider(t *testing.T) {
	c := handCorpus(t, map[string][]dataset.Website{
		"US": {site("HostA", "US", "", "", "", "")},
	})
	g := Build(c, &Options{Obs: obs.NewRegistry()})
	if _, err := g.Simulate("NoSuchProvider"); err == nil {
		t.Fatal("Simulate accepted an unknown provider")
	}
	if _, err := g.AuditSimulate(c, "NoSuchProvider"); err == nil {
		t.Fatal("AuditSimulate accepted an unknown provider")
	}
}

func TestNoEdgesTransitiveEqualsDirect(t *testing.T) {
	// Rows where providers never co-occur: each site is measured at
	// exactly one layer, so no provider edges can be inferred and the
	// transitive distribution must BE the direct one, bit for bit.
	c := handCorpus(t, map[string][]dataset.Website{
		"US": {
			site("HostA", "US", "", "", "", ""),
			site("HostA", "US", "", "", "", ""),
			site("HostB", "US", "", "", "", ""),
			site("", "", "DNSX", "US", "", ""),
			site("", "", "", "", "CAZ", "US"),
		},
		"DE": {
			site("HostB", "US", "", "", "", ""),
			site("", "", "DNSX", "US", "", ""),
		},
	})
	g := Build(c, &Options{Obs: obs.NewRegistry()})
	if st := g.Stats(); st.ProviderEdges != 0 {
		t.Fatalf("expected no provider edges, got %d", st.ProviderEdges)
	}
	for _, cc := range g.Countries() {
		for _, layer := range graphLayers {
			direct := c.DistributionOf(cc, layer).Score()
			trans := g.TransitiveDistribution(cc, layer).Score()
			if direct != trans {
				t.Fatalf("%s %v: transitive score %v != direct %v", cc, layer, trans, direct)
			}
		}
	}
}

func TestObsDualRecordedAgainstStats(t *testing.T) {
	reg := obs.NewRegistry()
	corpus := worldCorpus(t, 3, 60, []string{"AU", "IN"})
	g := Build(corpus, &Options{Obs: reg})
	if _, err := g.Simulate(g.NameOf(0)); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if _, err := g.Simulate(g.NameOf(1)); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	st := g.Stats()
	counters := map[string]int64{}
	for _, c := range reg.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	for name, want := range map[string]int64{
		"depgraph.builds":         1,
		"depgraph.rows_scanned":   st.RowsScanned,
		"depgraph.nodes":          st.Nodes,
		"depgraph.site_edges":     st.SiteEdges,
		"depgraph.provider_edges": st.ProviderEdges,
		"depgraph.closure_sccs":   st.ClosureSCCs,
		"depgraph.simulations":    st.Simulations,
	} {
		if counters[name] != want {
			t.Errorf("counter %s = %d, stats say %d", name, counters[name], want)
		}
	}
	if st.Simulations != 2 {
		t.Errorf("Simulations = %d, want 2", st.Simulations)
	}
	hists := map[string]bool{}
	for _, h := range reg.Snapshot().Histograms {
		if h.Count > 0 {
			hists[h.Name] = true
		}
	}
	if !hists["depgraph.build_ms"] || !hists["depgraph.simulate_ms"] {
		t.Errorf("span histograms not recorded: %v", hists)
	}
}

func TestImpactJSONRoundTrips(t *testing.T) {
	c := handCorpus(t, map[string][]dataset.Website{
		"US": {site("HostA", "US", "DNSX", "US", "CAZ", "US")},
	})
	g := Build(c, &Options{Obs: obs.NewRegistry()})
	imp, err := g.Simulate("CAZ")
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	b, err := json.Marshal(imp)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Impact
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Total.CA.Lost != 1 || back.Total.Hosting.Lost != 1 || back.Total.DNS.Lost != 1 {
		t.Fatalf("CAZ failure should cascade to every layer: %+v", back.Total)
	}
}
