// Package dnswire implements the subset of the DNS wire format (RFC 1035)
// the measurement pipeline needs: message packing/unpacking with name
// compression, and A, AAAA, NS, CNAME, TXT, and SOA resource records.
//
// The toolkit's resolver and authoritative server speak this format over
// real UDP/TCP sockets, standing in for the ZDNS-based active measurements
// in the paper.
package dnswire

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Record types supported by the codec.
const (
	TypeA     uint16 = 1
	TypeNS    uint16 = 2
	TypeCNAME uint16 = 5
	TypeSOA   uint16 = 6
	TypeTXT   uint16 = 16
	TypeAAAA  uint16 = 28
)

// ClassIN is the Internet class; the only class the toolkit uses.
const ClassIN uint16 = 1

// Response codes.
const (
	RCodeNoError  = 0
	RCodeFormErr  = 1
	RCodeServFail = 2
	RCodeNXDomain = 3
	RCodeNotImp   = 4
	RCodeRefused  = 5
)

// Errors returned by the codec.
var (
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	ErrNameTooLong      = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong     = errors.New("dnswire: label exceeds 63 octets")
	ErrPointerLoop      = errors.New("dnswire: compression pointer loop")
	ErrTrailingBytes    = errors.New("dnswire: trailing bytes after message")
)

// Header is the fixed 12-byte DNS message header, with flag bits broken out.
type Header struct {
	ID      uint16
	QR      bool // response?
	Opcode  uint8
	AA      bool // authoritative answer
	TC      bool // truncated
	RD      bool // recursion desired
	RA      bool // recursion available
	RCode   uint8
	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
}

// Question is a single query.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// Record is a resource record. Exactly one of the data fields is meaningful
// depending on Type: Addr for A/AAAA, Target for NS/CNAME, Text for TXT,
// SOA for SOA.
type Record struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32

	Addr   netip.Addr // A, AAAA
	Target string     // NS, CNAME
	Text   string     // TXT
	SOA    *SOAData   // SOA
}

// SOAData carries the SOA RDATA fields.
type SOAData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Message is a complete DNS message.
type Message struct {
	Header      Header
	Questions   []Question
	Answers     []Record
	Authorities []Record
	Additionals []Record
}

// NewQuery builds a standard recursive query for one (name, type) pair.
func NewQuery(id uint16, name string, qtype uint16) *Message {
	return &Message{
		Header:    Header{ID: id, RD: true, QDCount: 1},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// packer serializes a message with name compression.
type packer struct {
	buf      []byte
	pointers map[string]int
}

// Pack serializes the message. Section counts in the header are overwritten
// with the actual slice lengths.
func (m *Message) Pack() ([]byte, error) {
	p := &packer{buf: make([]byte, 0, 512), pointers: make(map[string]int)}

	h := m.Header
	h.QDCount = uint16(len(m.Questions))
	h.ANCount = uint16(len(m.Answers))
	h.NSCount = uint16(len(m.Authorities))
	h.ARCount = uint16(len(m.Additionals))

	p.uint16(h.ID)
	var flags uint16
	if h.QR {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xF) << 11
	if h.AA {
		flags |= 1 << 10
	}
	if h.TC {
		flags |= 1 << 9
	}
	if h.RD {
		flags |= 1 << 8
	}
	if h.RA {
		flags |= 1 << 7
	}
	flags |= uint16(h.RCode & 0xF)
	p.uint16(flags)
	p.uint16(h.QDCount)
	p.uint16(h.ANCount)
	p.uint16(h.NSCount)
	p.uint16(h.ARCount)

	for _, q := range m.Questions {
		if err := p.name(q.Name); err != nil {
			return nil, err
		}
		p.uint16(q.Type)
		p.uint16(q.Class)
	}
	for _, sec := range [][]Record{m.Answers, m.Authorities, m.Additionals} {
		for _, r := range sec {
			if err := p.record(r); err != nil {
				return nil, err
			}
		}
	}
	return p.buf, nil
}

func (p *packer) uint16(v uint16) { p.buf = append(p.buf, byte(v>>8), byte(v)) }
func (p *packer) uint32(v uint32) {
	p.buf = append(p.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// name emits a domain name, reusing compression pointers for previously
// packed suffixes.
func (p *packer) name(name string) error {
	name = strings.TrimSuffix(strings.ToLower(name), ".")
	if name == "" {
		p.buf = append(p.buf, 0)
		return nil
	}
	if len(name) > 254 {
		return ErrNameTooLong
	}
	labels := strings.Split(name, ".")
	for i := range labels {
		suffix := strings.Join(labels[i:], ".")
		if off, ok := p.pointers[suffix]; ok && off < 0x3FFF {
			p.uint16(uint16(off) | 0xC000)
			return nil
		}
		if len(p.buf) < 0x3FFF {
			p.pointers[suffix] = len(p.buf)
		}
		label := labels[i]
		if len(label) == 0 || len(label) > 63 {
			return ErrLabelTooLong
		}
		p.buf = append(p.buf, byte(len(label)))
		p.buf = append(p.buf, label...)
	}
	p.buf = append(p.buf, 0)
	return nil
}

func (p *packer) record(r Record) error {
	if err := p.name(r.Name); err != nil {
		return err
	}
	p.uint16(r.Type)
	p.uint16(r.Class)
	p.uint32(r.TTL)

	// Reserve RDLENGTH and backfill once RDATA is emitted. Compression
	// pointers inside RDATA remain valid because offsets are absolute.
	lenAt := len(p.buf)
	p.uint16(0)
	start := len(p.buf)
	switch r.Type {
	case TypeA:
		if !r.Addr.Is4() {
			return fmt.Errorf("dnswire: A record for %s needs an IPv4 address", r.Name)
		}
		a4 := r.Addr.As4()
		p.buf = append(p.buf, a4[:]...)
	case TypeAAAA:
		if !r.Addr.Is6() || r.Addr.Is4() {
			return fmt.Errorf("dnswire: AAAA record for %s needs an IPv6 address", r.Name)
		}
		a16 := r.Addr.As16()
		p.buf = append(p.buf, a16[:]...)
	case TypeNS, TypeCNAME:
		if err := p.name(r.Target); err != nil {
			return err
		}
	case TypeTXT:
		text := r.Text
		for len(text) > 255 {
			p.buf = append(p.buf, 255)
			p.buf = append(p.buf, text[:255]...)
			text = text[255:]
		}
		p.buf = append(p.buf, byte(len(text)))
		p.buf = append(p.buf, text...)
	case TypeSOA:
		if r.SOA == nil {
			return fmt.Errorf("dnswire: SOA record for %s missing data", r.Name)
		}
		if err := p.name(r.SOA.MName); err != nil {
			return err
		}
		if err := p.name(r.SOA.RName); err != nil {
			return err
		}
		p.uint32(r.SOA.Serial)
		p.uint32(r.SOA.Refresh)
		p.uint32(r.SOA.Retry)
		p.uint32(r.SOA.Expire)
		p.uint32(r.SOA.Minimum)
	default:
		return fmt.Errorf("dnswire: unsupported record type %d", r.Type)
	}
	rdlen := len(p.buf) - start
	p.buf[lenAt] = byte(rdlen >> 8)
	p.buf[lenAt+1] = byte(rdlen)
	return nil
}

// unpacker deserializes a message.
type unpacker struct {
	buf []byte
	off int
}

// Unpack parses a complete DNS message.
func Unpack(data []byte) (*Message, error) {
	u := &unpacker{buf: data}
	var m Message

	id, err := u.uint16()
	if err != nil {
		return nil, err
	}
	flags, err := u.uint16()
	if err != nil {
		return nil, err
	}
	m.Header = Header{
		ID:     id,
		QR:     flags&(1<<15) != 0,
		Opcode: uint8(flags >> 11 & 0xF),
		AA:     flags&(1<<10) != 0,
		TC:     flags&(1<<9) != 0,
		RD:     flags&(1<<8) != 0,
		RA:     flags&(1<<7) != 0,
		RCode:  uint8(flags & 0xF),
	}
	counts := [4]uint16{}
	for i := range counts {
		if counts[i], err = u.uint16(); err != nil {
			return nil, err
		}
	}
	m.Header.QDCount, m.Header.ANCount = counts[0], counts[1]
	m.Header.NSCount, m.Header.ARCount = counts[2], counts[3]

	for i := 0; i < int(counts[0]); i++ {
		var q Question
		if q.Name, err = u.name(); err != nil {
			return nil, err
		}
		if q.Type, err = u.uint16(); err != nil {
			return nil, err
		}
		if q.Class, err = u.uint16(); err != nil {
			return nil, err
		}
		m.Questions = append(m.Questions, q)
	}
	sections := []*[]Record{&m.Answers, &m.Authorities, &m.Additionals}
	for s, count := range counts[1:] {
		for i := 0; i < int(count); i++ {
			r, err := u.record()
			if err != nil {
				return nil, err
			}
			*sections[s] = append(*sections[s], r)
		}
	}
	if u.off != len(u.buf) {
		return nil, ErrTrailingBytes
	}
	return &m, nil
}

func (u *unpacker) need(n int) error {
	if u.off+n > len(u.buf) {
		return ErrTruncatedMessage
	}
	return nil
}

func (u *unpacker) uint16() (uint16, error) {
	if err := u.need(2); err != nil {
		return 0, err
	}
	v := uint16(u.buf[u.off])<<8 | uint16(u.buf[u.off+1])
	u.off += 2
	return v, nil
}

func (u *unpacker) uint32() (uint32, error) {
	if err := u.need(4); err != nil {
		return 0, err
	}
	v := uint32(u.buf[u.off])<<24 | uint32(u.buf[u.off+1])<<16 |
		uint32(u.buf[u.off+2])<<8 | uint32(u.buf[u.off+3])
	u.off += 4
	return v, nil
}

// name decodes a possibly compressed domain name starting at the current
// offset, leaving the offset after the name's in-stream representation.
func (u *unpacker) name() (string, error) {
	s, next, err := u.nameAt(u.off)
	if err != nil {
		return "", err
	}
	u.off = next
	return s, nil
}

func (u *unpacker) nameAt(off int) (name string, next int, err error) {
	var labels []string
	jumped := false
	next = off
	for hops := 0; ; hops++ {
		if hops > 128 {
			return "", 0, ErrPointerLoop
		}
		if off >= len(u.buf) {
			return "", 0, ErrTruncatedMessage
		}
		b := u.buf[off]
		switch {
		case b == 0:
			if !jumped {
				next = off + 1
			}
			return strings.Join(labels, "."), next, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(u.buf) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := int(b&0x3F)<<8 | int(u.buf[off+1])
			if !jumped {
				next = off + 2
				jumped = true
			}
			if ptr >= off {
				// Forward pointers enable loops; RFC-compliant encoders
				// only point backward.
				return "", 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", b&0xC0)
		default:
			l := int(b)
			if off+1+l > len(u.buf) {
				return "", 0, ErrTruncatedMessage
			}
			labels = append(labels, string(u.buf[off+1:off+1+l]))
			if len(strings.Join(labels, ".")) > 254 {
				return "", 0, ErrNameTooLong
			}
			off += 1 + l
			if !jumped {
				next = off
			}
		}
	}
}

func (u *unpacker) record() (Record, error) {
	var r Record
	var err error
	if r.Name, err = u.name(); err != nil {
		return r, err
	}
	if r.Type, err = u.uint16(); err != nil {
		return r, err
	}
	if r.Class, err = u.uint16(); err != nil {
		return r, err
	}
	if r.TTL, err = u.uint32(); err != nil {
		return r, err
	}
	rdlen, err := u.uint16()
	if err != nil {
		return r, err
	}
	if err := u.need(int(rdlen)); err != nil {
		return r, err
	}
	end := u.off + int(rdlen)

	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return r, fmt.Errorf("dnswire: A RDATA length %d", rdlen)
		}
		r.Addr = netip.AddrFrom4([4]byte(u.buf[u.off:end]))
		u.off = end
	case TypeAAAA:
		if rdlen != 16 {
			return r, fmt.Errorf("dnswire: AAAA RDATA length %d", rdlen)
		}
		r.Addr = netip.AddrFrom16([16]byte(u.buf[u.off:end]))
		u.off = end
	case TypeNS, TypeCNAME:
		if r.Target, err = u.name(); err != nil {
			return r, err
		}
		if u.off != end {
			return r, fmt.Errorf("dnswire: %d stray RDATA bytes in type-%d record", end-u.off, r.Type)
		}
	case TypeTXT:
		var sb strings.Builder
		for u.off < end {
			l := int(u.buf[u.off])
			u.off++
			if u.off+l > end {
				return r, ErrTruncatedMessage
			}
			sb.Write(u.buf[u.off : u.off+l])
			u.off += l
		}
		r.Text = sb.String()
	case TypeSOA:
		soa := &SOAData{}
		if soa.MName, err = u.name(); err != nil {
			return r, err
		}
		if soa.RName, err = u.name(); err != nil {
			return r, err
		}
		for _, dst := range []*uint32{&soa.Serial, &soa.Refresh, &soa.Retry, &soa.Expire, &soa.Minimum} {
			if *dst, err = u.uint32(); err != nil {
				return r, err
			}
		}
		if u.off != end {
			return r, fmt.Errorf("dnswire: %d stray RDATA bytes in SOA", end-u.off)
		}
		r.SOA = soa
	default:
		// Unknown type: skip RDATA, keep the envelope.
		u.off = end
	}
	return r, nil
}

// TypeName returns the mnemonic for a record type, for logs and reports.
func TypeName(t uint16) string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	default:
		return fmt.Sprintf("TYPE%d", t)
	}
}
