package dnswire

import (
	"net/netip"
	"testing"
)

func benchMessage() *Message {
	return &Message{
		Header:    Header{ID: 42, QR: true, AA: true},
		Questions: []Question{{Name: "news-th-202305-0042.co.th", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			{Name: "news-th-202305-0042.co.th", Type: TypeCNAME, Class: ClassIN, TTL: 300, Target: "edge.cdn.example"},
			{Name: "edge.cdn.example", Type: TypeA, Class: ClassIN, TTL: 60, Addr: netip.MustParseAddr("10.0.13.37")},
		},
		Authorities: []Record{
			{Name: "co.th", Type: TypeNS, Class: ClassIN, TTL: 86400, Target: "ns1.registry.th"},
		},
	}
}

func BenchmarkPack(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack(b *testing.B) {
	data, err := benchMessage().Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(data); err != nil {
			b.Fatal(err)
		}
	}
}
