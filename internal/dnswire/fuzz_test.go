package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
)

// FuzzUnpack drives the wire decoder with arbitrary bytes: it must never
// panic, and anything it accepts must survive a re-pack/re-parse cycle
// with identical section shapes (re-packing canonicalizes compression, so
// only the parsed structure is compared).
//
// Run with `go test -fuzz=FuzzUnpack ./internal/dnswire` for open-ended
// fuzzing; the seed corpus runs under plain `go test`.
func FuzzUnpack(f *testing.F) {
	// Seed with real messages covering every record type and compression.
	seeds := []*Message{
		NewQuery(1, "example.com", TypeA),
		NewQuery(2, "example.co.th", TypeNS),
		{
			Header:    Header{ID: 3, QR: true, AA: true},
			Questions: []Question{{Name: "www.example.test", Type: TypeA, Class: ClassIN}},
			Answers: []Record{
				{Name: "www.example.test", Type: TypeCNAME, Class: ClassIN, TTL: 60, Target: "cdn.example.test"},
				{Name: "cdn.example.test", Type: TypeA, Class: ClassIN, TTL: 60, Addr: netip.MustParseAddr("192.0.2.1")},
				{Name: "cdn.example.test", Type: TypeAAAA, Class: ClassIN, TTL: 60, Addr: netip.MustParseAddr("2001:db8::1")},
				{Name: "t.example.test", Type: TypeTXT, Class: ClassIN, TTL: 60, Text: "seed"},
			},
			Authorities: []Record{
				{Name: "example.test", Type: TypeSOA, Class: ClassIN, TTL: 60, SOA: &SOAData{
					MName: "ns1.example.test", RName: "admin.example.test",
					Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5,
				}},
			},
		},
	}
	for _, m := range seeds {
		data, err := m.Pack()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0x0C})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		repacked, err := m.Pack()
		if err != nil {
			// Parsed messages may carry unsupported record types (skipped
			// RDATA); those legitimately refuse to re-pack.
			return
		}
		m2, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("re-parse of re-pack failed: %v", err)
		}
		if len(m2.Questions) != len(m.Questions) ||
			len(m2.Answers) != len(m.Answers) ||
			len(m2.Authorities) != len(m.Authorities) ||
			len(m2.Additionals) != len(m.Additionals) {
			t.Fatalf("section shapes changed across round trip")
		}
	})
}

// FuzzDNSWireParse checks that packing is a canonicalization with a fixed
// point: for any bytes the decoder accepts and the encoder can re-emit,
// one parse→pack cycle lands on a wire form that further parse→pack cycles
// reproduce byte-for-byte. Pack lowercases names, recomputes section
// counts, and re-derives compression deterministically, so the first
// round trip absorbs all of the input's representational freedom.
//
// Run with `go test -fuzz=FuzzDNSWireParse ./internal/dnswire` for
// open-ended fuzzing; the seed corpus runs under plain `go test`.
func FuzzDNSWireParse(f *testing.F) {
	seeds := []*Message{
		NewQuery(7, "Example.COM", TypeA), // mixed case exercises canonicalization
		NewQuery(8, "sub.example.co.th", TypeNS),
		{
			Header:    Header{ID: 9, QR: true},
			Questions: []Question{{Name: "fixed.point.test", Type: TypeAAAA, Class: ClassIN}},
			Answers: []Record{
				{Name: "fixed.point.test", Type: TypeAAAA, Class: ClassIN, TTL: 300, Addr: netip.MustParseAddr("2001:db8::2")},
				{Name: "fixed.point.test", Type: TypeTXT, Class: ClassIN, TTL: 300, Text: "fp"},
			},
		},
	}
	for _, m := range seeds {
		data, err := m.Pack()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		wire1, err := m.Pack()
		if err != nil {
			// Unsupported record types parse (RDATA skipped) but refuse to
			// re-pack; no canonical form exists for them.
			return
		}
		m2, err := Unpack(wire1)
		if err != nil {
			t.Fatalf("canonical form does not parse: %v", err)
		}
		wire2, err := m2.Pack()
		if err != nil {
			t.Fatalf("canonical form does not re-pack: %v", err)
		}
		if !bytes.Equal(wire1, wire2) {
			t.Fatalf("pack∘parse is not a fixed point:\n first  %x\n second %x", wire1, wire2)
		}
	})
}
