package dnswire

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	data, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	return got
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "example.com", TypeA)
	got := roundTrip(t, q)
	if got.Header.ID != 0x1234 || !got.Header.RD || got.Header.QR {
		t.Errorf("header = %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	if got.Questions[0].Name != "example.com" || got.Questions[0].Type != TypeA || got.Questions[0].Class != ClassIN {
		t.Errorf("question = %+v", got.Questions[0])
	}
}

func TestResponseRoundTripAllTypes(t *testing.T) {
	m := &Message{
		Header: Header{ID: 7, QR: true, AA: true, RA: true, RCode: RCodeNoError},
		Questions: []Question{
			{Name: "www.example.co.th", Type: TypeA, Class: ClassIN},
		},
		Answers: []Record{
			{Name: "www.example.co.th", Type: TypeCNAME, Class: ClassIN, TTL: 300, Target: "cdn.example.co.th"},
			{Name: "cdn.example.co.th", Type: TypeA, Class: ClassIN, TTL: 60, Addr: netip.MustParseAddr("203.0.113.9")},
			{Name: "cdn.example.co.th", Type: TypeAAAA, Class: ClassIN, TTL: 60, Addr: netip.MustParseAddr("2001:db8::9")},
		},
		Authorities: []Record{
			{Name: "example.co.th", Type: TypeNS, Class: ClassIN, TTL: 86400, Target: "ns1.hoster.th"},
			{Name: "example.co.th", Type: TypeSOA, Class: ClassIN, TTL: 3600, SOA: &SOAData{
				MName: "ns1.hoster.th", RName: "admin.hoster.th",
				Serial: 2023051500, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
			}},
		},
		Additionals: []Record{
			{Name: "ns1.hoster.th", Type: TypeA, Class: ClassIN, TTL: 60, Addr: netip.MustParseAddr("198.51.100.53")},
			{Name: "info.example.co.th", Type: TypeTXT, Class: ClassIN, TTL: 30, Text: "v=webdep1 layer=hosting"},
		},
	}
	got := roundTrip(t, m)

	if !got.Header.QR || !got.Header.AA || got.Header.RCode != RCodeNoError {
		t.Errorf("header = %+v", got.Header)
	}
	if len(got.Answers) != 3 || len(got.Authorities) != 2 || len(got.Additionals) != 2 {
		t.Fatalf("section sizes: %d %d %d", len(got.Answers), len(got.Authorities), len(got.Additionals))
	}
	if got.Answers[0].Target != "cdn.example.co.th" {
		t.Errorf("CNAME target = %q", got.Answers[0].Target)
	}
	if got.Answers[1].Addr != netip.MustParseAddr("203.0.113.9") {
		t.Errorf("A = %v", got.Answers[1].Addr)
	}
	if got.Answers[2].Addr != netip.MustParseAddr("2001:db8::9") {
		t.Errorf("AAAA = %v", got.Answers[2].Addr)
	}
	soa := got.Authorities[1].SOA
	if soa == nil || soa.MName != "ns1.hoster.th" || soa.Serial != 2023051500 || soa.Minimum != 300 {
		t.Errorf("SOA = %+v", soa)
	}
	if got.Additionals[1].Text != "v=webdep1 layer=hosting" {
		t.Errorf("TXT = %q", got.Additionals[1].Text)
	}
}

func TestCompressionShrinksRepeatedNames(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 1, QR: true},
		Questions: []Question{{Name: "a.very.long.domain.example.com", Type: TypeA, Class: ClassIN}},
	}
	for i := 0; i < 5; i++ {
		m.Answers = append(m.Answers, Record{
			Name: "a.very.long.domain.example.com", Type: TypeA, Class: ClassIN,
			TTL: 60, Addr: netip.MustParseAddr("192.0.2.1"),
		})
	}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Without compression each answer would repeat the 32-byte name; with
	// pointers each costs 2 bytes. Header(12) + question(36) + 5 answers
	// (2+10+4 each) = 128.
	if len(data) > 140 {
		t.Errorf("packed size %d suggests compression is not applied", len(data))
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got.Answers {
		if a.Name != "a.very.long.domain.example.com" {
			t.Errorf("decompressed name = %q", a.Name)
		}
	}
}

func TestNamesAreCaseFolded(t *testing.T) {
	m := NewQuery(1, "WwW.ExAmPlE.CoM", TypeA)
	got := roundTrip(t, m)
	if got.Questions[0].Name != "www.example.com" {
		t.Errorf("name = %q", got.Questions[0].Name)
	}
}

func TestRootName(t *testing.T) {
	m := NewQuery(1, ".", TypeNS)
	got := roundTrip(t, m)
	if got.Questions[0].Name != "" {
		t.Errorf("root name decoded as %q", got.Questions[0].Name)
	}
}

func TestPackValidation(t *testing.T) {
	// Label too long.
	long := strings.Repeat("a", 64) + ".com"
	if _, err := NewQuery(1, long, TypeA).Pack(); err == nil {
		t.Error("64-char label accepted")
	}
	// Name too long.
	name := strings.TrimSuffix(strings.Repeat("abcdefgh.", 32), ".")
	if _, err := NewQuery(1, name, TypeA).Pack(); err == nil {
		t.Error("overlong name accepted")
	}
	// A record with v6 address.
	m := &Message{Answers: []Record{{Name: "x.com", Type: TypeA, Class: ClassIN, Addr: netip.MustParseAddr("::1")}}}
	if _, err := m.Pack(); err == nil {
		t.Error("A record with IPv6 address accepted")
	}
	// AAAA with v4.
	m = &Message{Answers: []Record{{Name: "x.com", Type: TypeAAAA, Class: ClassIN, Addr: netip.MustParseAddr("1.2.3.4")}}}
	if _, err := m.Pack(); err == nil {
		t.Error("AAAA record with IPv4 address accepted")
	}
	// SOA without data.
	m = &Message{Answers: []Record{{Name: "x.com", Type: TypeSOA, Class: ClassIN}}}
	if _, err := m.Pack(); err == nil {
		t.Error("SOA without data accepted")
	}
	// Unsupported type.
	m = &Message{Answers: []Record{{Name: "x.com", Type: 99, Class: ClassIN}}}
	if _, err := m.Pack(); err == nil {
		t.Error("unsupported type accepted")
	}
}

func TestUnpackRejectsTruncation(t *testing.T) {
	full, err := NewQuery(9, "example.org", TypeAAAA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, err := Unpack(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestUnpackRejectsTrailingGarbage(t *testing.T) {
	full, err := NewQuery(9, "example.org", TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unpack(append(full, 0xFF)); err != ErrTrailingBytes {
		t.Errorf("want ErrTrailingBytes, got %v", err)
	}
}

func TestUnpackRejectsPointerLoop(t *testing.T) {
	// Craft a message whose question name is a self-referential pointer.
	buf := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, // header: 1 question
		0xC0, 12, // pointer to itself (offset 12)
		0, 1, 0, 1, // type A, class IN
	}
	if _, err := Unpack(buf); err == nil {
		t.Error("pointer loop accepted")
	}
}

func TestUnpackRejectsReservedLabelType(t *testing.T) {
	buf := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0x80, 3, // reserved label type 10xxxxxx
		0, 1, 0, 1,
	}
	if _, err := Unpack(buf); err == nil {
		t.Error("reserved label type accepted")
	}
}

func TestLongTXTSplitsChunks(t *testing.T) {
	text := strings.Repeat("x", 600)
	m := &Message{
		Header:  Header{ID: 2, QR: true},
		Answers: []Record{{Name: "t.example", Type: TypeTXT, Class: ClassIN, TTL: 1, Text: text}},
	}
	got := roundTrip(t, m)
	if got.Answers[0].Text != text {
		t.Errorf("TXT length %d, want 600", len(got.Answers[0].Text))
	}
}

func TestUnknownRecordTypeSkipped(t *testing.T) {
	// Hand-pack a record of unknown type 33 (SRV) and ensure the envelope
	// survives while RDATA is skipped.
	var p packer
	p.pointers = map[string]int{}
	p.uint16(5) // ID
	p.uint16(1 << 15)
	p.uint16(0)
	p.uint16(1)
	p.uint16(0)
	p.uint16(0)
	if err := p.name("srv.example"); err != nil {
		t.Fatal(err)
	}
	p.uint16(33) // SRV
	p.uint16(ClassIN)
	p.uint32(60)
	p.uint16(6)
	p.buf = append(p.buf, 1, 2, 3, 4, 5, 6)

	got, err := Unpack(p.buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 1 || got.Answers[0].Type != 33 {
		t.Fatalf("answers = %+v", got.Answers)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(id uint16, l1, l2 uint8, a, b, c, d byte) bool {
		label := func(n uint8) string {
			n = n%20 + 1
			return strings.Repeat("x", int(n))
		}
		name := label(l1) + "." + label(l2) + ".test"
		m := &Message{
			Header:    Header{ID: id, QR: true, AA: true},
			Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
			Answers: []Record{{
				Name: name, Type: TypeA, Class: ClassIN, TTL: 42,
				Addr: netip.AddrFrom4([4]byte{a, b, c, d}),
			}},
		}
		data, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(data)
		if err != nil {
			return false
		}
		return got.Header.ID == id &&
			got.Questions[0].Name == name &&
			got.Answers[0].Addr == netip.AddrFrom4([4]byte{a, b, c, d})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeName(t *testing.T) {
	cases := map[uint16]string{
		TypeA: "A", TypeNS: "NS", TypeCNAME: "CNAME",
		TypeSOA: "SOA", TypeTXT: "TXT", TypeAAAA: "AAAA",
		99: "TYPE99",
	}
	for typ, want := range cases {
		if got := TypeName(typ); got != want {
			t.Errorf("TypeName(%d) = %q, want %q", typ, got, want)
		}
	}
}

func TestPackedQueryIsStable(t *testing.T) {
	a, err := NewQuery(3, "stable.example", TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewQuery(3, "stable.example", TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("packing is not deterministic")
	}
}

func TestUnpackNeverPanicsProperty(t *testing.T) {
	// The decoder must reject or survive arbitrary bytes, never panic.
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		Unpack(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnpackNeverPanicsOnMutatedMessages(t *testing.T) {
	// Bit-flip a valid message at every position: still no panics, and
	// whatever parses must re-pack without panicking either.
	base, err := NewQuery(77, "mutate.example.com", TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			mutated := append([]byte(nil), base...)
			mutated[i] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on mutation at byte %d: %v", i, r)
					}
				}()
				if m, err := Unpack(mutated); err == nil {
					m.Pack()
				}
			}()
		}
	}
}
