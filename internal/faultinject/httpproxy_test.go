package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// httpBackend serves a fixed body so every proxy fault has a known
// fault-free exchange to perturb.
func httpBackend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Backend", "yes")
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func httpProxyFor(t *testing.T, upstream string, plan HTTPPlan) *HTTPProxy {
	t.Helper()
	p, err := NewHTTP(upstream, plan)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestHTTPProxyForwardsCleanly(t *testing.T) {
	srv := httpBackend(t, "hello through the proxy")
	p := httpProxyFor(t, strings.TrimPrefix(srv.URL, "http://"), HTTPPlan{})
	resp, err := http.Get("http://" + p.Addr + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || string(body) != "hello through the proxy" {
		t.Fatalf("body = %q, err = %v", body, err)
	}
	if resp.Header.Get("X-Backend") != "yes" {
		t.Error("backend headers were not relayed")
	}
	if st := p.Stats(); st.Forwarded != 1 || st.Dropped+st.Reset+st.Fail5xx+st.Truncated != 0 {
		t.Errorf("stats = %+v, want one clean forward", st)
	}
}

func TestHTTPProxyDropAndReset(t *testing.T) {
	srv := httpBackend(t, "x")
	upstream := strings.TrimPrefix(srv.URL, "http://")

	// Sequence 0 dropped (DropFirst), sequence 1 forwarded (1%2 ≥ 1),
	// sequence 2 reset (2%2 < 1).
	p := httpProxyFor(t, upstream, HTTPPlan{DropFirst: 1, ResetMod: 2, ResetModUnder: 1})
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	if _, err := client.Get("http://" + p.Addr + "/"); err == nil {
		t.Fatal("dropped request returned a response")
	}
	resp, err := client.Get("http://" + p.Addr + "/")
	if err != nil {
		t.Fatalf("second request should forward: %v", err)
	}
	resp.Body.Close()
	if _, err := client.Get("http://" + p.Addr + "/"); err == nil {
		t.Fatal("reset request returned a response")
	}
	st := p.Stats()
	if st.Dropped != 1 || st.Reset != 1 || st.Forwarded != 1 {
		t.Errorf("stats = %+v, want 1 drop / 1 reset / 1 forward", st)
	}
}

func TestHTTPProxyInjects5xx(t *testing.T) {
	srv := httpBackend(t, "x")
	p := httpProxyFor(t, strings.TrimPrefix(srv.URL, "http://"),
		HTTPPlan{Fail5xxMod: 2, Fail5xxModUnder: 1})
	resp, err := http.Get("http://" + p.Addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get("http://" + p.Addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request status = %d, want the clean forward", resp.StatusCode)
	}
}

func TestHTTPProxyTruncatesBody(t *testing.T) {
	full := strings.Repeat("payload-", 64)
	srv := httpBackend(t, full)
	p := httpProxyFor(t, strings.TrimPrefix(srv.URL, "http://"),
		HTTPPlan{TruncateMod: 1, TruncateModUnder: 1, TruncateBytes: 10})
	resp, err := http.Get("http://" + p.Addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ContentLength != int64(len(full)) {
		t.Fatalf("advertised length %d, want the TRUE length %d", resp.ContentLength, len(full))
	}
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("short body read cleanly (%d bytes); truncation must surface as an error", len(body))
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("read error = %v, want unexpected EOF", err)
	}
	if len(body) != 10 {
		t.Errorf("got %d body bytes before the cut, want 10", len(body))
	}
	if st := p.Stats(); st.Truncated != 1 {
		t.Errorf("stats = %+v, want one truncation", st)
	}
}

func TestHTTPProxyLatency(t *testing.T) {
	srv := httpBackend(t, "x")
	const delay = 60 * time.Millisecond
	p := httpProxyFor(t, strings.TrimPrefix(srv.URL, "http://"), HTTPPlan{Latency: delay})
	start := time.Now()
	resp, err := http.Get("http://" + p.Addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("request took %v, latency plan says at least %v", elapsed, delay)
	}
}

// TestHTTPPlanPrecedence pins the documented most-destructive-wins order
// when several patterns match one sequence number.
func TestHTTPPlanPrecedence(t *testing.T) {
	plan := HTTPPlan{
		DropMod: 4, DropModUnder: 1,
		ResetMod: 2, ResetModUnder: 1,
		Fail5xxMod: 1, Fail5xxModUnder: 1,
	}
	want := []httpFault{faultDrop, fault5xx, faultReset, fault5xx, faultDrop}
	for seq, f := range want {
		if got := plan.decide(seq); got != f {
			t.Errorf("seq %d: fault %v, want %v", seq, got, f)
		}
	}
	if got := (HTTPPlan{}).decide(0); got != faultNone {
		t.Errorf("zero plan decided %v", got)
	}
}
