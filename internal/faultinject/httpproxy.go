package faultinject

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// HTTPPlan decides, per proxied request, whether and how to perturb an
// HTTP exchange. The zero value forwards everything unchanged. Decisions
// are deterministic functions of the request sequence number, exactly like
// Plan's datagram/connection decisions, so tests can reason about which
// requests fail and how.
//
// When several patterns match the same request the most destructive wins:
// drop, then reset, then 5xx, then truncation.
type HTTPPlan struct {
	// DropFirst drops the first N requests: the connection is closed after
	// the request is read, with no response bytes — the client sees the
	// server hang up (EOF).
	DropFirst int
	// DropMod/DropModUnder drop every request whose sequence number s
	// satisfies s % DropMod < DropModUnder. Ignored when DropMod <= 0.
	DropMod      int
	DropModUnder int
	// ResetMod/ResetModUnder abort matching requests with a TCP RST
	// (SO_LINGER 0), the brutal sibling of a drop: the client surfaces a
	// connection-reset error instead of a clean EOF.
	ResetMod      int
	ResetModUnder int
	// Fail5xxMod/Fail5xxModUnder answer matching requests with 503 without
	// ever contacting the upstream — a proxy or load balancer melting down
	// in front of a healthy service.
	Fail5xxMod      int
	Fail5xxModUnder int
	// TruncateMod/TruncateModUnder forward matching requests upstream and
	// relay the response's status, headers, and TRUE Content-Length, but cut
	// the body off after TruncateBytes bytes and close the connection — the
	// client reads a short body and must detect the unexpected EOF rather
	// than accept a silently partial payload.
	TruncateMod      int
	TruncateModUnder int
	// TruncateBytes is how many response body bytes a truncated exchange
	// lets through.
	TruncateBytes int
	// Latency delays each non-dropped request before it reaches upstream.
	Latency time.Duration
}

// httpFault is one request's fate under a plan.
type httpFault int

const (
	faultNone httpFault = iota
	faultDrop
	faultReset
	fault5xx
	faultTruncate
)

// decide maps a zero-based request sequence number to its fault.
func (p HTTPPlan) decide(seq int) httpFault {
	if seq < p.DropFirst {
		return faultDrop
	}
	if p.DropMod > 0 && seq%p.DropMod < p.DropModUnder {
		return faultDrop
	}
	if p.ResetMod > 0 && seq%p.ResetMod < p.ResetModUnder {
		return faultReset
	}
	if p.Fail5xxMod > 0 && seq%p.Fail5xxMod < p.Fail5xxModUnder {
		return fault5xx
	}
	if p.TruncateMod > 0 && seq%p.TruncateMod < p.TruncateModUnder {
		return faultTruncate
	}
	return faultNone
}

// HTTPStats counts an HTTP proxy's fault decisions.
type HTTPStats struct {
	Forwarded, Dropped, Reset, Fail5xx, Truncated int
}

// HTTPProxy forwards HTTP requests from one loopback port to an upstream
// "host:port", injecting the plan's faults between the client and the
// upstream. It is the transport-level counterpart of the datagram Proxy:
// where Plan perturbs packets, HTTPPlan perturbs whole request/response
// exchanges — which is the right granularity for a shard-dispatch
// transport whose unit of work is one HTTP call.
type HTTPProxy struct {
	// Addr is the proxy's "host:port".
	Addr string

	upstream string
	plan     HTTPPlan
	srv      *http.Server
	ln       net.Listener
	client   *http.Client
	done     chan struct{}

	mu    sync.Mutex
	seq   int
	stats HTTPStats
}

// NewHTTP starts an HTTP fault proxy for the upstream "host:port".
func NewHTTP(upstream string, plan HTTPPlan) (*HTTPProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultinject: http proxy listener: %w", err)
	}
	p := &HTTPProxy{
		upstream: upstream,
		plan:     plan,
		ln:       ln,
		done:     make(chan struct{}),
		client: &http.Client{
			Transport: &http.Transport{DisableKeepAlives: true},
			Timeout:   upstreamTimeout * 5,
		},
	}
	p.Addr = ln.Addr().String()
	p.srv = &http.Server{Handler: http.HandlerFunc(p.handle), ReadHeaderTimeout: upstreamTimeout}
	go func() {
		defer close(p.done)
		_ = p.srv.Serve(ln)
	}()
	return p, nil
}

// Stats snapshots the proxy's fault accounting.
func (p *HTTPProxy) Stats() HTTPStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops accepting connections and severs in-flight ones.
func (p *HTTPProxy) Close() error {
	err := p.srv.Close()
	<-p.done
	p.client.CloseIdleConnections()
	return err
}

func (p *HTTPProxy) handle(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	seq := p.seq
	p.seq++
	fault := p.plan.decide(seq)
	switch fault {
	case faultDrop:
		p.stats.Dropped++
	case faultReset:
		p.stats.Reset++
	case fault5xx:
		p.stats.Fail5xx++
	case faultTruncate:
		p.stats.Truncated++
	default:
		p.stats.Forwarded++
	}
	p.mu.Unlock()

	switch fault {
	case faultDrop:
		p.sever(w, r, false)
		return
	case faultReset:
		p.sever(w, r, true)
		return
	case fault5xx:
		http.Error(w, "faultinject: injected 503", http.StatusServiceUnavailable)
		return
	}

	if p.plan.Latency > 0 {
		t := time.NewTimer(p.plan.Latency)
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
	}

	resp, err := p.roundTrip(r)
	if err != nil {
		// The upstream itself failed; surface it as a gateway error rather
		// than inventing a fault the plan did not call for.
		http.Error(w, "faultinject: upstream: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()

	if fault == faultTruncate {
		p.truncate(w, r, resp)
		return
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// roundTrip replays the client's request against the upstream.
func (p *HTTPProxy) roundTrip(r *http.Request) (*http.Response, error) {
	out := r.Clone(r.Context())
	out.URL.Scheme = "http"
	out.URL.Host = p.upstream
	out.Host = p.upstream
	out.RequestURI = ""
	return p.client.Do(out)
}

// sever hijacks the client connection and closes it without a response —
// with SO_LINGER zero for a reset, so the close turns into an RST instead
// of a FIN and the client reports a connection reset.
func (p *HTTPProxy) sever(w http.ResponseWriter, r *http.Request, reset bool) {
	// Drain the request first so the close is unambiguous: the server read
	// everything and still said nothing.
	_, _ = io.Copy(io.Discard, r.Body)
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("faultinject: response writer is not hijackable")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if reset {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
	}
	conn.Close()
}

// truncate relays the upstream response's status line, headers, and true
// Content-Length, then cuts the body after TruncateBytes bytes and closes
// the connection, leaving the client with a short read it must refuse.
func (p *HTTPProxy) truncate(w http.ResponseWriter, r *http.Request, resp *http.Response) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("faultinject: response writer is not hijackable")
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return
	}
	fmt.Fprintf(buf, "HTTP/1.1 %s\r\n", resp.Status)
	for k, vs := range resp.Header {
		if k == "Content-Length" || k == "Transfer-Encoding" || k == "Connection" {
			continue
		}
		for _, v := range vs {
			fmt.Fprintf(buf, "%s: %s\r\n", k, v)
		}
	}
	fmt.Fprintf(buf, "Content-Length: %d\r\nConnection: close\r\n\r\n", len(body))
	cut := p.plan.TruncateBytes
	if cut > len(body) {
		cut = len(body)
	}
	_, _ = buf.Write(body[:cut])
	_ = buf.Flush()
}
