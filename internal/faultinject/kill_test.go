package faultinject

import (
	"bytes"
	"errors"
	"testing"
)

func TestKillWriterForwardsUntilKillPoint(t *testing.T) {
	var buf bytes.Buffer
	killed := 0
	kw := NewKillWriter(&buf, 2, 0, func() { killed++ })

	for i, p := range [][]byte{[]byte("aaaa"), []byte("bbbb")} {
		n, err := kw.Write(p)
		if err != nil || n != 4 {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
	}
	if kw.Killed() {
		t.Fatal("killed before the kill point")
	}
	n, err := kw.Write([]byte("cccc"))
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("fatal write: err=%v, want ErrKilled", err)
	}
	if n != 0 {
		t.Fatalf("fatal write persisted %d bytes with ExtraBytes 0", n)
	}
	if got := buf.String(); got != "aaaabbbb" {
		t.Fatalf("stream holds %q, want exactly the pre-kill writes", got)
	}
	if killed != 1 {
		t.Fatalf("onKill ran %d times, want once", killed)
	}

	// Everything after the kill fails without touching the stream.
	if _, err := kw.Write([]byte("d")); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill write: err=%v", err)
	}
	if err := kw.Sync(); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill sync: err=%v", err)
	}
	if killed != 1 {
		t.Fatalf("onKill ran %d times after extra writes, want once", killed)
	}
	if got := buf.String(); got != "aaaabbbb" {
		t.Fatalf("post-kill writes leaked into the stream: %q", got)
	}
}

func TestKillWriterTearsMidWrite(t *testing.T) {
	var buf bytes.Buffer
	kw := NewKillWriter(&buf, 1, 3, nil)

	if _, err := kw.Write([]byte("record-0")); err != nil {
		t.Fatal(err)
	}
	n, err := kw.Write([]byte("record-1"))
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("torn write: err=%v, want ErrKilled", err)
	}
	if n != 3 {
		t.Fatalf("torn write persisted %d bytes, want 3", n)
	}
	if got := buf.String(); got != "record-0rec" {
		t.Fatalf("stream holds %q, want a 3-byte tear of the second record", got)
	}
}

func TestKillWriterSyncPassesThroughBeforeKill(t *testing.T) {
	// bytes.Buffer has no Sync; the wrapper must treat that as success.
	kw := NewKillWriter(&bytes.Buffer{}, 1, 0, nil)
	if err := kw.Sync(); err != nil {
		t.Fatalf("pre-kill sync on syncless writer: %v", err)
	}
}
