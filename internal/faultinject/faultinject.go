// Package faultinject is the toolkit's reusable fault-injection harness:
// lossy, latent, and blackhole proxies for UDP datagrams and TCP
// connections, promoted out of the resolver's test-local lossy proxy so
// every live-path component (DNS resolution, TLS scanning, page fetches)
// can be exercised behind injected network failures.
//
// A Proxy listens on one loopback port for both UDP and TCP and forwards
// traffic to an upstream "host:port", applying an independent Plan per
// protocol. Binding both protocols to the same port matters for DNS: a
// resolver that falls back from UDP to TCP on truncation reaches the same
// proxy address over both transports, exactly as it would a real server.
//
// Fault decisions are deterministic functions of the event sequence number
// (datagram for UDP, accepted connection for TCP), not of a random source,
// so tests can reason about exactly which events are dropped.
package faultinject

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Plan decides, per event, whether and how to perturb traffic. The zero
// value forwards everything unchanged.
type Plan struct {
	// DropFirst drops the first N events outright.
	DropFirst int
	// DropMod/DropModUnder drop every event whose sequence number s
	// satisfies s % DropMod < DropModUnder — e.g. {10, 3} injects a
	// deterministic 30% loss pattern. Ignored when DropMod <= 0.
	DropMod      int
	DropModUnder int
	// Blackhole drops every event: datagrams vanish, connections are
	// accepted and immediately closed.
	Blackhole bool
	// Latency delays each forwarded event before it reaches upstream.
	Latency time.Duration
}

// drops reports whether the event with the given zero-based sequence
// number is dropped.
func (p Plan) drops(seq int) bool {
	if p.Blackhole {
		return true
	}
	if seq < p.DropFirst {
		return true
	}
	if p.DropMod > 0 && seq%p.DropMod < p.DropModUnder {
		return true
	}
	return false
}

// Stats counts a proxy's fault decisions per protocol.
type Stats struct {
	UDPDropped, UDPForwarded int
	TCPDropped, TCPForwarded int
}

// Proxy forwards UDP datagrams and TCP connections from one loopback port
// to an upstream address, injecting the configured faults. Close releases
// the listeners.
type Proxy struct {
	// Addr is the proxy's "host:port", shared by UDP and TCP.
	Addr string

	upstream string
	udpPlan  Plan
	tcpPlan  Plan

	udp *net.UDPConn
	tcp net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	udpSeq int
	tcpSeq int
	stats  Stats
}

// upstreamTimeout bounds the proxy's own dials and reads against the
// upstream so dropped responses cannot wedge forwarding goroutines.
const upstreamTimeout = 2 * time.Second

// New starts a proxy for the upstream "host:port", applying udpPlan to
// inbound datagrams and tcpPlan to accepted connections.
func New(upstream string, udpPlan, tcpPlan Plan) (*Proxy, error) {
	p := &Proxy{upstream: upstream, udpPlan: udpPlan, tcpPlan: tcpPlan}

	// Bind TCP and UDP to the same loopback port. The port is chosen by
	// the TCP bind; the matching UDP bind can collide with an unrelated
	// socket, so retry with fresh ports a few times.
	var lastErr error
	for tries := 0; tries < 20; tries++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		port := ln.Addr().(*net.TCPAddr).Port
		uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port})
		if err != nil {
			ln.Close()
			lastErr = err
			continue
		}
		p.tcp, p.udp = ln, uc
		break
	}
	if p.tcp == nil {
		return nil, fmt.Errorf("faultinject: no shared udp/tcp port: %w", lastErr)
	}
	p.Addr = p.tcp.Addr().String()

	p.wg.Add(2)
	go p.serveUDP()
	go p.serveTCP()
	return p, nil
}

// Close shuts the proxy's listeners down. In-flight forwards finish on
// their own (bounded by upstreamTimeout).
func (p *Proxy) Close() error {
	udpErr := p.udp.Close()
	tcpErr := p.tcp.Close()
	p.wg.Wait()
	if udpErr != nil {
		return udpErr
	}
	return tcpErr
}

// Stats returns the fault-decision counters so far.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// serveUDP forwards each inbound datagram on its own goroutine, relaying
// one response back to the client, as the resolver's test proxy did.
func (p *Proxy) serveUDP() {
	defer p.wg.Done()
	upAddr, err := net.ResolveUDPAddr("udp", p.upstream)
	if err != nil {
		return
	}
	buf := make([]byte, 65535)
	for {
		n, client, err := p.udp.ReadFromUDP(buf)
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		seq := p.udpSeq
		p.udpSeq++
		drop := p.udpPlan.drops(seq)
		if drop {
			p.stats.UDPDropped++
		} else {
			p.stats.UDPForwarded++
		}
		p.mu.Unlock()
		if drop {
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		go p.forwardUDP(pkt, client, upAddr)
	}
}

func (p *Proxy) forwardUDP(pkt []byte, client, upAddr *net.UDPAddr) {
	if p.udpPlan.Latency > 0 {
		time.Sleep(p.udpPlan.Latency)
	}
	up, err := net.DialUDP("udp", nil, upAddr)
	if err != nil {
		return
	}
	defer up.Close()
	if _, err := up.Write(pkt); err != nil {
		return
	}
	up.SetReadDeadline(time.Now().Add(upstreamTimeout))
	resp := make([]byte, 65535)
	n, err := up.Read(resp)
	if err != nil {
		return
	}
	p.udp.WriteToUDP(resp[:n], client)
}

// serveTCP accepts connections, dropping doomed ones by closing them
// immediately (the client sees a peer hang-up, like a middlebox reset).
func (p *Proxy) serveTCP() {
	defer p.wg.Done()
	for {
		conn, err := p.tcp.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		seq := p.tcpSeq
		p.tcpSeq++
		drop := p.tcpPlan.drops(seq)
		if drop {
			p.stats.TCPDropped++
		} else {
			p.stats.TCPForwarded++
		}
		p.mu.Unlock()
		if drop {
			conn.Close()
			continue
		}
		go p.forwardTCP(conn)
	}
}

func (p *Proxy) forwardTCP(client net.Conn) {
	if p.tcpPlan.Latency > 0 {
		time.Sleep(p.tcpPlan.Latency)
	}
	up, err := net.DialTimeout("tcp", p.upstream, upstreamTimeout)
	if err != nil {
		client.Close()
		return
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(up, client)
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite() // propagate the client's half-close upstream
		}
	}()
	io.Copy(client, up)
	client.Close()
	up.Close()
	<-done
}
