package faultinject

import (
	"errors"
	"io"
	"sync"
)

// ErrKilled is returned by a KillWriter for every write or sync after its
// kill point: the simulated process is dead, nothing reaches the disk.
var ErrKilled = errors.New("faultinject: write stream killed at kill point")

// KillWriter simulates a process crash at an exact point in a write
// stream. It forwards the first AfterWrites complete Write calls, then
// lets ExtraBytes more bytes of the next write through before failing —
// landing the kill mid-record for length-prefixed journal formats — and
// from then on fails every Write and Sync with ErrKilled.
//
// The checkpoint journal issues exactly one Write per record, so
// (AfterWrites, ExtraBytes) addresses any journal offset: a whole-record
// boundary with ExtraBytes zero, or an arbitrary torn write inside record
// AfterWrites+1 otherwise. Decisions are deterministic functions of the
// write sequence, in the spirit of the proxies' Plan.
type KillWriter struct {
	mu        sync.Mutex
	w         io.Writer
	remaining int   // complete writes still allowed
	extra     int64 // bytes of the fatal write still allowed through
	killed    bool
	onKill    func()
}

// NewKillWriter wraps w with a kill point after afterWrites complete
// writes plus extraBytes of the following write. onKill, when non-nil,
// runs exactly once — on the caller's goroutine — at the moment the kill
// triggers, so tests can abort the crawl as the "crash" happens.
func NewKillWriter(w io.Writer, afterWrites int, extraBytes int64, onKill func()) *KillWriter {
	return &KillWriter{w: w, remaining: afterWrites, extra: extraBytes, onKill: onKill}
}

// Write forwards p until the kill point; the fatal write persists only its
// allowed prefix and returns ErrKilled alongside the short count.
func (k *KillWriter) Write(p []byte) (int, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.killed {
		return 0, ErrKilled
	}
	if k.remaining > 0 {
		k.remaining--
		return k.w.Write(p)
	}
	n := len(p)
	if int64(n) > k.extra {
		n = int(k.extra)
	}
	if n > 0 {
		if wn, err := k.w.Write(p[:n]); err != nil {
			// The underlying disk failed before the simulated crash did;
			// surface that truthfully.
			return wn, err
		}
	}
	k.kill()
	return n, ErrKilled
}

// Sync forwards to the underlying writer's Sync until the kill point.
func (k *KillWriter) Sync() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.killed {
		return ErrKilled
	}
	if s, ok := k.w.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Killed reports whether the kill point has triggered.
func (k *KillWriter) Killed() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.killed
}

func (k *KillWriter) kill() {
	k.killed = true
	if k.onKill != nil {
		k.onKill()
	}
}
