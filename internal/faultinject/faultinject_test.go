package faultinject

import (
	"io"
	"net"
	"testing"
	"time"
)

// startUDPEcho serves a UDP echo upstream for proxy tests.
func startUDPEcho(t *testing.T) string {
	t.Helper()
	uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { uc.Close() })
	go func() {
		buf := make([]byte, 4096)
		for {
			n, client, err := uc.ReadFromUDP(buf)
			if err != nil {
				return
			}
			uc.WriteToUDP(buf[:n], client)
		}
	}()
	return uc.LocalAddr().String()
}

// startTCPEcho serves a TCP echo upstream for proxy tests.
func startTCPEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(c, c)
				c.Close()
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// udpRoundTrip sends msg through the proxy and returns the reply or "".
func udpRoundTrip(t *testing.T, addr, msg string, timeout time.Duration) string {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(msg)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return ""
	}
	return string(buf[:n])
}

func TestPlanDrops(t *testing.T) {
	cases := []struct {
		plan Plan
		seq  int
		want bool
	}{
		{Plan{}, 0, false},
		{Plan{DropFirst: 2}, 0, true},
		{Plan{DropFirst: 2}, 1, true},
		{Plan{DropFirst: 2}, 2, false},
		{Plan{DropMod: 10, DropModUnder: 3}, 0, true},
		{Plan{DropMod: 10, DropModUnder: 3}, 2, true},
		{Plan{DropMod: 10, DropModUnder: 3}, 3, false},
		{Plan{DropMod: 10, DropModUnder: 3}, 12, true},
		{Plan{DropMod: 10, DropModUnder: 3}, 13, false},
		{Plan{Blackhole: true}, 999, true},
	}
	for _, c := range cases {
		if got := c.plan.drops(c.seq); got != c.want {
			t.Errorf("%+v.drops(%d) = %v, want %v", c.plan, c.seq, got, c.want)
		}
	}
}

func TestUDPForwarding(t *testing.T) {
	up := startUDPEcho(t)
	p, err := New(up, Plan{}, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := udpRoundTrip(t, p.Addr, "hello", time.Second); got != "hello" {
		t.Fatalf("reply = %q", got)
	}
	if s := p.Stats(); s.UDPForwarded != 1 || s.UDPDropped != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestUDPDropFirst(t *testing.T) {
	up := startUDPEcho(t)
	p, err := New(up, Plan{DropFirst: 2}, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 2; i++ {
		if got := udpRoundTrip(t, p.Addr, "x", 150*time.Millisecond); got != "" {
			t.Fatalf("datagram %d not dropped (reply %q)", i, got)
		}
	}
	if got := udpRoundTrip(t, p.Addr, "through", time.Second); got != "through" {
		t.Fatalf("third datagram: reply = %q", got)
	}
	if s := p.Stats(); s.UDPDropped != 2 || s.UDPForwarded != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestUDPBlackhole(t *testing.T) {
	up := startUDPEcho(t)
	p, err := New(up, Plan{Blackhole: true}, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 3; i++ {
		if got := udpRoundTrip(t, p.Addr, "x", 100*time.Millisecond); got != "" {
			t.Fatal("blackhole forwarded a datagram")
		}
	}
}

func TestUDPLatency(t *testing.T) {
	up := startUDPEcho(t)
	p, err := New(up, Plan{Latency: 80 * time.Millisecond}, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	if got := udpRoundTrip(t, p.Addr, "slow", 2*time.Second); got != "slow" {
		t.Fatalf("reply = %q", got)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("round trip took %v, want >= 80ms of injected latency", elapsed)
	}
}

func TestTCPForwarding(t *testing.T) {
	up := startTCPEcho(t)
	p, err := New(up, Plan{}, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	data, err := io.ReadAll(conn)
	if err != nil || string(data) != "ping" {
		t.Fatalf("read %q, %v", data, err)
	}
	if s := p.Stats(); s.TCPForwarded != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTCPDropFirstClosesConnection(t *testing.T) {
	up := startTCPEcho(t)
	p, err := New(up, Plan{}, Plan{DropFirst: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// First connection: accepted then closed; reads see EOF.
	conn, err := net.Dial("tcp", p.Addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("dropped connection read err = %v, want EOF", err)
	}
	conn.Close()

	// Second connection passes through.
	conn2, err := net.Dial("tcp", p.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.Write([]byte("ok"))
	conn2.(*net.TCPConn).CloseWrite()
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	data, _ := io.ReadAll(conn2)
	if string(data) != "ok" {
		t.Fatalf("second connection read %q", data)
	}
	if s := p.Stats(); s.TCPDropped != 1 || s.TCPForwarded != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSharedPortUDPAndTCP(t *testing.T) {
	udpUp := startUDPEcho(t)
	p, err := New(udpUp, Plan{}, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// The same Addr must answer over both transports. TCP upstream here is
	// the UDP echo's host:port, which nothing serves — but the *proxy*
	// accept must still succeed on the shared port.
	if got := udpRoundTrip(t, p.Addr, "udp-side", time.Second); got != "udp-side" {
		t.Fatalf("udp through shared port: %q", got)
	}
	conn, err := net.DialTimeout("tcp", p.Addr, time.Second)
	if err != nil {
		t.Fatalf("tcp dial on shared port: %v", err)
	}
	conn.Close()
}

func TestCloseStopsProxy(t *testing.T) {
	up := startUDPEcho(t)
	p, err := New(up, Plan{}, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := net.DialTimeout("tcp", p.Addr, 200*time.Millisecond); err == nil {
		t.Error("closed proxy still accepting TCP")
	}
}
