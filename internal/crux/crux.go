// Package crux models the Chrome User Experience Report toplist semantics
// the paper's dataset is built on (Section 3.4): per-country popularity
// lists whose entries carry rank-magnitude buckets rather than exact ranks,
// whose lengths differ with traffic volume and Chrome adoption, and from
// which the paper takes the top-10K cut for the 150 countries whose lists
// are at least that long.
package crux

import (
	"errors"
	"fmt"
	"sort"
)

// Bucket is a CrUX rank-magnitude bucket: sites are reported as being in
// the top 1K, 5K, 10K, … rather than at exact ranks.
type Bucket int

// The standard CrUX rank magnitudes.
var bucketBounds = []int{1000, 5000, 10000, 50000, 100000, 500000, 1000000}

// BucketFor returns the rank-magnitude bucket for a 1-based rank: the
// smallest standard magnitude that contains it.
func BucketFor(rank int) (Bucket, error) {
	if rank < 1 {
		return 0, fmt.Errorf("crux: invalid rank %d", rank)
	}
	for _, bound := range bucketBounds {
		if rank <= bound {
			return Bucket(bound), nil
		}
	}
	return 0, fmt.Errorf("crux: rank %d beyond the largest magnitude", rank)
}

// Magnitude returns the bucket's numeric bound (1000, 5000, …).
func (b Bucket) Magnitude() int { return int(b) }

// String renders the bucket as CrUX does ("top 10k").
func (b Bucket) String() string {
	switch {
	case b >= 1000000:
		return "top 1m"
	case b >= 1000:
		return fmt.Sprintf("top %dk", int(b)/1000)
	default:
		return fmt.Sprintf("top %d", int(b))
	}
}

// Entry is one row of a country's CrUX-style list.
type Entry struct {
	Domain string
	Bucket Bucket
}

// List is a country's popularity list with bucketed ranks.
type List struct {
	Country string
	Entries []Entry
}

// ErrTooShort is returned when a cut asks for more sites than the list
// holds.
var ErrTooShort = errors.New("crux: list shorter than requested cut")

// FromRanked converts an exact-ranked domain list into bucketed CrUX form.
// Within a bucket, CrUX provides no ordering; the input order is preserved
// but carries no meaning beyond bucket membership.
func FromRanked(country string, domains []string) (*List, error) {
	l := &List{Country: country}
	for i, d := range domains {
		b, err := BucketFor(i + 1)
		if err != nil {
			return nil, err
		}
		l.Entries = append(l.Entries, Entry{Domain: d, Bucket: b})
	}
	return l, nil
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.Entries) }

// Cut returns the domains of every bucket up to and including the magnitude
// that covers n — the paper's "top 10K websites" selection. It fails with
// ErrTooShort when the list does not reach n entries, mirroring how the
// paper excludes countries with short lists.
func (l *List) Cut(n int) ([]string, error) {
	if len(l.Entries) < n {
		return nil, fmt.Errorf("%w: have %d, want %d", ErrTooShort, len(l.Entries), n)
	}
	bound, err := BucketFor(n)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range l.Entries {
		if e.Bucket <= bound && len(out) < n {
			out = append(out, e.Domain)
		}
	}
	return out, nil
}

// Buckets returns the bucket magnitudes present, ascending.
func (l *List) Buckets() []Bucket {
	seen := map[Bucket]bool{}
	var out []Bucket
	for _, e := range l.Entries {
		if !seen[e.Bucket] {
			seen[e.Bucket] = true
			out = append(out, e.Bucket)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Eligibility reproduces the paper's country-selection rule: given each
// country's list length, return the countries whose lists reach the cut
// (the paper: 150 of 237, i.e. 63.3%, reach 10K), sorted by code.
func Eligibility(listLengths map[string]int, cut int) (eligible []string, excluded []string) {
	for cc, n := range listLengths {
		if n >= cut {
			eligible = append(eligible, cc)
		} else {
			excluded = append(excluded, cc)
		}
	}
	sort.Strings(eligible)
	sort.Strings(excluded)
	return eligible, excluded
}
