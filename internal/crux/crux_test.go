package crux

import (
	"errors"
	"fmt"
	"testing"
)

func TestBucketFor(t *testing.T) {
	cases := []struct {
		rank int
		want Bucket
	}{
		{1, 1000}, {999, 1000}, {1000, 1000},
		{1001, 5000}, {5000, 5000},
		{5001, 10000}, {10000, 10000},
		{10001, 50000}, {999999, 1000000}, {1000000, 1000000},
	}
	for _, c := range cases {
		got, err := BucketFor(c.rank)
		if err != nil || got != c.want {
			t.Errorf("BucketFor(%d) = %v, %v; want %v", c.rank, got, err, c.want)
		}
	}
	if _, err := BucketFor(0); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, err := BucketFor(1000001); err == nil {
		t.Error("rank beyond largest magnitude accepted")
	}
}

func TestBucketString(t *testing.T) {
	if Bucket(10000).String() != "top 10k" {
		t.Errorf("String = %q", Bucket(10000).String())
	}
	if Bucket(1000000).String() != "top 1m" {
		t.Errorf("String = %q", Bucket(1000000).String())
	}
	if Bucket(10000).Magnitude() != 10000 {
		t.Error("Magnitude wrong")
	}
}

func makeDomains(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("site-%05d.example", i)
	}
	return out
}

func TestFromRankedAndBuckets(t *testing.T) {
	l, err := FromRanked("TH", makeDomains(12000))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 12000 {
		t.Fatalf("Len = %d", l.Len())
	}
	buckets := l.Buckets()
	want := []Bucket{1000, 5000, 10000, 50000}
	if len(buckets) != len(want) {
		t.Fatalf("Buckets = %v", buckets)
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("Buckets = %v, want %v", buckets, want)
		}
	}
	// Entry 0 in top-1k, entry 9999 in top-10k, entry 10000 in top-50k.
	if l.Entries[0].Bucket != 1000 || l.Entries[9999].Bucket != 10000 || l.Entries[10000].Bucket != 50000 {
		t.Error("bucket assignment wrong")
	}
}

func TestCut(t *testing.T) {
	l, err := FromRanked("US", makeDomains(12000))
	if err != nil {
		t.Fatal(err)
	}
	top10k, err := l.Cut(10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(top10k) != 10000 {
		t.Fatalf("cut = %d", len(top10k))
	}
	if top10k[0] != "site-00000.example" || top10k[9999] != "site-09999.example" {
		t.Error("cut boundaries wrong")
	}
	// Short list refuses the cut (paper: countries with short lists are
	// excluded).
	short, err := FromRanked("MC", makeDomains(4000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := short.Cut(10000); !errors.Is(err, ErrTooShort) {
		t.Errorf("short cut error = %v", err)
	}
}

func TestEligibility(t *testing.T) {
	lengths := map[string]int{
		"US": 500000, "TH": 50000, "IR": 10000, // exactly at the cut
		"MC": 4000, "AD": 900,
	}
	eligible, excluded := Eligibility(lengths, 10000)
	if len(eligible) != 3 || eligible[0] != "IR" || eligible[2] != "US" {
		t.Errorf("eligible = %v", eligible)
	}
	if len(excluded) != 2 || excluded[0] != "AD" {
		t.Errorf("excluded = %v", excluded)
	}
}

func TestPaperEligibilityFraction(t *testing.T) {
	// The paper: 150 of ~237 countries (63.3%) have lists of at least 10K.
	lengths := map[string]int{}
	for i := 0; i < 150; i++ {
		lengths[fmt.Sprintf("A%03d", i)] = 10000 + i*1000
	}
	for i := 0; i < 87; i++ {
		lengths[fmt.Sprintf("B%03d", i)] = 100 + i*100
	}
	eligible, excluded := Eligibility(lengths, 10000)
	if len(eligible) != 150 || len(excluded) != 87 {
		t.Errorf("eligible %d excluded %d", len(eligible), len(excluded))
	}
	frac := float64(len(eligible)) / float64(len(lengths))
	if frac < 0.62 || frac > 0.65 {
		t.Errorf("eligibility fraction = %v, paper 0.633", frac)
	}
}
