// Package resilience is the live measurement's fault-tolerance policy
// layer. A Policy runs probe operations with per-attempt timeouts and
// jittered exponential backoff under a bounded retry budget; a Breaker (or
// a per-target-kind BreakerSet) stops hammering an endpoint that keeps
// failing and probes it again after a cooldown. Every wait is
// context-aware, so cancelling a crawl aborts sleeping retries promptly.
//
// Failures are divided into classes by a Classifier: transient failures
// (timeouts, connection resets, peers hanging up mid-exchange) are worth
// retrying; permanent ones (authoritative negatives like NXDOMAIN, protocol
// violations) are answers in their own right and retrying cannot change
// them. Only transient failures consume retry budget or trip breakers —
// a nameserver correctly answering NXDOMAIN is healthy infrastructure.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/webdep/webdep/internal/obs"
)

// Class is the retry-relevant classification of an operation's outcome.
type Class int

const (
	// Success: the operation completed.
	Success Class = iota
	// Transient: the failure may heal on its own; retrying is worthwhile.
	Transient
	// Permanent: an authoritative failure retrying cannot change.
	Permanent
)

// Classifier maps an operation's error to its class. nil errors must map
// to Success.
type Classifier func(error) Class

// DefaultClassify is the network-generic classifier: timeouts and other
// net.Errors are transient, as are peers hanging up mid-exchange (EOF) and
// expired per-attempt deadlines; anything else is permanent.
func DefaultClassify(err error) Class {
	switch {
	case err == nil:
		return Success
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// A fired per-attempt deadline surfaces as a context error and is
		// retryable; Do re-checks the parent context before retrying, so a
		// cancelled caller still aborts immediately.
		return Transient
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return Transient
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return Transient
	}
	return Permanent
}

// ErrCircuitOpen is returned (wrapped) when a breaker rejects an operation
// without attempting it.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// Policy configures how operations are retried. The zero value runs a
// single attempt with no timeout — resilience off. Fields may be shared by
// many goroutines once the policy is in use.
type Policy struct {
	// MaxAttempts is the total number of attempts per operation, first try
	// included. Values below 1 mean 1 (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive retries (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in [0, 1]:
	// a delay d becomes d * (1 - Jitter/2 + Jitter*u) for uniform u.
	// Default 0.5; negative disables jitter. Jitter spreads synchronized
	// retries apart; it never affects measurement results, only timing.
	Jitter float64
	// Seed makes the jitter sequence reproducible (default 1).
	Seed int64
	// AttemptTimeout bounds each individual attempt via a derived context
	// deadline. 0 leaves attempts bounded only by the operation itself.
	AttemptTimeout time.Duration
	// Classify maps errors to classes when the caller of Do does not
	// supply its own classifier. nil means DefaultClassify.
	Classify Classifier
	// Budget, when non-nil, bounds the total number of retries across all
	// operations sharing the policy. An exhausted budget turns every
	// operation into a single attempt.
	Budget *Budget
	// Breakers, when non-nil, short-circuits operations against target
	// kinds that keep failing.
	Breakers *BreakerSet
	// Obs selects the metrics registry the policy records to under the
	// "resilience." prefix. nil means obs.Default(). The policy also keeps
	// its own atomic accounting (Stats), so tests can cross-check the
	// emitted metrics against ground truth.
	Obs *obs.Registry

	rngMu sync.Mutex
	rng   *rand.Rand

	metricsOnce sync.Once
	metrics     *policyMetrics

	stats policyCounters
}

// policyCounters is the policy's own atomic accounting, independent of the
// obs registry; Stats snapshots it.
type policyCounters struct {
	attempts, retries, successes       atomic.Int64
	permanents, transients             atomic.Int64
	budgetExhausted, circuitRejections atomic.Int64
}

// PolicyStats is a point-in-time copy of a policy's own accounting.
type PolicyStats struct {
	// Attempts counts operation attempts actually run (circuit-rejected
	// operations run none). Retries counts the attempts beyond each
	// operation's first — every retry consumed budget when one was set.
	Attempts, Retries int64
	// Successes, PermanentFailures, and TransientFailures classify every
	// attempt's outcome.
	Successes, PermanentFailures, TransientFailures int64
	// BudgetExhausted counts retries forgone because the shared budget ran
	// dry; CircuitRejections counts operations an open breaker refused.
	BudgetExhausted, CircuitRejections int64
}

// Stats returns the policy's own accounting. The same numbers are emitted
// as "resilience.*" counters on the policy's registry; the two must agree
// exactly (the observability test suite enforces this under fault
// injection).
func (p *Policy) Stats() PolicyStats {
	return PolicyStats{
		Attempts:          p.stats.attempts.Load(),
		Retries:           p.stats.retries.Load(),
		Successes:         p.stats.successes.Load(),
		PermanentFailures: p.stats.permanents.Load(),
		TransientFailures: p.stats.transients.Load(),
		BudgetExhausted:   p.stats.budgetExhausted.Load(),
		CircuitRejections: p.stats.circuitRejections.Load(),
	}
}

// policyMetrics holds the hoisted obs instruments, resolved once per
// policy so the retry hot path never locks the registry.
type policyMetrics struct {
	attempts, retries, successes       *obs.Counter
	permanents, transients             *obs.Counter
	budgetExhausted, circuitRejections *obs.Counter
	attemptMS                          *obs.Histogram
}

func (p *Policy) m() *policyMetrics {
	p.metricsOnce.Do(func() {
		r := p.Obs
		if r == nil {
			r = obs.Default()
		}
		if p.Breakers != nil {
			p.Breakers.setRegistry(r)
		}
		p.metrics = &policyMetrics{
			attempts:          r.Counter("resilience.attempts"),
			retries:           r.Counter("resilience.retries"),
			successes:         r.Counter("resilience.successes"),
			permanents:        r.Counter("resilience.permanent_failures"),
			transients:        r.Counter("resilience.transient_failures"),
			budgetExhausted:   r.Counter("resilience.budget_exhausted"),
			circuitRejections: r.Counter("resilience.circuit_rejections"),
			attemptMS:         r.Timing("resilience.attempt_ms"),
		}
	})
	return p.metrics
}

// NewPolicy returns a policy with crawl-suitable defaults: 4 attempts,
// 50ms base delay doubling to a 2s cap with 50% jitter.
func NewPolicy() *Policy {
	return &Policy{MaxAttempts: 4}
}

// Do runs op under the policy using the policy's classifier, identifying
// the target by kind for circuit breaking.
func (p *Policy) Do(ctx context.Context, kind string, op func(context.Context) error) error {
	return p.DoClassified(ctx, kind, p.Classify, op)
}

// DoClassified runs op under the policy with an explicit classifier
// (falling back to the policy's, then to DefaultClassify). It returns nil
// on success, the operation's error once it is classified permanent or the
// retry budget is exhausted, a wrapped ErrCircuitOpen when the kind's
// breaker is open, or the context's error when the caller cancelled.
func (p *Policy) DoClassified(ctx context.Context, kind string, classify Classifier, op func(context.Context) error) error {
	if classify == nil {
		classify = p.Classify
	}
	if classify == nil {
		classify = DefaultClassify
	}
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	m := p.m() // also propagates p.Obs to the breaker set, so resolve first
	var br *Breaker
	if p.Breakers != nil {
		br = p.Breakers.Breaker(kind)
	}

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if br != nil && !br.Allow() {
			m.circuitRejections.Inc()
			p.stats.circuitRejections.Add(1)
			return fmt.Errorf("resilience: %s: %w", kind, ErrCircuitOpen)
		}
		sp := obs.StartSpan(m.attemptMS)
		err := p.attempt(ctx, op)
		sp.End()
		m.attempts.Inc()
		p.stats.attempts.Add(1)
		if attempt > 0 {
			m.retries.Inc()
			p.stats.retries.Add(1)
		}
		if parent := ctx.Err(); parent != nil {
			// The caller cancelled; the attempt's error (if any) is just
			// the cancellation surfacing through the operation.
			return parent
		}
		switch classify(err) {
		case Success:
			m.successes.Inc()
			p.stats.successes.Add(1)
			if br != nil {
				br.RecordSuccess()
			}
			return nil
		case Permanent:
			m.permanents.Inc()
			p.stats.permanents.Add(1)
			// An authoritative negative is an answer, not an outage: the
			// target is healthy, so the breaker records success.
			if br != nil {
				br.RecordSuccess()
			}
			return err
		default:
			m.transients.Inc()
			p.stats.transients.Add(1)
			if br != nil {
				br.RecordFailure()
			}
			lastErr = err
		}
		if attempt == attempts-1 {
			break
		}
		if !p.Budget.Take() {
			m.budgetExhausted.Inc()
			p.stats.budgetExhausted.Add(1)
			break
		}
		if err := p.sleep(ctx, p.delay(attempt)); err != nil {
			return err
		}
	}
	return lastErr
}

// attempt runs op once under the per-attempt timeout.
func (p *Policy) attempt(ctx context.Context, op func(context.Context) error) error {
	if p.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		defer cancel()
	}
	return op(ctx)
}

// delay computes the jittered backoff after the given zero-based attempt.
func (p *Policy) delay(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= mult
		if d >= float64(maxDelay) {
			d = float64(maxDelay)
			break
		}
	}
	jitter := p.Jitter
	switch {
	case jitter == 0:
		jitter = 0.5
	case jitter < 0: // negative disables jitter entirely
		jitter = 0
	case jitter > 1:
		jitter = 1
	}
	if jitter > 0 {
		d *= 1 - jitter/2 + jitter*p.random()
	}
	if d > float64(maxDelay) {
		d = float64(maxDelay)
	}
	return time.Duration(d)
}

func (p *Policy) random() float64 {
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	if p.rng == nil {
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		p.rng = rand.New(rand.NewSource(seed))
	}
	return p.rng.Float64()
}

// sleep waits for d or until ctx is cancelled, whichever comes first.
func (p *Policy) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
