package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/obs"
)

// TestObsCountersMatchPolicyStats drives one policy through every outcome
// class — success, permanent failure, retry exhaustion, budget exhaustion,
// breaker opening, circuit rejection, half-open recovery — on an injected
// registry, then requires the emitted "resilience.*" counters to equal the
// policy's own accounting EXACTLY. The two are recorded at the same code
// points; any drift means an instrumentation point was added, removed, or
// moved on one side only.
func TestObsCountersMatchPolicyStats(t *testing.T) {
	r := obs.NewRegistry()
	base := time.Now()
	now := base
	bs := NewBreakerSet(2, time.Hour)
	bs.now = func() time.Time { return now }

	p := &Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Jitter:      -1,
		Budget:      NewBudget(3),
		Breakers:    bs,
		Obs:         r,
	}

	errPermanent := errors.New("authoritative no")
	errTransient := errors.New("flaky")
	classify := func(err error) Class {
		switch err {
		case nil:
			return Success
		case errPermanent:
			return Permanent
		default:
			return Transient
		}
	}
	ok := func(context.Context) error { return nil }
	permanent := func(context.Context) error { return errPermanent }
	transient := func(context.Context) error { return errTransient }
	ctx := context.Background()

	// 1. Clean success: 1 attempt.
	if err := p.DoClassified(ctx, "a", classify, ok); err != nil {
		t.Fatalf("success op: %v", err)
	}
	// 2. Permanent failure: 1 attempt, no retries, breaker records success.
	if err := p.DoClassified(ctx, "a", classify, permanent); !errors.Is(err, errPermanent) {
		t.Fatalf("permanent op: %v", err)
	}
	// 3. Transient failures on "a": the second consecutive failure opens
	// the breaker (threshold 2), so the would-be third attempt is rejected
	// by the open circuit mid-operation — 2 attempts, 1 retry, 1 rejection.
	if err := p.DoClassified(ctx, "a", classify, transient); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("transient op: %v", err)
	}
	// 4. Budget exhaustion on a fresh kind: attempt, retry, then the empty
	// budget (3 minus the two retries taken in step 3) forgoes the final
	// attempt. Breaker "b" opens on its second consecutive failure but
	// rejects nothing — the budget broke the loop first.
	if err := p.DoClassified(ctx, "b", classify, transient); !errors.Is(err, errTransient) {
		t.Fatalf("budget op: %v", err)
	}
	// 5. Circuit rejection: breaker "a" is open and its cooldown has not
	// elapsed, so the operation runs zero attempts.
	if err := p.DoClassified(ctx, "a", classify, ok); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("rejected op: %v", err)
	}
	// 6. Half-open recovery: past the cooldown the breaker admits a probe,
	// which succeeds and closes it.
	now = base.Add(2 * time.Hour)
	if err := p.DoClassified(ctx, "a", classify, ok); err != nil {
		t.Fatalf("recovery op: %v", err)
	}

	want := PolicyStats{
		Attempts:          7, // 1 + 1 + 2 + 2 + 0 + 1
		Retries:           2, // 1 in step 3, 1 in step 4
		Successes:         2,
		PermanentFailures: 1,
		TransientFailures: 4,
		BudgetExhausted:   1,
		CircuitRejections: 2, // step 3's third attempt, step 5
	}
	if got := p.Stats(); got != want {
		t.Fatalf("Stats = %+v, want %+v", got, want)
	}

	counters := map[string]int64{
		"resilience.attempts":           want.Attempts,
		"resilience.retries":            want.Retries,
		"resilience.successes":          want.Successes,
		"resilience.permanent_failures": want.PermanentFailures,
		"resilience.transient_failures": want.TransientFailures,
		"resilience.budget_exhausted":   want.BudgetExhausted,
		"resilience.circuit_rejections": want.CircuitRejections,
	}
	for name, wantV := range counters {
		if got := r.Counter(name).Value(); got != wantV {
			t.Errorf("%s = %d, obs-independent accounting says %d", name, got, wantV)
		}
	}

	// Per-attempt latency: exactly one histogram observation per attempt.
	if got := r.Timing("resilience.attempt_ms").Snapshot().Count; got != want.Attempts {
		t.Errorf("resilience.attempt_ms count = %d, want %d", got, want.Attempts)
	}

	// The breaker transition counters must equal the sum of every breaker's
	// own transition accounting.
	var opened, halfOpened, closed int64
	for _, kind := range bs.Kinds() {
		o, h, c := bs.Breaker(kind).Transitions()
		opened, halfOpened, closed = opened+o, halfOpened+h, closed+c
	}
	if opened != 2 || halfOpened != 1 || closed != 1 {
		t.Fatalf("Transitions sum = %d/%d/%d, want 2/1/1", opened, halfOpened, closed)
	}
	transitions := map[string]int64{
		"resilience.breaker.opened":      opened,
		"resilience.breaker.half_opened": halfOpened,
		"resilience.breaker.closed":      closed,
	}
	for name, wantV := range transitions {
		if got := r.Counter(name).Value(); got != wantV {
			t.Errorf("%s = %d, breakers' own accounting says %d", name, got, wantV)
		}
	}
}

// TestObsRegistryIsolation: a policy pointed at its own registry must leak
// nothing onto the default registry, and vice versa — injected registries
// are what keeps concurrent tests from double counting.
func TestObsRegistryIsolation(t *testing.T) {
	r := obs.NewRegistry()
	p := &Policy{MaxAttempts: 1, Obs: r}
	before := obs.Default().Counter("resilience.attempts").Value()
	for i := 0; i < 5; i++ {
		if err := p.Do(context.Background(), "x", func(context.Context) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Counter("resilience.attempts").Value(); got != 5 {
		t.Errorf("injected registry counted %d attempts, want 5", got)
	}
	if after := obs.Default().Counter("resilience.attempts").Value(); after != before {
		t.Errorf("default registry moved %d -> %d; injected-registry policy leaked", before, after)
	}
}
