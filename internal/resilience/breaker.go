package resilience

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/webdep/webdep/internal/obs"
)

// BreakerState is a circuit breaker's current disposition.
type BreakerState int

const (
	// Closed: operations flow normally.
	Closed BreakerState = iota
	// Open: operations are rejected until the cooldown elapses.
	Open
	// HalfOpen: one probe operation is allowed through; its outcome
	// decides whether the breaker closes again or reopens.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a consecutive-failure circuit breaker with half-open probing.
// After FailureThreshold consecutive transient failures it opens and
// rejects operations; once Cooldown elapses it admits a single probe, and
// the probe's outcome either closes the breaker or reopens it for another
// cooldown. The zero value is usable and uses the defaults.
type Breaker struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 1s).
	Cooldown time.Duration

	// now is the clock, replaceable in tests.
	now func() time.Time

	// reg selects the metrics registry transition counters are emitted to
	// (nil means obs.Default()); BreakerSet propagates it.
	reg *obs.Registry

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool

	// Transition accounting, guarded by mu: how often the breaker opened,
	// admitted a half-open probe, and closed again. The same numbers are
	// emitted as "resilience.breaker.*" counters.
	opened, halfOpened, closed int64
	m                          *breakerMetrics
}

// breakerMetrics holds the hoisted obs instruments shared by all breakers
// recording to the same registry.
type breakerMetrics struct {
	opened, halfOpened, closed *obs.Counter
}

// metrics lazily resolves the obs counters; callers hold b.mu.
func (b *Breaker) metrics() *breakerMetrics {
	if b.m == nil {
		r := b.reg
		if r == nil {
			r = obs.Default()
		}
		b.m = &breakerMetrics{
			opened:     r.Counter("resilience.breaker.opened"),
			halfOpened: r.Counter("resilience.breaker.half_opened"),
			closed:     r.Counter("resilience.breaker.closed"),
		}
	}
	return b.m
}

// Transitions returns how often the breaker opened, went half-open, and
// closed. The matching obs counters aggregate these across all breakers on
// one registry; the observability tests cross-check the two.
func (b *Breaker) Transitions() (opened, halfOpened, closed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opened, b.halfOpened, b.closed
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.FailureThreshold > 0 {
		return b.FailureThreshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return time.Second
}

// Allow reports whether an operation may proceed, transitioning an open
// breaker to half-open when its cooldown has elapsed. In the half-open
// state only one in-flight probe is admitted at a time.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.clock().Sub(b.openedAt) < b.cooldown() {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		b.halfOpened++
		b.metrics().halfOpened.Inc()
		return true
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// RecordSuccess closes the breaker and resets the failure streak.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Closed {
		b.closed++
		b.metrics().closed.Inc()
	}
	b.state = Closed
	b.failures = 0
	b.probing = false
}

// RecordFailure notes a transient failure: it reopens a half-open breaker
// immediately and opens a closed one once the streak reaches the
// threshold.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case HalfOpen:
		b.state = Open
		b.openedAt = b.clock()
		b.opened++
		b.metrics().opened.Inc()
	case Closed:
		b.failures++
		if b.failures >= b.threshold() {
			b.state = Open
			b.openedAt = b.clock()
			b.opened++
			b.metrics().opened.Inc()
		}
	}
	// Open: a straggling failure from before the breaker opened changes
	// nothing.
}

// State returns the breaker's current state without side effects.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSet lazily maintains one Breaker per target kind ("dns", "tls",
// "http", ...), all sharing the set's threshold and cooldown.
type BreakerSet struct {
	// FailureThreshold and Cooldown configure every breaker the set
	// creates; zero values use the Breaker defaults.
	FailureThreshold int
	Cooldown         time.Duration

	// Obs selects the metrics registry propagated to created breakers;
	// nil means obs.Default(). A policy carrying the set propagates its
	// own registry here before any breaker is created.
	Obs *obs.Registry

	// now is the test clock propagated to created breakers.
	now func() time.Time

	mu     sync.Mutex
	byKind map[string]*Breaker
}

// setRegistry installs the registry used for breakers created from now on
// (existing breakers keep theirs; the policy propagates before first use).
func (s *BreakerSet) setRegistry(r *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Obs == nil {
		s.Obs = r
	}
}

// NewBreakerSet returns a set creating breakers with the given threshold
// and cooldown (zero values use the Breaker defaults).
func NewBreakerSet(failureThreshold int, cooldown time.Duration) *BreakerSet {
	return &BreakerSet{FailureThreshold: failureThreshold, Cooldown: cooldown}
}

// Breaker returns the breaker for a kind, creating it on first use.
func (s *BreakerSet) Breaker(kind string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKind == nil {
		s.byKind = make(map[string]*Breaker)
	}
	b, ok := s.byKind[kind]
	if !ok {
		b = &Breaker{FailureThreshold: s.FailureThreshold, Cooldown: s.Cooldown, now: s.now, reg: s.Obs}
		s.byKind[kind] = b
	}
	return b
}

// Kinds returns the kinds with instantiated breakers, sorted.
func (s *BreakerSet) Kinds() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byKind))
	for kind := range s.byKind {
		out = append(out, kind)
	}
	sort.Strings(out)
	return out
}

// Budget is a shared, concurrency-safe allowance of retries. Every retry
// (not first attempt) consumes one unit; an exhausted budget degrades all
// operations sharing it to single attempts, bounding the extra load a
// large-scale outage can induce.
type Budget struct {
	remaining atomic.Int64
}

// NewBudget returns a budget allowing n retries in total.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.remaining.Store(int64(n))
	return b
}

// Take consumes one retry from the budget, reporting false when none
// remain. A nil budget is unlimited.
func (b *Budget) Take() bool {
	if b == nil {
		return true
	}
	return b.remaining.Add(-1) >= 0
}

// Remaining returns how many retries are left, never negative. A nil
// (unlimited) budget reports 0.
func (b *Budget) Remaining() int {
	if b == nil {
		return 0
	}
	if n := b.remaining.Load(); n > 0 {
		return int(n)
	}
	return 0
}
