package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// errTimeout is a synthetic net.Error for classification tests.
type errTimeout struct{}

func (errTimeout) Error() string   { return "synthetic timeout" }
func (errTimeout) Timeout() bool   { return true }
func (errTimeout) Temporary() bool { return true }

var errPermanent = errors.New("authoritative no")

// fastPolicy returns a retry-happy policy whose sleeps are negligible.
func fastPolicy(attempts int) *Policy {
	return &Policy{
		MaxAttempts: attempts,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
	}
}

func TestDefaultClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, Success},
		{errTimeout{}, Transient},
		{&net.OpError{Op: "dial", Err: errors.New("connection refused")}, Transient},
		{io.EOF, Transient},
		{io.ErrUnexpectedEOF, Transient},
		{context.DeadlineExceeded, Transient},
		{context.Canceled, Transient},
		{fmt.Errorf("wrap: %w", errTimeout{}), Transient},
		{errors.New("some application error"), Permanent},
	}
	for _, c := range cases {
		if got := DefaultClassify(c.err); got != c.want {
			t.Errorf("DefaultClassify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	p := fastPolicy(5)
	calls := 0
	err := p.Do(context.Background(), "t", func(context.Context) error {
		calls++
		if calls < 3 {
			return errTimeout{}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	p := fastPolicy(5)
	calls := 0
	err := p.Do(context.Background(), "t", func(context.Context) error {
		calls++
		return errPermanent
	})
	if !errors.Is(err, errPermanent) || calls != 1 {
		t.Fatalf("err = %v, calls = %d (permanent must not retry)", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := fastPolicy(3)
	calls := 0
	err := p.Do(context.Background(), "t", func(context.Context) error {
		calls++
		return errTimeout{}
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	var ne net.Error
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want last transient error", err)
	}
}

func TestDoZeroValuePolicySingleAttempt(t *testing.T) {
	var p Policy
	calls := 0
	p.Do(context.Background(), "t", func(context.Context) error {
		calls++
		return errTimeout{}
	})
	if calls != 1 {
		t.Fatalf("zero-value policy ran %d attempts, want 1", calls)
	}
}

func TestDoBudgetBoundsRetries(t *testing.T) {
	p := fastPolicy(10)
	p.Budget = NewBudget(3)
	calls := 0
	op := func(context.Context) error {
		calls++
		return errTimeout{}
	}
	// First operation: 1 attempt + 3 budgeted retries.
	p.Do(context.Background(), "t", op)
	if calls != 4 {
		t.Fatalf("calls = %d, want 4 (budget of 3 retries)", calls)
	}
	// Budget exhausted: subsequent operations get a single attempt.
	calls = 0
	p.Do(context.Background(), "t", op)
	if calls != 1 {
		t.Fatalf("calls after exhaustion = %d, want 1", calls)
	}
	if p.Budget.Remaining() != 0 {
		t.Errorf("Remaining = %d", p.Budget.Remaining())
	}
}

func TestNilBudgetUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 100; i++ {
		if !b.Take() {
			t.Fatal("nil budget refused a retry")
		}
	}
	if b.Remaining() != 0 {
		t.Error("nil budget Remaining != 0")
	}
}

func TestDoCancelledContextAborts(t *testing.T) {
	p := fastPolicy(100)
	p.BaseDelay = time.Hour // a retry sleep would hang the test
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, "t", func(context.Context) error {
			calls++
			cancel()
			return errTimeout{}
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not abort on cancellation")
	}
	if calls != 1 {
		t.Fatalf("calls = %d after cancellation", calls)
	}
}

func TestDoAttemptTimeout(t *testing.T) {
	p := fastPolicy(2)
	p.AttemptTimeout = 10 * time.Millisecond
	deadlines := 0
	err := p.Do(context.Background(), "t", func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			deadlines++
		}
		<-ctx.Done() // simulate an attempt blocked until its deadline
		return ctx.Err()
	})
	if deadlines != 2 {
		t.Errorf("attempts with deadline = %d, want 2", deadlines)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded from last attempt", err)
	}
}

func TestDelayGrowsAndCaps(t *testing.T) {
	p := &Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
		Multiplier: 2, Jitter: -1}
	want := []time.Duration{10, 20, 40, 50, 50}
	for i, w := range want {
		if got := p.delay(i); got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterBoundsAndDeterminism(t *testing.T) {
	a := &Policy{BaseDelay: 100 * time.Millisecond, Seed: 7}
	b := &Policy{BaseDelay: 100 * time.Millisecond, Seed: 7}
	for i := 0; i < 50; i++ {
		da, db := a.delay(0), b.delay(0)
		if da != db {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, da, db)
		}
		// Default jitter 0.5: delay in [75ms, 125ms].
		if da < 75*time.Millisecond || da > 125*time.Millisecond {
			t.Fatalf("jittered delay %v outside [75ms, 125ms]", da)
		}
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := &Breaker{FailureThreshold: 3, Cooldown: time.Hour}
	for i := 0; i < 2; i++ {
		b.RecordFailure()
		if !b.Allow() {
			t.Fatalf("breaker open after %d failures, threshold 3", i+1)
		}
	}
	b.RecordFailure()
	if b.State() != Open {
		t.Fatalf("state = %v after threshold, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted an operation inside cooldown")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := &Breaker{FailureThreshold: 3}
	b.RecordFailure()
	b.RecordFailure()
	b.RecordSuccess()
	b.RecordFailure()
	b.RecordFailure()
	if b.State() != Closed {
		t.Fatal("success did not reset the failure streak")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	current := time.Unix(1000, 0)
	b := &Breaker{FailureThreshold: 1, Cooldown: 10 * time.Second,
		now: func() time.Time { return current }}
	b.RecordFailure()
	if b.Allow() {
		t.Fatal("breaker should be open")
	}
	current = current.Add(11 * time.Second)
	// Cooldown elapsed: exactly one probe admitted.
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted in half-open state")
	}
	// Failed probe reopens for another cooldown.
	b.RecordFailure()
	if b.State() != Open || b.Allow() {
		t.Fatal("failed probe did not reopen the breaker")
	}
	// Another cooldown, successful probe closes.
	current = current.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("reopened breaker rejected probe after second cooldown")
	}
	b.RecordSuccess()
	if b.State() != Closed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestDoCircuitOpenFailsFast(t *testing.T) {
	p := fastPolicy(1)
	p.Breakers = NewBreakerSet(2, time.Hour)
	calls := 0
	op := func(context.Context) error {
		calls++
		return errTimeout{}
	}
	p.Do(context.Background(), "dns", op)
	p.Do(context.Background(), "dns", op)
	err := p.Do(context.Background(), "dns", op)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d: open breaker must not dispatch operations", calls)
	}
	// Other kinds are unaffected.
	if err := p.Do(context.Background(), "tls", func(context.Context) error { return nil }); err != nil {
		t.Fatalf("independent kind: %v", err)
	}
	if got := p.Breakers.Kinds(); len(got) != 2 || got[0] != "dns" || got[1] != "tls" {
		t.Errorf("Kinds = %v", got)
	}
}

func TestDoPermanentDoesNotTripBreaker(t *testing.T) {
	p := fastPolicy(1)
	p.Breakers = NewBreakerSet(1, time.Hour)
	for i := 0; i < 5; i++ {
		err := p.Do(context.Background(), "dns", func(context.Context) error { return errPermanent })
		if !errors.Is(err, errPermanent) {
			t.Fatalf("iteration %d: err = %v (breaker tripped on permanent)", i, err)
		}
	}
	if p.Breakers.Breaker("dns").State() != Closed {
		t.Error("permanent failures opened the breaker")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
