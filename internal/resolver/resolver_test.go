package resolver

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/dnsserver"
	"github.com/webdep/webdep/internal/dnswire"
)

func startWorld(t *testing.T) string {
	t.Helper()
	z := dnsserver.NewZone("world.test")
	add := func(r dnswire.Record) {
		t.Helper()
		if err := z.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	add(dnswire.Record{Name: "world.test", Type: dnswire.TypeSOA, SOA: &dnswire.SOAData{
		MName: "ns1.world.test", RName: "admin.world.test", Serial: 1,
	}})
	add(dnswire.Record{Name: "site1.world.test", Type: dnswire.TypeA, TTL: 60,
		Addr: netip.MustParseAddr("203.0.113.1")})
	add(dnswire.Record{Name: "site1.world.test", Type: dnswire.TypeNS, TTL: 60,
		Target: "ns1.world.test"})
	add(dnswire.Record{Name: "site2.world.test", Type: dnswire.TypeCNAME, TTL: 60,
		Target: "site1.world.test"})
	add(dnswire.Record{Name: "site2.world.test", Type: dnswire.TypeNS, TTL: 60,
		Target: "ns2.world.test"})
	// A name with many addresses to force TCP fallback via truncation.
	for i := 0; i < 60; i++ {
		add(dnswire.Record{Name: "fat.world.test", Type: dnswire.TypeA, TTL: 1,
			Addr: netip.AddrFrom4([4]byte{10, 1, byte(i / 250), byte(i % 250)})})
	}

	s := dnsserver.NewServer(nil)
	s.AddZone(z)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return addr.String()
}

func TestLookupA(t *testing.T) {
	addr := startWorld(t)
	c := NewClient(addr)
	ips, err := c.LookupA("site1.world.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(ips) != 1 || ips[0] != netip.MustParseAddr("203.0.113.1") {
		t.Errorf("ips = %v", ips)
	}
}

func TestLookupAThroughCNAME(t *testing.T) {
	addr := startWorld(t)
	c := NewClient(addr)
	ips, err := c.LookupA("site2.world.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(ips) != 1 || ips[0] != netip.MustParseAddr("203.0.113.1") {
		t.Errorf("ips = %v", ips)
	}
}

func TestLookupNS(t *testing.T) {
	addr := startWorld(t)
	c := NewClient(addr)
	ns, err := c.LookupNS("site1.world.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0] != "ns1.world.test" {
		t.Errorf("ns = %v", ns)
	}
}

func TestNXDomainSurfaced(t *testing.T) {
	addr := startWorld(t)
	c := NewClient(addr)
	_, err := c.LookupA("missing.world.test")
	if !errors.Is(err, ErrNXDomain) {
		t.Errorf("err = %v, want ErrNXDomain", err)
	}
}

func TestRefusedSurfaced(t *testing.T) {
	addr := startWorld(t)
	c := NewClient(addr)
	_, err := c.LookupA("outside.invalid")
	if !errors.Is(err, ErrRefused) {
		t.Errorf("err = %v, want ErrRefused", err)
	}
}

func TestTCPFallbackOnTruncation(t *testing.T) {
	addr := startWorld(t)
	c := NewClient(addr)
	ips, err := c.LookupA("fat.world.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(ips) != 60 {
		t.Errorf("got %d ips through TCP fallback, want 60", len(ips))
	}
}

func TestTimeoutAgainstBlackhole(t *testing.T) {
	// RFC 5737 TEST-NET address with a port nothing listens on; connected
	// UDP either errors immediately (ICMP) or times out.
	c := NewClient("127.0.0.1:1") // almost certainly closed
	c.Timeout = 200 * time.Millisecond
	c.Retries = 1
	start := time.Now()
	_, err := c.LookupA("x.test")
	if err == nil {
		t.Fatal("lookup against closed port succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Error("retries took too long")
	}
}

func TestPoolResolveAll(t *testing.T) {
	addr := startWorld(t)
	pool := &Pool{Client: NewClient(addr), Workers: 8}
	domains := []string{
		"site1.world.test", "site2.world.test", "missing.world.test",
		"site1.world.test", "fat.world.test",
	}
	results := pool.ResolveAll(domains)
	if len(results) != len(domains) {
		t.Fatalf("results = %d", len(results))
	}
	// Order preserved.
	for i, r := range results {
		if r.Domain != domains[i] {
			t.Errorf("result %d domain %q, want %q", i, r.Domain, domains[i])
		}
	}
	if results[0].Err != nil || len(results[0].Addrs) != 1 {
		t.Errorf("site1: %+v", results[0])
	}
	if !errors.Is(results[2].Err, ErrNXDomain) {
		t.Errorf("missing: %v", results[2].Err)
	}
	if len(results[4].Addrs) != 60 {
		t.Errorf("fat via pool: %d addrs", len(results[4].Addrs))
	}
	if len(results[0].NS) != 1 {
		t.Errorf("site1 NS: %v", results[0].NS)
	}
}

func TestPoolDefaults(t *testing.T) {
	addr := startWorld(t)
	pool := &Pool{Client: NewClient(addr)} // Workers unset → default
	results := pool.ResolveAll([]string{"site1.world.test"})
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("results = %+v", results)
	}
}

func TestClientZeroValueDefaults(t *testing.T) {
	addr := startWorld(t)
	c := &Client{Server: addr} // zero Timeout/Retries must self-repair
	ips, err := c.LookupA("site1.world.test")
	if err != nil || len(ips) != 1 {
		t.Fatalf("zero-value client: %v %v", ips, err)
	}
}

func TestLookupNSGluedUsesAdditionalSection(t *testing.T) {
	addr := startWorld(t)
	c := NewClient(addr)
	// startWorld's zone holds ns1.world.test's NS for site1 but no A record
	// for ns1 → no glue.
	targets, glue, err := c.LookupNSGlued("site1.world.test")
	if err != nil || len(targets) != 1 {
		t.Fatalf("targets = %v, err = %v", targets, err)
	}
	if len(glue) != 0 {
		t.Fatalf("glue for unresolvable target: %v", glue)
	}
}
