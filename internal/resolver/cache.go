package resolver

import (
	"net/netip"
	"sync"
	"time"

	"github.com/webdep/webdep/internal/dnswire"
)

// CachingClient wraps a Client with a TTL-respecting positive/negative
// answer cache, the behavior a measurement crawl relies on when the same
// nameserver host backs thousands of domains (every site on a large DNS
// provider shares its NS host, so caching its A record collapses the
// crawl's query volume).
type CachingClient struct {
	// Client performs cache-miss lookups.
	Client *Client
	// MaxTTL caps how long any record is cached regardless of its TTL
	// (default 5 minutes). NegativeTTL bounds NXDOMAIN caching (default
	// 30s).
	MaxTTL      time.Duration
	NegativeTTL time.Duration

	// now is the clock, replaceable in tests.
	now func() time.Time

	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry

	hits, misses uint64
}

type cacheKey struct {
	name  string
	qtype uint16
}

type cacheEntry struct {
	addrs   []netip.Addr
	targets []string
	err     error
	expires time.Time
}

// NewCachingClient wraps a client with an empty cache.
func NewCachingClient(c *Client) *CachingClient {
	return &CachingClient{
		Client:      c,
		MaxTTL:      5 * time.Minute,
		NegativeTTL: 30 * time.Second,
		now:         time.Now,
		entries:     map[cacheKey]*cacheEntry{},
	}
}

// Stats reports cache hits and misses so far.
func (c *CachingClient) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// LookupA resolves a name's IPv4 addresses through the cache.
func (c *CachingClient) LookupA(name string) ([]netip.Addr, error) {
	entry, ok := c.get(name, dnswire.TypeA)
	if ok {
		return entry.addrs, entry.err
	}
	resp, err := c.Client.Exchange(name, dnswire.TypeA)
	var addrs []netip.Addr
	minTTL := c.maxTTLOr(0)
	if resp != nil {
		for _, r := range resp.Answers {
			if r.Type == dnswire.TypeA {
				addrs = append(addrs, r.Addr)
				if ttl := time.Duration(r.TTL) * time.Second; ttl < minTTL {
					minTTL = ttl
				}
			}
		}
	}
	c.put(name, dnswire.TypeA, &cacheEntry{addrs: addrs, err: err}, minTTL, err)
	return addrs, err
}

// LookupNS resolves a name's NS targets through the cache.
func (c *CachingClient) LookupNS(name string) ([]string, error) {
	entry, ok := c.get(name, dnswire.TypeNS)
	if ok {
		return entry.targets, entry.err
	}
	resp, err := c.Client.Exchange(name, dnswire.TypeNS)
	var targets []string
	minTTL := c.maxTTLOr(0)
	if resp != nil {
		for _, r := range resp.Answers {
			if r.Type == dnswire.TypeNS {
				targets = append(targets, r.Target)
				if ttl := time.Duration(r.TTL) * time.Second; ttl < minTTL {
					minTTL = ttl
				}
			}
		}
	}
	c.put(name, dnswire.TypeNS, &cacheEntry{targets: targets, err: err}, minTTL, err)
	return targets, err
}

func (c *CachingClient) maxTTLOr(def time.Duration) time.Duration {
	if c.MaxTTL > 0 {
		return c.MaxTTL
	}
	if def > 0 {
		return def
	}
	return 5 * time.Minute
}

func (c *CachingClient) get(name string, qtype uint16) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	entry, ok := c.entries[cacheKey{name, qtype}]
	if !ok || c.clock().After(entry.expires) {
		c.misses++
		return nil, false
	}
	c.hits++
	return entry, true
}

func (c *CachingClient) put(name string, qtype uint16, entry *cacheEntry, ttl time.Duration, err error) {
	// Only cache clean answers and NXDOMAINs; transport errors and
	// SERVFAILs must retry.
	if err != nil && err != ErrNXDomain {
		return
	}
	if err == ErrNXDomain {
		ttl = c.negativeTTL()
	} else if maxTTL := c.maxTTLOr(0); ttl <= 0 || ttl > maxTTL {
		ttl = maxTTL
	}
	entry.expires = c.clock().Add(ttl)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = map[cacheKey]*cacheEntry{}
	}
	c.entries[cacheKey{name, qtype}] = entry
}

func (c *CachingClient) negativeTTL() time.Duration {
	if c.NegativeTTL > 0 {
		return c.NegativeTTL
	}
	return 30 * time.Second
}

func (c *CachingClient) clock() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}
