package resolver

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/faultinject"
	"github.com/webdep/webdep/internal/resilience"
)

// faultProxy fronts the test world with a fault-injection proxy whose UDP
// and TCP sides share one port, so the client's truncation fallback
// traverses the same injected faults as its UDP queries.
func faultProxy(t *testing.T, upstream string, udpPlan, tcpPlan faultinject.Plan) *faultinject.Proxy {
	t.Helper()
	p, err := faultinject.New(upstream, udpPlan, tcpPlan)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestTCPFallbackThroughProxy sends the truncation-forcing query through a
// clean proxy: the UDP leg and the TCP fallback leg both traverse the
// proxied port.
func TestTCPFallbackThroughProxy(t *testing.T) {
	addr := startWorld(t)
	p := faultProxy(t, addr, faultinject.Plan{}, faultinject.Plan{})

	c := NewClient(p.Addr)
	ips, err := c.LookupA("fat.world.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(ips) != 60 {
		t.Errorf("got %d ips through proxied TCP fallback, want 60", len(ips))
	}
	stats := p.Stats()
	if stats.UDPForwarded == 0 || stats.TCPForwarded == 0 {
		t.Errorf("fallback did not traverse both transports: %+v", stats)
	}
}

// TestTCPFallbackUnderTruncatedUDPLoss drops the first UDP datagrams so
// the client must retry before it even sees the truncated answer, then
// completes over TCP.
func TestTCPFallbackUnderTruncatedUDPLoss(t *testing.T) {
	addr := startWorld(t)
	p := faultProxy(t, addr, faultinject.Plan{DropFirst: 2}, faultinject.Plan{})

	c := NewClient(p.Addr)
	c.Timeout = 200 * time.Millisecond
	c.Retries = 3
	ips, err := c.LookupA("fat.world.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(ips) != 60 {
		t.Errorf("got %d ips, want 60", len(ips))
	}
	if s := p.Stats(); s.UDPDropped != 2 {
		t.Errorf("stats = %+v, want 2 dropped UDP datagrams", s)
	}
}

// TestTCPFallbackWhenTCPUpstreamAlsoLossy drops the first TCP connection
// too: the whole UDP→truncation→TCP attempt fails once and the policy
// retry must redo both legs.
func TestTCPFallbackWhenTCPUpstreamAlsoLossy(t *testing.T) {
	addr := startWorld(t)
	p := faultProxy(t, addr, faultinject.Plan{}, faultinject.Plan{DropFirst: 1})

	c := NewClient(p.Addr)
	c.Timeout = 300 * time.Millisecond
	c.Policy = &resilience.Policy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	}
	ips, err := c.LookupA("fat.world.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(ips) != 60 {
		t.Errorf("got %d ips, want 60", len(ips))
	}
	if s := p.Stats(); s.TCPDropped != 1 || s.TCPForwarded == 0 {
		t.Errorf("stats = %+v, want exactly one dropped TCP connection", s)
	}
}

// TestTCPBlackholeExhaustsRetries blackholes the TCP side entirely: every
// fallback dies, the policy retries transiently and ultimately fails,
// while plain (non-truncated) UDP queries keep working.
func TestTCPBlackholeExhaustsRetries(t *testing.T) {
	addr := startWorld(t)
	p := faultProxy(t, addr, faultinject.Plan{}, faultinject.Plan{Blackhole: true})

	c := NewClient(p.Addr)
	c.Timeout = 200 * time.Millisecond
	c.Policy = &resilience.Policy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
	}
	if _, err := c.LookupA("fat.world.test"); err == nil {
		t.Fatal("truncated lookup through TCP blackhole succeeded")
	}
	// The UDP-only path is unaffected by the TCP blackhole.
	ips, err := c.LookupA("site1.world.test")
	if err != nil || len(ips) != 1 {
		t.Fatalf("udp-only lookup: %v %v", ips, err)
	}
}

// TestPolicyRetriesReplaceFixedLoop checks that with a Policy installed the
// client's Retries field is ignored and attempts come from the policy.
func TestPolicyRetriesReplaceFixedLoop(t *testing.T) {
	addr := startWorld(t)
	p := faultProxy(t, addr, faultinject.Plan{DropFirst: 3}, faultinject.Plan{})

	c := NewClient(p.Addr)
	c.Timeout = 150 * time.Millisecond
	c.Retries = 0 // would fail without the policy
	c.Policy = &resilience.Policy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
	}
	ips, err := c.LookupA("site1.world.test")
	if err != nil || len(ips) != 1 {
		t.Fatalf("policy-driven retries: %v %v", ips, err)
	}
}

// TestPolicyDoesNotRetryNXDomain confirms authoritative negatives pass
// through the policy without burning attempts.
func TestPolicyDoesNotRetryNXDomain(t *testing.T) {
	addr := startWorld(t)
	c := NewClient(addr)
	c.Policy = &resilience.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	start := time.Now()
	if _, err := c.LookupA("missing.world.test"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v, want ErrNXDomain", err)
	}
	if time.Since(start) > time.Second {
		t.Error("NXDOMAIN appears to have been retried")
	}
}

// TestExchangeContextCancellation aborts an exchange whose datagrams are
// blackholed; the context error must surface promptly instead of the full
// retry schedule playing out.
func TestExchangeContextCancellation(t *testing.T) {
	addr := startWorld(t)
	p := faultProxy(t, addr, faultinject.Plan{Blackhole: true}, faultinject.Plan{})

	c := NewClient(p.Addr)
	c.Timeout = 5 * time.Second
	c.Policy = &resilience.Policy{MaxAttempts: 10, BaseDelay: time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.LookupAContext(ctx, "site1.world.test")
	if err == nil {
		t.Fatal("cancelled lookup succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestBreakerShortCircuitsDNS drives the per-server breaker open through a
// blackholed proxy and checks further lookups fail fast without touching
// the network.
func TestBreakerShortCircuitsDNS(t *testing.T) {
	addr := startWorld(t)
	p := faultProxy(t, addr, faultinject.Plan{Blackhole: true}, faultinject.Plan{})

	c := NewClient(p.Addr)
	c.Timeout = 100 * time.Millisecond
	c.Policy = &resilience.Policy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		Breakers:    resilience.NewBreakerSet(3, time.Hour),
	}
	// Burn through the failure threshold.
	for i := 0; i < 2; i++ {
		if _, err := c.LookupA("site1.world.test"); err == nil {
			t.Fatal("blackholed lookup succeeded")
		}
	}
	sent := p.Stats().UDPDropped
	start := time.Now()
	_, err := c.LookupA("site1.world.test")
	if !errors.Is(err, resilience.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Error("open breaker still waited on the network")
	}
	if p.Stats().UDPDropped != sent {
		t.Error("open breaker sent datagrams")
	}
}
