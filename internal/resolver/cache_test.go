package resolver

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/dnsserver"
	"github.com/webdep/webdep/internal/dnswire"
	"github.com/webdep/webdep/internal/faultinject"
)

// lossyProxy fronts upstream with a fault-injection proxy applying the
// given UDP plan (TCP passes through untouched).
func lossyProxy(t *testing.T, upstream string, plan faultinject.Plan) string {
	t.Helper()
	p, err := faultinject.New(upstream, plan, faultinject.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p.Addr
}

func startCacheWorld(t *testing.T) (string, *dnsserver.Server) {
	t.Helper()
	z := dnsserver.NewZone("cache.test")
	add := func(r dnswire.Record) {
		t.Helper()
		if err := z.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	add(dnswire.Record{Name: "cache.test", Type: dnswire.TypeSOA, SOA: &dnswire.SOAData{
		MName: "ns1.cache.test", RName: "admin.cache.test", Serial: 1,
	}})
	add(dnswire.Record{Name: "a.cache.test", Type: dnswire.TypeA, TTL: 300,
		Addr: netip.MustParseAddr("192.0.2.1")})
	add(dnswire.Record{Name: "short.cache.test", Type: dnswire.TypeA, TTL: 1,
		Addr: netip.MustParseAddr("192.0.2.2")})
	add(dnswire.Record{Name: "a.cache.test", Type: dnswire.TypeNS, TTL: 300,
		Target: "ns1.cache.test"})

	s := dnsserver.NewServer(nil)
	s.AddZone(z)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return addr.String(), s
}

func TestCacheHitsAvoidQueries(t *testing.T) {
	addr, srv := startCacheWorld(t)
	cc := NewCachingClient(NewClient(addr))

	for i := 0; i < 5; i++ {
		addrs, err := cc.LookupA("a.cache.test")
		if err != nil || len(addrs) != 1 {
			t.Fatalf("lookup %d: %v %v", i, addrs, err)
		}
	}
	if q := srv.Queries(); q != 1 {
		t.Errorf("server saw %d queries, want 1", q)
	}
	hits, misses := cc.Stats()
	if hits != 4 || misses != 1 {
		t.Errorf("hits/misses = %d/%d", hits, misses)
	}
}

func TestCacheRespectsTTL(t *testing.T) {
	addr, srv := startCacheWorld(t)
	cc := NewCachingClient(NewClient(addr))
	current := time.Unix(1000, 0)
	cc.now = func() time.Time { return current }

	if _, err := cc.LookupA("short.cache.test"); err != nil {
		t.Fatal(err)
	}
	// Within the 1s TTL: cached.
	current = current.Add(500 * time.Millisecond)
	if _, err := cc.LookupA("short.cache.test"); err != nil {
		t.Fatal(err)
	}
	if q := srv.Queries(); q != 1 {
		t.Fatalf("queries = %d before expiry", q)
	}
	// Past the TTL: refetched.
	current = current.Add(2 * time.Second)
	if _, err := cc.LookupA("short.cache.test"); err != nil {
		t.Fatal(err)
	}
	if q := srv.Queries(); q != 2 {
		t.Errorf("queries = %d after expiry, want 2", q)
	}
}

func TestCacheCapsTTL(t *testing.T) {
	addr, srv := startCacheWorld(t)
	cc := NewCachingClient(NewClient(addr))
	cc.MaxTTL = 10 * time.Second
	current := time.Unix(1000, 0)
	cc.now = func() time.Time { return current }

	// a.cache.test has TTL 300s but MaxTTL caps it at 10s.
	if _, err := cc.LookupA("a.cache.test"); err != nil {
		t.Fatal(err)
	}
	current = current.Add(11 * time.Second)
	if _, err := cc.LookupA("a.cache.test"); err != nil {
		t.Fatal(err)
	}
	if q := srv.Queries(); q != 2 {
		t.Errorf("queries = %d, want refetch after MaxTTL", q)
	}
}

func TestNegativeCaching(t *testing.T) {
	addr, srv := startCacheWorld(t)
	cc := NewCachingClient(NewClient(addr))
	for i := 0; i < 3; i++ {
		if _, err := cc.LookupA("missing.cache.test"); !errors.Is(err, ErrNXDomain) {
			t.Fatalf("lookup %d err = %v", i, err)
		}
	}
	if q := srv.Queries(); q != 1 {
		t.Errorf("NXDOMAIN queried %d times, want 1 (negative cache)", q)
	}
}

func TestTransportErrorsNotCached(t *testing.T) {
	cc := NewCachingClient(NewClient("127.0.0.1:1"))
	cc.Client.Timeout = 100 * time.Millisecond
	cc.Client.Retries = 0
	if _, err := cc.LookupA("x.test"); err == nil {
		t.Fatal("lookup against closed port succeeded")
	}
	// The failure must not be served from cache.
	if _, err := cc.LookupA("x.test"); err == nil {
		t.Fatal("second lookup succeeded")
	}
	hits, _ := cc.Stats()
	if hits != 0 {
		t.Errorf("transport errors served from cache (%d hits)", hits)
	}
}

func TestCacheNS(t *testing.T) {
	addr, srv := startCacheWorld(t)
	cc := NewCachingClient(NewClient(addr))
	for i := 0; i < 3; i++ {
		ns, err := cc.LookupNS("a.cache.test")
		if err != nil || len(ns) != 1 || ns[0] != "ns1.cache.test" {
			t.Fatalf("NS lookup: %v %v", ns, err)
		}
	}
	if q := srv.Queries(); q != 1 {
		t.Errorf("NS queried %d times", q)
	}
}

// TestRetriesThroughLossyPath injects datagram loss between the client and
// server via a dropping UDP proxy and verifies the resolver's retry loop
// recovers.
func TestRetriesThroughLossyPath(t *testing.T) {
	addr, _ := startCacheWorld(t)
	proxy := lossyProxy(t, addr, faultinject.Plan{DropFirst: 2})

	c := NewClient(proxy)
	c.Timeout = 300 * time.Millisecond
	c.Retries = 3
	addrs, err := c.LookupA("a.cache.test")
	if err != nil {
		t.Fatalf("lookup through lossy path: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("192.0.2.1") {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestLossBeyondRetriesFails(t *testing.T) {
	addr, _ := startCacheWorld(t)
	proxy := lossyProxy(t, addr, faultinject.Plan{Blackhole: true})

	c := NewClient(proxy)
	c.Timeout = 150 * time.Millisecond
	c.Retries = 1
	if _, err := c.LookupA("a.cache.test"); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}
