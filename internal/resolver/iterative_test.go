package resolver

import (
	"errors"
	"net/netip"
	"testing"

	"github.com/webdep/webdep/internal/dnsserver"
	"github.com/webdep/webdep/internal/dnswire"
)

// startHierarchy runs a two-level authoritative hierarchy on loopback:
// a parent server for "test" that delegates "example.test", and a child
// server authoritative for "example.test". Returns the parent address and
// the glue→listener mapping.
func startHierarchy(t *testing.T) (rootAddr string, serverAddr func(netip.Addr) string) {
	t.Helper()

	childGlue := netip.MustParseAddr("198.51.100.53")

	child := dnsserver.NewZone("example.test")
	mustZoneAdd(t, child, dnswire.Record{Name: "example.test", Type: dnswire.TypeSOA,
		SOA: &dnswire.SOAData{MName: "ns1.example.test", RName: "admin.example.test", Serial: 1}})
	mustZoneAdd(t, child, dnswire.Record{Name: "www.example.test", Type: dnswire.TypeA, TTL: 60,
		Addr: netip.MustParseAddr("203.0.113.80")})
	childSrv := dnsserver.NewServer(nil)
	childSrv.AddZone(child)
	childNet, err := childSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { childSrv.Close() })

	parent := dnsserver.NewZone("test")
	mustZoneAdd(t, parent, dnswire.Record{Name: "test", Type: dnswire.TypeSOA,
		SOA: &dnswire.SOAData{MName: "ns1.test", RName: "admin.test", Serial: 1}})
	// Delegation with glue.
	mustZoneAdd(t, parent, dnswire.Record{Name: "example.test", Type: dnswire.TypeNS, TTL: 300,
		Target: "ns1.example.test"})
	mustZoneAdd(t, parent, dnswire.Record{Name: "ns1.example.test", Type: dnswire.TypeA, TTL: 300,
		Addr: childGlue})
	// A lame delegation with no glue anywhere.
	mustZoneAdd(t, parent, dnswire.Record{Name: "lame.test", Type: dnswire.TypeNS, TTL: 300,
		Target: "ns1.nowhere.invalid"})
	parentSrv := dnsserver.NewServer(nil)
	parentSrv.AddZone(parent)
	parentNet, err := parentSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { parentSrv.Close() })

	addrFor := func(a netip.Addr) string {
		if a == childGlue {
			return childNet.String()
		}
		return "127.0.0.1:1" // nothing there
	}
	return parentNet.String(), addrFor
}

func mustZoneAdd(t *testing.T, z *dnsserver.Zone, r dnswire.Record) {
	t.Helper()
	if err := z.Add(r); err != nil {
		t.Fatal(err)
	}
}

func TestIterativeFollowsReferral(t *testing.T) {
	root, addrFor := startHierarchy(t)
	it := &Iterative{Root: root, ServerAddr: addrFor}
	addrs, chain, err := it.LookupA("www.example.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("203.0.113.80") {
		t.Errorf("addrs = %v", addrs)
	}
	if len(chain) != 2 {
		t.Errorf("chain = %v, want parent then child", chain)
	}
}

func TestParentAnswersReferral(t *testing.T) {
	// Querying the parent directly shows the referral mechanics: no
	// answer, authority NS, glue A, AA clear.
	root, _ := startHierarchy(t)
	c := NewClient(root)
	resp, err := c.Exchange("www.example.test", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.AA {
		t.Error("referral marked authoritative")
	}
	if len(resp.Answers) != 0 {
		t.Errorf("referral carries answers: %+v", resp.Answers)
	}
	if len(resp.Authorities) != 1 || resp.Authorities[0].Target != "ns1.example.test" {
		t.Errorf("authorities = %+v", resp.Authorities)
	}
	if len(resp.Additionals) != 1 || resp.Additionals[0].Addr != netip.MustParseAddr("198.51.100.53") {
		t.Errorf("glue = %+v", resp.Additionals)
	}
}

func TestIterativeLameDelegation(t *testing.T) {
	root, addrFor := startHierarchy(t)
	it := &Iterative{Root: root, ServerAddr: addrFor}
	_, _, err := it.LookupA("www.lame.test")
	if !errors.Is(err, ErrLameDelegation) {
		t.Errorf("err = %v, want ErrLameDelegation", err)
	}
}

func TestIterativeNXDomainAtParent(t *testing.T) {
	root, addrFor := startHierarchy(t)
	it := &Iterative{Root: root, ServerAddr: addrFor}
	resp, _, err := it.Resolve("missing.test", dnswire.TypeA)
	if !errors.Is(err, ErrNXDomain) {
		t.Errorf("err = %v (resp %+v)", err, resp)
	}
}

func TestIterativeReferralBound(t *testing.T) {
	// Two zones delegating to each other's cut would loop; the hop bound
	// must stop it. Build a parent whose delegation glue points back at
	// itself.
	z := dnsserver.NewZone("loopy")
	glue := netip.MustParseAddr("192.0.2.99")
	mustZoneAdd(t, z, dnswire.Record{Name: "sub.loopy", Type: dnswire.TypeNS, Target: "ns1.sub.loopy"})
	mustZoneAdd(t, z, dnswire.Record{Name: "ns1.sub.loopy", Type: dnswire.TypeA, Addr: glue})
	srv := dnsserver.NewServer(nil)
	srv.AddZone(z)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	it := &Iterative{
		Root:         addr.String(),
		MaxReferrals: 3,
		ServerAddr:   func(netip.Addr) string { return addr.String() }, // always back to itself
	}
	_, chain, err := it.LookupA("www.sub.loopy")
	if !errors.Is(err, ErrReferralLoop) {
		t.Errorf("err = %v (chain %v)", err, chain)
	}
	if len(chain) != 4 { // root + 3 referrals
		t.Errorf("chain length = %d", len(chain))
	}
}
