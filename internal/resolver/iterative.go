package resolver

import (
	"errors"
	"fmt"
	"net/netip"

	"github.com/webdep/webdep/internal/dnswire"
)

// Iterative walks the authoritative hierarchy the way a full resolver
// does: ask a root-level server, follow referrals (authority NS plus glue)
// down the zone cuts, and return the leaf answer. This is the measurement
// mode that observes *which* authoritative infrastructure serves each zone,
// rather than trusting one server for everything.
type Iterative struct {
	// Root is the "host:port" of the root-hint server.
	Root string
	// Client performs the individual exchanges; its Server field is
	// ignored (each hop targets the referred server). Nil gets defaults.
	Client *Client
	// ServerAddr maps a nameserver's glue address to the "host:port" to
	// dial. Nil dials "addr:53", the real-world behavior; test harnesses
	// map synthetic glue addresses onto loopback listeners.
	ServerAddr func(netip.Addr) string
	// MaxReferrals bounds the referral chain (default 12).
	MaxReferrals int
}

// ErrReferralLoop is returned when the referral chain exceeds the bound.
var ErrReferralLoop = errors.New("resolver: referral chain too long")

// ErrLameDelegation is returned when a referral carries no usable
// nameserver address.
var ErrLameDelegation = errors.New("resolver: referral without resolvable nameserver")

func (it *Iterative) client() *Client {
	if it.Client != nil {
		return it.Client
	}
	it.Client = NewClient("")
	return it.Client
}

func (it *Iterative) serverAddr(a netip.Addr) string {
	if it.ServerAddr != nil {
		return it.ServerAddr(a)
	}
	return fmt.Sprintf("%s:53", a)
}

// Resolve iteratively resolves (name, qtype), returning the final
// authoritative response and the chain of server addresses consulted.
func (it *Iterative) Resolve(name string, qtype uint16) (*dnswire.Message, []string, error) {
	maxHops := it.MaxReferrals
	if maxHops <= 0 {
		maxHops = 12
	}
	c := it.client()
	server := it.Root
	var chain []string
	for hop := 0; hop <= maxHops; hop++ {
		chain = append(chain, server)
		hopClient := &Client{Server: server, Timeout: c.Timeout, Retries: c.Retries}
		resp, err := hopClient.Exchange(name, qtype)
		if err != nil {
			return resp, chain, err
		}
		// Authoritative answer (or authoritative NODATA): done.
		if resp.Header.AA || len(resp.Answers) > 0 {
			return resp, chain, nil
		}
		// Referral: pick a nameserver we can address, preferring glue.
		next := it.nextServer(resp)
		if next == "" {
			return resp, chain, ErrLameDelegation
		}
		server = next
	}
	return nil, chain, ErrReferralLoop
}

// nextServer selects the next hop from a referral, using glue from the
// additional section.
func (it *Iterative) nextServer(resp *dnswire.Message) string {
	glue := map[string][]netip.Addr{}
	for _, r := range resp.Additionals {
		if r.Type == dnswire.TypeA || r.Type == dnswire.TypeAAAA {
			glue[r.Name] = append(glue[r.Name], r.Addr)
		}
	}
	for _, r := range resp.Authorities {
		if r.Type != dnswire.TypeNS {
			continue
		}
		if addrs := glue[r.Target]; len(addrs) > 0 {
			return it.serverAddr(addrs[0])
		}
	}
	return ""
}

// LookupA iteratively resolves a name's IPv4 addresses.
func (it *Iterative) LookupA(name string) ([]netip.Addr, []string, error) {
	resp, chain, err := it.Resolve(name, dnswire.TypeA)
	if err != nil {
		return nil, chain, err
	}
	var out []netip.Addr
	for _, r := range resp.Answers {
		if r.Type == dnswire.TypeA {
			out = append(out, r.Addr)
		}
	}
	return out, chain, nil
}
