// Package resolver is the toolkit's concurrent DNS lookup engine — the
// ZDNS substitute. A Client performs single exchanges against an
// authoritative server over UDP with retries and automatic TCP fallback on
// truncation; a Pool fans lookups out across a bounded worker set, the way
// the paper's measurement resolved 588K domains.
package resolver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/webdep/webdep/internal/dnswire"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/resilience"
)

// Errors surfaced by the resolver.
var (
	ErrTimeout    = errors.New("resolver: query timed out")
	ErrIDMismatch = errors.New("resolver: response ID mismatch")
	ErrServFail   = errors.New("resolver: SERVFAIL")
	ErrNXDomain   = errors.New("resolver: NXDOMAIN")
	ErrRefused    = errors.New("resolver: REFUSED")
)

// Client queries one DNS server. The zero value is unusable; fill Server.
type Client struct {
	// Server is the "host:port" of the authoritative server.
	Server string
	// Timeout bounds each network attempt. Default 2s.
	Timeout time.Duration
	// Retries is the number of additional attempts after the first,
	// used when Policy is nil. Default 2.
	Retries int
	// Policy, when non-nil, replaces the fixed Retries loop with the
	// resilience layer: jittered exponential backoff, per-attempt
	// timeouts, a bounded retry budget, and circuit breaking keyed
	// "dns:<server>". Transient failures (timeouts, datagram loss) are
	// retried under the policy; authoritative negatives (NXDOMAIN,
	// REFUSED) never are.
	Policy *resilience.Policy
	// Obs selects the metrics registry the client's "probe.dns.*"
	// instruments record to; nil means obs.Default().
	Obs *obs.Registry

	// rng guards query-ID generation.
	mu  sync.Mutex
	rng *rand.Rand

	metricsOnce sync.Once
	metrics     *clientMetrics
}

// clientMetrics holds the hoisted per-probe instruments: one latency
// histogram per wire exchange (each attempt, not each logical lookup, so
// retry inflation is visible) plus attempt/fallback counters.
type clientMetrics struct {
	exchangeMS   *obs.Histogram
	attempts     *obs.Counter
	errors       *obs.Counter
	tcpFallbacks *obs.Counter
}

func (c *Client) m() *clientMetrics {
	c.metricsOnce.Do(func() {
		r := c.Obs
		if r == nil {
			r = obs.Default()
		}
		c.metrics = &clientMetrics{
			exchangeMS:   r.Timing("probe.dns.ms"),
			attempts:     r.Counter("probe.dns.attempts"),
			errors:       r.Counter("probe.dns.errors"),
			tcpFallbacks: r.Counter("probe.dns.tcp_fallbacks"),
		}
	})
	return c.metrics
}

// NewClient returns a client with defaults suitable for LAN-local
// authoritative servers.
func NewClient(server string) *Client {
	return &Client{
		Server:  server,
		Timeout: 2 * time.Second,
		Retries: 2,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

func (c *Client) nextID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return uint16(c.rng.Intn(1 << 16))
}

// Classify maps resolver errors onto resilience classes: authoritative
// negatives (NXDOMAIN, REFUSED) and protocol violations (ID mismatch) are
// permanent — retrying cannot change the answer — while timeouts and
// SERVFAIL are transient. Anything else falls through to
// resilience.DefaultClassify, which covers raw network errors.
func Classify(err error) resilience.Class {
	switch {
	case err == nil:
		return resilience.Success
	case errors.Is(err, ErrNXDomain), errors.Is(err, ErrRefused), errors.Is(err, ErrIDMismatch):
		return resilience.Permanent
	case errors.Is(err, ErrTimeout), errors.Is(err, ErrServFail):
		return resilience.Transient
	}
	return resilience.DefaultClassify(err)
}

// Exchange sends one query and returns the parsed response, retrying over
// UDP and falling back to TCP when the answer is truncated. DNS-level
// failures (NXDOMAIN, SERVFAIL, REFUSED) are returned as errors alongside
// the response carrying the code.
func (c *Client) Exchange(name string, qtype uint16) (*dnswire.Message, error) {
	return c.ExchangeContext(context.Background(), name, qtype)
}

// ExchangeContext is Exchange bounded by a context: cancelling ctx aborts
// in-flight attempts and pending retry backoffs. When c.Policy is set the
// retry schedule, budget, and circuit breaking come from the policy;
// otherwise the fixed c.Retries loop applies.
func (c *Client) ExchangeContext(ctx context.Context, name string, qtype uint16) (*dnswire.Message, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	var resp *dnswire.Message
	attempt := func(ctx context.Context) error {
		resp = nil
		r, err := c.attempt(ctx, name, qtype, timeout)
		if err != nil {
			return err
		}
		resp = r
		return rcodeError(r.Header.RCode)
	}

	if c.Policy != nil {
		err := c.Policy.DoClassified(ctx, "dns:"+c.Server, Classify, attempt)
		return resp, err
	}

	attempts := c.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		err := attempt(ctx)
		if Classify(err) != resilience.Transient {
			// Success or an authoritative answer carrying an error code:
			// either way the exchange is over.
			return resp, err
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ErrTimeout
	}
	return nil, lastErr
}

// attempt performs one UDP exchange with TCP fallback on truncation,
// recording the attempt's wire latency and outcome.
func (c *Client) attempt(ctx context.Context, name string, qtype uint16, timeout time.Duration) (*dnswire.Message, error) {
	m := c.m()
	m.attempts.Inc()
	sp := obs.StartSpan(m.exchangeMS)
	resp, err := c.exchangeUDP(ctx, name, qtype, timeout)
	if err == nil && resp.Header.TC {
		m.tcpFallbacks.Inc()
		resp, err = c.exchangeTCP(ctx, name, qtype, timeout)
	}
	sp.End()
	if err != nil {
		m.errors.Inc()
		return nil, err
	}
	return resp, nil
}

func rcodeError(rcode uint8) error {
	switch rcode {
	case dnswire.RCodeNoError:
		return nil
	case dnswire.RCodeServFail:
		return ErrServFail
	case dnswire.RCodeNXDomain:
		return ErrNXDomain
	case dnswire.RCodeRefused:
		return ErrRefused
	default:
		return fmt.Errorf("resolver: RCODE %d", rcode)
	}
}

// deadline returns the attempt deadline: timeout from now, tightened to
// the context's own deadline when that is sooner.
func deadline(ctx context.Context, timeout time.Duration) time.Time {
	d := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(d) {
		return dl
	}
	return d
}

func (c *Client) exchangeUDP(ctx context.Context, name string, qtype uint16, timeout time.Duration) (*dnswire.Message, error) {
	id := c.nextID()
	query, err := dnswire.NewQuery(id, name, qtype).Pack()
	if err != nil {
		return nil, err
	}
	dialer := &net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "udp", c.Server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(deadline(ctx, timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(query); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, ErrTimeout
			}
			return nil, err
		}
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil {
			return nil, err
		}
		if resp.Header.ID != id {
			// Stale or spoofed datagram on a connected UDP socket; keep
			// waiting for the matching one until the deadline fires.
			continue
		}
		return resp, nil
	}
}

func (c *Client) exchangeTCP(ctx context.Context, name string, qtype uint16, timeout time.Duration) (*dnswire.Message, error) {
	id := c.nextID()
	query, err := dnswire.NewQuery(id, name, qtype).Pack()
	if err != nil {
		return nil, err
	}
	dialer := &net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", c.Server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(deadline(ctx, timeout)); err != nil {
		return nil, err
	}
	framed := make([]byte, 2+len(query))
	framed[0] = byte(len(query) >> 8)
	framed[1] = byte(len(query))
	copy(framed[2:], query)
	if _, err := conn.Write(framed); err != nil {
		return nil, err
	}
	var lenBuf [2]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return nil, err
	}
	msg := make([]byte, int(lenBuf[0])<<8|int(lenBuf[1]))
	if _, err := io.ReadFull(conn, msg); err != nil {
		return nil, err
	}
	resp, err := dnswire.Unpack(msg)
	if err != nil {
		return nil, err
	}
	if resp.Header.ID != id {
		return nil, ErrIDMismatch
	}
	return resp, nil
}

// LookupA resolves a name to its IPv4 addresses, following CNAMEs included
// in the answer section.
func (c *Client) LookupA(name string) ([]netip.Addr, error) {
	return c.LookupAContext(context.Background(), name)
}

// LookupAContext is LookupA bounded by a context.
func (c *Client) LookupAContext(ctx context.Context, name string) ([]netip.Addr, error) {
	resp, err := c.ExchangeContext(ctx, name, dnswire.TypeA)
	if err != nil {
		return nil, err
	}
	var out []netip.Addr
	for _, r := range resp.Answers {
		if r.Type == dnswire.TypeA {
			out = append(out, r.Addr)
		}
	}
	return out, nil
}

// LookupNS resolves a name's authoritative nameservers.
func (c *Client) LookupNS(name string) ([]string, error) {
	targets, _, err := c.LookupNSGlued(name)
	return targets, err
}

// LookupNSGlued resolves a name's authoritative nameservers and also
// returns any glue addresses the server volunteered in the additional
// section, keyed by nameserver host. Callers can skip the follow-up A
// lookup for glued targets.
func (c *Client) LookupNSGlued(name string) (targets []string, glue map[string][]netip.Addr, err error) {
	return c.LookupNSGluedContext(context.Background(), name)
}

// LookupNSGluedContext is LookupNSGlued bounded by a context.
func (c *Client) LookupNSGluedContext(ctx context.Context, name string) (targets []string, glue map[string][]netip.Addr, err error) {
	resp, err := c.ExchangeContext(ctx, name, dnswire.TypeNS)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range resp.Answers {
		if r.Type == dnswire.TypeNS {
			targets = append(targets, r.Target)
		}
	}
	for _, r := range resp.Additionals {
		if r.Type == dnswire.TypeA || r.Type == dnswire.TypeAAAA {
			if glue == nil {
				glue = make(map[string][]netip.Addr)
			}
			glue[r.Name] = append(glue[r.Name], r.Addr)
		}
	}
	return targets, glue, nil
}

// Result is the outcome of one pooled lookup.
type Result struct {
	Domain string
	Addrs  []netip.Addr
	NS     []string
	Err    error
}

// Pool performs bulk A+NS resolution with bounded concurrency.
type Pool struct {
	Client  *Client
	Workers int // default 16
}

// ResolveAll looks up A and NS records for every domain, preserving input
// order in the returned slice. Individual failures are reported per-result,
// not as an overall error — a crawl keeps going when single domains fail.
func (p *Pool) ResolveAll(domains []string) []Result {
	workers := p.Workers
	if workers <= 0 {
		workers = 16
	}
	results := make([]Result, len(domains))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				domain := domains[i]
				res := Result{Domain: domain}
				res.Addrs, res.Err = p.Client.LookupA(domain)
				if res.Err == nil {
					res.NS, _ = p.Client.LookupNS(domain)
				}
				results[i] = res
			}
		}()
	}
	for i := range domains {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
