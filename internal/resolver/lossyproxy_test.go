package resolver

import (
	"net"
	"sync"
	"testing"
	"time"
)

// startLossyUDPProxy forwards datagrams to upstream, dropping the first
// dropCount inbound packets — a deterministic loss injector for retry
// tests.
func startLossyUDPProxy(t *testing.T, upstream string, dropCount int) string {
	t.Helper()
	upAddr, err := net.ResolveUDPAddr("udp", upstream)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })

	var mu sync.Mutex
	dropped := 0

	go func() {
		buf := make([]byte, 4096)
		for {
			n, client, err := ln.ReadFromUDP(buf)
			if err != nil {
				return
			}
			mu.Lock()
			drop := dropped < dropCount
			if drop {
				dropped++
			}
			mu.Unlock()
			if drop {
				continue
			}
			pkt := make([]byte, n)
			copy(pkt, buf[:n])
			go func(pkt []byte, client *net.UDPAddr) {
				up, err := net.DialUDP("udp", nil, upAddr)
				if err != nil {
					return
				}
				defer up.Close()
				if _, err := up.Write(pkt); err != nil {
					return
				}
				up.SetReadDeadline(time.Now().Add(2 * time.Second))
				resp := make([]byte, 4096)
				rn, err := up.Read(resp)
				if err != nil {
					return
				}
				ln.WriteToUDP(resp[:rn], client)
			}(pkt, client)
		}
	}()
	return ln.LocalAddr().String()
}
