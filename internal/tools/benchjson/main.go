// Command benchjson converts `go test -bench` text output (the format
// benchstat consumes) into JSON, so CI can publish benchmark results as a
// machine-readable artifact alongside the raw text:
//
//	go test -bench=. ./internal/parallel | go run ./internal/tools/benchjson
//
// Each benchmark line becomes one object; repeated runs of the same
// benchmark (-count=N) appear as separate objects, preserving the sample
// structure benchstat needs for significance testing.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: name, parallelism suffix, iteration count,
// and every reported metric keyed by unit (ns/op, B/op, allocs/op, ...).
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark lines, skipping the goos/goarch preamble and the
// PASS/ok trailer.
func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			continue
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// parseLine parses one "BenchmarkName-8  1000  123 ns/op  4 B/op" line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	res := Result{Name: fields[0], Metrics: make(map[string]float64)}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, len(res.Metrics) > 0
}
