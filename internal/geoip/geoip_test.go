package geoip

import (
	"fmt"
	"net/netip"
	"testing"
)

func TestBasicLookup(t *testing.T) {
	db := New()
	if err := db.InsertString("10.0.0.0/8", Location{Country: "US", Continent: "NA"}); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertString("10.200.0.0/16", Location{Country: "DE", Continent: "EU"}); err != nil {
		t.Fatal(err)
	}
	if loc, ok := db.LookupString("10.1.2.3"); !ok || loc.Country != "US" {
		t.Errorf("10.1.2.3 → %+v %v", loc, ok)
	}
	if loc, ok := db.LookupString("10.200.9.9"); !ok || loc.Country != "DE" || loc.Continent != "EU" {
		t.Errorf("10.200.9.9 → %+v %v", loc, ok)
	}
	if _, ok := db.LookupString("11.0.0.1"); ok {
		t.Error("uncovered address geolocated")
	}
	if _, ok := db.LookupString("garbage"); ok {
		t.Error("garbage IP geolocated")
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestErrorModelDeterministic(t *testing.T) {
	db := New()
	if err := db.InsertString("0.0.0.0/0", Location{Country: "US", Continent: "NA"}); err != nil {
		t.Fatal(err)
	}
	db.SetErrorModel(0.106, []Location{{Country: "CA", Continent: "NA"}, {Country: "MX", Continent: "NA"}})

	addr := netip.MustParseAddr("198.51.100.77")
	first, _ := db.Lookup(addr)
	for i := 0; i < 10; i++ {
		again, _ := db.Lookup(addr)
		if again != first {
			t.Fatal("error model not deterministic per address")
		}
	}
}

func TestErrorModelRate(t *testing.T) {
	db := New()
	if err := db.InsertString("0.0.0.0/0", Location{Country: "US", Continent: "NA"}); err != nil {
		t.Fatal(err)
	}
	db.SetErrorModel(0.106, []Location{{Country: "ZZ", Continent: "EU"}})

	wrong := 0
	const n = 20000
	for i := 0; i < n; i++ {
		ip := fmt.Sprintf("%d.%d.%d.%d", 1+i%200, (i/200)%250, (i/50000)%250, i%250)
		loc, ok := db.LookupString(ip)
		if !ok {
			t.Fatal("lookup failed")
		}
		if loc.Country == "ZZ" {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate < 0.08 || rate > 0.14 {
		t.Errorf("observed error rate %v, want ≈0.106", rate)
	}
}

func TestErrorModelDisabling(t *testing.T) {
	db := New()
	if err := db.InsertString("0.0.0.0/0", Location{Country: "US"}); err != nil {
		t.Fatal(err)
	}
	// Invalid parameters must disable the model, not corrupt lookups.
	db.SetErrorModel(0.5, nil)
	if loc, _ := db.LookupString("1.2.3.4"); loc.Country != "US" {
		t.Error("model with no decoys should be disabled")
	}
	db.SetErrorModel(-1, []Location{{Country: "XX"}})
	if loc, _ := db.LookupString("1.2.3.4"); loc.Country != "US" {
		t.Error("negative rate should disable the model")
	}
	db.SetErrorModel(1.5, []Location{{Country: "XX"}})
	if loc, _ := db.LookupString("1.2.3.4"); loc.Country != "US" {
		t.Error("rate ≥ 1 should disable the model")
	}
}

func TestMislabelStillCovered(t *testing.T) {
	// Error model must only fire for addresses that were actually covered.
	db := New()
	if err := db.InsertString("10.0.0.0/8", Location{Country: "US"}); err != nil {
		t.Fatal(err)
	}
	db.SetErrorModel(0.9, []Location{{Country: "XX"}})
	if _, ok := db.LookupString("11.1.1.1"); ok {
		t.Error("uncovered address should stay uncovered under error model")
	}
}
