package geoip

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// LoadCSV populates the database from a simple text feed, one entry per
// line: "prefix,country,continent" (comments with '#', blank lines
// ignored). This is the adoption path for real geolocation data: convert
// your provider's feed to this format and the rest of the toolkit works
// unchanged.
func (db *DB) LoadCSV(r io.Reader) (int, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	n := 0
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return n, fmt.Errorf("geoip: line %d: want prefix,country,continent", line)
		}
		loc := Location{
			Country:   strings.ToUpper(strings.TrimSpace(parts[1])),
			Continent: strings.ToUpper(strings.TrimSpace(parts[2])),
		}
		if err := db.InsertString(strings.TrimSpace(parts[0]), loc); err != nil {
			return n, fmt.Errorf("geoip: line %d: %w", line, err)
		}
		n++
	}
	return n, scanner.Err()
}
