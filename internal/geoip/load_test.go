package geoip

import (
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	feed := `# provider feed
104.16.0.0/13, US, NA

5.255.255.0/24, ru, eu
2001:db8::/32, SG, AS
`
	db := New()
	n, err := db.LoadCSV(strings.NewReader(feed))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || db.Len() != 3 {
		t.Fatalf("loaded %d entries, Len %d", n, db.Len())
	}
	if loc, ok := db.LookupString("104.17.1.1"); !ok || loc.Country != "US" {
		t.Errorf("lookup = %+v %v", loc, ok)
	}
	if loc, ok := db.LookupString("5.255.255.77"); !ok || loc.Country != "RU" || loc.Continent != "EU" {
		t.Errorf("case folding: %+v %v", loc, ok)
	}
	if loc, ok := db.LookupString("2001:db8::1"); !ok || loc.Continent != "AS" {
		t.Errorf("v6: %+v %v", loc, ok)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := New()
	if _, err := db.LoadCSV(strings.NewReader("only,two")); err == nil {
		t.Error("two-field line accepted")
	}
	if _, err := db.LoadCSV(strings.NewReader("not-a-prefix,US,NA")); err == nil {
		t.Error("bad prefix accepted")
	}
	// Partial progress is reported.
	n, err := db.LoadCSV(strings.NewReader("10.0.0.0/8,US,NA\nbad,US,NA"))
	if err == nil || n != 1 {
		t.Errorf("partial load: n=%d err=%v", n, err)
	}
}
