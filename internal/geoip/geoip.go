// Package geoip is the toolkit's IP-geolocation database — the substitute
// for the NetAcuity feed the paper licenses. Lookups are longest-prefix
// matches over a prefix→location table; an optional deterministic error
// model reproduces the country-level inaccuracy of commercial geolocation
// (the paper cites 89.4% country accuracy for NetAcuity).
package geoip

import (
	"hash/fnv"
	"net/netip"

	"github.com/webdep/webdep/internal/iptrie"
)

// Location is a geolocation result.
type Location struct {
	Country   string // ISO 3166-1 alpha-2
	Continent string // AF, AS, EU, NA, OC, SA
}

// DB is a prefix-based geolocation database. Construct with New, populate
// with Insert, then query concurrently with Lookup.
type DB struct {
	trie *iptrie.Trie[Location]

	// errorRate in [0,1) is the probability a lookup is deliberately
	// mislabeled; mislabels are a deterministic function of the address so
	// repeated lookups agree, as a real (consistently wrong) database would.
	errorRate float64
	// decoys are the locations mislabeled lookups are drawn from.
	decoys []Location
}

// New returns an empty, perfectly accurate database.
func New() *DB {
	return &DB{trie: iptrie.New[Location]()}
}

// SetErrorModel enables deterministic mislabeling: approximately rate of
// lookups (by address hash) return a decoy location instead of the true
// one. A rate of 0.106 models NetAcuity's measured country-level error.
// Passing rate <= 0 or no decoys disables the model.
func (db *DB) SetErrorModel(rate float64, decoys []Location) {
	if rate <= 0 || rate >= 1 || len(decoys) == 0 {
		db.errorRate = 0
		db.decoys = nil
		return
	}
	db.errorRate = rate
	db.decoys = append([]Location(nil), decoys...)
}

// Insert registers a prefix's location.
func (db *DB) Insert(prefix netip.Prefix, loc Location) error {
	return db.trie.Insert(prefix, loc)
}

// InsertString registers a CIDR string's location.
func (db *DB) InsertString(cidr string, loc Location) error {
	return db.trie.InsertString(cidr, loc)
}

// Len reports the number of prefixes in the database.
func (db *DB) Len() int { return db.trie.Len() }

// Lookup geolocates an address. The boolean is false when no prefix covers
// it.
func (db *DB) Lookup(addr netip.Addr) (Location, bool) {
	loc, ok := db.trie.Lookup(addr)
	if !ok {
		return Location{}, false
	}
	if db.errorRate > 0 && db.mislabels(addr) {
		return db.decoyFor(addr), true
	}
	return loc, true
}

// LookupString geolocates an IP given as a string.
func (db *DB) LookupString(ip string) (Location, bool) {
	addr, err := netip.ParseAddr(ip)
	if err != nil {
		return Location{}, false
	}
	return db.Lookup(addr)
}

func (db *DB) mislabels(addr netip.Addr) bool {
	h := fnv.New64a()
	raw := addr.AsSlice()
	h.Write(raw)
	// Map the hash onto [0,1) and compare against the error rate.
	frac := float64(h.Sum64()%1_000_000) / 1_000_000
	return frac < db.errorRate
}

func (db *DB) decoyFor(addr netip.Addr) Location {
	h := fnv.New64a()
	h.Write([]byte("decoy"))
	h.Write(addr.AsSlice())
	return db.decoys[h.Sum64()%uint64(len(db.decoys))]
}
