package fedcrawl

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/pipeline"
)

// TestGenFromNameHostileFilenames pins the generation parser against
// hostile or merely strange file names in the journal directory: anything
// that is not a plain bounded run of digits after "-g" parses as
// generation 0 — never a negative generation, never an integer overflow,
// never a panic.
func TestGenFromNameHostileFilenames(t *testing.T) {
	cases := []struct {
		path string
		want int
	}{
		{"w0-g1.journal", 1},
		{"w12-g34.journal", 34},
		{"/some/dir/w3-g7.journal", 7},
		{"w0-g999999999.journal", 999999999},
		// No generation marker at all.
		{"w0.journal", 0},
		{"plain.journal", 0},
		{"", 0},
		// Empty digit run.
		{"w0-g.journal", 0},
		// Signs are not digits: a "negative generation" cannot be smuggled
		// in to drag maxGen below zero, nor a "+" to confuse parsing.
		{"w0-g-5.journal", 0},
		{"w0-g+7.journal", 0},
		// Ten or more digits would overflow toward surprising generations;
		// the parser refuses rather than truncates.
		{"w0-g1000000000.journal", 0},
		{"w0-g9223372036854775807.journal", 0},
		{"w0-g99999999999999999999999999.journal", 0},
		// Non-digits anywhere in the run.
		{"w0-gabc.journal", 0},
		{"w0-g1x2.journal", 0},
		{"w0-g0x10.journal", 0},
		// The LAST "-g" wins, matching how worker names themselves may
		// contain "-g".
		{"w-g2-g5.journal", 5},
		{"w-g2-gx.journal", 0},
	}
	for _, tc := range cases {
		if got := genFromName(tc.path); got != tc.want {
			t.Errorf("genFromName(%q) = %d, want %d", tc.path, got, tc.want)
		}
	}
}

// TestScanIgnoresInflightTempFiles pins the atomic-rename contract from
// the scanner's side: artifacts arrive in the merge directory as
// "<name>.journal.tmp-*" temp files first and are renamed into place only
// when whole. Both the final merge and the coordinator's durable-state
// scan must ignore in-flight temp files entirely — never merge them,
// never refuse them as corrupt, never dispatch differently because of
// them.
func TestScanIgnoresInflightTempFiles(t *testing.T) {
	w, ep := fedWorld(t)
	want := baseline(t, w, ep, fedCCs)

	dir := t.TempDir()
	factory := lossyFactory(w, ep.DNSAddr, ep.TLSAddr)
	c, err := New(fedConfig(w, dir, 2, factory))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Plant in-flight arrivals: half-written artifact temp files exactly as
	// checkpoint.WriteFileAtomic names them, plus a bare .tmp straggler.
	// Their contents are garbage — which is the point: a scanner that reads
	// them would refuse them as corrupt.
	for _, name := range []string{
		"w0-g1.journal.tmp-123456",
		"w1-g2.journal.tmp-777",
		"w9-g3.journal.tmp",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("half-written garbage, not a journal"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	reg := obs.NewRegistry()
	res, err := Merge(dir, fedEpoch, fedCCs, reg)
	if err != nil {
		t.Fatalf("merge with in-flight temp files refused: %v", err)
	}
	if n := res.Stats.MergeRefusalsForeign + res.Stats.MergeRefusalsCorrupt; n != 0 {
		t.Fatalf("merge refused %d in-flight temp files as journals", n)
	}
	assertFedConverged(t, "tmp-ignore", fedCCs, want, res.Corpus)

	// The coordinator's scan must reach the same verdict: the directory is
	// complete, so a resumed coordinator dispatches nothing.
	cfg := fedConfig(w, dir, 2, func(worker string) *pipeline.Live {
		t.Errorf("resume dispatched worker %s because of an in-flight temp file", worker)
		return factory(worker)
	})
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Waves != 0 || res2.Stats.Dispatches != 0 {
		t.Errorf("resume over a complete directory with temp files ran %+v", res2.Stats)
	}
	assertFedConverged(t, "tmp-ignore-resume", fedCCs, want, res2.Corpus)
}
