package fedcrawl

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/faultinject"
	"github.com/webdep/webdep/internal/liveworld"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/resilience"
	"github.com/webdep/webdep/internal/resolver"
	"github.com/webdep/webdep/internal/tlsscan"
	"github.com/webdep/webdep/internal/worldgen"
)

// The federated suite extends the PR 4 crash-convergence invariant across
// processes: a crawl sharded over N workers, with workers killed at
// arbitrary journal offsets and their shards re-assigned to survivors,
// must merge to the exact corpus of an unsharded fault-free run.

const fedEpoch = "2023-05"

var fedCCs = []string{"TH", "CZ", "US"}

const fedSitesPerCountry = 5

func fedWorld(t *testing.T) (*worldgen.World, *liveworld.Endpoints) {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{
		Seed:               7,
		SitesPerCountry:    fedSitesPerCountry,
		Countries:          fedCCs,
		DomesticPerCountry: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := liveworld.Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	return w, ep
}

func proxyFor(t *testing.T, upstream string, udpPlan, tcpPlan faultinject.Plan) *faultinject.Proxy {
	t.Helper()
	p, err := faultinject.New(upstream, udpPlan, tcpPlan)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// lossyFactory builds per-worker crawlers with the crash suite's retry
// posture: enough attempts that residual failure under 30% loss is
// negligible.
func lossyFactory(w *worldgen.World, dnsAddr, tlsAddr string) func(worker string) *pipeline.Live {
	return func(worker string) *pipeline.Live {
		dns := resolver.NewClient(dnsAddr)
		dns.Timeout = 100 * time.Millisecond
		return &pipeline.Live{
			Pipeline:       pipeline.FromWorld(w),
			DNS:            dns,
			Scanner:        tlsscan.New(w.Owners),
			TLSAddr:        tlsAddr,
			Workers:        4,
			DetectLanguage: true,
			Resilience: &resilience.Policy{
				MaxAttempts: 12,
				BaseDelay:   time.Millisecond,
				MaxDelay:    5 * time.Millisecond,
			},
		}
	}
}

// baseline crawls the world unsharded and fault-free: the corpus every
// federated merge must reproduce byte for byte.
func baseline(t *testing.T, w *worldgen.World, ep *liveworld.Endpoints, ccs []string) *dataset.Corpus {
	t.Helper()
	live := &pipeline.Live{
		Pipeline:       pipeline.FromWorld(w),
		DNS:            resolver.NewClient(ep.DNSAddr),
		Scanner:        tlsscan.New(w.Owners),
		TLSAddr:        ep.TLSAddr,
		Workers:        8,
		DetectLanguage: true,
	}
	corpus, err := live.CrawlCorpus(context.Background(), fedEpoch, ccs,
		func(cc string) []string { return w.Truth.Get(cc).Domains() }, nil)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

func assertFedConverged(t *testing.T, label string, ccs []string, want, got *dataset.Corpus) {
	t.Helper()
	for _, cc := range ccs {
		b, g := want.Get(cc), got.Get(cc)
		if g == nil {
			t.Fatalf("%s: %s missing from merged corpus", label, cc)
		}
		if len(b.Sites) != len(g.Sites) {
			t.Fatalf("%s: %s has %d sites, want %d", label, cc, len(g.Sites), len(b.Sites))
		}
		for i := range b.Sites {
			if g.Sites[i] != b.Sites[i] {
				t.Fatalf("%s: %s site %d differs:\n fault-free %+v\n merged     %+v",
					label, cc, i, b.Sites[i], g.Sites[i])
			}
		}
		cov := got.CoverageOf(cc)
		if cov == nil {
			t.Fatalf("%s: %s has no coverage accounting", label, cc)
		}
		if cov.Fraction() != 1 || cov.Degraded {
			t.Fatalf("%s: %s coverage %.3f degraded=%v, want full", label, cc, cov.Fraction(), cov.Degraded)
		}
	}
	for _, layer := range countries.Layers {
		ws, gs := want.Scores(layer), got.Scores(layer)
		for cc, v := range ws {
			if gs[cc] != v {
				t.Fatalf("%s: %v score for %s = %v, fault-free run says %v", label, layer, cc, gs[cc], v)
			}
		}
	}
}

func fedConfig(w *worldgen.World, dir string, workers int, factory func(string) *pipeline.Live) Config {
	return Config{
		Epoch:     fedEpoch,
		Countries: fedCCs,
		DomainsOf: func(cc string) []string { return w.Truth.Get(cc).Domains() },
		Workers:   workers,
		Dir:       dir,
		NewLive:   factory,
		Obs:       obs.NewRegistry(),
	}
}

// TestFederatedKillPointSweep is the acceptance sweep: a three-country
// crawl sharded over three workers under 30% injected transient loss, with
// worker w1 killed at EVERY write boundary of its first journal and three
// bytes into every record (torn mid-record writes), its shards re-assigned
// to the survivors — and every single variant must merge to the exact
// byte-identical corpus of the unsharded fault-free run.
func TestFederatedKillPointSweep(t *testing.T) {
	w, ep := fedWorld(t)
	want := baseline(t, w, ep, fedCCs)

	loss := faultinject.Plan{DropMod: 10, DropModUnder: 3}
	dnsProxy := proxyFor(t, ep.DNSAddr, loss, loss)
	tlsProxy := proxyFor(t, ep.TLSAddr, faultinject.Plan{}, loss)
	factory := lossyFactory(w, dnsProxy.Addr, tlsProxy.Addr)

	// w1's first-wave journal writes: magic + header + one per assigned
	// site. Sweeping one past the end covers the "kill never fires" edge.
	totalWrites := 2 + 2*len(fedCCs)
	stride := 1
	if testing.Short() {
		stride = 3
	}
	for kill := 0; kill <= totalWrites; kill += stride {
		for _, extra := range []int64{0, 3} {
			label := "kill=" + itoa(kill) + "+" + itoa(int(extra)) + "b"
			cfg := fedConfig(w, t.TempDir(), 3, factory)
			cfg.WrapJournal = func(worker string, gen int, ws checkpoint.WriteSyncer) checkpoint.WriteSyncer {
				if worker == "w1" && gen == 1 {
					return faultinject.NewKillWriter(ws, kill, extra, nil)
				}
				return ws
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(context.Background())
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			assertFedConverged(t, label, fedCCs, want, res.Corpus)
			if n := res.Merge.MergeRefusalsForeign + res.Merge.MergeRefusalsCorrupt; n != 0 {
				t.Fatalf("%s: final merge refused %d journals of its own federation", label, n)
			}
		}
	}
	if s := dnsProxy.Stats(); s.UDPDropped == 0 {
		t.Error("DNS proxy dropped nothing; the sweep exercised no transient loss")
	}
	if s := tlsProxy.Stats(); s.TCPDropped == 0 {
		t.Error("TLS proxy dropped nothing; the sweep exercised no transient loss")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestFederatedFixedKillSmoke is the CI smoke variant: one worker killed
// three bytes into its fifth journal write (a torn mid-record tear), one
// replica vantage per shard, full convergence plus the accounting
// cross-checks — coordinator stats against the fedcrawl.* obs counters,
// and the reported disagreement against an independent re-merge.
func TestFederatedFixedKillSmoke(t *testing.T) {
	w, ep := fedWorld(t)
	want := baseline(t, w, ep, fedCCs)

	loss := faultinject.Plan{DropMod: 10, DropModUnder: 3}
	dnsProxy := proxyFor(t, ep.DNSAddr, loss, loss)
	tlsProxy := proxyFor(t, ep.TLSAddr, faultinject.Plan{}, loss)

	dir := t.TempDir()
	cfg := fedConfig(w, dir, 3, lossyFactory(w, dnsProxy.Addr, tlsProxy.Addr))
	cfg.Replicate = 1
	// Kill w1 three bytes into its fifth write (a mid-record tear) AND w2
	// at its seventh write boundary: with both the primary and the replica
	// vantage of some shards dead, convergence must come from re-dispatch
	// to the lone survivor.
	cfg.WrapJournal = func(worker string, gen int, ws checkpoint.WriteSyncer) checkpoint.WriteSyncer {
		if gen == 1 && worker == "w1" {
			return faultinject.NewKillWriter(ws, 4, 3, nil)
		}
		if gen == 1 && worker == "w2" {
			return faultinject.NewKillWriter(ws, 6, 0, nil)
		}
		return ws
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertFedConverged(t, "fixed-kill", fedCCs, want, res.Corpus)

	st := res.Stats
	if st.WorkerDeaths != 2 {
		t.Errorf("worker deaths = %d, want exactly the two injected kills", st.WorkerDeaths)
	}
	if st.Waves < 2 || st.Redispatches == 0 {
		t.Errorf("stats = %+v: a killed worker's shards must be re-dispatched in a later wave", st)
	}
	if res.Merge.Truncations == 0 {
		t.Error("no torn tail tolerated; the mid-record kill left one by construction")
	}
	// Dual-recording: the obs channel must agree exactly with Stats.
	checks := map[string]int64{
		"fedcrawl.waves":         st.Waves,
		"fedcrawl.dispatches":    st.Dispatches,
		"fedcrawl.redispatches":  st.Redispatches,
		"fedcrawl.replicas":      st.Replicas,
		"fedcrawl.worker_deaths": st.WorkerDeaths,
		"fedcrawl.stragglers":    st.Stragglers,
	}
	for name, wantN := range checks {
		if got := cfg.Obs.Counter(name).Value(); got != wantN {
			t.Errorf("%s = %d, coordinator accounting says %d", name, got, wantN)
		}
	}

	// Replication must have produced overlap, the deterministic world zero
	// disagreement — and an independent re-merge must reproduce both the
	// table and its obs counters exactly.
	if res.Disagreement.Overlap() == 0 {
		t.Error("Replicate=1 produced no overlapping probes")
	}
	if res.Disagreement.Disagree() != 0 {
		t.Errorf("deterministic world disagreed on %d keys", res.Disagreement.Disagree())
	}
	reg := obs.NewRegistry()
	again, err := Merge(dir, fedEpoch, fedCCs, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Disagreement, res.Disagreement) {
		t.Errorf("re-merge disagreement %+v differs from run's %+v", again.Disagreement, res.Disagreement)
	}
	for _, d := range again.Disagreement.PerCountry {
		if got := reg.Counter("fedcrawl.disagreement.overlap." + d.Country).Value(); got != int64(d.Overlap) {
			t.Errorf("%s: obs overlap = %d, table says %d", d.Country, got, d.Overlap)
		}
		if got := reg.Counter("fedcrawl.disagreement.differ." + d.Country).Value(); got != int64(d.Disagree) {
			t.Errorf("%s: obs differ = %d, table says %d", d.Country, got, d.Disagree)
		}
	}
	assertFedConverged(t, "re-merge", fedCCs, want, again.Corpus)
}

// TestFederatedResumesLeftoverDirectory proves the coordinator trusts only
// durable state: pointed at a directory whose journals already cover the
// whole work-list, it must merge without dispatching a single worker.
func TestFederatedResumesLeftoverDirectory(t *testing.T) {
	w, ep := fedWorld(t)
	want := baseline(t, w, ep, fedCCs)

	dir := t.TempDir()
	factory := lossyFactory(w, ep.DNSAddr, ep.TLSAddr)
	c, err := New(fedConfig(w, dir, 2, factory))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	cfg := fedConfig(w, dir, 2, func(worker string) *pipeline.Live {
		t.Errorf("resume dispatched worker %s over a complete directory", worker)
		return factory(worker)
	})
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Waves != 0 || res.Stats.Dispatches != 0 {
		t.Errorf("resume over a complete directory ran %+v", res.Stats)
	}
	assertFedConverged(t, "leftover-resume", fedCCs, want, res.Corpus)
}

// TestFederatedResumesPartialLeftoverDirectory is the harder resume case:
// a directory where only PART of the work-list has durable records — the
// shape a crashed coordinator leaves behind. The rebuilt coordinator must
// re-dispatch exactly the missing keys, and it must never reuse (and
// thereby truncate) a leftover journal's name: the surviving journal's
// completed records are durable state, not scratch space. The resumed run
// deliberately uses a worker count whose first-wave journal name would
// collide with the surviving journal under naive wave numbering.
func TestFederatedResumesPartialLeftoverDirectory(t *testing.T) {
	w, ep := fedWorld(t)
	want := baseline(t, w, ep, fedCCs)

	dir := t.TempDir()
	factory := lossyFactory(w, ep.DNSAddr, ep.TLSAddr)
	c, err := New(fedConfig(w, dir, 2, factory))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Simulate the crashed run: w1's journal is gone, w0's survives with
	// roughly half the work-list complete.
	if err := os.Remove(filepath.Join(dir, "w1-g1.journal")); err != nil {
		t.Fatal(err)
	}
	survivor := filepath.Join(dir, "w0-g1.journal")
	before, err := os.ReadFile(survivor)
	if err != nil {
		t.Fatal(err)
	}

	// Resume with ONE worker: every re-dispatched shard lands on w0, whose
	// generation-1 journal name is already taken by the survivor.
	c2, err := New(fedConfig(w, dir, 1, factory))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(survivor)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatalf("resume rewrote the surviving journal %s (%d -> %d bytes); completed durable records were destroyed",
			survivor, len(before), len(after))
	}
	// One wave re-crawls exactly the missing keys; a second wave would mean
	// the resume destroyed records scanMissing had counted as complete.
	if res.Stats.Waves != 1 {
		t.Errorf("resume over a half-complete directory ran %d waves, want 1 (stats %+v)", res.Stats.Waves, res.Stats)
	}
	if _, err := os.Stat(filepath.Join(dir, "w0-g2.journal")); err != nil {
		t.Errorf("resume wave did not journal under a fresh generation: %v", err)
	}
	assertFedConverged(t, "partial-resume", fedCCs, want, res.Corpus)
}

// TestFederatedJournalCreateFailureIsWorkerDeath: a worker that cannot
// even create its shard journal forfeits its assignment like any other
// dead worker — the run converges through re-dispatch to the survivors
// instead of failing outright.
func TestFederatedJournalCreateFailureIsWorkerDeath(t *testing.T) {
	w, ep := fedWorld(t)
	want := baseline(t, w, ep, fedCCs)

	orig := createShard
	createShard = func(path, epoch string, ccs []string, sh *checkpoint.ShardInfo, opts *checkpoint.Options) (*checkpoint.Journal, error) {
		if sh.Worker == "w1" {
			return nil, errors.New("injected journal-creation failure")
		}
		return orig(path, epoch, ccs, sh, opts)
	}
	defer func() { createShard = orig }()

	cfg := fedConfig(w, t.TempDir(), 2, lossyFactory(w, ep.DNSAddr, ep.TLSAddr))
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("a single worker's journal-creation failure failed the federation: %v", err)
	}
	assertFedConverged(t, "create-failure", fedCCs, want, res.Corpus)
	st := res.Stats
	if st.WorkerDeaths != 1 {
		t.Errorf("worker deaths = %d, want the one create-failed worker", st.WorkerDeaths)
	}
	if st.Waves < 2 || st.Redispatches == 0 {
		t.Errorf("stats = %+v: the dead worker's shards must be re-dispatched to the survivor", st)
	}
	if got := cfg.Obs.Counter("fedcrawl.worker_deaths").Value(); got != st.WorkerDeaths {
		t.Errorf("obs worker_deaths = %d, stats say %d", got, st.WorkerDeaths)
	}
}

// TestMergeRefusesAllHeaderlessJournals: a directory whose journals are
// all torn before their headers holds no campaign identity and no records;
// the CLI-mode merge (adopted header) must refuse it rather than export an
// empty corpus.
func TestMergeRefusesAllHeaderlessJournals(t *testing.T) {
	dir := t.TempDir()
	// A strict prefix of the magic is a torn first write — accepted by the
	// scanner, contributing nothing. An empty file is the same.
	if err := os.WriteFile(filepath.Join(dir, "w0-g1.journal"), []byte("WDEP"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "w1-g1.journal"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(dir, "", nil, obs.NewRegistry()); err == nil {
		t.Fatal("adopt-mode merge over header-less journals exported a corpus")
	} else if !strings.Contains(err.Error(), "header") {
		t.Fatalf("refusal does not name the missing headers: %v", err)
	}
	// With an explicit campaign identity the per-country completeness check
	// refuses the same directory.
	if _, err := Merge(dir, fedEpoch, fedCCs, obs.NewRegistry()); err == nil {
		t.Fatal("merge over header-less journals exported a corpus")
	}
}

// TestFederatedRefusesCorruptAndForeignJournals: both the coordinator's
// scan and the standalone merge must fail the WHOLE operation with a typed
// *checkpoint.CorruptError when the directory holds a mid-file-corrupt or
// foreign-epoch journal — never quietly crawl or merge around it.
func TestFederatedRefusesCorruptAndForeignJournals(t *testing.T) {
	w, ep := fedWorld(t)
	dir := t.TempDir()
	factory := lossyFactory(w, ep.DNSAddr, ep.TLSAddr)
	c, err := New(fedConfig(w, dir, 2, factory))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	journals, err := filepath.Glob(filepath.Join(dir, "*.journal"))
	if err != nil || len(journals) == 0 {
		t.Fatalf("no journals after a completed federation (%v)", err)
	}

	// Foreign epoch first: plant a journal from another campaign.
	foreign := filepath.Join(dir, "zz-foreign.journal")
	fj, err := checkpoint.Create(foreign, "2099-01", fedCCs, &checkpoint.Options{Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	fj.Close()
	var ce *checkpoint.CorruptError
	if _, err := Merge(dir, fedEpoch, fedCCs, obs.NewRegistry()); !errors.As(err, &ce) {
		t.Fatalf("merge over a foreign journal returned %T (%v), want *CorruptError", err, err)
	}
	c2, err := New(fedConfig(w, dir, 2, factory))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(context.Background()); !errors.As(err, &ce) {
		t.Fatalf("coordinator over a foreign journal returned %T (%v), want *CorruptError", err, err)
	}
	if err := os.Remove(foreign); err != nil {
		t.Fatal(err)
	}

	// Then mid-file corruption: flip a byte in the middle of a real shard
	// journal.
	data, err := os.ReadFile(journals[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(journals[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(dir, fedEpoch, fedCCs, obs.NewRegistry()); !errors.As(err, &ce) {
		t.Fatalf("merge over a corrupt journal returned %T (%v), want *CorruptError", err, err)
	} else if ce.Offset <= 0 {
		t.Errorf("corrupt refusal offset = %d, want a real byte offset", ce.Offset)
	}
	c3, err := New(fedConfig(w, dir, 2, factory))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Run(context.Background()); !errors.As(err, &ce) {
		t.Fatalf("coordinator over a corrupt journal returned %T (%v), want *CorruptError", err, err)
	}
}

// TestFederatedBudgetExhaustion: with every probe path dead, re-dispatch
// must stop at the per-shard retry budget with an honest error instead of
// looping forever.
func TestFederatedBudgetExhaustion(t *testing.T) {
	w, err := worldgen.Build(worldgen.Config{
		Seed:               11,
		SitesPerCountry:    2,
		Countries:          []string{"TH", "CZ"},
		DomesticPerCountry: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Epoch:     fedEpoch,
		Countries: []string{"TH", "CZ"},
		DomainsOf: func(cc string) []string { return w.Truth.Get(cc).Domains() },
		Workers:   1,
		Dir:       t.TempDir(),
		NewLive: func(worker string) *pipeline.Live {
			// Both probe paths point at a dead port: every field of every
			// probe is transiently lost, so no key ever completes.
			dns := resolver.NewClient("127.0.0.1:1")
			dns.Timeout = 10 * time.Millisecond
			return &pipeline.Live{
				Pipeline: pipeline.FromWorld(w),
				DNS:      dns,
				Scanner:  tlsscan.New(w.Owners),
				TLSAddr:  "127.0.0.1:1",
				Workers:  2,
			}
		},
		ShardRetries: 2,
		Obs:          obs.NewRegistry(),
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background())
	if err == nil {
		t.Fatal("run converged with every probe path dead")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("exhaustion error does not name the budget: %v", err)
	}
	st := c.Stats()
	// Waves 1–3 dispatch (one free + two paid per shard); wave 4 aborts on
	// the first over-budget shard.
	if st.Waves != 4 || st.Redispatches != 4 {
		t.Errorf("stats = %+v, want 4 waves and 2 shards × 2 paid re-dispatches", st)
	}
	if got := cfg.Obs.Counter("fedcrawl.redispatches").Value(); got != st.Redispatches {
		t.Errorf("obs redispatches = %d, stats say %d", got, st.Redispatches)
	}
}

// slowWriter delays every journal write — a worker that is alive but too
// slow for the wave deadline.
type slowWriter struct {
	checkpoint.WriteSyncer
	delay time.Duration
}

func (s *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.WriteSyncer.Write(p)
}

// TestFederatedStragglerRedispatch: a worker that stalls past the wave's
// soft deadline is cancelled — NOT declared dead — and its unfinished keys
// converge through re-dispatch.
func TestFederatedStragglerRedispatch(t *testing.T) {
	w, err := worldgen.Build(worldgen.Config{
		Seed:               13,
		SitesPerCountry:    2,
		Countries:          []string{"TH", "CZ"},
		DomesticPerCountry: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := liveworld.Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ccs := []string{"TH", "CZ"}

	live := &pipeline.Live{
		Pipeline:       pipeline.FromWorld(w),
		DNS:            resolver.NewClient(ep.DNSAddr),
		Scanner:        tlsscan.New(w.Owners),
		TLSAddr:        ep.TLSAddr,
		Workers:        8,
		DetectLanguage: true,
	}
	want, err := live.CrawlCorpus(context.Background(), fedEpoch, ccs,
		func(cc string) []string { return w.Truth.Get(cc).Domains() }, nil)
	if err != nil {
		t.Fatal(err)
	}

	factory := func(worker string) *pipeline.Live {
		dns := resolver.NewClient(ep.DNSAddr)
		dns.Timeout = 100 * time.Millisecond
		return &pipeline.Live{
			Pipeline:       pipeline.FromWorld(w),
			DNS:            dns,
			Scanner:        tlsscan.New(w.Owners),
			TLSAddr:        ep.TLSAddr,
			Workers:        2,
			DetectLanguage: true,
		}
	}
	cfg := Config{
		Epoch:          fedEpoch,
		Countries:      ccs,
		DomainsOf:      func(cc string) []string { return w.Truth.Get(cc).Domains() },
		Workers:        2,
		Dir:            t.TempDir(),
		NewLive:        factory,
		StragglerAfter: 400 * time.Millisecond,
		WrapJournal: func(worker string, gen int, ws checkpoint.WriteSyncer) checkpoint.WriteSyncer {
			if worker == "w1" && gen == 1 {
				return &slowWriter{WriteSyncer: ws, delay: 300 * time.Millisecond}
			}
			return ws
		},
		Obs: obs.NewRegistry(),
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertFedConverged(t, "straggler", ccs, want, res.Corpus)
	st := res.Stats
	if st.Stragglers == 0 {
		t.Error("no straggler wave detected despite the stalled worker")
	}
	if st.WorkerDeaths != 0 {
		t.Errorf("straggling declared %d workers dead; slowness is not death", st.WorkerDeaths)
	}
	if st.Redispatches == 0 {
		t.Error("straggler's keys were never re-dispatched")
	}
	if got := cfg.Obs.Counter("fedcrawl.stragglers").Value(); got != st.Stragglers {
		t.Errorf("obs stragglers = %d, stats say %d", got, st.Stragglers)
	}
}

// TestPartitionDeterministicAndRankPreserving pins the partition contract:
// pure, contiguous, near-balanced, global ranks intact.
func TestPartitionDeterministicAndRankPreserving(t *testing.T) {
	domains := map[string][]string{
		"TH": {"a.th", "b.th", "c.th", "d.th", "e.th"},
		"CZ": {"a.cz", "b.cz"},
		"US": {},
	}
	of := func(cc string) []string { return domains[cc] }
	a := Partition([]string{"TH", "CZ", "US"}, of, 3)
	b := Partition([]string{"TH", "CZ", "US"}, of, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("partition is not deterministic")
	}
	// TH: 3 shards (2,2,1); CZ: 2 shards (1,1); US: none.
	if len(a) != 5 {
		t.Fatalf("got %d shards, want 5: %+v", len(a), a)
	}
	next := map[string]int{}
	for i, sh := range a {
		if sh.ID != i {
			t.Errorf("shard %d carries ID %d", i, sh.ID)
		}
		if len(sh.Jobs) == 0 {
			t.Errorf("shard %d is empty", i)
		}
		for _, job := range sh.Jobs {
			if job.Country != sh.Country {
				t.Errorf("shard %d (%s) holds a job for %s", i, sh.Country, job.Country)
			}
			if job.Rank != next[sh.Country]+1 {
				t.Errorf("%s: rank %d out of order (want %d)", job.Domain, job.Rank, next[sh.Country]+1)
			}
			next[sh.Country] = job.Rank
			if domains[sh.Country][job.Rank-1] != job.Domain {
				t.Errorf("%s: rank %d is not its global rank", job.Domain, job.Rank)
			}
		}
	}
	if next["TH"] != 5 || next["CZ"] != 2 {
		t.Errorf("partition dropped domains: covered %+v", next)
	}
	// More workers than domains must not produce empty shards.
	for _, sh := range Partition([]string{"CZ"}, of, 16) {
		if len(sh.Jobs) != 1 {
			t.Errorf("oversharded partition produced shard with %d jobs", len(sh.Jobs))
		}
	}
}

// TestMergeDisagreementCounting feeds the merge two hand-written vantages
// that disagree on one key's hosting measurement and checks every channel:
// the table, its per-field counts, the rate, and the obs counters.
func TestMergeDisagreementCounting(t *testing.T) {
	dir := t.TempDir()
	ccs := []string{"TH"}
	site := func(host string) dataset.Website {
		return dataset.Website{
			Domain: "a.th", Country: "TH", Rank: 1,
			HostProvider: host, DNSProvider: "dns-x", CAOwner: "ca-x", TLD: "th",
		}
	}
	ok := dataset.SiteOutcome{Host: dataset.StatusOK, NS: dataset.StatusOK, CA: dataset.StatusOK, Language: dataset.StatusOK}

	for i, host := range []string{"host-a", "host-b"} {
		sh := &checkpoint.ShardInfo{Worker: "w" + itoa(i), Index: i, Total: 2, Gen: 1}
		j, err := checkpoint.CreateShard(filepath.Join(dir, "w"+itoa(i)+"-g1.journal"), fedEpoch, ccs, sh,
			&checkpoint.Options{Obs: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		j.Append("TH", site(host), ok)
		j.Close()
	}

	reg := obs.NewRegistry()
	res, err := Merge(dir, fedEpoch, ccs, reg)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Disagreement.Of("TH")
	if d == nil {
		t.Fatal("no disagreement row for TH")
	}
	if d.Keys != 1 || d.Overlap != 1 || d.Disagree != 1 {
		t.Errorf("row = %+v, want 1 key / 1 overlap / 1 disagreement", d)
	}
	if d.Diffs.Host != 1 || d.Diffs.DNS != 0 || d.Diffs.CA != 0 || d.Diffs.Language != 0 {
		t.Errorf("field diffs = %+v, want the hosting field only", d.Diffs)
	}
	if d.Rate() != 1 {
		t.Errorf("rate = %v, want 1", d.Rate())
	}
	if got := reg.Counter("fedcrawl.disagreement.overlap.TH").Value(); got != 1 {
		t.Errorf("obs overlap = %d, want 1", got)
	}
	if got := reg.Counter("fedcrawl.disagreement.differ.TH").Value(); got != 1 {
		t.Errorf("obs differ = %d, want 1", got)
	}
	// The winner is deterministic: fewest lost fields tie → worker name
	// breaks it.
	if got := res.Corpus.Get("TH").Sites[0].HostProvider; got != "host-a" {
		t.Errorf("winner host = %q, want the deterministic tie-break", got)
	}
}
