// Package fedcrawl coordinates a federated multi-vantage crawl: the
// (country, domain) work-list is deterministically partitioned into
// contiguous rank shards, each shard is dispatched to one of N workers, and
// every worker journals its slice into its own CRC-framed checkpoint shard
// journal. The coordinator trusts only durable state — between waves it
// re-reads every journal in the directory and re-dispatches exactly the
// keys with no complete record, so a worker killed at ANY journal offset
// (whole-record or mid-record) simply forfeits its unwritten tail to the
// survivors. When nothing is missing, the journals merge into a single
// corpus that is byte-identical to an unsharded fault-free crawl, along
// with per-country cross-vantage disagreement accounting for keys probed
// by more than one worker.
package fedcrawl

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/resilience"
)

// Shard is one contiguous slice of one country's ranked domain list — the
// unit of dispatch, re-dispatch, and retry accounting.
type Shard struct {
	ID      int
	Country string
	Jobs    []pipeline.SiteJob
}

// Partition splits each country's ranked domain list into at most n
// contiguous shards of near-equal size, preserving global ranks. The
// partition is a pure function of its inputs: every coordinator (or a
// rebuilt one resuming a half-finished directory) derives the identical
// work-list, which is what makes re-dispatch after failure safe.
func Partition(ccs []string, domainsOf func(cc string) []string, n int) []Shard {
	if n < 1 {
		n = 1
	}
	var shards []Shard
	for _, cc := range ccs {
		domains := domainsOf(cc)
		chunks := n
		if len(domains) < chunks {
			chunks = len(domains)
		}
		if chunks == 0 {
			continue
		}
		base, rem := len(domains)/chunks, len(domains)%chunks
		start := 0
		for i := 0; i < chunks; i++ {
			size := base
			if i < rem {
				size++
			}
			jobs := make([]pipeline.SiteJob, 0, size)
			for j := start; j < start+size; j++ {
				jobs = append(jobs, pipeline.SiteJob{Country: cc, Domain: domains[j], Rank: j + 1})
			}
			shards = append(shards, Shard{ID: len(shards), Country: cc, Jobs: jobs})
			start += size
		}
	}
	return shards
}

// Config wires a federated crawl.
type Config struct {
	Epoch     string
	Countries []string
	// DomainsOf returns a country's ranked domain list; rank is position+1.
	DomainsOf func(cc string) []string
	// Workers is the federation width: the number of independent crawl
	// workers, each with its own journal per wave.
	Workers int
	// Dir is the journal directory. The coordinator scans it before every
	// wave, so a directory left behind by a dead coordinator resumes: only
	// the keys without a complete durable record are re-dispatched.
	Dir string
	// NewLive builds a worker's crawler. Called once per (worker, wave);
	// the coordinator installs the worker's shard journal as its
	// checkpoint. Required unless Dispatch is set.
	NewLive func(worker string) *pipeline.Live
	// Dispatch, when non-nil, replaces in-process crawling entirely: the
	// coordinator hands each wave assignment to it — typically a transport
	// client that ships the jobs to a remote vantage and admits the
	// returned journal artifact into Dir — instead of running NewLive
	// itself. The contract mirrors runWorker's: return nil once the
	// worker's journal for (worker, gen) is durably in Dir (the next scan
	// judges completeness from the file, never from the return value); an
	// error wrapping ErrWorkerDead to declare the worker permanently dead
	// (its keys re-dispatch to survivors); the context's error when the
	// wave was cancelled out from under it; any other error fails the
	// federation.
	Dispatch func(ctx context.Context, worker string, gen int, jobs []pipeline.SiteJob) error
	// WrapJournal, when non-nil, wraps each worker journal's writer — the
	// fault-injection seam (e.g. faultinject.KillWriter kills one worker
	// at an exact journal byte). Production leaves it nil.
	WrapJournal func(worker string, gen int, ws checkpoint.WriteSyncer) checkpoint.WriteSyncer
	// ShardRetries bounds how many times one shard may be RE-dispatched
	// after its first dispatch (covering worker deaths, stragglers, and
	// residual transient loss). 0 means the default of 3; negative means
	// no retries.
	ShardRetries int
	// StragglerAfter, when positive, is each wave's soft deadline: a wave
	// still running after it is cancelled and its unfinished keys are
	// re-dispatched in the next wave. Zero disables straggler detection.
	StragglerAfter time.Duration
	// Replicate dispatches each shard's FIRST wave to this many additional
	// distinct workers. The duplicate probes are pure overhead for the
	// corpus (the merge keeps one winner per key) but give every key a
	// cross-vantage disagreement measurement.
	Replicate int
	// Obs selects the metrics registry; nil means obs.Default().
	Obs *obs.Registry
}

func (c *Config) retries() int {
	switch {
	case c.ShardRetries == 0:
		return 3
	case c.ShardRetries < 0:
		return 0
	}
	return c.ShardRetries
}

func (c *Config) reg() *obs.Registry {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.Default()
}

// Stats is the coordinator's accounting. Every field is dual-recorded as a
// fedcrawl.* counter in the registry.
type Stats struct {
	// Waves counts dispatch rounds that sent at least one shard to a
	// worker.
	Waves int64
	// Dispatches counts shard dispatches, including re-dispatches but not
	// replicas.
	Dispatches int64
	// Redispatches counts dispatches after a shard's first, each paid for
	// from the shard's retry budget.
	Redispatches int64
	// Replicas counts extra cross-vantage dispatches made for disagreement
	// measurement.
	Replicas int64
	// WorkerDeaths counts workers whose journal disarmed mid-crawl; a dead
	// worker receives no further dispatches.
	WorkerDeaths int64
	// Stragglers counts waves in which the StragglerAfter deadline actually
	// cancelled unfinished work (a deadline that fires after every worker
	// already returned cancels nothing and is not a straggler).
	Stragglers int64
}

type fedMetrics struct {
	waves, dispatches, redispatches, replicas, deaths, stragglers *obs.Counter
}

func newFedMetrics(reg *obs.Registry) *fedMetrics {
	return &fedMetrics{
		waves:        reg.Counter("fedcrawl.waves"),
		dispatches:   reg.Counter("fedcrawl.dispatches"),
		redispatches: reg.Counter("fedcrawl.redispatches"),
		replicas:     reg.Counter("fedcrawl.replicas"),
		deaths:       reg.Counter("fedcrawl.worker_deaths"),
		stragglers:   reg.Counter("fedcrawl.stragglers"),
	}
}

// Result is a completed federated crawl.
type Result struct {
	Corpus       *dataset.Corpus
	Disagreement Disagreement
	// Merge is the final merge's accounting (journals folded, refusals —
	// zero on a healthy run — and torn tails tolerated).
	Merge checkpoint.Stats
	// Journals lists the shard journals the final merge folded, sorted.
	Journals []string
	Stats    Stats
}

// Coordinator runs one federated crawl to completion.
type Coordinator struct {
	cfg     Config
	shards  []Shard
	budgets []*resilience.Budget
	workers []string
	index   map[string]int
	m       *fedMetrics

	mu         sync.Mutex
	dead       map[string]bool
	dispatched map[int]int

	stats struct {
		waves, dispatches, redispatches atomic.Int64
		replicas, deaths, stragglers    atomic.Int64
	}
}

// New validates the config and derives the deterministic shard partition.
func New(cfg Config) (*Coordinator, error) {
	switch {
	case cfg.Epoch == "":
		return nil, fmt.Errorf("fedcrawl: config needs an epoch")
	case len(cfg.Countries) == 0:
		return nil, fmt.Errorf("fedcrawl: config needs a country set")
	case cfg.DomainsOf == nil:
		return nil, fmt.Errorf("fedcrawl: config needs a domain source")
	case cfg.Workers < 1:
		return nil, fmt.Errorf("fedcrawl: config needs at least one worker, got %d", cfg.Workers)
	case cfg.Dir == "":
		return nil, fmt.Errorf("fedcrawl: config needs a journal directory")
	case cfg.NewLive == nil && cfg.Dispatch == nil:
		return nil, fmt.Errorf("fedcrawl: config needs a Live factory or a Dispatch transport")
	case cfg.Replicate < 0:
		return nil, fmt.Errorf("fedcrawl: negative replication %d", cfg.Replicate)
	}
	c := &Coordinator{
		cfg:        cfg,
		shards:     Partition(cfg.Countries, cfg.DomainsOf, cfg.Workers),
		m:          newFedMetrics(cfg.reg()),
		index:      map[string]int{},
		dead:       map[string]bool{},
		dispatched: map[int]int{},
	}
	for range c.shards {
		c.budgets = append(c.budgets, resilience.NewBudget(cfg.retries()))
	}
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("w%d", i)
		c.workers = append(c.workers, name)
		c.index[name] = i
	}
	return c, nil
}

// Stats snapshots the coordinator's accounting.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Waves:        c.stats.waves.Load(),
		Dispatches:   c.stats.dispatches.Load(),
		Redispatches: c.stats.redispatches.Load(),
		Replicas:     c.stats.replicas.Load(),
		WorkerDeaths: c.stats.deaths.Load(),
		Stragglers:   c.stats.stragglers.Load(),
	}
}

// Run drives waves of dispatch until every key in the work-list has a
// complete durable record, then merges the shard journals into the final
// corpus. Completion is judged only from what the journals hold on disk —
// never from in-memory results — so the run converges across worker
// deaths, torn journal tails, straggler cancellations, and even a prior
// coordinator's leftover directory.
func (c *Coordinator) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		missing, maxGen, err := c.scanMissing()
		if err != nil {
			return nil, err
		}
		if len(missing) == 0 {
			break
		}
		c.stats.waves.Add(1)
		c.m.waves.Inc()
		// The wave's journal generation comes from the directory, not from a
		// loop counter: one past the highest generation already durable. A
		// rebuilt coordinator resuming a half-finished directory therefore
		// never reuses a crashed run's journal names — reusing one would
		// truncate records scanMissing just counted as complete.
		if err := c.runWave(ctx, maxGen+1, missing); err != nil {
			return nil, err
		}
	}
	mr, err := Merge(c.cfg.Dir, c.cfg.Epoch, c.cfg.Countries, c.cfg.Obs)
	if err != nil {
		return nil, err
	}
	return &Result{
		Corpus:       mr.Corpus,
		Disagreement: mr.Disagreement,
		Merge:        mr.Stats,
		Journals:     mr.Journals,
		Stats:        c.Stats(),
	}, nil
}

// scanMissing folds every journal currently in the directory (a private
// registry keeps repeated scans from inflating the user-visible merge
// counters) and returns, per shard, the jobs with no complete — non-lost —
// durable record, plus the highest journal generation present. The
// generation is taken from both shard headers and file names, so even a
// journal torn before its header survived (which holds no durable records
// but still occupies its name) pushes the next wave past it. A
// mid-file-corrupt or foreign journal in the directory fails the scan: the
// coordinator must not quietly crawl around evidence of corruption.
func (c *Coordinator) scanMissing() (map[int][]pipeline.SiteJob, int, error) {
	g := checkpoint.NewMerger(c.cfg.Epoch, c.cfg.Countries, &checkpoint.Options{Obs: obs.NewRegistry()})
	paths, err := filepath.Glob(filepath.Join(c.cfg.Dir, "*.journal"))
	if err != nil {
		return nil, 0, fmt.Errorf("fedcrawl: scanning %s: %w", c.cfg.Dir, err)
	}
	sort.Strings(paths)
	maxGen := 0
	for _, p := range paths {
		if n := genFromName(p); n > maxGen {
			maxGen = n
		}
		info, err := g.ReadJournal(p)
		if err != nil {
			return nil, 0, err
		}
		if info.Shard != nil && info.Shard.Gen > maxGen && info.Shard.Gen <= maxJournalGen {
			// Header generations get the same bound as file names: a forged
			// or insane Gen must not poison every future wave's numbering.
			maxGen = info.Shard.Gen
		}
	}
	complete := map[checkpoint.Key]bool{}
	for k, list := range g.Entries() {
		for _, e := range list {
			if !e.Entry.Outcome.Lost() {
				complete[k] = true
				break
			}
		}
	}
	missing := map[int][]pipeline.SiteJob{}
	for _, sh := range c.shards {
		for _, job := range sh.Jobs {
			if !complete[checkpoint.Key{Country: job.Country, Domain: job.Domain}] {
				missing[sh.ID] = append(missing[sh.ID], job)
			}
		}
	}
	return missing, maxGen, nil
}

// maxJournalGen bounds the generations the coordinator will believe, from
// file names and shard headers alike. Remote artifacts land in the journal
// directory, so both channels are attacker-adjacent: a hostile name like
// "w0-g9223372036854775807.journal" must not drive maxGen+1 into overflow
// (or into a range where every future wave's names are absurd).
const maxJournalGen = 1_000_000_000

// genFromName extracts the generation from a coordinator-named shard
// journal ("<worker>-g<gen>.journal"); 0 when the name carries none or the
// suffix is not a plain bounded decimal. Parsing is deliberately stricter
// than strconv.Atoi: digits only (no sign, no spaces), at most nine of
// them, so hostile filenames are ignored rather than misparsed.
func genFromName(path string) int {
	base := strings.TrimSuffix(filepath.Base(path), ".journal")
	i := strings.LastIndex(base, "-g")
	if i < 0 {
		return 0
	}
	s := base[i+2:]
	// Nine digits keeps the value at most 999,999,999 — within
	// maxJournalGen and nowhere near integer overflow.
	if len(s) == 0 || len(s) > 9 {
		return 0
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// alive returns the workers still eligible for dispatch, in index order.
func (c *Coordinator) alive() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, w := range c.workers {
		if !c.dead[w] {
			out = append(out, w)
		}
	}
	return out
}

// killWorker marks a worker dead after its journal disarmed. Death is
// permanent: a worker that tore its journal mid-write gets no more shards.
func (c *Coordinator) killWorker(name string) {
	c.mu.Lock()
	already := c.dead[name]
	c.dead[name] = true
	c.mu.Unlock()
	if !already {
		c.stats.deaths.Add(1)
		c.m.deaths.Inc()
	}
}

// runWave assigns every still-missing shard across the surviving workers
// and runs them concurrently, each worker journaling into a fresh shard
// journal stamped with gen — a generation strictly newer than every
// journal already in the directory.
func (c *Coordinator) runWave(ctx context.Context, gen int, missing map[int][]pipeline.SiteJob) error {
	alive := c.alive()
	if len(alive) == 0 {
		return fmt.Errorf("fedcrawl: all %d workers dead with %d shards outstanding", c.cfg.Workers, len(missing))
	}
	ids := make([]int, 0, len(missing))
	for id := range missing {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	assign := map[string][]pipeline.SiteJob{}
	for _, id := range ids {
		if c.dispatched[id] > 0 {
			if !c.budgets[id].Take() {
				return fmt.Errorf("fedcrawl: shard %d (%s) exhausted its re-dispatch budget of %d with %d keys still incomplete",
					id, c.shards[id].Country, c.cfg.retries(), len(missing[id]))
			}
			c.stats.redispatches.Add(1)
			c.m.redispatches.Inc()
		}
		first := c.dispatched[id] == 0
		c.dispatched[id]++
		primary := alive[id%len(alive)]
		assign[primary] = append(assign[primary], missing[id]...)
		c.stats.dispatches.Add(1)
		c.m.dispatches.Inc()
		if first {
			// Replicas ride only on a shard's first dispatch: re-dispatch
			// exists to win keys back, not to multiply load.
			for r := 1; r <= c.cfg.Replicate && r < len(alive); r++ {
				rep := alive[(id+r)%len(alive)]
				assign[rep] = append(assign[rep], missing[id]...)
				c.stats.replicas.Add(1)
				c.m.replicas.Inc()
			}
		}
	}

	waveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var timedOut atomic.Bool
	if c.cfg.StragglerAfter > 0 {
		timer := time.AfterFunc(c.cfg.StragglerAfter, func() {
			timedOut.Store(true)
			cancel()
		})
		defer timer.Stop()
	}

	names := make([]string, 0, len(assign))
	for w := range assign {
		names = append(names, w)
	}
	sort.Strings(names)
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	interrupted := make([]bool, len(names))
	for i, w := range names {
		wg.Add(1)
		go func(i int, worker string) {
			defer wg.Done()
			interrupted[i], errs[i] = c.runWorker(waveCtx, worker, gen, assign[worker])
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	cancelledWork := false
	for _, b := range interrupted {
		if b {
			cancelledWork = true
			break
		}
	}
	if timedOut.Load() && cancelledWork && ctx.Err() == nil {
		// The soft deadline fired while a worker still had jobs in flight:
		// whatever the cancelled workers left unfinished is simply still
		// missing at the next scan. A timer that fires in the window after
		// every worker already returned cancelled nothing and counts no
		// straggler.
		c.stats.stragglers.Add(1)
		c.m.stragglers.Inc()
	}
	return ctx.Err()
}

// createShard is the journal-creation seam; tests swap it to inject
// creation failures.
var createShard = checkpoint.CreateShard

// ErrWorkerDead is the sentinel a Dispatch transport wraps to declare a
// remote worker permanently dead — retries exhausted, circuit open, or a
// forged/disarmed artifact. The coordinator treats it exactly like a
// journal disarm: the worker is killed and its assignment forfeits to the
// survivors, never failing the federation outright.
var ErrWorkerDead = errors.New("fedcrawl: worker dead")

// runWorker crawls one worker's wave assignment into a fresh shard
// journal. A journal disarm — a torn write, a dead disk, an injected
// kill — marks the worker dead and cancels its crawl, exactly as if the
// worker process had been killed; whatever it journaled before the tear
// stays durable for the merge. A worker that cannot even create its
// journal dies the same way: it forfeits the wave's assignment to the
// survivors instead of failing the whole federation. The returned
// interrupted flag reports that the crawl was cut short by wave-level
// cancellation (the straggler deadline or the caller), as opposed to
// finishing or dying on its own.
func (c *Coordinator) runWorker(ctx context.Context, worker string, gen int, jobs []pipeline.SiteJob) (interrupted bool, err error) {
	if c.cfg.Dispatch != nil {
		return c.dispatchRemote(ctx, worker, gen, jobs)
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	opts := &checkpoint.Options{
		Obs: c.cfg.reg(),
		OnDisarm: func(error) {
			c.killWorker(worker)
			cancel()
		},
	}
	if c.cfg.WrapJournal != nil {
		opts.WrapWriter = func(ws checkpoint.WriteSyncer) checkpoint.WriteSyncer {
			return c.cfg.WrapJournal(worker, gen, ws)
		}
	}
	path := filepath.Join(c.cfg.Dir, fmt.Sprintf("%s-g%d.journal", worker, gen))
	sh := &checkpoint.ShardInfo{Worker: worker, Index: c.index[worker], Total: c.cfg.Workers, Gen: gen}
	j, err := createShard(path, c.cfg.Epoch, c.cfg.Countries, sh, opts)
	if err != nil {
		c.killWorker(worker)
		return false, nil
	}
	defer j.Close()
	live := c.cfg.NewLive(worker)
	if live.Obs == nil {
		live.Obs = c.cfg.reg()
	}
	live.Checkpoint = j
	_, _, err = live.CrawlJobs(wctx, c.cfg.Epoch, c.cfg.Countries, jobs)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// ctx here is the wave context: its cancellation (not a disarm's
		// worker-local cancel) is what distinguishes an interrupted wave
		// from a worker dying mid-crawl.
		return ctx.Err() != nil, nil
	}
	if err != nil {
		return false, fmt.Errorf("fedcrawl: worker %s: %w", worker, err)
	}
	return false, nil
}

// dispatchRemote hands one worker's wave assignment to the transport. The
// outcome mapping mirrors the in-process path exactly: a nil return means
// the worker's journal landed durably in Dir (the next scan verifies that
// independently); ErrWorkerDead is this transport's journal disarm —
// permanent death, assignment forfeited to the survivors; a context error
// is wave cancellation (straggler deadline or caller), where a detached
// transport delivery may still admit the artifact later; anything else
// fails the federation, because the transport saw evidence it could
// neither retry nor attribute to one worker.
func (c *Coordinator) dispatchRemote(ctx context.Context, worker string, gen int, jobs []pipeline.SiteJob) (interrupted bool, err error) {
	err = c.cfg.Dispatch(ctx, worker, gen, jobs)
	switch {
	case err == nil:
		return false, nil
	case errors.Is(err, ErrWorkerDead):
		c.killWorker(worker)
		return false, nil
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ctx.Err() != nil, nil
	}
	return false, fmt.Errorf("fedcrawl: worker %s: %w", worker, err)
}
