package fedcrawl

import (
	"fmt"
	"testing"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// BenchmarkPartition measures deriving the deterministic shard work-list
// for a 50-country, 1000-domain-per-country campaign over 16 workers.
func BenchmarkPartition(b *testing.B) {
	var ccs []string
	domains := map[string][]string{}
	for i := 0; i < 50; i++ {
		cc := fmt.Sprintf("C%02d", i)
		ccs = append(ccs, cc)
		var ds []string
		for j := 0; j < 1000; j++ {
			ds = append(ds, fmt.Sprintf("site-%04d.%s", j, cc))
		}
		domains[cc] = ds
	}
	of := func(cc string) []string { return domains[cc] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if shards := Partition(ccs, of, 16); len(shards) == 0 {
			b.Fatal("empty partition")
		}
	}
}

// BenchmarkMerge measures folding eight shard journals of 250 sites each
// back into a corpus, the federated crawl's fan-in step.
func BenchmarkMerge(b *testing.B) {
	dir := b.TempDir()
	ccs := []string{"TH"}
	const workers, perWorker = 8, 250
	for wi := 0; wi < workers; wi++ {
		sh := &checkpoint.ShardInfo{Worker: fmt.Sprintf("w%d", wi), Index: wi, Total: workers, Gen: 1}
		j, err := checkpoint.CreateShard(fmt.Sprintf("%s/w%d-g1.journal", dir, wi), "2023-05", ccs, sh,
			&checkpoint.Options{Obs: obs.NewRegistry()})
		if err != nil {
			b.Fatal(err)
		}
		for si := 0; si < perWorker; si++ {
			rank := wi*perWorker + si + 1
			j.Append("TH", dataset.Website{
				Domain: fmt.Sprintf("site-%04d.th", rank), Country: "TH", Rank: rank,
				HostProvider: "host-x", DNSProvider: "dns-x", CAOwner: "ca-x", TLD: "th",
			}, dataset.SiteOutcome{
				Host: dataset.StatusOK, NS: dataset.StatusOK,
				CA: dataset.StatusOK, Language: dataset.StatusOK,
			})
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Merge(dir, "2023-05", ccs, obs.NewRegistry())
		if err != nil {
			b.Fatal(err)
		}
		if res.Corpus.TotalSites() != workers*perWorker {
			b.Fatalf("merged %d sites", res.Corpus.TotalSites())
		}
	}
}
