package fedcrawl

import (
	"fmt"
	"path/filepath"
	"sort"

	"github.com/webdep/webdep/internal/checkpoint"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// FieldDiffs counts, per probe field group, the overlap keys whose
// complete measurements differed between vantages.
type FieldDiffs struct {
	Host, DNS, CA, Language int
}

// CountryDisagreement is one country's cross-vantage agreement accounting.
type CountryDisagreement struct {
	Country string
	// Keys is the number of merged sites for the country.
	Keys int
	// Overlap counts keys probed by at least two distinct workers.
	Overlap int
	// Disagree counts overlap keys where any field group measured by two
	// vantages came back different.
	Disagree int
	Diffs    FieldDiffs
}

// Rate is the country's disagreement rate over its overlapping probes;
// zero when nothing overlapped.
func (d CountryDisagreement) Rate() float64 {
	if d.Overlap == 0 {
		return 0
	}
	return float64(d.Disagree) / float64(d.Overlap)
}

// Disagreement is the per-country cross-vantage accounting of one merge.
type Disagreement struct {
	PerCountry []CountryDisagreement // sorted by country
}

// Of returns one country's row, or nil.
func (d *Disagreement) Of(cc string) *CountryDisagreement {
	for i := range d.PerCountry {
		if d.PerCountry[i].Country == cc {
			return &d.PerCountry[i]
		}
	}
	return nil
}

// Overlap and Disagree total the per-country rows.
func (d *Disagreement) Overlap() int {
	n := 0
	for _, c := range d.PerCountry {
		n += c.Overlap
	}
	return n
}

func (d *Disagreement) Disagree() int {
	n := 0
	for _, c := range d.PerCountry {
		n += c.Disagree
	}
	return n
}

// MergeResult is a reassembled corpus plus the merge's accounting.
type MergeResult struct {
	Corpus       *dataset.Corpus
	Disagreement Disagreement
	Stats        checkpoint.Stats
	// Journals lists the folded journal paths, sorted.
	Journals []string
}

// Merge folds every *.journal under dir into one corpus. With a non-empty
// epoch the merge validates every journal against that campaign identity;
// an empty epoch adopts the first journal's header (the CLI merge mode,
// where the campaign identity lives only in the journals). Any foreign or
// mid-file-corrupt journal fails the whole merge with a typed
// *checkpoint.CorruptError — a merge that skipped a shard would be a
// silently partial corpus. Torn journal tails (workers killed mid-append)
// are tolerated exactly as Resume tolerates them.
//
// Per key the winner is the entry with the fewest lost fields, ties broken
// deterministically (newest generation, then worker, then path), so the
// merged corpus is a pure function of the journal set. Keys probed by two
// or more distinct workers feed the disagreement accounting, which is also
// surfaced through the registry as fedcrawl.disagreement.* counters.
func Merge(dir, epoch string, ccs []string, reg *obs.Registry) (*MergeResult, error) {
	if reg == nil {
		reg = obs.Default()
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.journal"))
	if err != nil {
		return nil, fmt.Errorf("fedcrawl: scanning %s: %w", dir, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("fedcrawl: no journals under %s", dir)
	}
	sort.Strings(paths)
	g := checkpoint.NewMerger(epoch, ccs, &checkpoint.Options{Obs: reg})
	for _, p := range paths {
		if _, err := g.ReadJournal(p); err != nil {
			return nil, err
		}
	}

	type row struct {
		site    dataset.Website
		outcome dataset.SiteOutcome
	}
	perCC := map[string][]row{}
	disagree := map[string]*CountryDisagreement{}
	for k, list := range g.Entries() {
		w := winner(list)
		perCC[k.Country] = append(perCC[k.Country], row{w.Entry.Site, w.Entry.Outcome})
		d := disagree[k.Country]
		if d == nil {
			d = &CountryDisagreement{Country: k.Country}
			disagree[k.Country] = d
		}
		d.Keys++
		observeOverlap(d, list)
	}

	if len(g.Countries()) == 0 {
		// Every journal was torn before its header survived: nothing
		// identified the campaign and nothing contributed a record. An empty
		// corpus here would be the silently partial corpus this merge
		// refuses everywhere else.
		return nil, fmt.Errorf("fedcrawl: none of the %d journals under %s contributed a header; refusing to export an empty corpus", len(paths), dir)
	}
	corpus := dataset.NewCorpus(g.Epoch())
	for _, cc := range g.Countries() {
		rows := perCC[cc]
		if len(rows) == 0 {
			return nil, fmt.Errorf("fedcrawl: merged journals hold no sites for %s; the corpus would be silently partial", cc)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].site.Rank < rows[j].site.Rank })
		sites := make([]dataset.Website, len(rows))
		cov := &dataset.Coverage{Country: cc}
		for i, r := range rows {
			if r.site.Rank != i+1 {
				return nil, fmt.Errorf("fedcrawl: %s ranks are not contiguous: found rank %d at position %d — a shard's journals are missing",
					cc, r.site.Rank, i+1)
			}
			sites[i] = r.site
			cov.Observe(r.outcome)
		}
		corpus.Add(&dataset.CountryList{Country: cc, Epoch: g.Epoch(), Sites: sites})
		corpus.SetCoverage(cov)
	}

	dis := Disagreement{}
	for _, cc := range g.Countries() {
		if d := disagree[cc]; d != nil {
			dis.PerCountry = append(dis.PerCountry, *d)
			reg.Counter("fedcrawl.disagreement.overlap." + cc).Add(int64(d.Overlap))
			reg.Counter("fedcrawl.disagreement.differ." + cc).Add(int64(d.Disagree))
		}
	}
	return &MergeResult{
		Corpus:       corpus,
		Disagreement: dis,
		Stats:        g.Stats(),
		Journals:     paths,
	}, nil
}

// lostFields counts a probe's transiently lost field groups.
func lostFields(o dataset.SiteOutcome) int {
	n := 0
	for _, s := range []dataset.FieldStatus{o.Host, o.NS, o.CA, o.Language} {
		if s == dataset.StatusLost {
			n++
		}
	}
	return n
}

// winner picks the deterministic best entry for one key: fewest lost
// fields, then newest generation, then worker name, then path.
func winner(list []checkpoint.MergeEntry) checkpoint.MergeEntry {
	best := list[0]
	for _, e := range list[1:] {
		if betterEntry(e, best) {
			best = e
		}
	}
	return best
}

func betterEntry(a, b checkpoint.MergeEntry) bool {
	la, lb := lostFields(a.Entry.Outcome), lostFields(b.Entry.Outcome)
	if la != lb {
		return la < lb
	}
	ga, gb := gen(a), gen(b)
	if ga != gb {
		return ga > gb
	}
	if wa, wb := a.Source.Worker(), b.Source.Worker(); wa != wb {
		return wa < wb
	}
	return a.Source.Path < b.Source.Path
}

func gen(e checkpoint.MergeEntry) int {
	if e.Source.Shard != nil {
		return e.Source.Shard.Gen
	}
	return 0
}

// observeOverlap folds one key's entry list into the country's
// disagreement row. A key overlaps when at least two distinct workers hold
// a record for it; for each field group, the representatives that actually
// measured the field (status not lost) are compared, and any difference
// marks both the field and the key as disagreeing. Same-worker journals
// from different generations are one vantage, not an overlap.
func observeOverlap(d *CountryDisagreement, list []checkpoint.MergeEntry) {
	byWorker := map[string]checkpoint.MergeEntry{}
	for _, e := range list {
		w := e.Source.Worker()
		if cur, ok := byWorker[w]; !ok || betterEntry(e, cur) {
			byWorker[w] = e
		}
	}
	if len(byWorker) < 2 {
		return
	}
	d.Overlap++
	reps := make([]checkpoint.MergeEntry, 0, len(byWorker))
	for _, e := range byWorker {
		reps = append(reps, e)
	}
	differs := false
	for _, f := range fieldGroups {
		var ref *checkpoint.MergeEntry
		diff := false
		for i := range reps {
			if f.status(reps[i].Entry.Outcome) == dataset.StatusLost {
				continue
			}
			if ref == nil {
				ref = &reps[i]
				continue
			}
			if !f.equal(ref.Entry.Site, reps[i].Entry.Site) {
				diff = true
			}
		}
		if diff {
			f.count(&d.Diffs)
			differs = true
		}
	}
	if differs {
		d.Disagree++
	}
}

// fieldGroups maps each probe field to the Website fields it fills, so
// disagreement is judged only between vantages that both measured the
// field.
var fieldGroups = []struct {
	status func(dataset.SiteOutcome) dataset.FieldStatus
	equal  func(a, b dataset.Website) bool
	count  func(*FieldDiffs)
}{
	{
		status: func(o dataset.SiteOutcome) dataset.FieldStatus { return o.Host },
		equal: func(a, b dataset.Website) bool {
			return a.HostProvider == b.HostProvider && a.HostProviderCountry == b.HostProviderCountry &&
				a.HostIP == b.HostIP && a.HostIPContinent == b.HostIPContinent && a.HostAnycast == b.HostAnycast
		},
		count: func(f *FieldDiffs) { f.Host++ },
	},
	{
		status: func(o dataset.SiteOutcome) dataset.FieldStatus { return o.NS },
		equal: func(a, b dataset.Website) bool {
			return a.DNSProvider == b.DNSProvider && a.DNSProviderCountry == b.DNSProviderCountry &&
				a.NSIP == b.NSIP && a.NSIPContinent == b.NSIPContinent && a.NSAnycast == b.NSAnycast
		},
		count: func(f *FieldDiffs) { f.DNS++ },
	},
	{
		status: func(o dataset.SiteOutcome) dataset.FieldStatus { return o.CA },
		equal: func(a, b dataset.Website) bool {
			return a.CAOwner == b.CAOwner && a.CAOwnerCountry == b.CAOwnerCountry
		},
		count: func(f *FieldDiffs) { f.CA++ },
	},
	{
		status: func(o dataset.SiteOutcome) dataset.FieldStatus { return o.Language },
		equal:  func(a, b dataset.Website) bool { return a.Language == b.Language },
		count:  func(f *FieldDiffs) { f.Language++ },
	},
}
