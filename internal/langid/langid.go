// Package langid identifies the language of website text — the LangDetect
// substitute used for the paper's Section 5.3.3 case studies (e.g. "31.4%
// of the websites in Afghanistan's top list are in Persian, of which 60.8%
// are hosted in Iran").
//
// Detection is two-stage: Unicode script analysis settles most languages
// directly (Thai, Greek, Korean, …) or narrows to a script family (Arabic
// vs Persian, Cyrillic languages, Latin languages); stopword evidence then
// separates languages within a family. The classifier is intentionally
// coarse — the pipeline only needs script-level confidence — but it is a
// real classifier with real failure modes, not a lookup table.
package langid

import (
	"strings"
	"unicode"
)

// ISO 639-1 codes the detector can emit.
const (
	Unknown    = ""
	English    = "en"
	French     = "fr"
	German     = "de"
	Spanish    = "es"
	Portuguese = "pt"
	Czech      = "cs"
	Slovak     = "sk"
	Russian    = "ru"
	Ukrainian  = "uk"
	Arabic     = "ar"
	Persian    = "fa"
	Thai       = "th"
	Greek      = "el"
	Hebrew     = "he"
	Korean     = "ko"
	Japanese   = "ja"
	Chinese    = "zh"
	Hindi      = "hi"
)

// stopwords carries small, high-frequency word sets for Latin-script
// languages and for Cyrillic disambiguation.
var stopwords = map[string][]string{
	English:    {"the", "and", "of", "to", "in", "is", "you", "that", "for", "with"},
	French:     {"le", "la", "les", "des", "est", "vous", "dans", "pour", "avec", "une"},
	German:     {"der", "die", "das", "und", "ist", "nicht", "mit", "für", "auf", "ein"},
	Spanish:    {"el", "los", "las", "es", "una", "para", "con", "por", "del", "que"},
	Portuguese: {"o", "os", "uma", "é", "não", "para", "com", "em", "do", "da"},
	Czech:      {"je", "na", "se", "že", "to", "jsou", "ale", "jako", "podle", "byl"},
	Slovak:     {"je", "na", "sa", "že", "to", "sú", "ale", "ako", "podľa", "bol"},
	Russian:    {"и", "в", "не", "на", "что", "это", "как", "его", "для", "по"},
	Ukrainian:  {"і", "в", "не", "на", "що", "це", "як", "його", "для", "по", "є", "та"},
}

// persianMarkers are characters present in Persian but absent from Arabic.
var persianMarkers = []rune{'پ', 'چ', 'ژ', 'گ'}

// arabicMarkers are characters/words far more common in Arabic than
// Persian.
var arabicMarkers = []string{"ال", "ة", "في", "من"}

// Detect returns the ISO 639-1 code of the text's dominant language, or
// Unknown for empty or indeterminate input.
func Detect(text string) string {
	if strings.TrimSpace(text) == "" {
		return Unknown
	}
	counts := scriptCounts(text)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return Unknown
	}
	dominant, max := "", 0
	for script, c := range counts {
		if c > max {
			dominant, max = script, c
		}
	}

	switch dominant {
	case "thai":
		return Thai
	case "greek":
		return Greek
	case "hebrew":
		return Hebrew
	case "hangul":
		return Korean
	case "kana":
		return Japanese
	case "han":
		// Han without kana is Chinese; Japanese text nearly always carries
		// kana.
		if counts["kana"] > 0 {
			return Japanese
		}
		return Chinese
	case "devanagari":
		return Hindi
	case "arabic":
		return detectArabicFamily(text)
	case "cyrillic":
		return detectByStopwords(text, []string{Russian, Ukrainian}, Russian)
	case "latin":
		return detectByStopwords(text,
			[]string{English, French, German, Spanish, Portuguese, Czech, Slovak}, English)
	default:
		return Unknown
	}
}

func scriptCounts(text string) map[string]int {
	counts := make(map[string]int)
	for _, r := range text {
		switch {
		case unicode.Is(unicode.Latin, r):
			counts["latin"]++
		case unicode.Is(unicode.Cyrillic, r):
			counts["cyrillic"]++
		case unicode.Is(unicode.Arabic, r):
			counts["arabic"]++
		case unicode.Is(unicode.Thai, r):
			counts["thai"]++
		case unicode.Is(unicode.Greek, r):
			counts["greek"]++
		case unicode.Is(unicode.Hebrew, r):
			counts["hebrew"]++
		case unicode.Is(unicode.Hangul, r):
			counts["hangul"]++
		case unicode.Is(unicode.Hiragana, r) || unicode.Is(unicode.Katakana, r):
			counts["kana"]++
		case unicode.Is(unicode.Han, r):
			counts["han"]++
		case unicode.Is(unicode.Devanagari, r):
			counts["devanagari"]++
		}
	}
	return counts
}

func detectArabicFamily(text string) string {
	persian := 0
	for _, marker := range persianMarkers {
		persian += strings.Count(text, string(marker))
	}
	arabic := 0
	for _, marker := range arabicMarkers {
		arabic += strings.Count(text, marker)
	}
	if persian > 0 && persian*2 >= arabic {
		return Persian
	}
	return Arabic
}

func detectByStopwords(text string, candidates []string, fallback string) string {
	words := tokenize(text)
	if len(words) == 0 {
		return fallback
	}
	best, bestScore := fallback, 0
	for _, lang := range candidates {
		score := 0
		for _, sw := range stopwords[lang] {
			score += words[sw]
		}
		if score > bestScore {
			best, bestScore = lang, score
		}
	}
	return best
}

func tokenize(text string) map[string]int {
	words := make(map[string]int)
	for _, w := range strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r)
	}) {
		words[w]++
	}
	return words
}
