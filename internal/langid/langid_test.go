package langid

import "testing"

func TestDetectByScript(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{"ยินดีต้อนรับสู่เว็บไซต์ของเรา", Thai},
		{"Καλώς ήρθατε στον ιστότοπό μας", Greek},
		{"ברוכים הבאים לאתר שלנו", Hebrew},
		{"우리 웹사이트에 오신 것을 환영합니다", Korean},
		{"ようこそ私たちのウェブサイトへ", Japanese},
		{"欢迎来到我们的网站 内容 信息 服务", Chinese},
		{"हमारी वेबसाइट में आपका स्वागत है", Hindi},
	}
	for _, c := range cases {
		if got := Detect(c.text); got != c.want {
			t.Errorf("Detect(%q) = %q, want %q", c.text, got, c.want)
		}
	}
}

func TestDetectPersianVsArabic(t *testing.T) {
	// Persian with characteristic letters پ گ چ ژ.
	persian := "به وبگاه ما خوش آمدید پیگیری گزارش چاپ ژورنال"
	if got := Detect(persian); got != Persian {
		t.Errorf("Persian detected as %q", got)
	}
	arabic := "مرحبا بكم في موقعنا المعلومات في الصفحة من الاخبار"
	if got := Detect(arabic); got != Arabic {
		t.Errorf("Arabic detected as %q", got)
	}
}

func TestDetectCyrillic(t *testing.T) {
	russian := "и в не на что это как его для по новости сайта"
	if got := Detect(russian); got != Russian {
		t.Errorf("Russian detected as %q", got)
	}
	ukrainian := "це сайт новин і в на що як його для по є та інформація"
	if got := Detect(ukrainian); got != Ukrainian {
		t.Errorf("Ukrainian detected as %q", got)
	}
}

func TestDetectLatinLanguages(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{"the news and the weather for you in the morning with that", English},
		{"le site des nouvelles pour vous dans la France avec une page", French},
		{"der die das und ist nicht mit für auf ein Nachrichten", German},
		{"el sitio de las noticias es una para con por del que", Spanish},
		{"o site das notícias é uma para com em do da não os", Portuguese},
		{"je na se že to jsou ale jako podle byl zprávy", Czech},
		{"je na sa že to sú ale ako podľa bol správy", Slovak},
	}
	for _, c := range cases {
		if got := Detect(c.text); got != c.want {
			t.Errorf("Detect(%q) = %q, want %q", c.text, got, c.want)
		}
	}
}

func TestDetectEdgeCases(t *testing.T) {
	if got := Detect(""); got != Unknown {
		t.Errorf("empty = %q", got)
	}
	if got := Detect("   \n\t "); got != Unknown {
		t.Errorf("whitespace = %q", got)
	}
	if got := Detect("12345 !!! ???"); got != Unknown {
		t.Errorf("symbols = %q", got)
	}
	// Latin text with no matching stopwords falls back to English.
	if got := Detect("zzz qqq xxx"); got != English {
		t.Errorf("no-stopword Latin = %q", got)
	}
}

func TestDetectMixedPrefersDominantScript(t *testing.T) {
	// Mostly Thai with a Latin brand name.
	text := "Google ยินดีต้อนรับสู่เว็บไซต์ของเราเนื้อหาบริการข้อมูลข่าวสาร"
	if got := Detect(text); got != Thai {
		t.Errorf("mixed = %q, want th", got)
	}
}
