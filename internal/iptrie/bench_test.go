package iptrie

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
)

func benchTrie(b *testing.B, prefixes int) *Trie[int] {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tr := New[int]()
	for i := 0; i < prefixes; i++ {
		cidr := fmt.Sprintf("%d.%d.0.0/16", 10+rng.Intn(40), rng.Intn(256))
		if err := tr.InsertString(cidr, i); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

func BenchmarkLookup10kPrefixes(b *testing.B) {
	tr := benchTrie(b, 10000)
	addrs := make([]netip.Addr, 1024)
	rng := rand.New(rand.NewSource(2))
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{byte(10 + rng.Intn(40)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N; i++ {
		tr := New[int]()
		for j := 0; j < 100; j++ {
			cidr := fmt.Sprintf("%d.%d.0.0/16", 10+rng.Intn(40), rng.Intn(256))
			if err := tr.InsertString(cidr, j); err != nil {
				b.Fatal(err)
			}
		}
	}
}
