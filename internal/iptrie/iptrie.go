// Package iptrie provides a binary (one bit per level) longest-prefix-match
// trie over IP prefixes, the lookup structure behind the toolkit's
// geolocation (NetAcuity substitute), prefix→AS (pfx2as substitute), and
// anycast-prefix databases.
//
// The trie supports IPv4 and IPv6 uniformly by keying on the 4-/16-byte
// address families separately, exactly as routing tables do.
package iptrie

import (
	"fmt"
	"net/netip"
)

type node[V any] struct {
	children [2]*node[V]
	value    V
	hasValue bool
}

// Trie maps IP prefixes to values with longest-prefix-match lookup. The
// zero value is an empty trie ready to use. Trie is not safe for concurrent
// mutation; concurrent lookups after construction are safe.
type Trie[V any] struct {
	v4, v6 *node[V]
	size   int
}

// New returns an empty trie.
func New[V any]() *Trie[V] { return &Trie[V]{} }

// Len reports the number of inserted prefixes.
func (t *Trie[V]) Len() int { return t.size }

func rootFor[V any](t *Trie[V], is4 bool, create bool) **node[V] {
	if is4 {
		if t.v4 == nil && create {
			t.v4 = &node[V]{}
		}
		return &t.v4
	}
	if t.v6 == nil && create {
		t.v6 = &node[V]{}
	}
	return &t.v6
}

func bitAt(addr []byte, i int) int {
	return int(addr[i/8]>>(7-i%8)) & 1
}

// Insert associates the prefix with the value, replacing any existing value
// for exactly that prefix. It returns an error for invalid prefixes.
func (t *Trie[V]) Insert(prefix netip.Prefix, value V) error {
	if !prefix.IsValid() {
		return fmt.Errorf("iptrie: invalid prefix %v", prefix)
	}
	prefix = prefix.Masked()
	addr := prefix.Addr()
	raw := addr.AsSlice()
	cur := *rootFor(t, addr.Is4(), true)
	for i := 0; i < prefix.Bits(); i++ {
		b := bitAt(raw, i)
		if cur.children[b] == nil {
			cur.children[b] = &node[V]{}
		}
		cur = cur.children[b]
	}
	if !cur.hasValue {
		t.size++
	}
	cur.value = value
	cur.hasValue = true
	return nil
}

// InsertString parses a CIDR string and inserts it.
func (t *Trie[V]) InsertString(cidr string, value V) error {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return fmt.Errorf("iptrie: %w", err)
	}
	return t.Insert(p, value)
}

// Lookup returns the value of the longest matching prefix for the address.
// The boolean is false when no prefix covers the address.
func (t *Trie[V]) Lookup(addr netip.Addr) (V, bool) {
	var zero V
	if !addr.IsValid() {
		return zero, false
	}
	// Normalize 4-in-6 addresses so ::ffff:a.b.c.d hits the v4 table.
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	cur := *rootFor(t, addr.Is4(), false)
	if cur == nil {
		return zero, false
	}
	raw := addr.AsSlice()
	best := zero
	found := false
	if cur.hasValue { // default route
		best, found = cur.value, true
	}
	bits := len(raw) * 8
	for i := 0; i < bits; i++ {
		cur = cur.children[bitAt(raw, i)]
		if cur == nil {
			break
		}
		if cur.hasValue {
			best, found = cur.value, true
		}
	}
	return best, found
}

// LookupString parses an IP address and looks it up.
func (t *Trie[V]) LookupString(ip string) (V, bool) {
	addr, err := netip.ParseAddr(ip)
	if err != nil {
		var zero V
		return zero, false
	}
	return t.Lookup(addr)
}
