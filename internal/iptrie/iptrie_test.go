package iptrie

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestLongestPrefixWins(t *testing.T) {
	tr := New[string]()
	mustInsert(t, tr, "10.0.0.0/8", "big")
	mustInsert(t, tr, "10.1.0.0/16", "mid")
	mustInsert(t, tr, "10.1.2.0/24", "small")

	cases := []struct {
		ip, want string
	}{
		{"10.9.9.9", "big"},
		{"10.1.9.9", "mid"},
		{"10.1.2.9", "small"},
	}
	for _, c := range cases {
		got, ok := tr.LookupString(c.ip)
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q/%v, want %q", c.ip, got, ok, c.want)
		}
	}
	if _, ok := tr.LookupString("11.0.0.1"); ok {
		t.Error("uncovered address matched")
	}
}

func TestExactHostRoutes(t *testing.T) {
	tr := New[int]()
	mustInsert(t, tr, "192.0.2.1/32", 1)
	mustInsert(t, tr, "192.0.2.0/24", 2)
	if v, ok := tr.LookupString("192.0.2.1"); !ok || v != 1 {
		t.Errorf("host route: %v %v", v, ok)
	}
	if v, ok := tr.LookupString("192.0.2.2"); !ok || v != 2 {
		t.Errorf("covering route: %v %v", v, ok)
	}
}

func TestDefaultRoute(t *testing.T) {
	tr := New[string]()
	mustInsert(t, tr, "0.0.0.0/0", "default")
	mustInsert(t, tr, "203.0.113.0/24", "specific")
	if v, _ := tr.LookupString("8.8.8.8"); v != "default" {
		t.Errorf("default: %q", v)
	}
	if v, _ := tr.LookupString("203.0.113.7"); v != "specific" {
		t.Errorf("specific: %q", v)
	}
}

func TestIPv6Separate(t *testing.T) {
	tr := New[string]()
	mustInsert(t, tr, "2001:db8::/32", "v6net")
	mustInsert(t, tr, "32.1.13.0/24", "v4net") // same leading bytes as 2001:0db8
	if v, ok := tr.LookupString("2001:db8::1"); !ok || v != "v6net" {
		t.Errorf("v6 lookup: %q %v", v, ok)
	}
	if _, ok := tr.LookupString("2001:db9::1"); ok {
		t.Error("adjacent v6 prefix matched")
	}
	if v, ok := tr.LookupString("32.1.13.5"); !ok || v != "v4net" {
		t.Errorf("v4 lookup: %q %v", v, ok)
	}
}

func Test4In6Unmapped(t *testing.T) {
	tr := New[string]()
	mustInsert(t, tr, "198.51.100.0/24", "v4")
	addr := netip.MustParseAddr("::ffff:198.51.100.7")
	if v, ok := tr.Lookup(addr); !ok || v != "v4" {
		t.Errorf("4-in-6 lookup: %q %v", v, ok)
	}
}

func TestReplaceValue(t *testing.T) {
	tr := New[string]()
	mustInsert(t, tr, "10.0.0.0/8", "old")
	mustInsert(t, tr, "10.0.0.0/8", "new")
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
	if v, _ := tr.LookupString("10.1.1.1"); v != "new" {
		t.Errorf("value not replaced: %q", v)
	}
}

func TestUnmaskedPrefixNormalized(t *testing.T) {
	tr := New[string]()
	// Host bits set — must be masked on insert.
	p := netip.MustParsePrefix("10.1.2.3/16")
	if err := tr.Insert(p, "x"); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.LookupString("10.1.200.200"); !ok || v != "x" {
		t.Errorf("masked insert: %q %v", v, ok)
	}
}

func TestInvalidInputs(t *testing.T) {
	tr := New[string]()
	if err := tr.InsertString("not-a-cidr", "x"); err == nil {
		t.Error("bad CIDR accepted")
	}
	if err := tr.Insert(netip.Prefix{}, "x"); err == nil {
		t.Error("zero prefix accepted")
	}
	if _, ok := tr.LookupString("not-an-ip"); ok {
		t.Error("bad IP matched")
	}
	if _, ok := tr.Lookup(netip.Addr{}); ok {
		t.Error("zero addr matched")
	}
}

func TestEmptyTrie(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 {
		t.Error("empty trie has nonzero length")
	}
	if _, ok := tr.LookupString("1.2.3.4"); ok {
		t.Error("empty trie matched")
	}
}

func TestRandomizedAgainstLinearScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type entry struct {
			p netip.Prefix
			v int
		}
		tr := New[int]()
		var entries []entry
		for i := 0; i < 30; i++ {
			bits := 8 * (1 + rng.Intn(3)) // /8, /16, /24
			raw := [4]byte{byte(rng.Intn(8)), byte(rng.Intn(4)), byte(rng.Intn(4)), 0}
			p, err := netip.AddrFrom4(raw).Prefix(bits)
			if err != nil {
				return false
			}
			// Skip duplicate prefixes: insert replaces, which would break
			// the linear scan's first-match bookkeeping below.
			dup := false
			for _, e := range entries {
				if e.p == p {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if err := tr.Insert(p, i); err != nil {
				return false
			}
			entries = append(entries, entry{p, i})
		}
		for trial := 0; trial < 50; trial++ {
			addr := netip.AddrFrom4([4]byte{
				byte(rng.Intn(8)), byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(256)),
			})
			// Linear reference: longest matching prefix wins.
			bestBits, bestVal, found := -1, 0, false
			for _, e := range entries {
				if e.p.Contains(addr) && e.p.Bits() > bestBits {
					bestBits, bestVal, found = e.p.Bits(), e.v, true
				}
			}
			got, ok := tr.Lookup(addr)
			if ok != found || (found && got != bestVal) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func mustInsert[V any](t *testing.T, tr *Trie[V], cidr string, v V) {
	t.Helper()
	if err := tr.InsertString(cidr, v); err != nil {
		t.Fatal(err)
	}
}
