package liveworld

import (
	"crypto/tls"
	"net"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/dnswire"
	"github.com/webdep/webdep/internal/resolver"
	"github.com/webdep/webdep/internal/worldgen"
)

func smallWorld(t *testing.T) *worldgen.World {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{
		Seed:               17,
		SitesPerCountry:    25,
		Countries:          []string{"US"},
		DomesticPerCountry: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestServeAndClose(t *testing.T) {
	w := smallWorld(t)
	ep, err := Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	if ep.DNSAddr == "" || ep.TLSAddr == "" {
		t.Fatal("endpoints missing addresses")
	}
	if err := ep.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestDNSAnswersSites(t *testing.T) {
	w := smallWorld(t)
	ep, err := Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	client := resolver.NewClient(ep.DNSAddr)
	site := w.Raw["US"][0]
	addrs, err := client.LookupA(site.Domain)
	if err != nil {
		t.Fatalf("LookupA(%s): %v", site.Domain, err)
	}
	if len(addrs) != 1 || addrs[0] != site.HostIP {
		t.Errorf("A = %v, want %v", addrs, site.HostIP)
	}

	// NS chain: the NS host must resolve to the site's NS IP.
	nss, err := client.LookupNS(site.Domain)
	if err != nil || len(nss) == 0 {
		t.Fatalf("LookupNS: %v %v", nss, err)
	}
	nsAddrs, err := client.LookupA(nss[0])
	if err != nil || len(nsAddrs) != 1 || nsAddrs[0] != site.NSIP {
		t.Errorf("NS A = %v (%v), want %v", nsAddrs, err, site.NSIP)
	}
}

func TestTLSPresentsSiteCertificate(t *testing.T) {
	w := smallWorld(t)
	ep, err := Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	site := w.Raw["US"][0]
	dialer := &net.Dialer{Timeout: 2 * time.Second}
	conn, err := tls.DialWithDialer(dialer, "tcp", ep.TLSAddr, &tls.Config{
		ServerName:         site.Domain,
		InsecureSkipVerify: true,
		MinVersion:         tls.VersionTLS12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	leaf := conn.ConnectionState().PeerCertificates[0]
	if leaf.Subject.CommonName != site.Domain {
		t.Errorf("leaf CN = %q, want %q", leaf.Subject.CommonName, site.Domain)
	}
	if got := leaf.Issuer.Organization; len(got) != 1 || got[0] != site.IssuerOrg {
		t.Errorf("issuer org = %v, want %q", got, site.IssuerOrg)
	}
}

func TestCertificatesAreCached(t *testing.T) {
	w := smallWorld(t)
	iss, err := newIssuer(w)
	if err != nil {
		t.Fatal(err)
	}
	site := w.Raw["US"][0]
	hello := &tls.ClientHelloInfo{ServerName: site.Domain}
	a, err := iss.certificateFor(hello)
	if err != nil {
		t.Fatal(err)
	}
	b, err := iss.certificateFor(hello)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("certificate not cached between handshakes")
	}
}

func TestUnknownSNIGetsFallbackCert(t *testing.T) {
	w := smallWorld(t)
	iss, err := newIssuer(w)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := iss.certificateFor(&tls.ClientHelloInfo{ServerName: "not-in-world.example"})
	if err != nil || cert == nil {
		t.Fatalf("fallback cert: %v %v", cert, err)
	}
	if cert.Leaf.Issuer.Organization[0] != "Unknown Issuer" {
		t.Errorf("fallback issuer = %v", cert.Leaf.Issuer.Organization)
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Cloudflare":           "cloudflare",
		"Beget LLC":            "beget-llc",
		"SuperHosting.BG":      "superhosting-bg",
		"Neustar UltraDNS":     "neustar-ultradns",
		"UAB Interneto vizija": "uab-interneto-vizija",
		"!!!":                  "provider",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRefusesForeignZones(t *testing.T) {
	w := smallWorld(t)
	ep, err := Serve(w)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	client := resolver.NewClient(ep.DNSAddr)
	if _, err := client.Exchange("outside.nowhere", dnswire.TypeA); err != resolver.ErrRefused {
		t.Errorf("foreign zone lookup: %v, want REFUSED", err)
	}
}
