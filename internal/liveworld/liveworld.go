// Package liveworld serves a synthetic world over real network protocols:
// an authoritative DNS server answering for every site and nameserver in
// the world, and an HTTPS endpoint presenting each site's certificate
// (issued by the world's CA for that site) and a small page in the site's
// language. The live measurement pipeline crawls these endpoints exactly
// as the paper's tooling crawled the public Internet.
//
// Live serving is intended for example-scale worlds (a few countries,
// hundreds of sites); the fast in-memory pipeline covers full-scale runs.
package liveworld

import (
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"sync"

	"github.com/webdep/webdep/internal/capki"
	"github.com/webdep/webdep/internal/dnsserver"
	"github.com/webdep/webdep/internal/dnswire"
	"github.com/webdep/webdep/internal/worldgen"
)

// nsZone is the synthetic apex under which nameserver host names live.
const nsZone = "nsinfra"

// Endpoints exposes a served world's addresses.
type Endpoints struct {
	// DNSAddr is the authoritative server's "host:port" (UDP and TCP).
	DNSAddr string
	// TLSAddr is the HTTPS endpoint's "host:port"; select sites via SNI.
	TLSAddr string

	dns  *dnsserver.Server
	http *http.Server
	ln   net.Listener
	wg   sync.WaitGroup
}

// Close shuts both servers down.
func (e *Endpoints) Close() error {
	var firstErr error
	if e.dns != nil {
		if err := e.dns.Close(); err != nil {
			firstErr = err
		}
	}
	if e.ln != nil {
		if err := e.ln.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.wg.Wait()
	return firstErr
}

// Serve starts DNS and HTTPS servers for the world on loopback.
func Serve(w *worldgen.World) (*Endpoints, error) {
	ep := &Endpoints{}

	dns, err := buildDNS(w)
	if err != nil {
		return nil, err
	}
	dnsAddr, err := dns.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ep.dns = dns
	ep.DNSAddr = dnsAddr.String()

	issuer, err := newIssuer(w)
	if err != nil {
		dns.Close()
		return nil, err
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{
		GetCertificate: issuer.certificateFor,
		MinVersion:     tls.VersionTLS12,
	})
	if err != nil {
		dns.Close()
		return nil, err
	}
	ep.ln = ln
	ep.TLSAddr = ln.Addr().String()
	ep.http = &http.Server{Handler: siteHandler(w)}
	ep.wg.Add(1)
	go func() {
		defer ep.wg.Done()
		ep.http.Serve(ln) // returns when the listener closes
	}()
	return ep, nil
}

// Zones builds the authoritative zone set for a world: one zone per TLD in
// use plus the nsinfra zone for nameserver hosts, keyed by origin. Exposed
// so callers can dump the zones as master files (cmd/webdep -zones) or load
// them into their own servers.
func Zones(w *worldgen.World) (map[string]*dnsserver.Zone, error) {
	zones := map[string]*dnsserver.Zone{}
	zoneFor := func(origin string) *dnsserver.Zone {
		z, ok := zones[origin]
		if !ok {
			z = dnsserver.NewZone(origin)
			zones[origin] = z
		}
		return z
	}

	nsNames := map[string]netip.Addr{} // ns host name → address
	for _, raw := range w.Raw {
		for _, site := range raw {
			tld := site.Domain[strings.LastIndexByte(site.Domain, '.')+1:]
			z := zoneFor(tld)
			if err := z.Add(dnswire.Record{
				Name: site.Domain, Type: dnswire.TypeA, TTL: 300, Addr: site.HostIP,
			}); err != nil {
				return nil, err
			}
			nsName := nsHostName(w, site.NSIP)
			if err := z.Add(dnswire.Record{
				Name: site.Domain, Type: dnswire.TypeNS, TTL: 300, Target: nsName,
			}); err != nil {
				return nil, err
			}
			nsNames[nsName] = site.NSIP
		}
	}
	infra := zoneFor(nsZone)
	for name, addr := range nsNames {
		if err := infra.Add(dnswire.Record{
			Name: name, Type: dnswire.TypeA, TTL: 300, Addr: addr,
		}); err != nil {
			return nil, err
		}
	}
	return zones, nil
}

// buildDNS loads the world's zones into an authoritative server.
func buildDNS(w *worldgen.World) (*dnsserver.Server, error) {
	zones, err := Zones(w)
	if err != nil {
		return nil, err
	}
	srv := dnsserver.NewServer(nil)
	for _, z := range zones {
		srv.AddZone(z)
	}
	return srv, nil
}

// nsHostName derives the nameserver host name for an NS address:
// ns1.<provider-slug>.<continent>.nsinfra, so each provider presents one
// NS host per serving continent.
func nsHostName(w *worldgen.World, nsIP netip.Addr) string {
	providerName := "unknown"
	if org, ok := w.ASTable.LookupOrg(nsIP); ok {
		providerName = org.Name
	}
	continent := "xx"
	if loc, ok := w.GeoDB.Lookup(nsIP); ok && loc.Continent != "" {
		continent = strings.ToLower(loc.Continent)
	}
	return fmt.Sprintf("ns1.%s.%s.%s", slug(providerName), continent, nsZone)
}

// slug converts a provider name to a DNS label.
func slug(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == '.', r == '-', r == '_':
			b.WriteByte('-')
		}
	}
	out := strings.Trim(b.String(), "-")
	if out == "" {
		out = "provider"
	}
	return out
}

// issuer lazily instantiates one capki.Authority per CA and caches issued
// leaves per domain.
type issuer struct {
	world *worldgen.World

	mu          sync.Mutex
	authorities map[string]*capki.Authority
	cache       map[string]*tls.Certificate
	siteCA      map[string]string // domain → CA name
	fallback    *capki.Authority
}

func newIssuer(w *worldgen.World) (*issuer, error) {
	fallback, err := capki.NewAuthority("Unknown Issuer", "US")
	if err != nil {
		return nil, err
	}
	iss := &issuer{
		world:       w,
		authorities: make(map[string]*capki.Authority),
		cache:       make(map[string]*tls.Certificate),
		siteCA:      make(map[string]string),
		fallback:    fallback,
	}
	for _, raw := range w.Raw {
		for _, site := range raw {
			iss.siteCA[site.Domain] = site.IssuerOrg
		}
	}
	return iss, nil
}

func (iss *issuer) certificateFor(hello *tls.ClientHelloInfo) (*tls.Certificate, error) {
	domain := strings.ToLower(hello.ServerName)
	iss.mu.Lock()
	defer iss.mu.Unlock()
	if cert, ok := iss.cache[domain]; ok {
		return cert, nil
	}
	caName := iss.siteCA[domain]
	var auth *capki.Authority
	if caName == "" {
		auth = iss.fallback
	} else {
		var ok bool
		auth, ok = iss.authorities[caName]
		if !ok {
			country := "US"
			for _, info := range iss.world.CAs {
				if info.Name == caName {
					country = info.Country
					break
				}
			}
			created, err := capki.NewAuthority(caName, country)
			if err != nil {
				return nil, err
			}
			iss.authorities[caName] = created
			auth = created
		}
	}
	cert, err := auth.IssueLeaf(domain)
	if err != nil {
		return nil, err
	}
	iss.cache[domain] = &cert
	return &cert, nil
}

// languageSamples are short page bodies per language, chosen so the
// toolkit's language detector recovers the intended label from live pages.
var languageSamples = map[string]string{
	"en": "the news and the weather for you in the morning with that story",
	"fr": "le site des nouvelles pour vous dans la page avec une histoire",
	"de": "der die das und ist nicht mit für auf ein Nachrichtenportal",
	"es": "el sitio de las noticias es una para con por del que pagina",
	"pt": "o site das notícias é uma para com em do da não os artigos",
	"cs": "je na se že to jsou ale jako podle byl zpravodajský web",
	"sk": "je na sa že to sú ale ako podľa bol spravodajský web",
	"ru": "и в не на что это как его для по новости сайта сегодня",
	"uk": "і в не на що це як його для по є та новини сайту",
	"ar": "مرحبا بكم في موقعنا المعلومات في الصفحة من الاخبار",
	"fa": "به وبگاه ما خوش آمدید پیگیری گزارش چاپ ژورنال اخبار",
	"th": "ยินดีต้อนรับสู่เว็บไซต์ของเรา ข่าวสาร บริการ ข้อมูล",
	"el": "Καλώς ήρθατε στον ιστότοπό μας νέα και πληροφορίες",
	"he": "ברוכים הבאים לאתר שלנו חדשות ומידע",
	"ko": "우리 웹사이트에 오신 것을 환영합니다 뉴스와 정보",
	"ja": "ようこそ私たちのウェブサイトへ ニュースと情報",
	"zh": "欢迎来到我们的网站 新闻 信息 服务 内容",
	"hi": "हमारी वेबसाइट में आपका स्वागत है समाचार और जानकारी",
}

// siteHandler serves each site's page: a body in the site's language.
func siteHandler(w *worldgen.World) http.Handler {
	langs := make(map[string]string)
	for _, raw := range w.Raw {
		for _, site := range raw {
			langs[site.Domain] = site.Language
		}
	}
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		domain := r.Host
		if r.TLS != nil && r.TLS.ServerName != "" {
			domain = r.TLS.ServerName
		}
		domain = strings.ToLower(strings.TrimSuffix(domain, "."))
		lang, ok := langs[domain]
		if !ok {
			http.NotFound(rw, r)
			return
		}
		body, ok := languageSamples[lang]
		if !ok {
			body = languageSamples["en"]
		}
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(rw, "<html><body><p>"+body+"</p></body></html>")
	})
}
