// Package analysis computes the paper's experiment results from a measured
// corpus: per-country score tables, subregion aggregates, insularity
// distributions, continent-dependence matrices, class correlations, the
// longitudinal comparison, and the TLD study. The report package renders
// these structures; the experiments command maps each to its table/figure.
package analysis

import (
	"context"
	"fmt"
	"sort"

	"github.com/webdep/webdep/internal/classify"
	"github.com/webdep/webdep/internal/core"
	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/parallel"
	"github.com/webdep/webdep/internal/stats"
	"github.com/webdep/webdep/internal/tldinfo"
)

// CountryScore pairs a country with a metric value.
type CountryScore struct {
	Code      string
	Name      string
	Region    string
	Continent string
	Value     float64
}

// SortedScores returns per-country centralization for a layer, most
// centralized first (the paper's Tables 5–8 and Figures 5/17–19).
func SortedScores(corpus *dataset.Corpus, layer countries.Layer) []CountryScore {
	return sortCountryValues(corpus.Scores(layer))
}

// SortedInsularity returns per-country insularity for a layer, most insular
// first (Figures 13 and 20–22). The TLD layer uses ccTLD semantics: a
// site is insular when its TLD's home country is the list's country (.com
// counts as insular to the U.S.).
func SortedInsularity(corpus *dataset.Corpus, layer countries.Layer) []CountryScore {
	vals := Insularities(corpus, layer)
	out := sortCountryValues(vals)
	return out
}

// Insularities computes per-country insularity for any layer, handling the
// TLD layer's ccTLD semantics. The TLD path reads the scoring index's
// per-country TLD count columns — O(distinct TLDs) instead of O(sites),
// with identical tallies since the per-TLD counts are exact integers.
func Insularities(corpus *dataset.Corpus, layer countries.Layer) map[string]float64 {
	if layer != countries.TLD {
		return corpus.Insularities(layer)
	}
	out := make(map[string]float64, len(corpus.Lists))
	for _, cc := range corpus.Countries() {
		var ins core.Insularity
		for _, ps := range corpus.DistributionOf(cc, countries.TLD).Ranked() {
			ins.Total += ps.Count
			if home := tldinfo.InsularTo(ps.Provider); home != "" && home == cc {
				ins.Domestic += ps.Count
			}
		}
		out[cc] = ins.Fraction()
	}
	return out
}

func sortCountryValues(vals map[string]float64) []CountryScore {
	out := make([]CountryScore, 0, len(vals))
	for cc, v := range vals {
		c, _ := countries.ByCode(cc)
		out = append(out, CountryScore{
			Code: cc, Name: c.Name, Region: c.Region, Continent: c.Continent, Value: v,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// ExcludeDegraded returns a corpus without the countries whose live crawl
// was flagged degraded: their distributions reflect measurement loss, so
// score tables built from them would rank noise. The coverage accounting is
// carried over whole — including the excluded countries' — so reports can
// still say what was dropped and why. Corpora without degraded countries
// (including every fast-path corpus) pass through unchanged.
func ExcludeDegraded(corpus *dataset.Corpus) *dataset.Corpus {
	if len(corpus.DegradedCountries()) == 0 {
		return corpus
	}
	out := dataset.NewCorpus(corpus.Epoch)
	out.Workers = corpus.Workers
	out.CoverageByCountry = corpus.CoverageByCountry
	for cc, list := range corpus.Lists {
		if cov := corpus.CoverageOf(cc); cov != nil && cov.Degraded {
			continue
		}
		out.Add(list)
	}
	return out
}

// RegionAggregate is one subregion's summary for a layer.
type RegionAggregate struct {
	Region    string
	Continent string
	Mean      float64
	Min, Max  float64
	Countries int
}

// BySubregion aggregates a per-country metric into UN-subregion summaries
// (Figures 9 and 10).
func BySubregion(vals map[string]float64) []RegionAggregate {
	type acc struct {
		continent string
		xs        []float64
	}
	regions := map[string]*acc{}
	for cc, v := range vals {
		c, _ := countries.ByCode(cc)
		a := regions[c.Region]
		if a == nil {
			a = &acc{continent: c.Continent}
			regions[c.Region] = a
		}
		a.xs = append(a.xs, v)
	}
	out := make([]RegionAggregate, 0, len(regions))
	for region, a := range regions {
		out = append(out, RegionAggregate{
			Region:    region,
			Continent: a.continent,
			Mean:      stats.Mean(a.xs),
			Min:       stats.Min(a.xs),
			Max:       stats.Max(a.xs),
			Countries: len(a.xs),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Mean > out[j].Mean })
	return out
}

// ByContinent aggregates a per-country metric into continent summaries
// (the color-coding of Figures 5 and 17–19).
func ByContinent(vals map[string]float64) []RegionAggregate {
	perContinent := map[string][]float64{}
	for cc, v := range vals {
		c, _ := countries.ByCode(cc)
		perContinent[c.Continent] = append(perContinent[c.Continent], v)
	}
	out := make([]RegionAggregate, 0, len(perContinent))
	for continent, xs := range perContinent {
		out = append(out, RegionAggregate{
			Region:    continent,
			Continent: continent,
			Mean:      stats.Mean(xs),
			Min:       stats.Min(xs),
			Max:       stats.Max(xs),
			Countries: len(xs),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Mean > out[j].Mean })
	return out
}

// LayerSummary is one layer's global aggregate (the 𝒮̄ and var numbers the
// paper quotes per layer).
type LayerSummary struct {
	Layer       countries.Layer
	Mean        float64
	Variance    float64
	Median      float64
	GlobalTop   float64 // 𝒮 of the aggregated global toplist (Figure 12 marker)
	MostCode    string
	MostValue   float64
	LeastCode   string
	LeastValue  float64
	MeanInsular float64
}

// SummarizeLayer computes the headline aggregates for one layer. Countries
// are visited in sorted code order so ties for most/least centralized and
// the floating-point reductions come out identical on every run.
func SummarizeLayer(corpus *dataset.Corpus, layer countries.Layer) LayerSummary {
	scores := corpus.Scores(layer)
	ccs := corpus.Countries()
	xs := make([]float64, 0, len(ccs))
	sum := LayerSummary{Layer: layer, MostValue: -1, LeastValue: 2}
	for _, cc := range ccs {
		v := scores[cc]
		xs = append(xs, v)
		if v > sum.MostValue {
			sum.MostCode, sum.MostValue = cc, v
		}
		if v < sum.LeastValue {
			sum.LeastCode, sum.LeastValue = cc, v
		}
	}
	sum.Mean = stats.Mean(xs)
	sum.Variance = stats.Variance(xs)
	sum.Median = stats.Median(xs)
	sum.GlobalTop = corpus.GlobalDistribution(layer).Score()
	insularities := Insularities(corpus, layer)
	ins := make([]float64, 0, len(ccs))
	for _, cc := range ccs {
		ins = append(ins, insularities[cc])
	}
	sum.MeanInsular = stats.Mean(ins)
	return sum
}

// SummarizeLayers summarizes every layer of the corpus concurrently, one
// pool slot per layer (the first summary to run builds the corpus's shared
// scoring index; the rest read it). The slice follows the order of
// countries.Layers and is identical to calling SummarizeLayer serially.
func SummarizeLayers(corpus *dataset.Corpus) []LayerSummary {
	sums, err := parallel.Map(context.Background(), len(countries.Layers), len(countries.Layers),
		func(_ context.Context, i int) (LayerSummary, error) {
			return SummarizeLayer(corpus, countries.Layers[i]), nil
		})
	if err != nil {
		// SummarizeLayer cannot fail and the context is never cancelled,
		// so Map cannot err here (TestSummarizeLayersMapCannotFail pins
		// the invariant); panicking instead of discarding the error keeps
		// a future fallible summary from silently zero-filling the slice.
		panic(fmt.Sprintf("analysis: layer summary failed: %v", err))
	}
	return sums
}

// InsularityCDF returns the empirical CDF of a layer's insularity across
// countries (Figure 11).
func InsularityCDF(corpus *dataset.Corpus, layer countries.Layer) *stats.ECDF {
	vals := Insularities(corpus, layer)
	xs := make([]float64, 0, len(vals))
	for _, v := range vals {
		xs = append(xs, v)
	}
	return stats.NewECDF(xs)
}

// ScoreHistogram bins a layer's country scores (Figure 12) and returns the
// Global-Top-10k marker value.
func ScoreHistogram(corpus *dataset.Corpus, layer countries.Layer, bins int) (*stats.Histogram, float64) {
	h := stats.NewHistogram(0, 0.65, bins)
	for _, v := range corpus.Scores(layer) {
		h.Add(v)
	}
	return h, corpus.GlobalDistribution(layer).Score()
}

// DependenceBasis selects what Figure 8's dependence matrix is computed
// over.
type DependenceBasis int

const (
	// ByProviderHQ groups sites by the hosting provider's home continent
	// (Figure 8a).
	ByProviderHQ DependenceBasis = iota
	// ByIPGeolocation groups sites by the serving IP's continent
	// (Figure 8b).
	ByIPGeolocation
	// ByNSGeolocation groups sites by the nameserver IP's continent,
	// with anycast broken out (Figure 8c).
	ByNSGeolocation
)

// DependenceCell is one (subregion, target) share.
type DependenceMatrix struct {
	// Shares[subregion][target] is the fraction of the subregion's sites
	// attributed to the target continent ("anycast" is a target for the
	// NS basis).
	Shares map[string]map[string]float64
}

// ContinentDependence computes Figure 8's matrices.
func ContinentDependence(corpus *dataset.Corpus, basis DependenceBasis) *DependenceMatrix {
	m := &DependenceMatrix{Shares: map[string]map[string]float64{}}
	counts := map[string]map[string]int{}
	totals := map[string]int{}
	for cc, list := range corpus.Lists {
		c, _ := countries.ByCode(cc)
		row := counts[c.Region]
		if row == nil {
			row = map[string]int{}
			counts[c.Region] = row
		}
		for i := range list.Sites {
			s := &list.Sites[i]
			var target string
			switch basis {
			case ByProviderHQ:
				if s.HostProviderCountry == "" {
					continue
				}
				hq, _ := countries.ByCode(s.HostProviderCountry)
				target = hq.Continent
			case ByIPGeolocation:
				target = s.HostIPContinent
			case ByNSGeolocation:
				if s.NSAnycast {
					target = "anycast"
				} else {
					target = s.NSIPContinent
				}
			}
			if target == "" {
				continue
			}
			row[target]++
			totals[c.Region]++
		}
	}
	for region, row := range counts {
		total := totals[region]
		if total == 0 {
			continue
		}
		out := map[string]float64{}
		for target, n := range row {
			out[target] = float64(n) / float64(total)
		}
		m.Shares[region] = out
	}
	return m
}

// Correlation is one of the paper's quoted correlation results.
type Correlation struct {
	Label    string
	Rho      float64
	PValue   float64
	Strength string
	PaperRho float64 // the value the paper reports, for side-by-side output
}

// ClassCorrelations reproduces Section 5's correlation battery from a
// hosting classification: XL-GP dominance vs 𝒮 (paper: 0.90), other L-GP
// share vs 𝒮 (0.19), L-RP share vs 𝒮 (−0.72), and insularity vs 𝒮 (−0.61).
func ClassCorrelations(corpus *dataset.Corpus, cls *classify.Result) ([]Correlation, error) {
	scores := corpus.Scores(countries.Hosting)
	ccs := corpus.Countries()
	scoreVec := make([]float64, len(ccs))
	for i, cc := range ccs {
		scoreVec[i] = scores[cc]
	}
	vec := func(m map[string]float64) []float64 {
		out := make([]float64, len(ccs))
		for i, cc := range ccs {
			out[i] = m[cc]
		}
		return out
	}

	xl := classify.ClassShares(corpus, countries.Hosting, cls, classify.XLGlobal)
	lg := classify.ClassShares(corpus, countries.Hosting, cls, classify.LGlobal, classify.LGlobalRegion)
	lr := classify.ClassShares(corpus, countries.Hosting, cls, classify.LRegional)
	ins := Insularities(corpus, countries.Hosting)

	specs := []struct {
		label    string
		xs       []float64
		paperRho float64
	}{
		{"XL-GP share vs centralization", vec(xl), 0.90},
		{"L-GP share vs centralization", vec(lg), 0.19},
		{"L-RP share vs centralization", vec(lr), -0.72},
		{"hosting insularity vs centralization", vec(ins), -0.61},
	}
	out := make([]Correlation, 0, len(specs))
	for _, spec := range specs {
		rho, err := stats.Pearson(spec.xs, scoreVec)
		if err != nil {
			return nil, err
		}
		out = append(out, Correlation{
			Label:    spec.label,
			Rho:      rho,
			PValue:   stats.PearsonPValue(rho, len(ccs)),
			Strength: stats.CorrelationStrength(rho),
			PaperRho: spec.paperRho,
		})
	}
	return out, nil
}
