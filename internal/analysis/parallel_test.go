package analysis

import (
	"reflect"
	"testing"

	"github.com/webdep/webdep/internal/countries"
)

// TestSummarizeLayersMatchesSerial checks the concurrent all-layer summary
// is exactly the slice of serial per-layer summaries, in layer order, and
// that repeated runs agree (no map-order leakage into the aggregates).
func TestSummarizeLayersMatchesSerial(t *testing.T) {
	_, mc := measuredCorpus(t)
	got := SummarizeLayers(mc)
	if len(got) != len(countries.Layers) {
		t.Fatalf("%d summaries for %d layers", len(got), len(countries.Layers))
	}
	for i, layer := range countries.Layers {
		want := SummarizeLayer(mc, layer)
		if got[i] != want {
			t.Errorf("%v: concurrent summary %+v\n              serial %+v", layer, got[i], want)
		}
	}
	again := SummarizeLayers(mc)
	if !reflect.DeepEqual(got, again) {
		t.Error("SummarizeLayers not reproducible across runs")
	}
}

// TestSummariesIdenticalAcrossWorkerCounts runs the same corpus's summary
// at scoring-pool sizes 1 and 8.
func TestSummariesIdenticalAcrossWorkerCounts(t *testing.T) {
	_, mc := measuredCorpus(t)
	mc.Workers = 1
	seq := SummarizeLayers(mc)
	mc.Workers = 8
	par := SummarizeLayers(mc)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("summaries differ across worker counts:\n w1 %+v\n w8 %+v", seq, par)
	}
}
