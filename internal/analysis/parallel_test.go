package analysis

import (
	"context"
	"reflect"
	"testing"

	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/parallel"
)

// TestSummarizeLayersMatchesSerial checks the concurrent all-layer summary
// is exactly the slice of serial per-layer summaries, in layer order, and
// that repeated runs agree (no map-order leakage into the aggregates).
func TestSummarizeLayersMatchesSerial(t *testing.T) {
	_, mc := measuredCorpus(t)
	got := SummarizeLayers(mc)
	if len(got) != len(countries.Layers) {
		t.Fatalf("%d summaries for %d layers", len(got), len(countries.Layers))
	}
	for i, layer := range countries.Layers {
		want := SummarizeLayer(mc, layer)
		if got[i] != want {
			t.Errorf("%v: concurrent summary %+v\n              serial %+v", layer, got[i], want)
		}
	}
	again := SummarizeLayers(mc)
	if !reflect.DeepEqual(got, again) {
		t.Error("SummarizeLayers not reproducible across runs")
	}
}

// TestSummarizeLayersMapCannotFail pins the invariant behind the panic
// guard in SummarizeLayers: parallel.Map with a background (never
// cancelled) context and an infallible fn returns a nil error, so the
// only way the guard fires is a future change that makes SummarizeLayer
// fallible — which must then propagate instead of panicking. The second
// half demonstrates that a fn error *is* surfaced by Map, i.e. the guard
// is not masking anything today.
func TestSummarizeLayersMapCannotFail(t *testing.T) {
	_, mc := measuredCorpus(t)
	// Exactly the call shape SummarizeLayers uses: layer-indexed Map over
	// an infallible fn. Repeat to cover both cold and warm scoring index.
	for round := 0; round < 3; round++ {
		sums, err := parallel.Map(context.Background(), len(countries.Layers), len(countries.Layers),
			func(_ context.Context, i int) (LayerSummary, error) {
				return SummarizeLayer(mc, countries.Layers[i]), nil
			})
		if err != nil {
			t.Fatalf("round %d: infallible layer Map returned %v", round, err)
		}
		if len(sums) != len(countries.Layers) {
			t.Fatalf("round %d: %d summaries for %d layers", round, len(sums), len(countries.Layers))
		}
	}
	// Sanity: Map does propagate real errors, so a fallible summary could
	// never be silently zero-filled.
	_, err := parallel.Map(context.Background(), len(countries.Layers), len(countries.Layers),
		func(_ context.Context, i int) (LayerSummary, error) {
			if i == 1 {
				return LayerSummary{}, context.DeadlineExceeded
			}
			return LayerSummary{}, nil
		})
	if err == nil {
		t.Fatal("Map swallowed a summary error")
	}
}

// TestSummariesIdenticalAcrossWorkerCounts runs the same corpus's summary
// at scoring-pool sizes 1 and 8.
func TestSummariesIdenticalAcrossWorkerCounts(t *testing.T) {
	_, mc := measuredCorpus(t)
	mc.Workers = 1
	seq := SummarizeLayers(mc)
	mc.Workers = 8
	par := SummarizeLayers(mc)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("summaries differ across worker counts:\n w1 %+v\n w8 %+v", seq, par)
	}
}
