package analysis

import (
	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/depgraph"
)

// This file is the analysis surface over the provider dependency graph:
// ranked single-point-of-failure tables and transitive score tables in
// the same CountryScore shape the rest of the report layer consumes.
// All entry points go through depgraph.FromCorpus, so repeated calls
// (the experiments suite renders several tables from one corpus) share
// one cached graph build.

// TopSPOFs returns the corpus's n worst single points of failure —
// providers ranked by transitive blast radius across the hosting, DNS,
// and CA layers. Ties order deterministically by provider symbol, then
// name.
func TopSPOFs(corpus *dataset.Corpus, n int) []depgraph.SPOF {
	return depgraph.FromCorpus(corpus).TopSPOFs(n)
}

// SortedTransitiveScores returns per-country transitive centralization
// for a modeled layer, most centralized first — the transitive
// counterpart of SortedScores, on the same core.Distribution scoring
// surface. Layers the graph does not model (TLD) return nil.
func SortedTransitiveScores(corpus *dataset.Corpus, layer countries.Layer) []CountryScore {
	vals := depgraph.FromCorpus(corpus).TransitiveScores(layer)
	if vals == nil {
		return nil
	}
	return sortCountryValues(vals)
}
