package analysis

import (
	"testing"

	"github.com/webdep/webdep/internal/dataset"
)

// TestExcludeDegradedEdgeCases drives the exclusion filter through the
// degenerate corpora around its boundary behaviors: nothing left after
// exclusion, nothing to exclude, and single-country worlds on both sides
// of the threshold.
func TestExcludeDegradedEdgeCases(t *testing.T) {
	mk := func(ccs []string, degraded map[string]bool) *dataset.Corpus {
		c := dataset.NewCorpus("e")
		for _, cc := range ccs {
			c.Add(&dataset.CountryList{Country: cc, Epoch: "e"})
			c.SetCoverage(&dataset.Coverage{Country: cc, Degraded: degraded[cc]})
		}
		return c
	}

	cases := []struct {
		name string
		in   func() *dataset.Corpus
		// want is the expected surviving country set; wantSame asserts the
		// corpus passes through without copying.
		want     []string
		wantSame bool
	}{
		{
			name:     "empty corpus",
			in:       func() *dataset.Corpus { return dataset.NewCorpus("e") },
			want:     []string{},
			wantSame: true, // nothing degraded, nothing to do
		},
		{
			name: "all countries degraded",
			in: func() *dataset.Corpus {
				return mk([]string{"TH", "US"}, map[string]bool{"TH": true, "US": true})
			},
			want: []string{},
		},
		{
			name:     "single healthy country",
			in:       func() *dataset.Corpus { return mk([]string{"IR"}, nil) },
			want:     []string{"IR"},
			wantSame: true,
		},
		{
			name: "single degraded country",
			in: func() *dataset.Corpus {
				return mk([]string{"IR"}, map[string]bool{"IR": true})
			},
			want: []string{},
		},
		{
			name: "mixed corpus keeps only healthy",
			in: func() *dataset.Corpus {
				return mk([]string{"BR", "CZ", "TH"}, map[string]bool{"CZ": true})
			},
			want: []string{"BR", "TH"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tc.in()
			coverageBefore := len(in.CoverageByCountry)
			got := ExcludeDegraded(in)

			if tc.wantSame && got != in {
				t.Fatal("pass-through corpus was copied")
			}
			if !tc.wantSame && got == in {
				t.Fatal("corpus with degraded countries returned unchanged")
			}

			ccs := got.Countries()
			if len(ccs) != len(tc.want) {
				t.Fatalf("Countries = %v, want %v", ccs, tc.want)
			}
			for i := range tc.want {
				if ccs[i] != tc.want[i] {
					t.Fatalf("Countries = %v, want %v", ccs, tc.want)
				}
			}
			// Every input country's coverage must remain reportable even
			// when its measurements were dropped.
			if len(got.CoverageByCountry) != coverageBefore {
				t.Errorf("coverage accounting shrank: %d -> %d",
					coverageBefore, len(got.CoverageByCountry))
			}
			// The filtered corpus must carry no degraded countries.
			if deg := got.DegradedCountries(); !tc.wantSame {
				for _, cc := range deg {
					if lst := got.Get(cc); lst != nil {
						t.Errorf("degraded country %s survived exclusion", cc)
					}
				}
			}
		})
	}
}
