package analysis

import (
	"sort"

	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/stats"
	"github.com/webdep/webdep/internal/tldinfo"
)

// CrossDep is one cross-border dependence observation (Section 5.3.3).
type CrossDep struct {
	Country    string  // the dependent country
	OnCountry  string  // the country depended on
	Share      float64 // fraction of sites served from OnCountry
	PaperShare float64 // the share the paper reports, 0 when unquoted
}

// caseStudyPairs are the cross-border dependencies the paper quantifies.
var caseStudyPairs = []CrossDep{
	{Country: "TM", OnCountry: "RU", PaperShare: 0.33},
	{Country: "TJ", OnCountry: "RU", PaperShare: 0.23},
	{Country: "KG", OnCountry: "RU", PaperShare: 0.22},
	{Country: "KZ", OnCountry: "RU", PaperShare: 0.21},
	{Country: "BY", OnCountry: "RU", PaperShare: 0.18},
	{Country: "UA", OnCountry: "RU", PaperShare: 0.02},
	{Country: "LT", OnCountry: "RU", PaperShare: 0.03},
	{Country: "EE", OnCountry: "RU", PaperShare: 0.05},
	{Country: "RE", OnCountry: "FR", PaperShare: 0.36},
	{Country: "GP", OnCountry: "FR", PaperShare: 0.34},
	{Country: "MQ", OnCountry: "FR", PaperShare: 0.35},
	{Country: "BF", OnCountry: "FR", PaperShare: 0.21},
	{Country: "CI", OnCountry: "FR", PaperShare: 0.18},
	{Country: "ML", OnCountry: "FR", PaperShare: 0.18},
	{Country: "SK", OnCountry: "CZ", PaperShare: 0.26},
	{Country: "AF", OnCountry: "IR", PaperShare: 0.20},
	{Country: "AT", OnCountry: "DE", PaperShare: 0.03},
}

// CaseStudies measures the paper's cross-border hosting dependencies in
// the corpus; pairs whose dependent country is absent are skipped.
func CaseStudies(corpus *dataset.Corpus) []CrossDep {
	var out []CrossDep
	for _, pair := range caseStudyPairs {
		list := corpus.Get(pair.Country)
		if list == nil {
			continue
		}
		dep := pair
		dep.Share = list.CrossDependence(countries.Hosting).Share(pair.OnCountry)
		out = append(out, dep)
	}
	return out
}

// LongitudinalResult compares two measurement epochs (Section 5.4).
type LongitudinalResult struct {
	EpochA, EpochB string
	// Rho correlates per-country hosting scores across epochs (paper: 0.98).
	Rho    float64
	PValue float64
	// MeanJaccard is the average toplist similarity (paper: 0.37).
	MeanJaccard float64
	// CloudflareDelta is each country's change in Cloudflare share
	// (percentage points; paper: +3.8 on average).
	CloudflareDelta map[string]float64
	// MeanCloudflareDelta averages CloudflareDelta.
	MeanCloudflareDelta float64
	// Largest movers by centralization change.
	LargestIncrease, LargestDecrease CountryScore
}

// Longitudinal compares two corpora over the same country set.
func Longitudinal(a, b *dataset.Corpus) (*LongitudinalResult, error) {
	ccs := a.Countries()
	scoresA := a.Scores(countries.Hosting)
	scoresB := b.Scores(countries.Hosting)
	xs := make([]float64, 0, len(ccs))
	ys := make([]float64, 0, len(ccs))
	var jaccards, deltas []float64
	res := &LongitudinalResult{
		EpochA: a.Epoch, EpochB: b.Epoch,
		CloudflareDelta: map[string]float64{},
	}
	bestUp, bestDown := 0.0, 0.0
	for _, cc := range ccs {
		listB := b.Get(cc)
		if listB == nil {
			continue
		}
		xs = append(xs, scoresA[cc])
		ys = append(ys, scoresB[cc])
		jaccards = append(jaccards, stats.Jaccard(a.Get(cc).Domains(), listB.Domains()))
		cfA := a.DistributionOf(cc, countries.Hosting).Share("Cloudflare")
		cfB := b.DistributionOf(cc, countries.Hosting).Share("Cloudflare")
		delta := (cfB - cfA) * 100
		res.CloudflareDelta[cc] = delta
		deltas = append(deltas, delta)

		change := scoresB[cc] - scoresA[cc]
		if change > bestUp {
			bestUp = change
			res.LargestIncrease = countryScoreFor(cc, change)
		}
		if change < bestDown {
			bestDown = change
			res.LargestDecrease = countryScoreFor(cc, change)
		}
	}
	rho, err := stats.Pearson(xs, ys)
	if err != nil {
		return nil, err
	}
	res.Rho = rho
	res.PValue = stats.PearsonPValue(rho, len(xs))
	res.MeanJaccard = stats.Mean(jaccards)
	res.MeanCloudflareDelta = stats.Mean(deltas)
	return res, nil
}

func countryScoreFor(cc string, v float64) CountryScore {
	c, _ := countries.ByCode(cc)
	return CountryScore{Code: cc, Name: c.Name, Region: c.Region, Continent: c.Continent, Value: v}
}

// TLDBreakdown is one country's TLD-kind shares (Figure 16).
type TLDBreakdown struct {
	Country string
	Score   float64
	Shares  map[tldinfo.Kind]float64
}

// TLDBreakdowns computes every country's TLD-kind shares, sorted most
// centralized first.
func TLDBreakdowns(corpus *dataset.Corpus) []TLDBreakdown {
	scores := corpus.Scores(countries.TLD)
	out := make([]TLDBreakdown, 0, len(corpus.Lists))
	for cc, list := range corpus.Lists {
		shares := map[tldinfo.Kind]float64{}
		total := 0
		for i := range list.Sites {
			tld := list.Sites[i].TLD
			if tld == "" {
				continue
			}
			shares[tldinfo.Classify(tld, cc)]++
			total++
		}
		for k := range shares {
			shares[k] /= float64(total)
		}
		out = append(out, TLDBreakdown{Country: cc, Score: scores[cc], Shares: shares})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// TLDStudy bundles Appendix B's headline numbers.
type TLDStudy struct {
	MeanScore float64 // paper: 0.3262
	// HostingTLDInsularityRho correlates hosting-layer and TLD-layer
	// insularity across countries (paper: 0.70).
	HostingTLDInsularityRho float64
	PValue                  float64
}

// StudyTLD computes Appendix B's aggregates.
func StudyTLD(corpus *dataset.Corpus) (*TLDStudy, error) {
	var scores []float64
	for _, v := range corpus.Scores(countries.TLD) {
		scores = append(scores, v)
	}
	hostIns := Insularities(corpus, countries.Hosting)
	tldIns := Insularities(corpus, countries.TLD)
	ccs := corpus.Countries()
	xs := make([]float64, len(ccs))
	ys := make([]float64, len(ccs))
	for i, cc := range ccs {
		xs[i] = hostIns[cc]
		ys[i] = tldIns[cc]
	}
	rho, err := stats.Pearson(xs, ys)
	if err != nil {
		return nil, err
	}
	return &TLDStudy{
		MeanScore:               stats.Mean(scores),
		HostingTLDInsularityRho: rho,
		PValue:                  stats.PearsonPValue(rho, len(ccs)),
	}, nil
}
