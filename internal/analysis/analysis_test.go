package analysis

import (
	"math"
	"testing"

	"github.com/webdep/webdep/internal/classify"
	"github.com/webdep/webdep/internal/countries"
	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/pipeline"
	"github.com/webdep/webdep/internal/tldinfo"
	"github.com/webdep/webdep/internal/worldgen"
)

var testCountries = []string{
	"TH", "ID", "US", "CZ", "SK", "RU", "IR", "JP", "BR", "FR",
	"DE", "GB", "IN", "NG", "TM", "KG", "PL", "TR", "MX", "AU",
	"BG", "LT", "AF", "TT", "KZ",
}

func measuredCorpus(t *testing.T) (*worldgen.World, *dataset.Corpus) {
	t.Helper()
	w, err := worldgen.Build(worldgen.Config{
		Seed:               21,
		SitesPerCountry:    800,
		Countries:          testCountries,
		DomesticPerCountry: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pipeline.FromWorld(w).MeasureWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	return w, corpus
}

func TestSortedScoresOrdering(t *testing.T) {
	_, mc := measuredCorpus(t)
	rows := SortedScores(mc, countries.Hosting)
	if len(rows) != len(testCountries) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Value > rows[i-1].Value {
			t.Fatalf("not sorted at %d", i)
		}
	}
	// Thailand tops, Iran bottoms (within this subset).
	if rows[0].Code != "ID" && rows[0].Code != "TH" {
		t.Errorf("most centralized = %s", rows[0].Code)
	}
	last := rows[len(rows)-1]
	if last.Code != "IR" && last.Code != "TM" {
		t.Errorf("least centralized = %s", last.Code)
	}
	if rows[0].Name == "" || rows[0].Region == "" {
		t.Error("rows missing country metadata")
	}
}

func TestBySubregion(t *testing.T) {
	_, mc := measuredCorpus(t)
	aggs := BySubregion(mc.Scores(countries.Hosting))
	if len(aggs) < 5 {
		t.Fatalf("only %d subregions", len(aggs))
	}
	// Sorted by mean descending; SE Asia should outrank Eastern Europe.
	pos := map[string]int{}
	for i, a := range aggs {
		pos[a.Region] = i
		if a.Countries == 0 || a.Min > a.Max {
			t.Errorf("bad aggregate %+v", a)
		}
	}
	if pos["South-eastern Asia"] > pos["Eastern Europe"] {
		t.Error("SE Asia should be more centralized than Eastern Europe")
	}
}

func TestSummarizeLayerHeadlines(t *testing.T) {
	_, mc := measuredCorpus(t)
	host := SummarizeLayer(mc, countries.Hosting)
	ca := SummarizeLayer(mc, countries.CA)
	tld := SummarizeLayer(mc, countries.TLD)

	// CA centralization exceeds hosting; its variance is tiny (paper §7.1).
	if ca.Mean <= host.Mean {
		t.Errorf("CA mean %v should exceed hosting %v", ca.Mean, host.Mean)
	}
	if ca.Variance >= host.Variance {
		t.Errorf("CA variance %v should be below hosting %v", ca.Variance, host.Variance)
	}
	// TLD centralization is the highest of all layers (Appendix B).
	if tld.Mean <= ca.Mean {
		t.Errorf("TLD mean %v should exceed CA %v", tld.Mean, ca.Mean)
	}
	if host.MostCode == "" || host.LeastCode == "" {
		t.Error("extremes missing")
	}
	if host.GlobalTop <= 0 {
		t.Errorf("global marker = %v", host.GlobalTop)
	}
}

func TestInsularityTLDSemantics(t *testing.T) {
	_, mc := measuredCorpus(t)
	ins := Insularities(mc, countries.TLD)
	// The US counts .com as insular, so it must be highly insular at the
	// TLD layer.
	if ins["US"] < 0.5 {
		t.Errorf("US TLD insularity = %v", ins["US"])
	}
	// Countries are more insular at the TLD layer than hosting on average
	// (Figure 11).
	host := Insularities(mc, countries.Hosting)
	var tldSum, hostSum float64
	for cc := range ins {
		tldSum += ins[cc]
		hostSum += host[cc]
	}
	if tldSum <= hostSum {
		t.Errorf("TLD insularity total %v should exceed hosting %v", tldSum, hostSum)
	}
}

func TestInsularityCDF(t *testing.T) {
	_, mc := measuredCorpus(t)
	cdf := InsularityCDF(mc, countries.CA)
	if cdf.Len() != len(testCountries) {
		t.Fatalf("CDF over %d countries", cdf.Len())
	}
	// CA insularity is near zero almost everywhere (§7.2): the CDF at 0.05
	// should already be high.
	if cdf.At(0.05) < 0.6 {
		t.Errorf("CA insularity CDF at 0.05 = %v; most countries should be below", cdf.At(0.05))
	}
}

func TestScoreHistogram(t *testing.T) {
	_, mc := measuredCorpus(t)
	h, marker := ScoreHistogram(mc, countries.Hosting, 13)
	if h.Total() != len(testCountries) {
		t.Fatalf("histogram holds %d", h.Total())
	}
	if marker <= 0 || marker > 0.65 {
		t.Errorf("global marker = %v", marker)
	}
}

func TestContinentDependence(t *testing.T) {
	_, mc := measuredCorpus(t)
	for _, basis := range []DependenceBasis{ByProviderHQ, ByIPGeolocation, ByNSGeolocation} {
		m := ContinentDependence(mc, basis)
		for region, row := range m.Shares {
			var sum float64
			for _, share := range row {
				sum += share
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("basis %v region %s sums to %v", basis, region, sum)
			}
		}
	}
	// Provider H.Q. dependence: every region leans heavily on North
	// America (the global providers are mostly US-based).
	hq := ContinentDependence(mc, ByProviderHQ)
	for region, row := range hq.Shares {
		if row["NA"] < 0.2 {
			t.Errorf("%s NA share = %v; US-based globals should dominate", region, row["NA"])
		}
	}
	// NS basis: anycast appears as a target (Figure 8c).
	ns := ContinentDependence(mc, ByNSGeolocation)
	foundAnycast := false
	for _, row := range ns.Shares {
		if row["anycast"] > 0 {
			foundAnycast = true
		}
	}
	if !foundAnycast {
		t.Error("no anycast share in NS dependence")
	}
}

func TestClassCorrelationsSigns(t *testing.T) {
	_, mc := measuredCorpus(t)
	cls, err := classify.Layer(mc, countries.Hosting, classify.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cors, err := ClassCorrelations(mc, cls)
	if err != nil {
		t.Fatal(err)
	}
	if len(cors) != 4 {
		t.Fatalf("%d correlations", len(cors))
	}
	byLabel := map[string]Correlation{}
	for _, c := range cors {
		byLabel[c.Label] = c
	}
	// Signs and rough strengths must match the paper.
	if c := byLabel["XL-GP share vs centralization"]; c.Rho < 0.6 {
		t.Errorf("XL correlation = %v, paper 0.90", c.Rho)
	}
	if c := byLabel["L-RP share vs centralization"]; c.Rho > -0.3 {
		t.Errorf("L-RP correlation = %v, paper −0.72", c.Rho)
	}
	if c := byLabel["hosting insularity vs centralization"]; c.Rho > -0.2 {
		t.Errorf("insularity correlation = %v, paper −0.61", c.Rho)
	}
}

func TestCaseStudies(t *testing.T) {
	_, mc := measuredCorpus(t)
	deps := CaseStudies(mc)
	byPair := map[[2]string]CrossDep{}
	for _, d := range deps {
		byPair[[2]string{d.Country, d.OnCountry}] = d
	}
	tm := byPair[[2]string{"TM", "RU"}]
	if math.Abs(tm.Share-0.33) > 0.08 {
		t.Errorf("TM→RU = %v, paper 0.33", tm.Share)
	}
	sk := byPair[[2]string{"SK", "CZ"}]
	if math.Abs(sk.Share-0.26) > 0.08 {
		t.Errorf("SK→CZ = %v, paper 0.26", sk.Share)
	}
	// Ukraine must NOT depend on Russia.
	if ua, ok := byPair[[2]string{"UA", "RU"}]; ok && ua.Share > 0.1 {
		t.Errorf("UA→RU = %v, should be small", ua.Share)
	}
}

func TestLongitudinal(t *testing.T) {
	w, mc := measuredCorpus(t)
	next, err := worldgen.BuildNextEpoch(w, "2025-05")
	if err != nil {
		t.Fatal(err)
	}
	measuredB, err := pipeline.FromWorld(w).MeasureWorld(next)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Longitudinal(mc, measuredB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho < 0.93 {
		t.Errorf("longitudinal rho = %v, paper 0.98", res.Rho)
	}
	if math.Abs(res.MeanJaccard-0.37) > 0.08 {
		t.Errorf("mean Jaccard = %v, paper 0.37", res.MeanJaccard)
	}
	if res.MeanCloudflareDelta <= 0 {
		t.Errorf("mean Cloudflare delta = %v, paper +3.8pts", res.MeanCloudflareDelta)
	}
	if res.LargestIncrease.Code != "BR" {
		t.Errorf("largest increase = %s, paper Brazil", res.LargestIncrease.Code)
	}
	if res.LargestDecrease.Code == "" {
		t.Error("no largest decrease found")
	}
}

func TestTLDBreakdownsAndStudy(t *testing.T) {
	_, mc := measuredCorpus(t)
	rows := TLDBreakdowns(mc)
	if len(rows) != len(testCountries) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		var sum float64
		for _, share := range row.Shares {
			sum += share
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s TLD shares sum to %v", row.Country, sum)
		}
	}
	// The US row is .com-dominated.
	for _, row := range rows {
		if row.Country == "US" && row.Shares[tldinfo.Com] < 0.5 {
			t.Errorf("US .com share = %v, paper 0.77", row.Shares[tldinfo.Com])
		}
	}

	study, err := StudyTLD(mc)
	if err != nil {
		t.Fatal(err)
	}
	if study.MeanScore < 0.2 || study.MeanScore > 0.45 {
		t.Errorf("TLD mean = %v, paper 0.3262", study.MeanScore)
	}
	if study.HostingTLDInsularityRho < 0.2 {
		t.Errorf("hosting↔TLD insularity rho = %v, paper 0.70", study.HostingTLDInsularityRho)
	}
}

func TestSortedInsularityOrdering(t *testing.T) {
	_, mc := measuredCorpus(t)
	rows := SortedInsularity(mc, countries.Hosting)
	for i := 1; i < len(rows); i++ {
		if rows[i].Value > rows[i-1].Value {
			t.Fatalf("not sorted at %d", i)
		}
	}
	// The US is the most insular hosting country (paper: 92.1%).
	if rows[0].Code != "US" {
		t.Errorf("most insular = %s, paper US", rows[0].Code)
	}
}

func TestByContinent(t *testing.T) {
	_, mc := measuredCorpus(t)
	aggs := ByContinent(mc.Scores(countries.Hosting))
	if len(aggs) < 4 {
		t.Fatalf("continents = %d", len(aggs))
	}
	var asia, europe *RegionAggregate
	for i := range aggs {
		switch aggs[i].Continent {
		case "AS":
			asia = &aggs[i]
		case "EU":
			europe = &aggs[i]
		}
	}
	if asia == nil || europe == nil {
		t.Fatal("AS or EU missing")
	}
	// Europe is consistently less centralized than Asia in hosting
	// (Figure 5's continental pattern).
	if europe.Mean >= asia.Mean {
		t.Errorf("EU mean %v should be below AS %v", europe.Mean, asia.Mean)
	}
	for _, a := range aggs {
		if a.Countries == 0 || a.Min > a.Max {
			t.Errorf("bad aggregate %+v", a)
		}
	}
}

func TestExcludeDegraded(t *testing.T) {
	c := dataset.NewCorpus("2023-05")
	c.Workers = 3
	for _, cc := range []string{"TH", "US", "BR"} {
		c.Add(&dataset.CountryList{Country: cc, Epoch: "2023-05"})
	}
	c.SetCoverage(&dataset.Coverage{Country: "TH"})
	c.SetCoverage(&dataset.Coverage{Country: "US", Degraded: true})
	c.SetCoverage(&dataset.Coverage{Country: "BR"})

	got := ExcludeDegraded(c)
	if got == c {
		t.Fatal("corpus with a degraded country returned unchanged")
	}
	want := []string{"BR", "TH"}
	ccs := got.Countries()
	if len(ccs) != len(want) || ccs[0] != want[0] || ccs[1] != want[1] {
		t.Errorf("Countries = %v, want %v", ccs, want)
	}
	if got.Workers != 3 || got.Epoch != "2023-05" {
		t.Errorf("corpus metadata not carried over: %+v", got)
	}
	// The excluded country's coverage stays reportable.
	if cov := got.CoverageOf("US"); cov == nil || !cov.Degraded {
		t.Errorf("excluded coverage lost: %+v", cov)
	}

	// Pass-through cases: nothing degraded, and no coverage at all.
	clean := dataset.NewCorpus("x")
	clean.Add(&dataset.CountryList{Country: "TH", Epoch: "x"})
	if ExcludeDegraded(clean) != clean {
		t.Error("coverage-free corpus was copied")
	}
}
