package tldinfo

import (
	"strings"
	"testing"
)

// FuzzExtract drives the TLD extractor with arbitrary domain strings: it
// must never panic, and every non-empty result must satisfy the extractor's
// contract — lowercase, dot-free, a suffix of the normalized input — and
// classify consistently with the ccTLD ownership tables.
//
// Run with `go test -fuzz=FuzzExtract ./internal/tldinfo` for open-ended
// fuzzing; the seed corpus runs under plain `go test`.
func FuzzExtract(f *testing.F) {
	for _, seed := range []string{
		"", ".", "..", "com", "example.com", "EXAMPLE.COM.", "example.co.th",
		"www.example.co.uk", "xn--fiqs8s.example.中国", "a.b.c.d.e.f.io",
		" spaced.com ", "trailing.dot.", "no-tld", "ends-with-dot..",
		"\x00binary.com", "mixed.CaSe.Th",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, domain string) {
		tld := Extract(domain)

		// Recompute the extractor's normalization to check the contract.
		norm := strings.TrimSuffix(strings.ToLower(strings.TrimSpace(domain)), ".")
		if tld == "" {
			return // empty/invalid inputs legitimately yield no TLD
		}
		if tld != strings.ToLower(tld) {
			t.Fatalf("Extract(%q) = %q is not lowercase", domain, tld)
		}
		if strings.Contains(tld, ".") {
			t.Fatalf("Extract(%q) = %q contains a dot", domain, tld)
		}
		if !strings.HasSuffix(norm, tld) {
			t.Fatalf("Extract(%q) = %q is not a suffix of %q", domain, tld, norm)
		}
		// Extracting from the TLD itself must be a fixed point (except for
		// labels with leading whitespace, which re-normalize on the way in).
		if strings.TrimSpace(tld) == tld {
			if again := Extract(tld); again != tld {
				t.Fatalf("Extract(%q) = %q, but Extract(%q) = %q", domain, tld, tld, again)
			}
		}

		// Classification must agree with the ownership tables for every
		// perspective country.
		owner := CountryForCCTLD(tld)
		for _, cc := range []string{"US", "TH", owner} {
			if cc == "" {
				continue
			}
			kind := Classify(tld, cc)
			switch {
			case tld == "com":
				if kind != Com {
					t.Fatalf("Classify(com, %s) = %v", cc, kind)
				}
			case owner == "":
				if kind != GlobalTLD {
					t.Fatalf("Classify(%q, %s) = %v for unowned TLD", tld, cc, kind)
				}
			case owner == cc:
				if kind != LocalCC {
					t.Fatalf("Classify(%q, %s) = %v, want LocalCC", tld, cc, kind)
				}
			default:
				if kind != ExternalCC {
					t.Fatalf("Classify(%q, %s) = %v, want ExternalCC", tld, cc, kind)
				}
			}
		}

		// InsularTo: .com is insular to the U.S.; ccTLDs to their owner;
		// other gTLDs to no one.
		switch ins := InsularTo(tld); {
		case tld == "com" && ins != "US":
			t.Fatalf("InsularTo(com) = %q", ins)
		case tld != "com" && ins != owner:
			t.Fatalf("InsularTo(%q) = %q, owner %q", tld, ins, owner)
		}
	})
}
