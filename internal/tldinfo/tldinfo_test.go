package tldinfo

import (
	"testing"

	"github.com/webdep/webdep/internal/countries"
)

func TestStudyCodesMatchCountriesPackage(t *testing.T) {
	want := countries.Codes()
	if len(studyCountryCodes) != len(want) {
		t.Fatalf("tldinfo has %d codes, countries has %d", len(studyCountryCodes), len(want))
	}
	for i, code := range want {
		if studyCountryCodes[i] != code {
			t.Fatalf("code %d: %q vs %q", i, studyCountryCodes[i], code)
		}
	}
}

func TestExtract(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"example.com", "com"},
		{"example.co.th", "th"},
		{"EXAMPLE.RU", "ru"},
		{"example.com.", "com"},
		{"  example.io ", "io"},
		{"localhost", "localhost"},
		{"", ""},
		{".", ""},
	}
	for _, c := range cases {
		if got := Extract(c.in); got != c.want {
			t.Errorf("Extract(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCCTLDFor(t *testing.T) {
	if got := CCTLDFor("RU"); got != "ru" {
		t.Errorf("RU → %q", got)
	}
	if got := CCTLDFor("GB"); got != "uk" {
		t.Errorf("GB → %q, want uk", got)
	}
	if got := CCTLDFor("us"); got != "us" {
		t.Errorf("lowercase input: %q", got)
	}
}

func TestCountryForCCTLD(t *testing.T) {
	if got := CountryForCCTLD("uk"); got != "GB" {
		t.Errorf("uk → %q", got)
	}
	if got := CountryForCCTLD("TH"); got != "TH" {
		t.Errorf("th → %q", got)
	}
	if got := CountryForCCTLD("com"); got != "" {
		t.Errorf("com → %q, want empty", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		tld, country string
		want         Kind
	}{
		{"com", "US", Com},
		{"com", "TH", Com},
		{"org", "US", GlobalTLD},
		{"io", "DE", GlobalTLD},
		{"newgtld", "DE", GlobalTLD}, // unknown → global
		{"th", "TH", LocalCC},
		{"ru", "KG", ExternalCC}, // CIS on .ru
		{"fr", "SN", ExternalCC}, // former colony on .fr
		{"uk", "GB", LocalCC},
		{"de", "AT", ExternalCC},
	}
	for _, c := range cases {
		if got := Classify(c.tld, c.country); got != c.want {
			t.Errorf("Classify(%q, %q) = %v, want %v", c.tld, c.country, got, c.want)
		}
	}
}

func TestInsularTo(t *testing.T) {
	if got := InsularTo("com"); got != "US" {
		t.Errorf("com insular to %q, want US", got)
	}
	if got := InsularTo("ru"); got != "RU" {
		t.Errorf("ru insular to %q", got)
	}
	if got := InsularTo("org"); got != "" {
		t.Errorf("org insular to %q, want none", got)
	}
}

func TestKindString(t *testing.T) {
	if Com.String() != "com" || GlobalTLD.String() != "Global TLDs" ||
		LocalCC.String() != "Local ccTLD" || ExternalCC.String() != "External ccTLDs" {
		t.Error("Kind labels wrong")
	}
	if Kind(42).String() != "unknown" {
		t.Error("unknown kind label wrong")
	}
}
