// Package tldinfo extracts and classifies top-level domains for the paper's
// TLD layer (Appendix B): .com, other global gTLDs, a country's own ccTLD,
// and external ccTLDs.
package tldinfo

import "strings"

// Kind classifies a TLD from the point of view of a particular country.
type Kind int

const (
	// Com is the .com TLD, broken out because it drives TLD centralization
	// globally (and is treated as insular to the U.S. in the paper's
	// Figure 22, given the historical role of the U.S. government in its
	// operation).
	Com Kind = iota
	// GlobalTLD is any other gTLD (.org, .net, .io, …).
	GlobalTLD
	// LocalCC is the country's own ccTLD.
	LocalCC
	// ExternalCC is another country's ccTLD.
	ExternalCC
)

// String returns the display name used in the paper's Figure 16 legend.
func (k Kind) String() string {
	switch k {
	case Com:
		return "com"
	case GlobalTLD:
		return "Global TLDs"
	case LocalCC:
		return "Local ccTLD"
	case ExternalCC:
		return "External ccTLDs"
	default:
		return "unknown"
	}
}

// gTLDs are well-known non-com global TLDs. Classification treats any TLD
// that is neither .com nor a studied ccTLD as global (new-gTLD explosion),
// matching the paper's coarse four-way split; this set exists so adopters
// can distinguish legacy gTLDs from the long tail. Note that ccTLDs of
// studied countries (e.g. .co for Colombia, .me for Montenegro) classify as
// ccTLDs, taking precedence over their popular generic use.
var gTLDs = map[string]bool{
	"org": true, "net": true, "info": true, "biz": true, "edu": true,
	"gov": true, "mil": true, "int": true, "io": true,
	"tv": true, "cc": true, "app": true, "dev": true,
	"xyz": true, "online": true, "site": true, "shop": true, "store": true,
	"blog": true, "news": true, "live": true, "cloud": true, "ai": true,
}

// IsLegacyGTLD reports whether the TLD is one of the well-known global
// TLDs listed above.
func IsLegacyGTLD(tld string) bool { return gTLDs[strings.ToLower(tld)] }

// ccTLDException maps ISO country codes whose ccTLD differs from the
// lowercase ISO code. (Among the study's 150 countries only the United
// Kingdom needs this: GB uses .uk.)
var ccTLDException = map[string]string{
	"GB": "uk",
}

// ccTLDToCountry is the inverse map, built at init from the study's country
// codes plus a handful of ccTLDs that appear in cross-border usage.
var ccTLDToCountry = map[string]string{}

// studyCountryCodes mirrors internal/countries without importing it, to
// keep tldinfo dependency-free for external adopters. The set is validated
// against internal/countries in the tests.
var studyCountryCodes = []string{
	"AE", "AF", "AL", "AM", "AO", "AR", "AT", "AU", "AZ", "BA", "BD", "BE",
	"BF", "BG", "BH", "BJ", "BN", "BO", "BR", "BW", "BY", "CA", "CD", "CH",
	"CI", "CL", "CM", "CO", "CR", "CU", "CY", "CZ", "DE", "DK", "DO", "DZ",
	"EC", "EE", "EG", "ES", "ET", "FI", "FR", "GA", "GB", "GE", "GH", "GP",
	"GR", "GT", "HK", "HN", "HR", "HT", "HU", "ID", "IE", "IL", "IN", "IQ",
	"IR", "IS", "IT", "JM", "JO", "JP", "KE", "KG", "KH", "KR", "KW", "KZ",
	"LA", "LB", "LK", "LT", "LU", "LV", "LY", "MA", "MD", "ME", "MG", "MK",
	"ML", "MM", "MN", "MO", "MQ", "MT", "MU", "MV", "MW", "MX", "MY", "MZ",
	"NA", "NG", "NI", "NL", "NO", "NP", "NZ", "OM", "PA", "PE", "PG", "PH",
	"PK", "PL", "PR", "PS", "PT", "PY", "QA", "RE", "RO", "RS", "RU", "RW",
	"SA", "SD", "SE", "SG", "SI", "SK", "SN", "SO", "SV", "SY", "TG", "TH",
	"TJ", "TM", "TN", "TR", "TT", "TW", "TZ", "UA", "UG", "US", "UY", "UZ",
	"VE", "VN", "YE", "ZA", "ZM", "ZW",
}

func init() {
	for _, code := range studyCountryCodes {
		ccTLDToCountry[CCTLDFor(code)] = code
	}
}

// CCTLDFor returns the ccTLD (without dot) for an ISO country code.
func CCTLDFor(countryCode string) string {
	code := strings.ToUpper(countryCode)
	if tld, ok := ccTLDException[code]; ok {
		return tld
	}
	return strings.ToLower(code)
}

// CountryForCCTLD returns the ISO country code owning a ccTLD, or "" if the
// TLD is not a ccTLD of a studied country.
func CountryForCCTLD(tld string) string {
	return ccTLDToCountry[strings.ToLower(tld)]
}

// Extract returns the TLD (final DNS label, lowercased, no dot) of a
// domain, or "" for an empty/invalid name.
func Extract(domain string) string {
	d := strings.TrimSuffix(strings.ToLower(strings.TrimSpace(domain)), ".")
	if d == "" {
		return ""
	}
	idx := strings.LastIndexByte(d, '.')
	if idx == len(d)-1 {
		return ""
	}
	return d[idx+1:]
}

// Classify determines the kind of TLD from the perspective of the given
// country (ISO code of the CrUX list the site appears on).
func Classify(tld, country string) Kind {
	t := strings.ToLower(tld)
	if t == "com" {
		return Com
	}
	if owner := CountryForCCTLD(t); owner != "" {
		if owner == strings.ToUpper(country) {
			return LocalCC
		}
		return ExternalCC
	}
	return GlobalTLD
}

// InsularTo returns the country to which use of this TLD is considered
// insular: the ccTLD's country, or the U.S. for .com (per the paper's
// Figure 22 note), or "" for other gTLDs.
func InsularTo(tld string) string {
	t := strings.ToLower(tld)
	if t == "com" {
		return "US"
	}
	return CountryForCCTLD(t)
}
