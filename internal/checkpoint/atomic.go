package checkpoint

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file via write-temp → fsync → rename so readers
// (and crash recovery) only ever observe the old complete content or the
// new complete content, never a torn file. The temp file lives in path's
// directory so the rename stays on one filesystem; the directory itself is
// fsynced afterwards so the rename survives a crash too. On any error the
// temp file is removed and the destination is untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// Until the rename succeeds, every exit removes the temp file.
	defer os.Remove(tmpName)

	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	// Persist the rename. Directory fsync is advisory on some platforms;
	// a failure here does not un-write the file, so it is not fatal.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
