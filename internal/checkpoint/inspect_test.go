package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// inspectJournalBytes builds a real shard journal on disk and returns its
// bytes, so InspectBytes is exercised against the production writer.
func inspectJournalBytes(t *testing.T, sites int) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "w0-g1.journal")
	sh := &ShardInfo{Worker: "w0", Index: 0, Total: 2, Gen: 1}
	j, err := CreateShard(path, "2023-05", []string{"CZ", "TH"}, sh, &Options{Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sites; i++ {
		j.Append("TH", dataset.Website{Domain: "d" + string(rune('a'+i)) + ".th", Country: "TH", Rank: i + 1},
			dataset.SiteOutcome{Host: dataset.StatusOK, NS: dataset.StatusOK, CA: dataset.StatusOK, Language: dataset.StatusOK})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestInspectBytesReadsHeaderAndSites(t *testing.T) {
	data := inspectJournalBytes(t, 3)
	info, err := InspectBytes(data, "wire")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != Version || info.Epoch != "2023-05" {
		t.Errorf("header = version %d epoch %q", info.Version, info.Epoch)
	}
	if len(info.Countries) != 2 || info.Countries[0] != "CZ" || info.Countries[1] != "TH" {
		t.Errorf("countries = %v", info.Countries)
	}
	if info.Shard == nil || info.Shard.Worker != "w0" || info.Shard.Gen != 1 {
		t.Errorf("shard = %+v", info.Shard)
	}
	if info.Sites != 3 || info.Truncated {
		t.Errorf("sites = %d truncated = %v, want 3 clean records", info.Sites, info.Truncated)
	}
}

func TestInspectBytesToleratesTornTail(t *testing.T) {
	data := inspectJournalBytes(t, 2)
	// Chop mid-way through the final record: the torn tail must be dropped,
	// not refused.
	info, err := InspectBytes(data[:len(data)-5], "wire")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated || info.Sites != 1 {
		t.Errorf("info = %+v, want 1 site with a truncation", info)
	}
}

func TestInspectBytesRefusesMidFileCorruption(t *testing.T) {
	data := inspectJournalBytes(t, 3)
	// Flip a byte well before the final record: hard corruption, typed.
	data[len(data)/2] ^= 0xFF
	var ce *CorruptError
	if _, err := InspectBytes(data, "wire"); !errors.As(err, &ce) {
		t.Fatalf("mid-file corruption returned %T (%v), want *CorruptError", err, err)
	} else if ce.Path != "wire" || ce.Offset <= 0 {
		t.Errorf("corrupt error = %+v, want the caller's name and a real offset", ce)
	}
	if _, err := InspectBytes([]byte("NOTAJRNL"), "wire"); !errors.As(err, &ce) {
		t.Fatalf("bad magic returned %T (%v), want *CorruptError", err, err)
	}
}

func TestInspectBytesHeaderlessPrefix(t *testing.T) {
	// A strict prefix of the magic is a torn first write: no header, no
	// sites, flagged truncated — never an error.
	info, err := InspectBytes([]byte("WDEP"), "wire")
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != "" || info.Sites != 0 || !info.Truncated {
		t.Errorf("info = %+v, want an empty truncated info", info)
	}
	info, err = InspectBytes(nil, "wire")
	if err != nil {
		t.Fatal(err)
	}
	if info.Truncated || info.Sites != 0 {
		t.Errorf("empty input = %+v", info)
	}
}
