// Package checkpoint gives long-running live crawls crash safety: an
// append-only journal of completed per-site probe results that a resumed
// crawl replays to skip finished work, so a campaign killed mid-flight
// converges to the exact corpus a single uninterrupted run produces.
//
// # Journal format
//
// A journal file starts with an 8-byte magic ("WDEPCKP1") followed by
// length-prefixed, CRC32-checksummed records:
//
//	u32le payload length | u32le CRC32(payload) | payload
//
// The first record is a versioned JSON header carrying the crawl's epoch
// and country set; every later record is one completed site keyed by
// (country, domain) and carrying the full dataset.Website plus its
// dataset.SiteOutcome. Appends are one Write call per record, so a crash
// tears at most the final record.
//
// # Recovery semantics
//
// On resume, a truncated or checksum-corrupt FINAL record is a torn tail —
// the expected residue of a crash mid-append — and is silently dropped
// (the journal is compacted to a clean file, counted in the truncations
// stat). A checksum failure anywhere BEFORE the last record is hard
// corruption: discarding it would also discard the good records after it,
// so Resume refuses with a *CorruptError naming the byte offset. A journal
// torn before its header survived (or an empty file) resumes as a fresh
// journal: nothing was durably recorded, so nothing can be skipped.
//
// # Degradation
//
// A write or fsync error mid-crawl disarms checkpointing: the crawl keeps
// going, later appends are dropped, the "checkpoint.armed" gauge falls to
// zero, and Err reports the failure so the caller can warn that the
// journal is incomplete. Losing the checkpoint disk must cost the
// campaign its restartability, never its results.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// Version is the journal header version this package writes and accepts.
const Version = 1

// magic identifies a checkpoint journal; the trailing digit is the frame
// format generation, bumped only if the framing itself (not the header)
// ever changes incompatibly.
var magic = []byte("WDEPCKP1")

// maxRecordBytes bounds a single record's payload. Appends never approach
// it (a site record is a few hundred bytes); recovery uses it to tell a
// garbage length prefix from a legitimate frame.
const maxRecordBytes = 1 << 26

// WriteSyncer is the journal's underlying write target: an *os.File in
// production, wrappable (Options.WrapWriter) for fault injection.
type WriteSyncer interface {
	io.Writer
	Sync() error
}

// Options tunes a journal; the zero value (or nil) is production defaults.
type Options struct {
	// Obs selects the metrics registry; nil means obs.Default().
	Obs *obs.Registry
	// OnDisarm, when non-nil, is called exactly once — outside the
	// journal's lock — if checkpointing disarms after a write failure.
	OnDisarm func(error)
	// WrapWriter, when non-nil, wraps the journal's append-path writer.
	// It exists for fault injection (e.g. faultinject.KillWriter crashes
	// the stream at an exact byte); production leaves it nil.
	WrapWriter func(WriteSyncer) WriteSyncer
	// SyncEvery fsyncs after every Nth appended record; <= 1 means every
	// record, the durable default.
	SyncEvery int
}

// Key identifies one journaled site.
type Key struct {
	Country, Domain string
}

// Entry is one journaled site result.
type Entry struct {
	Site    dataset.Website
	Outcome dataset.SiteOutcome
}

// Stats is the journal's own accounting, kept independently of the obs
// registry so tests can cross-check the two channels exactly.
type Stats struct {
	// RecordsWritten counts site records durably appended this process.
	RecordsWritten int64
	// RecordsReplayed counts site records read back by Resume, including
	// ones later superseded by a duplicate key.
	RecordsReplayed int64
	// SitesSkipped counts Reuse hits: sites the crawl did not re-probe.
	SitesSkipped int64
	// SitesReprobed counts Reuse misses: sites probed live under
	// checkpointing (on a fresh journal, every site).
	SitesReprobed int64
	// Truncations counts torn-tail recoveries (at most one per Resume).
	Truncations int64
	// WriteErrors counts append-path failures; the first one disarms.
	WriteErrors int64
	// Compactions counts atomic journal rewrites.
	Compactions int64
	// Fsyncs counts append-path fsyncs.
	Fsyncs int64

	// The Merge* fields are a Merger's accounting; a Journal leaves them
	// zero. Refused partial journals must be observable: a federated merge
	// that silently skipped an unreadable shard would present a partial
	// corpus as complete.

	// MergeJournals counts partial journals a Merger accepted.
	MergeJournals int64
	// MergeRecords counts site records folded in across accepted journals,
	// including entries later superseded by a newer generation.
	MergeRecords int64
	// MergeRefusalsForeign counts partial journals refused at merge time
	// for belonging to another campaign: wrong epoch, country set, or
	// journal version.
	MergeRefusalsForeign int64
	// MergeRefusalsCorrupt counts partial journals refused at merge time
	// for mid-file corruption (a torn FINAL record is tolerated — it is the
	// expected residue of a worker crash — but corruption with good records
	// after it is not).
	MergeRefusalsCorrupt int64
}

// CorruptError reports unrecoverable journal corruption: a record that
// fails its checksum (or cannot decode) with good records after it, where
// truncating would silently discard completed work.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint: %s: corrupt journal at byte offset %d: %s", e.Path, e.Offset, e.Reason)
}

// ShardInfo identifies one federated worker's partial journal: which
// vantage wrote it, its place in the federation, and the dispatch
// generation (re-dispatch waves increment it). A journal carrying a
// ShardInfo is one worker's slice of a sharded crawl — it must be merged
// with its sibling shards, never resumed as a whole-crawl journal.
type ShardInfo struct {
	// Worker is the vantage/worker identifier (e.g. "w2").
	Worker string `json:"worker"`
	// Index is the worker's 0-based index in the federation.
	Index int `json:"index"`
	// Total is how many workers the federation was configured with.
	Total int `json:"total"`
	// Gen is the 1-based dispatch generation this journal belongs to;
	// shard re-assignment after a worker failure starts a new generation.
	Gen int `json:"gen"`
}

func (s *ShardInfo) String() string {
	return fmt.Sprintf("worker %q (%d/%d, gen %d)", s.Worker, s.Index+1, s.Total, s.Gen)
}

// header is the journal's first record. Shard is nil for a whole-crawl
// journal; pre-shard journals decode with Shard nil, so they stay
// resumable by this build.
type header struct {
	Version   int        `json:"version"`
	Epoch     string     `json:"epoch"`
	Countries []string   `json:"countries"`
	Shard     *ShardInfo `json:"shard,omitempty"`
}

// siteRecord is the wire form of one journaled site.
type siteRecord struct {
	Country string              `json:"country"`
	Site    dataset.Website     `json:"site"`
	Outcome dataset.SiteOutcome `json:"outcome"`
}

// journalMetrics are the hoisted obs instruments, dual-recording the same
// events as Stats.
type journalMetrics struct {
	recordsWritten  *obs.Counter
	recordsReplayed *obs.Counter
	sitesSkipped    *obs.Counter
	sitesReprobed   *obs.Counter
	truncations     *obs.Counter
	writeErrors     *obs.Counter
	compactions     *obs.Counter
	armed           *obs.Gauge
	fsyncMS         *obs.Histogram

	mergeJournals        *obs.Counter
	mergeRecords         *obs.Counter
	mergeRefusalsForeign *obs.Counter
	mergeRefusalsCorrupt *obs.Counter
}

func newJournalMetrics(r *obs.Registry) *journalMetrics {
	if r == nil {
		r = obs.Default()
	}
	return &journalMetrics{
		recordsWritten:  r.Counter("checkpoint.records_written"),
		recordsReplayed: r.Counter("checkpoint.records_replayed"),
		sitesSkipped:    r.Counter("checkpoint.sites_skipped"),
		sitesReprobed:   r.Counter("checkpoint.sites_reprobed"),
		truncations:     r.Counter("checkpoint.truncations"),
		writeErrors:     r.Counter("checkpoint.write_errors"),
		compactions:     r.Counter("checkpoint.compactions"),
		armed:           r.Gauge("checkpoint.armed"),
		fsyncMS:         r.Timing("checkpoint.fsync_ms"),

		mergeJournals:        r.Counter("checkpoint.merge_journals"),
		mergeRecords:         r.Counter("checkpoint.merge_records"),
		mergeRefusalsForeign: r.Counter("checkpoint.merge_refusals_foreign"),
		mergeRefusalsCorrupt: r.Counter("checkpoint.merge_refusals_corrupt"),
	}
}

// Journal is a crash-safe record of completed site probes. One journal
// serves one crawl; Append and Reuse are safe for concurrent use by the
// crawl's workers.
type Journal struct {
	path      string
	epoch     string
	countries []string   // sorted copy
	shard     *ShardInfo // nil for a whole-crawl journal
	onDisarm  func(error)
	wrap      func(WriteSyncer) WriteSyncer
	syncEvery int
	m         *journalMetrics

	// replay is the resume-time map, frozen before the crawl starts, so
	// Reuse reads it without locking.
	replay map[Key]Entry

	mu        sync.Mutex
	f         *os.File
	w         WriteSyncer
	armed     bool
	disarmErr error
	appended  map[Key]Entry // records written this process, for Compact
	sinceSync int
	disarmed  bool // OnDisarm already delivered

	stats struct {
		recordsWritten  atomic.Int64
		recordsReplayed atomic.Int64
		sitesSkipped    atomic.Int64
		sitesReprobed   atomic.Int64
		truncations     atomic.Int64
		writeErrors     atomic.Int64
		compactions     atomic.Int64
		fsyncs          atomic.Int64
	}
}

func newJournal(path, epoch string, countries []string, opts *Options) (*Journal, error) {
	if epoch == "" {
		return nil, fmt.Errorf("checkpoint: journal needs a non-empty epoch")
	}
	if len(countries) == 0 {
		return nil, fmt.Errorf("checkpoint: journal needs a non-empty country set")
	}
	if opts == nil {
		opts = &Options{}
	}
	j := &Journal{
		path:      path,
		epoch:     epoch,
		countries: sortedCopy(countries),
		onDisarm:  opts.OnDisarm,
		wrap:      opts.WrapWriter,
		syncEvery: opts.SyncEvery,
		m:         newJournalMetrics(opts.Obs),
		replay:    map[Key]Entry{},
		appended:  map[Key]Entry{},
	}
	return j, nil
}

// attach points the journal at its file, applying the fault-injection
// wrapper to the append path.
func (j *Journal) attach(f *os.File) {
	j.f = f
	j.w = WriteSyncer(f)
	if j.wrap != nil {
		j.w = j.wrap(j.w)
	}
	j.armed = true
	j.m.armed.Set(1)
}

// Create starts a fresh journal for the crawl, truncating any existing
// file at path. The magic and header are written (and fsynced) before
// Create returns; if that first write fails the journal comes back
// disarmed — the crawl can proceed, it just is not restartable.
func Create(path, epoch string, countries []string, opts *Options) (*Journal, error) {
	return create(path, epoch, countries, nil, opts)
}

// CreateShard starts a fresh partial journal for one federated worker's
// dispatch: the header carries the shard descriptor, marking the file as
// one vantage's slice of a sharded crawl. A shard journal is refused by
// Resume — its completion story is the merge step, not a single-process
// resume.
func CreateShard(path, epoch string, countries []string, shard *ShardInfo, opts *Options) (*Journal, error) {
	if shard == nil {
		return nil, fmt.Errorf("checkpoint: CreateShard needs a shard descriptor")
	}
	if shard.Worker == "" || shard.Total <= 0 || shard.Index < 0 || shard.Index >= shard.Total {
		return nil, fmt.Errorf("checkpoint: invalid shard descriptor %+v", *shard)
	}
	sh := *shard
	return create(path, epoch, countries, &sh, opts)
}

func create(path, epoch string, countries []string, shard *ShardInfo, opts *Options) (*Journal, error) {
	j, err := newJournal(path, epoch, countries, opts)
	if err != nil {
		return nil, err
	}
	j.shard = shard
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	j.attach(f)
	j.writeHeaderLocked()
	cb, cberr := j.takeDisarmLocked()
	j.mu.Unlock()
	if cb != nil {
		cb(cberr)
	}
	return j, nil
}

// Resume reopens an existing journal, recovers a torn tail, validates the
// header against the crawl's epoch and country set, and loads the replay
// map. A journal recorded for a different epoch or country set is an
// error — results from another campaign must never merge silently. A
// journal torn before its header survived resumes as a fresh journal.
func Resume(path, epoch string, countries []string, opts *Options) (*Journal, error) {
	j, err := newJournal(path, epoch, countries, opts)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open journal for resume: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: read journal: %w", err)
	}
	sc, err := scan(data, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if sc.hdr != nil {
		if sc.hdr.Shard != nil {
			// A federated shard journal holds one vantage's slice of the
			// crawl; resuming it as if it were the whole campaign would
			// silently skip every other worker's sites. Merge it instead.
			f.Close()
			return nil, fmt.Errorf("checkpoint: %s is a federated shard journal (%s); merge it with its sibling shards instead of resuming it",
				path, sc.hdr.Shard)
		}
		if err := matches(sc.hdr.Epoch, sc.hdr.Countries, epoch, countries); err != nil {
			f.Close()
			return nil, err
		}
		if sc.hdr.Version != Version {
			f.Close()
			return nil, fmt.Errorf("checkpoint: journal version %d, this build reads version %d", sc.hdr.Version, Version)
		}
	}

	dupes := false
	for _, r := range sc.entries {
		k := Key{Country: r.Country, Domain: r.Site.Domain}
		if _, ok := j.replay[k]; ok {
			dupes = true
		}
		j.replay[k] = Entry{Site: r.Site, Outcome: r.Outcome}
	}
	j.stats.recordsReplayed.Add(int64(len(sc.entries)))
	j.m.recordsReplayed.Add(int64(len(sc.entries)))
	if sc.truncated {
		j.stats.truncations.Add(1)
		j.m.truncations.Inc()
	}

	j.mu.Lock()
	defer func() {
		cb, cberr := j.takeDisarmLocked()
		j.mu.Unlock()
		if cb != nil {
			cb(cberr)
		}
	}()
	switch {
	case sc.hdr == nil:
		// Nothing durable survived (empty file or a tear inside the
		// magic/header): start the journal over in place.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		j.attach(f)
		j.writeHeaderLocked()
	case sc.truncated || dupes:
		// Drop the torn tail and superseded duplicates by atomically
		// rewriting the journal: write-temp → fsync → rename. In-place
		// truncation would also work for the tail, but the rewrite handles
		// both cases and never exposes a half-recovered file.
		f.Close()
		if err := writeJournalFile(path, j.headerRecord(), j.replay); err != nil {
			return nil, fmt.Errorf("checkpoint: compacting recovered journal: %w", err)
		}
		j.stats.compactions.Add(1)
		j.m.compactions.Inc()
		nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := nf.Seek(0, io.SeekEnd); err != nil {
			nf.Close()
			return nil, err
		}
		j.attach(nf)
	default:
		// Clean journal: append after the last record (ReadAll left the
		// cursor at EOF, but be explicit).
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, err
		}
		j.attach(f)
	}
	return j, nil
}

// Epoch returns the epoch the journal was created for.
func (j *Journal) Epoch() string { return j.epoch }

// Countries returns the journal's country set, sorted.
func (j *Journal) Countries() []string { return append([]string(nil), j.countries...) }

// Shard returns the journal's shard descriptor, or nil for a whole-crawl
// journal.
func (j *Journal) Shard() *ShardInfo {
	if j.shard == nil {
		return nil
	}
	sh := *j.shard
	return &sh
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// ReplayedSites returns how many distinct sites the resume loaded.
func (j *Journal) ReplayedSites() int { return len(j.replay) }

// Matches reports whether the journal belongs to the given crawl: same
// epoch, same country set. CrawlCorpus refuses a mismatched journal.
func (j *Journal) Matches(epoch string, countries []string) error {
	return matches(j.epoch, j.countries, epoch, countries)
}

func matches(haveEpoch string, haveCCs []string, wantEpoch string, wantCCs []string) error {
	if haveEpoch != wantEpoch {
		return fmt.Errorf("checkpoint: journal epoch %q does not match crawl epoch %q", haveEpoch, wantEpoch)
	}
	have, want := sortedCopy(haveCCs), sortedCopy(wantCCs)
	if len(have) != len(want) {
		return fmt.Errorf("checkpoint: journal countries %v do not match crawl countries %v", have, want)
	}
	for i := range have {
		if have[i] != want[i] {
			return fmt.Errorf("checkpoint: journal countries %v do not match crawl countries %v", have, want)
		}
	}
	return nil
}

// Reuse returns the journaled result for (country, domain) when one exists
// and is complete — no field lost to a transient failure. A journaled
// record that carries loss is deliberately not reused: resume is the
// moment to win back probes the first run's retry budget could not, so
// the crawl re-probes it and the fresh append supersedes the old record.
// Every call is counted (skipped or re-probed), giving resume its
// accounting.
func (j *Journal) Reuse(country, domain string) (dataset.Website, dataset.SiteOutcome, bool) {
	e, ok := j.replay[Key{Country: country, Domain: domain}]
	if ok && !e.Outcome.Lost() {
		j.stats.sitesSkipped.Add(1)
		j.m.sitesSkipped.Inc()
		return e.Site, e.Outcome, true
	}
	j.stats.sitesReprobed.Add(1)
	j.m.sitesReprobed.Inc()
	return dataset.Website{}, dataset.SiteOutcome{}, false
}

// Append journals one completed site. Each record is a single Write
// followed (subject to SyncEvery) by an fsync, so a crash tears at most
// the final record. Failures never surface to the crawl: the journal
// disarms, drops later appends, and reports through Err.
func (j *Journal) Append(country string, site dataset.Website, outcome dataset.SiteOutcome) {
	payload, err := json.Marshal(siteRecord{Country: country, Site: site, Outcome: outcome})
	if err != nil {
		// A Website is plain data; this cannot fail absent a programming
		// error, and the journal's contract is to never fail the crawl.
		j.disarm(fmt.Errorf("checkpoint: encoding record: %w", err))
		return
	}
	rec := frame(payload)

	j.mu.Lock()
	if !j.armed {
		j.mu.Unlock()
		return
	}
	_, werr := j.w.Write(rec)
	if werr == nil {
		j.sinceSync++
		if j.syncEvery <= 1 || j.sinceSync >= j.syncEvery {
			werr = j.syncLocked()
		}
	}
	if werr != nil {
		j.failLocked(fmt.Errorf("checkpoint: appending record: %w", werr))
		cb, cberr := j.takeDisarmLocked()
		j.mu.Unlock()
		if cb != nil {
			cb(cberr)
		}
		return
	}
	j.appended[Key{Country: country, Domain: site.Domain}] = Entry{Site: site, Outcome: outcome}
	j.mu.Unlock()
	j.stats.recordsWritten.Add(1)
	j.m.recordsWritten.Inc()
}

// Compact atomically rewrites the journal to one record per site (the
// newest record for each key wins) via write-temp → fsync → rename, then
// reopens it for appending. The crawl may keep appending afterwards.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.armed {
		return j.disarmErr
	}
	entries := make(map[Key]Entry, len(j.replay)+len(j.appended))
	for k, e := range j.replay {
		entries[k] = e
	}
	for k, e := range j.appended {
		entries[k] = e
	}
	if err := writeJournalFile(j.path, j.headerRecord(), entries); err != nil {
		return err
	}
	j.f.Close()
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	j.attach(f)
	j.sinceSync = 0
	j.stats.compactions.Add(1)
	j.m.compactions.Inc()
	return nil
}

// Entries returns a copy of every site the journal currently holds,
// replayed and appended, newest record per key.
func (j *Journal) Entries() map[Key]Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[Key]Entry, len(j.replay)+len(j.appended))
	for k, e := range j.replay {
		out[k] = e
	}
	for k, e := range j.appended {
		out[k] = e
	}
	return out
}

// Err returns the error that disarmed checkpointing, or nil while the
// journal is healthy. A non-nil Err after a crawl means the journal is
// incomplete and the run should be flagged non-restartable.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.disarmErr
}

// Armed reports whether the journal is still accepting appends.
func (j *Journal) Armed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.armed
}

// Stats snapshots the journal's own accounting.
func (j *Journal) Stats() Stats {
	return Stats{
		RecordsWritten:  j.stats.recordsWritten.Load(),
		RecordsReplayed: j.stats.recordsReplayed.Load(),
		SitesSkipped:    j.stats.sitesSkipped.Load(),
		SitesReprobed:   j.stats.sitesReprobed.Load(),
		Truncations:     j.stats.truncations.Load(),
		WriteErrors:     j.stats.writeErrors.Load(),
		Compactions:     j.stats.compactions.Load(),
		Fsyncs:          j.stats.fsyncs.Load(),
	}
}

// Close performs a final fsync (when armed and records are pending) and
// releases the file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	var err error
	if j.armed && j.sinceSync > 0 {
		err = j.syncLocked()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	j.armed = false
	return err
}

// disarm records a failure from outside the locked paths.
func (j *Journal) disarm(err error) {
	j.mu.Lock()
	j.failLocked(err)
	cb, cberr := j.takeDisarmLocked()
	j.mu.Unlock()
	if cb != nil {
		cb(cberr)
	}
}

// failLocked flips the journal into the disarmed state. Callers must hold
// j.mu and afterwards deliver the OnDisarm callback via takeDisarmLocked
// outside the lock.
func (j *Journal) failLocked(err error) {
	j.stats.writeErrors.Add(1)
	j.m.writeErrors.Inc()
	if !j.armed {
		return
	}
	j.armed = false
	j.disarmErr = err
	j.m.armed.Set(0)
}

// takeDisarmLocked returns the OnDisarm callback exactly once after the
// journal disarms, for delivery outside the lock.
func (j *Journal) takeDisarmLocked() (func(error), error) {
	if j.armed || j.disarmed || j.disarmErr == nil || j.onDisarm == nil {
		return nil, nil
	}
	j.disarmed = true
	return j.onDisarm, j.disarmErr
}

// syncLocked fsyncs the append path, timing it into checkpoint.fsync_ms.
func (j *Journal) syncLocked() error {
	sp := obs.StartSpan(j.m.fsyncMS)
	err := j.w.Sync()
	sp.End()
	if err != nil {
		return err
	}
	j.sinceSync = 0
	// The obs-side fsync count is the histogram's own observation count;
	// the journal keeps its own tally for the cross-check.
	j.stats.fsyncs.Add(1)
	return nil
}

func (j *Journal) headerRecord() header {
	return header{Version: Version, Epoch: j.epoch, Countries: j.countries, Shard: j.shard}
}

// writeHeaderLocked writes magic + header through the (possibly wrapped)
// append path: two Write calls, then an fsync. Failures disarm.
func (j *Journal) writeHeaderLocked() {
	if _, err := j.w.Write(magic); err != nil {
		j.failLocked(fmt.Errorf("checkpoint: writing magic: %w", err))
		return
	}
	payload, err := json.Marshal(j.headerRecord())
	if err != nil {
		j.failLocked(err)
		return
	}
	if _, err := j.w.Write(frame(payload)); err != nil {
		j.failLocked(fmt.Errorf("checkpoint: writing header: %w", err))
		return
	}
	if err := j.syncLocked(); err != nil {
		j.failLocked(fmt.Errorf("checkpoint: syncing header: %w", err))
	}
}

// writeJournalFile writes a complete journal (magic, header, one record
// per entry in sorted key order) atomically at path.
func writeJournalFile(path string, hdr header, entries map[Key]Entry) error {
	keys := make([]Key, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Country != keys[b].Country {
			return keys[a].Country < keys[b].Country
		}
		return keys[a].Domain < keys[b].Domain
	})
	return WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write(magic); err != nil {
			return err
		}
		payload, err := json.Marshal(hdr)
		if err != nil {
			return err
		}
		if _, err := w.Write(frame(payload)); err != nil {
			return err
		}
		for _, k := range keys {
			e := entries[k]
			payload, err := json.Marshal(siteRecord{Country: k.Country, Site: e.Site, Outcome: e.Outcome})
			if err != nil {
				return err
			}
			if _, err := w.Write(frame(payload)); err != nil {
				return err
			}
		}
		return nil
	})
}

// frame wraps a payload in the length+CRC32 framing as one byte slice, so
// the append path can issue it as a single Write.
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// scanResult is what recovery found in a journal file.
type scanResult struct {
	hdr       *header      // nil when the header itself was torn or absent
	entries   []siteRecord // site records in file order
	truncated bool         // a torn tail was dropped
}

// scan walks the framed records, applying the recovery semantics: any
// well-formed prefix is kept, a torn or corrupt FINAL record marks a
// truncation, and corruption before the last record is a *CorruptError
// carrying the byte offset.
func scan(data []byte, path string) (*scanResult, error) {
	sc := &scanResult{}
	// Magic: a short prefix of it is a torn first write; any mismatch
	// means this is not a journal at all.
	if len(data) < len(magic) {
		if !equalPrefix(data, magic) {
			return nil, &CorruptError{Path: path, Offset: 0, Reason: "not a checkpoint journal (bad magic)"}
		}
		sc.truncated = len(data) > 0
		return sc, nil
	}
	if !equalPrefix(data[:len(magic)], magic) {
		return nil, &CorruptError{Path: path, Offset: 0, Reason: "not a checkpoint journal (bad magic)"}
	}

	off := len(magic)
	idx := 0
	for off < len(data) {
		if len(data)-off < 8 {
			sc.truncated = true
			break
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		end := off + 8 + length
		if length > maxRecordBytes {
			if end > len(data) {
				// A garbage length from a torn frame header almost always
				// points past EOF; recover it as the tail it is.
				sc.truncated = true
				break
			}
			return nil, &CorruptError{Path: path, Offset: int64(off),
				Reason: fmt.Sprintf("record length %d exceeds maximum %d", length, maxRecordBytes)}
		}
		if end > len(data) {
			sc.truncated = true
			break
		}
		payload := data[off+8 : end]
		if crc32.ChecksumIEEE(payload) != sum {
			if end == len(data) {
				// Corrupt FINAL record: the torn residue of a crash
				// mid-append. Drop it.
				sc.truncated = true
				break
			}
			return nil, &CorruptError{Path: path, Offset: int64(off), Reason: "record checksum mismatch"}
		}
		if idx == 0 {
			var h header
			if err := json.Unmarshal(payload, &h); err != nil {
				return nil, &CorruptError{Path: path, Offset: int64(off),
					Reason: fmt.Sprintf("undecodable header: %v", err)}
			}
			sc.hdr = &h
		} else {
			var r siteRecord
			if err := json.Unmarshal(payload, &r); err != nil {
				return nil, &CorruptError{Path: path, Offset: int64(off),
					Reason: fmt.Sprintf("undecodable record: %v", err)}
			}
			sc.entries = append(sc.entries, r)
		}
		off = end
		idx++
	}
	return sc, nil
}

func equalPrefix(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}
