package checkpoint

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/faultinject"
	"github.com/webdep/webdep/internal/obs"
)

var testCCs = []string{"CZ", "TH"}

func site(cc, domain string, rank int) dataset.Website {
	return dataset.Website{
		Domain: domain, Country: cc, Rank: rank,
		HostProvider: "Provider-" + domain, HostProviderCountry: "US",
		HostIP: "192.0.2.1", HostIPContinent: "NA",
		DNSProvider: "DNS-" + domain, DNSProviderCountry: "DE",
		CAOwner: "CA-" + domain, CAOwnerCountry: "US",
		TLD: "com", Language: "en",
	}
}

func okOutcome() dataset.SiteOutcome {
	return dataset.SiteOutcome{
		Host: dataset.StatusOK, NS: dataset.StatusOK,
		CA: dataset.StatusOK, Language: dataset.StatusOK,
	}
}

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "2023-05.journal")
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := Create(path, "2023-05", []string{"TH", "CZ"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Domains exercise quoting-adjacent shapes: unicode and commas are
	// fine inside JSON payloads, but prove it.
	sites := []dataset.Website{
		site("TH", "a.example.com", 1),
		site("TH", "bücher.example", 2),
		site("CZ", "c,d.example", 1),
	}
	for _, s := range sites {
		j.Append(s.Country, s, okOutcome())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(path, "2023-05", []string{"CZ", "TH"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.ReplayedSites(); got != 3 {
		t.Fatalf("ReplayedSites = %d, want 3", got)
	}
	for _, s := range sites {
		got, o, ok := r.Reuse(s.Country, s.Domain)
		if !ok {
			t.Fatalf("Reuse(%s, %s) missed", s.Country, s.Domain)
		}
		if got != s {
			t.Errorf("replayed site differs:\n got  %+v\n want %+v", got, s)
		}
		if o != okOutcome() {
			t.Errorf("replayed outcome = %+v", o)
		}
	}
	if _, _, ok := r.Reuse("TH", "never-crawled.example"); ok {
		t.Error("Reuse hit for a site that was never journaled")
	}
	st := r.Stats()
	if st.RecordsReplayed != 3 || st.SitesSkipped != 3 || st.SitesReprobed != 1 {
		t.Errorf("stats = %+v, want 3 replayed / 3 skipped / 1 reprobed", st)
	}
	if st.Truncations != 0 || st.Compactions != 0 {
		t.Errorf("clean resume performed recovery work: %+v", st)
	}
}

func TestCreateRequiresEpochAndCountries(t *testing.T) {
	if _, err := Create(journalPath(t), "", testCCs, nil); err == nil {
		t.Error("empty epoch accepted")
	}
	if _, err := Create(journalPath(t), "2023-05", nil, nil); err == nil {
		t.Error("empty country set accepted")
	}
}

func TestResumeMissingFileErrors(t *testing.T) {
	if _, err := Resume(filepath.Join(t.TempDir(), "absent.journal"), "2023-05", testCCs, nil); err == nil {
		t.Fatal("resume of a nonexistent journal succeeded")
	}
}

func TestResumeRejectsMismatchedEpochAndCountries(t *testing.T) {
	path := journalPath(t)
	j, err := Create(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Append("TH", site("TH", "a.example", 1), okOutcome())
	j.Close()

	if _, err := Resume(path, "2025-05", testCCs, nil); err == nil {
		t.Error("journal from epoch 2023-05 resumed as 2025-05")
	}
	if _, err := Resume(path, "2023-05", []string{"TH"}, nil); err == nil {
		t.Error("journal for [CZ TH] resumed for [TH]")
	}
	if _, err := Resume(path, "2023-05", []string{"CZ", "TH", "US"}, nil); err == nil {
		t.Error("journal for [CZ TH] resumed for [CZ TH US]")
	}
	// The same guard is exposed for crawl-time validation.
	j2, err := Resume(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Matches("2023-05", []string{"TH", "CZ"}); err != nil {
		t.Errorf("Matches rejected an order-permuted identical country set: %v", err)
	}
	if err := j2.Matches("2024-01", testCCs); err == nil {
		t.Error("Matches accepted a different epoch")
	}
}

// writeTorn truncates the journal file to its first n bytes, simulating a
// crash that tore the tail.
func writeTorn(t *testing.T, path string, n int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n > len(data) {
		t.Fatalf("torn size %d beyond file size %d", n, len(data))
	}
	if err := os.WriteFile(path, data[:n], 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestResumeRecoversTornTailAtEveryByte(t *testing.T) {
	// Build a clean three-record journal once, then replay resume against
	// every possible torn length of the final record — from "record fully
	// missing" through every mid-record byte — plus tears inside the
	// header and magic. No length may crash or hard-error; the replayed
	// prefix must always be exactly the records before the tear.
	path := journalPath(t)
	j, err := Create(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sites := []dataset.Website{
		site("TH", "a.example", 1),
		site("TH", "b.example", 2),
		site("CZ", "c.example", 1),
	}
	var offsets []int // byte offset after magic+header and after each record
	offsets = append(offsets, fileSize(t, path))
	for _, s := range sites {
		j.Append(s.Country, s, okOutcome())
		offsets = append(offsets, fileSize(t, path))
	}
	j.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n <= len(clean); n++ {
		if err := os.WriteFile(path, clean[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Resume(path, "2023-05", testCCs, nil)
		if err != nil {
			t.Fatalf("tear at byte %d: resume failed: %v", n, err)
		}
		// Count how many whole records survive a tear at n.
		wantSites := 0
		for i := 1; i < len(offsets); i++ {
			if n >= offsets[i] {
				wantSites = i
			}
		}
		if n < offsets[0] {
			wantSites = 0 // inside magic/header: nothing usable
		}
		if got := r.ReplayedSites(); got != wantSites {
			t.Fatalf("tear at byte %d: replayed %d sites, want %d", n, got, wantSites)
		}
		st := r.Stats()
		if n < len(clean) && n > offsets[0] && !atBoundary(n, offsets) {
			if st.Truncations != 1 {
				t.Fatalf("tear at byte %d: truncations = %d, want 1", n, st.Truncations)
			}
		}
		// Whatever recovery did, the journal on disk must now be clean:
		// a second resume replays the same sites with no recovery work.
		if err := r.Close(); err != nil {
			t.Fatalf("tear at byte %d: close: %v", n, err)
		}
		r2, err := Resume(path, "2023-05", testCCs, nil)
		if err != nil {
			t.Fatalf("tear at byte %d: re-resume: %v", n, err)
		}
		if got := r2.ReplayedSites(); got != wantSites {
			t.Fatalf("tear at byte %d: re-resume replayed %d sites, want %d", n, got, wantSites)
		}
		if st2 := r2.Stats(); st2.Truncations != 0 {
			t.Fatalf("tear at byte %d: recovery left a dirty journal (%+v)", n, st2)
		}
		r2.Close()
	}
}

func atBoundary(n int, offsets []int) bool {
	for _, o := range offsets {
		if n == o {
			return true
		}
	}
	return false
}

func fileSize(t *testing.T, path string) int {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return int(fi.Size())
}

func TestResumeMidFileCorruptionIsHardError(t *testing.T) {
	path := journalPath(t)
	j, err := Create(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := fileSize(t, path)
	j.Append("TH", site("TH", "a.example", 1), okOutcome())
	j.Append("TH", site("TH", "b.example", 2), okOutcome())
	j.Close()

	// Flip one payload byte inside the FIRST site record: a checksum
	// failure with a good record after it must refuse with the offset of
	// the corrupt record, not truncate away the good tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerEnd+8] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Resume(path, "2023-05", testCCs, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if ce.Offset != int64(headerEnd) {
		t.Errorf("corrupt offset = %d, want %d (start of the damaged record)", ce.Offset, headerEnd)
	}
}

func TestResumeRejectsForeignFile(t *testing.T) {
	path := journalPath(t)
	if err := os.WriteFile(path, []byte("this is not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Resume(path, "2023-05", testCCs, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError for bad magic", err)
	}
}

func TestResumeEmptyFileStartsFresh(t *testing.T) {
	path := journalPath(t)
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Resume(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j.ReplayedSites() != 0 || !j.Armed() {
		t.Fatalf("fresh resume: %d replayed, armed=%v", j.ReplayedSites(), j.Armed())
	}
	j.Append("TH", site("TH", "a.example", 1), okOutcome())
	j.Close()
	// The rewritten journal must now resume normally.
	r, err := Resume(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.ReplayedSites() != 1 {
		t.Fatalf("replayed %d sites after fresh restart, want 1", r.ReplayedSites())
	}
}

func TestResumeRejectsFutureVersion(t *testing.T) {
	path := journalPath(t)
	hdr := header{Version: Version + 1, Epoch: "2023-05", Countries: testCCs}
	if err := writeJournalFile(path, hdr, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(path, "2023-05", testCCs, nil); err == nil {
		t.Fatal("journal from a future version accepted")
	}
}

func TestReuseReprobesLostSites(t *testing.T) {
	path := journalPath(t)
	j, err := Create(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	lost := okOutcome()
	lost.NS = dataset.StatusLost
	j.Append("TH", site("TH", "lost.example", 1), lost)
	j.Append("TH", site("TH", "ok.example", 2), okOutcome())
	j.Close()

	r, err := Resume(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, ok := r.Reuse("TH", "lost.example"); ok {
		t.Error("a record with transient loss was reused instead of re-probed")
	}
	if _, _, ok := r.Reuse("TH", "ok.example"); !ok {
		t.Error("a complete record was not reused")
	}
	// The re-probe's fresh append supersedes the lost record.
	r.Append("TH", site("TH", "lost.example", 1), okOutcome())
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := Resume(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, o, ok := r2.Reuse("TH", "lost.example"); !ok || o != okOutcome() {
		t.Errorf("superseding append lost: ok=%v outcome=%+v", ok, o)
	}
}

func TestResumeDedupesSupersededRecords(t *testing.T) {
	// Append two generations of the same site without compacting: resume
	// must keep the newest and compact the journal back to one record.
	path := journalPath(t)
	j, err := Create(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	lost := okOutcome()
	lost.CA = dataset.StatusLost
	j.Append("TH", site("TH", "dup.example", 1), lost)
	j.Append("TH", site("TH", "dup.example", 1), okOutcome())
	j.Close()

	r, err := Resume(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.RecordsReplayed != 2 || st.Compactions != 1 {
		t.Errorf("stats = %+v, want 2 records replayed and 1 compaction", st)
	}
	if r.ReplayedSites() != 1 {
		t.Errorf("ReplayedSites = %d, want 1 after dedup", r.ReplayedSites())
	}
	if _, o, ok := r.Reuse("TH", "dup.example"); !ok || o != okOutcome() {
		t.Errorf("last write did not win: ok=%v outcome=%+v", ok, o)
	}
	r.Close()
}

func TestJournalDisarmsOnWriteErrorAndCrawlContinues(t *testing.T) {
	path := journalPath(t)
	var disarmErr error
	disarms := 0
	opts := &Options{
		OnDisarm: func(err error) { disarms++; disarmErr = err },
		WrapWriter: func(w WriteSyncer) WriteSyncer {
			// Kill after magic + header + one record.
			return faultinject.NewKillWriter(w, 3, 0, nil)
		},
	}
	j, err := Create(path, "2023-05", testCCs, opts)
	if err != nil {
		t.Fatal(err)
	}
	j.Append("TH", site("TH", "a.example", 1), okOutcome())
	if !j.Armed() {
		t.Fatal("journal disarmed before the injected failure")
	}
	// This append hits the dead disk: the journal must disarm, not panic
	// or surface an error to the crawl.
	j.Append("TH", site("TH", "b.example", 2), okOutcome())
	if j.Armed() {
		t.Fatal("journal still armed after a write failure")
	}
	if j.Err() == nil || !errors.Is(j.Err(), faultinject.ErrKilled) {
		t.Fatalf("Err() = %v, want the injected failure", j.Err())
	}
	if disarms != 1 || !errors.Is(disarmErr, faultinject.ErrKilled) {
		t.Fatalf("OnDisarm fired %d times with %v, want once with ErrKilled", disarms, disarmErr)
	}
	// Later appends are silently dropped.
	j.Append("TH", site("TH", "c.example", 3), okOutcome())
	st := j.Stats()
	if st.RecordsWritten != 1 || st.WriteErrors != 1 {
		t.Errorf("stats = %+v, want 1 written / 1 write error", st)
	}
	j.Close()

	// The journal on disk holds exactly the records before the failure.
	r, err := Resume(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.ReplayedSites() != 1 {
		t.Errorf("replayed %d sites, want the 1 written before the disk died", r.ReplayedSites())
	}
}

func TestObsCountersMatchJournalStats(t *testing.T) {
	// Every obs instrument must agree exactly with the journal's own
	// accounting, in the style of the resilience cross-checks.
	reg := obs.NewRegistry()
	path := journalPath(t)
	j, err := Create(path, "2023-05", testCCs, &Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	lost := okOutcome()
	lost.Host = dataset.StatusLost
	j.Append("TH", site("TH", "a.example", 1), okOutcome())
	j.Append("TH", site("TH", "b.example", 2), lost)
	j.Close()
	// Tear the tail so resume performs a truncation + compaction.
	writeTorn(t, path, fileSize(t, path)-3)

	reg2 := obs.NewRegistry()
	r, err := Resume(path, "2023-05", testCCs, &Options{Obs: reg2})
	if err != nil {
		t.Fatal(err)
	}
	r.Reuse("TH", "a.example") // skip
	r.Reuse("TH", "missing.example")
	r.Append("TH", site("TH", "missing.example", 3), okOutcome())
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	r.Close()

	for _, phase := range []struct {
		name string
		reg  *obs.Registry
		st   Stats
	}{
		{"create", reg, j.Stats()},
		{"resume", reg2, r.Stats()},
	} {
		counters := map[string]int64{
			"checkpoint.records_written":  phase.st.RecordsWritten,
			"checkpoint.records_replayed": phase.st.RecordsReplayed,
			"checkpoint.sites_skipped":    phase.st.SitesSkipped,
			"checkpoint.sites_reprobed":   phase.st.SitesReprobed,
			"checkpoint.truncations":      phase.st.Truncations,
			"checkpoint.write_errors":     phase.st.WriteErrors,
			"checkpoint.compactions":      phase.st.Compactions,
		}
		for name, want := range counters {
			if got := phase.reg.Counter(name).Value(); got != want {
				t.Errorf("%s: %s = %d, journal accounting says %d", phase.name, name, got, want)
			}
		}
		if got := phase.reg.Timing("checkpoint.fsync_ms").Snapshot().Count; got != phase.st.Fsyncs {
			t.Errorf("%s: fsync_ms count = %d, journal accounting says %d", phase.name, got, phase.st.Fsyncs)
		}
	}
	// The resume run really exercised recovery.
	if st := r.Stats(); st.Truncations != 1 || st.SitesSkipped != 1 || st.SitesReprobed != 1 {
		t.Errorf("resume stats vacuous: %+v", st)
	}
	if got := reg2.Gauge("checkpoint.armed").Value(); got != 1 {
		t.Errorf("armed gauge = %d for a healthy journal, want 1", got)
	}
}

func TestJournalRecordIsSingleWrite(t *testing.T) {
	// The torn-write model (and KillWriter's addressing) assumes one
	// Write call per record; count the writes to pin that invariant.
	path := journalPath(t)
	var writes int
	opts := &Options{WrapWriter: func(w WriteSyncer) WriteSyncer {
		return &countingWriter{w: w, n: &writes}
	}}
	j, err := Create(path, "2023-05", testCCs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if writes != 2 {
		t.Fatalf("create issued %d writes, want 2 (magic, header)", writes)
	}
	j.Append("TH", site("TH", "a.example", 1), okOutcome())
	if writes != 3 {
		t.Fatalf("append issued %d total writes, want 3 (one per record)", writes)
	}
	j.Close()
}

type countingWriter struct {
	w WriteSyncer
	n *int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	*c.n++
	return c.w.Write(p)
}

func (c *countingWriter) Sync() error { return c.w.Sync() }

func TestBinaryFrameLayout(t *testing.T) {
	// Freeze the wire framing: little-endian length then CRC32(payload).
	f := frame([]byte("abc"))
	if got := binary.LittleEndian.Uint32(f[0:]); got != 3 {
		t.Errorf("length prefix = %d, want 3", got)
	}
	if got, want := binary.LittleEndian.Uint32(f[4:]), uint32(0x352441c2); got != want {
		t.Errorf("crc = %#x, want %#x (CRC32-IEEE of \"abc\")", got, want)
	}
	if string(f[8:]) != "abc" {
		t.Errorf("payload = %q", f[8:])
	}
}
