package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

func streamTestJournal(t *testing.T, sites int) (path string, appended []dataset.Website) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "crawl.journal")
	j, err := Create(path, "2023-05", []string{"US"}, &Options{Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sites; i++ {
		site := dataset.Website{
			Country: "US", Rank: i + 1,
			Domain:       fmt.Sprintf("site%03d.example", i),
			HostProvider: "Hoster", TLD: "example",
		}
		j.Append("US", site, dataset.SiteOutcome{})
		appended = append(appended, site)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path, appended
}

// collectStream runs StreamSites and gathers what the callbacks saw.
func collectStream(path string) (*JournalInfo, []JournalInfo, []dataset.Website, error) {
	var headers []JournalInfo
	var sites []dataset.Website
	info, err := StreamSites(path,
		func(i JournalInfo) error { headers = append(headers, i); return nil },
		func(_ string, s dataset.Website, _ dataset.SiteOutcome) error {
			sites = append(sites, s)
			return nil
		})
	return info, headers, sites, err
}

func TestStreamSitesClean(t *testing.T) {
	path, appended := streamTestJournal(t, 12)
	info, headers, sites, err := collectStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != "2023-05" || info.Truncated || info.Sites != 12 {
		t.Fatalf("info = %+v", info)
	}
	if !reflect.DeepEqual(info.Countries, []string{"US"}) {
		t.Fatalf("countries = %v", info.Countries)
	}
	if len(headers) != 1 || headers[0].Epoch != "2023-05" {
		t.Fatalf("onHeader saw %+v", headers)
	}
	if !reflect.DeepEqual(sites, appended) {
		t.Fatal("streamed sites differ from appended sites")
	}
}

// TestStreamSitesTornTail checks streaming mirrors Resume's recovery: the
// torn final record is dropped and flagged, everything before it delivered —
// and, unlike Resume, the file is left byte-for-byte untouched.
func TestStreamSitesTornTail(t *testing.T) {
	path, appended := streamTestJournal(t, 12)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := whole[:len(whole)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	info, _, sites, err := collectStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated || info.Sites != 11 {
		t.Fatalf("info = %+v, want truncated with 11 sites", info)
	}
	if !reflect.DeepEqual(sites, appended[:11]) {
		t.Fatal("streamed sites differ from the durable prefix")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, torn) {
		t.Fatal("StreamSites rewrote the journal")
	}
}

// TestStreamSitesMidFileCorruption: damage before the final record is not
// recoverable residue; it must surface as a *CorruptError with the offset.
func TestStreamSitesMidFileCorruption(t *testing.T) {
	path, _ := streamTestJournal(t, 12)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	whole[len(whole)/2] ^= 0xFF
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = collectStream(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Offset <= 0 || ce.Offset >= int64(len(whole)) {
		t.Errorf("offset %d outside file of %d bytes", ce.Offset, len(whole))
	}
}

func TestStreamSitesBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.journal")
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := collectStream(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
}

// TestStreamSitesHeaderTorn: a journal torn inside its header recorded
// nothing durable — no header info, no sites, flagged truncated.
func TestStreamSitesHeaderTorn(t *testing.T) {
	path, _ := streamTestJournal(t, 3)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, whole[:len(magic)+3], 0o644); err != nil {
		t.Fatal(err)
	}
	info, headers, sites, err := collectStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != "" || info.Sites != 0 || !info.Truncated {
		t.Fatalf("info = %+v", info)
	}
	if len(headers) != 0 || len(sites) != 0 {
		t.Fatal("callbacks ran for a journal with no durable records")
	}
}

func TestStreamSitesCallbackError(t *testing.T) {
	path, _ := streamTestJournal(t, 12)
	boom := errors.New("stop here")
	var n int
	_, err := StreamSites(path, nil, func(string, dataset.Website, dataset.SiteOutcome) error {
		n++
		if n == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("callback error not returned verbatim: %v", err)
	}
	if n != 5 {
		t.Fatalf("stream continued after callback error: %d calls", n)
	}
}

// TestStreamSitesMatchesResume cross-checks the two readers on the same
// journal: streaming must deliver exactly the records Resume replays.
func TestStreamSitesMatchesResume(t *testing.T) {
	path, _ := streamTestJournal(t, 20)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, whole[:len(whole)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	streamed := map[Key]dataset.Website{}
	if _, err := StreamSites(path, nil, func(cc string, s dataset.Website, _ dataset.SiteOutcome) error {
		streamed[Key{Country: cc, Domain: s.Domain}] = s
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	j, err := Resume(path, "2023-05", []string{"US"}, &Options{Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	replayed := map[Key]dataset.Website{}
	for k, e := range j.Entries() {
		replayed[k] = e.Site
	}
	if !reflect.DeepEqual(streamed, replayed) {
		t.Fatalf("streamed %d records, Resume replays %d — sets differ", len(streamed), len(replayed))
	}
}
