package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPreShardJournalResumesCleanly proves the backward direction of
// header compatibility: a journal written before shard descriptors
// existed — its header JSON literally has no "shard" key — must resume
// exactly as it always did. The fixture is built byte-for-byte rather
// than through Create, so the test pins the old wire format itself.
func TestPreShardJournalResumesCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "preshard.journal")
	var buf []byte
	buf = append(buf, magic...)
	buf = append(buf, frame([]byte(`{"version":1,"epoch":"2023-05","countries":["CZ","TH"]}`))...)
	rec := []byte(`{"country":"TH","site":{"Domain":"a.th","Country":"TH","Rank":1},"outcome":{"Host":1,"NS":1,"CA":1,"Language":1}}`)
	buf = append(buf, frame(rec)...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Resume(path, "2023-05", testCCs, nil)
	if err != nil {
		t.Fatalf("pre-shard journal refused: %v", err)
	}
	defer j.Close()
	if j.Shard() != nil {
		t.Errorf("pre-shard journal reports shard %v", j.Shard())
	}
	if j.ReplayedSites() != 1 {
		t.Errorf("replayed %d sites, want 1", j.ReplayedSites())
	}
	if _, _, ok := j.Reuse("TH", "a.th"); !ok {
		t.Error("journaled site not reusable after resume")
	}
}

// TestShardJournalRefusedByResume proves the forward direction: a
// federated shard journal must never be resumed as a whole-crawl journal —
// it holds one vantage's slice, and resuming it would silently skip every
// other worker's sites.
func TestShardJournalRefusedByResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.journal")
	sh := &ShardInfo{Worker: "w1", Index: 1, Total: 3, Gen: 1}
	j, err := CreateShard(path, "2023-05", testCCs, sh, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Append("TH", site("TH", "a.th", 1), okOutcome())
	if got := j.Shard(); got == nil || got.Worker != "w1" || got.Index != 1 || got.Total != 3 {
		t.Fatalf("Shard() = %+v", got)
	}
	j.Close()

	if _, err := Resume(path, "2023-05", testCCs, nil); err == nil {
		t.Fatal("Resume accepted a federated shard journal")
	} else if !strings.Contains(err.Error(), "shard") {
		t.Errorf("refusal does not name the shard: %v", err)
	}

	// The shard descriptor must round-trip through the streaming reader,
	// which is what the merge layer validates against.
	info, err := StreamSites(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard == nil || info.Shard.Worker != "w1" || info.Shard.Gen != 1 {
		t.Errorf("streamed shard = %+v", info.Shard)
	}
	if info.Sites != 1 {
		t.Errorf("streamed %d sites, want 1", info.Sites)
	}
}

// TestCreateShardValidatesDescriptor rejects descriptors that could not
// address a federation slot.
func TestCreateShardValidatesDescriptor(t *testing.T) {
	dir := t.TempDir()
	cases := []*ShardInfo{
		nil,
		{Worker: "", Index: 0, Total: 3},
		{Worker: "w0", Index: -1, Total: 3},
		{Worker: "w0", Index: 3, Total: 3},
		{Worker: "w0", Index: 0, Total: 0},
	}
	for i, sh := range cases {
		if _, err := CreateShard(filepath.Join(dir, "bad.journal"), "2023-05", testCCs, sh, nil); err == nil {
			t.Errorf("case %d: descriptor %+v accepted", i, sh)
		}
	}
}
