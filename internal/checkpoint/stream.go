package checkpoint

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/webdep/webdep/internal/dataset"
)

// JournalInfo describes a journal as StreamSites found it.
type JournalInfo struct {
	// Version, Epoch, and Countries come from the journal header. They are
	// zero when no header survived (empty or header-torn journal).
	Version   int
	Epoch     string
	Countries []string
	// Shard is the federated shard descriptor from the header, nil for a
	// whole-crawl journal (including every pre-shard journal).
	Shard *ShardInfo
	// Truncated reports that a torn tail (the residue of a crash
	// mid-append) was dropped. The skipped bytes stay on disk — unlike
	// Resume, streaming never rewrites the journal.
	Truncated bool
	// Sites counts the records delivered, including superseded duplicates.
	Sites int64
}

// StreamSites reads a journal's site records in file order without loading
// the journal into memory — the streaming counterpart of Resume's replay,
// for consumers (the on-disk corpus store's IngestJournal) that fold each
// record away instead of keeping a map of them.
//
// Recovery semantics are identical to Resume/scan: a torn or corrupt FINAL
// record is dropped and flagged Truncated, corruption before the last
// record is a *CorruptError with the byte offset, and a journal torn
// before its header survived yields an info with no header and no sites.
// Records are delivered as they are read, so onSite may run before a torn
// tail is discovered; a consumer building durable output should create it
// only after StreamSites returns.
//
// onHeader (optional) sees the decoded header before any site; onSite sees
// every site record in file order. An error from either callback aborts
// the stream and is returned verbatim.
func StreamSites(path string,
	onHeader func(JournalInfo) error,
	onSite func(country string, site dataset.Website, outcome dataset.SiteOutcome) error,
) (*JournalInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open journal for streaming: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: stat journal: %w", err)
	}
	size := st.Size()
	r := bufio.NewReaderSize(f, 1<<16)
	info := &JournalInfo{}

	// Magic: a short prefix of it is a torn first write; any mismatch means
	// this is not a journal at all.
	magicBuf := make([]byte, len(magic))
	n, err := io.ReadFull(r, magicBuf)
	if err != nil {
		if !equalPrefix(magicBuf[:n], magic) {
			return nil, &CorruptError{Path: path, Offset: 0, Reason: "not a checkpoint journal (bad magic)"}
		}
		info.Truncated = n > 0
		return info, nil
	}
	if !equalPrefix(magicBuf, magic) {
		return nil, &CorruptError{Path: path, Offset: 0, Reason: "not a checkpoint journal (bad magic)"}
	}

	off := int64(len(magic))
	idx := 0
	var hdr [8]byte
	var payload []byte
	for off < size {
		if size-off < 8 {
			info.Truncated = true
			break
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("checkpoint: reading journal: %w", err)
		}
		length := int64(binary.LittleEndian.Uint32(hdr[:4]))
		sum := binary.LittleEndian.Uint32(hdr[4:])
		end := off + 8 + length
		if length > maxRecordBytes {
			if end > size {
				// A garbage length from a torn frame header almost always
				// points past EOF; recover it as the tail it is.
				info.Truncated = true
				break
			}
			return nil, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("record length %d exceeds maximum %d", length, maxRecordBytes)}
		}
		if end > size {
			info.Truncated = true
			break
		}
		if int64(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("checkpoint: reading journal: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if end == size {
				// Corrupt FINAL record: the torn residue of a crash
				// mid-append. Drop it.
				info.Truncated = true
				break
			}
			return nil, &CorruptError{Path: path, Offset: off, Reason: "record checksum mismatch"}
		}
		if idx == 0 {
			var h header
			if err := json.Unmarshal(payload, &h); err != nil {
				return nil, &CorruptError{Path: path, Offset: off,
					Reason: fmt.Sprintf("undecodable header: %v", err)}
			}
			info.Version = h.Version
			info.Epoch = h.Epoch
			info.Countries = sortedCopy(h.Countries)
			if h.Shard != nil {
				sh := *h.Shard
				info.Shard = &sh
			}
			if onHeader != nil {
				if err := onHeader(*info); err != nil {
					return nil, err
				}
			}
		} else {
			var rec siteRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				return nil, &CorruptError{Path: path, Offset: off,
					Reason: fmt.Sprintf("undecodable record: %v", err)}
			}
			info.Sites++
			if onSite != nil {
				if err := onSite(rec.Country, rec.Site, rec.Outcome); err != nil {
					return nil, err
				}
			}
		}
		off = end
		idx++
	}
	return info, nil
}
