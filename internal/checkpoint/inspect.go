package checkpoint

// InspectBytes runs the journal recovery scanner over an in-memory byte
// slice — the verification hook for journals that arrive over a transport
// rather than from disk. A remote vantage ships its finished shard journal
// home inside a signed artifact; the coordinator must validate the framing
// (magic, length prefixes, CRC32 checksums, decodable header and records)
// BEFORE admitting the bytes to the merge directory, without writing a
// temp file just to scan it.
//
// Recovery semantics are identical to Resume and StreamSites: a torn or
// corrupt FINAL record is tolerated and flagged Truncated (the expected
// residue of a worker killed mid-append), corruption before the last
// record is a *CorruptError carrying the byte offset, and bytes torn
// before the header survived yield an info with no header and no sites.
// name appears as the Path of any *CorruptError, since the bytes have no
// path of their own yet.
func InspectBytes(data []byte, name string) (*JournalInfo, error) {
	sc, err := scan(data, name)
	if err != nil {
		return nil, err
	}
	info := &JournalInfo{Truncated: sc.truncated, Sites: int64(len(sc.entries))}
	if sc.hdr != nil {
		info.Version = sc.hdr.Version
		info.Epoch = sc.hdr.Epoch
		info.Countries = sortedCopy(sc.hdr.Countries)
		if sc.hdr.Shard != nil {
			sh := *sc.hdr.Shard
			info.Shard = &sh
		}
	}
	return info, nil
}
