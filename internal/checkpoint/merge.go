package checkpoint

import (
	"fmt"
	"sync/atomic"

	"github.com/webdep/webdep/internal/dataset"
)

// MergeSource identifies which partial journal a merged entry came from.
type MergeSource struct {
	// Path is the journal file the entry was read from.
	Path string
	// Shard is the journal's shard descriptor; nil when the journal was an
	// unsharded whole-crawl journal folded into a merge.
	Shard *ShardInfo
}

// Worker returns the source's worker identifier: the shard descriptor's
// worker for a federated journal, the file path otherwise — enough to tell
// two vantages apart when counting overlapping probes.
func (s MergeSource) Worker() string {
	if s.Shard != nil {
		return s.Shard.Worker
	}
	return s.Path
}

// MergeEntry is one vantage's journaled result for a key.
type MergeEntry struct {
	Source MergeSource
	Entry  Entry
}

// Merger folds federated partial journals into one keyed entry set, with
// the validation and accounting a trustworthy merge needs: every journal's
// header must carry the merge's epoch, country set, and version; mid-file
// corruption is a hard *CorruptError; and every refusal is counted in
// Stats and the checkpoint.* obs registry, dual-recorded like the journal
// metrics. A torn FINAL record — the residue of a worker killed
// mid-append — is tolerated and counted as a truncation, exactly as
// Resume tolerates it.
//
// The Merger keeps every vantage's entry per key (rather than collapsing
// to one) so the consumer can both pick a deterministic winner and measure
// cross-vantage disagreement on overlapping probes.
type Merger struct {
	epoch     string
	countries []string
	adopt     bool // epoch/countries adopted from the first readable header
	m         *journalMetrics

	entries map[Key][]MergeEntry

	stats struct {
		journals        atomic.Int64
		records         atomic.Int64
		truncations     atomic.Int64
		refusalsForeign atomic.Int64
		refusalsCorrupt atomic.Int64
	}
}

// NewMerger starts a merge expecting the given epoch and country set. An
// empty epoch adopts the first readable journal's header as the
// expectation — the CLI merge path, where the campaign identity lives only
// in the journals themselves.
func NewMerger(epoch string, countries []string, opts *Options) *Merger {
	if opts == nil {
		opts = &Options{}
	}
	return &Merger{
		epoch:     epoch,
		countries: sortedCopy(countries),
		adopt:     epoch == "",
		m:         newJournalMetrics(opts.Obs),
		entries:   map[Key][]MergeEntry{},
	}
}

// Epoch returns the epoch the merge is validating against ("" until the
// first journal is adopted in CLI mode).
func (g *Merger) Epoch() string { return g.epoch }

// Countries returns the merge's country set, sorted.
func (g *Merger) Countries() []string { return append([]string(nil), g.countries...) }

// ReadJournal streams one partial journal into the merge. The journal must
// belong to this campaign: a foreign epoch, country set, or version is
// refused with a *CorruptError (counted in MergeRefusalsForeign), and
// mid-file corruption propagates StreamSites' *CorruptError (counted in
// MergeRefusalsCorrupt). Either refusal leaves the merge's accumulated
// entries untouched only up to the records already delivered — callers
// must treat any error as fatal to the whole merge, never as "skip this
// shard": a merge missing one shard is a silently partial corpus.
//
// A journal torn before its header survived contributes nothing and is
// accepted (nothing was durably recorded, so nothing is missing from it).
func (g *Merger) ReadJournal(path string) (*JournalInfo, error) {
	foreign := ""
	var src MergeSource
	info, err := StreamSites(path,
		func(info JournalInfo) error {
			if info.Version != Version {
				foreign = fmt.Sprintf("journal version %d, this build merges version %d", info.Version, Version)
				return &CorruptError{Path: path, Offset: int64(len(magic)), Reason: foreign}
			}
			if g.adopt && g.epoch == "" {
				g.epoch = info.Epoch
				g.countries = sortedCopy(info.Countries)
			}
			if merr := matches(info.Epoch, info.Countries, g.epoch, g.countries); merr != nil {
				foreign = fmt.Sprintf("foreign partial journal: %v", merr)
				return &CorruptError{Path: path, Offset: int64(len(magic)), Reason: foreign}
			}
			src = MergeSource{Path: path, Shard: info.Shard}
			return nil
		},
		func(country string, site dataset.Website, outcome dataset.SiteOutcome) error {
			g.fold(src, country, site, outcome)
			return nil
		})
	if err != nil {
		if foreign != "" {
			g.stats.refusalsForeign.Add(1)
			g.m.mergeRefusalsForeign.Inc()
		} else {
			g.stats.refusalsCorrupt.Add(1)
			g.m.mergeRefusalsCorrupt.Inc()
		}
		return nil, err
	}
	if info.Truncated {
		g.stats.truncations.Add(1)
		g.m.truncations.Inc()
	}
	g.stats.journals.Add(1)
	g.m.mergeJournals.Inc()
	return info, nil
}

// fold records one site entry, superseding an earlier record for the same
// key from the SAME journal (an append after a re-probe, newest wins —
// the in-file analogue of Resume's duplicate handling) while keeping
// entries from other journals side by side for disagreement accounting.
func (g *Merger) fold(src MergeSource, country string, site dataset.Website, outcome dataset.SiteOutcome) {
	k := Key{Country: country, Domain: site.Domain}
	e := MergeEntry{Source: src, Entry: Entry{Site: site, Outcome: outcome}}
	list := g.entries[k]
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].Source.Path == src.Path {
			list[i] = e
			g.stats.records.Add(1)
			g.m.mergeRecords.Inc()
			return
		}
	}
	g.entries[k] = append(list, e)
	g.stats.records.Add(1)
	g.m.mergeRecords.Inc()
}

// Entries returns the accumulated per-key entry lists, one entry per
// contributing journal in read order. The map is the Merger's own — read
// it, don't mutate it.
func (g *Merger) Entries() map[Key][]MergeEntry { return g.entries }

// Stats snapshots the merge accounting in the same shape as a Journal's,
// with the journal-only fields zero.
func (g *Merger) Stats() Stats {
	return Stats{
		Truncations:          g.stats.truncations.Load(),
		MergeJournals:        g.stats.journals.Load(),
		MergeRecords:         g.stats.records.Load(),
		MergeRefusalsForeign: g.stats.refusalsForeign.Load(),
		MergeRefusalsCorrupt: g.stats.refusalsCorrupt.Load(),
	}
}
