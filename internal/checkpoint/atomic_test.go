package checkpoint

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicReplacesContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	for _, content := range []string{"first", "second generation"} {
		err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("file holds %q, want %q", got, content)
		}
	}
}

func TestWriteFileAtomicFailureLeavesOldFileAndNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half a new file")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's failure", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "precious" {
		t.Fatalf("destination after failed write: %q, %v; want the old content intact", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}
