package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/webdep/webdep/internal/dataset"
	"github.com/webdep/webdep/internal/obs"
)

// writeShard journals the given (country, domain) pairs as one worker's
// partial journal and returns its path.
func writeShard(t *testing.T, dir, name string, sh *ShardInfo, pairs [][2]string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	var j *Journal
	var err error
	if sh != nil {
		j, err = CreateShard(path, "2023-05", testCCs, sh, nil)
	} else {
		j, err = Create(path, "2023-05", testCCs, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		j.Append(p[0], site(p[0], p[1], i+1), okOutcome())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMergerFoldsPartialJournals(t *testing.T) {
	dir := t.TempDir()
	writeShard(t, dir, "w0-g1.journal", &ShardInfo{Worker: "w0", Index: 0, Total: 2, Gen: 1},
		[][2]string{{"TH", "a.th"}, {"TH", "b.th"}})
	writeShard(t, dir, "w1-g1.journal", &ShardInfo{Worker: "w1", Index: 1, Total: 2, Gen: 1},
		[][2]string{{"CZ", "a.cz"}, {"TH", "b.th"}}) // b.th probed by both vantages

	reg := obs.NewRegistry()
	g := NewMerger("2023-05", testCCs, &Options{Obs: reg})
	for _, name := range []string{"w0-g1.journal", "w1-g1.journal"} {
		if _, err := g.ReadJournal(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	entries := g.Entries()
	if len(entries) != 3 {
		t.Fatalf("merged %d keys, want 3", len(entries))
	}
	overlap := entries[Key{Country: "TH", Domain: "b.th"}]
	if len(overlap) != 2 {
		t.Fatalf("overlapping key has %d entries, want one per vantage", len(overlap))
	}
	if overlap[0].Source.Worker() == overlap[1].Source.Worker() {
		t.Errorf("overlap entries claim the same vantage %q", overlap[0].Source.Worker())
	}

	st := g.Stats()
	if st.MergeJournals != 2 || st.MergeRecords != 4 {
		t.Errorf("stats = %+v, want 2 journals / 4 records", st)
	}
	if st.MergeRefusalsForeign != 0 || st.MergeRefusalsCorrupt != 0 {
		t.Errorf("refusals counted on a clean merge: %+v", st)
	}
	// Dual-recording: the obs channel must agree exactly with Stats.
	checks := map[string]int64{
		"checkpoint.merge_journals":         st.MergeJournals,
		"checkpoint.merge_records":          st.MergeRecords,
		"checkpoint.merge_refusals_foreign": st.MergeRefusalsForeign,
		"checkpoint.merge_refusals_corrupt": st.MergeRefusalsCorrupt,
		"checkpoint.truncations":            st.Truncations,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, merger accounting says %d", name, got, want)
		}
	}
}

func TestMergerSameJournalDuplicateSupersedes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w0-g1.journal")
	j, err := CreateShard(path, "2023-05", testCCs, &ShardInfo{Worker: "w0", Index: 0, Total: 1, Gen: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lost := okOutcome()
	lost.CA = dataset.StatusLost
	j.Append("TH", site("TH", "a.th", 1), lost)
	j.Append("TH", site("TH", "a.th", 1), okOutcome()) // re-probe won the field back
	j.Close()

	g := NewMerger("2023-05", testCCs, nil)
	if _, err := g.ReadJournal(path); err != nil {
		t.Fatal(err)
	}
	list := g.Entries()[Key{Country: "TH", Domain: "a.th"}]
	if len(list) != 1 {
		t.Fatalf("same-journal duplicate kept %d entries, want newest only", len(list))
	}
	if list[0].Entry.Outcome.Lost() {
		t.Error("superseded lost record won over the newer complete one")
	}
	if st := g.Stats(); st.MergeRecords != 2 {
		t.Errorf("records = %d; superseded records still count as read", st.MergeRecords)
	}
}

func TestMergerRefusesForeignJournals(t *testing.T) {
	dir := t.TempDir()
	// Foreign epoch.
	foreign := filepath.Join(dir, "foreign.journal")
	fj, err := Create(foreign, "2099-01", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	fj.Append("TH", site("TH", "a.th", 1), okOutcome())
	fj.Close()

	reg := obs.NewRegistry()
	g := NewMerger("2023-05", testCCs, &Options{Obs: reg})
	_, err = g.ReadJournal(foreign)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("foreign epoch refusal is %T (%v), want *CorruptError", err, err)
	}
	// Foreign country set.
	sj, err := Create(filepath.Join(dir, "cc.journal"), "2023-05", []string{"TH"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sj.Close()
	if _, err := g.ReadJournal(filepath.Join(dir, "cc.journal")); !errors.As(err, &ce) {
		t.Fatalf("foreign country set refusal is %T, want *CorruptError", err)
	}

	st := g.Stats()
	if st.MergeRefusalsForeign != 2 {
		t.Errorf("foreign refusals = %d, want 2", st.MergeRefusalsForeign)
	}
	if got := reg.Counter("checkpoint.merge_refusals_foreign").Value(); got != st.MergeRefusalsForeign {
		t.Errorf("obs foreign refusals = %d, stats say %d", got, st.MergeRefusalsForeign)
	}
}

func TestMergerRefusesMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := writeShard(t, dir, "w0-g1.journal", &ShardInfo{Worker: "w0", Index: 0, Total: 1, Gen: 1},
		[][2]string{{"TH", "a.th"}, {"TH", "b.th"}, {"CZ", "a.cz"}})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the file: corruption with good
	// records after it, which truncation could not recover honestly.
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	g := NewMerger("2023-05", testCCs, &Options{Obs: reg})
	_, err = g.ReadJournal(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-file corruption returned %T (%v), want *CorruptError", err, err)
	}
	if ce.Offset <= 0 {
		t.Errorf("corrupt offset = %d, want a real byte offset", ce.Offset)
	}
	st := g.Stats()
	if st.MergeRefusalsCorrupt != 1 || st.MergeJournals != 0 {
		t.Errorf("stats = %+v, want 1 corrupt refusal and 0 accepted journals", st)
	}
	if got := reg.Counter("checkpoint.merge_refusals_corrupt").Value(); got != 1 {
		t.Errorf("obs corrupt refusals = %d, want 1", got)
	}
}

func TestMergerToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := writeShard(t, dir, "w0-g1.journal", &ShardInfo{Worker: "w0", Index: 0, Total: 1, Gen: 1},
		[][2]string{{"TH", "a.th"}, {"TH", "b.th"}})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Shear 5 bytes off the final record: the residue of a worker killed
	// mid-append.
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	g := NewMerger("2023-05", testCCs, nil)
	info, err := g.ReadJournal(path)
	if err != nil {
		t.Fatalf("torn tail refused: %v", err)
	}
	if !info.Truncated {
		t.Error("torn tail not reported")
	}
	if len(g.Entries()) != 1 {
		t.Errorf("merged %d keys, want the 1 whole record before the tear", len(g.Entries()))
	}
	if st := g.Stats(); st.Truncations != 1 || st.MergeJournals != 1 {
		t.Errorf("stats = %+v, want 1 truncation on 1 accepted journal", st)
	}
}

func TestMergerAdoptsFirstHeader(t *testing.T) {
	dir := t.TempDir()
	writeShard(t, dir, "w0.journal", &ShardInfo{Worker: "w0", Index: 0, Total: 1, Gen: 1},
		[][2]string{{"TH", "a.th"}})
	fj, err := Create(filepath.Join(dir, "foreign.journal"), "2099-01", testCCs, nil)
	if err != nil {
		t.Fatal(err)
	}
	fj.Close()

	g := NewMerger("", nil, nil)
	if _, err := g.ReadJournal(filepath.Join(dir, "w0.journal")); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != "2023-05" {
		t.Errorf("adopted epoch %q", g.Epoch())
	}
	// Once adopted, a mismatched journal is foreign.
	if _, err := g.ReadJournal(filepath.Join(dir, "foreign.journal")); err == nil {
		t.Error("merge accepted a second journal from a different epoch")
	}
}
