package tlsscan

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"net"
	"testing"
	"time"

	"github.com/webdep/webdep/internal/capki"
)

// startTLSServer runs a minimal TLS listener presenting certs selected by
// SNI, returning its address.
func startTLSServer(t *testing.T, certs map[string]tls.Certificate) string {
	t.Helper()
	conf := &tls.Config{
		GetCertificate: func(hello *tls.ClientHelloInfo) (*tls.Certificate, error) {
			if c, ok := certs[hello.ServerName]; ok {
				return &c, nil
			}
			// Default: first cert.
			for _, c := range certs {
				return &c, nil
			}
			return nil, nil
		},
		MinVersion: tls.VersionTLS12,
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", conf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				// Drive the handshake, then hold briefly.
				if tc, ok := c.(*tls.Conn); ok {
					tc.Handshake()
				}
				time.Sleep(50 * time.Millisecond)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestScanLabelsCAOwner(t *testing.T) {
	le, err := capki.NewAuthority("Let's Encrypt", "US")
	if err != nil {
		t.Fatal(err)
	}
	asseco, err := capki.NewAuthority("Asseco", "PL")
	if err != nil {
		t.Fatal(err)
	}
	certLE, err := le.IssueLeaf("global.example")
	if err != nil {
		t.Fatal(err)
	}
	certAsseco, err := asseco.IssueLeaf("polish.example")
	if err != nil {
		t.Fatal(err)
	}
	addr := startTLSServer(t, map[string]tls.Certificate{
		"global.example": certLE,
		"polish.example": certAsseco,
	})

	db := capki.NewOwnerDB()
	db.RegisterAuthority(le)
	db.RegisterAuthority(asseco)
	scanner := New(db)

	res, err := scanner.Scan(addr, "global.example")
	if err != nil {
		t.Fatal(err)
	}
	if res.CAOwner != "Let's Encrypt" || res.CAOwnerCountry != "US" {
		t.Errorf("owner = %q/%q", res.CAOwner, res.CAOwnerCountry)
	}
	if res.Leaf.Subject.CommonName != "global.example" {
		t.Errorf("leaf CN = %q", res.Leaf.Subject.CommonName)
	}
	if res.Version < tls.VersionTLS12 {
		t.Errorf("version = %x", res.Version)
	}

	res, err = scanner.Scan(addr, "polish.example")
	if err != nil {
		t.Fatal(err)
	}
	if res.CAOwner != "Asseco" || res.CAOwnerCountry != "PL" {
		t.Errorf("owner = %q/%q", res.CAOwner, res.CAOwnerCountry)
	}
}

func TestScanUnknownIssuerYieldsEmptyOwner(t *testing.T) {
	rogue, err := capki.NewAuthority("Rogue CA", "ZZ")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := rogue.IssueLeaf("rogue.example")
	if err != nil {
		t.Fatal(err)
	}
	addr := startTLSServer(t, map[string]tls.Certificate{"rogue.example": cert})
	scanner := New(capki.NewOwnerDB()) // empty DB
	res, err := scanner.Scan(addr, "rogue.example")
	if err != nil {
		t.Fatal(err)
	}
	if res.CAOwner != "" {
		t.Errorf("owner = %q, want empty", res.CAOwner)
	}
}

func TestScanWithRootVerification(t *testing.T) {
	ca, err := capki.NewAuthority("DigiCert", "US")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.IssueLeaf("secure.example")
	if err != nil {
		t.Fatal(err)
	}
	addr := startTLSServer(t, map[string]tls.Certificate{"secure.example": cert})

	roots := x509.NewCertPool()
	roots.AddCert(ca.Certificate())
	db := capki.NewOwnerDB()
	db.RegisterAuthority(ca)
	scanner := New(db)
	scanner.Roots = roots

	if _, err := scanner.Scan(addr, "secure.example"); err != nil {
		t.Errorf("verified scan failed: %v", err)
	}

	// A different trust store must reject the chain.
	other, err := capki.NewAuthority("Other", "US")
	if err != nil {
		t.Fatal(err)
	}
	wrongRoots := x509.NewCertPool()
	wrongRoots.AddCert(other.Certificate())
	scanner.Roots = wrongRoots
	if _, err := scanner.Scan(addr, "secure.example"); err == nil {
		t.Error("scan verified against wrong root")
	}
}

func TestScanConnectionRefused(t *testing.T) {
	scanner := New(nil)
	scanner.Timeout = 300 * time.Millisecond
	if _, err := scanner.Scan("127.0.0.1:1", "x.example"); err == nil {
		t.Error("scan of closed port succeeded")
	}
}

func TestScanNilOwnerDB(t *testing.T) {
	ca, err := capki.NewAuthority("X", "US")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.IssueLeaf("nodb.example")
	if err != nil {
		t.Fatal(err)
	}
	addr := startTLSServer(t, map[string]tls.Certificate{"nodb.example": cert})
	scanner := &Scanner{} // zero value + nil DB: must still scan
	res, err := scanner.Scan(addr, "nodb.example")
	if err != nil {
		t.Fatal(err)
	}
	if res.CAOwner != "" || res.Leaf == nil {
		t.Errorf("res = %+v", res)
	}
}

func TestScanContextCancellation(t *testing.T) {
	// A listener that accepts but never handshakes: only the context can
	// end the scan early.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the connection open, say nothing
		}
	}()

	scanner := New(nil)
	scanner.Timeout = 10 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := scanner.ScanContext(ctx, ln.Addr().String(), "x.example"); err == nil {
		t.Fatal("cancelled scan succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}
