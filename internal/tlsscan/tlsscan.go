// Package tlsscan performs TLS handshakes against web servers and labels
// the CA ownership of the leaf certificates they present — the ZGrab2 +
// CCADB step of the paper's pipeline, run against the toolkit's in-process
// HTTPS endpoints.
package tlsscan

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/webdep/webdep/internal/capki"
	"github.com/webdep/webdep/internal/obs"
)

// Result is the outcome of one TLS scan.
type Result struct {
	// Leaf is the server's end-entity certificate.
	Leaf *x509.Certificate
	// CAOwner and CAOwnerCountry identify the owner of the issuing CA per
	// the owner database; empty when the issuer is unknown.
	CAOwner        string
	CAOwnerCountry string
	// Version and CipherSuite describe the negotiated session.
	Version     uint16
	CipherSuite uint16
}

// ErrNoCertificate is returned when the handshake completes without a peer
// certificate (cannot happen with standard TLS servers, kept for safety).
var ErrNoCertificate = errors.New("tlsscan: no peer certificate")

// Scanner dials servers and records their certificate chain. The zero
// value is unusable; construct with New.
type Scanner struct {
	// Owners resolves issuers to CA owners. Optional; when nil, results
	// carry an empty owner.
	Owners *capki.OwnerDB
	// Timeout bounds dial + handshake. Default 3s.
	Timeout time.Duration
	// Roots optionally verifies chains against a trust store. When nil the
	// scanner accepts any certificate (the paper labels what sites serve,
	// not whether browsers would trust it).
	Roots *x509.CertPool
	// Obs selects the metrics registry the scanner's "probe.tls.*"
	// instruments record to; nil means obs.Default().
	Obs *obs.Registry

	metricsOnce sync.Once
	metrics     *scanMetrics
}

// scanMetrics holds the hoisted per-scan instruments: handshake latency
// plus scan/error counters.
type scanMetrics struct {
	scanMS *obs.Histogram
	scans  *obs.Counter
	errors *obs.Counter
}

func (s *Scanner) m() *scanMetrics {
	s.metricsOnce.Do(func() {
		r := s.Obs
		if r == nil {
			r = obs.Default()
		}
		s.metrics = &scanMetrics{
			scanMS: r.Timing("probe.tls.ms"),
			scans:  r.Counter("probe.tls.scans"),
			errors: r.Counter("probe.tls.errors"),
		}
	})
	return s.metrics
}

// New returns a scanner using the given owner database.
func New(owners *capki.OwnerDB) *Scanner {
	return &Scanner{Owners: owners, Timeout: 3 * time.Second}
}

// Scan connects to addr ("host:port"), handshakes with the given SNI
// serverName, and labels the leaf certificate's CA owner.
func (s *Scanner) Scan(addr, serverName string) (*Result, error) {
	return s.ScanContext(context.Background(), addr, serverName)
}

// ScanContext is Scan bounded by a context: cancelling ctx aborts the dial
// and handshake, so crawl-level retry policies and cancellation propagate
// into in-flight scans.
func (s *Scanner) ScanContext(ctx context.Context, addr, serverName string) (res *Result, err error) {
	m := s.m()
	m.scans.Inc()
	sp := obs.StartSpan(m.scanMS)
	defer func() {
		sp.End()
		if err != nil {
			m.errors.Inc()
		}
	}()
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	conf := &tls.Config{
		ServerName: serverName,
		// The measurement must observe whatever certificate the site
		// serves, trusted or not; verification, when requested, happens
		// explicitly below against the configured roots.
		InsecureSkipVerify: true,
		MinVersion:         tls.VersionTLS12,
	}
	dialer := &tls.Dialer{NetDialer: &net.Dialer{Timeout: timeout}, Config: conf}
	nc, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tlsscan: %s (sni %s): %w", addr, serverName, err)
	}
	conn := nc.(*tls.Conn)
	defer conn.Close()
	state := conn.ConnectionState()
	if len(state.PeerCertificates) == 0 {
		return nil, ErrNoCertificate
	}
	leaf := state.PeerCertificates[0]

	if s.Roots != nil {
		inter := x509.NewCertPool()
		for _, c := range state.PeerCertificates[1:] {
			inter.AddCert(c)
		}
		if _, err := leaf.Verify(x509.VerifyOptions{
			Roots:         s.Roots,
			Intermediates: inter,
			DNSName:       serverName,
		}); err != nil {
			return nil, fmt.Errorf("tlsscan: chain verification: %w", err)
		}
	}

	res = &Result{
		Leaf:        leaf,
		Version:     state.Version,
		CipherSuite: state.CipherSuite,
	}
	if s.Owners != nil {
		if owner, ok := s.Owners.OwnerOf(leaf); ok {
			res.CAOwner = owner.Name
			res.CAOwnerCountry = owner.Country
		}
	}
	return res, nil
}
