package anycast

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Load populates the set from a one-prefix-per-line feed, the shape of the
// bgp.tools anycast prefix dataset the paper uses. Comments with '#' and
// blank lines are ignored.
func (s *Set) Load(r io.Reader) (int, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	n, line := 0, 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if err := s.AddString(text); err != nil {
			return n, fmt.Errorf("anycast: line %d: %w", line, err)
		}
		n++
	}
	return n, scanner.Err()
}
