package anycast

import (
	"net/netip"
	"testing"
)

func TestContains(t *testing.T) {
	s := New()
	if err := s.AddString("104.16.0.0/13"); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(netip.MustParsePrefix("192.0.2.0/24")); err != nil {
		t.Fatal(err)
	}
	if !s.ContainsString("104.17.1.1") {
		t.Error("anycast address not detected")
	}
	if !s.Contains(netip.MustParseAddr("192.0.2.7")) {
		t.Error("second prefix not detected")
	}
	if s.ContainsString("8.8.4.4") {
		t.Error("unicast address reported anycast")
	}
	if s.ContainsString("garbage") {
		t.Error("garbage address reported anycast")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestBadPrefix(t *testing.T) {
	s := New()
	if err := s.AddString("nope"); err == nil {
		t.Error("bad CIDR accepted")
	}
}
