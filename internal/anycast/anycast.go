// Package anycast tracks which IP prefixes are anycast-announced — the
// substitute for the bgp.tools anycast-prefix dataset the paper uses to
// annotate hosting and nameserver addresses.
package anycast

import (
	"net/netip"

	"github.com/webdep/webdep/internal/iptrie"
)

// Set is a collection of anycast prefixes supporting containment queries.
// Construct with New; concurrent queries after population are safe.
type Set struct {
	trie *iptrie.Trie[struct{}]
}

// New returns an empty set.
func New() *Set { return &Set{trie: iptrie.New[struct{}]()} }

// Add marks a prefix as anycast.
func (s *Set) Add(prefix netip.Prefix) error {
	return s.trie.Insert(prefix, struct{}{})
}

// AddString marks a CIDR string as anycast.
func (s *Set) AddString(cidr string) error {
	return s.trie.InsertString(cidr, struct{}{})
}

// Contains reports whether the address falls in any anycast prefix.
func (s *Set) Contains(addr netip.Addr) bool {
	_, ok := s.trie.Lookup(addr)
	return ok
}

// ContainsString is Contains over a string address; invalid addresses are
// not anycast.
func (s *Set) ContainsString(ip string) bool {
	addr, err := netip.ParseAddr(ip)
	if err != nil {
		return false
	}
	return s.Contains(addr)
}

// Len reports the number of anycast prefixes.
func (s *Set) Len() int { return s.trie.Len() }
