package anycast

import (
	"strings"
	"testing"
)

func TestLoad(t *testing.T) {
	feed := `# bgp.tools anycast prefixes
104.16.0.0/13

2001:db8::/32
`
	s := New()
	n, err := s.Load(strings.NewReader(feed))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || s.Len() != 2 {
		t.Fatalf("loaded %d prefixes", n)
	}
	if !s.ContainsString("104.20.1.1") || !s.ContainsString("2001:db8::1") {
		t.Error("loaded prefixes not queryable")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := New().Load(strings.NewReader("not-a-prefix")); err == nil {
		t.Error("bad prefix accepted")
	}
}
